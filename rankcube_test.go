package rankcube_test

import (
	"math"
	"sort"
	"testing"

	"rankcube"
)

// buildDemo creates a small relation through the public API.
func buildDemo(t testing.TB, n int) *rankcube.Relation {
	t.Helper()
	return rankcube.GenerateRelation(n, 3, 2, 5, rankcube.Uniform, 77)
}

// apiBrute is the reference answer through public accessors only.
func apiBrute(rel *rankcube.Relation, cond rankcube.Cond, f rankcube.Func, k int) []rankcube.Result {
	var all []rankcube.Result
	buf := make([]float64, rel.Schema().R())
	for i := 0; i < rel.Len(); i++ {
		tid := rankcube.TID(i)
		if !rel.Matches(tid, cond) {
			continue
		}
		score := f.Eval(rel.RankRow(tid, buf))
		if math.IsInf(score, 1) {
			continue
		}
		all = append(all, rankcube.Result{TID: tid, Score: score})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Score != all[b].Score {
			return all[a].Score < all[b].Score
		}
		return all[a].TID < all[b].TID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func checkScores(t *testing.T, got, want []rankcube.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			t.Fatalf("result %d: score %v, want %v", i, got[i].Score, want[i].Score)
		}
	}
}

func TestEnginesAgreeThroughPublicAPI(t *testing.T) {
	rel := buildDemo(t, 8000)
	grid := rankcube.BuildGridCube(rel, rankcube.GridOptions{})
	sig := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{})
	queries := []struct {
		cond rankcube.Cond
		f    rankcube.Func
		k    int
	}{
		{rankcube.Cond{0: 1}, rankcube.Sum(0, 1), 10},
		{rankcube.Cond{0: 2, 1: 3}, rankcube.SqDist([]int{0, 1}, []float64{0.5, 0.5}), 7},
		{rankcube.Cond{2: 4}, rankcube.Linear([]int{0, 1}, []float64{2, -1}), 12},
		{rankcube.Cond{1: 0}, rankcube.General(
			rankcube.Sqr(rankcube.Sub(rankcube.Var(0), rankcube.Sqr(rankcube.Var(1))))), 5},
	}
	for i, q := range queries {
		want := apiBrute(rel, q.cond, q.f, q.k)
		g, err := grid.TopK(q.cond, q.f, q.k, nil)
		if err != nil {
			t.Fatalf("query %d grid: %v", i, err)
		}
		checkScores(t, g, want)
		s, err := sig.TopK(q.cond, q.f, q.k, nil)
		if err != nil {
			t.Fatalf("query %d sig: %v", i, err)
		}
		checkScores(t, s, want)
		ts := rankcube.TableScanTopK(rel, q.cond, q.f, q.k, nil)
		checkScores(t, ts, want)
	}
}

func TestMergeTopKPublicAPI(t *testing.T) {
	rel := buildDemo(t, 5000)
	indices := []rankcube.Index{
		rankcube.BuildBTree(rel, 0),
		rankcube.BuildBTree(rel, 1),
	}
	f := rankcube.SqDist([]int{0, 1}, []float64{0.2, 0.8})
	for _, js := range []bool{false, true} {
		got, err := rankcube.MergeTopK(rel, indices, f, 15, rankcube.MergeOptions{JoinSignature: js}, nil)
		if err != nil {
			t.Fatal(err)
		}
		checkScores(t, got, apiBrute(rel, nil, f, 15))
	}
}

func TestRTreeMergePublicAPI(t *testing.T) {
	rel := rankcube.GenerateRelation(4000, 2, 4, 4, rankcube.Uniform, 78)
	indices := []rankcube.Index{
		rankcube.BuildRTree(rel, []int{0, 1}),
		rankcube.BuildRTree(rel, []int{2, 3}),
	}
	f := rankcube.SqDist([]int{0, 1, 2, 3}, []float64{0.1, 0.2, 0.3, 0.4})
	got, err := rankcube.MergeTopK(rel, indices, f, 10, rankcube.MergeOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkScores(t, got, apiBrute(rel, nil, f, 10))
}

func TestInsertDeleteThroughPublicAPI(t *testing.T) {
	rel := buildDemo(t, 2000)
	cube := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{})
	tid, err := cube.Insert([]int32{1, 1, 1}, []float64{0.001, 0.001}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cube.TopK(rankcube.Cond{0: 1}, rankcube.Sum(0, 1), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].TID != tid {
		t.Fatalf("inserted near-zero tuple not top-1: %v", res)
	}
	if ok, err := cube.Delete(tid, nil); err != nil || !ok {
		t.Fatalf("delete failed: ok=%v err=%v", ok, err)
	}
	res, err = cube.TopK(rankcube.Cond{0: 1}, rankcube.Sum(0, 1), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 1 && res[0].TID == tid {
		t.Fatal("deleted tuple still returned")
	}
}

func TestScannerOrdered(t *testing.T) {
	rel := buildDemo(t, 3000)
	cube := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{})
	sc, err := cube.Scan(rankcube.Cond{0: 2}, rankcube.Sum(0, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(-1)
	count := 0
	for {
		r, ok := sc.Next()
		if !ok {
			break
		}
		if r.Score < prev {
			t.Fatalf("scanner out of order: %v after %v", r.Score, prev)
		}
		prev = r.Score
		count++
	}
	want := 0
	for i := 0; i < rel.Len(); i++ {
		if rel.Sel(rankcube.TID(i), 0) == 2 {
			want++
		}
	}
	if count != want {
		t.Fatalf("scanner yielded %d tuples, want %d", count, want)
	}
}

func TestSkylinePublicAPI(t *testing.T) {
	rel := buildDemo(t, 4000)
	cube := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{})
	eng := rankcube.NewSkylineEngine(cube)
	sky, snap, err := eng.Skyline(rankcube.Cond{0: 1}, []int{0, 1}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sky) == 0 {
		t.Fatal("empty skyline")
	}
	// Pairwise non-domination of the returned set.
	for i := range sky {
		for j := range sky {
			if i == j {
				continue
			}
			if dominatesAPI(sky[i].Coord, sky[j].Coord) {
				t.Fatalf("skyline member %d dominates member %d", i, j)
			}
		}
	}
	// Drill down and roll up round-trip.
	sub, snap2, err := eng.DrillDown(snap, rankcube.Cond{1: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	back, _, err := eng.RollUp(snap2, []int{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(sky) {
		t.Fatalf("roll-up returned %d points, original query %d", len(back), len(sky))
	}
	_ = sub
}

func dominatesAPI(a, b []float64) bool {
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

func TestJoinPublicAPI(t *testing.T) {
	r1 := buildDemo(t, 1000)
	r2 := rankcube.GenerateRelation(1000, 3, 2, 5, rankcube.Uniform, 79)
	c1 := rankcube.BuildSignatureCube(r1, rankcube.SigOptions{})
	c2 := rankcube.BuildSignatureCube(r2, rankcube.SigOptions{})
	keys1 := make([]int32, r1.Len())
	keys2 := make([]int32, r2.Len())
	for i := range keys1 {
		keys1[i] = int32(i % 50)
	}
	for i := range keys2 {
		keys2[i] = int32(i % 50)
	}
	j1 := rankcube.NewJoinRelation("r1", r1, c1, keys1, 50)
	j2 := rankcube.NewJoinRelation("r2", r2, c2, keys2, 50)
	res, err := rankcube.Join([]rankcube.JoinPart{
		{Rel: j1, Cond: rankcube.Cond{0: 1}, F: rankcube.Sum(0, 1)},
		{Rel: j2, Cond: rankcube.Cond{}, F: rankcube.Sum(0, 1)},
	}, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("join returned %d results", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score < res[i-1].Score {
			t.Fatal("join results out of order")
		}
	}
	// Verify each joined pair shares its key and matches the condition.
	for _, r := range res {
		if keys1[r.TIDs[0]] != keys2[r.TIDs[1]] {
			t.Fatal("joined pair has mismatched keys")
		}
		if r1.Sel(r.TIDs[0], 0) != 1 {
			t.Fatal("joined tuple violates condition")
		}
	}
}

func TestForestCoverShape(t *testing.T) {
	rel := rankcube.ForestCover(5000, 1)
	schema := rel.Schema()
	if schema.S() != 12 || schema.R() != 3 {
		t.Fatalf("ForestCover shape %d/%d, want 12/3", schema.S(), schema.R())
	}
	if schema.SelCard[0] != 255 || schema.SelCard[11] != 2 {
		t.Fatalf("cardinality profile %v", schema.SelCard)
	}
}

func TestGridCubeMaintenanceAPI(t *testing.T) {
	rel := buildDemo(t, 2000)
	cube := rankcube.BuildGridCube(rel, rankcube.GridOptions{BlockSize: 100})
	tid := cube.Insert([]int32{1, 1, 1}, []float64{0.0001, 0.0001})
	res, err := cube.TopK(rankcube.Cond{0: 1}, rankcube.Sum(0, 1), 1, nil)
	if err != nil || len(res) != 1 || res[0].TID != tid {
		t.Fatalf("inserted tuple not found: %v %v", res, err)
	}
	if !cube.Delete(tid) {
		t.Fatal("delete failed")
	}
	if cube.PendingMaintenance() != 2 {
		t.Fatalf("PendingMaintenance = %d", cube.PendingMaintenance())
	}
	remap := cube.Repartition()
	if cube.PendingMaintenance() != 0 {
		t.Fatal("maintenance not folded")
	}
	if _, moved := remap[tid]; moved {
		t.Fatal("deleted tuple still mapped")
	}
}

func TestGroupingHelpersAPI(t *testing.T) {
	rel := rankcube.GenerateRelation(3000, 6, 2, 5, rankcube.Uniform, 80)
	groups := rankcube.GroupsFromWorkload([][]int{{0, 5}, {0, 5}, {2, 3}}, 6, 2)
	cube := rankcube.BuildGridCube(rel, rankcube.GridOptions{Groups: groups, BlockSize: 100})
	res, err := cube.TopK(rankcube.Cond{0: 1, 5: 2}, rankcube.Sum(0, 1), 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkScores(t, res, apiBrute(rel, rankcube.Cond{0: 1, 5: 2}, rankcube.Sum(0, 1), 5))
	byCard := rankcube.GroupsByCardinality(rel.Schema(), 2, 4)
	if len(byCard) == 0 {
		t.Fatal("no groups")
	}
}
