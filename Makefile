# Developer entry points. `make check` is the full pre-merge gate.

GO ?= go

.PHONY: all build vet lint lint-json test race chaos check bench bench-json clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# rankvet (cmd/rankvet, analyzers in internal/analysis) mechanically
# enforces the engine safety invariants: no raw panics, threaded contexts
# (struct stashes included), governed page reads, typed errors at the
# public boundary, guard lock discipline, closed scans, and unmixed
# atomics. -stats surfaces per-analyzer wall clock and the loader's
# export-data cache hit/miss counts, so a cache regression (stdlib
# re-type-checks creeping back) is visible in CI logs.
lint:
	$(GO) run ./cmd/rankvet -stats ./...

# Machine-readable findings: one JSON object per line on stdout
# (file/line/col/analyzer/message), for editors and CI annotators.
lint-json:
	$(GO) run ./cmd/rankvet -json ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Seeded, bounded serving-chaos run (internal/chaos) under the race
# detector: concurrent query storms + online maintenance + scripted
# corruption/repair, asserting typed outcomes, exact crosschecks, and
# half-open re-admission. Override the seed with CHAOS_SEED=… (the harness
# default is seed 1).
chaos:
	$(GO) test -race -count=1 -run 'TestChaos$$' ./internal/chaos -v

check: build vet lint race chaos

# Quick smoke of the benchmark harness (full runs via cmd/rankbench).
bench:
	$(GO) run ./cmd/rankbench -exp fig3.4 -scale 0.02 -queries 3

# Perf-trajectory snapshot: run the canonical root benchmarks and record
# them as BENCH_<short-hash>.json so future PRs can diff against this
# commit. Override the set with BENCH_PATTERN='Fig5_|PublicAPI' etc.
BENCH_PATTERN ?= Fig4_12|PublicAPI
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem . \
		| $(GO) run ./cmd/benchjson -commit "$$(git rev-parse --short HEAD)" \
			-out "BENCH_$$(git rev-parse --short HEAD).json"

clean:
	$(GO) clean ./...
