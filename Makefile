# Developer entry points. `make check` is the full pre-merge gate.

GO ?= go

.PHONY: all build vet lint test race check bench clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# rankvet (cmd/rankvet, analyzers in internal/analysis) mechanically
# enforces the engine safety invariants: no raw panics, threaded contexts,
# governed page reads, typed errors at the public boundary.
lint:
	$(GO) run ./cmd/rankvet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build vet lint race

# Quick smoke of the benchmark harness (full runs via cmd/rankbench).
bench:
	$(GO) run ./cmd/rankbench -exp fig3.4 -scale 0.02 -queries 3

clean:
	$(GO) clean ./...
