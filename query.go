package rankcube

// Canonical ctx-first query API. Every engine exposes one Query-shaped
// entry point taking a context and variadic Options; the legacy TopK /
// TopKCtx forms are thin wrappers over these. All entry points funnel
// through runQuery, the single boundary that attaches tracing, enforces
// the budget, applies the degradation policy, records the query into the
// process-wide metrics registry, and feeds the slow-query log.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"rankcube/internal/baselines"
	"rankcube/internal/errs"
	"rankcube/internal/governor"
	"rankcube/internal/gridcube"
	"rankcube/internal/guard"
	"rankcube/internal/indexmerge"
	"rankcube/internal/joinquery"
	"rankcube/internal/obs"
	"rankcube/internal/skyline"
)

// Option configures one query. Options compose left to right:
//
//	cube.Query(ctx, cond, f, k, rankcube.WithBudget(b), rankcube.WithMetrics(m))
type Option func(*queryConfig)

// queryConfig is the resolved per-query configuration.
type queryConfig struct {
	budget  Budget
	metrics *Metrics
	trace   *Trace
	slowNS  int64 // -1 = inherit DefaultSlowLog's threshold

	// ctls are the serving controls of every structure the operation
	// touches, set by the entry point (not an Option): queries are admitted
	// through each control's gate and hold each control shared for the
	// whole operation, fallback included; maintenance (write=true) holds
	// them exclusive and bypasses admission — the exclusive lock already
	// serializes it, and shedding maintenance would lose data, not load.
	ctls  []*guard.RW
	write bool
}

// applyOptions folds opts into a config. Nil options are ignored.
func applyOptions(opts []Option) queryConfig {
	cfg := queryConfig{slowNS: -1}
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return cfg
}

// WithBudget bounds the query's resource consumption and degradation
// policy (see Budget).
func WithBudget(b Budget) Option {
	return func(c *queryConfig) { c.budget = b }
}

// WithMetrics collects the query's execution statistics into m. Without
// it the query runs against a throwaway collector.
func WithMetrics(m *Metrics) Option {
	return func(c *queryConfig) { c.metrics = m }
}

// WithTrace records the query's execution as a span tree on tr: every
// engine phase becomes a span, and every governed block read, retry,
// heap observation, and downgrade is attributed to the innermost open
// span. Render the result with tr.Render(). The per-span read totals sum
// exactly to the reads the query charged its Metrics.
func WithTrace(tr *Trace) Option {
	return func(c *queryConfig) { c.trace = tr }
}

// WithSlowLogThreshold overrides the process-wide slow-query threshold
// (SetSlowQueryThreshold) for this query only. Zero disables slow
// logging for the query; a positive d admits it into the slow-query log
// when its wall time reaches d.
func WithSlowLogThreshold(d time.Duration) Option {
	return func(c *queryConfig) {
		if d < 0 {
			d = 0
		}
		c.slowNS = int64(d)
	}
}

// classifyOutcome maps a query's final state onto the registry's
// outcome breakdown.
func classifyOutcome(err error, degraded bool) obs.Outcome {
	switch {
	case err == nil && degraded:
		return obs.OutcomeDegraded
	case err == nil:
		return obs.OutcomeOK
	case errors.Is(err, errs.ErrCanceled):
		return obs.OutcomeCanceled
	case errors.Is(err, errs.ErrBudgetExceeded):
		return obs.OutcomeBudget
	case errors.Is(err, errs.ErrOverloaded):
		return obs.OutcomeOverloaded
	default:
		return obs.OutcomeError
	}
}

// readsDelta diffs two read snapshots, yielding what one query charged.
func readsDelta(before, after map[Structure]int64) map[Structure]int64 {
	delta := make(map[Structure]int64, len(after))
	for s, v := range after {
		if d := v - before[s]; d > 0 {
			delta[s] = d
		}
	}
	return delta
}

// runQuery is the one boundary every canonical entry point passes
// through. It resolves options, attaches the trace (creating a private
// one when only the slow log needs it), runs attempt under the budget's
// governor, degrades to fallback per the Budget policy, seals the trace,
// records the query into the default registry, and admits offenders into
// the slow-query log. fallback may be nil for operations that never
// degrade (maintenance, baselines).
func runQuery[T any](ctx context.Context, kind string, cfg queryConfig,
	attempt func(m *Metrics) (T, error),
	fallback func(m *Metrics) (T, error),
) (T, error) {
	// Admission and locking come first: a shed query must cost nothing but
	// its rejection, and the locks must span the attempt and the fallback
	// alike so a degraded answer reads the same consistent structures.
	if len(cfg.ctls) > 0 {
		if cfg.write {
			defer guard.LockExclusive(cfg.ctls)()
		} else {
			release, err := guard.AcquireShared(ctx, cfg.ctls)
			if err != nil {
				obs.Default().RecordQuery(kind, classifyOutcome(err, false), 0, nil, 0, 0)
				var zero T
				return zero, err
			}
			defer release()
		}
	}

	m := ensureMetrics(cfg.metrics)

	slowThreshold := obs.DefaultSlowLog().Threshold()
	if cfg.slowNS >= 0 {
		slowThreshold = time.Duration(cfg.slowNS)
	}
	tr := cfg.trace
	if tr == nil && slowThreshold > 0 {
		tr = obs.NewTrace() // private trace so the slow log can dump a tree
	}
	if tr != nil {
		m.SetObserver(tr)
		defer m.DetachObserver(tr)
		ctx = obs.ContextWithTrace(ctx, tr)
	}

	readsBefore := m.ReadsSnapshot()
	retriesBefore, downgradesBefore := m.Retries, m.Downgrades
	start := time.Now()

	endRoot := m.StartSpan(kind)
	out, err := runGoverned(ctx, cfg.budget.limits(), m, func() (T, error) {
		return attempt(m)
	})
	degraded := false
	if fallback != nil && cfg.budget.shouldDegrade(err) {
		degraded = true
		endFallback := m.StartSpan("fallback")
		m.AddDowngrade()
		out, err = runGoverned(ctx, governor.Limits{}, m, func() (T, error) {
			return fallback(m)
		})
		endFallback()
	}
	endRoot()
	if tr != nil {
		tr.Finish()
	}

	dur := time.Since(start)
	outcome := classifyOutcome(err, degraded)
	obs.Default().RecordQuery(kind, outcome, dur,
		readsDelta(readsBefore, m.ReadsSnapshot()),
		m.Retries-retriesBefore, m.Downgrades-downgradesBefore)

	if slowThreshold > 0 && dur >= slowThreshold {
		var errText string
		if err != nil {
			errText = err.Error()
		}
		var tree string
		if tr != nil {
			tree = tr.Render()
		}
		obs.DefaultSlowLog().Record(obs.SlowEntry{
			At: time.Now(), Kind: kind, Dur: dur,
			Outcome: outcome, Err: errText, Tree: tree,
		})
		obs.Default().RecordSlowQuery()
	}
	return out, err
}

// ---------------------------------------------------------------------------
// Canonical entry points
// ---------------------------------------------------------------------------

// Query answers a multi-dimensional top-k query under ctx. On storage
// faults (and, with Budget.FallbackOnBudget, budget trips) it
// transparently re-answers from a tombstone-aware sequential scan,
// recording the downgrade.
func (g *GridCube) Query(ctx context.Context, cond Cond, f Func, k int, opts ...Option) ([]Result, error) {
	cfg := applyOptions(opts)
	cfg.ctls = []*guard.RW{g.c.Ctl()}
	q := gridcube.Query{Cond: cond, F: f, K: k}
	return runQuery(ctx, "grid.topk", cfg,
		func(m *Metrics) ([]Result, error) { return g.c.TopK(q, m) },
		func(m *Metrics) ([]Result, error) { return g.c.ScanTopK(q, m), nil })
}

// BaselineQuery answers the same query as Query by the cube's governed,
// tombstone-aware sequential scan — the exact floor the degradation policy
// falls back to, exposed so callers (and the chaos harness) can crosscheck
// cube answers against ground truth under the same admission gate and
// shared lock. It never degrades further.
func (g *GridCube) BaselineQuery(ctx context.Context, cond Cond, f Func, k int, opts ...Option) ([]Result, error) {
	cfg := applyOptions(opts)
	cfg.ctls = []*guard.RW{g.c.Ctl()}
	q := gridcube.Query{Cond: cond, F: f, K: k}
	return runQuery(ctx, "grid.baseline", cfg,
		func(m *Metrics) ([]Result, error) { return g.c.ScanTopK(q, m), nil },
		nil)
}

// Query answers a multi-dimensional top-k query under ctx, degrading to
// a delete-aware sequential scan on storage faults as GridCube.Query
// does.
func (s *SignatureCube) Query(ctx context.Context, cond Cond, f Func, k int, opts ...Option) ([]Result, error) {
	cfg := applyOptions(opts)
	cfg.ctls = []*guard.RW{s.c.Ctl()}
	return runQuery(ctx, "sig.topk", cfg,
		func(m *Metrics) ([]Result, error) { return s.c.TopK(cond, f, k, m) },
		func(m *Metrics) ([]Result, error) { return s.c.ScanTopK(cond, f, k, m), nil })
}

// BaselineQuery answers the same query as Query by the cube's governed,
// delete-aware sequential scan — ground truth for crosschecking, under the
// same admission gate and shared lock. It never degrades further.
func (s *SignatureCube) BaselineQuery(ctx context.Context, cond Cond, f Func, k int, opts ...Option) ([]Result, error) {
	cfg := applyOptions(opts)
	cfg.ctls = []*guard.RW{s.c.Ctl()}
	return runQuery(ctx, "sig.baseline", cfg,
		func(m *Metrics) ([]Result, error) { return s.c.ScanTopK(cond, f, k, m), nil },
		nil)
}

// InsertTuple appends a tuple and incrementally maintains all signatures
// under ctx. Maintenance never degrades — there is no baseline that
// could maintain the cube — so faults surface as typed errors:
// ErrStructureUnavailable when the partition does not support
// incremental maintenance, storage errors when maintenance I/O faults.
func (s *SignatureCube) InsertTuple(ctx context.Context, sel []int32, rank []float64, opts ...Option) (TID, error) {
	cfg := applyOptions(opts)
	cfg.ctls = []*guard.RW{s.c.Ctl()}
	cfg.write = true
	return runQuery(ctx, "sig.insert", cfg,
		func(m *Metrics) (TID, error) { return s.c.Insert(sel, rank, m), nil },
		nil)
}

// DeleteTuple removes a tuple from the partition and signatures under
// ctx, with the same no-degradation error contract as InsertTuple.
func (s *SignatureCube) DeleteTuple(ctx context.Context, tid TID, opts ...Option) (bool, error) {
	cfg := applyOptions(opts)
	cfg.ctls = []*guard.RW{s.c.Ctl()}
	cfg.write = true
	return runQuery(ctx, "sig.delete", cfg,
		func(m *Metrics) (bool, error) { return s.c.Delete(tid, m), nil },
		nil)
}

// OpenScan opens a governed, panic-contained score-ascending iterator
// over tuples matching cond — the rank-aware selection operator rank
// joins pull from. Unlike the batch entry points a stream cannot
// transparently degrade (it cannot restart without re-emitting), so
// faults surface as typed errors from Next. The budget's governor — and
// the trace, when WithTrace is given — stay attached to the metrics for
// the scanner's lifetime; Close releases both, so open a fresh Metrics
// per scan when running scans concurrently.
func (s *SignatureCube) OpenScan(ctx context.Context, cond Cond, f Func, opts ...Option) (*GovernedScanner, error) {
	cfg := applyOptions(opts)
	// The scanner reads the cube progressively until Close, so it is
	// admitted through the gate and holds the shared lock for its whole
	// lifetime — maintenance waits for open scans to finish. Close releases
	// both.
	unlock, err := guard.AcquireShared(ctx, []*guard.RW{s.c.Ctl()})
	if err != nil {
		obs.Default().Counter("queries.sig.scan." + string(classifyOutcome(err, false))).Add(1)
		return nil, err
	}
	m := ensureMetrics(cfg.metrics)
	if cfg.trace != nil {
		m.SetObserver(cfg.trace)
	}
	gov := governor.New(ctx, cfg.budget.limits())
	m.SetGovernor(gov)
	sc, err := func() (sc *Scanner, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = errs.FromPanic(r)
				sc = nil
			}
		}()
		return s.c.Scan(cond, f, m)
	}()
	if err != nil {
		m.DetachGovernor(gov)
		if cfg.trace != nil {
			m.DetachObserver(cfg.trace)
		}
		unlock()
		obs.Default().Counter("queries.sig.scan." + string(classifyOutcome(err, false))).Add(1)
		return nil, err
	}
	obs.Default().Counter("queries.sig.scan.ok").Add(1)
	return &GovernedScanner{s: sc, m: m, g: gov, tr: cfg.trace, unlock: unlock}, nil
}

// MergeQuery answers a top-k query whose function spans several
// hierarchical indices by progressive index-merge (chapter 5). rel
// provides the tuple count for join-signature construction when
// requested. Configuration errors (no indices, uncovered ranking
// dimensions) surface directly; runtime storage faults degrade to a full
// table scan, which is exact because index-merge queries carry no
// boolean predicate.
func MergeQuery(ctx context.Context, rel *Relation, indices []Index, f Func, k int, mopts MergeOptions, opts ...Option) ([]Result, error) {
	cfg := applyOptions(opts)
	return runQuery(ctx, "merge.topk", cfg,
		func(m *Metrics) ([]Result, error) {
			var mo indexmerge.Options
			if mopts.JoinSignature {
				endBuild := m.StartSpan("joinsig-build")
				js, jerr := indexmerge.BuildJoinSignature(indices, rel.Len(), indexmerge.JoinSigConfig{})
				endBuild()
				if jerr != nil {
					return nil, jerr
				}
				mo.Pruner = js
			}
			return indexmerge.TopK(indices, f, k, mo, m)
		},
		func(m *Metrics) ([]Result, error) {
			h := baselines.NewHeapFile(rel, 0)
			return baselines.NewTableScan(h).TopK(Cond{}, f, k, m), nil
		})
}

// JoinQuery answers a multi-relational top-k query under ctx: equality
// join on the shared key domain, per-relation boolean conditions,
// combined score = sum of per-relation scores. When a member relation's
// cube faults mid-join, the query degrades to an exact brute-force hash
// join over sequential scans of the participating relations.
func JoinQuery(ctx context.Context, parts []JoinPart, k int, opts ...Option) ([]JoinResult, error) {
	cfg := applyOptions(opts)
	// A join spans several cubes; their controls are acquired in the
	// process-wide ascending-ID order (guard.Order) so two joins over
	// overlapping relation sets can never deadlock against a waiting
	// writer.
	for _, p := range parts {
		if p.Rel != nil && p.Rel.Cube != nil {
			cfg.ctls = append(cfg.ctls, p.Rel.Cube.Ctl())
		}
	}
	q := joinquery.Query{Parts: parts, K: k}
	return runQuery(ctx, "join.topk", cfg,
		func(m *Metrics) ([]JoinResult, error) { return joinquery.Execute(q, joinquery.Options{}, m) },
		func(m *Metrics) ([]JoinResult, error) { return joinquery.BruteForce(q, m) })
}

// Query computes the skyline of the tuples matching cond under ctx,
// minimizing the given ranking dimensions. A non-nil target asks for the
// dynamic skyline in |x−target| space. On storage faults it degrades to
// an exact sequential-scan skyline; the returned snapshot is then marked
// degraded and navigation (drill-down/roll-up) restarts from scratch
// instead of reusing the candidate basis.
func (s *SkylineEngine) Query(ctx context.Context, cond Cond, dims []int, target []float64, opts ...Option) ([]SkylineResult, *SkylineSnapshot, error) {
	cfg := applyOptions(opts)
	cfg.ctls = []*guard.RW{s.e.Cube().Ctl()}
	q := skyline.Query{Cond: cond, Dims: dims, Target: target}
	out, err := runQuery(ctx, "skyline", cfg,
		func(m *Metrics) (skyOut, error) {
			res, snap, err := s.e.Skyline(q, m)
			return skyOut{res, snap}, err
		},
		func(m *Metrics) (skyOut, error) {
			res, snap, err := s.e.ScanSkyline(q, m)
			return skyOut{res, snap}, err
		})
	return out.res, out.snap, err
}

// DrillDownQuery tightens the previous query with extra predicates,
// reusing its candidate basis, with the same degradation policy as
// Query (the fallback answers the tightened query by sequential scan).
func (s *SkylineEngine) DrillDownQuery(ctx context.Context, prev *SkylineSnapshot, extra Cond, opts ...Option) ([]SkylineResult, *SkylineSnapshot, error) {
	if prev == nil {
		return nil, nil, fmt.Errorf("rankcube: drill-down requires a previous snapshot: %w", errs.ErrInvalidArgument)
	}
	cfg := applyOptions(opts)
	cfg.ctls = []*guard.RW{s.e.Cube().Ctl()}
	out, err := runQuery(ctx, "skyline.drilldown", cfg,
		func(m *Metrics) (skyOut, error) {
			res, snap, err := s.e.DrillDown(prev, extra, m)
			return skyOut{res, snap}, err
		},
		func(m *Metrics) (skyOut, error) {
			q, qerr := prev.DrillQuery(extra)
			if qerr != nil {
				return skyOut{}, qerr
			}
			res, snap, err := s.e.ScanSkyline(q, m)
			return skyOut{res, snap}, err
		})
	return out.res, out.snap, err
}

// RollUpQuery relaxes the previous query by removing predicates on the
// given dimensions, seeding the search with the previous skyline, with
// the same degradation policy as Query.
func (s *SkylineEngine) RollUpQuery(ctx context.Context, prev *SkylineSnapshot, removeDims []int, opts ...Option) ([]SkylineResult, *SkylineSnapshot, error) {
	if prev == nil {
		return nil, nil, fmt.Errorf("rankcube: roll-up requires a previous snapshot: %w", errs.ErrInvalidArgument)
	}
	cfg := applyOptions(opts)
	cfg.ctls = []*guard.RW{s.e.Cube().Ctl()}
	out, err := runQuery(ctx, "skyline.rollup", cfg,
		func(m *Metrics) (skyOut, error) {
			res, snap, err := s.e.RollUp(prev, removeDims, m)
			return skyOut{res, snap}, err
		},
		func(m *Metrics) (skyOut, error) {
			res, snap, err := s.e.ScanSkyline(prev.RollQuery(removeDims), m)
			return skyOut{res, snap}, err
		})
	return out.res, out.snap, err
}

// TableScanQuery answers a query by a governed scan of rel — the
// thesis' baseline, and the same path the degradation policy falls back
// to. It never degrades further (the scan is already the floor), so
// budget trips and faults surface as typed errors.
func TableScanQuery(ctx context.Context, rel *Relation, cond Cond, f Func, k int, opts ...Option) ([]Result, error) {
	cfg := applyOptions(opts)
	return runQuery(ctx, "scan.topk", cfg,
		func(m *Metrics) ([]Result, error) {
			h := baselines.NewHeapFile(rel, 0)
			return baselines.NewTableScan(h).TopK(cond, f, k, m), nil
		},
		nil)
}
