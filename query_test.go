package rankcube_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"rankcube"
)

// traceReads sums block reads over a rendered trace's whole span tree.
func traceReads(tr *rankcube.Trace) int64 {
	if tr.Root() == nil {
		return 0
	}
	return tr.Root().TotalReads()
}

// TestSpanTreeReadsReconcile is the observability acceptance invariant:
// for every canonical query entry point, the per-span block-read totals of
// the execution trace sum exactly to the query Metrics' TotalReads().
func TestSpanTreeReadsReconcile(t *testing.T) {
	ctx := context.Background()
	rel := buildDemo(t, 4000)
	grid := rankcube.BuildGridCube(rel, rankcube.GridOptions{})
	sig := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{})
	eng := rankcube.NewSkylineEngine(sig)
	indices := []rankcube.Index{
		rankcube.BuildBTree(rel, 0),
		rankcube.BuildBTree(rel, 1),
	}
	rel2 := rankcube.GenerateRelation(1000, 3, 2, 5, rankcube.Uniform, 79)
	sig2 := rankcube.BuildSignatureCube(rel2, rankcube.SigOptions{})
	keys1 := make([]int32, rel.Len())
	keys2 := make([]int32, rel2.Len())
	for i := range keys1 {
		keys1[i] = int32(i % 50)
	}
	for i := range keys2 {
		keys2[i] = int32(i % 50)
	}
	j1 := rankcube.NewJoinRelation("r1", rel, sig, keys1, 50)
	j2 := rankcube.NewJoinRelation("r2", rel2, sig2, keys2, 50)

	f := rankcube.Sum(0, 1)
	cond := rankcube.Cond{0: 1}
	cases := []struct {
		kind string
		run  func(m *rankcube.Metrics, tr *rankcube.Trace) error
	}{
		{"grid.topk", func(m *rankcube.Metrics, tr *rankcube.Trace) error {
			_, err := grid.Query(ctx, cond, f, 10, rankcube.WithMetrics(m), rankcube.WithTrace(tr))
			return err
		}},
		{"sig.topk", func(m *rankcube.Metrics, tr *rankcube.Trace) error {
			_, err := sig.Query(ctx, cond, f, 10, rankcube.WithMetrics(m), rankcube.WithTrace(tr))
			return err
		}},
		{"merge.topk", func(m *rankcube.Metrics, tr *rankcube.Trace) error {
			_, err := rankcube.MergeQuery(ctx, rel, indices,
				rankcube.SqDist([]int{0, 1}, []float64{0.2, 0.8}), 10,
				rankcube.MergeOptions{}, rankcube.WithMetrics(m), rankcube.WithTrace(tr))
			return err
		}},
		{"join.topk", func(m *rankcube.Metrics, tr *rankcube.Trace) error {
			_, err := rankcube.JoinQuery(ctx, []rankcube.JoinPart{
				{Rel: j1, Cond: cond, F: f},
				{Rel: j2, Cond: rankcube.Cond{}, F: f},
			}, 5, rankcube.WithMetrics(m), rankcube.WithTrace(tr))
			return err
		}},
		{"skyline", func(m *rankcube.Metrics, tr *rankcube.Trace) error {
			_, _, err := eng.Query(ctx, cond, []int{0, 1}, nil,
				rankcube.WithMetrics(m), rankcube.WithTrace(tr))
			return err
		}},
		{"scan.topk", func(m *rankcube.Metrics, tr *rankcube.Trace) error {
			_, err := rankcube.TableScanQuery(ctx, rel, cond, f, 10,
				rankcube.WithMetrics(m), rankcube.WithTrace(tr))
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.kind, func(t *testing.T) {
			m := rankcube.NewMetrics()
			tr := rankcube.NewTrace()
			if err := tc.run(m, tr); err != nil {
				t.Fatal(err)
			}
			root := tr.Root()
			if root == nil {
				t.Fatal("query produced no span tree")
			}
			if root.Name != tc.kind {
				t.Fatalf("root span %q, want %q", root.Name, tc.kind)
			}
			if m.TotalReads() == 0 {
				t.Fatal("query charged no block reads — nothing to reconcile")
			}
			if got, want := traceReads(tr), m.TotalReads(); got != want {
				t.Fatalf("span tree attributes %d reads, counters say %d\n%s", got, want, tr.Render())
			}
		})
	}
}

// TestSpanTreeReconcilesThroughFallback forces a budget trip with
// FallbackOnBudget, so the trace includes the degraded re-answer, and
// checks the read attribution still reconciles across both attempts.
func TestSpanTreeReconcilesThroughFallback(t *testing.T) {
	ctx := context.Background()
	rel := buildDemo(t, 4000)
	sig := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{})
	m := rankcube.NewMetrics()
	tr := rankcube.NewTrace()
	res, err := sig.Query(ctx, rankcube.Cond{0: 1}, rankcube.Sum(0, 1), 10,
		rankcube.WithMetrics(m), rankcube.WithTrace(tr),
		rankcube.WithBudget(rankcube.Budget{MaxBlockReads: 1, FallbackOnBudget: true}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("degraded query returned nothing")
	}
	if m.Downgrades == 0 {
		t.Fatal("budget trip did not downgrade")
	}
	rendered := tr.Render()
	if !strings.Contains(rendered, "fallback") {
		t.Fatalf("trace is missing the fallback span:\n%s", rendered)
	}
	if got, want := traceReads(tr), m.TotalReads(); got != want {
		t.Fatalf("span tree attributes %d reads, counters say %d\n%s", got, want, rendered)
	}
}

// TestGovernedScannerCloseIdempotent covers the Close bugfix: closing
// twice must be harmless, and closing one scanner must not detach another
// scanner's governor from a shared Metrics.
func TestGovernedScannerCloseIdempotent(t *testing.T) {
	ctx := context.Background()
	rel := buildDemo(t, 2000)
	sig := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{})
	m := rankcube.NewMetrics()

	a, err := sig.OpenScan(ctx, rankcube.Cond{0: 1}, rankcube.Sum(0, 1), rankcube.WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sig.OpenScan(ctx, rankcube.Cond{0: 2}, rankcube.Sum(0, 1), rankcube.WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	// Closing a (and closing it again) must leave b fully operational.
	a.Close()
	a.Close()
	seen := 0
	for {
		_, ok, err := b.Next()
		if err != nil {
			t.Fatalf("scanner b after closing a: %v", err)
		}
		if !ok {
			break
		}
		if seen++; seen == 25 {
			break
		}
	}
	if seen == 0 {
		t.Fatal("scanner b returned nothing")
	}
	b.Close()
	b.Close()
}

// TestSlowQueryLogEndToEnd arms the per-query threshold and checks the
// offender lands in the process slow-query log with its span tree.
func TestSlowQueryLogEndToEnd(t *testing.T) {
	ctx := context.Background()
	rel := buildDemo(t, 2000)
	sig := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{})
	before := len(rankcube.SlowQueries())
	_, err := sig.Query(ctx, rankcube.Cond{0: 1}, rankcube.Sum(0, 1), 10,
		rankcube.WithSlowLogThreshold(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	entries := rankcube.SlowQueries()
	if len(entries) <= before {
		t.Fatal("slow query was not admitted to the log")
	}
	last := entries[len(entries)-1]
	if last.Kind != "sig.topk" {
		t.Fatalf("slow entry kind = %q", last.Kind)
	}
	if last.Outcome != rankcube.OutcomeOK {
		t.Fatalf("slow entry outcome = %q", last.Outcome)
	}
	if !strings.Contains(last.Tree, "sig.topk") {
		t.Fatalf("slow entry tree does not contain the root span:\n%s", last.Tree)
	}
	var sb strings.Builder
	rankcube.WriteSlowQueryLog(&sb)
	if !strings.Contains(sb.String(), "sig.topk") {
		t.Fatalf("WriteSlowQueryLog output missing the entry:\n%s", sb.String())
	}
}
