package rankcube

// Observability surface: per-query execution traces, the process-wide
// metrics registry, and the slow-query log (internal/obs re-exported).
//
// Tracing is per query: pass WithTrace(rankcube.NewTrace()) and render
// the span tree afterwards. The registry is process-wide and always on —
// every canonical entry point records its kind, outcome, latency bucket,
// and block reads into DefaultRegistry. The slow-query log is armed by
// SetSlowQueryThreshold (or per query by WithSlowLogThreshold) and keeps
// the rendered span trees of offenders in a bounded ring.

import (
	"io"
	"net/http"
	"time"

	"rankcube/internal/obs"
	"rankcube/internal/stats"
)

// Structure identifies which storage structure a block read touched, in
// per-structure read counts (Metrics.Reads, Span.Reads).
type Structure = stats.Structure

// Instrumented storage structures.
const (
	StructTable     = stats.StructTable
	StructCube      = stats.StructCube
	StructBlockTab  = stats.StructBlockTab
	StructBTree     = stats.StructBTree
	StructRTree     = stats.StructRTree
	StructSignature = stats.StructSignature
	StructJoinSig   = stats.StructJoinSig
)

// Trace is a per-query execution trace: a span tree attributing wall
// time, governed block reads, retries, downgrades, and heap high-water
// marks to engine phases. Attach one with WithTrace; render it with
// Render. A Trace serves one query at a time.
type Trace = obs.Trace

// Span is one node of a Trace's span tree.
type Span = obs.Span

// NewTrace returns an empty execution trace for WithTrace.
func NewTrace() *Trace { return obs.NewTrace() }

// Registry is a process-wide metrics registry: named atomic counters,
// gauges, and bounded log2-bucket latency histograms.
type Registry = obs.Registry

// Outcome classifies how a query ended in registry and slow-log records
// ("ok", "degraded", "budget_trip", "canceled", "error").
type Outcome = obs.Outcome

// Query outcomes.
const (
	OutcomeOK       = obs.OutcomeOK
	OutcomeDegraded = obs.OutcomeDegraded
	OutcomeBudget   = obs.OutcomeBudget
	OutcomeCanceled = obs.OutcomeCanceled
	OutcomeError    = obs.OutcomeError
)

// DefaultRegistry returns the registry every canonical entry point
// records into.
func DefaultRegistry() *Registry { return obs.Default() }

// MetricsHandler serves the default registry as plain "name value"
// text — the scrape endpoint.
func MetricsHandler() http.Handler { return obs.Default().Handler() }

// PublishExpvar publishes the default registry under the expvar name
// "rankcube" (served at /debug/vars). Safe to call more than once.
func PublishExpvar() { obs.Default().PublishExpvar("rankcube") }

// SlowQuery is one slow-query log entry, carrying the offender's
// rendered span tree.
type SlowQuery = obs.SlowEntry

// SetSlowQueryThreshold arms the process-wide slow-query log: queries
// whose wall time reaches d are recorded with their span trees. Zero
// disarms it. Per-query WithSlowLogThreshold overrides it.
func SetSlowQueryThreshold(d time.Duration) { obs.DefaultSlowLog().SetThreshold(d) }

// SlowQueries returns the retained slow-query log entries, oldest
// first.
func SlowQueries() []SlowQuery { return obs.DefaultSlowLog().Entries() }

// WriteSlowQueryLog dumps the retained slow-query entries — headers
// plus span trees — to w.
func WriteSlowQueryLog(w io.Writer) { obs.DefaultSlowLog().WriteText(w) }
