package rankcube_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rankcube"
)

// TestCrossEngineProperty drives both ranking-cube engines, the table-scan
// baseline, and index-merge with quick-generated workloads over randomly
// shaped relations, requiring identical score vectors everywhere. This is
// the repository's strongest end-to-end invariant: four independent
// implementations of the same query semantics must agree.
func TestCrossEngineProperty(t *testing.T) {
	prop := func(seed int64, shape uint8, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := 1 + int(shape)%3
		card := 2 + int(shape/4)%6
		n := 1500 + int(shape)*37
		rel := rankcube.GenerateRelation(n, s, 2, card, rankcube.Uniform, seed)
		grid := rankcube.BuildGridCube(rel, rankcube.GridOptions{BlockSize: 100})
		sig := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{Fanout: 16})
		indices := []rankcube.Index{
			rankcube.BuildBTree(rel, 0),
			rankcube.BuildBTree(rel, 1),
		}

		k := 1 + int(kRaw)%20
		cond := rankcube.Cond{rng.Intn(s): int32(rng.Intn(card))}
		funcs := []rankcube.Func{
			rankcube.Sum(0, 1),
			rankcube.Linear([]int{0, 1}, []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2}),
			rankcube.SqDist([]int{0, 1}, []float64{rng.Float64(), rng.Float64()}),
			rankcube.General(rankcube.Sqr(rankcube.Sub(
				rankcube.Var(0), rankcube.Sqr(rankcube.Var(1))))),
		}
		for _, f := range funcs {
			want := rankcube.TableScanTopK(rel, cond, f, k, nil)
			g, err := grid.TopK(cond, f, k, nil)
			if err != nil || !scoresEqual(g, want) {
				t.Logf("grid mismatch: err=%v", err)
				return false
			}
			sg, err := sig.TopK(cond, f, k, nil)
			if err != nil || !scoresEqual(sg, want) {
				t.Logf("sig mismatch: err=%v", err)
				return false
			}
			// Index merge answers the no-condition variant.
			wantAll := rankcube.TableScanTopK(rel, nil, f, k, nil)
			mg, err := rankcube.MergeTopK(rel, indices, f, k, rankcube.MergeOptions{}, nil)
			if err != nil || !scoresEqual(mg, wantAll) {
				t.Logf("merge mismatch: err=%v", err)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func scoresEqual(a, b []rankcube.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i].Score-b[i].Score) > 1e-9 {
			return false
		}
	}
	return true
}

// TestSkylineContainsTopKProperty ties the two preference-query engines
// together: for any linear function with positive weights, the top-1 tuple
// must be a skyline member of the same predicate cell (a classical
// relationship between ranking and skyline queries).
func TestSkylineContainsTopKProperty(t *testing.T) {
	prop := func(seed int64, w1Raw, w2Raw uint8) bool {
		rel := rankcube.GenerateRelation(3000, 2, 2, 4, rankcube.Uniform, seed)
		cube := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{Fanout: 16})
		eng := rankcube.NewSkylineEngine(cube)
		cond := rankcube.Cond{0: int32(seed&1 + 1)}
		w1 := 0.1 + float64(w1Raw)/64
		w2 := 0.1 + float64(w2Raw)/64
		f := rankcube.Linear([]int{0, 1}, []float64{w1, w2})

		top, err := cube.TopK(cond, f, 1, nil)
		if err != nil || len(top) == 0 {
			return true // empty cell: nothing to check
		}
		sky, _, err := eng.Skyline(cond, []int{0, 1}, nil, nil)
		if err != nil {
			return false
		}
		for _, r := range sky {
			if r.TID == top[0].TID {
				return true
			}
		}
		// The top-1 tuple may tie with a skyline member on both coordinates;
		// accept coordinate-level membership too.
		x, y := rel.Rank(top[0].TID, 0), rel.Rank(top[0].TID, 1)
		for _, r := range sky {
			if r.Coord[0] == x && r.Coord[1] == y {
				return true
			}
		}
		return false
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
