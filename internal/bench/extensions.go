package bench

import (
	"fmt"

	"rankcube/internal/baselines"
	"rankcube/internal/core"
	"rankcube/internal/dataset"
	"rankcube/internal/gridcube"
	"rankcube/internal/gridtree"
	"rankcube/internal/ranking"
	"rankcube/internal/sigcube"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// Ablation experiments for the thesis' discussion-section extensions, which
// have no figures of their own: tid-list compression (§3.6.3), lossy bloom
// signatures (§4.5), and the Onion layered index reviewed as related work
// (§2.1.1).

func init() {
	register("ext.idlist", extIDList)
	register("ext.bloom", extBloom)
	register("ext.onion", extOnion)
	register("ext.gridpart", extGridPart)
}

// extIDList: grid-cube space and query time with and without delta
// compression of the cell tid lists.
func extIDList(cfg Config) *Report {
	tb := dataset.Synthetic(cfg.T(3_000_000), 3, 2, 20, table.Uniform, cfg.Seed)
	plain := gridcube.Build(tb, gridcube.Config{})
	packed := gridcube.Build(tb, gridcube.Config{CompressLists: true})
	rep := &Report{ID: "ext.idlist", Title: "ID List Compression (§3.6.3 ablation)",
		XLabel: "metric", Metric: "see row",
		Notes: []string{"space in MB; time in ms/query (k=10, 2 conditions)"}}
	queries := ch3Workload(cfg.rng(1), tb, cfg.Queries, 2, 2, 1, 10)
	measure := func(cube *gridcube.Cube) measurement {
		return run(cfg, len(queries), func(qi int, ctr *stats.Counters) {
			q := queries[qi]
			if _, err := cube.TopK(gridcube.Query{Cond: q.cond, F: q.f, K: q.k}, ctr); err != nil {
				must(err)
			}
		})
	}
	mb := func(v int64) float64 { return float64(v) / (1 << 20) }
	rep.Series = []Series{
		{Name: "plain", Points: []Point{
			{X: "space", Value: mb(plain.SizeBytes())},
			{X: "time", Value: measure(plain).ms()},
		}},
		{Name: "compressed", Points: []Point{
			{X: "space", Value: mb(packed.SizeBytes())},
			{X: "time", Value: measure(packed).ms()},
		}},
	}
	return rep
}

// extBloom: exact signatures vs lossy bloom signatures — measure size,
// query time, and verification overhead.
func extBloom(cfg Config) *Report {
	tb := dataset.Synthetic(cfg.T(1_000_000), 3, 3, 100, table.Uniform, cfg.Seed)
	exact := sigcube.Build(tb, sigcube.Config{})
	lossy := sigcube.Build(tb, sigcube.Config{LossySignatures: true})
	rep := &Report{ID: "ext.bloom", Title: "Lossy Bloom Signatures (§4.5 ablation)",
		XLabel: "metric", Metric: "see row",
		Notes: []string{"space in MB; time in ms/query; verify = table random accesses/query"}}
	rng := cfg.rng(3)
	conds := make([]core.Cond, cfg.Queries)
	for i := range conds {
		conds[i] = core.Cond{rng.Intn(3): int32(rng.Intn(100))}
	}
	f := ranking.SqDist([]int{0, 1, 2}, []float64{0.4, 0.5, 0.6})
	measure := func(cube *sigcube.Cube) measurement {
		return run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			if _, err := cube.TopK(conds[qi], f, 20, ctr); err != nil {
				must(err)
			}
		})
	}
	mb := func(v int64) float64 { return float64(v) / (1 << 20) }
	me, ml := measure(exact), measure(lossy)
	rep.Series = []Series{
		{Name: "exact", Points: []Point{
			{X: "space", Value: mb(exact.SizeBytes())},
			{X: "time", Value: me.ms()},
			{X: "verify", Value: me.avgReads(stats.StructTable)},
		}},
		{Name: "bloom", Points: []Point{
			{X: "space", Value: mb(lossy.SizeBytes())},
			{X: "time", Value: ml.ms()},
			{X: "verify", Value: ml.avgReads(stats.StructTable)},
		}},
	}
	return rep
}

// extOnion: the Onion layered index vs the ranking cube, with and without
// selective predicates — the motivating contrast of thesis §2.1.1.
func extOnion(cfg Config) *Report {
	// Onion peeling is expensive; cap the dataset.
	n := cfg.T(300_000)
	if n > 30_000 {
		n = 30_000
	}
	tb := dataset.Synthetic(n, 2, 2, 20, table.Uniform, cfg.Seed)
	onion := baselines.NewOnion(tb, 0, 1, 0)
	cube := gridcube.Build(tb, gridcube.Config{})
	rep := &Report{ID: "ext.onion", Title: "Onion Index vs Ranking Cube (§2.1.1)",
		XLabel: "query", Metric: "ms/query",
		Notes: []string{fmt.Sprintf("T=%d; Onion peeled %d layers", n, onion.NumLayers())}}
	workloads := []struct {
		name string
		cond core.Cond
	}{
		{"no-selection", core.Cond{}},
		{"1-condition", core.Cond{0: 1}},
		{"2-conditions", core.Cond{0: 1, 1: 2}},
	}
	var onionS, cubeS Series
	onionS.Name, cubeS.Name = "onion", "ranking-cube"
	for _, w := range workloads {
		rng := cfg.rng(int64(len(w.name)))
		f := func() ranking.Func {
			return ranking.Linear([]int{0, 1}, []float64{rng.Float64() + 0.1, rng.Float64() + 0.1})
		}
		m := run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			onion.TopK(w.cond, f(), 10, ctr)
		})
		onionS.Points = append(onionS.Points, Point{X: w.name, Value: m.ms()})
		m = run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			if _, err := cube.TopK(gridcube.Query{Cond: w.cond, F: f(), K: 10}, ctr); err != nil {
				must(err)
			}
		})
		cubeS.Points = append(cubeS.Points, Point{X: w.name, Value: m.ms()})
	}
	rep.Series = []Series{onionS, cubeS}
	return rep
}

// extGridPart: the §4.1.2 partition-scheme comparison — the signature cube
// over a merged-grid hierarchy vs over an R-tree, on uniform and skewed
// (correlated) data. The thesis predicts the grid suffers on skewed data
// because of dead cells while the hierarchical partition stays robust.
func extGridPart(cfg Config) *Report {
	rep := &Report{ID: "ext.gridpart", Title: "Grid vs Hierarchical Partition (§4.1.2)",
		XLabel: "data", Metric: "ms/query"}
	var gridS, rtreeS Series
	gridS.Name, rtreeS.Name = "grid-partition", "rtree-partition"
	for _, dist := range []table.Distribution{table.Uniform, table.Correlated} {
		tb := dataset.Synthetic(cfg.T(1_000_000), 3, 2, 50, dist, cfg.Seed)
		dom := ranking.UnitBox(2)
		grid := gridtree.Build(tb, []int{0, 1}, dom, gridtree.Config{})
		cubeGrid := sigcube.BuildOnTree(tb, grid, sigcube.Config{})
		cubeRTree := sigcube.Build(tb, sigcube.Config{})
		rng := cfg.rng(int64(dist))
		conds := make([]core.Cond, cfg.Queries)
		funcs := make([]ranking.Func, cfg.Queries)
		for i := range conds {
			conds[i] = core.Cond{rng.Intn(3): int32(rng.Intn(50))}
			funcs[i] = ranking.SqDist([]int{0, 1}, []float64{rng.Float64(), rng.Float64()})
		}
		x := dist.String()
		m := run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			if _, err := cubeGrid.TopK(conds[qi], funcs[qi], 20, ctr); err != nil {
				must(err)
			}
		})
		gridS.Points = append(gridS.Points, Point{X: x, Value: m.ms()})
		m = run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			if _, err := cubeRTree.TopK(conds[qi], funcs[qi], 20, ctr); err != nil {
				must(err)
			}
		})
		rtreeS.Points = append(rtreeS.Points, Point{X: x, Value: m.ms()})
	}
	rep.Series = []Series{gridS, rtreeS}
	return rep
}
