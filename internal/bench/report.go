// Package bench is the experiment harness reproducing every table and
// figure of the thesis' evaluation sections. Each experiment function
// regenerates one figure's series: the same sweep axis, the same competing
// methods, the same metric (wall-clock time, block reads, states, heap
// peaks, or bytes). Absolute values differ from the 2007 testbed; the
// reproduction target is the shape — who wins, by what order of magnitude,
// and where trends bend.
//
// Experiments accept a Config whose Scale multiplies the thesis' row
// counts; the default of 0.1 keeps the full suite in laptop territory while
// preserving the comparative behaviour. EXPERIMENTS.md records a full run.
package bench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"rankcube/internal/errs"
	"rankcube/internal/governor"
	"rankcube/internal/obs"
	"rankcube/internal/stats"
)

// Config parameterizes a harness run.
type Config struct {
	// Scale multiplies the thesis' dataset sizes (default 0.1 → 3M-row
	// experiments run at 300k).
	Scale float64
	// Queries is the number of random queries averaged per data point
	// (thesis: 20).
	Queries int
	// Seed drives workload generation.
	Seed int64
	// ReadCostMS is the simulated cost of one block read in milliseconds,
	// folded into every time metric. The thesis' execution times are
	// disk-bound; pure in-memory wall clock would invert several of its
	// verdicts. Default 0.1 ms (a fast 2005-era sequential 4 KB read; the
	// relative shapes are insensitive to the constant). Set negative for
	// raw wall clock.
	ReadCostMS float64
	// Context, when non-nil, bounds the run: cancellation stops a workload
	// between queries and, through the query governor, within a query at
	// block-read granularity. Partial aggregates are kept.
	//lint:ctxfield options-struct carrier: Config is consumed once at Run entry, not retained past it
	Context context.Context
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.1
	}
	if c.Queries <= 0 {
		c.Queries = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ReadCostMS == 0 {
		c.ReadCostMS = 0.1
	}
	if c.ReadCostMS < 0 {
		c.ReadCostMS = 0
	}
	return c
}

// T scales a thesis row count, keeping at least 1000 rows.
func (c Config) T(thesisRows int) int {
	n := int(float64(thesisRows) * c.Scale)
	if n < 1000 {
		n = 1000
	}
	return n
}

// Point is one measurement at one sweep position for one method.
type Point struct {
	X     string  // sweep label, e.g. "k=10"
	Value float64 // primary metric value
}

// Series is one method's curve.
type Series struct {
	Name   string
	Points []Point
}

// Report is one regenerated figure or table.
type Report struct {
	ID     string // e.g. "fig3.4"
	Title  string // the thesis caption
	XLabel string
	Metric string // what Value means, e.g. "ms", "block reads"
	Series []Series
	// Notes records deviations or scale information.
	Notes []string
}

// String renders the report as an aligned text table, series as columns.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	fmt.Fprintf(&b, "metric: %s\n", r.Metric)
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	if len(r.Series) == 0 {
		return b.String()
	}
	// Header.
	fmt.Fprintf(&b, "%-18s", r.XLabel)
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%16s", s.Name)
	}
	b.WriteByte('\n')
	for i := range r.Series[0].Points {
		fmt.Fprintf(&b, "%-18s", r.Series[0].Points[i].X)
		for _, s := range r.Series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, "%16s", formatValue(s.Points[i].Value))
			} else {
				fmt.Fprintf(&b, "%16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// runner measures one method over a workload of queries.
type runner struct {
	name string
	// exec runs one query and returns optional auxiliary metrics.
	exec func(qi int, ctr *stats.Counters)
}

// measurement aggregates a workload run.
type measurement struct {
	avgTime  time.Duration
	counters *stats.Counters
	queries  int
	readCost float64 // ms charged per block read
}

// ms reports the per-query time metric: wall clock plus simulated I/O.
func (m measurement) ms() float64 {
	wall := float64(m.avgTime.Microseconds()) / 1000
	return wall + m.avgReads()*m.readCost
}

// avgReads reports mean block reads per query for the given structures
// (all structures when none given).
func (m measurement) avgReads(structs ...stats.Structure) float64 {
	var total int64
	if len(structs) == 0 {
		total = m.counters.TotalReads()
	} else {
		for _, s := range structs {
			total += m.counters.Reads(s)
		}
	}
	return float64(total) / float64(m.queries)
}

// run executes the workload and aggregates time and counters. A canceled
// Config.Context stops the loop — mid-query via the governor's block-read
// checks — and the partial aggregate over the completed queries is kept.
func run(cfg Config, queries int, exec func(qi int, ctr *stats.Counters)) measurement {
	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	agg := stats.New()
	start := time.Now()
	done := 0
	for qi := 0; qi < queries; qi++ {
		if ctx.Err() != nil {
			break
		}
		ctr := stats.New()
		ctr.SetGovernor(governor.New(ctx, governor.Limits{}))
		qStart := time.Now()
		canceled := runOne(exec, qi, ctr)
		ctr.SetGovernor(nil)
		outcome := obs.OutcomeOK
		if canceled {
			outcome = obs.OutcomeCanceled
		}
		// Feed the live registry so rankbench's -http endpoint shows
		// harness traffic, not just public-API queries.
		obs.Default().RecordQuery("bench", outcome, time.Since(qStart),
			ctr.ReadsSnapshot(), ctr.Retries, ctr.Downgrades)
		agg.Merge(ctr)
		done++
		if canceled {
			break
		}
	}
	if done == 0 {
		done = 1 // canceled before the first query; avoid dividing by zero
	}
	elapsed := time.Since(start)
	return measurement{
		avgTime:  elapsed / time.Duration(done),
		counters: agg,
		queries:  done,
		readCost: cfg.ReadCostMS,
	}
}

// runOne executes one query under its governor, absorbing a cancellation
// abort so an interrupt mid-query still yields the partial aggregate. Any
// other panic propagates: the harness has no business masking engine bugs.
func runOne(exec func(qi int, ctr *stats.Counters), qi int, ctr *stats.Counters) (canceled bool) {
	defer func() {
		if r := recover(); r != nil {
			if err, ok := errs.IsAbort(r); ok && errors.Is(err, errs.ErrCanceled) {
				canceled = true
				return
			}
			//lint:invariant re-raise: the harness must not mask engine bugs
			panic(r)
		}
	}()
	exec(qi, ctr)
	return false
}

// must stops the experiment on a query error. Benchmark workloads are fixed
// and known-good, so any error reaching the harness is a bug in the harness
// or the engine, not a recoverable fault.
func must(err error) {
	if err != nil {
		//lint:invariant benchmark workloads are known-good; an error is a harness bug
		panic(err)
	}
}

// workloadRand returns the harness RNG for query generation.
func (c Config) rng(offset int64) *rand.Rand {
	return rand.New(rand.NewSource(c.Seed + offset))
}

// Registry lists every experiment by id.
var Registry = map[string]func(Config) *Report{}

// register wires an experiment into the registry (called from init funcs).
func register(id string, fn func(Config) *Report) {
	Registry[id] = fn
}

// IDs returns the registered experiment ids in order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(id string, cfg Config) (*Report, error) {
	fn, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (known: %v): %w", id, IDs(), errs.ErrInvalidArgument)
	}
	return fn(cfg.Defaults()), nil
}

// RunCtx executes one experiment by id under ctx: cancellation (e.g. a
// propagated SIGINT) stops each workload between queries and within a query
// at block-read granularity, returning the partially filled report.
func RunCtx(ctx context.Context, id string, cfg Config) (*Report, error) {
	cfg.Context = ctx
	return Run(id, cfg)
}
