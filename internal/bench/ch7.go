package bench

import (
	"fmt"

	"time"

	"rankcube/internal/baselines"
	"rankcube/internal/core"
	"rankcube/internal/dataset"
	"rankcube/internal/rtree"
	"rankcube/internal/sigcube"
	"rankcube/internal/signature"
	"rankcube/internal/skyline"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

func init() {
	register("fig7.3", func(c Config) *Report { return fig7_sizeSweep(c, "fig7.3", metricTime) })
	register("fig7.4", func(c Config) *Report { return fig7_sizeSweep(c, "fig7.4", metricDisk) })
	register("fig7.5", func(c Config) *Report { return fig7_sizeSweep(c, "fig7.5", metricHeap) })
	register("fig7.6", fig7_6)
	register("fig7.7", fig7_7)
	register("fig7.8", fig7_8)
	register("fig7.9", fig7_9)
	register("fig7.10", fig7_10)
	register("fig7.11", fig7_11)
	register("fig7.12", fig7_12)
	register("fig7.13", fig7_13)
	register("fig7.14", fig7_14)
}

// ch7Env is a signature cube plus skyline engine and the two baselines:
// boolean-first (filter + block-nested-loop skyline) and ranking-first
// (BBS without signatures, random-access verification).
type ch7Env struct {
	tb     *table.Table
	cube   *sigcube.Cube
	engine *skyline.Engine
	heap   *baselines.HeapFile
}

func newCh7Env(tb *table.Table, fanout int) *ch7Env {
	cube := sigcube.Build(tb, sigcube.Config{RTree: rtree.Config{Fanout: fanout}})
	return &ch7Env{
		tb:     tb,
		cube:   cube,
		engine: skyline.NewEngine(cube),
		heap:   baselines.NewHeapFile(tb, 0),
	}
}

// booleanSkyline: scan + filter + BNL skyline (the Boolean baseline).
func (e *ch7Env) booleanSkyline(q skyline.Query, ctr *stats.Counters) int {
	e.heap.ScanAll(ctr)
	type pt struct{ coord []float64 }
	var window []pt
	buf := make([]float64, e.tb.Schema().R())
	scratch := make([]float64, 0, len(q.Dims))
	for i := 0; i < e.tb.Len(); i++ {
		tid := table.TID(i)
		if !e.tb.Matches(tid, q.Cond) {
			continue
		}
		row := e.tb.RankRow(tid, buf)
		coord := append([]float64(nil), q.Point(row, scratch)...)
		dominated := false
		out := window[:0]
		for _, w := range window {
			if dominatesCoord(w.coord, coord) {
				dominated = true
				out = window
				break
			}
			if !dominatesCoord(coord, w.coord) {
				out = append(out, w)
			}
		}
		window = out
		if !dominated {
			window = append(window, pt{coord})
		}
	}
	return len(window)
}

func dominatesCoord(a, b []float64) bool {
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// verifyTester verifies the predicate only at the tuple level through
// random accesses (the Ranking baseline).
type verifyTester struct {
	env    *ch7Env
	cond   core.Cond
	buf    *stats.Counters
	height int
	pages  map[int32]bool
}

func (v *verifyTester) Test(path []int) bool {
	if len(path) < v.height {
		return true
	}
	tid, ok := v.env.cube.Tree().TIDAt(path)
	if !ok {
		return false
	}
	page := int32(v.env.heap.PageOf(tid))
	if !v.pages[page] {
		v.pages[page] = true
		v.buf.Read(stats.StructTable, 1)
	}
	return v.env.tb.Matches(tid, v.cond)
}

func (e *ch7Env) rankingSkyline(q skyline.Query, ctr *stats.Counters) int {
	vt := &verifyTester{env: e, cond: q.Cond, buf: ctr,
		height: e.cube.Tree().Height(), pages: map[int32]bool{}}
	res, _, err := e.engine.SkylineWithTester(q, vt, ctr)
	must(err)
	return len(res)
}

func (e *ch7Env) signatureSkyline(q skyline.Query, ctr *stats.Counters) int {
	res, _, err := e.engine.Skyline(q, ctr)
	must(err)
	return len(res)
}

// ch7Query draws a predicate over dimension 0 plus the skyline dims.
func ch7Query(cfg Config, tb *table.Table, qi, nPred, dims int) skyline.Query {
	rng := cfg.rng(int64(qi)*71 + int64(nPred))
	cond := core.Cond{}
	for _, d := range rng.Perm(tb.Schema().S())[:nPred] {
		cond[d] = int32(rng.Intn(tb.Schema().SelCard[d]))
	}
	sdims := make([]int, dims)
	for i := range sdims {
		sdims[i] = i
	}
	return skyline.Query{Cond: cond, Dims: sdims}
}

// fig7_sizeSweep: time / disk / heap w.r.t. T for the three methods.
func fig7_sizeSweep(cfg Config, id string, kind metricKind) *Report {
	titles := map[metricKind]string{
		metricTime: "Execution Time w.r.t. T",
		metricDisk: "Number of Disk Access w.r.t. T",
		metricHeap: "Peak Candidate Heap Size w.r.t. T",
	}
	metrics := map[metricKind]string{
		metricTime: "ms/query", metricDisk: "block reads/query", metricHeap: "max heap entries",
	}
	rep := &Report{ID: id, Title: titles[kind], XLabel: "T (thesis rows)", Metric: metrics[kind]}
	var bS, rS, sS Series
	bS.Name, rS.Name, sS.Name = "Boolean", "Ranking", "Signature"
	for _, millions := range []int{1, 2, 5} {
		tb := dataset.Synthetic(cfg.T(millions*1_000_000), 3, 3, 100, table.Uniform, cfg.Seed)
		env := newCh7Env(tb, 0)
		x := fmt.Sprintf("%dM", millions)
		addPoint := func(s *Series, exec func(qi int, ctr *stats.Counters)) {
			m := run(cfg, cfg.Queries, exec)
			var v float64
			switch kind {
			case metricTime:
				v = m.ms()
			case metricDisk:
				v = m.avgReads()
			case metricHeap:
				v = float64(m.counters.PeakHeap)
			}
			s.Points = append(s.Points, Point{X: x, Value: v})
		}
		addPoint(&bS, func(qi int, ctr *stats.Counters) {
			env.booleanSkyline(ch7Query(cfg, tb, qi, 1, 2), ctr)
		})
		addPoint(&rS, func(qi int, ctr *stats.Counters) {
			env.rankingSkyline(ch7Query(cfg, tb, qi, 1, 2), ctr)
		})
		addPoint(&sS, func(qi int, ctr *stats.Counters) {
			env.signatureSkyline(ch7Query(cfg, tb, qi, 1, 2), ctr)
		})
	}
	rep.Series = []Series{bS, rS, sS}
	return rep
}

// fig7_6: execution time w.r.t. boolean cardinality C.
func fig7_6(cfg Config) *Report {
	rep := &Report{ID: "fig7.6", Title: "Execution Time w.r.t. C",
		XLabel: "cardinality", Metric: "ms/query"}
	var bS, rS, sS Series
	bS.Name, rS.Name, sS.Name = "Boolean", "Ranking", "Signature"
	for _, c := range []int{10, 100, 1000} {
		tb := dataset.Synthetic(cfg.T(1_000_000), 3, 3, c, table.Uniform, cfg.Seed)
		env := newCh7Env(tb, 0)
		x := fmt.Sprintf("C=%d", c)
		bS.Points = append(bS.Points, Point{X: x, Value: run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			env.booleanSkyline(ch7Query(cfg, tb, qi, 1, 2), ctr)
		}).ms()})
		rS.Points = append(rS.Points, Point{X: x, Value: run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			env.rankingSkyline(ch7Query(cfg, tb, qi, 1, 2), ctr)
		}).ms()})
		sS.Points = append(sS.Points, Point{X: x, Value: run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			env.signatureSkyline(ch7Query(cfg, tb, qi, 1, 2), ctr)
		}).ms()})
	}
	rep.Series = []Series{bS, rS, sS}
	return rep
}

// fig7_7: execution time w.r.t. data distribution S ∈ {E, C, A}.
func fig7_7(cfg Config) *Report {
	rep := &Report{ID: "fig7.7", Title: "Execution Time w.r.t. S",
		XLabel: "distribution", Metric: "ms/query"}
	var bS, rS, sS Series
	bS.Name, rS.Name, sS.Name = "Boolean", "Ranking", "Signature"
	for _, dist := range []table.Distribution{table.Uniform, table.Correlated, table.AntiCorrelated} {
		tb := dataset.Synthetic(cfg.T(1_000_000), 3, 3, 100, dist, cfg.Seed)
		env := newCh7Env(tb, 0)
		x := dist.String()
		bS.Points = append(bS.Points, Point{X: x, Value: run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			env.booleanSkyline(ch7Query(cfg, tb, qi, 1, 2), ctr)
		}).ms()})
		rS.Points = append(rS.Points, Point{X: x, Value: run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			env.rankingSkyline(ch7Query(cfg, tb, qi, 1, 2), ctr)
		}).ms()})
		sS.Points = append(sS.Points, Point{X: x, Value: run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			env.signatureSkyline(ch7Query(cfg, tb, qi, 1, 2), ctr)
		}).ms()})
	}
	rep.Series = []Series{bS, rS, sS}
	return rep
}

// fig7_8: execution time w.r.t. the number of preference dimensions Dp.
func fig7_8(cfg Config) *Report {
	tb := dataset.Synthetic(cfg.T(1_000_000), 3, 4, 100, table.Uniform, cfg.Seed)
	env := newCh7Env(tb, 0)
	rep := &Report{ID: "fig7.8", Title: "Execution Time w.r.t. Dp",
		XLabel: "preference dims", Metric: "ms/query"}
	var sS Series
	sS.Name = "Signature"
	for _, dp := range []int{2, 3, 4} {
		m := run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			env.signatureSkyline(ch7Query(cfg, tb, qi, 1, dp), ctr)
		})
		sS.Points = append(sS.Points, Point{X: fmt.Sprintf("Dp=%d", dp), Value: m.ms()})
	}
	rep.Series = []Series{sS}
	return rep
}

// fig7_9: execution time w.r.t. R-tree fanout m.
func fig7_9(cfg Config) *Report {
	tb := dataset.Synthetic(cfg.T(1_000_000), 3, 3, 100, table.Uniform, cfg.Seed)
	rep := &Report{ID: "fig7.9", Title: "Execution Time w.r.t. m",
		XLabel: "fanout", Metric: "ms/query"}
	var sS Series
	sS.Name = "Signature"
	for _, m := range []int{32, 64, 128, 204} {
		env := newCh7Env(tb, m)
		meas := run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			env.signatureSkyline(ch7Query(cfg, tb, qi, 1, 2), ctr)
		})
		sS.Points = append(sS.Points, Point{X: fmt.Sprintf("m=%d", m), Value: meas.ms()})
	}
	rep.Series = []Series{sS}
	return rep
}

// fig7_10: execution time w.r.t. hardness: the number of preference
// dimensions drawn anti-correlated (larger skylines are harder).
func fig7_10(cfg Config) *Report {
	rep := &Report{ID: "fig7.10", Title: "Execution Time w.r.t. Hardness",
		XLabel: "anti-correlated dims", Metric: "ms/query",
		Notes: []string{"hardness h = number of preference dimensions drawn anti-correlated"}}
	var sS Series
	sS.Name = "Signature"
	n := cfg.T(1_000_000)
	for _, h := range []int{0, 1, 2, 3} {
		// Blend: h dims from an anti-correlated draw, the rest uniform.
		anti := dataset.Synthetic(n, 3, 3, 100, table.AntiCorrelated, cfg.Seed)
		tb := table.MustNew(anti.Schema())
		uni := dataset.Synthetic(n, 3, 3, 100, table.Uniform, cfg.Seed+1)
		sel := make([]int32, 3)
		rank := make([]float64, 3)
		for i := 0; i < n; i++ {
			tid := table.TID(i)
			for d := 0; d < 3; d++ {
				sel[d] = anti.Sel(tid, d)
				if d < h {
					rank[d] = anti.Rank(tid, d)
				} else {
					rank[d] = uni.Rank(tid, d)
				}
			}
			tb.Append(sel, rank)
		}
		env := newCh7Env(tb, 0)
		m := run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			env.signatureSkyline(ch7Query(cfg, tb, qi, 1, 3), ctr)
		})
		sS.Points = append(sS.Points, Point{X: fmt.Sprintf("h=%d", h), Value: m.ms()})
	}
	rep.Series = []Series{sS}
	return rep
}

// fig7_11: execution time w.r.t. the number of boolean predicates.
func fig7_11(cfg Config) *Report {
	tb := dataset.Synthetic(cfg.T(1_000_000), 4, 3, 20, table.Uniform, cfg.Seed)
	env := newCh7Env(tb, 0)
	rep := &Report{ID: "fig7.11", Title: "Execution Time w.r.t. Boolean Predicates",
		XLabel: "#predicates", Metric: "ms/query"}
	var bS, sS Series
	bS.Name, sS.Name = "Boolean", "Signature"
	for _, np := range []int{0, 1, 2, 3} {
		x := fmt.Sprintf("%d", np)
		bS.Points = append(bS.Points, Point{X: x, Value: run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			env.booleanSkyline(ch7Query(cfg, tb, qi, np, 2), ctr)
		}).ms()})
		sS.Points = append(sS.Points, Point{X: x, Value: run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			env.signatureSkyline(ch7Query(cfg, tb, qi, np, 2), ctr)
		}).ms()})
	}
	rep.Series = []Series{bS, sS}
	return rep
}

// timedTester wraps a tester, accumulating wall-clock time spent in
// signature probes (fig. 7.12's load-vs-query breakdown).
type timedTester struct {
	inner signature.Tester
	ctr   *stats.Counters
}

func (t *timedTester) Test(path []int) bool {
	start := time.Now()
	ok := t.inner.Test(path)
	t.ctr.AddPhase("signature", time.Since(start))
	return ok
}

// fig7_12: signature loading time vs query time.
func fig7_12(cfg Config) *Report {
	tb := dataset.Synthetic(cfg.T(1_000_000), 3, 3, 100, table.Uniform, cfg.Seed)
	env := newCh7Env(tb, 0)
	rep := &Report{ID: "fig7.12", Title: "Signature Loading Time vs. Query Time",
		XLabel: "#predicates", Metric: "ms/query"}
	var sig, total Series
	sig.Name, total.Name = "signature-time", "total-time"
	for _, np := range []int{1, 2, 3} {
		agg := stats.New()
		start := time.Now()
		for qi := 0; qi < cfg.Queries; qi++ {
			q := ch7Query(cfg, tb, qi, np, 2)
			inner, any, err := env.cube.TesterFor(q.Cond, agg)
			must(err)
			if !any {
				continue
			}
			tt := &timedTester{inner: inner, ctr: agg}
			if _, _, err := env.engine.SkylineWithTester(q, tt, agg); err != nil {
				must(err)
			}
		}
		elapsed := time.Since(start)
		x := fmt.Sprintf("%d", np)
		sig.Points = append(sig.Points, Point{X: x,
			Value: ms(agg.Phase("signature")) / float64(cfg.Queries)})
		total.Points = append(total.Points, Point{X: x,
			Value: ms(elapsed) / float64(cfg.Queries)})
	}
	rep.Series = []Series{sig, total}
	return rep
}

// fig7_13: drill-down reuse vs a fresh query.
func fig7_13(cfg Config) *Report {
	tb := dataset.Synthetic(cfg.T(1_000_000), 3, 3, 20, table.Uniform, cfg.Seed)
	env := newCh7Env(tb, 0)
	rep := &Report{ID: "fig7.13", Title: "Drill-Down Query vs. New Query",
		XLabel: "query", Metric: "ms/query"}
	var drill, fresh Series
	drill.Name, fresh.Name = "drill-down", "new-query"
	for qi := 0; qi < cfg.Queries; qi++ {
		rng := cfg.rng(int64(qi) * 83)
		base := skyline.Query{Cond: core.Cond{0: int32(rng.Intn(20))}, Dims: []int{0, 1}}
		extra := core.Cond{1: int32(rng.Intn(20))}
		_, snap, err := env.engine.Skyline(base, stats.New())
		must(err)
		start := time.Now()
		if _, _, err := env.engine.DrillDown(snap, extra, stats.New()); err != nil {
			must(err)
		}
		dTime := time.Since(start)
		tight := skyline.Query{Cond: core.Cond{0: base.Cond[0], 1: extra[1]}, Dims: []int{0, 1}}
		start = time.Now()
		if _, _, err := env.engine.Skyline(tight, stats.New()); err != nil {
			must(err)
		}
		fTime := time.Since(start)
		x := fmt.Sprintf("q%d", qi+1)
		drill.Points = append(drill.Points, Point{X: x, Value: ms(dTime)})
		fresh.Points = append(fresh.Points, Point{X: x, Value: ms(fTime)})
	}
	rep.Series = []Series{drill, fresh}
	return rep
}

// fig7_14: roll-up reuse vs a fresh query.
func fig7_14(cfg Config) *Report {
	tb := dataset.Synthetic(cfg.T(1_000_000), 3, 3, 20, table.Uniform, cfg.Seed)
	env := newCh7Env(tb, 0)
	rep := &Report{ID: "fig7.14", Title: "Roll-Up Query vs. New Query",
		XLabel: "query", Metric: "ms/query"}
	var roll, fresh Series
	roll.Name, fresh.Name = "roll-up", "new-query"
	for qi := 0; qi < cfg.Queries; qi++ {
		rng := cfg.rng(int64(qi) * 89)
		base := skyline.Query{
			Cond: core.Cond{0: int32(rng.Intn(20)), 1: int32(rng.Intn(20))},
			Dims: []int{0, 1},
		}
		_, snap, err := env.engine.Skyline(base, stats.New())
		must(err)
		start := time.Now()
		if _, _, err := env.engine.RollUp(snap, []int{1}, stats.New()); err != nil {
			must(err)
		}
		rTime := time.Since(start)
		relaxed := skyline.Query{Cond: core.Cond{0: base.Cond[0]}, Dims: []int{0, 1}}
		start = time.Now()
		if _, _, err := env.engine.Skyline(relaxed, stats.New()); err != nil {
			must(err)
		}
		fTime := time.Since(start)
		x := fmt.Sprintf("q%d", qi+1)
		roll.Points = append(roll.Points, Point{X: x, Value: ms(rTime)})
		fresh.Points = append(fresh.Points, Point{X: x, Value: ms(fTime)})
	}
	rep.Series = []Series{roll, fresh}
	return rep
}
