package bench

import (
	"fmt"
	"math/rand"

	"rankcube/internal/baselines"
	"rankcube/internal/core"
	"rankcube/internal/dataset"
	"rankcube/internal/gridcube"
	"rankcube/internal/ranking"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// ch3Env packages the chapter-3 competitors over one dataset: the ranking
// cube (or fragments), the rank-mapping index, and the SQL-Server-style
// baseline (per-dimension indexes + random access).
type ch3Env struct {
	tb   *table.Table
	cube *gridcube.Cube
	heap *baselines.HeapFile
	bl   *baselines.BooleanFirst
	rm   *baselines.RankMapping
}

func newCh3Env(tb *table.Table, cubeCfg gridcube.Config) *ch3Env {
	h := baselines.NewHeapFile(tb, 0)
	return &ch3Env{
		tb:   tb,
		cube: gridcube.Build(tb, cubeCfg),
		heap: h,
		bl:   baselines.NewBooleanFirst(h),
		rm:   baselines.NewRankMapping(tb, 0),
	}
}

// ch3Query is one randomized workload query per thesis Table 3.9.
type ch3Query struct {
	cond core.Cond
	f    ranking.Func
	k    int
}

// ch3Workload draws queries with s selection conditions over the first
// selDims dimensions, linear functions over r ranking dimensions with
// skewness u, asking for k results.
func ch3Workload(rng *rand.Rand, tb *table.Table, n, s, r int, u float64, k int) []ch3Query {
	out := make([]ch3Query, n)
	schema := tb.Schema()
	for i := range out {
		cond := core.Cond{}
		for _, d := range rng.Perm(schema.S())[:s] {
			cond[d] = int32(rng.Intn(schema.SelCard[d]))
		}
		attrs := make([]int, r)
		weights := make([]float64, r)
		for j := 0; j < r; j++ {
			attrs[j] = j
			weights[j] = 1 + rng.Float64()*(u-1)
		}
		// Force the exact skew u between two of the weights.
		if r >= 2 && u > 1 {
			weights[0] = 1
			weights[1] = u
		}
		out[i] = ch3Query{cond: cond, f: ranking.Linear(attrs, weights), k: k}
	}
	return out
}

// measure runs the workload through each competitor and returns per-method
// measurements.
func (e *ch3Env) measure(queries []ch3Query, cfg Config) map[string]measurement {
	return map[string]measurement{
		"ranking-cube": run(cfg, len(queries), func(qi int, ctr *stats.Counters) {
			q := queries[qi]
			if _, err := e.cube.TopK(gridcube.Query{Cond: q.cond, F: q.f, K: q.k}, ctr); err != nil {
				must(err)
			}
		}),
		"rank-mapping": run(cfg, len(queries), func(qi int, ctr *stats.Counters) {
			q := queries[qi]
			e.rm.TopK(q.cond, q.f, q.k, ctr)
		}),
		"baseline": run(cfg, len(queries), func(qi int, ctr *stats.Counters) {
			q := queries[qi]
			e.bl.TopK(q.cond, q.f, q.k, ctr)
		}),
	}
}

var ch3Methods = []string{"ranking-cube", "rank-mapping", "baseline"}

func timeSeries(points map[string][]Point) []Series {
	out := make([]Series, 0, len(ch3Methods))
	for _, m := range ch3Methods {
		out = append(out, Series{Name: m, Points: points[m]})
	}
	return out
}

func init() {
	register("fig3.4", fig3_4)
	register("fig3.5", fig3_5)
	register("fig3.6", fig3_6)
	register("fig3.7", fig3_7)
	register("fig3.8", fig3_8)
	register("fig3.9", fig3_9)
	register("fig3.10", fig3_10)
	register("fig3.11", fig3_11)
	register("fig3.12", fig3_12)
	register("fig3.13", fig3_13)
	register("fig3.14", fig3_14)
	register("fig3.15", fig3_15)
}

// fig3_4: execution time w.r.t. k on the default synthetic data.
func fig3_4(cfg Config) *Report {
	tb := dataset.Synthetic(cfg.T(3_000_000), 3, 2, 20, table.Uniform, cfg.Seed)
	env := newCh3Env(tb, gridcube.Config{})
	rep := &Report{ID: "fig3.4", Title: "Query Execution Time w.r.t. k",
		XLabel: "k", Metric: "ms/query",
		Notes: []string{fmt.Sprintf("T=%d (thesis 3M scaled by %.2g)", tb.Len(), cfg.Scale)}}
	points := map[string][]Point{}
	for _, k := range []int{5, 10, 15, 20} {
		queries := ch3Workload(cfg.rng(int64(k)), tb, cfg.Queries, 2, 2, 1, k)
		for name, m := range env.measure(queries, cfg) {
			points[name] = append(points[name], Point{X: fmt.Sprintf("k=%d", k), Value: m.ms()})
		}
	}
	rep.Series = timeSeries(points)
	return rep
}

// fig3_5: execution time w.r.t. query skewness u.
func fig3_5(cfg Config) *Report {
	tb := dataset.Synthetic(cfg.T(3_000_000), 3, 2, 20, table.Uniform, cfg.Seed)
	env := newCh3Env(tb, gridcube.Config{})
	rep := &Report{ID: "fig3.5", Title: "Query Execution Time w.r.t. u",
		XLabel: "skewness u", Metric: "ms/query"}
	points := map[string][]Point{}
	for _, u := range []float64{1, 2, 3, 4, 5} {
		queries := ch3Workload(cfg.rng(int64(u*7)), tb, cfg.Queries, 2, 2, u, 10)
		for name, m := range env.measure(queries, cfg) {
			points[name] = append(points[name], Point{X: fmt.Sprintf("u=%g", u), Value: m.ms()})
		}
	}
	rep.Series = timeSeries(points)
	return rep
}

// fig3_6: execution time w.r.t. r, the number of ranking dimensions in the
// function, on 4-ranking-dimension data.
func fig3_6(cfg Config) *Report {
	tb := dataset.Synthetic(cfg.T(3_000_000), 3, 4, 20, table.Uniform, cfg.Seed)
	env := newCh3Env(tb, gridcube.Config{})
	rep := &Report{ID: "fig3.6", Title: "Query Execution Times w.r.t. r",
		XLabel: "r", Metric: "ms/query"}
	points := map[string][]Point{}
	for _, r := range []int{2, 3, 4} {
		queries := ch3Workload(cfg.rng(int64(r)), tb, cfg.Queries, 2, r, 1, 10)
		for name, m := range env.measure(queries, cfg) {
			points[name] = append(points[name], Point{X: fmt.Sprintf("r=%d", r), Value: m.ms()})
		}
	}
	rep.Series = timeSeries(points)
	return rep
}

// fig3_7: execution time w.r.t. database size T.
func fig3_7(cfg Config) *Report {
	rep := &Report{ID: "fig3.7", Title: "Query Execution Time w.r.t. T",
		XLabel: "T (thesis rows)", Metric: "ms/query"}
	points := map[string][]Point{}
	for _, millions := range []int{1, 2, 3, 5, 10} {
		tb := dataset.Synthetic(cfg.T(millions*1_000_000), 3, 2, 20, table.Uniform, cfg.Seed)
		env := newCh3Env(tb, gridcube.Config{})
		queries := ch3Workload(cfg.rng(int64(millions)), tb, cfg.Queries, 2, 2, 1, 10)
		for name, m := range env.measure(queries, cfg) {
			points[name] = append(points[name], Point{X: fmt.Sprintf("%dM", millions), Value: m.ms()})
		}
	}
	rep.Series = timeSeries(points)
	return rep
}

// fig3_8: execution time w.r.t. selection-dimension cardinality C.
func fig3_8(cfg Config) *Report {
	rep := &Report{ID: "fig3.8", Title: "Query Execution Time w.r.t. C",
		XLabel: "cardinality", Metric: "ms/query"}
	points := map[string][]Point{}
	for _, c := range []int{10, 20, 50, 100} {
		tb := dataset.Synthetic(cfg.T(3_000_000), 3, 2, c, table.Uniform, cfg.Seed)
		env := newCh3Env(tb, gridcube.Config{})
		queries := ch3Workload(cfg.rng(int64(c)), tb, cfg.Queries, 2, 2, 1, 10)
		for name, m := range env.measure(queries, cfg) {
			points[name] = append(points[name], Point{X: fmt.Sprintf("C=%d", c), Value: m.ms()})
		}
	}
	rep.Series = timeSeries(points)
	return rep
}

// fig3_9: execution time w.r.t. number of selection conditions s.
func fig3_9(cfg Config) *Report {
	tb := dataset.Synthetic(cfg.T(3_000_000), 4, 2, 20, table.Uniform, cfg.Seed)
	env := newCh3Env(tb, gridcube.Config{})
	rep := &Report{ID: "fig3.9", Title: "Query Execution Time w.r.t. s",
		XLabel: "s", Metric: "ms/query"}
	points := map[string][]Point{}
	for _, s := range []int{2, 3, 4} {
		queries := ch3Workload(cfg.rng(int64(s)), tb, cfg.Queries, s, 2, 1, 10)
		for name, m := range env.measure(queries, cfg) {
			points[name] = append(points[name], Point{X: fmt.Sprintf("s=%d", s), Value: m.ms()})
		}
	}
	rep.Series = timeSeries(points)
	return rep
}

// fig3_10: ranking-cube execution time w.r.t. base block size.
func fig3_10(cfg Config) *Report {
	tb := dataset.Synthetic(cfg.T(3_000_000), 3, 2, 20, table.Uniform, cfg.Seed)
	rep := &Report{ID: "fig3.10", Title: "Query Execution Time w.r.t. Block Size",
		XLabel: "block size", Metric: "ms/query"}
	var series Series
	series.Name = "ranking-cube"
	for _, b := range []int{100, 200, 500, 1000} {
		cube := gridcube.Build(tb, gridcube.Config{BlockSize: b})
		queries := ch3Workload(cfg.rng(int64(b)), tb, cfg.Queries, 2, 2, 1, 10)
		m := run(cfg, len(queries), func(qi int, ctr *stats.Counters) {
			q := queries[qi]
			if _, err := cube.TopK(gridcube.Query{Cond: q.cond, F: q.f, K: q.k}, ctr); err != nil {
				must(err)
			}
		})
		series.Points = append(series.Points, Point{X: fmt.Sprintf("B=%d", b), Value: m.ms()})
	}
	rep.Series = []Series{series}
	return rep
}

// fig3_11: space usage w.r.t. number of selection dimensions (fragments
// F=2 vs the baselines' index space).
func fig3_11(cfg Config) *Report {
	rep := &Report{ID: "fig3.11", Title: "Space Usage w.r.t. Number of Selection Dimensions",
		XLabel: "S", Metric: "MB",
		Notes: []string{"RF = ranking fragments (F=2) incl. base block table; RM/BL = index sizes incl. heap file"}}
	var rf, rm, bl Series
	rf.Name, rm.Name, bl.Name = "RF", "RM", "BL"
	for _, s := range []int{3, 6, 9, 12} {
		tb := dataset.Synthetic(cfg.T(3_000_000), s, 2, 20, table.Uniform, cfg.Seed)
		cube := gridcube.Build(tb, gridcube.Config{FragmentSize: 2})
		h := baselines.NewHeapFile(tb, 0)
		blIdx := baselines.NewBooleanFirst(h)
		rmIdx := baselines.NewRankMapping(tb, 0)
		mb := func(v int64) float64 { return float64(v) / (1 << 20) }
		x := fmt.Sprintf("S=%d", s)
		rf.Points = append(rf.Points, Point{X: x, Value: mb(cube.SizeBytes() + h.SizeBytes())})
		rm.Points = append(rm.Points, Point{X: x, Value: mb(rmIdx.IndexSizeBytes() + h.SizeBytes())})
		bl.Points = append(bl.Points, Point{X: x, Value: mb(blIdx.IndexSizeBytes() + h.SizeBytes())})
	}
	rep.Series = []Series{rf, rm, bl}
	return rep
}

// fig3_12: execution time w.r.t. the number of covering fragments.
func fig3_12(cfg Config) *Report {
	tb := dataset.Synthetic(cfg.T(3_000_000), 12, 2, 20, table.Uniform, cfg.Seed)
	cube := gridcube.Build(tb, gridcube.Config{FragmentSize: 3})
	rep := &Report{ID: "fig3.12", Title: "Query Execution Time w.r.t. Number of Covering Fragments",
		XLabel: "covering fragments", Metric: "ms/query",
		Notes: []string{"fragments of size 3 over 12 dims; 3-condition queries spanning 1, 2, or 3 fragments"}}
	// With groups {0,1,2},{3,4,5},{6,7,8},{9,10,11}: conds {0,1,2} → 1
	// fragment, {0,1,3} → 2, {0,3,6} → 3.
	condDims := [][]int{{0, 1, 2}, {0, 1, 3}, {0, 3, 6}}
	var series Series
	series.Name = "ranking-fragments"
	for nf, dims := range condDims {
		rng := cfg.rng(int64(nf))
		m := run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			cond := core.Cond{}
			for _, d := range dims {
				cond[d] = int32(rng.Intn(20))
			}
			f := ranking.Sum(0, 1)
			if _, err := cube.TopK(gridcube.Query{Cond: cond, F: f, K: 10}, ctr); err != nil {
				must(err)
			}
		})
		series.Points = append(series.Points, Point{X: fmt.Sprintf("%d", nf+1), Value: m.ms()})
	}
	rep.Series = []Series{series}
	return rep
}

// fig3_13: execution time w.r.t. fragment size F.
func fig3_13(cfg Config) *Report {
	tb := dataset.Synthetic(cfg.T(3_000_000), 12, 2, 20, table.Uniform, cfg.Seed)
	rep := &Report{ID: "fig3.13", Title: "Query Execution Time w.r.t. Fragment Size",
		XLabel: "F", Metric: "ms/query"}
	var series Series
	series.Name = "ranking-fragments"
	for _, f := range []int{1, 2, 3} {
		cube := gridcube.Build(tb, gridcube.Config{FragmentSize: f})
		queries := ch3Workload(cfg.rng(int64(f)), tb, cfg.Queries, 3, 2, 1, 10)
		m := run(cfg, len(queries), func(qi int, ctr *stats.Counters) {
			q := queries[qi]
			if _, err := cube.TopK(gridcube.Query{Cond: q.cond, F: q.f, K: q.k}, ctr); err != nil {
				must(err)
			}
		})
		series.Points = append(series.Points, Point{X: fmt.Sprintf("F=%d", f), Value: m.ms()})
	}
	rep.Series = []Series{series}
	return rep
}

// fig3_14: execution time w.r.t. S with fragments F=2.
func fig3_14(cfg Config) *Report {
	rep := &Report{ID: "fig3.14", Title: "Query Execution Time w.r.t. S",
		XLabel: "S", Metric: "ms/query"}
	points := map[string][]Point{}
	for _, s := range []int{3, 6, 9, 12} {
		tb := dataset.Synthetic(cfg.T(3_000_000), s, 2, 20, table.Uniform, cfg.Seed)
		env := newCh3Env(tb, gridcube.Config{FragmentSize: 2})
		queries := ch3Workload(cfg.rng(int64(s)), tb, cfg.Queries, 3, 2, 1, 10)
		for name, m := range env.measure(queries, cfg) {
			points[name] = append(points[name], Point{X: fmt.Sprintf("S=%d", s), Value: m.ms()})
		}
	}
	rep.Series = timeSeries(points)
	// Rename the cube series to match the thesis legend.
	rep.Series[0].Name = "ranking-fragments"
	return rep
}

// fig3_15: execution time on (cloned) Forest CoverType data w.r.t. k.
func fig3_15(cfg Config) *Report {
	tb := dataset.ForestCover(cfg.T(3_486_072), cfg.Seed)
	env := newCh3Env(tb, gridcube.Config{FragmentSize: 3})
	rep := &Report{ID: "fig3.15", Title: "Query Execution Time on Real Data",
		XLabel: "k", Metric: "ms/query",
		Notes: []string{"synthetic CoverType clone (DESIGN.md substitution table)"}}
	points := map[string][]Point{}
	for _, k := range []int{5, 10, 15, 20} {
		queries := ch3Workload(cfg.rng(int64(k)), tb, cfg.Queries, 3, 3, 1, k)
		for name, m := range env.measure(queries, cfg) {
			points[name] = append(points[name], Point{X: fmt.Sprintf("k=%d", k), Value: m.ms()})
		}
	}
	rep.Series = timeSeries(points)
	rep.Series[0].Name = "ranking-fragments"
	return rep
}
