package bench

import (
	"fmt"
	"math"
	"sort"

	"rankcube/internal/core"
	"rankcube/internal/dataset"
	"rankcube/internal/joinquery"
	"rankcube/internal/ranking"
	"rankcube/internal/rtree"
	"rankcube/internal/sigcube"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

func init() {
	register("fig6.3", fig6_3)
	register("fig6.4", fig6_4)
}

// ch6Env is a pair of relations with ranking cubes and join keys.
type ch6Env struct {
	r1, r2 *joinquery.Relation
}

func newCh6Env(cfg Config, thesisRows, keyCard int) *ch6Env {
	t1, t2, k1, k2 := dataset.JoinPair(cfg.T(thesisRows), 2, 2, 10, keyCard, cfg.Seed)
	c1 := sigcube.Build(t1, sigcube.Config{RTree: rtree.Config{}})
	c2 := sigcube.Build(t2, sigcube.Config{RTree: rtree.Config{}})
	return &ch6Env{
		r1: joinquery.NewRelation("R1", t1, c1, k1, keyCard),
		r2: joinquery.NewRelation("R2", t2, c2, k2, keyCard),
	}
}

func (e *ch6Env) query(cfg Config, qi, k int) joinquery.Query {
	rng := cfg.rng(int64(qi) * 61)
	return joinquery.Query{
		Parts: []joinquery.Part{
			{Rel: e.r1, Cond: core.Cond{0: int32(rng.Intn(10))}, F: ranking.Sum(0, 1)},
			{Rel: e.r2, Cond: core.Cond{1: int32(rng.Intn(10))},
				F: ranking.SqDist([]int{0, 1}, []float64{rng.Float64(), rng.Float64()})},
		},
		K: k,
	}
}

// joinThenRank is the conventional plan: filter both relations, hash-join
// completely, then rank — the comparison shape for the SPJR executor.
func joinThenRank(q joinquery.Query, ctr *stats.Counters) []joinquery.Result {
	// Charge full scans of both relations.
	for _, p := range q.Parts {
		rowBytes := p.Rel.T.RowBytes()
		pages := (p.Rel.T.Len()*rowBytes + 4095) / 4096
		ctr.Read(stats.StructTable, int64(pages))
	}
	p1, p2 := q.Parts[0], q.Parts[1]
	buf := make([]float64, p1.Rel.T.Schema().R())
	build := make(map[int32][]core.Result)
	for i := 0; i < p1.Rel.T.Len(); i++ {
		tid := table.TID(i)
		if !p1.Rel.T.Matches(tid, p1.Cond) {
			continue
		}
		s := p1.F.Eval(p1.Rel.T.RankRow(tid, buf))
		if math.IsInf(s, 1) {
			continue
		}
		key := p1.Rel.Keys[tid]
		build[key] = append(build[key], core.Result{TID: tid, Score: s})
	}
	var all []joinquery.Result
	for i := 0; i < p2.Rel.T.Len(); i++ {
		tid := table.TID(i)
		if !p2.Rel.T.Matches(tid, p2.Cond) {
			continue
		}
		s := p2.F.Eval(p2.Rel.T.RankRow(tid, buf))
		if math.IsInf(s, 1) {
			continue
		}
		for _, m := range build[p2.Rel.Keys[tid]] {
			all = append(all, joinquery.Result{TIDs: []table.TID{m.TID, tid}, Score: m.Score + s})
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].Score < all[b].Score })
	if len(all) > q.K {
		all = all[:q.K]
	}
	return all
}

// fig6_3: execution time w.r.t. join-key cardinalities.
func fig6_3(cfg Config) *Report {
	rep := &Report{ID: "fig6.3", Title: "Execution Time w.r.t. Cardinalities",
		XLabel: "join-key cardinality", Metric: "ms/query"}
	var rc, base Series
	rc.Name, base.Name = "ranking-cube", "join-then-rank"
	for _, keyCard := range []int{10, 100, 1000, 10000} {
		env := newCh6Env(cfg, 300_000, keyCard)
		x := fmt.Sprintf("%d", keyCard)
		m := run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			if _, err := joinquery.Execute(env.query(cfg, qi, 10), joinquery.Options{}, ctr); err != nil {
				must(err)
			}
		})
		rc.Points = append(rc.Points, Point{X: x, Value: m.ms()})
		m = run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			joinThenRank(env.query(cfg, qi, 10), ctr)
		})
		base.Points = append(base.Points, Point{X: x, Value: m.ms()})
	}
	rep.Series = []Series{rc, base}
	return rep
}

// fig6_4: execution time w.r.t. database size.
func fig6_4(cfg Config) *Report {
	rep := &Report{ID: "fig6.4", Title: "Query Execution w.r.t. Database Size",
		XLabel: "T per relation (thesis rows)", Metric: "ms/query"}
	var rc, base Series
	rc.Name, base.Name = "ranking-cube", "join-then-rank"
	for _, thousands := range []int{100, 200, 500, 1000} {
		env := newCh6Env(cfg, thousands*1000*10, 1000)
		x := fmt.Sprintf("%dk", thousands)
		m := run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			if _, err := joinquery.Execute(env.query(cfg, qi, 10), joinquery.Options{}, ctr); err != nil {
				must(err)
			}
		})
		rc.Points = append(rc.Points, Point{X: x, Value: m.ms()})
		m = run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			joinThenRank(env.query(cfg, qi, 10), ctr)
		})
		base.Points = append(base.Points, Point{X: x, Value: m.ms()})
	}
	rep.Series = []Series{rc, base}
	return rep
}
