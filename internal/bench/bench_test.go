package bench

import (
	"strings"
	"testing"
)

// TestEveryExperimentRuns executes the whole registry at minimal scale and
// validates report structure: every series has points at every sweep
// position and non-negative values.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	cfg := Config{Scale: 0.002, Queries: 2, Seed: 1}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			rep, err := Run(id, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.ID != id {
				t.Fatalf("report id %q", rep.ID)
			}
			if len(rep.Series) == 0 {
				t.Fatal("no series")
			}
			n := len(rep.Series[0].Points)
			if n == 0 {
				t.Fatal("no points")
			}
			for _, s := range rep.Series {
				if len(s.Points) != n {
					t.Fatalf("series %s has %d points, first series %d", s.Name, len(s.Points), n)
				}
				for _, p := range s.Points {
					if p.Value < 0 {
						t.Fatalf("series %s point %s negative: %v", s.Name, p.X, p.Value)
					}
					if p.X == "" {
						t.Fatalf("series %s has unlabeled point", s.Name)
					}
				}
			}
			if !strings.Contains(rep.String(), rep.Title) {
				t.Fatal("String() missing title")
			}
		})
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("fig99.9", Config{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.Scale != 0.1 || c.Queries != 10 || c.Seed != 1 || c.ReadCostMS != 0.1 {
		t.Fatalf("defaults = %+v", c)
	}
	raw := Config{ReadCostMS: -1}.Defaults()
	if raw.ReadCostMS != 0 {
		t.Fatalf("negative read cost not zeroed: %v", raw.ReadCostMS)
	}
	if (Config{}).T(3_000_000) < 1000 {
		t.Fatal("scaled T below floor")
	}
	if (Config{Scale: 0.1}).T(3_000_000) != 300_000 {
		t.Fatalf("T scaling wrong: %d", (Config{Scale: 0.1}).T(3_000_000))
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		3:      "3",
		1234:   "1234",
		150.25: "150.2",
		0.1234: "0.123",
	}
	for v, want := range cases {
		if got := formatValue(v); got != want {
			t.Fatalf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
}
