package bench

import (
	"fmt"
	"time"

	"rankcube/internal/baselines"
	"rankcube/internal/btree"
	"rankcube/internal/core"
	"rankcube/internal/dataset"
	"rankcube/internal/hindex"
	"rankcube/internal/indexmerge"
	"rankcube/internal/ranking"
	"rankcube/internal/rtree"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

func init() {
	register("tbl5.1", tbl5_1)
	register("fig5.7", func(c Config) *Report { return fig5_time(c, "fig5.7", "fs") })
	register("fig5.8", func(c Config) *Report { return fig5_time(c, "fig5.8", "fg") })
	register("fig5.9", func(c Config) *Report { return fig5_time(c, "fig5.9", "fc") })
	register("fig5.10", func(c Config) *Report { return fig5_metric(c, "fig5.10", metricDisk) })
	register("fig5.11", func(c Config) *Report { return fig5_metric(c, "fig5.11", metricStates) })
	register("fig5.12", func(c Config) *Report { return fig5_metric(c, "fig5.12", metricHeap) })
	register("fig5.13", fig5_13)
	register("fig5.14", fig5_14)
	register("fig5.15", func(c Config) *Report { return fig5_threeWay(c, "fig5.15", metricTime) })
	register("fig5.16", func(c Config) *Report { return fig5_threeWay(c, "fig5.16", metricHeap) })
	register("fig5.17", func(c Config) *Report { return fig5_threeWay(c, "fig5.17", metricDisk) })
	register("fig5.18", fig5_18)
	register("fig5.19", fig5_19)
	register("fig5.20", fig5_20)
	register("fig5.21", fig5_21)
	register("fig5.22", fig5_22)
}

type metricKind int

const (
	metricTime metricKind = iota
	metricDisk
	metricStates
	metricHeap
)

// ch5Env holds two B+-tree indices over a 2-ranking-dimension relation plus
// the table-scan competitor and the join-signature.
type ch5Env struct {
	tb   *table.Table
	idx  []hindex.Index
	js   *indexmerge.JoinSignature
	heap *baselines.HeapFile
}

func newCh5Env(cfg Config, thesisRows int) *ch5Env {
	tb := dataset.Synthetic(cfg.T(thesisRows), 1, 2, 2, table.Uniform, cfg.Seed)
	dom := ranking.UnitBox(2)
	idx := []hindex.Index{
		btree.Build(tb, 0, dom, btree.Config{}),
		btree.Build(tb, 1, dom, btree.Config{}),
	}
	js, err := indexmerge.BuildJoinSignature(idx, tb.Len(), indexmerge.JoinSigConfig{})
	must(err)
	return &ch5Env{tb: tb, idx: idx, js: js, heap: baselines.NewHeapFile(tb, 0)}
}

// ch5Func builds one of the §5.4.2 controlled functions.
func ch5Func(cfg Config, name string, trial int) ranking.Func {
	rng := cfg.rng(int64(trial)*31 + int64(len(name)))
	switch name {
	case "fs":
		return ranking.SqDist([]int{0, 1}, []float64{rng.Float64(), rng.Float64()})
	case "fg":
		return ranking.General(ranking.Sqr(ranking.Sub(ranking.Var(0), ranking.Sqr(ranking.Var(1)))))
	default: // fc
		lo := rng.Float64() * 0.7
		return ranking.Constrained(ranking.Sum(0, 1), 1, lo, lo+0.2)
	}
}

// ch5Measure runs one merge configuration over the workload.
func (e *ch5Env) measure(cfg Config, fname string, k int, opts indexmerge.Options) measurement {
	return run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
		f := ch5Func(cfg, fname, qi)
		if _, err := indexmerge.TopK(e.idx, f, k, opts, ctr); err != nil {
			must(err)
		}
	})
}

func (e *ch5Env) measureTS(cfg Config, fname string, k int) measurement {
	ts := baselines.NewTableScan(e.heap)
	return run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
		f := ch5Func(cfg, fname, qi)
		ts.TopK(core.Cond{}, f, k, ctr)
	})
}

// tbl5_1: basic vs improved index-merge on f = (A−B²)², top-100.
func tbl5_1(cfg Config) *Report {
	env := newCh5Env(cfg, 1_000_000)
	rep := &Report{ID: "tbl5.1", Title: "Significance of the two challenges (basic vs improved merge)",
		XLabel: "method", Metric: "count (avg/query)"}
	f := ranking.General(ranking.Sqr(ranking.Sub(ranking.Var(0), ranking.Sqr(ranking.Var(1)))))
	runOne := func(opts indexmerge.Options) *stats.Counters {
		ctr := stats.New()
		if _, err := indexmerge.TopK(env.idx, f, 100, opts, ctr); err != nil {
			must(err)
		}
		return ctr
	}
	basic := runOne(indexmerge.Options{Strategy: indexmerge.StrategyBL})
	improved := runOne(indexmerge.Options{Strategy: indexmerge.StrategyPE, Pruner: env.js})
	rep.Series = []Series{
		{Name: "states", Points: []Point{
			{X: "Basic", Value: float64(basic.StatesGenerated)},
			{X: "Improved", Value: float64(improved.StatesGenerated)},
		}},
		{Name: "disk", Points: []Point{
			{X: "Basic", Value: float64(basic.TotalReads())},
			{X: "Improved", Value: float64(improved.TotalReads())},
		}},
	}
	return rep
}

// fig5_time: execution time w.r.t. K for one function family; series TS,
// BL, PE, PE+SIG.
func fig5_time(cfg Config, id, fname string) *Report {
	env := newCh5Env(cfg, 1_000_000)
	rep := &Report{ID: id, Title: fmt.Sprintf("Execution Time w.r.t. K, f = %s", fname),
		XLabel: "k", Metric: "ms/query"}
	var ts, bl, pe, sig Series
	ts.Name, bl.Name, pe.Name, sig.Name = "TS", "BL", "PE", "PE+SIG"
	for _, k := range []int{10, 20, 50, 100} {
		x := fmt.Sprintf("k=%d", k)
		ts.Points = append(ts.Points, Point{X: x, Value: env.measureTS(cfg, fname, k).ms()})
		bl.Points = append(bl.Points, Point{X: x,
			Value: env.measure(cfg, fname, k, indexmerge.Options{Strategy: indexmerge.StrategyBL}).ms()})
		pe.Points = append(pe.Points, Point{X: x,
			Value: env.measure(cfg, fname, k, indexmerge.Options{}).ms()})
		sig.Points = append(sig.Points, Point{X: x,
			Value: env.measure(cfg, fname, k, indexmerge.Options{Pruner: env.js}).ms()})
	}
	rep.Series = []Series{ts, bl, pe, sig}
	return rep
}

// fig5_metric: disk access / states / peak heap per function at k = 100.
func fig5_metric(cfg Config, id string, kind metricKind) *Report {
	env := newCh5Env(cfg, 1_000_000)
	titles := map[metricKind]string{
		metricDisk:   "Disk Access w.r.t. f, k = 100",
		metricStates: "States Generated w.r.t. f, k = 100",
		metricHeap:   "Peak Heap Size w.r.t. f, k = 100",
	}
	metrics := map[metricKind]string{
		metricDisk:   "block reads/query",
		metricStates: "states/query",
		metricHeap:   "max heap entries",
	}
	rep := &Report{ID: id, Title: titles[kind], XLabel: "function", Metric: metrics[kind]}
	var bl, pe, sig Series
	bl.Name, pe.Name, sig.Name = "BL", "PE", "PE+SIG"
	for _, fname := range []string{"fs", "fg", "fc"} {
		add := func(s *Series, opts indexmerge.Options) {
			m := env.measure(cfg, fname, 100, opts)
			var v float64
			switch kind {
			case metricDisk:
				v = m.avgReads()
			case metricStates:
				v = float64(m.counters.StatesGenerated) / float64(m.queries)
			case metricHeap:
				v = float64(m.counters.PeakHeap)
			}
			s.Points = append(s.Points, Point{X: fname, Value: v})
		}
		add(&bl, indexmerge.Options{Strategy: indexmerge.StrategyBL})
		add(&pe, indexmerge.Options{})
		add(&sig, indexmerge.Options{Pruner: env.js})
	}
	rep.Series = []Series{bl, pe, sig}
	return rep
}

// fig5_13: execution time w.r.t. K on the (cloned) CoverType variation: 6
// attributes split across two 3-d R-trees.
func fig5_13(cfg Config) *Report {
	tb := dataset.ForestCoverWide(cfg.T(1_162_024), cfg.Seed)
	dom := rankDomain(tb)
	idx := []hindex.Index{
		rtree.Bulk(tb, []int{0, 1, 2}, dom, rtree.Config{}),
		rtree.Bulk(tb, []int{3, 4, 5}, dom, rtree.Config{}),
	}
	js, err := indexmerge.BuildJoinSignature(idx, tb.Len(), indexmerge.JoinSigConfig{})
	must(err)
	h := baselines.NewHeapFile(tb, 0)
	ts := baselines.NewTableScan(h)

	rep := &Report{ID: "fig5.13", Title: "Execution Time w.r.t. K, Real Data",
		XLabel: "k", Metric: "ms/query",
		Notes: []string{"synthetic CoverType clone, 6 attributes in two 3-d R-trees"}}
	fsFor := func(qi int) ranking.Func {
		rng := cfg.rng(int64(qi) * 17)
		target := make([]float64, 6)
		attrs := make([]int, 6)
		for d := 0; d < 6; d++ {
			attrs[d] = d
			target[d] = rng.Float64()
		}
		return ranking.SqDist(attrs, target)
	}
	var tsS, blS, peS, sigS Series
	tsS.Name, blS.Name, peS.Name, sigS.Name = "TS", "BL", "PE", "PE+SIG"
	for _, k := range []int{10, 20, 50, 100} {
		x := fmt.Sprintf("k=%d", k)
		m := run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) { ts.TopK(core.Cond{}, fsFor(qi), k, ctr) })
		tsS.Points = append(tsS.Points, Point{X: x, Value: m.ms()})
		for _, cfg2 := range []struct {
			s    *Series
			opts indexmerge.Options
		}{
			{&blS, indexmerge.Options{Strategy: indexmerge.StrategyBL}},
			{&peS, indexmerge.Options{}},
			{&sigS, indexmerge.Options{Pruner: js}},
		} {
			m := run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
				if _, err := indexmerge.TopK(idx, fsFor(qi), k, cfg2.opts, ctr); err != nil {
					must(err)
				}
			})
			cfg2.s.Points = append(cfg2.s.Points, Point{X: x, Value: m.ms()})
		}
	}
	rep.Series = []Series{tsS, blS, peS, sigS}
	return rep
}

func rankDomain(tb *table.Table) ranking.Box {
	r := tb.Schema().R()
	lo := make([]float64, r)
	hi := make([]float64, r)
	for d := 0; d < r; d++ {
		lo[d], hi[d] = tb.RankDomain(d)
		if hi[d] <= lo[d] {
			hi[d] = lo[d] + 1
		}
	}
	return ranking.NewBox(lo, hi)
}

// fig5_14: execution time w.r.t. per-R-tree dimensionality (two R-trees
// over 2d…8d data), k = 100.
func fig5_14(cfg Config) *Report {
	rep := &Report{ID: "fig5.14", Title: "Execution Time w.r.t. R-Tree",
		XLabel: "dims per R-tree", Metric: "ms/query"}
	var tsS, peS, sigS Series
	tsS.Name, peS.Name, sigS.Name = "TS", "PE", "PE+SIG"
	for _, d := range []int{1, 2, 3, 4} {
		tb := dataset.Synthetic(cfg.T(1_000_000), 1, 2*d, 2, table.Uniform, cfg.Seed)
		dom := ranking.UnitBox(2 * d)
		dims1 := make([]int, d)
		dims2 := make([]int, d)
		attrs := make([]int, 2*d)
		for i := 0; i < d; i++ {
			dims1[i] = i
			dims2[i] = d + i
		}
		for i := range attrs {
			attrs[i] = i
		}
		idx := []hindex.Index{
			rtree.Bulk(tb, dims1, dom, rtree.Config{}),
			rtree.Bulk(tb, dims2, dom, rtree.Config{}),
		}
		js, err := indexmerge.BuildJoinSignature(idx, tb.Len(), indexmerge.JoinSigConfig{})
		must(err)
		h := baselines.NewHeapFile(tb, 0)
		ts := baselines.NewTableScan(h)
		fsFor := func(qi int) ranking.Func {
			rng := cfg.rng(int64(qi)*29 + int64(d))
			target := make([]float64, 2*d)
			for i := range target {
				target[i] = rng.Float64()
			}
			return ranking.SqDist(attrs, target)
		}
		x := fmt.Sprintf("%dd", d)
		m := run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) { ts.TopK(core.Cond{}, fsFor(qi), 100, ctr) })
		tsS.Points = append(tsS.Points, Point{X: x, Value: m.ms()})
		m = run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			if _, err := indexmerge.TopK(idx, fsFor(qi), 100, indexmerge.Options{}, ctr); err != nil {
				must(err)
			}
		})
		peS.Points = append(peS.Points, Point{X: x, Value: m.ms()})
		m = run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			if _, err := indexmerge.TopK(idx, fsFor(qi), 100, indexmerge.Options{Pruner: js}, ctr); err != nil {
				must(err)
			}
		})
		sigS.Points = append(sigS.Points, Point{X: x, Value: m.ms()})
	}
	rep.Series = []Series{tsS, peS, sigS}
	return rep
}

// threeWayEnv builds three B+-trees plus the 3d and pairwise 2d signatures.
type threeWayEnv struct {
	tb    *table.Table
	idx   []hindex.Index
	sig3  *indexmerge.JoinSignature
	pairs *indexmerge.PairwisePruner
}

func newThreeWayEnv(cfg Config) *threeWayEnv {
	tb := dataset.Synthetic(cfg.T(1_000_000), 1, 3, 2, table.Uniform, cfg.Seed)
	dom := ranking.UnitBox(3)
	var idx []hindex.Index
	for d := 0; d < 3; d++ {
		idx = append(idx, btree.Build(tb, d, dom, btree.Config{}))
	}
	sig3, err := indexmerge.BuildJoinSignature(idx, tb.Len(), indexmerge.JoinSigConfig{})
	must(err)
	pairs := map[[2]int]*indexmerge.JoinSignature{}
	for _, pr := range [][2]int{{0, 1}, {0, 2}, {1, 2}} {
		js, err := indexmerge.BuildJoinSignature([]hindex.Index{idx[pr[0]], idx[pr[1]]}, tb.Len(), indexmerge.JoinSigConfig{})
		must(err)
		pairs[pr] = js
	}
	return &threeWayEnv{tb: tb, idx: idx, sig3: sig3, pairs: &indexmerge.PairwisePruner{Pairs: pairs}}
}

// fig5_threeWay: 3-way merge time / heap / disk w.r.t. K for PE, PE+2dSIG,
// PE+3dSIG.
func fig5_threeWay(cfg Config, id string, kind metricKind) *Report {
	env := newThreeWayEnv(cfg)
	titles := map[metricKind]string{
		metricTime: "Execution Time w.r.t. K, 3 Indices",
		metricHeap: "Peak Heap Size w.r.t. K, 3 Indices",
		metricDisk: "Disk Access w.r.t. K, 3 Indices",
	}
	metrics := map[metricKind]string{
		metricTime: "ms/query", metricHeap: "max heap entries", metricDisk: "block reads/query",
	}
	rep := &Report{ID: id, Title: titles[kind], XLabel: "k", Metric: metrics[kind]}
	var pe, sig2, sig3 Series
	pe.Name, sig2.Name, sig3.Name = "PE", "PE+2dSIG", "PE+3dSIG"
	fsFor := func(qi int) ranking.Func {
		rng := cfg.rng(int64(qi) * 41)
		return ranking.SqDist([]int{0, 1, 2}, []float64{rng.Float64(), rng.Float64(), rng.Float64()})
	}
	for _, k := range []int{10, 20, 50, 100} {
		x := fmt.Sprintf("k=%d", k)
		add := func(s *Series, opts indexmerge.Options) {
			m := run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
				if _, err := indexmerge.TopK(env.idx, fsFor(qi), k, opts, ctr); err != nil {
					must(err)
				}
			})
			var v float64
			switch kind {
			case metricTime:
				v = m.ms()
			case metricHeap:
				v = float64(m.counters.PeakHeap)
			case metricDisk:
				v = m.avgReads()
			}
			s.Points = append(s.Points, Point{X: x, Value: v})
		}
		add(&pe, indexmerge.Options{})
		add(&sig2, indexmerge.Options{Pruner: env.pairs})
		add(&sig3, indexmerge.Options{Pruner: env.sig3})
	}
	rep.Series = []Series{pe, sig2, sig3}
	return rep
}

// fig5_18: partial attributes in ranking: the function references only a
// subset of the indexed dimensions.
func fig5_18(cfg Config) *Report {
	tb := dataset.Synthetic(cfg.T(1_000_000), 1, 4, 2, table.Uniform, cfg.Seed)
	dom := ranking.UnitBox(4)
	idx := []hindex.Index{
		rtree.Bulk(tb, []int{0, 1}, dom, rtree.Config{}),
		rtree.Bulk(tb, []int{2, 3}, dom, rtree.Config{}),
	}
	rep := &Report{ID: "fig5.18", Title: "Partial Attributes in Ranking",
		XLabel: "attrs in f", Metric: "ms/query"}
	var pe Series
	pe.Name = "PE"
	for _, nattr := range []int{1, 2, 3, 4} {
		attrs := make([]int, nattr)
		for i := range attrs {
			attrs[i] = i
		}
		m := run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			rng := cfg.rng(int64(qi)*53 + int64(nattr))
			target := make([]float64, nattr)
			for i := range target {
				target[i] = rng.Float64()
			}
			f := ranking.SqDist(attrs, target)
			if _, err := indexmerge.TopK(idx, f, 100, indexmerge.Options{}, ctr); err != nil {
				must(err)
			}
		})
		pe.Points = append(pe.Points, Point{X: fmt.Sprintf("r=%d", nattr), Value: m.ms()})
	}
	rep.Series = []Series{pe}
	return rep
}

// fig5_19: execution time w.r.t. index node (page) size.
func fig5_19(cfg Config) *Report {
	tb := dataset.Synthetic(cfg.T(1_000_000), 1, 2, 2, table.Uniform, cfg.Seed)
	dom := ranking.UnitBox(2)
	rep := &Report{ID: "fig5.19", Title: "Execution Time w.r.t. Node Size",
		XLabel: "page bytes", Metric: "ms/query"}
	var pe Series
	pe.Name = "PE"
	for _, page := range []int{1024, 2048, 4096, 8192, 16384} {
		idx := []hindex.Index{
			btree.Build(tb, 0, dom, btree.Config{PageSize: page}),
			btree.Build(tb, 1, dom, btree.Config{PageSize: page}),
		}
		m := run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			f := ch5Func(cfg, "fs", qi)
			if _, err := indexmerge.TopK(idx, f, 100, indexmerge.Options{}, ctr); err != nil {
				must(err)
			}
		})
		pe.Points = append(pe.Points, Point{X: fmt.Sprintf("%dB", page), Value: m.ms()})
	}
	rep.Series = []Series{pe}
	return rep
}

// fig5_20: execution time w.r.t. T.
func fig5_20(cfg Config) *Report {
	rep := &Report{ID: "fig5.20", Title: "Execution Time w.r.t. T",
		XLabel: "T (thesis rows)", Metric: "ms/query"}
	var pe, sig Series
	pe.Name, sig.Name = "PE", "PE+SIG"
	for _, millions := range []int{1, 2, 5, 10} {
		env := newCh5Env(Config{Scale: cfg.Scale, Queries: cfg.Queries, Seed: cfg.Seed}, millions*1_000_000)
		x := fmt.Sprintf("%dM", millions)
		pe.Points = append(pe.Points, Point{X: x, Value: env.measure(cfg, "fs", 100, indexmerge.Options{}).ms()})
		sig.Points = append(sig.Points, Point{X: x,
			Value: env.measure(cfg, "fs", 100, indexmerge.Options{Pruner: env.js}).ms()})
	}
	rep.Series = []Series{pe, sig}
	return rep
}

// fig5_21: join-signature construction time w.r.t. T.
func fig5_21(cfg Config) *Report {
	rep := &Report{ID: "fig5.21", Title: "Construction Time w.r.t. T",
		XLabel: "T (thesis rows)", Metric: "ms"}
	var s Series
	s.Name = "join-signature"
	for _, millions := range []int{1, 2, 5, 10} {
		tb := dataset.Synthetic(cfg.T(millions*1_000_000), 1, 2, 2, table.Uniform, cfg.Seed)
		dom := ranking.UnitBox(2)
		idx := []hindex.Index{
			btree.Build(tb, 0, dom, btree.Config{}),
			btree.Build(tb, 1, dom, btree.Config{}),
		}
		start := time.Now()
		if _, err := indexmerge.BuildJoinSignature(idx, tb.Len(), indexmerge.JoinSigConfig{}); err != nil {
			must(err)
		}
		s.Points = append(s.Points, Point{X: fmt.Sprintf("%dM", millions), Value: ms(time.Since(start))})
	}
	rep.Series = []Series{s}
	return rep
}

// fig5_22: join-signature size w.r.t. T.
func fig5_22(cfg Config) *Report {
	rep := &Report{ID: "fig5.22", Title: "Size of Join-signatures w.r.t. T",
		XLabel: "T (thesis rows)", Metric: "MB"}
	var s Series
	s.Name = "join-signature"
	for _, millions := range []int{1, 2, 5, 10} {
		tb := dataset.Synthetic(cfg.T(millions*1_000_000), 1, 2, 2, table.Uniform, cfg.Seed)
		dom := ranking.UnitBox(2)
		idx := []hindex.Index{
			btree.Build(tb, 0, dom, btree.Config{}),
			btree.Build(tb, 1, dom, btree.Config{}),
		}
		js, err := indexmerge.BuildJoinSignature(idx, tb.Len(), indexmerge.JoinSigConfig{})
		must(err)
		s.Points = append(s.Points, Point{X: fmt.Sprintf("%dM", millions),
			Value: float64(js.SizeBytes()) / (1 << 20)})
	}
	rep.Series = []Series{s}
	return rep
}
