package bench

import (
	"fmt"
	"time"

	"rankcube/internal/baselines"
	"rankcube/internal/core"
	"rankcube/internal/dataset"
	"rankcube/internal/ranking"
	"rankcube/internal/rtree"
	"rankcube/internal/sigcube"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

func init() {
	register("fig4.8", fig4_8)
	register("fig4.9", fig4_9)
	register("fig4.10", fig4_10)
	register("fig4.11", fig4_11)
	register("fig4.12", fig4_12)
	register("fig4.13", fig4_13)
}

// ch4Data is the default §4.4.1 synthetic configuration: Db = Dp = 3,
// C = 100, uniform.
func ch4Data(cfg Config, thesisRows int) *table.Table {
	return dataset.Synthetic(cfg.T(thesisRows), 3, 3, 100, table.Uniform, cfg.Seed)
}

// fig4_8: construction time w.r.t. T for the signature cube (P-Cube), the
// R-tree partition, and the baseline's B-tree indexes.
func fig4_8(cfg Config) *Report {
	rep := &Report{ID: "fig4.8", Title: "Construction Time w.r.t. T",
		XLabel: "T (thesis rows)", Metric: "ms"}
	var pc, rt, bt Series
	pc.Name, rt.Name, bt.Name = "P-Cube", "R-tree", "B-tree"
	for _, millions := range []int{1, 5, 10} {
		tb := ch4Data(cfg, millions*1_000_000)
		x := fmt.Sprintf("%dM", millions)

		start := time.Now()
		tree := buildCh4Tree(tb)
		rt.Points = append(rt.Points, Point{X: x, Value: ms(time.Since(start))})

		start = time.Now()
		sigcube.BuildOnTree(tb, tree, sigcube.Config{})
		pc.Points = append(pc.Points, Point{X: x, Value: ms(time.Since(start))})

		start = time.Now()
		h := baselines.NewHeapFile(tb, 0)
		baselines.NewBooleanFirst(h)
		bt.Points = append(bt.Points, Point{X: x, Value: ms(time.Since(start))})
	}
	rep.Series = []Series{pc, rt, bt}
	return rep
}

func buildCh4Tree(tb *table.Table) *rtree.Tree {
	r := tb.Schema().R()
	dims := make([]int, r)
	for i := range dims {
		dims[i] = i
	}
	lo := make([]float64, r)
	hi := make([]float64, r)
	for d := 0; d < r; d++ {
		lo[d], hi[d] = tb.RankDomain(d)
		if hi[d] <= lo[d] {
			hi[d] = lo[d] + 1
		}
	}
	return rtree.Bulk(tb, dims, ranking.NewBox(lo, hi), rtree.Config{})
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// fig4_9: materialized size w.r.t. T.
func fig4_9(cfg Config) *Report {
	rep := &Report{ID: "fig4.9", Title: "Materialized Size w.r.t. T",
		XLabel: "T (thesis rows)", Metric: "MB"}
	var pc, rt, bt Series
	pc.Name, rt.Name, bt.Name = "P-Cube", "R-tree", "B-tree"
	mb := func(v int64) float64 { return float64(v) / (1 << 20) }
	for _, millions := range []int{1, 5, 10} {
		tb := ch4Data(cfg, millions*1_000_000)
		x := fmt.Sprintf("%dM", millions)
		tree := buildCh4Tree(tb)
		cube := sigcube.BuildOnTree(tb, tree, sigcube.Config{})
		h := baselines.NewHeapFile(tb, 0)
		bf := baselines.NewBooleanFirst(h)
		pc.Points = append(pc.Points, Point{X: x, Value: mb(cube.SizeBytes())})
		rt.Points = append(rt.Points, Point{X: x, Value: mb(tree.Store().Bytes())})
		bt.Points = append(bt.Points, Point{X: x, Value: mb(bf.IndexSizeBytes())})
	}
	rep.Series = []Series{pc, rt, bt}
	return rep
}

// fig4_10: signature size, baseline vs adaptive coding, w.r.t. boolean
// cardinality C.
func fig4_10(cfg Config) *Report {
	rep := &Report{ID: "fig4.10", Title: "Signature Compression w.r.t. C",
		XLabel: "cardinality", Metric: "MB"}
	var base, comp Series
	base.Name, comp.Name = "Baseline", "Compress"
	mb := func(v int64) float64 { return float64(v) / (1 << 20) }
	for _, c := range []int{10, 100, 1000} {
		tb := dataset.Synthetic(cfg.T(1_000_000), 3, 3, c, table.Uniform, cfg.Seed)
		tree := buildCh4Tree(tb)
		x := fmt.Sprintf("C=%d", c)
		bl := sigcube.BuildOnTree(tb, tree, sigcube.Config{BaselineCoding: true})
		base.Points = append(base.Points, Point{X: x, Value: mb(bl.SizeBytes())})
		ad := sigcube.BuildOnTree(tb, tree, sigcube.Config{})
		comp.Points = append(comp.Points, Point{X: x, Value: mb(ad.SizeBytes())})
	}
	rep.Series = []Series{base, comp}
	return rep
}

// fig4_11: incremental update cost w.r.t. number of inserted tuples, per
// base size.
func fig4_11(cfg Config) *Report {
	rep := &Report{ID: "fig4.11", Title: "Cost of Incremental Updates",
		XLabel: "inserted tuples", Metric: "ms (batch total)"}
	var allSeries []Series
	for _, millions := range []int{1, 5, 10} {
		tb := ch4Data(cfg, millions*1_000_000)
		cube := sigcube.Build(tb, sigcube.Config{})
		var s Series
		s.Name = fmt.Sprintf("%dM", millions)
		rng := cfg.rng(int64(millions))
		for _, batch := range []int{1, 10, 100} {
			start := time.Now()
			for i := 0; i < batch; i++ {
				sel := make([]int32, tb.Schema().S())
				for d := range sel {
					sel[d] = int32(rng.Intn(tb.Schema().SelCard[d]))
				}
				rank := make([]float64, tb.Schema().R())
				for d := range rank {
					rank[d] = rng.Float64()
				}
				cube.Insert(sel, rank, stats.New())
			}
			s.Points = append(s.Points, Point{X: fmt.Sprintf("%d", batch), Value: ms(time.Since(start))})
		}
		allSeries = append(allSeries, s)
	}
	rep.Series = allSeries
	return rep
}

// ch4Funcs are the three controlled query functions of §4.4.2.
func ch4Funcs(cfg Config, trial int) map[string]ranking.Func {
	rng := cfg.rng(int64(trial) * 13)
	linear := ranking.Linear([]int{0, 1, 2},
		[]float64{rng.Float64() + 0.1, rng.Float64() + 0.1, rng.Float64() + 0.1})
	distance := ranking.SqDist([]int{0, 1, 2},
		[]float64{rng.Float64(), rng.Float64(), rng.Float64()})
	general := ranking.General(ranking.Sqr(ranking.Sub(
		ranking.Scale(2, ranking.Var(0)),
		ranking.Add(ranking.Var(1), ranking.Var(2)))))
	return map[string]ranking.Func{"linear": linear, "distance": distance, "general": general}
}

// fig4_12: execution time w.r.t. k: Boolean vs Ranking vs Signature.
func fig4_12(cfg Config) *Report {
	tb := ch4Data(cfg, 1_000_000)
	tree := buildCh4Tree(tb)
	cube := sigcube.BuildOnTree(tb, tree, sigcube.Config{})
	h := baselines.NewHeapFile(tb, 0)
	boolean := baselines.NewBooleanFirst(h)
	rankingFirst := baselines.NewRankingFirst(h, tree)

	rep := &Report{ID: "fig4.12", Title: "Execution Time w.r.t. k",
		XLabel: "k", Metric: "ms/query"}
	var bSer, rSer, sSer Series
	bSer.Name, rSer.Name, sSer.Name = "Boolean", "Ranking", "Signature"
	for _, k := range []int{10, 20, 50, 100} {
		rng := cfg.rng(int64(k))
		conds := make([]core.Cond, cfg.Queries)
		funcs := make([]ranking.Func, cfg.Queries)
		for i := range conds {
			conds[i] = core.Cond{rng.Intn(3): int32(rng.Intn(100))}
			funcs[i] = ch4Funcs(cfg, i)["linear"]
		}
		x := fmt.Sprintf("k=%d", k)
		mB := run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			boolean.TopK(conds[qi], funcs[qi], k, ctr)
		})
		mR := run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			rankingFirst.TopK(conds[qi], funcs[qi], k, ctr)
		})
		mS := run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			if _, err := cube.TopK(conds[qi], funcs[qi], k, ctr); err != nil {
				must(err)
			}
		})
		bSer.Points = append(bSer.Points, Point{X: x, Value: mB.ms()})
		rSer.Points = append(rSer.Points, Point{X: x, Value: mR.ms()})
		sSer.Points = append(sSer.Points, Point{X: x, Value: mS.ms()})
	}
	rep.Series = []Series{bSer, rSer, sSer}
	return rep
}

// fig4_13: R-tree block accesses per function type (k = 100): Ranking vs
// Signature.
func fig4_13(cfg Config) *Report {
	tb := ch4Data(cfg, 1_000_000)
	tree := buildCh4Tree(tb)
	cube := sigcube.BuildOnTree(tb, tree, sigcube.Config{})
	h := baselines.NewHeapFile(tb, 0)
	rankingFirst := baselines.NewRankingFirst(h, tree)

	rep := &Report{ID: "fig4.13", Title: "Disk Access w.r.t. Functions",
		XLabel: "function", Metric: "R-tree blocks/query"}
	var rSer, sSer Series
	rSer.Name, sSer.Name = "Ranking", "Signature"
	for _, fname := range []string{"linear", "distance", "general"} {
		rng := cfg.rng(int64(len(fname)))
		conds := make([]core.Cond, cfg.Queries)
		funcs := make([]ranking.Func, cfg.Queries)
		for i := range conds {
			conds[i] = core.Cond{rng.Intn(3): int32(rng.Intn(100))}
			funcs[i] = ch4Funcs(cfg, i)[fname]
		}
		mR := run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			rankingFirst.TopK(conds[qi], funcs[qi], 100, ctr)
		})
		mS := run(cfg, cfg.Queries, func(qi int, ctr *stats.Counters) {
			if _, err := cube.TopK(conds[qi], funcs[qi], 100, ctr); err != nil {
				must(err)
			}
		})
		rSer.Points = append(rSer.Points, Point{X: fname, Value: mR.avgReads(stats.StructRTree)})
		sSer.Points = append(sSer.Points, Point{X: fname, Value: mS.avgReads(stats.StructRTree)})
	}
	rep.Series = []Series{rSer, sSer}
	return rep
}
