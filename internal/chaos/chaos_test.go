package chaos

import (
	"context"
	"os"
	"strconv"
	"testing"
	"time"
)

// TestChaos is the gate `make chaos` runs (always under -race): a seeded,
// bounded storm whose report must hold every serving invariant — typed
// outcomes only, exact crosschecks, and at least one full corruption →
// repair → half-open re-admission cycle. CHAOS_SEED overrides the seed.
func TestChaos(t *testing.T) {
	seed := int64(1)
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED %q: %v", env, err)
		}
		seed = v
	}
	rep, err := Run(context.Background(), Config{Seed: seed, Duration: 1500 * time.Millisecond})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	t.Logf("chaos report:\n%s", rep)
	if verr := rep.Validate(); verr != nil {
		t.Fatal(verr)
	}
}

// TestChaosSeedsDisagree sanity-checks the harness is actually seeded: two
// different seeds must not produce identical workloads. (Same-seed runs
// produce the same decisions, but scheduling still varies counts, so the
// useful determinism assertion is on the generated data and op streams —
// covered here indirectly via distinct seeds diverging.)
func TestChaosSeedsDisagree(t *testing.T) {
	a, err := Run(context.Background(), Config{Seed: 2, Duration: 300 * time.Millisecond})
	if err != nil {
		t.Fatalf("run a: %v", err)
	}
	b, err := Run(context.Background(), Config{Seed: 3, Duration: 300 * time.Millisecond})
	if err != nil {
		t.Fatalf("run b: %v", err)
	}
	if err := a.Validate(); err != nil {
		t.Errorf("seed 2: %v", err)
	}
	if err := b.Validate(); err != nil {
		t.Errorf("seed 3: %v", err)
	}
}

// TestChaosCanceledContext verifies the harness itself shuts down cleanly
// when its context dies mid-run and reports the cancellation.
func TestChaosCanceledContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	rep, err := Run(ctx, Config{Seed: 4, Duration: 10 * time.Second})
	if err == nil {
		t.Fatal("expected ctx error from a canceled run")
	}
	if rep.Untyped > 0 || rep.Internal > 0 || rep.Mismatches > 0 {
		t.Fatalf("canceled run broke invariants: %s", rep)
	}
}
