// Package chaos is a deterministic, seeded serving-chaos harness for the
// rankcube engines. One Run builds both cube engines over a seeded relation,
// then storms them with concurrent queries, online maintenance, and a
// scripted fault schedule (whole-store checksum rot followed by repair),
// while holding three invariants:
//
//  1. Every outcome is typed: queries either succeed or fail with exactly
//     one of the package's error sentinels. A contained panic (ErrInternal)
//     or an unclassified error is an invariant violation.
//  2. Every successful answer taken under the harness's consistency lock
//     crosschecks exactly against the matching baseline scan.
//  3. Every scripted corruption round ends with the store repaired and
//     re-admitted through the half-open probe before the run finishes.
//
// The harness is seeded — workload choices, fault schedule, and data are all
// derived from Config.Seed — and bounded by Config.Duration. Goroutine
// scheduling stays nondeterministic (that is the point of running it under
// -race), but everything the harness decides is reproducible.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"rankcube"
	"rankcube/internal/errs"
	"rankcube/internal/pager"
)

// Config parameterizes one chaos run. The zero value of any field selects
// the default noted on it.
type Config struct {
	// Seed drives the generated relation, every worker's workload, and the
	// fault schedule. Same seed, same decisions. Default 1.
	Seed int64
	// Tuples is the base relation size. Default 1200.
	Tuples int
	// Workers is the number of storm goroutines per engine family (the run
	// spawns Workers goroutines total, split across roles). Default 8.
	Workers int
	// Duration bounds the run's wall-clock time. Default 1500ms.
	Duration time.Duration
	// MaxInFlight and MaxWaiting configure each cube's admission gate so the
	// storm exercises overload shedding. Defaults 4 and 8.
	MaxInFlight int
	MaxWaiting  int
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Tuples == 0 {
		c.Tuples = 1200
	}
	if c.Workers == 0 {
		c.Workers = 8
	}
	if c.Duration == 0 {
		c.Duration = 1500 * time.Millisecond
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 4
	}
	if c.MaxWaiting == 0 {
		c.MaxWaiting = 8
	}
	return c
}

// Report is what one chaos run observed. Validate turns it into a verdict.
type Report struct {
	Queries    int64 // queries issued (both engines, all roles)
	Succeeded  int64 // queries that returned an answer
	Checked    int64 // successful answers crosschecked against a baseline
	Mismatches int64 // crosschecks that disagreed (invariant violation)
	Overloaded int64 // ErrOverloaded sheds (expected under the gate)
	Canceled   int64 // ErrCanceled (run deadline racing a query)
	Degradable int64 // typed storage-fault outcomes (fallback disabled paths)
	Internal   int64 // ErrInternal — a contained engine panic (violation)
	Untyped    int64 // errors matching no sentinel (invariant violation)

	Inserts, Deletes, Repartitions int64 // maintenance ops applied
	// MaintFaults counts maintenance ops that failed with a typed storage
	// fault while rot was injected; the store quarantines itself and the
	// logical state stays complete, so these are expected, not violations.
	MaintFaults int64

	FaultRounds int64 // scripted corruption rounds started
	Repairs     int64 // stores rebuilt from base data
	Readmitted  int64 // half-open probes that closed the circuit

	// FirstViolation describes the first invariant violation seen, for the
	// test log; empty when the run was clean.
	FirstViolation string
}

// Validate returns nil when the run held every invariant, or an error
// naming the first broken one. Broken serving invariants wrap ErrInternal
// (the engine misbehaved); coverage shortfalls wrap ErrInvalidArgument (the
// run was configured too short to exercise the lifecycle).
func (r *Report) Validate() error {
	switch {
	case r.Untyped > 0:
		return fmt.Errorf("chaos: %d untyped outcomes: %s: %w", r.Untyped, r.FirstViolation, errs.ErrInternal)
	case r.Internal > 0:
		return fmt.Errorf("chaos: %d contained panics: %s: %w", r.Internal, r.FirstViolation, errs.ErrInternal)
	case r.Mismatches > 0:
		return fmt.Errorf("chaos: %d crosscheck mismatches: %s: %w", r.Mismatches, r.FirstViolation, errs.ErrInternal)
	case r.Checked == 0:
		return fmt.Errorf("chaos: no successful answer was ever crosschecked: %w", errs.ErrInvalidArgument)
	case r.FaultRounds == 0:
		return fmt.Errorf("chaos: fault schedule never ran: %w", errs.ErrInvalidArgument)
	case r.Readmitted == 0:
		return fmt.Errorf("chaos: no corrupted store was repaired and re-admitted: %w", errs.ErrInternal)
	}
	return nil
}

// String renders the report as a one-run summary block.
func (r *Report) String() string {
	return fmt.Sprintf(
		"queries=%d succeeded=%d checked=%d mismatches=%d overloaded=%d canceled=%d degradable=%d internal=%d untyped=%d\n"+
			"inserts=%d deletes=%d repartitions=%d maint_faults=%d fault_rounds=%d repairs=%d readmitted=%d",
		r.Queries, r.Succeeded, r.Checked, r.Mismatches, r.Overloaded, r.Canceled, r.Degradable, r.Internal, r.Untyped,
		r.Inserts, r.Deletes, r.Repartitions, r.MaintFaults, r.FaultRounds, r.Repairs, r.Readmitted)
}

// run bundles the mutable state one chaos run threads through its roles.
type run struct {
	cfg  Config
	stop time.Time

	sig  *rankcube.SignatureCube
	grid *rankcube.GridCube
	// sigMu / gridMu are the harness consistency locks: mutators hold them
	// exclusively, checked queries hold them shared so the cube answer and
	// the baseline answer observe the same logical state. Raw-storm queries
	// bypass them entirely and rely on the engines' own serving locks.
	sigMu, gridMu sync.RWMutex

	tal tally
	// violation latches the first violation description.
	violation atomic.Pointer[string]

	card int
	f    rankcube.Func
}

// tally holds the run's concurrent counters as typed atomics: a typed
// atomic cannot be accessed non-atomically at all, so the storm goroutines
// cannot race the fault controller on them by construction. Run
// materializes the plain Report after the workers join.
type tally struct {
	queries, succeeded, checked, mismatches     atomic.Int64
	overloaded, canceled, degradable            atomic.Int64
	internal, untyped                           atomic.Int64
	inserts, deletes, repartitions, maintFaults atomic.Int64
	faultRounds, repairs, readmitted            atomic.Int64
}

// report snapshots the tally into a plain Report. Only sound after the
// goroutines updating the tally have joined.
func (t *tally) report() Report {
	return Report{
		Queries:      t.queries.Load(),
		Succeeded:    t.succeeded.Load(),
		Checked:      t.checked.Load(),
		Mismatches:   t.mismatches.Load(),
		Overloaded:   t.overloaded.Load(),
		Canceled:     t.canceled.Load(),
		Degradable:   t.degradable.Load(),
		Internal:     t.internal.Load(),
		Untyped:      t.untyped.Load(),
		Inserts:      t.inserts.Load(),
		Deletes:      t.deletes.Load(),
		Repartitions: t.repartitions.Load(),
		MaintFaults:  t.maintFaults.Load(),
		FaultRounds:  t.faultRounds.Load(),
		Repairs:      t.repairs.Load(),
		Readmitted:   t.readmitted.Load(),
	}
}

func (r *run) violate(format string, args ...any) {
	s := fmt.Sprintf(format, args...)
	r.violation.CompareAndSwap(nil, &s)
}

// Run executes one seeded chaos run and returns its report. The returned
// error is ctx's, if it expired before the bounded duration did; invariant
// verdicts live in Report.Validate.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	const (
		s    = 2
		rnk  = 2
		card = 4
	)
	// Each cube gets its OWN relation (identical content, distinct tables):
	// the serving discipline is per-cube, so two cubes sharing one mutable
	// base relation must not be maintained concurrently — maintenance on one
	// would race the other's baseline scans outside either cube's lock.
	sigRel := rankcube.GenerateRelation(cfg.Tuples, s, rnk, card, rankcube.Uniform, cfg.Seed)
	gridRel := rankcube.GenerateRelation(cfg.Tuples, s, rnk, card, rankcube.Uniform, cfg.Seed)

	r := &run{cfg: cfg, stop: time.Now().Add(cfg.Duration), card: card, f: rankcube.Sum(0, 1)}
	r.sig = rankcube.BuildSignatureCube(sigRel, rankcube.SigOptions{Fanout: 16})
	r.grid = rankcube.BuildGridCube(gridRel, rankcube.GridOptions{BlockSize: 100, CompressLists: true})
	r.sig.SetAdmission(rankcube.AdmissionConfig{MaxInFlight: cfg.MaxInFlight, MaxWaiting: cfg.MaxWaiting, Name: "chaos-sig"})
	r.grid.SetAdmission(rankcube.AdmissionConfig{MaxInFlight: cfg.MaxInFlight, MaxWaiting: cfg.MaxWaiting, Name: "chaos-grid"})

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r.storm(ctx, w)
		}(w)
	}
	// The fault controller is its own role: it corrupts a store, trips it,
	// and drives the repair lifecycle while the storm keeps running.
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.faultLoop(ctx)
	}()
	wg.Wait()

	rep := r.tal.report()
	if v := r.violation.Load(); v != nil {
		rep.FirstViolation = *v
	}
	return &rep, ctx.Err()
}

// storm is one worker's seeded workload loop. Role by worker index:
// even workers target the signature cube, odd workers the grid cube; within
// each family the op mix is drawn from the worker's own rng.
func (r *run) storm(ctx context.Context, w int) {
	rng := rand.New(rand.NewSource(r.cfg.Seed*1000 + int64(w)))
	sig := w%2 == 0
	for i := 0; time.Now().Before(r.stop) && ctx.Err() == nil; i++ {
		cond := rankcube.Cond{rng.Intn(2): int32(rng.Intn(r.card))}
		k := 1 + rng.Intn(10)
		switch op := rng.Intn(10); {
		case op < 2: // mutate
			if sig {
				r.sigMu.Lock()
				r.mutateSig(ctx, rng)
				r.sigMu.Unlock()
			} else {
				r.gridMu.Lock()
				r.mutateGrid(rng, i)
				r.gridMu.Unlock()
			}
		case op < 6: // checked query under the consistency lock
			if sig {
				r.sigMu.RLock()
				r.checkedQuery(ctx, sigQuerier{r.sig}, cond, k)
				r.sigMu.RUnlock()
			} else {
				r.gridMu.RLock()
				r.checkedQuery(ctx, gridQuerier{r.grid}, cond, k)
				r.gridMu.RUnlock()
			}
		default: // raw storm query: typedness only
			var err error
			if sig {
				_, err = r.sig.Query(ctx, cond, r.f, k)
			} else {
				_, err = r.grid.Query(ctx, cond, r.f, k)
			}
			r.record(err, false)
		}
	}
}

// querier lets checkedQuery treat both engines uniformly.
type querier interface {
	query(ctx context.Context, cond rankcube.Cond, f rankcube.Func, k int) ([]rankcube.Result, error)
	baseline(ctx context.Context, cond rankcube.Cond, f rankcube.Func, k int) ([]rankcube.Result, error)
	name() string
}

type sigQuerier struct{ c *rankcube.SignatureCube }

func (q sigQuerier) query(ctx context.Context, cond rankcube.Cond, f rankcube.Func, k int) ([]rankcube.Result, error) {
	return q.c.Query(ctx, cond, f, k)
}
func (q sigQuerier) baseline(ctx context.Context, cond rankcube.Cond, f rankcube.Func, k int) ([]rankcube.Result, error) {
	return q.c.BaselineQuery(ctx, cond, f, k)
}
func (q sigQuerier) name() string { return "sig" }

type gridQuerier struct{ c *rankcube.GridCube }

func (q gridQuerier) query(ctx context.Context, cond rankcube.Cond, f rankcube.Func, k int) ([]rankcube.Result, error) {
	return q.c.Query(ctx, cond, f, k)
}
func (q gridQuerier) baseline(ctx context.Context, cond rankcube.Cond, f rankcube.Func, k int) ([]rankcube.Result, error) {
	return q.c.BaselineQuery(ctx, cond, f, k)
}
func (q gridQuerier) name() string { return "grid" }

// checkedQuery issues a cube query and its matching baseline under the same
// (caller-held) consistency lock and crosschecks the score vectors.
func (r *run) checkedQuery(ctx context.Context, q querier, cond rankcube.Cond, k int) {
	got, err := q.query(ctx, cond, r.f, k)
	if !r.record(err, false) {
		return
	}
	want, berr := q.baseline(ctx, cond, r.f, k)
	if !r.record(berr, true) {
		return
	}
	r.tal.checked.Add(1)
	if !scoresEqual(got, want) {
		r.tal.mismatches.Add(1)
		r.violate("%s crosscheck: cond=%v k=%d cube=%v baseline=%v", q.name(), cond, k, got, want)
	}
}

func (r *run) mutateSig(ctx context.Context, rng *rand.Rand) {
	if rng.Intn(3) == 0 {
		if _, err := r.sig.DeleteTuple(ctx, rankcube.TID(rng.Intn(r.cfg.Tuples))); err != nil {
			r.recordMaint("sig delete", err)
			return
		}
		r.tal.deletes.Add(1)
		return
	}
	sel := []int32{int32(rng.Intn(r.card)), int32(rng.Intn(r.card))}
	rank := []float64{rng.Float64(), rng.Float64()}
	if _, err := r.sig.InsertTuple(ctx, sel, rank); err != nil {
		r.recordMaint("sig insert", err)
		return
	}
	r.tal.inserts.Add(1)
}

// recordMaint classifies a failed maintenance op. Maintenance cannot degrade
// (there is no baseline to fall back to for a write), so a typed storage
// fault while rot is injected is a legitimate outcome: the cube quarantines
// the store and the fault controller's Repair reconciles it. Anything
// untyped is a violation.
func (r *run) recordMaint(op string, err error) {
	switch {
	case errors.Is(err, rankcube.ErrPageCorrupt), errors.Is(err, rankcube.ErrReadFailed),
		errors.Is(err, rankcube.ErrStructureUnavailable), errors.Is(err, rankcube.ErrCanceled):
		r.tal.maintFaults.Add(1)
	case errors.Is(err, rankcube.ErrInternal):
		r.tal.internal.Add(1)
		r.violate("%s: contained panic: %v", op, err)
	default:
		r.tal.untyped.Add(1)
		r.violate("%s: untyped outcome: %v", op, err)
	}
}

func (r *run) mutateGrid(rng *rand.Rand, i int) {
	switch rng.Intn(4) {
	case 0:
		r.grid.Delete(rankcube.TID(rng.Intn(r.cfg.Tuples)))
		r.tal.deletes.Add(1)
	case 1:
		if i%7 == 6 {
			r.grid.Repartition()
			r.tal.repartitions.Add(1)
		}
	default:
		sel := []int32{int32(rng.Intn(r.card)), int32(rng.Intn(r.card))}
		r.grid.Insert(sel, []float64{rng.Float64(), rng.Float64()})
		r.tal.inserts.Add(1)
	}
}

// record classifies one query outcome into the report. It returns true when
// the query succeeded. isBaseline marks the crosscheck's baseline leg, whose
// failure is a violation unless it is a benign interruption (overload or the
// run deadline) — the baseline path has no cube structures to rot.
func (r *run) record(err error, isBaseline bool) bool {
	r.tal.queries.Add(1)
	switch {
	case err == nil:
		r.tal.succeeded.Add(1)
		return true
	case errors.Is(err, rankcube.ErrOverloaded):
		r.tal.overloaded.Add(1)
	case errors.Is(err, rankcube.ErrCanceled):
		r.tal.canceled.Add(1)
	case errors.Is(err, rankcube.ErrInternal):
		r.tal.internal.Add(1)
		r.violate("contained panic: %v", err)
	case errors.Is(err, rankcube.ErrPageCorrupt), errors.Is(err, rankcube.ErrReadFailed),
		errors.Is(err, rankcube.ErrStructureUnavailable), errors.Is(err, rankcube.ErrBudgetExceeded),
		errors.Is(err, rankcube.ErrInvalidArgument):
		r.tal.degradable.Add(1)
		if isBaseline {
			r.tal.untyped.Add(1)
			r.violate("baseline scan faulted: %v", err)
		}
	default:
		r.tal.untyped.Add(1)
		r.violate("untyped outcome: %v", err)
	}
	return false
}

// faultLoop is the scripted fault schedule: alternating rounds of
// whole-store rot against the signature store and the grid's cuboid stores.
// Each round corrupts, trips quarantine with a probe query (which must still
// answer, degraded), lifts the fault, and drives Repair until the store is
// re-admitted through its half-open probe (retrying when the probe was shed
// by the admission gate).
func (r *run) faultLoop(ctx context.Context) {
	rng := rand.New(rand.NewSource(r.cfg.Seed * 7919))
	for round := 0; time.Now().Before(r.stop) && ctx.Err() == nil; round++ {
		if round%2 == 0 {
			r.faultRound(ctx, rng, r.sig.Stores(), func(c context.Context) ([]rankcube.StoreRepair, error) { return r.sig.Repair(c) }, sigQuerier{r.sig})
		} else {
			r.faultRound(ctx, rng, r.grid.Stores(), func(c context.Context) ([]rankcube.StoreRepair, error) { return r.grid.Repair(c) }, gridQuerier{r.grid})
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (r *run) faultRound(ctx context.Context, rng *rand.Rand, stores []*pager.Store,
	repair func(context.Context) ([]rankcube.StoreRepair, error), q querier) {
	r.tal.faultRounds.Add(1)
	rot := &pager.ScriptedFaults{CorruptAll: true}
	for _, st := range stores {
		st.SetFaultInjector(rot)
	}
	// Trip quarantine: with every payload page rotting, the first query that
	// reads one degrades to the baseline — and must still answer correctly.
	cond := rankcube.Cond{0: int32(rng.Intn(r.card))}
	got, err := q.query(ctx, cond, r.f, 5)
	if r.record(err, false) {
		want, berr := q.baseline(ctx, cond, r.f, 5)
		if r.record(berr, true) {
			r.tal.checked.Add(1)
			if !scoresEqual(got, want) {
				r.tal.mismatches.Add(1)
				r.violate("%s degraded crosscheck: cond=%v cube=%v baseline=%v", q.name(), cond, got, want)
			}
		}
	}

	// Lift the rot and repair. The probe can be shed by the admission gate
	// (inconclusive, store stays half-open), so retry within the run budget.
	for _, st := range stores {
		st.SetFaultInjector(nil)
	}
	for time.Now().Before(r.stop) && ctx.Err() == nil {
		reports, err := repair(ctx)
		if err != nil && rankcube.RepairError(err) {
			r.violate("repair probe hard-failed with no fault injected: %v", err)
			r.tal.untyped.Add(1)
			return
		}
		done, readmitted := true, false
		for _, rep := range reports {
			if rep.Rebuilt {
				r.tal.repairs.Add(1)
			}
			if rep.Readmitted {
				readmitted = true
			}
			if rep.State == pager.StateHalfOpen.String() || rep.State == pager.StateQuarantined.String() {
				done = false
			}
		}
		if readmitted {
			r.tal.readmitted.Add(1)
		}
		if done {
			return
		}
	}
}

func scoresEqual(a, b []rankcube.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i].Score-b[i].Score) > 1e-9 {
			return false
		}
	}
	return true
}
