// Package errs defines the typed error taxonomy of the query-execution
// governor and the fault/degradation layer, plus the abort machinery that
// carries those errors out of deep search loops.
//
// # Taxonomy
//
// Every failure a query can hit maps to exactly one sentinel, so callers
// can switch on errors.Is:
//
//   - ErrCanceled — the query's context was canceled or its deadline
//     passed. Never triggers degradation: the caller asked to stop.
//   - ErrBudgetExceeded — a per-query resource budget (block reads,
//     candidate-buffer entries) tripped mid-search. Degrades to a baseline
//     scan only when the caller opted in (the scan usually costs more than
//     the budget allowed).
//   - ErrPageCorrupt — a pager page failed checksum verification. The
//     owning store is quarantined; degradable.
//   - ErrReadFailed — a page read kept failing after the pager's
//     retry/backoff schedule was exhausted; degradable.
//   - ErrStructureUnavailable — a storage structure is quarantined after
//     earlier corruption and refuses access; degradable.
//   - ErrInternal — a panic escaped engine code and was converted at the
//     public API boundary; degradable (the baseline path shares no state
//     with the failed engine).
//   - ErrInvalidArgument — the caller handed the API a malformed request
//     (inconsistent schema, missing snapshot, unsupported operation on
//     this structure). Never degrades: a baseline scan cannot answer a
//     question that was ill-posed.
//   - ErrOverloaded — the admission gate refused the query: the serving
//     capacity is saturated, the wait queue is full, the query's deadline
//     would expire before it could run, or the gate is draining for
//     shutdown. Never degrades: shedding load by running a full baseline
//     scan would make the overload worse. Retry later or against another
//     replica.
//
// # Aborts
//
// The engines' search loops are deep call trees threaded through the pager
// at block-access granularity; returning errors through every frame would
// put fault handling on the per-tuple hot path. Instead, fault sites call
// [Abortf] (a typed panic, the pattern encoding/json uses for its internal
// error flow), and the public API boundary calls [FromPanic] in a deferred
// recover to turn it back into an error. An abort is never visible to
// callers as a panic.
package errs

import (
	"errors"
	"fmt"
)

// Sentinel errors of the robustness layer. Wrapped errors always satisfy
// errors.Is against exactly one of these.
var (
	ErrCanceled             = errors.New("query canceled")
	ErrBudgetExceeded       = errors.New("query budget exceeded")
	ErrPageCorrupt          = errors.New("page corrupt")
	ErrReadFailed           = errors.New("page read failed")
	ErrStructureUnavailable = errors.New("structure unavailable")
	ErrInternal             = errors.New("internal engine fault")
	ErrInvalidArgument      = errors.New("invalid argument")
	ErrOverloaded           = errors.New("server overloaded")
)

// abort is the payload of a typed abort panic. It deliberately does not
// implement error so a stray abort that escapes recovery is loud.
type abort struct{ err error }

// Abort unwinds the current query with err via a typed panic. The public
// API boundary (or any intermediate recover using FromPanic) converts it
// back into the error.
func Abort(err error) {
	panic(abort{err: err})
}

// Abortf aborts with an error wrapping the given sentinel:
// "<formatted message>: <sentinel>".
func Abortf(sentinel error, format string, args ...any) {
	Abort(fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), sentinel))
}

// FromPanic converts a recovered panic value into a typed error: aborts
// yield their carried error, anything else wraps ErrInternal. It returns
// nil for a nil recover value so it can be called unconditionally:
//
//	defer func() { err = errs.FromPanic(recover()) }()
func FromPanic(r any) error {
	if r == nil {
		return nil
	}
	if a, ok := r.(abort); ok {
		return a.err
	}
	return fmt.Errorf("engine panic: %v: %w", r, ErrInternal)
}

// IsAbort reports whether a recovered panic value is a typed abort, and if
// so returns its error. Non-abort panics should usually be re-panicked by
// intermediate recovery sites so real bugs keep their stack traces.
func IsAbort(r any) (error, bool) {
	a, ok := r.(abort)
	if !ok {
		return nil, false
	}
	return a.err, true
}

// Degradable reports whether err is a fault the degradation policy may
// transparently answer from a baseline scan instead: storage-level faults
// and recovered engine panics qualify; cancellation and budget trips do
// not (budget degradation is a separate caller opt-in).
func Degradable(err error) bool {
	return errors.Is(err, ErrPageCorrupt) ||
		errors.Is(err, ErrReadFailed) ||
		errors.Is(err, ErrStructureUnavailable) ||
		errors.Is(err, ErrInternal)
}
