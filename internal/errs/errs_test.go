package errs

import (
	"errors"
	"testing"
)

// recoverAbort runs fn and returns the error carried by a typed abort, nil
// when fn returns normally. Non-abort panics propagate.
func recoverAbort(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			var ok bool
			if err, ok = IsAbort(r); !ok {
				panic(r)
			}
		}
	}()
	fn()
	return nil
}

func TestAbortCarriesError(t *testing.T) {
	want := errors.New("boom")
	err := recoverAbort(func() { Abort(want) })
	if err != want {
		t.Fatalf("recovered %v, want %v", err, want)
	}
}

func TestAbortfWrapsSentinel(t *testing.T) {
	err := recoverAbort(func() { Abortf(ErrPageCorrupt, "page %d bad", 7) })
	if !errors.Is(err, ErrPageCorrupt) {
		t.Fatalf("err %v does not wrap ErrPageCorrupt", err)
	}
	if got := err.Error(); got != "page 7 bad: page corrupt" {
		t.Fatalf("message %q", got)
	}
}

func TestFromPanic(t *testing.T) {
	if err := FromPanic(nil); err != nil {
		t.Fatalf("nil recover value gave %v", err)
	}
	inner := errors.New("inner")
	var carried any
	func() {
		defer func() { carried = recover() }()
		Abort(inner)
	}()
	if err := FromPanic(carried); err != inner {
		t.Fatalf("abort gave %v, want %v", err, inner)
	}
	if err := FromPanic("stray panic"); !errors.Is(err, ErrInternal) {
		t.Fatalf("foreign panic gave %v, want ErrInternal wrap", err)
	}
}

func TestIsAbortRejectsForeignPanics(t *testing.T) {
	if _, ok := IsAbort("not an abort"); ok {
		t.Fatal("foreign panic value reported as abort")
	}
}

func TestDegradable(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{ErrPageCorrupt, true},
		{ErrReadFailed, true},
		{ErrStructureUnavailable, true},
		{ErrInternal, true},
		{ErrCanceled, false},
		{ErrBudgetExceeded, false},
		{errors.New("unrelated"), false},
		{nil, false},
	}
	for _, c := range cases {
		if got := Degradable(c.err); got != c.want {
			t.Errorf("Degradable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	// Wrapped sentinels stay classified.
	var wrapped error
	func() {
		defer func() { wrapped, _ = IsAbort(recover()) }()
		Abortf(ErrReadFailed, "store x")
	}()
	if !Degradable(wrapped) {
		t.Fatalf("wrapped ErrReadFailed not degradable: %v", wrapped)
	}
}
