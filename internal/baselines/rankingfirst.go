package baselines

import (
	"math"

	"rankcube/internal/core"
	"rankcube/internal/heap"
	"rankcube/internal/hindex"
	"rankcube/internal/pager"
	"rankcube/internal/ranking"
	"rankcube/internal/rtree"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// RankingFirst is the "Ranking" baseline of §4.4.1: branch-and-bound over
// an R-tree ordered by function lower bounds, with boolean predicates
// verified by random access only for tuples that would enter the top-k.
type RankingFirst struct {
	heap *HeapFile
	rt   *rtree.Tree
}

// NewRankingFirst builds (or adopts) the R-tree over all ranking
// dimensions.
func NewRankingFirst(h *HeapFile, rt *rtree.Tree) *RankingFirst {
	return &RankingFirst{heap: h, rt: rt}
}

// BuildRankingFirst bulk-loads a fresh R-tree for the baseline.
func BuildRankingFirst(h *HeapFile, cfg rtree.Config) *RankingFirst {
	t := h.t
	r := t.Schema().R()
	dims := make([]int, r)
	for i := range dims {
		dims[i] = i
	}
	lo := make([]float64, r)
	hi := make([]float64, r)
	for d := 0; d < r; d++ {
		lo[d], hi[d] = t.RankDomain(d)
		if hi[d] <= lo[d] {
			hi[d] = lo[d] + 1
		}
	}
	rt := rtree.Bulk(t, dims, ranking.NewBox(lo, hi), cfg)
	return NewRankingFirst(h, rt)
}

// Tree exposes the baseline's R-tree (shared with other engines in some
// experiments).
func (rf *RankingFirst) Tree() *rtree.Tree { return rf.rt }

// TopK runs the progressive search. Boolean checks are deferred to
// candidate results, which the thesis argues minimizes verification count
// (§4.4.1: "we only verify a tuple which has been determined as a candidate
// result").
func (rf *RankingFirst) TopK(cond core.Cond, f ranking.Func, k int, ctr *stats.Counters) []core.Result {
	if rf.rt.Root() == hindex.InvalidNode || k <= 0 {
		return nil
	}
	t := rf.heap.t
	acc := hindex.NewAccessor(rf.rt, ctr)
	verify := pager.NewBuffer(rf.heap.store)
	topk := heap.NewBounded[core.Result](k, core.WorseResult)

	type entry struct {
		score   float64
		isTuple bool
		node    hindex.NodeID
		tid     table.TID
	}
	less := func(a, b entry) bool {
		if a.score != b.score {
			return a.score < b.score
		}
		return a.isTuple && !b.isTuple
	}
	h := heap.New[entry](less)
	h.Push(entry{score: f.LowerBound(rf.rt.NodeBox(rf.rt.Root())), node: rf.rt.Root()})

	for h.Len() > 0 {
		ctr.ObserveHeap(h.Len())
		e := h.Pop()
		if topk.Full() && topk.Worst().Score <= e.score {
			break
		}
		if e.isTuple {
			// Candidate result: random-access boolean verification.
			verify.Touch(rf.heap.PageOf(e.tid), ctr)
			if t.Matches(e.tid, cond) {
				topk.Offer(core.Result{TID: e.tid, Score: e.score})
			}
			continue
		}
		if rf.rt.IsLeaf(e.node) {
			for _, le := range acc.LeafEntries(e.node) {
				score := f.Eval(le.Point)
				if math.IsInf(score, 1) {
					continue
				}
				h.Push(entry{score: score, isTuple: true, tid: le.TID})
			}
			continue
		}
		for _, ch := range acc.Children(e.node) {
			bound := f.LowerBound(ch.Box)
			if math.IsInf(bound, 1) {
				continue
			}
			h.Push(entry{score: bound, node: ch.ID})
		}
	}
	return topk.Sorted()
}
