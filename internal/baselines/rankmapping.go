package baselines

import (
	"math"
	"sort"

	"rankcube/internal/core"
	"rankcube/internal/heap"
	"rankcube/internal/pager"
	"rankcube/internal/ranking"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// RankMapping reproduces the rank-mapping comparison of §3.5.1: a top-k
// query maps to a range query over a clustered multi-dimensional index
// ordered first by the selection dimensions, then by the ranking
// dimensions. As in the thesis' "extremely conservative comparison", the
// range bounds are oracle-optimal: derived from the true kth score, the
// best any workload-adaptive mapping strategy could produce.
type RankMapping struct {
	t     *table.Table
	store *pager.Store
	// order is the clustered tuple order; keys are (A1..AS, N1..NR).
	order    []table.TID
	rowsPage int
}

// NewRankMapping builds the clustered composite index.
func NewRankMapping(t *table.Table, pageSize int) *RankMapping {
	rm := &RankMapping{
		t:     t,
		store: pager.NewStore(stats.StructBTree, pageSize),
	}
	n := t.Len()
	rm.order = make([]table.TID, n)
	for i := range rm.order {
		rm.order[i] = table.TID(i)
	}
	s := t.Schema().S()
	r := t.Schema().R()
	sort.Slice(rm.order, func(a, b int) bool {
		ta, tb := rm.order[a], rm.order[b]
		for d := 0; d < s; d++ {
			va, vb := t.Sel(ta, d), t.Sel(tb, d)
			if va != vb {
				return va < vb
			}
		}
		for d := 0; d < r; d++ {
			va, vb := t.Rank(ta, d), t.Rank(tb, d)
			if va != vb {
				return va < vb
			}
		}
		return ta < tb
	})
	rowBytes := t.RowBytes()
	rm.rowsPage = rm.store.PageSize() / rowBytes
	if rm.rowsPage < 1 {
		rm.rowsPage = 1
	}
	pages := (n + rm.rowsPage - 1) / rm.rowsPage
	for i := 0; i < pages; i++ {
		rows := rm.rowsPage
		if i == pages-1 {
			rows = n - i*rm.rowsPage
		}
		rm.store.AppendLogical(rows * rowBytes)
	}
	return rm
}

// IndexSizeBytes reports the clustered index footprint (fig. 3.11's RM
// series).
func (rm *RankMapping) IndexSizeBytes() int64 { return rm.store.Bytes() }

// OptimalBox derives the oracle range box for score threshold s*: the
// tightest per-dimension bounds guaranteed to contain every tuple with
// f ≤ s* (thesis example: kth score 100 under N1+2N2 gives n1=100, n2=50).
// Functions without a closed form fall back to the full domain.
func OptimalBox(t *table.Table, f ranking.Func, kth float64) ranking.Box {
	r := t.Schema().R()
	lo := make([]float64, r)
	hi := make([]float64, r)
	for d := 0; d < r; d++ {
		lo[d], hi[d] = t.RankDomain(d)
	}
	box := ranking.NewBox(lo, hi)
	switch fn := f.(type) {
	case *ranking.LinearFunc:
		// For weight w > 0: x_d ≤ (kth − Σ_{j≠d} min_j)/w; symmetrically
		// for w < 0. Using per-dimension minima of the other terms keeps the
		// box sound for mixed signs.
		attrs := fn.Attrs()
		ws := fn.Weights()
		mins := make([]float64, len(attrs))
		total := 0.0
		for i, a := range attrs {
			if ws[i] >= 0 {
				mins[i] = ws[i] * box.Lo[a]
			} else {
				mins[i] = ws[i] * box.Hi[a]
			}
			total += mins[i]
		}
		for i, a := range attrs {
			budget := kth - (total - mins[i])
			w := ws[i]
			if w > 0 {
				if v := budget / w; v < box.Hi[a] {
					box.Hi[a] = v
				}
			} else if w < 0 {
				if v := budget / w; v > box.Lo[a] {
					box.Lo[a] = v
				}
			}
		}
	case *ranking.DistFunc:
		ext := fn.Extreme()
		for _, a := range fn.Attrs() {
			var radius float64
			if kth >= 0 {
				radius = math.Sqrt(kth)
			}
			if lo := ext[a] - radius; lo > box.Lo[a] {
				box.Lo[a] = lo
			}
			if hi := ext[a] + radius; hi < box.Hi[a] {
				box.Hi[a] = hi
			}
		}
	}
	return box
}

// TopK answers the query through the mapped range query. The oracle kth
// score is computed out-of-band (uncharged), as the thesis feeds the method
// its best possible bounds.
func (rm *RankMapping) TopK(cond core.Cond, f ranking.Func, k int, ctr *stats.Counters) []core.Result {
	t := rm.t
	kth := rm.oracleKth(cond, f, k)
	if math.IsInf(kth, 1) {
		return nil
	}
	box := OptimalBox(t, f, kth)

	// The clustered index serves the query well only when the condition
	// binds a prefix of the composite key; the scanned segment is the run
	// of tuples matching the bound prefix (§3.5.2's observation that
	// execution time is sensitive to whether query dimensions follow the
	// index order).
	s := t.Schema().S()
	prefix := 0
	for d := 0; d < s; d++ {
		if _, ok := cond[d]; ok {
			prefix++
		} else {
			break
		}
	}
	lo, hi := rm.segment(cond, prefix)

	// Charge the scanned index pages.
	firstPage := lo / rm.rowsPage
	lastPage := (hi - 1) / rm.rowsPage
	if hi > lo {
		buffer := pager.NewBuffer(rm.store)
		for p := firstPage; p <= lastPage; p++ {
			buffer.Touch(pager.PageID(p), ctr)
		}
	}

	topk := heap.NewBounded[core.Result](k, core.WorseResult)
	buf := make([]float64, t.Schema().R())
	for i := lo; i < hi; i++ {
		tid := rm.order[i]
		if !t.Matches(tid, cond) {
			continue
		}
		row := t.RankRow(tid, buf)
		if !box.Contains(row) {
			continue
		}
		score := f.Eval(row)
		if math.IsInf(score, 1) {
			continue
		}
		topk.Offer(core.Result{TID: tid, Score: score})
	}
	return topk.Sorted()
}

// segment finds the clustered-order run matching the first prefix bound
// selection dimensions of cond.
func (rm *RankMapping) segment(cond core.Cond, prefix int) (int, int) {
	if prefix == 0 {
		return 0, len(rm.order)
	}
	t := rm.t
	cmp := func(tid table.TID) int {
		for d := 0; d < prefix; d++ {
			v := t.Sel(tid, d)
			if v != cond[d] {
				if v < cond[d] {
					return -1
				}
				return 1
			}
		}
		return 0
	}
	lo := sort.Search(len(rm.order), func(i int) bool { return cmp(rm.order[i]) >= 0 })
	hi := sort.Search(len(rm.order), func(i int) bool { return cmp(rm.order[i]) > 0 })
	return lo, hi
}

// oracleKth computes the true kth score (uncharged oracle).
func (rm *RankMapping) oracleKth(cond core.Cond, f ranking.Func, k int) float64 {
	t := rm.t
	topk := heap.NewBounded[core.Result](k, core.WorseResult)
	buf := make([]float64, t.Schema().R())
	for i := 0; i < t.Len(); i++ {
		tid := table.TID(i)
		if !t.Matches(tid, cond) {
			continue
		}
		score := f.Eval(t.RankRow(tid, buf))
		if math.IsInf(score, 1) {
			continue
		}
		topk.Offer(core.Result{TID: tid, Score: score})
	}
	if topk.Len() == 0 {
		return math.Inf(1)
	}
	return topk.Worst().Score
}
