package baselines

import (
	"math"
	"sort"

	"rankcube/internal/core"
	"rankcube/internal/heap"
	"rankcube/internal/pager"
	"rankcube/internal/ranking"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// Onion is the layered convex-hull index of Chang et al., reviewed as
// rank-aware materialization related work in thesis §2.1.1: tuples are
// peeled into nested convex-hull layers so any linear top-k query is
// answered from at most k layers. Two ranking dimensions, as in the thesis'
// illustrations. Its weakness — no awareness of multi-dimensional
// selections, so selective predicates force deep scans — is exactly what
// the ranking cube fixes; the ext.onion experiment shows the contrast.
type Onion struct {
	t      *table.Table
	dims   [2]int
	layers [][]table.TID
	pages  []pager.PageID
	store  *pager.Store
}

// NewOnion peels the relation's tuples (projected onto two ranking
// dimensions) into convex-hull layers. Construction is O(layers · n log n);
// intended for baseline comparison, not bulk use.
func NewOnion(t *table.Table, dimX, dimY int, pageSize int) *Onion {
	o := &Onion{
		t:     t,
		dims:  [2]int{dimX, dimY},
		store: pager.NewStore(stats.StructBTree, pageSize),
	}
	type pt struct {
		x, y float64
		tid  table.TID
	}
	remaining := make([]pt, t.Len())
	for i := 0; i < t.Len(); i++ {
		tid := table.TID(i)
		remaining[i] = pt{x: t.Rank(tid, dimX), y: t.Rank(tid, dimY), tid: tid}
	}
	sort.Slice(remaining, func(a, b int) bool {
		if remaining[a].x != remaining[b].x {
			return remaining[a].x < remaining[b].x
		}
		return remaining[a].y < remaining[b].y
	})
	for len(remaining) > 0 {
		hull := convexHullIdx(len(remaining), func(i int) (float64, float64) {
			return remaining[i].x, remaining[i].y
		})
		layer := make([]table.TID, 0, len(hull))
		inHull := make([]bool, len(remaining))
		for _, i := range hull {
			inHull[i] = true
			layer = append(layer, remaining[i].tid)
		}
		o.layers = append(o.layers, layer)
		o.pages = append(o.pages, o.store.AppendLogical(len(layer)*20))
		next := remaining[:0]
		for i, p := range remaining {
			if !inHull[i] {
				next = append(next, p)
			}
		}
		remaining = next
	}
	return o
}

// convexHullIdx computes hull vertex indices over points sorted by (x, y)
// with Andrew's monotone chain. Collinear boundary points are kept so
// peeling terminates on degenerate inputs.
func convexHullIdx(n int, at func(int) (float64, float64)) []int {
	if n <= 2 {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	cross := func(o, a, b int) float64 {
		ox, oy := at(o)
		ax, ay := at(a)
		bx, by := at(b)
		return (ax-ox)*(by-oy) - (ay-oy)*(bx-ox)
	}
	var lower, upper []int
	for i := 0; i < n; i++ {
		for len(lower) >= 2 && cross(lower[len(lower)-2], lower[len(lower)-1], i) < 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, i)
	}
	for i := n - 1; i >= 0; i-- {
		for len(upper) >= 2 && cross(upper[len(upper)-2], upper[len(upper)-1], i) < 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, i)
	}
	seen := make(map[int]bool, len(lower)+len(upper))
	out := make([]int, 0, len(lower)+len(upper))
	for _, i := range append(lower[:len(lower)-1], upper[:len(upper)-1]...) {
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	return out
}

// NumLayers reports the peeling depth.
func (o *Onion) NumLayers() int { return len(o.layers) }

// TopK answers a linear top-k query. Layers are read outermost first; the
// scan stops once the current layer's unconditioned minimum cannot beat the
// kth matching score (hull nesting makes that minimum a lower bound for all
// deeper tuples). Selective conditions defeat the layering and force deep
// scans — the behaviour the thesis contrasts against.
func (o *Onion) TopK(cond core.Cond, f ranking.Func, k int, ctr *stats.Counters) []core.Result {
	// The layer-minimum stop bound relies on linearity (extrema of linear
	// functions sit on hull vertices); other functions scan every layer.
	_, linear := f.(*ranking.LinearFunc)
	topk := heap.NewBounded[core.Result](k, core.WorseResult)
	buf := make([]float64, o.t.Schema().R())
	for li, layer := range o.layers {
		o.store.Touch(o.pages[li], ctr)
		layerMin := math.Inf(1)
		for _, tid := range layer {
			score := f.Eval(o.t.RankRow(tid, buf))
			if score < layerMin {
				layerMin = score
			}
			if math.IsInf(score, 1) || !o.t.Matches(tid, cond) {
				continue
			}
			topk.Offer(core.Result{TID: tid, Score: score})
		}
		if linear && topk.Full() && topk.Worst().Score <= layerMin {
			break
		}
	}
	return topk.Sorted()
}
