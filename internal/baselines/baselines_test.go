package baselines

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"rankcube/internal/core"
	"rankcube/internal/ranking"
	"rankcube/internal/rtree"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

func brute(t *table.Table, cond core.Cond, f ranking.Func, k int) []core.Result {
	var all []core.Result
	buf := make([]float64, t.Schema().R())
	for i := 0; i < t.Len(); i++ {
		tid := table.TID(i)
		if !t.Matches(tid, cond) {
			continue
		}
		score := f.Eval(t.RankRow(tid, buf))
		if math.IsInf(score, 1) {
			continue
		}
		all = append(all, core.Result{TID: tid, Score: score})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Score != all[b].Score {
			return all[a].Score < all[b].Score
		}
		return all[a].TID < all[b].TID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func sameScores(t *testing.T, got, want []core.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			t.Fatalf("result %d: score %v, want %v", i, got[i].Score, want[i].Score)
		}
	}
}

func fixture() (*table.Table, *HeapFile) {
	tb := table.Generate(table.GenSpec{T: 8000, S: 3, R: 2, Card: 5, Seed: 101})
	return tb, NewHeapFile(tb, 0)
}

func randCond(rng *rand.Rand) core.Cond {
	cond := core.Cond{}
	for _, d := range rng.Perm(3)[:1+rng.Intn(2)] {
		cond[d] = int32(rng.Intn(5))
	}
	return cond
}

func TestAllBaselinesAgree(t *testing.T) {
	tb, h := fixture()
	ts := NewTableScan(h)
	bf := NewBooleanFirst(h)
	rf := BuildRankingFirst(h, rtree.Config{Fanout: 16})
	rm := NewRankMapping(tb, 0)

	rng := rand.New(rand.NewSource(102))
	funcs := []ranking.Func{
		ranking.Sum(0, 1),
		ranking.Linear([]int{0, 1}, []float64{2, 5}),
		ranking.SqDist([]int{0, 1}, []float64{0.3, 0.8}),
	}
	for trial := 0; trial < 15; trial++ {
		cond := randCond(rng)
		f := funcs[trial%len(funcs)]
		k := 1 + rng.Intn(15)
		want := brute(tb, cond, f, k)
		sameScores(t, ts.TopK(cond, f, k, stats.New()), want)
		sameScores(t, bf.TopK(cond, f, k, stats.New()), want)
		sameScores(t, rf.TopK(cond, f, k, stats.New()), want)
		sameScores(t, rm.TopK(cond, f, k, stats.New()), want)
	}
}

func TestTableScanChargesFullScan(t *testing.T) {
	_, h := fixture()
	ts := NewTableScan(h)
	ctr := stats.New()
	ts.TopK(core.Cond{0: 1}, ranking.Sum(0, 1), 5, ctr)
	if got := ctr.Reads(stats.StructTable); got != int64(h.NumPages()) {
		t.Fatalf("table reads = %d, want full scan %d", got, h.NumPages())
	}
}

func TestBooleanFirstIOScalesWithSelectivity(t *testing.T) {
	tb, h := fixture()
	bf := NewBooleanFirst(h)
	f := ranking.Sum(0, 1)
	// One condition: ~T/5 candidates; three conditions: ~T/125.
	one := stats.New()
	bf.TopK(core.Cond{0: 1}, f, 10, one)
	three := stats.New()
	bf.TopK(core.Cond{0: 1, 1: 2, 2: 3}, f, 10, three)
	if three.TotalReads() >= one.TotalReads() {
		t.Fatalf("3-cond I/O (%d) not below 1-cond I/O (%d)", three.TotalReads(), one.TotalReads())
	}
	_ = tb
}

func TestRankingFirstReadsFewBlocksForSmallK(t *testing.T) {
	_, h := fixture()
	rf := BuildRankingFirst(h, rtree.Config{})
	ctr := stats.New()
	rf.TopK(core.Cond{}, ranking.Sum(0, 1), 1, ctr)
	if got := ctr.Reads(stats.StructRTree); got > 20 {
		t.Fatalf("R-tree reads = %d for top-1, expected a handful", got)
	}
}

func TestOptimalBoxLinearMatchesThesisExample(t *testing.T) {
	// Thesis §3.5.1: kth score 100 under N1 + 2·N2 gives n1 = 100, n2 = 50
	// (over a domain starting at 0).
	tb := table.MustNew(table.Schema{SelNames: []string{"a"}, SelCard: []int{2}, RankNames: []string{"n1", "n2"}})
	tb.Append([]int32{0}, []float64{0, 0})
	tb.Append([]int32{0}, []float64{200, 200})
	f := ranking.Linear([]int{0, 1}, []float64{1, 2})
	box := OptimalBox(tb, f, 100)
	if box.Hi[0] != 100 || box.Hi[1] != 50 {
		t.Fatalf("box = %v..%v, want hi = [100, 50]", box.Lo, box.Hi)
	}
}

func TestOptimalBoxSoundProperty(t *testing.T) {
	tb := table.Generate(table.GenSpec{T: 2000, S: 1, R: 2, Card: 2, Seed: 103})
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 50; trial++ {
		f := ranking.Linear([]int{0, 1}, []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2})
		kth := rng.Float64() * 2
		box := OptimalBox(tb, f, kth)
		buf := make([]float64, 2)
		for i := 0; i < tb.Len(); i++ {
			row := tb.RankRow(table.TID(i), buf)
			if f.Eval(row) <= kth && !box.Contains(row) {
				t.Fatalf("tuple with score %v ≤ %v outside optimal box", f.Eval(row), kth)
			}
		}
	}
}

func TestRankMappingPrefixVsNonPrefix(t *testing.T) {
	tb, _ := fixture()
	rm := NewRankMapping(tb, 0)
	f := ranking.Sum(0, 1)
	// Prefix-bound condition scans a narrow segment.
	pre := stats.New()
	rm.TopK(core.Cond{0: 1}, f, 10, pre)
	// Non-prefix condition (dimension 2 only) scans the whole index.
	non := stats.New()
	rm.TopK(core.Cond{2: 1}, f, 10, non)
	if pre.TotalReads() >= non.TotalReads() {
		t.Fatalf("prefix scan (%d reads) not cheaper than non-prefix (%d)", pre.TotalReads(), non.TotalReads())
	}
}

func TestHeapFilePaging(t *testing.T) {
	tb := table.Generate(table.GenSpec{T: 1000, S: 2, R: 2, Card: 3, Seed: 105})
	h := NewHeapFile(tb, 4096)
	rows := 4096 / tb.RowBytes()
	wantPages := (1000 + rows - 1) / rows
	if h.NumPages() != wantPages {
		t.Fatalf("NumPages = %d, want %d", h.NumPages(), wantPages)
	}
	if h.PageOf(0) != 0 || h.PageOf(table.TID(rows)) != 1 {
		t.Fatal("PageOf mapping wrong")
	}
}

func TestOnionMatchesBrute(t *testing.T) {
	tb := table.Generate(table.GenSpec{T: 3000, S: 2, R: 2, Card: 4, Seed: 106})
	onion := NewOnion(tb, 0, 1, 0)
	if onion.NumLayers() < 5 {
		t.Fatalf("only %d layers peeled", onion.NumLayers())
	}
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 10; trial++ {
		f := ranking.Linear([]int{0, 1}, []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2})
		k := 1 + rng.Intn(10)
		var cond core.Cond
		if trial%2 == 0 {
			cond = core.Cond{0: int32(rng.Intn(4))}
		} else {
			cond = core.Cond{}
		}
		got := onion.TopK(cond, f, k, stats.New())
		sameScores(t, got, brute(tb, cond, f, k))
	}
}

func TestOnionStopsEarlyWithoutSelections(t *testing.T) {
	tb := table.Generate(table.GenSpec{T: 5000, S: 1, R: 2, Card: 40, Seed: 108})
	onion := NewOnion(tb, 0, 1, 0)
	f := ranking.Sum(0, 1)
	free := stats.New()
	onion.TopK(core.Cond{}, f, 5, free)
	selective := stats.New()
	onion.TopK(core.Cond{0: 3}, f, 5, selective)
	if free.TotalReads() >= selective.TotalReads() {
		t.Fatalf("unselective scan read %d layers, selective read %d: selections should force deeper scans",
			free.TotalReads(), selective.TotalReads())
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	// All-collinear points must still peel to completion.
	tb := table.MustNew(table.Schema{SelNames: []string{"a"}, SelCard: []int{2}, RankNames: []string{"x", "y"}})
	for i := 0; i < 50; i++ {
		v := float64(i) / 50
		tb.Append([]int32{0}, []float64{v, v})
	}
	onion := NewOnion(tb, 0, 1, 0)
	total := 0
	for _, l := range onion.layers {
		total += len(l)
	}
	if total != 50 {
		t.Fatalf("peeled %d of 50 tuples", total)
	}
	got := onion.TopK(core.Cond{}, ranking.Sum(0, 1), 3, stats.New())
	sameScores(t, got, brute(tb, core.Cond{}, ranking.Sum(0, 1), 3))
}
