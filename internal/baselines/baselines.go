// Package baselines implements the comparison systems of the thesis'
// evaluation chapters, reproducing their access-path shapes over the
// simulated pager:
//
//   - TableScan — sequential scan maintaining a k-heap (the TS series of
//     ch. 5 and the spirit of the ch. 3 "baseline" plan when selections are
//     unhelpful).
//   - BooleanFirst — per-dimension inverted indexes, intersect the matching
//     tid lists, fetch and rank survivors (the "Boolean" series of ch. 4 and
//     the SQL-Server baseline of ch. 3).
//   - RankingFirst — branch-and-bound over an R-tree with random-access
//     boolean verification on candidate results only (the "Ranking" series
//     of ch. 4).
//   - RankMapping — the top-k-to-range-query mapping of [14] fed, as in the
//     thesis (§3.5.1), oracle-optimal range bounds.
package baselines

import (
	"math"
	"sort"

	"rankcube/internal/core"
	"rankcube/internal/heap"
	"rankcube/internal/pager"
	"rankcube/internal/ranking"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// HeapFile models the base relation stored as a paged heap file in tid
// order; all baselines share it for sequential scans and random accesses.
type HeapFile struct {
	t        *table.Table
	store    *pager.Store
	rowsPage int
}

// NewHeapFile pages the relation at the given page size (0 = default).
func NewHeapFile(t *table.Table, pageSize int) *HeapFile {
	store := pager.NewStore(stats.StructTable, pageSize)
	rowBytes := t.RowBytes()
	rowsPage := store.PageSize() / rowBytes
	if rowsPage < 1 {
		rowsPage = 1
	}
	n := (t.Len() + rowsPage - 1) / rowsPage
	for i := 0; i < n; i++ {
		rows := rowsPage
		if i == n-1 {
			rows = t.Len() - i*rowsPage
		}
		store.AppendLogical(rows * rowBytes)
	}
	return &HeapFile{t: t, store: store, rowsPage: rowsPage}
}

// Table returns the underlying relation.
func (h *HeapFile) Table() *table.Table { return h.t }

// PageOf maps a tuple to its heap page.
func (h *HeapFile) PageOf(tid table.TID) pager.PageID {
	return pager.PageID(int(tid) / h.rowsPage)
}

// NumPages reports the heap file's page count.
func (h *HeapFile) NumPages() int { return h.store.NumPages() }

// SizeBytes reports the heap file footprint.
func (h *HeapFile) SizeBytes() int64 { return h.store.Bytes() }

// ScanAll charges a full sequential scan.
func (h *HeapFile) ScanAll(ctr *stats.Counters) {
	ctr.Read(stats.StructTable, int64(h.store.NumPages()))
}

// TableScan is the TS baseline: read every page, keep the best k matches.
type TableScan struct {
	heap *HeapFile
}

// NewTableScan wraps a heap file.
func NewTableScan(h *HeapFile) *TableScan { return &TableScan{heap: h} }

// TopK scans the relation.
func (ts *TableScan) TopK(cond core.Cond, f ranking.Func, k int, ctr *stats.Counters) []core.Result {
	defer ctr.StartSpan("scan")()
	ts.heap.ScanAll(ctr)
	t := ts.heap.t
	topk := heap.NewBounded[core.Result](k, core.WorseResult)
	buf := make([]float64, t.Schema().R())
	for i := 0; i < t.Len(); i++ {
		tid := table.TID(i)
		if !t.Matches(tid, cond) {
			continue
		}
		score := f.Eval(t.RankRow(tid, buf))
		if math.IsInf(score, 1) {
			continue
		}
		topk.Offer(core.Result{TID: tid, Score: score})
	}
	return topk.Sorted()
}

// BooleanFirst evaluates boolean predicates through per-dimension inverted
// indexes, then ranks the surviving tuples.
type BooleanFirst struct {
	heap  *HeapFile
	store *pager.Store
	// lists[d][v] holds the tids with value v on dimension d, ascending.
	lists [][][]table.TID
	pages [][]pager.PageID
}

// NewBooleanFirst builds the inverted indexes.
func NewBooleanFirst(h *HeapFile) *BooleanFirst {
	t := h.t
	bf := &BooleanFirst{
		heap:  h,
		store: pager.NewStore(stats.StructBTree, h.store.PageSize()),
	}
	s := t.Schema().S()
	bf.lists = make([][][]table.TID, s)
	bf.pages = make([][]pager.PageID, s)
	for d := 0; d < s; d++ {
		card := t.Schema().SelCard[d]
		bf.lists[d] = make([][]table.TID, card)
		col := t.SelColumn(d)
		for i, v := range col {
			bf.lists[d][v] = append(bf.lists[d][v], table.TID(i))
		}
		bf.pages[d] = make([]pager.PageID, card)
		for v := 0; v < card; v++ {
			bf.pages[d][v] = bf.store.AppendLogical(len(bf.lists[d][v]) * 4)
		}
	}
	return bf
}

// IndexSizeBytes reports the inverted-index footprint (fig. 3.11's BL
// index-size series).
func (bf *BooleanFirst) IndexSizeBytes() int64 { return bf.store.Bytes() }

// TopK intersects the condition's tid lists (charging index reads), fetches
// survivors with random accesses, and ranks them.
func (bf *BooleanFirst) TopK(cond core.Cond, f ranking.Func, k int, ctr *stats.Counters) []core.Result {
	t := bf.heap.t
	dims := cond.Dims()
	var candidates []table.TID
	if len(dims) == 0 {
		return NewTableScan(bf.heap).TopK(cond, f, k, ctr)
	}
	// Start from the most selective list (standard optimizer choice), then
	// intersect the rest.
	sort.Slice(dims, func(a, b int) bool {
		return len(bf.lists[dims[a]][cond[dims[a]]]) < len(bf.lists[dims[b]][cond[dims[b]]])
	})
	for i, d := range dims {
		list := bf.lists[d][cond[d]]
		bf.store.Touch(bf.pages[d][cond[d]], ctr)
		if i == 0 {
			candidates = append([]table.TID(nil), list...)
			continue
		}
		candidates = intersectSorted(candidates, list)
		if len(candidates) == 0 {
			return nil
		}
	}
	// Fetch survivors: random accesses, buffered per page.
	buffer := pager.NewBuffer(bf.heap.store)
	topk := heap.NewBounded[core.Result](k, core.WorseResult)
	buf := make([]float64, t.Schema().R())
	for _, tid := range candidates {
		buffer.Touch(bf.heap.PageOf(tid), ctr)
		score := f.Eval(t.RankRow(tid, buf))
		if math.IsInf(score, 1) {
			continue
		}
		topk.Offer(core.Result{TID: tid, Score: score})
	}
	return topk.Sorted()
}

func intersectSorted(a, b []table.TID) []table.TID {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
