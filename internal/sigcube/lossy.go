package sigcube

import (
	"rankcube/internal/bloom"
	"rankcube/internal/core"
	"rankcube/internal/hindex"
	"rankcube/internal/pager"
	"rankcube/internal/ranking"
	"rankcube/internal/signature"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// Lossy signatures (thesis §4.5): instead of the exact bit-tree, a cell
// stores a bloom filter over the SIDs of its marked nodes and tuples.
// Membership tests have false positives but no false negatives, so pruning
// stays sound for internal nodes; tuple-level hits are re-verified against
// the relation by random access ("we need the boolean verification step").
// The trade-off — smaller measure, extra verification I/O — is quantified
// by the ext.bloom experiment.

// bloomCell is one cell's lossy measure.
type bloomCell struct {
	filter *bloom.Filter
	page   pager.PageID
	fanout int
}

// Test implements signature.Tester.
func (bc *bloomCell) Test(path []int) bool {
	if len(path) == 0 {
		return true
	}
	return bc.filter.MayContain(hindex.SID(path, bc.fanout))
}

// loadedBloomCell charges the filter's page once per query view.
type loadedBloomCell struct {
	cell   *bloomCell
	buf    *pager.Buffer
	ctr    *stats.Counters
	loaded bool
}

func (l *loadedBloomCell) Test(path []int) bool {
	if !l.loaded {
		l.buf.Touch(l.cell.page, l.ctr)
		l.loaded = true
	}
	return l.cell.Test(path)
}

// buildBloomCell constructs the lossy measure for one cell from its tuple
// paths: every marked SID (all path prefixes) is inserted.
func (c *Cube) buildBloomCell(paths [][]int) *bloomCell {
	fanout := c.rt.MaxFanout()
	sids := make(map[uint64]struct{})
	for _, p := range paths {
		for i := 1; i <= len(p); i++ {
			sids[hindex.SID(p[:i], fanout)] = struct{}{}
		}
	}
	// The thesis bounds filters at a page (§4.5 builds on §5.3.1's sizing).
	f := bloom.NewOptimal(len(sids), c.store.PageSize()*8, 8)
	for sid := range sids {
		f.Add(sid)
	}
	page := c.store.AppendLogical((f.Bits() + 7) / 8)
	return &bloomCell{filter: f, page: page, fanout: fanout}
}

// lossyTesterFor assembles the bloom tester for a conjunctive condition.
// The bool result is false when a required cell is absent (no tuple can
// match).
func (c *Cube) lossyTesterFor(cond map[int]int32, ctr *stats.Counters) (signature.Tester, bool) {
	var testers signature.And
	for d, v := range cond {
		cb := c.Cuboid([]int{d})
		if cb == nil {
			return nil, false
		}
		bc, ok := cb.blooms[cb.cellKey([]int32{v})]
		if !ok {
			return nil, false
		}
		testers = append(testers, &loadedBloomCell{cell: bc, buf: pager.NewBuffer(c.store), ctr: ctr})
	}
	if len(testers) == 0 {
		return signature.True{}, true
	}
	return testers, true
}

// lossyVerifier re-checks full tuple paths against the relation (random
// access, charged); internal nodes pass through.
type lossyVerifier struct {
	c    *Cube
	cond map[int]int32
	ctr  *stats.Counters
}

// Test implements signature.Tester.
func (v lossyVerifier) Test(path []int) bool {
	if len(path) < v.c.rt.Height() {
		return true
	}
	tid, ok := v.c.rt.TIDAt(path)
	if !ok {
		return false
	}
	v.ctr.Read(stats.StructTable, 1)
	return v.c.t.Matches(tid, v.cond)
}

// verifyingSearch runs Alg. 3 with a tuple-level re-verification hook: the
// lossy measure may pass non-matching tuples, which are then rejected by a
// charged random access to the relation.
func (c *Cube) verifyingSearch(tester signature.Tester, cond map[int]int32, f ranking.Func, k int, ctr *stats.Counters) []core.Result {
	verify := func(tid table.TID) bool {
		ctr.Read(stats.StructTable, 1)
		return c.t.Matches(tid, cond)
	}
	return searchTopK(c.rt, tester, verify, f, k, ctr)
}
