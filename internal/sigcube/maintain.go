package sigcube

import (
	"rankcube/internal/errs"
	"rankcube/internal/hindex"
	"rankcube/internal/signature"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// pathUpdate is one element of the update set U of Alg. 2: a tuple with its
// old partition path (nil for a fresh insert) and new path (nil for a
// delete).
type pathUpdate struct {
	tid      table.TID
	old, new []int
}

// Insert appends a tuple to the relation, inserts it into the partition
// tree, and incrementally maintains every materialized signature (Alg. 2).
// It returns the new tuple's id. Maintenance I/O is charged to ctr.
func (c *Cube) Insert(sel []int32, rank []float64, ctr *stats.Counters) table.TID {
	mt := c.maintainable()
	tid := c.t.Append(sel, rank)
	affected := mt.Insert(tid, rank)
	defer c.quarantineOnAbort()
	updates := make([]pathUpdate, 0, len(affected))
	for _, a := range affected {
		newPath := c.rt.TuplePath(a)
		oldPath := c.paths[a]
		if a != tid && hindex.PathKey(oldPath) == hindex.PathKey(newPath) {
			continue // split kept this tuple's slot: nothing to flip
		}
		updates = append(updates, pathUpdate{tid: a, old: oldPath, new: newPath})
	}
	c.applyUpdates(updates, ctr)
	return tid
}

// Delete removes a tuple from the partition tree and maintains signatures.
// The relation itself retains the row (tombstoned by absence from the tree),
// matching how the thesis treats deletion as the mirror of insertion.
func (c *Cube) Delete(tid table.TID, ctr *stats.Counters) bool {
	affected, ok := c.maintainable().Delete(tid)
	if !ok {
		return false
	}
	defer c.quarantineOnAbort()
	updates := []pathUpdate{{tid: tid, old: c.paths[tid], new: nil}}
	for _, a := range affected {
		if a == tid {
			continue
		}
		newPath := c.rt.TuplePath(a)
		oldPath := c.paths[a]
		if hindex.PathKey(oldPath) == hindex.PathKey(newPath) {
			continue
		}
		updates = append(updates, pathUpdate{tid: a, old: oldPath, new: newPath})
	}
	c.applyUpdates(updates, ctr)
	return true
}

// applyUpdates routes the update set into each cuboid: group the updates by
// target cell, load that cell's signature, clear old paths and set new ones,
// and write the signature back (Alg. 2 lines 2–8).
func (c *Cube) applyUpdates(updates []pathUpdate, ctr *stats.Counters) {
	// Sync the path map BEFORE touching stored cells: the partition tree has
	// already mutated, and c.paths is what RebuildStore reconstructs the
	// signatures from. With the map synced first, an abort mid-rewrite
	// (storage fault, cancellation) leaves the stored cells torn but the
	// logical state complete — quarantineOnAbort then takes the store out of
	// service until Repair rebuilds it from this map.
	for _, u := range updates {
		if u.new == nil {
			delete(c.paths, u.tid)
		} else {
			c.paths[u.tid] = u.new
		}
	}
	// A root split deepens every path; keep the encoder's height current.
	c.enc.SetHeight(c.rt.Height())
	widthFn := func(prefix []int) int { return c.nodeWidth(prefix) }
	for _, cb := range c.cuboids {
		// Sort updates into cells of this cuboid (Alg. 2 line 3).
		byCell := make(map[uint64][]pathUpdate)
		vals := make([]int32, len(cb.dims))
		for _, u := range updates {
			for j, d := range cb.dims {
				vals[j] = c.t.Sel(u.tid, d)
			}
			k := cb.cellKey(vals)
			byCell[k] = append(byCell[k], u)
		}
		for key, us := range byCell {
			stored := cb.cells[key]
			var sig *signature.Node
			if stored != nil {
				sig = stored.Decode(c.enc.Codec(), c.store, ctr)
			}
			// Two phases: clear every old path first, then set every new
			// one. Interleaving would corrupt the tree when a structural
			// change (e.g. a root split) moves all paths at once.
			for _, u := range us {
				if u.old != nil && sig != nil {
					if sig.Clear(u.old) {
						sig = nil
					}
				}
			}
			for _, u := range us {
				if u.new == nil {
					continue
				}
				if sig == nil {
					sig = signature.Generate(c.rt, [][]int{u.new})
				} else {
					sig.Set(u.new, widthFn, c.rt.Height())
				}
			}
			if sig != nil && !sig.Bits.Any() {
				sig = nil
			}
			cb.cells[key] = c.enc.Encode(sig)
		}
	}
}

// quarantineOnAbort runs deferred inside maintenance once the partition tree
// has mutated: if the maintenance aborts after that point (a storage fault or
// an interruption mid-rewrite), the stored signatures no longer agree with
// the tree, so the store is quarantined — queries degrade to exact baseline
// scans, and Repair rebuilds the signatures from the (complete) maintained
// state. The abort itself keeps propagating to the API boundary.
func (c *Cube) quarantineOnAbort() {
	if r := recover(); r != nil {
		c.store.Requarantine()
		//lint:invariant re-raises the in-flight typed abort after quarantining
		panic(r)
	}
}

// maintainable asserts the partition supports incremental updates (the
// R-tree does; grid hierarchies re-partition periodically instead, §1.3.1).
// A partition without that capability aborts with a typed
// ErrStructureUnavailable, which the public API surfaces as an error.
func (c *Cube) maintainable() hindex.MaintainableTree {
	mt, ok := c.rt.(hindex.MaintainableTree)
	if !ok {
		errs.Abortf(errs.ErrStructureUnavailable,
			"sigcube: partition tree does not support incremental maintenance; rebuild the cube instead")
	}
	return mt
}

// nodeWidth reports the current entry count of the partition node at the
// given path prefix (signature nodes must match index node widths).
func (c *Cube) nodeWidth(prefix []int) int {
	id := c.rt.Root()
	for _, p := range prefix {
		id = c.rt.ChildAt(id, p-1)
	}
	return c.rt.NumChildren(id)
}
