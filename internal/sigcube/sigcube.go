// Package sigcube implements the signature-based ranking cube of thesis
// chapter 4: an R-tree partition of the ranking dimensions whose per-cell
// measure is a compressed signature (internal/signature), built with the
// cubing algorithm (Alg. 1), maintained incrementally under insertions and
// deletions (Alg. 2), and queried with a branch-and-bound search that pushes
// ranking pruning and boolean pruning simultaneously (Alg. 3).
package sigcube

import (
	"fmt"
	"sort"

	"rankcube/internal/core"
	"rankcube/internal/errs"
	"rankcube/internal/guard"
	"rankcube/internal/heap"
	"rankcube/internal/hindex"
	"rankcube/internal/pager"
	"rankcube/internal/ranking"
	"rankcube/internal/rtree"
	"rankcube/internal/signature"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// Config controls cube construction.
type Config struct {
	// PageSize in bytes; defaults to pager.PageSize.
	PageSize int
	// Alpha is the partial-signature fill target; defaults to
	// signature.DefaultAlpha.
	Alpha float64
	// RTree configures the partition tree.
	RTree rtree.Config
	// Cuboids selects which cuboids to materialize (sets of selection
	// dimensions). Nil materializes all atomic cuboids — the ranking-cube
	// always contains those so any boolean predicate can be assembled
	// online (§4.3.3).
	Cuboids [][]int
	// BaselineCoding disables adaptive node compression (fig. 4.10's
	// baseline series).
	BaselineCoding bool
	// LossySignatures replaces exact signatures with per-cell bloom filters
	// over marked SIDs (§4.5); queries re-verify tuples by random access.
	LossySignatures bool
}

func (c Config) pageSize() int {
	if c.PageSize > 0 {
		return c.PageSize
	}
	return pager.PageSize
}

// Cuboid is one materialized signature cuboid. Cells hold either exact
// stored signatures or, under Config.LossySignatures, bloom filters.
type Cuboid struct {
	dims   []int
	cards  []int
	cells  map[uint64]*signature.Stored
	blooms map[uint64]*bloomCell
}

// cellKey packs selection values (aligned with dims) into a mixed radix key.
func (cb *Cuboid) cellKey(vals []int32) uint64 {
	key := uint64(0)
	for i, v := range vals {
		key = key*uint64(cb.cards[i]) + uint64(v)
	}
	return key
}

// Cube is the signature ranking cube.
type Cube struct {
	t       *table.Table
	rt      hindex.PartitionTree
	enc     *signature.Encoder
	store   *pager.Store
	cuboids map[string]*Cuboid
	// paths tracks each tuple's current partition path, the bookkeeping
	// incremental maintenance diffs against.
	paths map[table.TID][]int
	cfg   Config
	// ctl is the serving control block: queries hold it shared, maintenance
	// and repair exclusive.
	ctl *guard.RW
}

// Build runs the cubing algorithm (Alg. 1): partition tuples with an R-tree
// over all ranking dimensions, generate per-tuple paths, then for each cuboid
// sort tuples into cells and generate, compress, decompose, and store each
// cell's signature.
func Build(t *table.Table, cfg Config) *Cube {
	r := t.Schema().R()
	dims := make([]int, r)
	for i := range dims {
		dims[i] = i
	}
	domain := dataDomain(t)
	rt := rtree.Bulk(t, dims, domain, cfg.RTree)
	return buildOn(t, rt, cfg)
}

// BuildOnTree builds the cube over an existing partition tree — the R-tree
// or the merged-grid hierarchy, the two implementations of §4.1.2.
func BuildOnTree(t *table.Table, rt hindex.PartitionTree, cfg Config) *Cube {
	return buildOn(t, rt, cfg)
}

func buildOn(t *table.Table, rt hindex.PartitionTree, cfg Config) *Cube {
	c := &Cube{
		t:       t,
		rt:      rt,
		store:   pager.NewStore(stats.StructSignature, cfg.pageSize()),
		cuboids: make(map[string]*Cuboid),
		paths:   make(map[table.TID][]int, t.Len()),
		cfg:     cfg,
		ctl:     guard.New(),
	}
	c.enc = signature.NewEncoder(rt.MaxFanout(), rt.Height(), c.store, cfg.Alpha)
	c.enc.SetBaselineOnly(cfg.BaselineCoding)

	// Line 2 of Alg. 1: generate paths for all tuples.
	for i := 0; i < t.Len(); i++ {
		tid := table.TID(i)
		c.paths[tid] = rt.TuplePath(tid)
	}

	cuboids := cfg.Cuboids
	if cuboids == nil {
		for d := 0; d < t.Schema().S(); d++ {
			cuboids = append(cuboids, []int{d})
		}
	}
	for _, dims := range cuboids {
		c.buildCuboid(dims)
	}
	return c
}

func dataDomain(t *table.Table) ranking.Box {
	r := t.Schema().R()
	lo := make([]float64, r)
	hi := make([]float64, r)
	for d := 0; d < r; d++ {
		lo[d], hi[d] = t.RankDomain(d)
		if hi[d] <= lo[d] {
			hi[d] = lo[d] + 1
		}
	}
	return ranking.NewBox(lo, hi)
}

func dimsKey(dims []int) string {
	b := make([]byte, 0, len(dims)*2)
	for _, d := range dims {
		b = append(b, byte(d>>8), byte(d))
	}
	return string(b)
}

func (c *Cube) buildCuboid(dims []int) {
	sorted := append([]int(nil), dims...)
	sort.Ints(sorted)
	key := dimsKey(sorted)
	if _, ok := c.cuboids[key]; ok {
		return
	}
	schema := c.t.Schema()
	cb := &Cuboid{dims: sorted, cards: make([]int, len(sorted))}
	for i, d := range sorted {
		cb.cards[i] = schema.SelCard[d]
	}
	// Lines 4–6: sort tuples by the cuboid dimensions (bucketing by cell
	// key) and generate one signature per cell from tuple paths.
	buckets := make(map[uint64][][]int)
	vals := make([]int32, len(sorted))
	for i := 0; i < c.t.Len(); i++ {
		tid := table.TID(i)
		for j, d := range sorted {
			vals[j] = c.t.Sel(tid, d)
		}
		k := cb.cellKey(vals)
		buckets[k] = append(buckets[k], c.paths[tid])
	}
	if c.cfg.LossySignatures {
		cb.blooms = make(map[uint64]*bloomCell, len(buckets))
		for k, paths := range buckets {
			cb.blooms[k] = c.buildBloomCell(paths)
		}
	} else {
		cb.cells = make(map[uint64]*signature.Stored, len(buckets))
		for k, paths := range buckets {
			sig := signature.Generate(c.rt, paths)
			cb.cells[k] = c.enc.Encode(sig)
		}
	}
	c.cuboids[key] = cb
}

// Cuboid returns the cuboid over exactly dims, or nil.
func (c *Cube) Cuboid(dims []int) *Cuboid {
	sorted := append([]int(nil), dims...)
	sort.Ints(sorted)
	return c.cuboids[dimsKey(sorted)]
}

// Tree exposes the partition tree.
func (c *Cube) Tree() hindex.PartitionTree { return c.rt }

// Table exposes the underlying relation.
func (c *Cube) Table() *table.Table { return c.t }

// Store exposes the signature page store (space accounting).
func (c *Cube) Store() *pager.Store { return c.store }

// Ctl returns the cube's serving control block.
func (c *Cube) Ctl() *guard.RW { return c.ctl }

// RebuildStore re-materializes the signature store from the cube's
// maintained state — the quarantine repair path after page corruption. The
// store is reset in place (its identity, fault-injection attachments, and
// lifecycle state survive), a fresh encoder replaces the old one (whose
// partial-page layout referenced the discarded pages), and every cuboid's
// cells are regenerated from the tuple paths incremental maintenance keeps
// current, so inserts and deletes applied since Build are reflected. The
// caller must hold the cube's control exclusively. It returns the number of
// pages the rebuild materialized.
func (c *Cube) RebuildStore() int {
	c.store.Reset()
	c.enc = signature.NewEncoder(c.rt.MaxFanout(), c.rt.Height(), c.store, c.cfg.Alpha)
	c.enc.SetBaselineOnly(c.cfg.BaselineCoding)

	// Deterministic rebuild order: sorted tuple ids within sorted cuboids.
	tids := make([]table.TID, 0, len(c.paths))
	for tid := range c.paths {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(a, b int) bool { return tids[a] < tids[b] })
	keys := make([]string, 0, len(c.cuboids))
	for key := range c.cuboids {
		keys = append(keys, key)
	}
	sort.Strings(keys)

	for _, key := range keys {
		cb := c.cuboids[key]
		buckets := make(map[uint64][][]int)
		vals := make([]int32, len(cb.dims))
		for _, tid := range tids {
			for j, d := range cb.dims {
				vals[j] = c.t.Sel(tid, d)
			}
			k := cb.cellKey(vals)
			buckets[k] = append(buckets[k], c.paths[tid])
		}
		if c.cfg.LossySignatures {
			cb.blooms = make(map[uint64]*bloomCell, len(buckets))
			for k, paths := range buckets {
				cb.blooms[k] = c.buildBloomCell(paths)
			}
		} else {
			cb.cells = make(map[uint64]*signature.Stored, len(buckets))
			for k, paths := range buckets {
				cb.cells[k] = c.enc.Encode(signature.Generate(c.rt, paths))
			}
		}
	}
	return c.store.NumPages()
}

// SizeBytes reports the materialized signature footprint.
func (c *Cube) SizeBytes() int64 { return c.store.Bytes() }

// TesterFor assembles the boolean-pruning tester for a conjunctive
// condition (§4.3.3): the exactly-matching cuboid cell when materialized,
// otherwise the intersection of atomic cuboid cells. The bool result is
// false when some required cell is empty — no tuple can match, so the query
// can return immediately.
func (c *Cube) TesterFor(cond core.Cond, ctr *stats.Counters) (signature.Tester, bool, error) {
	dims := cond.Dims()
	if len(dims) == 0 {
		return signature.True{}, true, nil
	}
	if c.cfg.LossySignatures {
		tester, any := c.lossyTesterFor(cond, ctr)
		return tester, any, nil
	}
	if cb := c.Cuboid(dims); cb != nil {
		vals := make([]int32, len(dims))
		for i, d := range cb.dims {
			vals[i] = cond[d]
		}
		stored, ok := cb.cells[cb.cellKey(vals)]
		if !ok || stored.NumPartials() == 0 {
			return nil, false, nil
		}
		return signature.NewView(stored, c.enc.Codec(), c.store, ctr), true, nil
	}
	var testers signature.And
	for _, d := range dims {
		cb := c.Cuboid([]int{d})
		if cb == nil {
			return nil, false, fmt.Errorf("sigcube: no cuboid covers dimension %d: %w", d, errs.ErrInvalidArgument)
		}
		stored, ok := cb.cells[cb.cellKey([]int32{cond[d]})]
		if !ok || stored.NumPartials() == 0 {
			return nil, false, nil
		}
		testers = append(testers, signature.NewView(stored, c.enc.Codec(), c.store, ctr))
	}
	return testers, true, nil
}

// TopK answers a ranked query with boolean predicates using the
// branch-and-bound framework of Alg. 3.
func (c *Cube) TopK(cond core.Cond, f ranking.Func, k int, ctr *stats.Counters) ([]core.Result, error) {
	endTester := ctr.StartSpan("tester")
	tester, any, err := c.TesterFor(cond, ctr)
	endTester()
	if err != nil {
		return nil, err
	}
	if !any || k <= 0 {
		return nil, nil
	}
	defer ctr.StartSpan("search")()
	if c.cfg.LossySignatures {
		return c.verifyingSearch(tester, cond, f, k, ctr), nil
	}
	return SearchTopK(c.rt, tester, f, k, ctr), nil
}

// SearchTopK is Alg. 3 over any hierarchical index: progressive best-first
// retrieval with ranking pruning (node lower bounds vs. the current kth
// score) and boolean pruning (signature tests on node paths). It is exposed
// package-level so chapter 7's skyline processing and the baselines can
// share it.
func SearchTopK(idx hindex.Index, tester signature.Tester, f ranking.Func, k int, ctr *stats.Counters) []core.Result {
	return searchTopK(idx, tester, nil, f, k, ctr)
}

// searchTopK is SearchTopK with an optional tuple-level verification hook
// (lossy measures re-check candidates against the relation, §4.5).
func searchTopK(idx hindex.Index, tester signature.Tester, verify func(table.TID) bool, f ranking.Func, k int, ctr *stats.Counters) []core.Result {
	if idx.Root() == hindex.InvalidNode || k <= 0 {
		return nil
	}
	acc := hindex.NewAccessor(idx, ctr)
	topk := heap.NewBounded[core.Result](k, core.WorseResult)

	type entry struct {
		score   float64
		isTuple bool
		node    hindex.NodeID
		tid     table.TID
		path    []int
	}
	less := func(a, b entry) bool {
		if a.score != b.score {
			return a.score < b.score
		}
		// Tuples ahead of nodes at equal score so exact results settle the
		// stop condition sooner.
		return a.isTuple && !b.isTuple
	}
	cheap := heap.New[entry](less)
	cheap.Push(entry{score: f.LowerBound(idx.NodeBox(idx.Root())), node: idx.Root()})

	for cheap.Len() > 0 {
		ctr.ObserveHeap(cheap.Len())
		e := cheap.Pop()
		ctr.StatesExamined++
		if topk.Full() && topk.Worst().Score <= e.score {
			break
		}
		if !tester.Test(e.path) {
			ctr.Pruned++
			continue
		}
		if e.isTuple {
			if verify != nil && !verify(e.tid) {
				ctr.Pruned++
				continue
			}
			topk.Offer(core.Result{TID: e.tid, Score: e.score})
			continue
		}
		if idx.IsLeaf(e.node) {
			for slot, le := range acc.LeafEntries(e.node) {
				score := f.Eval(le.Point)
				cheap.Push(entry{
					score:   score,
					isTuple: true,
					tid:     le.TID,
					path:    childPath(e.path, slot),
				})
				ctr.StatesGenerated++
			}
			continue
		}
		for slot, ch := range acc.Children(e.node) {
			cheap.Push(entry{
				score: f.LowerBound(ch.Box),
				node:  ch.ID,
				path:  childPath(e.path, slot),
			})
			ctr.StatesGenerated++
		}
	}
	return topk.Sorted()
}

func childPath(parent []int, slot int) []int {
	out := make([]int, len(parent)+1)
	copy(out, parent)
	out[len(parent)] = slot + 1
	return out
}
