package sigcube

import (
	"math"

	"rankcube/internal/core"
	"rankcube/internal/heap"
	"rankcube/internal/hindex"
	"rankcube/internal/ranking"
	"rankcube/internal/signature"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// Scanner is the rank-aware selection operator of thesis §6.3.1: it
// produces, one at a time and in ascending score order, the tuples matching
// a boolean condition — the progressive source a rank join pulls from.
// Scanners share Alg. 3's branch-and-bound machinery but retain the
// candidate heap across calls.
type Scanner struct {
	idx    hindex.Index
	acc    *hindex.Accessor
	tester signature.Tester
	f      ranking.Func
	ctr    *stats.Counters
	cheap  *heap.Heap[scanEntry]
	done   bool
}

type scanEntry struct {
	score   float64
	isTuple bool
	node    hindex.NodeID
	tid     table.TID
	path    []int
}

func lessScanEntry(a, b scanEntry) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return a.isTuple && !b.isTuple
}

// Scan opens a rank-aware selection over the cube. It returns nil when the
// condition provably matches nothing.
func (c *Cube) Scan(cond core.Cond, f ranking.Func, ctr *stats.Counters) (*Scanner, error) {
	defer ctr.StartSpan("tester")()
	tester, any, err := c.TesterFor(cond, ctr)
	if err != nil {
		return nil, err
	}
	if c.cfg.LossySignatures && any {
		// Bloom testers have tuple-level false positives; the scanner's
		// consumers (rank joins) must only see true matches, so re-verify
		// full paths against the relation (§4.5).
		tester = signature.And{tester, lossyVerifier{c, cond, ctr}}
	}
	s := &Scanner{
		idx:    c.rt,
		tester: tester,
		f:      f,
		ctr:    ctr,
		cheap:  heap.New[scanEntry](lessScanEntry),
	}
	if !any || c.rt.Root() == hindex.InvalidNode {
		s.done = true
		return s, nil
	}
	s.acc = hindex.NewAccessor(c.rt, ctr)
	s.cheap.Push(scanEntry{score: f.LowerBound(c.rt.NodeBox(c.rt.Root())), node: c.rt.Root()})
	return s, nil
}

// Next returns the next matching tuple in ascending score order; ok is
// false when the source is exhausted.
func (s *Scanner) Next() (res core.Result, ok bool) {
	if s.done {
		return core.Result{}, false
	}
	for s.cheap.Len() > 0 {
		s.ctr.ObserveHeap(s.cheap.Len())
		e := s.cheap.Pop()
		s.ctr.StatesExamined++
		if !s.tester.Test(e.path) {
			s.ctr.Pruned++
			continue
		}
		if e.isTuple {
			return core.Result{TID: e.tid, Score: e.score}, true
		}
		if s.idx.IsLeaf(e.node) {
			for slot, le := range s.acc.LeafEntries(e.node) {
				s.cheap.Push(scanEntry{
					score:   s.f.Eval(le.Point),
					isTuple: true,
					tid:     le.TID,
					path:    childPath(e.path, slot),
				})
				s.ctr.StatesGenerated++
			}
			continue
		}
		for slot, ch := range s.acc.Children(e.node) {
			s.cheap.Push(scanEntry{
				score: s.f.LowerBound(ch.Box),
				node:  ch.ID,
				path:  childPath(e.path, slot),
			})
			s.ctr.StatesGenerated++
		}
	}
	s.done = true
	return core.Result{}, false
}

// Bound reports a lower bound on the scores of all tuples not yet emitted
// (+Inf when exhausted). Rank joins use it for their stopping threshold.
func (s *Scanner) Bound() float64 {
	if s.done || s.cheap.Len() == 0 {
		return math.Inf(1)
	}
	return s.cheap.Min().score
}
