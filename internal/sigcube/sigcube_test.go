package sigcube

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"rankcube/internal/core"
	"rankcube/internal/errs"
	"rankcube/internal/gridtree"
	"rankcube/internal/hindex"
	"rankcube/internal/ranking"
	"rankcube/internal/rtree"
	"rankcube/internal/signature"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

func bruteTopK(t *table.Table, cond core.Cond, f ranking.Func, k int, alive func(table.TID) bool) []core.Result {
	var all []core.Result
	buf := make([]float64, t.Schema().R())
	for i := 0; i < t.Len(); i++ {
		tid := table.TID(i)
		if alive != nil && !alive(tid) {
			continue
		}
		if !t.Matches(tid, cond) {
			continue
		}
		score := f.Eval(t.RankRow(tid, buf))
		if math.IsInf(score, 1) {
			continue
		}
		all = append(all, core.Result{TID: tid, Score: score})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Score != all[b].Score {
			return all[a].Score < all[b].Score
		}
		return all[a].TID < all[b].TID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func sameScores(t *testing.T, got, want []core.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			t.Fatalf("result %d: score %v, want %v", i, got[i].Score, want[i].Score)
		}
	}
}

func TestTopKMatchesBruteForce(t *testing.T) {
	tb := table.Generate(table.GenSpec{T: 10000, S: 3, R: 2, Card: 6, Seed: 61})
	cube := Build(tb, Config{RTree: rtree.Config{Fanout: 16}})
	rng := rand.New(rand.NewSource(62))
	funcs := []ranking.Func{
		ranking.Sum(0, 1),
		ranking.Linear([]int{0, 1}, []float64{3, 1}),
		ranking.SqDist([]int{0, 1}, []float64{0.2, 0.9}),
		ranking.General(ranking.Sqr(ranking.Sub(ranking.Var(0), ranking.Sqr(ranking.Var(1))))),
	}
	for trial := 0; trial < 25; trial++ {
		cond := core.Cond{}
		for _, d := range rng.Perm(3)[:1+rng.Intn(2)] {
			cond[d] = int32(rng.Intn(6))
		}
		f := funcs[trial%len(funcs)]
		k := 1 + rng.Intn(20)
		got, err := cube.TopK(cond, f, k, stats.New())
		if err != nil {
			t.Fatal(err)
		}
		sameScores(t, got, bruteTopK(tb, cond, f, k, nil))
	}
}

func TestTopKNoCondition(t *testing.T) {
	tb := table.Generate(table.GenSpec{T: 3000, S: 2, R: 2, Card: 4, Seed: 63})
	cube := Build(tb, Config{RTree: rtree.Config{Fanout: 12}})
	f := ranking.Sum(0, 1)
	got, err := cube.TopK(core.Cond{}, f, 10, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	sameScores(t, got, bruteTopK(tb, core.Cond{}, f, 10, nil))
}

func TestTopKEmptyCell(t *testing.T) {
	tb := table.MustNew(table.Schema{SelNames: []string{"a"}, SelCard: []int{5}, RankNames: []string{"x", "y"}})
	for i := 0; i < 100; i++ {
		tb.Append([]int32{int32(i % 2)}, []float64{float64(i) / 100, 0.5})
	}
	cube := Build(tb, Config{RTree: rtree.Config{Fanout: 8}})
	// Value 4 never occurs: empty-cell fast path.
	got, err := cube.TopK(core.Cond{0: 4}, ranking.Sum(0, 1), 5, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty cell returned %d results", len(got))
	}
}

func TestMaterializedMultiDimCuboid(t *testing.T) {
	tb := table.Generate(table.GenSpec{T: 5000, S: 3, R: 2, Card: 4, Seed: 64})
	cube := Build(tb, Config{
		RTree:   rtree.Config{Fanout: 16},
		Cuboids: [][]int{{0}, {1}, {2}, {0, 1}},
	})
	cond := core.Cond{0: 1, 1: 2}
	f := ranking.Sum(0, 1)
	got, err := cube.TopK(cond, f, 10, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	sameScores(t, got, bruteTopK(tb, cond, f, 10, nil))
	if cube.Cuboid([]int{0, 1}) == nil {
		t.Fatal("multi-dim cuboid not materialized")
	}
}

func TestSignaturePruningReducesIO(t *testing.T) {
	tb := table.Generate(table.GenSpec{T: 20000, S: 1, R: 2, Card: 50, Seed: 65})
	cube := Build(tb, Config{RTree: rtree.Config{Fanout: 32}})
	f := ranking.Sum(0, 1)

	withSig := stats.New()
	if _, err := cube.TopK(core.Cond{0: 7}, f, 10, withSig); err != nil {
		t.Fatal(err)
	}
	// The ranking-first equivalent: same search without boolean pruning,
	// verifying the predicate on tuples only (random-access verification).
	noSig := stats.New()
	res := SearchTopK(cube.Tree(), verifyOnly{tb, cube.Tree(), core.Cond{0: 7}, cube.Tree().Height()}, f, 10, noSig)
	if len(res) == 0 {
		t.Fatal("verification search returned nothing")
	}
	sameScores(t, res, bruteTopK(tb, core.Cond{0: 7}, f, 10, nil))
	if withSig.Reads(stats.StructRTree) >= noSig.Reads(stats.StructRTree) {
		t.Fatalf("signature pruning read %d R-tree blocks, no-pruning search read %d",
			withSig.Reads(stats.StructRTree), noSig.Reads(stats.StructRTree))
	}
}

// verifyOnly is a tester that checks the predicate only at the tuple level
// by probing the relation (the thesis' "Ranking" baseline shape).
type verifyOnly struct {
	t      *table.Table
	rt     hindex.PartitionTree
	cond   core.Cond
	height int
}

func (v verifyOnly) Test(path []int) bool {
	if len(path) < v.height {
		return true
	}
	tid, ok := v.rt.TIDAt(path)
	return ok && v.t.Matches(tid, v.cond)
}

func TestInsertMaintainsSignatures(t *testing.T) {
	tb := table.Generate(table.GenSpec{T: 2000, S: 2, R: 2, Card: 4, Seed: 66})
	cube := Build(tb, Config{RTree: rtree.Config{Fanout: 8}})
	rng := rand.New(rand.NewSource(67))
	for i := 0; i < 300; i++ {
		sel := []int32{int32(rng.Intn(4)), int32(rng.Intn(4))}
		rank := []float64{rng.Float64(), rng.Float64()}
		cube.Insert(sel, rank, stats.New())
	}
	// After inserts, queries must still match brute force on the grown
	// relation.
	f := ranking.Sum(0, 1)
	for v := int32(0); v < 4; v++ {
		got, err := cube.TopK(core.Cond{0: v}, f, 15, stats.New())
		if err != nil {
			t.Fatal(err)
		}
		sameScores(t, got, bruteTopK(cube.Table(), core.Cond{0: v}, f, 15, nil))
	}
}

func TestInsertTriggersRootSplitSafely(t *testing.T) {
	// Tiny fanout forces deep trees and root splits during the insert loop.
	tb := table.MustNew(table.Schema{SelNames: []string{"a"}, SelCard: []int{3}, RankNames: []string{"x", "y"}})
	cube := Build(tb, Config{RTree: rtree.Config{Fanout: 4}})
	rng := rand.New(rand.NewSource(68))
	for i := 0; i < 400; i++ {
		cube.Insert([]int32{int32(rng.Intn(3))}, []float64{rng.Float64(), rng.Float64()}, stats.New())
	}
	f := ranking.SqDist([]int{0, 1}, []float64{0.5, 0.5})
	for v := int32(0); v < 3; v++ {
		got, err := cube.TopK(core.Cond{0: v}, f, 10, stats.New())
		if err != nil {
			t.Fatal(err)
		}
		sameScores(t, got, bruteTopK(cube.Table(), core.Cond{0: v}, f, 10, nil))
	}
}

func TestDeleteMaintainsSignatures(t *testing.T) {
	tb := table.Generate(table.GenSpec{T: 1500, S: 2, R: 2, Card: 3, Seed: 69})
	cube := Build(tb, Config{RTree: rtree.Config{Fanout: 8}})
	deleted := make(map[table.TID]bool)
	rng := rand.New(rand.NewSource(70))
	for i := 0; i < 500; i++ {
		tid := table.TID(rng.Intn(1500))
		if cube.Delete(tid, stats.New()) {
			deleted[tid] = true
		}
	}
	f := ranking.Sum(0, 1)
	alive := func(tid table.TID) bool { return !deleted[tid] }
	for v := int32(0); v < 3; v++ {
		got, err := cube.TopK(core.Cond{1: v}, f, 10, stats.New())
		if err != nil {
			t.Fatal(err)
		}
		sameScores(t, got, bruteTopK(cube.Table(), core.Cond{1: v}, f, 10, alive))
	}
}

func TestBaselineCodingBigger(t *testing.T) {
	tb := table.Generate(table.GenSpec{T: 5000, S: 1, R: 2, Card: 20, Seed: 71})
	adaptive := Build(tb, Config{RTree: rtree.Config{Fanout: 32}})
	baseline := Build(tb, Config{RTree: rtree.Config{Fanout: 32}, BaselineCoding: true})
	if adaptive.SizeBytes() > baseline.SizeBytes() {
		t.Fatalf("adaptive %d bytes > baseline %d bytes", adaptive.SizeBytes(), baseline.SizeBytes())
	}
}

func TestConstrainedFunctionPrunesToInf(t *testing.T) {
	tb := table.Generate(table.GenSpec{T: 3000, S: 1, R: 2, Card: 4, Seed: 72})
	cube := Build(tb, Config{RTree: rtree.Config{Fanout: 16}})
	f := ranking.Constrained(ranking.Sum(0, 1), 1, 0.45, 0.55)
	got, err := cube.TopK(core.Cond{0: 2}, f, 8, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	sameScores(t, got, bruteTopK(tb, core.Cond{0: 2}, f, 8, nil))
	for _, r := range got {
		y := tb.Rank(r.TID, 1)
		if y < 0.45 || y > 0.55 {
			t.Fatalf("result tuple %d outside constraint band (y=%v)", r.TID, y)
		}
	}
}

var _ signature.Tester = verifyOnly{}

func TestLossySignaturesMatchExact(t *testing.T) {
	tb := table.Generate(table.GenSpec{T: 8000, S: 3, R: 2, Card: 6, Seed: 73})
	exact := Build(tb, Config{RTree: rtree.Config{Fanout: 16}})
	lossy := Build(tb, Config{RTree: rtree.Config{Fanout: 16}, LossySignatures: true})
	rng := rand.New(rand.NewSource(74))
	for trial := 0; trial < 15; trial++ {
		cond := core.Cond{rng.Intn(3): int32(rng.Intn(6))}
		f := ranking.Sum(0, 1)
		k := 1 + rng.Intn(15)
		a, err := exact.TopK(cond, f, k, stats.New())
		if err != nil {
			t.Fatal(err)
		}
		b, err := lossy.TopK(cond, f, k, stats.New())
		if err != nil {
			t.Fatal(err)
		}
		sameScores(t, b, a)
	}
}

func TestLossyChargesVerificationIO(t *testing.T) {
	tb := table.Generate(table.GenSpec{T: 8000, S: 1, R: 2, Card: 10, Seed: 75})
	lossy := Build(tb, Config{RTree: rtree.Config{Fanout: 16}, LossySignatures: true})
	ctr := stats.New()
	if _, err := lossy.TopK(core.Cond{0: 3}, ranking.Sum(0, 1), 10, ctr); err != nil {
		t.Fatal(err)
	}
	if ctr.Reads(stats.StructTable) == 0 {
		t.Fatal("lossy query did not charge verification accesses")
	}
}

func TestLossyScannerVerifiesTuples(t *testing.T) {
	tb := table.Generate(table.GenSpec{T: 4000, S: 1, R: 2, Card: 8, Seed: 76})
	lossy := Build(tb, Config{RTree: rtree.Config{Fanout: 16}, LossySignatures: true})
	sc, err := lossy.Scan(core.Cond{0: 3}, ranking.Sum(0, 1), stats.New())
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	prev := -1.0
	for {
		r, ok := sc.Next()
		if !ok {
			break
		}
		if tb.Sel(r.TID, 0) != 3 {
			t.Fatalf("lossy scanner emitted non-matching tuple %d", r.TID)
		}
		if r.Score < prev {
			t.Fatal("scanner out of order")
		}
		prev = r.Score
		count++
	}
	want := 0
	for i := 0; i < tb.Len(); i++ {
		if tb.Sel(table.TID(i), 0) == 3 {
			want++
		}
	}
	if count != want {
		t.Fatalf("scanner yielded %d tuples, want %d", count, want)
	}
}

// TestMaintainOnGridPartitionAborts: grid partitions re-partition instead
// of maintaining incrementally (§1.3.1), so Insert on a grid-backed cube
// must fail with a typed ErrStructureUnavailable abort — which governed
// public callers convert into an error — never an untyped crash.
func TestMaintainOnGridPartitionAborts(t *testing.T) {
	tb := table.Generate(table.GenSpec{T: 1000, S: 2, R: 2, Card: 4, Seed: 9})
	grid := gridtree.Build(tb, []int{0, 1}, ranking.UnitBox(2), gridtree.Config{BlockSize: 100})
	cube := BuildOnTree(tb, grid, Config{})
	defer func() {
		err, ok := errs.IsAbort(recover())
		if !ok {
			t.Fatal("Insert on a grid partition did not abort")
		}
		if !errors.Is(err, errs.ErrStructureUnavailable) {
			t.Fatalf("abort err = %v, want ErrStructureUnavailable", err)
		}
	}()
	cube.Insert([]int32{0, 0}, []float64{0.5, 0.5}, stats.New())
	t.Fatal("unreachable: Insert returned")
}
