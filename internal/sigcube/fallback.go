package sigcube

import (
	"math"

	"rankcube/internal/core"
	"rankcube/internal/heap"
	"rankcube/internal/ranking"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// Alive reports whether tid currently belongs to the partition. Deleted
// tuples keep their relation row (tombstoned by absence from the tree), so
// fallback scans must consult this rather than the raw relation.
func (c *Cube) Alive(tid table.TID) bool {
	_, ok := c.paths[tid]
	return ok
}

// ScanTopK answers a top-k query with a full sequential scan of the base
// relation — the exact-answer fallback used when signatures or the
// partition tree fault mid-search. It touches none of the cube's stores
// (which may be quarantined) and charges one sequential pass over the
// relation's pages.
func (c *Cube) ScanTopK(cond core.Cond, f ranking.Func, k int, ctr *stats.Counters) []core.Result {
	if k <= 0 {
		return nil
	}
	defer ctr.StartSpan("scan")()
	rowBytes := c.t.RowBytes()
	pages := (c.t.Len()*rowBytes + c.cfg.pageSize() - 1) / c.cfg.pageSize()
	ctr.Read(stats.StructTable, int64(pages))

	topk := heap.NewBounded[core.Result](k, core.WorseResult)
	buf := make([]float64, c.t.Schema().R())
	for i := 0; i < c.t.Len(); i++ {
		tid := table.TID(i)
		if !c.Alive(tid) || !c.t.Matches(tid, cond) {
			continue
		}
		score := f.Eval(c.t.RankRow(tid, buf))
		if math.IsInf(score, 1) {
			continue
		}
		topk.Offer(core.Result{TID: tid, Score: score})
	}
	return topk.Sorted()
}
