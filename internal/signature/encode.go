package signature

import (
	"sort"

	"rankcube/internal/bitvec"
	"rankcube/internal/errs"
	"rankcube/internal/hindex"
	"rankcube/internal/pager"
	"rankcube/internal/stats"
)

// DefaultAlpha is the target fill ratio α of partial signatures relative to
// the page size (§4.2.3: "we control the size of each partial signature
// around αP (α < 1)").
const DefaultAlpha = 0.75

// partialRef locates one stored partial signature.
type partialRef struct {
	path []int
	page pager.PageID
}

// Stored is one cell's signature in compressed, decomposed form: a set of
// partial signatures, each a BFS-encoded subtree referenced by the SID of
// the subtree's root (§4.2.3).
type Stored struct {
	height int
	fanout int
	// refs maps ref SIDs to partials; iteration helpers keep ancestor order.
	refs map[uint64]partialRef
}

// Encoder writes cell signatures into a shared page store.
type Encoder struct {
	codec  *bitvec.Codec
	store  *pager.Store
	height int
	fanout int
	// targetBits is the αP cut-off per partial, in bits.
	targetBits int
	// baselineOnly disables adaptive node compression (the "Baseline"
	// series of fig. 4.10).
	baselineOnly bool
}

// SetBaselineOnly toggles baseline-only node coding.
func (e *Encoder) SetBaselineOnly(v bool) { e.baselineOnly = v }

// SetHeight updates the partition height recorded into future encodings;
// incremental maintenance calls it after tree growth (a root split deepens
// every tuple path).
func (e *Encoder) SetHeight(h int) { e.height = h }

// NewEncoder returns an encoder for signatures over an index of the given
// fanout and height, decomposing at alpha×pageSize bytes (alpha ≤ 0 selects
// DefaultAlpha).
func NewEncoder(fanout, height int, store *pager.Store, alpha float64) *Encoder {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultAlpha
	}
	return &Encoder{
		codec:      bitvec.NewCodec(fanout),
		store:      store,
		height:     height,
		fanout:     fanout,
		targetBits: int(alpha * float64(store.PageSize()) * 8),
	}
}

// Codec exposes the node codec (shared with views).
func (e *Encoder) Codec() *bitvec.Codec { return e.codec }

// bfsItem pairs a signature node with its path.
type bfsItem struct {
	path []int
	n    *Node
}

// Encode compresses and decomposes sig, appending pages to the encoder's
// store. A nil signature encodes to an empty Stored (every Test is false).
func (e *Encoder) Encode(sig *Node) *Stored {
	st := &Stored{height: e.height, fanout: e.fanout, refs: make(map[uint64]partialRef)}
	if sig == nil {
		return st
	}
	coded := make(map[*Node]bool)

	var rec func(path []int, n *Node)
	rec = func(path []int, n *Node) {
		var w bitvec.Writer
		// Partial header: ref path then a node-count placeholder patched at
		// the end (count is written into a fixed 32-bit field).
		w.WriteBits(uint64(len(path)), 8)
		for _, p := range path {
			w.WriteBits(uint64(p), 16)
		}
		countPos := w.Len()
		w.WriteBits(0, 32)

		count := 0
		queue := []bfsItem{{path: path, n: n}}
		var remaining []bfsItem
		for qi := 0; qi < len(queue); qi++ {
			item := queue[qi]
			if !coded[item.n] {
				if count > 0 && w.Len()-countPos > e.targetBits {
					// Cut: everything from here on belongs to descendant
					// partials.
					remaining = queue[qi:]
					break
				}
				if e.baselineOnly {
					e.codec.EncodeBaseline(&w, item.n.Bits)
				} else {
					e.codec.Encode(&w, item.n.Bits)
				}
				coded[item.n] = true
				count++
			}
			if item.n.Kids == nil {
				continue
			}
			for i, kid := range item.n.Kids {
				if kid == nil {
					continue
				}
				kidPath := append(append([]int(nil), item.path...), i+1)
				queue = append(queue, bfsItem{path: kidPath, n: kid})
			}
		}
		patchCount(w.Bytes(), countPos, uint32(count))
		page := e.store.Append(append([]byte(nil), w.Bytes()...))
		st.refs[hindex.SID(path, e.fanout)] = partialRef{
			path: append([]int(nil), path...),
			page: page,
		}

		if len(remaining) == 0 {
			return
		}
		// Recurse into the children of this partial's root that still hold
		// uncoded nodes, in slot order (§4.2.3).
		depth := len(path)
		pending := make(map[int]bool)
		for _, item := range remaining {
			if !coded[item.n] {
				pending[item.path[depth]] = true
			}
		}
		slots := make([]int, 0, len(pending))
		for p := range pending {
			slots = append(slots, p)
		}
		sort.Ints(slots)
		for _, p := range slots {
			kid := n.Kids[p-1]
			if kid != nil && hasUncoded(kid, coded) {
				rec(append(append([]int(nil), path...), p), kid)
			}
		}
	}
	rec(nil, sig)
	return st
}

func hasUncoded(n *Node, coded map[*Node]bool) bool {
	if !coded[n] {
		return true
	}
	for _, k := range n.Kids {
		if k != nil && hasUncoded(k, coded) {
			return true
		}
	}
	return false
}

// patchCount rewrites the 32-bit count field at bit offset pos in buf.
func patchCount(buf []byte, pos int, v uint32) {
	for i := 0; i < 32; i++ {
		bit := pos + i
		if v&(1<<uint(i)) != 0 {
			buf[bit/8] |= 1 << (uint(bit) % 8)
		} else {
			buf[bit/8] &^= 1 << (uint(bit) % 8)
		}
	}
}

// NumPartials reports how many partial signatures the cell decomposed into.
func (s *Stored) NumPartials() int { return len(s.refs) }

// View is a per-query lazy decoder over a stored signature: partial
// signatures are loaded (and charged as block reads) only when the query
// requests a node they encode (§4.2.3).
type View struct {
	stored *Stored
	codec  *bitvec.Codec
	buf    *pager.Buffer
	ctr    *stats.Counters
	nodes  map[string]*bitvec.Bits
	loaded map[uint64]bool
}

// NewView opens a view charging signature loads to ctr.
func NewView(s *Stored, codec *bitvec.Codec, store *pager.Store, ctr *stats.Counters) *View {
	return &View{
		stored: s,
		codec:  codec,
		buf:    pager.NewBuffer(store),
		ctr:    ctr,
		nodes:  make(map[string]*bitvec.Bits),
		loaded: make(map[uint64]bool),
	}
}

// Test reports the signature bit for the node/tuple at path, loading the
// partial signatures on the path as needed.
func (v *View) Test(path []int) bool {
	if len(v.stored.refs) == 0 {
		return false
	}
	if len(path) == 0 {
		return true // a non-empty stored signature has a non-empty root
	}
	parent := path[:len(path)-1]
	bits := v.node(parent)
	if bits == nil {
		return false
	}
	pos := path[len(path)-1] - 1
	return pos < bits.Len() && bits.Get(pos)
}

// node resolves the decoded bits of the signature node at path, loading
// ancestor-referenced partials in root-to-leaf order.
func (v *View) node(path []int) *bitvec.Bits {
	for {
		if bits, ok := v.nodes[hindex.PathKey(path)]; ok {
			return bits
		}
		loadedOne := false
		for i := 0; i <= len(path); i++ {
			sid := hindex.SID(path[:i], v.stored.fanout)
			ref, exists := v.stored.refs[sid]
			if !exists || v.loaded[sid] {
				continue
			}
			v.loadPartial(ref)
			v.loaded[sid] = true
			loadedOne = true
			break
		}
		if !loadedOne {
			return nil
		}
	}
}

// loadPartial decodes one partial signature into the view's node map,
// replaying the encoder's BFS with already-known nodes skipped.
func (v *View) loadPartial(ref partialRef) {
	data := v.buf.Read(ref.page, v.ctr)
	r := bitvec.NewReader(data)
	plen := int(r.ReadBits(8))
	path := make([]int, plen)
	for i := range path {
		path[i] = int(r.ReadBits(16))
	}
	count := int(r.ReadBits(32))

	type qitem struct{ path []int }
	queue := []qitem{{path: path}}
	decoded := 0
	for qi := 0; qi < len(queue) && decoded < count; qi++ {
		item := queue[qi]
		key := hindex.PathKey(item.path)
		bits, known := v.nodes[key]
		if !known {
			bits = v.codec.Decode(r)
			v.nodes[key] = bits
			decoded++
		}
		if len(item.path) >= leafDepth(v.stored.height) {
			continue
		}
		for i := 0; i < bits.Len(); i++ {
			if !bits.Get(i) {
				continue
			}
			kidPath := append(append([]int(nil), item.path...), i+1)
			queue = append(queue, qitem{path: kidPath})
		}
	}
	if decoded != count {
		// The node count came from the partial's on-page header: a mismatch
		// means the stored bytes are corrupt.
		errs.Abortf(errs.ErrPageCorrupt, "signature: partial %v decoded %d nodes, header says %d",
			ref.path, decoded, count)
	}
}

// Decode fully decodes a stored signature (used by incremental maintenance,
// which rewrites whole cells). Charges reads to ctr.
func (s *Stored) Decode(codec *bitvec.Codec, store *pager.Store, ctr *stats.Counters) *Node {
	if len(s.refs) == 0 {
		return nil
	}
	v := NewView(s, codec, store, ctr)
	// Load every partial, ancestors first.
	refs := make([]partialRef, 0, len(s.refs))
	for _, ref := range s.refs {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(a, b int) bool {
		if len(refs[a].path) != len(refs[b].path) {
			return len(refs[a].path) < len(refs[b].path)
		}
		return lexLess(refs[a].path, refs[b].path)
	})
	for _, ref := range refs {
		sid := hindex.SID(ref.path, s.fanout)
		if !v.loaded[sid] {
			v.loadPartial(ref)
			v.loaded[sid] = true
		}
	}
	// Rebuild the tree from the flat node map.
	var build func(path []int) *Node
	build = func(path []int) *Node {
		bits := v.nodes[hindex.PathKey(path)]
		if bits == nil {
			return nil
		}
		n := &Node{Bits: bits.Clone()}
		if len(path) >= leafDepth(s.height) {
			return n
		}
		n.Kids = make([]*Node, bits.Len())
		for i := 0; i < bits.Len(); i++ {
			if bits.Get(i) {
				n.Kids[i] = build(append(append([]int(nil), path...), i+1))
			}
		}
		return n
	}
	return build(nil)
}

// EncodedBytes reports the total encoded size of the cell across partials.
func (s *Stored) EncodedBytes(store *pager.Store) int64 {
	var total int64
	for _, ref := range s.refs {
		//lint:ungoverned size accounting inspects stored bytes without simulating a read
		total += int64(len(store.ReadRaw(ref.page)))
	}
	return total
}
