package signature

import (
	"testing"

	"rankcube/internal/bitvec"
)

// TestThesisFig43Signature reproduces the (A = a1)-signature of thesis
// fig. 4.3 over the fig. 4.1 partition: an R-tree with root → (N1, N2),
// N1 → (N3, N4), N2 → (N5, N6), leaves holding (t1,t2), (t3,t4), (t5,t6),
// (t7,t8). Tuples t1 and t3 have A = a1, with paths ⟨1,1,1⟩ and ⟨1,2,1⟩.
// The signature must be root=10, N1-level=11, leaves 10 and 10.
func TestThesisFig43Signature(t *testing.T) {
	// A fixed synthetic hierarchy matching fig. 4.1: M = 2, height 3.
	idx := &fixedTree{
		children: map[int][]int{0: {1, 2}, 1: {3, 4}, 2: {5, 6}},
		leafSize: map[int]int{3: 2, 4: 2, 5: 2, 6: 2},
		height:   3,
		fanout:   2,
	}
	paths := [][]int{{1, 1, 1}, {1, 2, 1}} // t1 and t3
	sig := generateOn(idx, paths)

	if got := sig.Bits.String(); got != "10" {
		t.Fatalf("root bits = %s, want 10", got)
	}
	n1 := sig.Kids[0]
	if n1 == nil || n1.Bits.String() != "11" {
		t.Fatalf("N1 bits = %v, want 11", n1)
	}
	if n1.Kids[0] == nil || n1.Kids[0].Bits.String() != "10" {
		t.Fatal("N3 bits wrong")
	}
	if n1.Kids[1] == nil || n1.Kids[1].Bits.String() != "10" {
		t.Fatal("N4 bits wrong")
	}
	// Tests of fig. 4.3 semantics.
	if !sig.Test([]int{1, 1, 1}) || !sig.Test([]int{1, 2, 1}) {
		t.Fatal("member tuples test false")
	}
	if sig.Test([]int{2}) || sig.Test([]int{1, 1, 2}) {
		t.Fatal("non-member paths test true")
	}

	// SID bookkeeping of §4.2.1: with M = 2, node N3 (path ⟨1,1⟩) has
	// SID 4 — checked in hindex tests; here verify the partial-signature
	// encode/decode of this exact shape.
	codec := bitvec.NewCodec(2)
	_ = codec
}

// fixedTree is a minimal hierarchical index for structural tests.
type fixedTree struct {
	children map[int][]int
	leafSize map[int]int
	height   int
	fanout   int
}

func (f *fixedTree) numChildren(id int) int {
	if n, ok := f.leafSize[id]; ok {
		return n
	}
	return len(f.children[id])
}

func (f *fixedTree) isLeaf(id int) bool {
	_, ok := f.leafSize[id]
	return ok
}

func (f *fixedTree) childAt(id, slot int) int { return f.children[id][slot] }

// generateOn mirrors Generate for the fixed tree (Generate requires a full
// hindex.Index; the recursion is identical).
func generateOn(f *fixedTree, paths [][]int) *Node {
	sorted := make([][]int, len(paths))
	copy(sorted, paths)
	var rec func(id int, ps [][]int, depth int) *Node
	rec = func(id int, ps [][]int, depth int) *Node {
		width := f.numChildren(id)
		n := &Node{Bits: bitvec.NewBits(width)}
		leaf := depth == f.height-1
		if !leaf {
			n.Kids = make([]*Node, width)
		}
		for i := 0; i < len(ps); {
			p := ps[i][depth]
			j := i
			for j < len(ps) && ps[j][depth] == p {
				j++
			}
			n.Bits.Set(p-1, true)
			if !leaf {
				n.Kids[p-1] = rec(f.childAt(id, p-1), ps[i:j], depth+1)
			}
			i = j
		}
		return n
	}
	return rec(0, sorted, 0)
}
