package signature

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rankcube/internal/pager"
	"rankcube/internal/ranking"
	"rankcube/internal/rtree"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// TestQuickMembershipEquivalence: for random membership sets, the generated
// signature (and its encode/decode image under random page sizes) must
// answer Test exactly like set membership for every tuple.
func TestQuickMembershipEquivalence(t *testing.T) {
	prop := func(seed int64, densityRaw, pageRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 300 + int(densityRaw)*4
		tb := table.Generate(table.GenSpec{T: n, S: 1, R: 2, Card: 2, Seed: seed})
		rt := rtree.Bulk(tb, []int{0, 1}, ranking.UnitBox(2), rtree.Config{Fanout: 8})

		density := 0.05 + float64(densityRaw%100)/150
		members := map[table.TID]bool{}
		var paths [][]int
		for i := 0; i < n; i++ {
			if rng.Float64() < density {
				tid := table.TID(i)
				members[tid] = true
				paths = append(paths, rt.TuplePath(tid))
			}
		}
		sig := Generate(rt, paths)
		if len(paths) == 0 {
			return sig == nil
		}

		pageSize := 64 << (pageRaw % 6) // 64B … 2KB forces varied decomposition
		store := pager.NewStore(stats.StructSignature, pageSize)
		enc := NewEncoder(rt.MaxFanout(), rt.Height(), store, 0)
		stored := enc.Encode(sig)
		view := NewView(stored, enc.Codec(), store, stats.New())

		for i := 0; i < n; i++ {
			tid := table.TID(i)
			p := rt.TuplePath(tid)
			if sig.Test(p) != members[tid] {
				return false
			}
			if view.Test(p) != members[tid] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUnionIntersectAlgebra: union and intersection must behave as set
// algebra at the tuple level for random member sets.
func TestQuickUnionIntersectAlgebra(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 400
		tb := table.Generate(table.GenSpec{T: n, S: 1, R: 2, Card: 2, Seed: seed})
		rt := rtree.Bulk(tb, []int{0, 1}, ranking.UnitBox(2), rtree.Config{Fanout: 8})

		setA := map[table.TID]bool{}
		setB := map[table.TID]bool{}
		var pathsA, pathsB [][]int
		for i := 0; i < n; i++ {
			tid := table.TID(i)
			if rng.Float64() < 0.3 {
				setA[tid] = true
				pathsA = append(pathsA, rt.TuplePath(tid))
			}
			if rng.Float64() < 0.3 {
				setB[tid] = true
				pathsB = append(pathsB, rt.TuplePath(tid))
			}
		}
		a := Generate(rt, pathsA)
		b := Generate(rt, pathsB)
		u := Union(a, b)
		x := Intersect(a, b)
		for i := 0; i < n; i++ {
			tid := table.TID(i)
			p := rt.TuplePath(tid)
			if u.Test(p) != (setA[tid] || setB[tid]) {
				return false
			}
			got := false
			if x != nil {
				got = x.Test(p)
			}
			if got != (setA[tid] && setB[tid]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
