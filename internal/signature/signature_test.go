package signature

import (
	"math/rand"
	"sort"
	"testing"

	"rankcube/internal/hindex"
	"rankcube/internal/pager"
	"rankcube/internal/ranking"
	"rankcube/internal/rtree"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// fixture builds an R-tree over synthetic data and returns the tuple paths
// of a pseudo-random subset (simulating one cell's tuples).
func fixture(t *testing.T, n int, pick func(table.TID) bool) (*rtree.Tree, [][]int, map[string]bool) {
	t.Helper()
	tb := table.Generate(table.GenSpec{T: n, S: 1, R: 2, Card: 4, Seed: 51})
	rt := rtree.Bulk(tb, []int{0, 1}, ranking.UnitBox(2), rtree.Config{Fanout: 8})
	var paths [][]int
	want := make(map[string]bool)
	for i := 0; i < n; i++ {
		tid := table.TID(i)
		if pick(tid) {
			p := rt.TuplePath(tid)
			paths = append(paths, p)
			want[hindex.PathKey(p)] = true
		}
	}
	return rt, paths, want
}

func TestGenerateAndTest(t *testing.T) {
	rt, paths, want := fixture(t, 500, func(tid table.TID) bool { return tid%3 == 0 })
	sig := Generate(rt, paths)
	if sig == nil {
		t.Fatal("nil signature")
	}
	// Every member path tests true, along with all its prefixes.
	for _, p := range paths {
		for l := 1; l <= len(p); l++ {
			if !sig.Test(p[:l]) {
				t.Fatalf("member path prefix %v tests false", p[:l])
			}
		}
	}
	// Non-member tuple paths test false.
	for i := 0; i < 500; i++ {
		tid := table.TID(i)
		if tid%3 == 0 {
			continue
		}
		if sig.Test(rt.TuplePath(tid)) {
			t.Fatalf("non-member tuple %d tests true", tid)
		}
	}
	// Tuples() returns exactly the member paths.
	got := sig.Tuples(rt.Height())
	if len(got) != len(want) {
		t.Fatalf("Tuples = %d paths, want %d", len(got), len(want))
	}
	for _, p := range got {
		if !want[hindex.PathKey(p)] {
			t.Fatalf("unexpected tuple path %v", p)
		}
	}
}

func TestGenerateEmpty(t *testing.T) {
	rt, _, _ := fixture(t, 50, func(table.TID) bool { return false })
	if sig := Generate(rt, nil); sig != nil {
		t.Fatal("empty path set produced a signature")
	}
	_ = rt
}

func TestUnionIntersect(t *testing.T) {
	rt, pathsA, _ := fixture(t, 400, func(tid table.TID) bool { return tid%2 == 0 })
	_, pathsB, _ := fixture(t, 400, func(tid table.TID) bool { return tid%3 == 0 })
	a := Generate(rt, pathsA)
	b := Generate(rt, pathsB)

	u := Union(a, b)
	for i := 0; i < 400; i++ {
		tid := table.TID(i)
		p := rt.TuplePath(tid)
		wantU := tid%2 == 0 || tid%3 == 0
		if u.Test(p) != wantU {
			t.Fatalf("union tuple %d = %v, want %v", tid, u.Test(p), wantU)
		}
	}

	x := Intersect(a, b)
	for i := 0; i < 400; i++ {
		tid := table.TID(i)
		p := rt.TuplePath(tid)
		wantX := tid%6 == 0
		got := x.Test(p)
		if got != wantX {
			t.Fatalf("intersect tuple %d = %v, want %v", tid, got, wantX)
		}
	}
	// Intersection prunes empty subtrees bottom-up: every set internal bit
	// must lead to at least one tuple.
	if x != nil {
		if got := len(x.Tuples(rt.Height())); got != countMultiples(400, 6) {
			t.Fatalf("intersection tuples = %d, want %d", got, countMultiples(400, 6))
		}
	}
}

func countMultiples(n, k int) int { return (n + k - 1) / k } // ceil(n/k) counts 0,k,2k,... below n

func TestIntersectDisjointIsNil(t *testing.T) {
	rt, pathsA, _ := fixture(t, 100, func(tid table.TID) bool { return tid < 10 })
	_, pathsB, _ := fixture(t, 100, func(tid table.TID) bool { return tid >= 90 })
	a := Generate(rt, pathsA)
	b := Generate(rt, pathsB)
	if x := Intersect(a, b); x != nil {
		if len(x.Tuples(rt.Height())) != 0 {
			t.Fatal("disjoint intersection non-empty")
		}
	}
}

func TestSetClearRoundtrip(t *testing.T) {
	rt, paths, _ := fixture(t, 300, func(tid table.TID) bool { return tid%5 == 0 })
	sig := Generate(rt, paths)
	width := func(prefix []int) int {
		id := rt.Root()
		for _, p := range prefix {
			id = rt.ChildAt(id, p-1)
		}
		return rt.NumChildren(id)
	}
	// Add a previously absent tuple.
	extra := rt.TuplePath(7)
	if sig.Test(extra) {
		t.Fatal("tuple 7 unexpectedly present")
	}
	sig.Set(extra, width, rt.Height())
	if !sig.Test(extra) {
		t.Fatal("Set did not register path")
	}
	// Remove it again; tree returns to exactly the original membership.
	sig.Clear(extra)
	if sig.Test(extra) {
		t.Fatal("Clear left path set")
	}
	for _, p := range paths {
		if !sig.Test(p) {
			t.Fatalf("Clear damaged unrelated path %v", p)
		}
	}
}

func TestClearCascades(t *testing.T) {
	rt, _, _ := fixture(t, 200, func(tid table.TID) bool { return tid == 42 })
	p := rt.TuplePath(42)
	sig := Generate(rt, [][]int{p})
	if !sig.Clear(p) {
		t.Fatal("clearing the only tuple did not empty the root")
	}
	// All prefixes must now test false.
	for l := 1; l <= len(p); l++ {
		if sig.Test(p[:l]) {
			t.Fatalf("prefix %v still set after cascade clear", p[:l])
		}
	}
}

func encodeFixture(t *testing.T, n int, pick func(table.TID) bool, pageSize int) (*rtree.Tree, *Node, *Stored, *Encoder, *pager.Store) {
	t.Helper()
	rt, paths, _ := fixture(t, n, pick)
	sig := Generate(rt, paths)
	store := pager.NewStore(stats.StructSignature, pageSize)
	enc := NewEncoder(rt.MaxFanout(), rt.Height(), store, 0)
	stored := enc.Encode(sig)
	return rt, sig, stored, enc, store
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	rt, sig, stored, enc, store := encodeFixture(t, 600, func(tid table.TID) bool { return tid%2 == 0 }, 4096)
	got := stored.Decode(enc.Codec(), store, stats.New())
	wantPaths := sig.Tuples(rt.Height())
	gotPaths := got.Tuples(rt.Height())
	if len(wantPaths) != len(gotPaths) {
		t.Fatalf("decoded %d tuples, want %d", len(gotPaths), len(wantPaths))
	}
	sortPaths(wantPaths)
	sortPaths(gotPaths)
	for i := range wantPaths {
		if hindex.PathKey(wantPaths[i]) != hindex.PathKey(gotPaths[i]) {
			t.Fatalf("path %d: %v != %v", i, gotPaths[i], wantPaths[i])
		}
	}
}

func TestDecompositionProducesMultiplePartials(t *testing.T) {
	// A tiny page size forces decomposition into several partials.
	_, _, stored, _, _ := encodeFixture(t, 3000, func(tid table.TID) bool { return true }, 64)
	if stored.NumPartials() < 3 {
		t.Fatalf("NumPartials = %d, want several with 64-byte pages", stored.NumPartials())
	}
}

func TestViewMatchesTree(t *testing.T) {
	rt, sig, stored, enc, store := encodeFixture(t, 800, func(tid table.TID) bool { return tid%7 == 0 }, 128)
	view := NewView(stored, enc.Codec(), store, stats.New())
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 500; trial++ {
		tid := table.TID(rng.Intn(800))
		p := rt.TuplePath(tid)
		l := 1 + rng.Intn(len(p))
		if view.Test(p[:l]) != sig.Test(p[:l]) {
			t.Fatalf("view.Test(%v) = %v, tree says %v", p[:l], view.Test(p[:l]), sig.Test(p[:l]))
		}
	}
}

func TestViewLoadsLazily(t *testing.T) {
	rt, _, stored, enc, store := encodeFixture(t, 3000, func(tid table.TID) bool { return true }, 64)
	ctr := stats.New()
	view := NewView(stored, enc.Codec(), store, ctr)
	// Testing one shallow path should load far fewer partials than exist.
	view.Test(rt.TuplePath(0)[:1])
	if got, total := ctr.Reads(stats.StructSignature), int64(stored.NumPartials()); got >= total {
		t.Fatalf("lazy view read %d of %d partials", got, total)
	}
}

func TestTesterCombinators(t *testing.T) {
	rt, pathsA, _ := fixture(t, 300, func(tid table.TID) bool { return tid%2 == 0 })
	_, pathsB, _ := fixture(t, 300, func(tid table.TID) bool { return tid%3 == 0 })
	a := Generate(rt, pathsA)
	b := Generate(rt, pathsB)
	and := And{a, b}
	or := Or{a, b}
	not := Not{T: a, Height: rt.Height()}
	for i := 0; i < 300; i++ {
		tid := table.TID(i)
		p := rt.TuplePath(tid)
		if and.Test(p) != (tid%2 == 0 && tid%3 == 0) {
			t.Fatalf("And tuple %d wrong", tid)
		}
		if or.Test(p) != (tid%2 == 0 || tid%3 == 0) {
			t.Fatalf("Or tuple %d wrong", tid)
		}
		if not.Test(p) != (tid%2 != 0) {
			t.Fatalf("Not tuple %d wrong", tid)
		}
	}
	if !(True{}).Test([]int{1, 2, 3}) {
		t.Fatal("True tester failed")
	}
	// Not passes internal nodes (sound overapproximation).
	if !not.Test([]int{1}) {
		t.Fatal("Not pruned an internal node")
	}
}

func TestEncodeNilSignature(t *testing.T) {
	store := pager.NewStore(stats.StructSignature, 4096)
	enc := NewEncoder(16, 3, store, 0)
	stored := enc.Encode(nil)
	if stored.NumPartials() != 0 {
		t.Fatalf("nil signature stored %d partials", stored.NumPartials())
	}
	view := NewView(stored, enc.Codec(), store, stats.New())
	if view.Test([]int{1}) {
		t.Fatal("empty stored signature tests true")
	}
}

func TestBaselineOnlyLarger(t *testing.T) {
	rt, paths, _ := fixture(t, 2000, func(tid table.TID) bool { return tid%11 == 0 }) // sparse cell

	sig := Generate(rt, paths)
	storeA := pager.NewStore(stats.StructSignature, 4096)
	encA := NewEncoder(rt.MaxFanout(), rt.Height(), storeA, 0)
	a := encA.Encode(sig)
	storeB := pager.NewStore(stats.StructSignature, 4096)
	encB := NewEncoder(rt.MaxFanout(), rt.Height(), storeB, 0)
	encB.SetBaselineOnly(true)
	b := encB.Encode(sig)
	if a.EncodedBytes(storeA) > b.EncodedBytes(storeB) {
		t.Fatalf("adaptive %d bytes > baseline %d bytes", a.EncodedBytes(storeA), b.EncodedBytes(storeB))
	}
}

func sortPaths(ps [][]int) {
	sort.Slice(ps, func(a, b int) bool { return lexLess(ps[a], ps[b]) })
}
