package signature

// Tester answers boolean-pruning probes during query processing: does the
// node/tuple at this partition path contain (or constitute) a tuple
// satisfying the boolean predicate?
type Tester interface {
	Test(path []int) bool
}

// True is the no-predicate tester: everything passes.
type True struct{}

// Test implements Tester.
func (True) Test([]int) bool { return true }

// And is the online conjunction assembly of §4.3.3: at internal nodes the
// slot-wise AND of member signatures is a sound overapproximation (a subtree
// may satisfy each predicate through different tuples); at the tuple level
// it is exact, which preserves query correctness.
type And []Tester

// Test implements Tester.
func (a And) Test(path []int) bool {
	for _, t := range a {
		if !t.Test(path) {
			return false
		}
	}
	return true
}

// Or is the online disjunction assembly of §4.3.3 (exact at every level).
type Or []Tester

// Test implements Tester.
func (o Or) Test(path []int) bool {
	for _, t := range o {
		if t.Test(path) {
			return true
		}
	}
	return false
}

// Not complements a tester at the tuple level. At internal nodes a
// complement cannot be derived from the member signature alone (a subtree
// can contain both matching and non-matching tuples), so Not passes all
// internal nodes and is exact only on full tuple paths of the given height.
type Not struct {
	T      Tester
	Height int
}

// Test implements Tester.
func (n Not) Test(path []int) bool {
	if len(path) < n.Height {
		return true
	}
	return !n.T.Test(path)
}

var (
	_ Tester = True{}
	_ Tester = And(nil)
	_ Tester = Or(nil)
	_ Tester = Not{}
	_ Tester = (*View)(nil)
	_ Tester = (*Node)(nil)
)
