package governor

import (
	"context"
	"errors"
	"testing"

	"rankcube/internal/errs"
	"rankcube/internal/stats"
)

func abortOf(t *testing.T, fn func()) error {
	t.Helper()
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				var ok bool
				if err, ok = errs.IsAbort(r); !ok {
					panic(r)
				}
			}
		}()
		fn()
	}()
	return err
}

func TestUnlimitedGovernorIsSilent(t *testing.T) {
	g := New(nil, Limits{})
	if err := abortOf(t, func() {
		for i := 0; i < 1000; i++ {
			g.OnRead(stats.StructTable, 10)
			g.OnHeap(1 << 20)
			g.OnCheckpoint()
		}
	}); err != nil {
		t.Fatalf("unexpected abort: %v", err)
	}
	if g.Blocks() != 10000 {
		t.Fatalf("blocks = %d, want 10000", g.Blocks())
	}
}

func TestBlockBudgetTrips(t *testing.T) {
	g := New(context.Background(), Limits{MaxBlockReads: 5})
	err := abortOf(t, func() {
		g.OnRead(stats.StructCube, 3)
		g.OnRead(stats.StructCube, 3) // 6 > 5
	})
	if !errors.Is(err, errs.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestHeapBudgetTrips(t *testing.T) {
	g := New(context.Background(), Limits{MaxCandidates: 100})
	if err := abortOf(t, func() { g.OnHeap(100) }); err != nil {
		t.Fatalf("at the limit should pass, got %v", err)
	}
	err := abortOf(t, func() { g.OnHeap(101) })
	if !errors.Is(err, errs.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestCancellationAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, Limits{})
	if err := abortOf(t, func() { g.OnRead(stats.StructTable, 1) }); err != nil {
		t.Fatalf("live context aborted: %v", err)
	}
	cancel()
	for name, fn := range map[string]func(){
		"OnRead":       func() { g.OnRead(stats.StructTable, 1) },
		"OnHeap":       func() { g.OnHeap(1) },
		"OnCheckpoint": g.OnCheckpoint,
	} {
		err := abortOf(t, fn)
		if !errors.Is(err, errs.ErrCanceled) {
			t.Errorf("%s: err = %v, want ErrCanceled", name, err)
		}
		// The concrete context cause stays reachable for callers that
		// distinguish cancellation from deadline expiry.
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v does not unwrap to context.Canceled", name, err)
		}
	}
}

func TestCancellationBeatsBudget(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := New(ctx, Limits{MaxBlockReads: 1})
	err := abortOf(t, func() { g.OnRead(stats.StructTable, 100) })
	if !errors.Is(err, errs.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled to win over the budget", err)
	}
}
