// Package governor enforces per-query execution limits: context
// cancellation, a block-read budget, and a candidate-buffer budget. A
// Governor is attached to the query's stats.Counters, so every structure
// that charges block reads through the pager — grid cuboids, base block
// tables, B+-trees, R-trees, signatures — is governed at block-access
// granularity without threading an extra parameter through the engines.
// Cancellation latency is therefore bounded in pages, not tuples.
//
// A tripped limit unwinds the query with a typed abort (internal/errs);
// the public API boundary converts it into ErrCanceled or
// ErrBudgetExceeded. Counters record each read before the governor is
// consulted, so partial statistics survive the abort intact.
package governor

import (
	"context"

	"rankcube/internal/errs"
	"rankcube/internal/stats"
)

// Limits are the per-query resource budgets. Zero values mean unlimited.
type Limits struct {
	// MaxBlockReads caps total simulated block reads across all storage
	// structures touched by the query.
	MaxBlockReads int64
	// MaxCandidates caps the combined candidate-buffer (search heap)
	// occupancy observed at any point of the query.
	MaxCandidates int
}

// Governor watches one query's execution. It is not safe for concurrent
// use; each query owns one governor, matching stats.Counters' contract.
type Governor struct {
	//lint:ctxfield per-query carrier: one governor serves exactly one query, so the stash cannot outlive its caller's ctx
	ctx    context.Context
	lim    Limits
	blocks int64
}

// New returns a governor enforcing ctx and lim. A nil ctx means
// context.Background() (cancellation never fires).
func New(ctx context.Context, lim Limits) *Governor {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Governor{ctx: ctx, lim: lim}
}

// Blocks reports the block reads charged so far.
func (g *Governor) Blocks() int64 { return g.blocks }

// OnRead implements stats.Governor: it accumulates block reads and aborts
// on cancellation or a tripped read budget.
func (g *Governor) OnRead(_ stats.Structure, n int64) {
	g.blocks += n
	g.checkCtx()
	if g.lim.MaxBlockReads > 0 && g.blocks > g.lim.MaxBlockReads {
		errs.Abortf(errs.ErrBudgetExceeded, "governor: %d block reads over limit %d",
			g.blocks, g.lim.MaxBlockReads)
	}
}

// OnHeap implements stats.Governor: it aborts when the candidate buffer
// outgrows its budget, and piggybacks a cancellation check so engines
// whose loop iterations hit only buffered pages still stop promptly.
func (g *Governor) OnHeap(size int) {
	g.checkCtx()
	if g.lim.MaxCandidates > 0 && size > g.lim.MaxCandidates {
		errs.Abortf(errs.ErrBudgetExceeded, "governor: %d candidate entries over limit %d",
			size, g.lim.MaxCandidates)
	}
}

// OnCheckpoint implements stats.Governor: a pure cancellation check for
// engine loops that neither read blocks nor grow heaps.
func (g *Governor) OnCheckpoint() { g.checkCtx() }

func (g *Governor) checkCtx() {
	if err := g.ctx.Err(); err != nil {
		errs.Abort(&canceledError{cause: err})
	}
}

// canceledError wraps the context error so callers can match either
// errs.ErrCanceled or the underlying context.Canceled/DeadlineExceeded.
type canceledError struct{ cause error }

func (e *canceledError) Error() string { return errs.ErrCanceled.Error() + ": " + e.cause.Error() }

func (e *canceledError) Unwrap() []error { return []error{errs.ErrCanceled, e.cause} }
