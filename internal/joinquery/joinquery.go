// Package joinquery implements chapter 6 of the thesis: SPJR (select,
// project, join, rank) queries over multiple relations, each carrying its
// own ranking cube. The system follows the chapter's architecture (fig.
// 6.1): a query optimizer chooses per-relation access paths and a pull
// schedule, and a query executor combines rank-aware selection operators
// (§6.3.1) through a multi-way rank join (§6.3.2) with join-key list
// pruning (§6.3.3).
//
// The source text of chapter 6 is summarized rather than fully reproduced
// in our copy of the thesis; the executor follows the chapter's stated
// design — per-relation ranking cubes producing score-ordered streams,
// merged with a threshold-bounded rank join — with the standard HRJN-style
// threshold for the stop condition.
package joinquery

import (
	"fmt"
	"math"

	"rankcube/internal/core"
	"rankcube/internal/errs"
	"rankcube/internal/heap"
	"rankcube/internal/ranking"
	"rankcube/internal/sigcube"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// Relation is one participant of an SPJR query: a base relation, its
// ranking cube, and a join-key column (equality joins on a shared key
// domain).
type Relation struct {
	Name string
	T    *table.Table
	Cube *sigcube.Cube
	// Keys[tid] is the join attribute value of tuple tid.
	Keys []int32
	// KeyCard is the join-key domain size.
	KeyCard int

	// keyPresent marks join-key values that occur at all — the basis of
	// list pruning (§6.3.3).
	keyPresent []bool
}

// NewRelation wraps a relation, building its key-presence filter.
func NewRelation(name string, t *table.Table, cube *sigcube.Cube, keys []int32, keyCard int) *Relation {
	if len(keys) != t.Len() {
		//lint:invariant documented precondition: one join key per tuple
		panic(fmt.Sprintf("joinquery: %d keys for %d tuples", len(keys), t.Len()))
	}
	r := &Relation{Name: name, T: t, Cube: cube, Keys: keys, KeyCard: keyCard,
		keyPresent: make([]bool, keyCard)}
	for _, k := range keys {
		r.keyPresent[k] = true
	}
	return r
}

// Part is one relation's role in a query: its boolean condition and its
// component of the ranking function (evaluated over its own ranking
// dimensions). The total score of a join result is the sum of the parts,
// keeping the combined function monotone in the per-relation scores as
// rank-join requires.
type Part struct {
	Rel  *Relation
	Cond core.Cond
	F    ranking.Func
}

// Query is a multi-relational top-k query (§6.1.1).
type Query struct {
	Parts []Part
	K     int
}

// Result is one joined answer: the member tuple of each relation plus the
// combined score.
type Result struct {
	TIDs  []table.TID
	Score float64
}

func worseJoined(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	for i := range a.TIDs {
		if a.TIDs[i] != b.TIDs[i] {
			return a.TIDs[i] > b.TIDs[i]
		}
	}
	return false
}

// Options tunes execution.
type Options struct {
	// DisableListPruning turns off join-key pruning (ablation).
	DisableListPruning bool
	// ScanThreshold is the estimated matching-tuple count below which the
	// optimizer prefers materializing a relation's matches outright over a
	// progressive cube scan (§6.2.1). Default 64.
	ScanThreshold int
}

func (o Options) scanThreshold() int {
	if o.ScanThreshold > 0 {
		return o.ScanThreshold
	}
	return 64
}

// Execute runs the query: the optimizer plans per-relation access
// (§6.2.1-6.2.2), the executor pulls from the rank-aware selections and
// joins with a threshold stop condition (§6.3.2).
func Execute(q Query, opts Options, ctr *stats.Counters) ([]Result, error) {
	if len(q.Parts) < 2 {
		return nil, fmt.Errorf("joinquery: need at least 2 relations, got %d: %w", len(q.Parts), errs.ErrInvalidArgument)
	}
	if q.K <= 0 {
		return nil, nil
	}
	exec := &executor{q: q, opts: opts, ctr: ctr}
	endPlan := ctr.StartSpan("plan")
	err := exec.open()
	endPlan()
	if err != nil {
		return nil, err
	}
	defer ctr.StartSpan("rank-join")()
	return exec.run()
}

// source is a planned per-relation input stream: score-ascending matching
// tuples with a lower bound for the unseen remainder.
type source interface {
	Next() (core.Result, bool)
	Bound() float64
}

// cubeSource adapts sigcube.Scanner.
type cubeSource struct{ s *sigcube.Scanner }

func (c cubeSource) Next() (core.Result, bool) { return c.s.Next() }
func (c cubeSource) Bound() float64            { return c.s.Bound() }

// materializedSource holds pre-computed matches sorted ascending — the
// optimizer's choice for highly selective conditions (§6.2.1).
type materializedSource struct {
	items []core.Result
	pos   int
}

func (m *materializedSource) Next() (core.Result, bool) {
	if m.pos >= len(m.items) {
		return core.Result{}, false
	}
	r := m.items[m.pos]
	m.pos++
	return r, true
}

func (m *materializedSource) Bound() float64 {
	if m.pos >= len(m.items) {
		return math.Inf(1)
	}
	return m.items[m.pos].Score
}

type executor struct {
	q    Query
	opts Options
	ctr  *stats.Counters

	sources []source
	// seen[i] maps join key → tuples of relation i pulled so far.
	seen []map[int32][]core.Result
	// first[i] is relation i's best score; last[i] the score of the most
	// recent pull (both drive the HRJN threshold).
	first, last []float64
	exhausted   []bool
	topk        *heap.Bounded[Result]
	// seenCount totals buffered tuples across all seen tables — the rank
	// join's candidate buffer, reported through ObserveHeap so the peak
	// metric and the governor's candidate budget cover joins too.
	seenCount int
	// keyAllowed[i][key]: list pruning — keys that can possibly join across
	// all relations (§6.3.3).
	keyAllowed []bool
}

// open plans each relation (optimizer) and prepares join state.
func (e *executor) open() error {
	n := len(e.q.Parts)
	e.sources = make([]source, n)
	e.seen = make([]map[int32][]core.Result, n)
	e.first = make([]float64, n)
	e.last = make([]float64, n)
	e.exhausted = make([]bool, n)
	e.topk = heap.NewBounded[Result](e.q.K, worseJoined)

	// List pruning: a join key is viable only when present in every
	// relation (§6.3.3). Keys use a shared domain.
	keyCard := e.q.Parts[0].Rel.KeyCard
	e.keyAllowed = make([]bool, keyCard)
	for k := 0; k < keyCard; k++ {
		ok := true
		for _, p := range e.q.Parts {
			if k >= p.Rel.KeyCard || !p.Rel.keyPresent[k] {
				ok = false
				break
			}
		}
		e.keyAllowed[k] = ok
	}

	for i, p := range e.q.Parts {
		src, err := e.plan(p)
		if err != nil {
			return err
		}
		e.sources[i] = src
		e.seen[i] = make(map[int32][]core.Result)
		e.first[i] = math.NaN()
		e.last[i] = math.Inf(-1)
	}
	return nil
}

// plan implements the single-relation optimizer (§6.2.1): estimate the
// matching cardinality from dimension selectivities; a highly selective
// condition is answered by materializing and sorting its matches (via the
// boolean path), everything else by a progressive cube scan.
func (e *executor) plan(p Part) (source, error) {
	t := p.Rel.T
	est := float64(t.Len())
	for d := range p.Cond {
		est /= float64(t.Schema().SelCard[d])
	}
	if int(est) <= e.opts.scanThreshold() {
		items := materialize(t, p, e.ctr)
		return &materializedSource{items: items}, nil
	}
	sc, err := p.Rel.Cube.Scan(p.Cond, p.F, e.ctr)
	if err != nil {
		return nil, err
	}
	return cubeSource{s: sc}, nil
}

// materialize scans the relation for matches and sorts them (charged as a
// sequential pass over the relation's pages).
func materialize(t *table.Table, p Part, ctr *stats.Counters) []core.Result {
	rowBytes := t.RowBytes()
	pages := (t.Len()*rowBytes + 4095) / 4096
	ctr.Read(stats.StructTable, int64(pages))
	var items []core.Result
	buf := make([]float64, t.Schema().R())
	for i := 0; i < t.Len(); i++ {
		tid := table.TID(i)
		if !t.Matches(tid, p.Cond) {
			continue
		}
		score := p.F.Eval(t.RankRow(tid, buf))
		if math.IsInf(score, 1) {
			continue
		}
		items = append(items, core.Result{TID: tid, Score: score})
	}
	h := heap.New[core.Result](func(a, b core.Result) bool {
		if a.Score != b.Score {
			return a.Score < b.Score
		}
		return a.TID < b.TID
	})
	for _, it := range items {
		h.Push(it)
	}
	out := items[:0]
	for h.Len() > 0 {
		out = append(out, h.Pop())
	}
	return out
}

// run is the multi-way rank join (§6.3.2): pull adaptively from the source
// whose threshold term is loosest, probe the other relations' seen tables
// for join combinations, and stop when the kth combined score is at most
// the threshold bound on all unseen combinations.
func (e *executor) run() ([]Result, error) {
	n := len(e.sources)
	for {
		// A pull from a materialized source costs no block read, so give
		// the governor an explicit abort point each iteration.
		e.ctr.Checkpoint()
		// Threshold: any unseen combination uses an unseen tuple from some
		// relation i, so its score is at least bound_i + Σ_{j≠i} first_j.
		if e.topk.Full() && e.topk.Worst().Score <= e.threshold() {
			break
		}
		// Pick the relation whose unseen bound currently dominates the
		// threshold (HRJN*-style adaptive pulling).
		pick := -1
		best := math.Inf(1)
		for i := 0; i < n; i++ {
			if e.exhausted[i] {
				continue
			}
			term := e.comboBound(i)
			if term < best {
				best, pick = term, i
			}
		}
		if pick < 0 {
			break // all sources exhausted
		}
		r, ok := e.sources[pick].Next()
		if !ok {
			e.exhausted[pick] = true
			continue
		}
		if math.IsNaN(e.first[pick]) {
			e.first[pick] = r.Score
		}
		e.last[pick] = r.Score

		key := e.q.Parts[pick].Rel.Keys[r.TID]
		if !e.opts.DisableListPruning && !e.keyAllowed[key] {
			e.ctr.Pruned++
			continue
		}
		e.seen[pick][key] = append(e.seen[pick][key], r)
		e.seenCount++
		e.ctr.ObserveHeap(e.seenCount)
		e.probe(pick, key, r)
	}
	return e.topk.Sorted(), nil
}

// comboBound is the lower bound of combinations completed by relation i's
// next unseen tuple.
func (e *executor) comboBound(i int) float64 {
	b := e.sources[i].Bound()
	if math.IsInf(b, 1) {
		return b
	}
	for j := range e.sources {
		if j == i {
			continue
		}
		f := e.first[j]
		if math.IsNaN(f) {
			f = 0 // nothing pulled yet: scores are bounded below by 0 for
			// the thesis' distance/linear-positive components; kept sound
			// by pulling every source at least once before stopping.
		}
		b += f
	}
	return b
}

// threshold is the minimum comboBound over live sources; unseen
// combinations cannot beat it.
func (e *executor) threshold() float64 {
	t := math.Inf(1)
	allStarted := true
	for i := range e.sources {
		if math.IsNaN(e.first[i]) && !e.exhausted[i] {
			allStarted = false
		}
	}
	if !allStarted {
		return math.Inf(-1) // cannot stop before every source contributed
	}
	for i := range e.sources {
		if e.exhausted[i] {
			continue
		}
		if b := e.comboBound(i); b < t {
			t = b
		}
	}
	return t
}

// probe joins a freshly pulled tuple with all seen combinations of the
// other relations sharing its key.
func (e *executor) probe(origin int, key int32, r core.Result) {
	n := len(e.sources)
	combo := make([]core.Result, n)
	combo[origin] = r
	var rec func(i int, score float64)
	rec = func(i int, score float64) {
		if i == n {
			tids := make([]table.TID, n)
			for j, c := range combo {
				tids[j] = c.TID
			}
			e.topk.Offer(Result{TIDs: tids, Score: score})
			return
		}
		if i == origin {
			rec(i+1, score)
			return
		}
		for _, c := range e.seen[i][key] {
			combo[i] = c
			rec(i+1, score+c.Score)
		}
	}
	rec(0, r.Score)
}
