package joinquery

import (
	"fmt"
	"math"

	"rankcube/internal/core"
	"rankcube/internal/errs"
	"rankcube/internal/heap"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// BruteForce answers q exactly with full sequential scans and an in-memory
// hash join on the key column — the degradation target when a member
// relation's ranking cube faults mid-join. It touches no cube structure:
// every relation is scanned once (charged as sequential table reads),
// matches are bucketed by join key, and the per-key cross products feed a
// bounded top-k heap. Costly next to a converging rank join, but always
// available and always exact.
func BruteForce(q Query, ctr *stats.Counters) ([]Result, error) {
	if len(q.Parts) < 2 {
		return nil, fmt.Errorf("joinquery: need at least 2 relations, got %d: %w", len(q.Parts), errs.ErrInvalidArgument)
	}
	if q.K <= 0 {
		return nil, nil
	}
	buckets := make([]map[int32][]core.Result, len(q.Parts))
	for i, p := range q.Parts {
		t := p.Rel.T
		rowBytes := t.RowBytes()
		pages := (t.Len()*rowBytes + 4095) / 4096
		ctr.Read(stats.StructTable, int64(pages))
		buckets[i] = make(map[int32][]core.Result)
		buf := make([]float64, t.Schema().R())
		for j := 0; j < t.Len(); j++ {
			tid := table.TID(j)
			if !p.Rel.Cube.Alive(tid) || !t.Matches(tid, p.Cond) {
				continue
			}
			score := p.F.Eval(t.RankRow(tid, buf))
			if math.IsInf(score, 1) {
				continue
			}
			key := p.Rel.Keys[tid]
			buckets[i][key] = append(buckets[i][key], core.Result{TID: tid, Score: score})
		}
	}

	topk := heap.NewBounded[Result](q.K, worseJoined)
	combo := make([]core.Result, len(q.Parts))
	var rec func(i int, key int32, score float64)
	rec = func(i int, key int32, score float64) {
		if i == len(q.Parts) {
			tids := make([]table.TID, len(combo))
			for j, c := range combo {
				tids[j] = c.TID
			}
			topk.Offer(Result{TIDs: tids, Score: score})
			return
		}
		for _, c := range buckets[i][key] {
			combo[i] = c
			rec(i+1, key, score+c.Score)
		}
	}
	for key := range buckets[0] {
		rec(0, key, 0)
	}
	return topk.Sorted(), nil
}
