package joinquery

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"rankcube/internal/core"
	"rankcube/internal/ranking"
	"rankcube/internal/rtree"
	"rankcube/internal/sigcube"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// makeRelation builds a synthetic relation with a join-key column.
func makeRelation(t *testing.T, name string, n, keyCard int, seed int64) *Relation {
	t.Helper()
	tb := table.Generate(table.GenSpec{T: n, S: 2, R: 2, Card: 4, Seed: seed})
	cube := sigcube.Build(tb, sigcube.Config{RTree: rtree.Config{Fanout: 16}})
	rng := rand.New(rand.NewSource(seed + 1000))
	keys := make([]int32, n)
	for i := range keys {
		keys[i] = int32(rng.Intn(keyCard))
	}
	return NewRelation(name, tb, cube, keys, keyCard)
}

// bruteJoin computes the reference top-k by full enumeration.
func bruteJoin(q Query) []Result {
	var all []Result
	var rec func(i int, tids []table.TID, key int32, score float64)
	rec = func(i int, tids []table.TID, key int32, score float64) {
		if i == len(q.Parts) {
			all = append(all, Result{TIDs: append([]table.TID(nil), tids...), Score: score})
			return
		}
		p := q.Parts[i]
		buf := make([]float64, p.Rel.T.Schema().R())
		for tid := 0; tid < p.Rel.T.Len(); tid++ {
			tt := table.TID(tid)
			if !p.Rel.T.Matches(tt, p.Cond) {
				continue
			}
			if i > 0 && p.Rel.Keys[tt] != key {
				continue
			}
			s := p.F.Eval(p.Rel.T.RankRow(tt, buf))
			if math.IsInf(s, 1) {
				continue
			}
			rec(i+1, append(tids, tt), p.Rel.Keys[tt], score+s)
		}
	}
	rec(0, nil, 0, 0)
	sort.Slice(all, func(a, b int) bool {
		if all[a].Score != all[b].Score {
			return all[a].Score < all[b].Score
		}
		return less(all[a].TIDs, all[b].TIDs)
	})
	if len(all) > q.K {
		all = all[:q.K]
	}
	return all
}

func less(a, b []table.TID) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func sameJoin(t *testing.T, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			t.Fatalf("result %d: score %v, want %v", i, got[i].Score, want[i].Score)
		}
	}
}

func TestTwoWayJoinMatchesBrute(t *testing.T) {
	r1 := makeRelation(t, "R1", 800, 20, 131)
	r2 := makeRelation(t, "R2", 600, 20, 132)
	rng := rand.New(rand.NewSource(133))
	for trial := 0; trial < 8; trial++ {
		q := Query{
			Parts: []Part{
				{Rel: r1, Cond: core.Cond{0: int32(rng.Intn(4))}, F: ranking.Sum(0, 1)},
				{Rel: r2, Cond: core.Cond{1: int32(rng.Intn(4))}, F: ranking.SqDist([]int{0, 1}, []float64{0.5, 0.5})},
			},
			K: 1 + rng.Intn(10),
		}
		got, err := Execute(q, Options{}, stats.New())
		if err != nil {
			t.Fatal(err)
		}
		sameJoin(t, got, bruteJoin(q))
	}
}

func TestTwoWayJoinNoConditions(t *testing.T) {
	r1 := makeRelation(t, "R1", 500, 10, 134)
	r2 := makeRelation(t, "R2", 500, 10, 135)
	q := Query{
		Parts: []Part{
			{Rel: r1, Cond: core.Cond{}, F: ranking.Sum(0, 1)},
			{Rel: r2, Cond: core.Cond{}, F: ranking.Sum(0, 1)},
		},
		K: 5,
	}
	got, err := Execute(q, Options{}, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	sameJoin(t, got, bruteJoin(q))
}

func TestThreeWayJoinMatchesBrute(t *testing.T) {
	r1 := makeRelation(t, "R1", 200, 8, 136)
	r2 := makeRelation(t, "R2", 200, 8, 137)
	r3 := makeRelation(t, "R3", 200, 8, 138)
	q := Query{
		Parts: []Part{
			{Rel: r1, Cond: core.Cond{0: 1}, F: ranking.Sum(0, 1)},
			{Rel: r2, Cond: core.Cond{}, F: ranking.Sum(0, 1)},
			{Rel: r3, Cond: core.Cond{1: 2}, F: ranking.Sum(0, 1)},
		},
		K: 8,
	}
	got, err := Execute(q, Options{}, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	sameJoin(t, got, bruteJoin(q))
}

func TestSelectiveConditionUsesMaterializedPlan(t *testing.T) {
	// Card 4 on 2 dims: conditioning both dims of a 400-tuple relation
	// estimates 25 matches < threshold 64 → materialized source.
	r1 := makeRelation(t, "R1", 400, 8, 139)
	r2 := makeRelation(t, "R2", 400, 8, 140)
	q := Query{
		Parts: []Part{
			{Rel: r1, Cond: core.Cond{0: 1, 1: 1}, F: ranking.Sum(0, 1)},
			{Rel: r2, Cond: core.Cond{}, F: ranking.Sum(0, 1)},
		},
		K: 5,
	}
	ctr := stats.New()
	got, err := Execute(q, Options{}, ctr)
	if err != nil {
		t.Fatal(err)
	}
	sameJoin(t, got, bruteJoin(q))
	if ctr.Reads(stats.StructTable) == 0 {
		t.Fatal("materialized plan did not charge a table scan")
	}
}

func TestListPruningDropsDeadKeys(t *testing.T) {
	// r1 keys span [0,20); r2 keys only [0,5): pulls from r1 with keys ≥ 5
	// must be pruned.
	tb1 := table.Generate(table.GenSpec{T: 600, S: 1, R: 2, Card: 3, Seed: 141})
	tb2 := table.Generate(table.GenSpec{T: 600, S: 1, R: 2, Card: 3, Seed: 142})
	c1 := sigcube.Build(tb1, sigcube.Config{RTree: rtree.Config{Fanout: 16}})
	c2 := sigcube.Build(tb2, sigcube.Config{RTree: rtree.Config{Fanout: 16}})
	rng := rand.New(rand.NewSource(143))
	k1 := make([]int32, 600)
	k2 := make([]int32, 600)
	for i := range k1 {
		k1[i] = int32(rng.Intn(20))
		k2[i] = int32(rng.Intn(5))
	}
	r1 := NewRelation("R1", tb1, c1, k1, 20)
	r2 := NewRelation("R2", tb2, c2, k2, 20)
	q := Query{
		Parts: []Part{
			{Rel: r1, Cond: core.Cond{}, F: ranking.Sum(0, 1)},
			{Rel: r2, Cond: core.Cond{}, F: ranking.Sum(0, 1)},
		},
		K: 10,
	}
	withPruning := stats.New()
	a, err := Execute(q, Options{}, withPruning)
	if err != nil {
		t.Fatal(err)
	}
	without := stats.New()
	b, err := Execute(q, Options{DisableListPruning: true}, without)
	if err != nil {
		t.Fatal(err)
	}
	sameJoin(t, a, b)
	sameJoin(t, a, bruteJoin(q))
	if withPruning.Pruned == 0 {
		t.Fatal("list pruning never fired")
	}
}

func TestEmptyJoin(t *testing.T) {
	r1 := makeRelation(t, "R1", 100, 4, 144)
	r2 := makeRelation(t, "R2", 100, 4, 145)
	// Impossible condition value.
	q := Query{
		Parts: []Part{
			{Rel: r1, Cond: core.Cond{0: 3}, F: ranking.Sum(0, 1)},
			{Rel: r2, Cond: core.Cond{}, F: ranking.Sum(0, 1)},
		},
		K: 5,
	}
	// Restrict r1's keys so nothing matches r2: use disjoint key spaces by
	// brute-check only — here simply verify agreement with brute force.
	got, err := Execute(q, Options{}, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	sameJoin(t, got, bruteJoin(q))
}

func TestSingleRelationRejected(t *testing.T) {
	r1 := makeRelation(t, "R1", 50, 4, 146)
	_, err := Execute(Query{Parts: []Part{{Rel: r1, F: ranking.Sum(0, 1)}}, K: 3}, Options{}, stats.New())
	if err == nil {
		t.Fatal("single-relation query accepted")
	}
}
