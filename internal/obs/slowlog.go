package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SlowEntry is one offending query kept by the slow-query log.
type SlowEntry struct {
	// Seq is the admission sequence number (process-wide, 1-based).
	Seq int64
	// At is the wall-clock time the query finished.
	At time.Time
	// Kind is the query kind ("sig.topk", "join.topk", …).
	Kind string
	// Dur is the query's total wall time.
	Dur time.Duration
	// Outcome classifies how the query ended.
	Outcome Outcome
	// Err is the error text for non-ok outcomes ("" otherwise).
	Err string
	// Tree is the rendered span tree of the query's execution trace.
	Tree string
}

// SlowLog is a threshold-gated ring buffer of slow-query records. The
// zero threshold disables logging. All methods are safe for concurrent
// use.
type SlowLog struct {
	threshold atomic.Int64 // nanoseconds; 0 = disabled
	seq       atomic.Int64

	mu   sync.Mutex
	ring []SlowEntry
	next int
	n    int
}

// NewSlowLog returns a disabled slow-query log keeping the most recent
// capacity entries (minimum 1).
func NewSlowLog(capacity int) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowLog{ring: make([]SlowEntry, capacity)}
}

// defaultSlowLog is the process-wide instance the API boundary feeds.
var defaultSlowLog = NewSlowLog(64)

// DefaultSlowLog returns the process-wide slow-query log.
func DefaultSlowLog() *SlowLog { return defaultSlowLog }

// SetThreshold arms the log: queries at or above d are recorded. Zero
// (or negative) disarms it.
func (l *SlowLog) SetThreshold(d time.Duration) {
	if d < 0 {
		d = 0
	}
	l.threshold.Store(int64(d))
}

// Threshold reports the current threshold (0 = disabled).
func (l *SlowLog) Threshold() time.Duration {
	return time.Duration(l.threshold.Load())
}

// Record unconditionally admits e (the caller applies the threshold —
// per-query overrides may differ from the log's own). The entry's Seq is
// assigned here.
func (l *SlowLog) Record(e SlowEntry) {
	e.Seq = l.seq.Add(1)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ring[l.next] = e
	l.next = (l.next + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
}

// Len reports how many entries are currently retained.
func (l *SlowLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Total reports how many entries were ever admitted (including ones the
// ring has since evicted).
func (l *SlowLog) Total() int64 { return l.seq.Load() }

// Entries returns the retained entries, oldest first.
func (l *SlowLog) Entries() []SlowEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, 0, l.n)
	start := l.next - l.n
	if start < 0 {
		start += len(l.ring)
	}
	for i := 0; i < l.n; i++ {
		out = append(out, l.ring[(start+i)%len(l.ring)])
	}
	return out
}

// Reset drops all retained entries (threshold unchanged).
func (l *SlowLog) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.n = 0
	l.next = 0
}

// WriteText dumps the retained entries, oldest first, each with its span
// tree.
func (l *SlowLog) WriteText(w io.Writer) {
	entries := l.Entries()
	if len(entries) == 0 {
		fmt.Fprintln(w, "slow-query log: empty")
		return
	}
	for _, e := range entries {
		fmt.Fprintf(w, "#%d %s %s %s outcome=%s", e.Seq, e.At.Format(time.RFC3339), e.Kind, e.Dur.Round(time.Microsecond), e.Outcome)
		if e.Err != "" {
			fmt.Fprintf(w, " err=%q", e.Err)
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, e.Tree)
	}
}
