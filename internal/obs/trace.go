// Package obs is the query observability layer: per-query execution
// traces (span trees), a process-wide metrics registry, and a slow-query
// log.
//
// The ranking-cube methodology's central claim is I/O economy — block
// accesses saved by progressive cuboid-guided search — so the unit of
// observability here is the governed block read. A Trace attaches to a
// query's stats.Counters as its Observer and attributes every read,
// retry, heap observation, and downgrade to the innermost open span; the
// per-span read totals therefore sum exactly to the counters' total. The
// Registry aggregates across queries with atomic counters, gauges, and
// bounded log2-bucket latency histograms, published via expvar and a
// plain-text HTTP endpoint. The SlowLog keeps the rendered span trees of
// queries that exceeded a threshold in a bounded ring.
//
// Everything here is pull-based and allocation-light: with no trace
// attached a query pays only the registry's handful of atomic adds.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"rankcube/internal/stats"
)

// Span is one node of a query's execution trace: a named phase with wall
// time and the execution events attributed while it was the innermost
// open span. Reads are attributed exclusively (a parent does not repeat
// its children's reads), so summing Reads over the whole tree yields the
// query's total block reads.
type Span struct {
	// Name labels the phase ("search", "tester", "fallback", …).
	Name string
	// Dur is the span's wall-clock time, including children.
	Dur time.Duration
	// Reads counts governed block reads per storage structure attributed
	// to this span (exclusive of children).
	Reads map[stats.Structure]int64
	// Retries counts transient-fault retries ridden out in this span.
	Retries int64
	// Downgrades counts baseline-fallback downgrades recorded here.
	Downgrades int64
	// HeapHW is the span's candidate-heap high-water mark.
	HeapHW int
	// Children are sub-spans in start order.
	Children []*Span

	parent *Span
	start  time.Time
	open   bool
}

// TotalReads sums block reads over the span and all descendants.
func (s *Span) TotalReads() int64 {
	var t int64
	for _, v := range s.Reads {
		t += v
	}
	for _, c := range s.Children {
		t += c.TotalReads()
	}
	return t
}

// Trace is a per-query execution trace. It implements stats.Observer, so
// attaching it to the query's counters (Counters.SetObserver) routes
// every governed event into the span tree. A Trace is single-goroutine,
// matching the stats.Counters contract: one query, one goroutine, one
// trace.
type Trace struct {
	// Clock supplies span timestamps; tests may pin it. Nil means
	// time.Now.
	Clock func() time.Time

	root *Span
	cur  *Span
}

// NewTrace returns an empty trace. The first span started becomes the
// root.
func NewTrace() *Trace { return &Trace{} }

// Root returns the root span, or nil when nothing was recorded.
func (t *Trace) Root() *Span { return t.root }

func (t *Trace) now() time.Time {
	if t.Clock != nil {
		return t.Clock()
	}
	return time.Now()
}

// StartSpan opens a child of the current span (or the root when none is
// open yet) and makes it current.
func (t *Trace) StartSpan(name string) *Span {
	sp := &Span{Name: name, parent: t.cur, start: t.now(), open: true}
	switch {
	case t.root == nil:
		t.root = sp
	case t.cur == nil:
		// A finished trace reused for another top-level phase: treat the
		// existing root as the parent so the tree stays connected.
		sp.parent = t.root
		t.root.Children = append(t.root.Children, sp)
	default:
		t.cur.Children = append(t.cur.Children, sp)
	}
	t.cur = sp
	return sp
}

// EndSpan closes the current span, measuring its duration with the
// trace's clock. A call with no open span is a no-op (the boundary may
// already have finished the trace when a deferred closer runs).
func (t *Trace) EndSpan() { t.endCur(-1) }

func (t *Trace) endCur(d time.Duration) {
	sp := t.cur
	if sp == nil {
		return
	}
	if d < 0 {
		d = t.now().Sub(sp.start)
	}
	sp.Dur = d
	sp.open = false
	t.cur = sp.parent
}

// Finish closes any spans left open — an abort unwound past their
// closers, or the boundary is sealing the trace for rendering.
func (t *Trace) Finish() {
	for t.cur != nil {
		t.endCur(-1)
	}
}

// TotalReads sums attributed block reads over the whole tree.
func (t *Trace) TotalReads() int64 {
	if t.root == nil {
		return 0
	}
	return t.root.TotalReads()
}

// target returns the span execution events attribute to: the innermost
// open span, or the root when events arrive outside any span.
func (t *Trace) target() *Span {
	if t.cur != nil {
		return t.cur
	}
	if t.root == nil {
		t.root = &Span{Name: "query", start: t.now(), open: true}
		t.cur = t.root
	}
	return t.root
}

// SpanStart implements stats.Observer.
func (t *Trace) SpanStart(name string) { t.StartSpan(name) }

// SpanEnd implements stats.Observer: it closes the current span with the
// externally measured duration d.
func (t *Trace) SpanEnd(d time.Duration) { t.endCur(d) }

// ObserveRead implements stats.Observer.
func (t *Trace) ObserveRead(s stats.Structure, n int64) {
	sp := t.target()
	if sp.Reads == nil {
		sp.Reads = make(map[stats.Structure]int64, 4)
	}
	sp.Reads[s] += n
}

// ObserveRetry implements stats.Observer.
func (t *Trace) ObserveRetry() { t.target().Retries++ }

// ObserveHeapHW implements stats.Observer.
func (t *Trace) ObserveHeapHW(size int) {
	if sp := t.target(); size > sp.HeapHW {
		sp.HeapHW = size
	}
}

// ObserveDowngrade implements stats.Observer.
func (t *Trace) ObserveDowngrade() { t.target().Downgrades++ }

// Render draws the span tree as indented text, one span per line:
//
//	sig.topk                 1.8ms reads=121[rtree=80 signature=41] heap=32
//	├─ tester                400µs reads=41[signature=41]
//	└─ search                1.2ms reads=80[rtree=80] retries=1
func (t *Trace) Render() string {
	if t.root == nil {
		return "<empty trace>\n"
	}
	var b strings.Builder
	renderSpan(&b, t.root, "", "", "")
	return b.String()
}

func renderSpan(b *strings.Builder, sp *Span, lead, branch, childLead string) {
	label := lead + branch + sp.Name
	fmt.Fprintf(b, "%-28s %8s", label, sp.Dur.Round(time.Microsecond))
	if total := sumReads(sp.Reads); total > 0 {
		fmt.Fprintf(b, " reads=%d[%s]", total, readsList(sp.Reads))
	}
	if sp.Retries > 0 {
		fmt.Fprintf(b, " retries=%d", sp.Retries)
	}
	if sp.Downgrades > 0 {
		fmt.Fprintf(b, " downgrades=%d", sp.Downgrades)
	}
	if sp.HeapHW > 0 {
		fmt.Fprintf(b, " heap=%d", sp.HeapHW)
	}
	b.WriteByte('\n')
	for i, c := range sp.Children {
		if i == len(sp.Children)-1 {
			renderSpan(b, c, lead+childLead, "└─ ", "   ")
		} else {
			renderSpan(b, c, lead+childLead, "├─ ", "│  ")
		}
	}
}

func sumReads(m map[stats.Structure]int64) int64 {
	var t int64
	for _, v := range m {
		t += v
	}
	return t
}

func readsList(m map[stats.Structure]int64) string {
	keys := make([]string, 0, len(m))
	for s := range m {
		keys = append(keys, string(s))
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, m[stats.Structure(k)])
	}
	return strings.Join(parts, " ")
}
