package obs

import (
	"strings"
	"testing"
	"time"

	"rankcube/internal/stats"
)

// fixedClock returns a clock advancing step per call.
func fixedClock(step time.Duration) func() time.Time {
	t := time.Unix(0, 0)
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

// TestTraceGoldenTree pins the rendered span tree for a hand-built trace.
func TestTraceGoldenTree(t *testing.T) {
	tr := NewTrace()
	tr.Clock = fixedClock(0) // durations set explicitly below

	root := tr.StartSpan("sig.topk")
	tester := tr.StartSpan("tester")
	tr.ObserveRead(stats.StructSignature, 41)
	tr.SpanEnd(400 * time.Microsecond)
	search := tr.StartSpan("search")
	tr.ObserveRead(stats.StructRTree, 80)
	tr.ObserveRetry()
	tr.ObserveHeapHW(32)
	sub := tr.StartSpan("verify")
	tr.ObserveRead(stats.StructTable, 3)
	tr.SpanEnd(100 * time.Microsecond)
	tr.SpanEnd(1200 * time.Microsecond)
	tr.ObserveDowngrade()
	tr.SpanEnd(1800 * time.Microsecond)

	if tr.Root() != root || len(root.Children) != 2 || len(search.Children) != 1 || search.Children[0] != sub {
		t.Fatalf("unexpected tree shape")
	}
	_ = tester

	want := strings.Join([]string{
		"sig.topk                        1.8ms downgrades=1",
		"├─ tester                       400µs reads=41[signature=41]",
		"└─ search                       1.2ms reads=80[rtree=80] retries=1 heap=32",
		"   └─ verify                    100µs reads=3[table=3]",
		"",
	}, "\n")
	if got := tr.Render(); got != want {
		t.Errorf("rendered tree mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
	if tr.TotalReads() != 124 {
		t.Errorf("TotalReads = %d, want 124", tr.TotalReads())
	}
}

// TestTraceAttributionSumsToCounters drives events through a real
// Counters with the trace attached as observer and checks the invariant
// the acceptance criteria pin: per-span read totals sum to the counters'
// TotalReads.
func TestTraceAttributionSumsToCounters(t *testing.T) {
	c := stats.New()
	tr := NewTrace()
	c.SetObserver(tr)

	end := c.StartSpan("query")
	c.Read(stats.StructCube, 5)
	inner := c.StartSpan("search")
	c.Read(stats.StructBlockTab, 7)
	c.Read(stats.StructTable, 2)
	c.ObserveHeap(9)
	inner()
	c.Read(stats.StructCube, 1)
	end()
	c.DetachObserver(tr)
	tr.Finish()

	if got, want := tr.TotalReads(), c.TotalReads(); got != want {
		t.Errorf("trace reads %d != counters reads %d", got, want)
	}
	root := tr.Root()
	if root.Name != "query" || len(root.Children) != 1 {
		t.Fatalf("unexpected tree: %s", tr.Render())
	}
	if root.Reads[stats.StructCube] != 6 {
		t.Errorf("root cube reads = %d, want 6 (exclusive attribution)", root.Reads[stats.StructCube])
	}
	if root.Children[0].HeapHW != 9 {
		t.Errorf("search heap high-water = %d, want 9", root.Children[0].HeapHW)
	}
	// Phase table compatibility: StartSpan keeps feeding Phase().
	if c.Phase("search") <= 0 {
		t.Errorf("Phase(search) not accumulated")
	}
}

// TestTraceFinishClosesAbortedSpans simulates a governed abort unwinding
// past span closers.
func TestTraceFinishClosesAbortedSpans(t *testing.T) {
	tr := NewTrace()
	tr.StartSpan("query")
	tr.StartSpan("search")
	tr.ObserveRead(stats.StructRTree, 4)
	tr.Finish()
	if tr.cur != nil {
		t.Fatalf("Finish left open spans")
	}
	if tr.TotalReads() != 4 {
		t.Errorf("reads lost on abort: %d", tr.TotalReads())
	}
	// Ending again is a safe no-op.
	tr.EndSpan()
}

// TestTraceEventsWithoutSpan attributes stray events to a synthesized
// root.
func TestTraceEventsWithoutSpan(t *testing.T) {
	tr := NewTrace()
	tr.ObserveRead(stats.StructBTree, 2)
	if tr.Root() == nil || tr.TotalReads() != 2 {
		t.Fatalf("stray read not attributed: %v", tr.Render())
	}
}

// TestHistogramGoldenBuckets pins the log2 bucket boundaries and the
// rendered form.
func TestHistogramGoldenBuckets(t *testing.T) {
	h := &Histogram{}
	h.Observe(0)                      // bucket 0: <1µs
	h.Observe(900 * time.Nanosecond)  // bucket 0
	h.Observe(1 * time.Microsecond)   // bucket 1: <2µs
	h.Observe(3 * time.Microsecond)   // bucket 2: <4µs
	h.Observe(1 * time.Millisecond)   // 1000µs → bucket 10: <1.024ms
	h.Observe(100 * time.Hour)        // absorbed by the last bucket
	h.Observe(-5 * time.Microsecond)  // clamped to bucket 0

	if got := h.Count(); got != 7 {
		t.Fatalf("count = %d, want 7", got)
	}
	for i, want := range map[int]int64{0: 3, 1: 1, 2: 1, 10: 1, histBuckets - 1: 1} {
		if got := h.Bucket(i); got != want {
			t.Errorf("bucket %d = %d, want %d", i, got, want)
		}
	}
	want := "<1µs:3 <2µs:1 <4µs:1 <1.024ms:1 <inf:1"
	if got := h.String(); got != want {
		t.Errorf("histogram render = %q, want %q", got, want)
	}
}

// TestRegistryTextEndpoint checks get-or-create semantics and the stable
// plain-text rendering RecordQuery feeds.
func TestRegistryTextEndpoint(t *testing.T) {
	r := NewRegistry()
	r.RecordQuery("sig.topk", OutcomeOK, 3*time.Microsecond,
		map[stats.Structure]int64{stats.StructRTree: 10, stats.StructSignature: 4}, 1, 0)
	r.RecordQuery("sig.topk", OutcomeDegraded, 5*time.Microsecond,
		map[stats.Structure]int64{stats.StructTable: 20}, 0, 1)
	r.RecordQuarantine(stats.StructSignature)
	r.Gauge("inflight").Set(2)

	var b strings.Builder
	r.WriteText(&b)
	got := b.String()
	want := strings.Join([]string{
		"blockreads.rtree 10",
		"blockreads.signature 4",
		"blockreads.table 20",
		"downgrades 1",
		"faults.retries 1",
		"inflight 2",
		"latency.sig.topk count=2 mean=4µs <4µs:1 <8µs:1",
		"quarantines.signature 1",
		"queries.sig.topk.degraded 1",
		"queries.sig.topk.ok 1",
		"",
	}, "\n")
	if got != want {
		t.Errorf("registry text mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
	if r.Counter("queries.sig.topk.ok") != r.Counter("queries.sig.topk.ok") {
		t.Errorf("Counter not idempotent")
	}
}

// TestSlowLogRing checks threshold arming, ring eviction, and ordering.
func TestSlowLogRing(t *testing.T) {
	l := NewSlowLog(2)
	if l.Threshold() != 0 {
		t.Fatalf("new log should be disabled")
	}
	l.SetThreshold(10 * time.Millisecond)
	if l.Threshold() != 10*time.Millisecond {
		t.Fatalf("threshold not set")
	}
	for i, kind := range []string{"a", "b", "c"} {
		l.Record(SlowEntry{Kind: kind, Dur: time.Duration(i+1) * time.Millisecond, Outcome: OutcomeOK, Tree: kind + "-tree\n"})
	}
	if l.Total() != 3 || l.Len() != 2 {
		t.Fatalf("total=%d len=%d, want 3/2", l.Total(), l.Len())
	}
	got := l.Entries()
	if got[0].Kind != "b" || got[1].Kind != "c" || got[0].Seq != 2 {
		t.Errorf("ring order wrong: %+v", got)
	}
	var b strings.Builder
	l.WriteText(&b)
	if !strings.Contains(b.String(), "c-tree") || strings.Contains(b.String(), "a-tree") {
		t.Errorf("dump wrong:\n%s", b.String())
	}
	l.Reset()
	if l.Len() != 0 {
		t.Errorf("reset kept entries")
	}
}
