package obs

import (
	"expvar"
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rankcube/internal/stats"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value reports the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets bounds a histogram: bucket i counts observations in
// [2^(i-1), 2^i) µs (bucket 0 is <1µs), with the last bucket absorbing
// everything beyond ~2¹⁹h — bounded memory regardless of traffic.
const histBuckets = 32

// Histogram is a bounded log2-bucket latency histogram over
// microseconds. All methods are safe for concurrent use.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // microseconds
}

// bucketOf maps a duration to its log2 bucket index.
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	b := bits.Len64(uint64(us))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe folds one duration into the histogram.
func (h *Histogram) Observe(d time.Duration) {
	h.buckets[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(d.Microseconds())
}

// Count reports total observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean reports the mean observed duration.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load()/n) * time.Microsecond
}

// Bucket reports the count of bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i].Load() }

// String renders the occupied buckets: "<1µs:3 <2µs:1 <16ms:7".
func (h *Histogram) String() string {
	var parts []string
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			parts = append(parts, fmt.Sprintf("<%s:%d", bucketUpper(i), n))
		}
	}
	if len(parts) == 0 {
		return "empty"
	}
	return strings.Join(parts, " ")
}

// bucketUpper names bucket i's exclusive upper bound.
func bucketUpper(i int) string {
	if i >= histBuckets-1 {
		return "inf"
	}
	d := time.Duration(1<<uint(i)) * time.Microsecond
	return d.String()
}

// Registry is a process-wide metrics registry: named counters, gauges,
// and histograms created on first use and safe for concurrent access.
// The rankcube API boundary records every query into Default; servers
// expose it with Handler (plain text) and PublishExpvar (JSON under
// /debug/vars).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	publishOnce sync.Once
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// defaultRegistry is the process-wide instance.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Outcome classifies how a query ended, the per-kind traffic breakdown
// the registry tracks.
type Outcome string

// Query outcomes.
const (
	OutcomeOK         Outcome = "ok"          // answered from the cube
	OutcomeDegraded   Outcome = "degraded"    // answered by baseline fallback
	OutcomeBudget     Outcome = "budget_trip" // failed on a Budget limit
	OutcomeCanceled   Outcome = "canceled"    // context canceled / timed out
	OutcomeOverloaded Outcome = "overloaded"  // rejected by the admission gate
	OutcomeError      Outcome = "error"       // any other typed failure
)

// RecordQuery folds one finished query into the registry: outcome count
// and latency histogram per kind, block reads per structure, retry and
// downgrade totals.
func (r *Registry) RecordQuery(kind string, o Outcome, d time.Duration, reads map[stats.Structure]int64, retries, downgrades int64) {
	r.Counter("queries."+kind+"."+string(o)).Add(1)
	r.Histogram("latency." + kind).Observe(d)
	for s, n := range reads {
		if n > 0 {
			r.Counter("blockreads." + string(s)).Add(n)
		}
	}
	if retries > 0 {
		r.Counter("faults.retries").Add(retries)
	}
	if downgrades > 0 {
		r.Counter("downgrades").Add(downgrades)
	}
}

// RecordQuarantine counts one store quarantine (first detected page
// corruption taking a structure out of service).
func (r *Registry) RecordQuarantine(kind stats.Structure) {
	r.Counter("quarantines." + string(kind)).Add(1)
}

// RecordQuarantineClear counts one store returning to full service, the
// recovery event that reconciles the quarantine counter: for every
// structure, quarantines.<kind> − quarantines.cleared.<kind> is the number
// of stores currently out of full service.
func (r *Registry) RecordQuarantineClear(kind stats.Structure) {
	r.Counter("quarantines.cleared." + string(kind)).Add(1)
}

// RecordRepair counts one quarantine repair pass over a store:
// checksum re-verification plus (when pages failed it) a rebuild from the
// base data. rebuiltPages is how many pages the repair re-materialized.
func (r *Registry) RecordRepair(kind stats.Structure, rebuiltPages int) {
	r.Counter("repairs." + string(kind)).Add(1)
	if rebuiltPages > 0 {
		r.Counter("repairs.pages_rebuilt").Add(int64(rebuiltPages))
	}
}

// RecordProbe counts one half-open circuit-breaker probe query against a
// repaired store: ok decides between re-admission and re-quarantine.
func (r *Registry) RecordProbe(kind stats.Structure, ok bool) {
	if ok {
		r.Counter("probes." + string(kind) + ".ok").Add(1)
	} else {
		r.Counter("probes." + string(kind) + ".failed").Add(1)
	}
}

// RecordSlowQuery counts one slow-query log admission.
func (r *Registry) RecordSlowQuery() { r.Counter("slowlog.admitted").Add(1) }

// names returns all metric names, sorted, with their render functions.
func (r *Registry) snapshot() (names []string, render map[string]string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	render = make(map[string]string, len(r.counters)+len(r.gauges)+len(r.hists))
	for n, c := range r.counters {
		render[n] = fmt.Sprintf("%d", c.Value())
	}
	for n, g := range r.gauges {
		render[n] = fmt.Sprintf("%d", g.Value())
	}
	for n, h := range r.hists {
		render[n] = fmt.Sprintf("count=%d mean=%s %s", h.Count(), h.Mean().Round(time.Microsecond), h)
	}
	names = make([]string, 0, len(render))
	for n := range render {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, render
}

// WriteText renders the registry as stable "name value" lines.
func (r *Registry) WriteText(w io.Writer) {
	names, render := r.snapshot()
	for _, n := range names {
		fmt.Fprintf(w, "%s %s\n", n, render[n])
	}
}

// Handler serves the registry as plain text — the scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.WriteText(w)
	})
}

// PublishExpvar publishes the registry under the given expvar name
// (conventionally "rankcube"), at most once per registry; expvar itself
// serves it at /debug/vars.
func (r *Registry) PublishExpvar(name string) {
	r.publishOnce.Do(func() {
		expvar.Publish(name, expvar.Func(func() any {
			names, render := r.snapshot()
			out := make(map[string]string, len(names))
			for _, n := range names {
				out[n] = render[n]
			}
			return out
		}))
	})
}
