package obs

import "context"

// traceKey carries the query's *Trace through a context.
type traceKey struct{}

// ContextWithTrace returns a context carrying tr, the ctx-first handle
// for span instrumentation at API boundaries. Engine internals, which
// thread stats.Counters rather than contexts, reach the same trace
// through Counters.StartSpan and the attached observer.
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, tr)
}

// TraceFrom returns the trace carried by ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// StartSpan opens a named span on the trace carried by ctx and returns
// its closer. Without a trace in ctx it is a no-op — instrumented code
// does not need to know whether tracing is enabled:
//
//	defer obs.StartSpan(ctx, "rewrite")()
func StartSpan(ctx context.Context, name string) func() {
	tr := TraceFrom(ctx)
	if tr == nil {
		return func() {}
	}
	sp := tr.StartSpan(name)
	return func() {
		// Close this span specifically: unwind any deeper spans whose
		// closers were skipped by an abort, then end sp itself.
		for tr.cur != nil && tr.cur != sp {
			tr.endCur(-1)
		}
		tr.endCur(-1)
	}
}
