package hindex

import "testing"

func TestSIDDistinctness(t *testing.T) {
	m := 16
	seen := map[uint64][]int{}
	var paths [][]int
	for a := 1; a <= m; a++ {
		paths = append(paths, []int{a})
		for b := 1; b <= m; b++ {
			paths = append(paths, []int{a, b})
		}
	}
	paths = append(paths, []int{})
	for _, p := range paths {
		sid := SID(p, m)
		if prev, ok := seen[sid]; ok {
			t.Fatalf("SID collision: %v and %v -> %d", prev, p, sid)
		}
		seen[sid] = append([]int(nil), p...)
	}
}

func TestSIDRootIsZero(t *testing.T) {
	if SID(nil, 204) != 0 {
		t.Fatalf("root SID = %d", SID(nil, 204))
	}
}

func TestSIDThesisFormula(t *testing.T) {
	// Thesis example (§4.2.1): M = 2, path of node N3 is ⟨1,1⟩, SID = 4.
	if got := SID([]int{1, 1}, 2); got != 4 {
		t.Fatalf("SID(⟨1,1⟩, M=2) = %d, want 4", got)
	}
}

func TestPathKey(t *testing.T) {
	a := PathKey([]int{1, 2, 3})
	b := PathKey([]int{1, 2, 3})
	c := PathKey([]int{1, 2})
	d := PathKey([]int{3, 2, 1})
	if a != b {
		t.Fatal("PathKey not deterministic")
	}
	if a == c || a == d {
		t.Fatal("PathKey collision")
	}
	if PathKey(nil) != "" {
		t.Fatal("empty path key not empty")
	}
	// Positions above 255 must not collide (16-bit encoding).
	if PathKey([]int{256}) == PathKey([]int{1, 0}) {
		// ⟨256⟩ encodes to bytes {1,0}; ⟨1,0⟩ encodes to {0,1,0,0}: lengths
		// differ, so no collision. Verify a trickier pair too.
		t.Fatal("16-bit encoding collision")
	}
	if PathKey([]int{257, 1}) == PathKey([]int{1, 257}) {
		t.Fatal("order-insensitive PathKey")
	}
}
