// Package hindex defines the hierarchical index abstraction shared by the
// B+-tree and R-tree substrates. The thesis' signature measures (ch. 4) and
// index-merge framework (ch. 5) are defined over any index in which "a
// subspace occupied by a tree node is always contained in the subspace of
// its parent node" (§5.1.1); this package captures exactly that contract,
// plus the node-path and SID machinery signatures are keyed by (§4.2.1).
package hindex

import (
	"rankcube/internal/pager"
	"rankcube/internal/ranking"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// NodeID identifies a node within one index.
type NodeID int32

// InvalidNode is the "no node" sentinel.
const InvalidNode NodeID = -1

// ChildRef describes one entry of an internal node: the child node and its
// bounding box. Boxes are full-width over the relation's ranking dimensions;
// dimensions the index does not cover span the index's domain, so joint
// boxes across indexes compose by per-dimension intersection.
type ChildRef struct {
	ID  NodeID
	Box ranking.Box
}

// LeafEntry describes one tuple entry of a leaf node. Point is full-width;
// uncovered dimensions hold the domain midpoint and must not be consumed by
// ranking functions that reference them.
type LeafEntry struct {
	TID   table.TID
	Point []float64
}

// Index is a hierarchical, block-resident index over a subset of the ranking
// dimensions.
type Index interface {
	// Dims lists the ranking-dimension positions the index covers, ascending.
	Dims() []int
	// Domain is the full-width box enclosing all indexed data.
	Domain() ranking.Box
	// Root returns the root node (InvalidNode when empty).
	Root() NodeID
	// Height reports the number of levels (1 = root is a leaf).
	Height() int
	// MaxFanout reports the maximum entries per node (the thesis' M).
	MaxFanout() int
	// IsLeaf reports whether id is a leaf node.
	IsLeaf(id NodeID) bool
	// NumChildren reports the number of entries in node id (children of an
	// internal node, tuples of a leaf).
	NumChildren(id NodeID) int
	// Children returns the entries of internal node id in slot order.
	Children(id NodeID) []ChildRef
	// ChildAt returns the child node in the given 0-based slot of internal
	// node id, without materializing the full entry list.
	ChildAt(id NodeID, slot int) NodeID
	// LeafEntries returns the tuples of leaf node id in slot order.
	LeafEntries(id NodeID) []LeafEntry
	// NodeBox returns the full-width bounding box of node id.
	NodeBox(id NodeID) ranking.Box
	// Page returns the storage page holding node id, for I/O accounting.
	Page(id NodeID) pager.PageID
	// Store returns the backing page store.
	Store() *pager.Store
	// Path returns the entry positions from the root to node id (thesis
	// §4.2.1): the root has an empty path; a level-l node has l positions,
	// 1-based as in the thesis.
	Path(id NodeID) []int
}

// TupleLocator is implemented by indexes that can resolve a tuple to the
// path of the leaf node holding it (thesis §5.3.2: "we only need to know
// which leaf-node contains t", so tuple paths for join-signatures drop the
// leaf slot). Join-signature construction requires it.
type TupleLocator interface {
	LeafPath(tid table.TID) []int
}

// ValueOrdered is implemented by indexes whose children within a node are
// sorted by attribute value (B+-trees). Index-merge neighborhood expansion
// (§5.2.2) requires a total order on node entries and is only offered over
// such indexes.
type ValueOrdered interface {
	ValueOrdered() bool
}

// PartitionTree is the contract ranking-cube measures are built over: a
// hierarchical index that can also resolve tuples to and from their paths.
// Both chapter 4 partition schemes implement it — the R-tree
// (internal/rtree) and the merged-grid hierarchy (internal/gridtree),
// thesis figs. 4.1/4.2.
type PartitionTree interface {
	Index
	TupleLocator
	// TuplePath returns a tuple's full path including its leaf slot.
	TuplePath(tid table.TID) []int
	// TIDAt resolves a full tuple path back to the tuple.
	TIDAt(path []int) (table.TID, bool)
}

// MaintainableTree is implemented by partition trees supporting incremental
// updates (the R-tree; grid partitions re-partition periodically instead,
// §1.3.1). Insert and Delete return the set of tuples whose paths changed.
type MaintainableTree interface {
	Insert(tid table.TID, point []float64) []table.TID
	Delete(tid table.TID) ([]table.TID, bool)
}

// Accessor mediates node access during one query, charging block reads
// through a per-query buffer so repeated visits to a node are billed once.
type Accessor struct {
	Idx Index
	buf *pager.Buffer
	c   *stats.Counters
}

// NewAccessor returns an accessor charging idx reads to c.
func NewAccessor(idx Index, c *stats.Counters) *Accessor {
	return &Accessor{Idx: idx, buf: pager.NewBuffer(idx.Store()), c: c}
}

// Children fetches internal node entries, charging the node's page.
func (a *Accessor) Children(id NodeID) []ChildRef {
	a.buf.Touch(a.Idx.Page(id), a.c)
	return a.Idx.Children(id)
}

// LeafEntries fetches leaf tuples, charging the leaf's page.
func (a *Accessor) LeafEntries(id NodeID) []LeafEntry {
	a.buf.Touch(a.Idx.Page(id), a.c)
	return a.Idx.LeafEntries(id)
}

// Retrieved reports whether node id's page has already been read through
// this accessor (used for redundant-state detection, thesis §5.1.3: a leaf
// index node is redundant if it has been retrieved previously).
func (a *Accessor) Retrieved(id NodeID) bool {
	return a.buf.Seen(a.Idx.Page(id))
}

// SID encodes a node path as the thesis' signature id:
// SID = p0·(M+1)^l + p1·(M+1)^(l−1) + … + p_{l−1}, with the empty (root)
// path mapping to 0.
func SID(path []int, maxFanout int) uint64 {
	base := uint64(maxFanout + 1)
	var sid uint64
	for _, p := range path {
		sid = sid*base + uint64(p)
	}
	return sid
}

// PathKey encodes a path for use as a map key.
func PathKey(path []int) string {
	b := make([]byte, 0, len(path)*2)
	for _, p := range path {
		b = append(b, byte(p>>8), byte(p))
	}
	return string(b)
}
