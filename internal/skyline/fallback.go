package skyline

import (
	"sort"

	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// ScanSkyline answers q exactly with a full sequential scan and pairwise
// domination filtering — the degradation target when the cube's partition
// tree or signatures fault mid-search. It touches no cube store, skips
// tuples deleted from the partition, and charges one sequential pass over
// the relation's pages. The returned snapshot is marked degraded: it has
// no pruned-candidate basis, so drill-down/roll-up restart from scratch.
func (e *Engine) ScanSkyline(q Query, ctr *stats.Counters) ([]Result, *Snapshot, error) {
	if err := e.validate(q); err != nil {
		return nil, nil, err
	}
	t := e.cube.Table()
	rowBytes := t.RowBytes()
	pages := (t.Len()*rowBytes + 4095) / 4096
	ctr.Read(stats.StructTable, int64(pages))

	var cands []Result
	buf := make([]float64, t.Schema().R())
	for i := 0; i < t.Len(); i++ {
		tid := table.TID(i)
		if !e.cube.Alive(tid) || !t.Matches(tid, q.Cond) {
			continue
		}
		pt := q.point(t.RankRow(tid, buf), nil)
		cands = append(cands, Result{TID: tid, Coord: pt})
	}
	var sky []Result
	for i := range cands {
		dominated := false
		for j := range cands {
			if i != j && dominates(cands[j].Coord, cands[i].Coord) {
				dominated = true
				ctr.DominationPruned++
				break
			}
		}
		if !dominated {
			sky = append(sky, cands[i])
		}
	}
	// BBS emits in ascending mindist order; match it (ties by tid) so the
	// fallback is indistinguishable modulo equal-distance ties.
	sort.Slice(sky, func(a, b int) bool {
		sa, sb := sum(sky[a].Coord), sum(sky[b].Coord)
		if sa != sb {
			return sa < sb
		}
		return sky[a].TID < sky[b].TID
	})
	snap := &Snapshot{query: q, skyline: sky, degraded: true}
	return sky, snap, nil
}
