// Package skyline implements chapter 7 of the thesis: skyline and dynamic
// skyline queries with multi-dimensional boolean predicates, processed with
// a branch-and-bound search (BBS-style) over the ranking-cube's R-tree
// partition with signature-based boolean pruning, plus candidate-heap reuse
// for drill-down and roll-up queries (§7.2.4).
//
// The thesis body for chapter 7 is summarized rather than fully reproduced
// in our source text; the algorithms here follow the chapter's section
// structure (domination pruning fig. 7.1, heap re-construction fig. 7.2)
// and its stated foundations: the branch-and-bound framework of ch. 4
// applied to preference queries (§5.5.3, §1.3.4).
package skyline

import (
	"fmt"

	"rankcube/internal/core"
	"rankcube/internal/errs"
	"rankcube/internal/heap"
	"rankcube/internal/hindex"
	"rankcube/internal/ranking"
	"rankcube/internal/sigcube"
	"rankcube/internal/signature"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// Query is a skyline query with boolean predicates: minimize all Dims
// simultaneously among tuples matching Cond. A non-nil Target asks for the
// dynamic skyline in the transformed space t_d = |x_d − Target[d]| (§7.2.3).
type Query struct {
	Cond   core.Cond
	Dims   []int
	Target []float64
}

// transform maps a raw coordinate into preference space.
func (q Query) transform(d int, v float64) float64 {
	if q.Target == nil {
		return v
	}
	t := v - q.Target[d]
	if t < 0 {
		return -t
	}
	return t
}

// lowerCorner computes the per-dimension minima of a box in preference
// space — the point BBS sorts and prunes by.
func (q Query) lowerCorner(box ranking.Box, out []float64) []float64 {
	out = out[:0]
	for i, d := range q.Dims {
		if q.Target == nil {
			out = append(out, box.Lo[d])
			continue
		}
		t := q.Target[i]
		switch {
		case t < box.Lo[d]:
			out = append(out, box.Lo[d]-t)
		case t > box.Hi[d]:
			out = append(out, t-box.Hi[d])
		default:
			out = append(out, 0)
		}
	}
	return out
}

// Point extracts a tuple's preference-space coordinates (identity for
// static skylines, |x−target| for dynamic ones). Exposed for reference
// implementations and the benchmark harness.
func (q Query) Point(vals []float64, out []float64) []float64 {
	return q.point(vals, out)
}

// point extracts a tuple's preference-space coordinates.
func (q Query) point(vals []float64, out []float64) []float64 {
	out = out[:0]
	for i, d := range q.Dims {
		v := vals[d]
		if q.Target != nil {
			v = q.transform(i, v)
			_ = i
		}
		out = append(out, v)
	}
	return out
}

// dominates reports whether a strictly dominates b (≤ everywhere, < once).
func dominates(a, b []float64) bool {
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// weaklyDominates reports a ≤ b everywhere (used against box lower corners:
// any tuple in the box is then dominated or equal).
func weaklyDominates(a, b []float64) bool {
	for i := range a {
		if a[i] > b[i] {
			return false
		}
	}
	return true
}

// Result is one skyline member.
type Result struct {
	TID   table.TID
	Coord []float64 // preference-space coordinates
}

// entry is a candidate heap element: an index node or a tuple with its
// preference-space lower corner and mindist key.
type entry struct {
	mindist float64
	isTuple bool
	node    hindex.NodeID
	tid     table.TID
	path    []int
	corner  []float64
}

func lessEntry(a, b entry) bool {
	if a.mindist != b.mindist {
		return a.mindist < b.mindist
	}
	return a.isTuple && !b.isTuple
}

// Engine runs skyline queries over a signature ranking-cube.
type Engine struct {
	cube *sigcube.Cube
}

// NewEngine wraps a built cube.
func NewEngine(cube *sigcube.Cube) *Engine { return &Engine{cube: cube} }

// Cube exposes the engine's underlying signature cube so the API boundary
// can route skyline queries through the cube's serving control (shared
// lock + admission gate).
func (e *Engine) Cube() *sigcube.Cube { return e.cube }

// Snapshot preserves a finished query's pruned-but-boolean-passing
// candidates and skyline so OLAP navigation (drill-down/roll-up) can
// re-construct its candidate heap instead of restarting (fig. 7.2).
type Snapshot struct {
	query   Query
	skyline []Result
	// pruned holds entries discarded by domination (not by boolean
	// pruning): under a tightened predicate their dominators may vanish.
	pruned []entry
	// degraded marks snapshots produced by the fallback scan: they carry
	// no pruned-candidate basis, so navigation restarts from scratch
	// instead of re-constructing the heap.
	degraded bool
}

// Degraded reports whether this snapshot came from the fallback scan
// (drill-down/roll-up reuse is unavailable; navigation re-queries).
func (s *Snapshot) Degraded() bool { return s.degraded }

// DrillQuery returns the snapshot's query tightened with extra predicates —
// the query a drill-down answers — rejecting contradictions with existing
// predicates.
func (s *Snapshot) DrillQuery(extra core.Cond) (Query, error) {
	q := s.query
	newCond := core.Cond{}
	for d, v := range q.Cond {
		newCond[d] = v
	}
	for d, v := range extra {
		if old, ok := newCond[d]; ok && old != v {
			return Query{}, fmt.Errorf("skyline: drill-down contradicts existing predicate on dimension %d: %w", d, errs.ErrInvalidArgument)
		}
		newCond[d] = v
	}
	q.Cond = newCond
	return q, nil
}

// RollQuery returns the snapshot's query with the predicates on removeDims
// removed — the query a roll-up answers.
func (s *Snapshot) RollQuery(removeDims []int) Query {
	q := s.query
	newCond := core.Cond{}
	for d, v := range q.Cond {
		newCond[d] = v
	}
	for _, d := range removeDims {
		delete(newCond, d)
	}
	q.Cond = newCond
	return q
}

// SkylineWithTester answers q using an explicit boolean-pruning tester
// instead of the cube's signatures — the hook the evaluation harness uses
// for the no-signature ("Ranking") baseline series and for instrumented
// testers.
func (e *Engine) SkylineWithTester(q Query, tester signature.Tester, ctr *stats.Counters) ([]Result, *Snapshot, error) {
	if err := e.validate(q); err != nil {
		return nil, nil, err
	}
	snap := &Snapshot{query: q}
	rt := e.cube.Tree()
	if rt.Root() == hindex.InvalidNode {
		return nil, snap, nil
	}
	h := heap.New[entry](lessEntry)
	rootCorner := q.lowerCorner(rt.NodeBox(rt.Root()), nil)
	h.Push(entry{mindist: sum(rootCorner), node: rt.Root(), corner: rootCorner})
	sky := e.run(q, tester, h, nil, snap, ctr)
	snap.skyline = sky
	return sky, snap, nil
}

// Skyline answers q from scratch.
func (e *Engine) Skyline(q Query, ctr *stats.Counters) ([]Result, *Snapshot, error) {
	if err := e.validate(q); err != nil {
		return nil, nil, err
	}
	endTester := ctr.StartSpan("tester")
	tester, any, err := e.cube.TesterFor(q.Cond, ctr)
	endTester()
	if err != nil {
		return nil, nil, err
	}
	snap := &Snapshot{query: q}
	if !any {
		return nil, snap, nil
	}
	rt := e.cube.Tree()
	if rt.Root() == hindex.InvalidNode {
		return nil, snap, nil
	}
	h := heap.New[entry](lessEntry)
	rootCorner := q.lowerCorner(rt.NodeBox(rt.Root()), nil)
	h.Push(entry{mindist: sum(rootCorner), node: rt.Root(), corner: rootCorner})
	sky := e.run(q, tester, h, nil, snap, ctr)
	snap.skyline = sky
	return sky, snap, nil
}

// run is the BBS loop shared by fresh queries and heap re-construction.
func (e *Engine) run(q Query, tester signature.Tester, h *heap.Heap[entry], sky []Result, snap *Snapshot, ctr *stats.Counters) []Result {
	defer ctr.StartSpan("search")()
	rt := e.cube.Tree()
	acc := hindex.NewAccessor(rt, ctr)
	var corner []float64
	for h.Len() > 0 {
		ctr.ObserveHeap(h.Len())
		en := h.Pop()
		ctr.StatesExamined++
		// Domination pruning (fig. 7.1): a candidate whose best corner is
		// weakly dominated by a skyline point cannot contribute.
		if prunedBy(sky, en) {
			ctr.DominationPruned++
			if snap != nil {
				snap.pruned = append(snap.pruned, en)
			}
			continue
		}
		// Boolean pruning through the signature.
		if !tester.Test(en.path) {
			ctr.Pruned++
			continue
		}
		if en.isTuple {
			sky = append(sky, Result{TID: en.tid, Coord: en.corner})
			continue
		}
		if rt.IsLeaf(en.node) {
			for slot, le := range acc.LeafEntries(en.node) {
				pt := q.point(le.Point, nil)
				h.Push(entry{
					mindist: sum(pt),
					isTuple: true,
					tid:     le.TID,
					path:    childPath(en.path, slot),
					corner:  pt,
				})
				ctr.StatesGenerated++
			}
			continue
		}
		for slot, ch := range acc.Children(en.node) {
			corner = q.lowerCorner(ch.Box, corner)
			cc := append([]float64(nil), corner...)
			h.Push(entry{
				mindist: sum(cc),
				node:    ch.ID,
				path:    childPath(en.path, slot),
				corner:  cc,
			})
			ctr.StatesGenerated++
		}
	}
	return sky
}

// prunedBy applies the domination test against the current skyline: strict
// domination for tuples, weak domination of the best corner for nodes.
func prunedBy(sky []Result, en entry) bool {
	for i := range sky {
		if en.isTuple {
			if dominates(sky[i].Coord, en.corner) {
				return true
			}
		} else if weaklyDominates(sky[i].Coord, en.corner) {
			return true
		}
	}
	return false
}

// DrillDown answers the previous query tightened with extra predicates by
// re-constructing the candidate heap from the snapshot (fig. 7.2): the new
// answer set is a subset of the old universe, so the old skyline plus the
// domination-pruned entries are a complete candidate basis.
func (e *Engine) DrillDown(prev *Snapshot, extra core.Cond, ctr *stats.Counters) ([]Result, *Snapshot, error) {
	q, err := prev.DrillQuery(extra)
	if err != nil {
		return nil, nil, err
	}
	// A degraded snapshot has no pruned-candidate basis to rebuild from;
	// answer the tightened query from scratch.
	if prev.degraded {
		return e.Skyline(q, ctr)
	}
	endTester := ctr.StartSpan("tester")
	tester, any, err := e.cube.TesterFor(q.Cond, ctr)
	endTester()
	if err != nil {
		return nil, nil, err
	}
	snap := &Snapshot{query: q}
	if !any {
		return nil, snap, nil
	}
	endReheap := ctr.StartSpan("reheap")
	// Re-construct the candidate heap (fig. 7.2). Previous skyline members
	// matching the tightened predicate remain skyline (non-domination over a
	// subset is preserved), so they seed the result directly; their
	// verification is one random access each.
	t := e.cube.Table()
	var survivors []Result
	for _, r := range prev.skyline {
		ctr.Read(stats.StructTable, 1)
		if t.Matches(r.TID, extra) {
			survivors = append(survivors, r)
		}
	}
	// Domination-pruned entries re-enter only when every dominator they had
	// may have vanished: entries still weakly dominated by a survivor stay
	// pruned (and stay recorded for further drill-downs).
	h := heap.New[entry](lessEntry)
	for _, en := range prev.pruned {
		if prunedBy(survivors, en) {
			ctr.DominationPruned++
			snap.pruned = append(snap.pruned, en)
			continue
		}
		h.Push(en)
	}
	endReheap()
	sky := e.run(q, tester, h, survivors, snap, ctr)
	snap.skyline = sky
	return sky, snap, nil
}

// RollUp answers the previous query with the predicates on the given
// dimensions removed. The universe grows, so a full search is required, but
// the previous skyline restricted to the relaxed predicate seeds the
// skyline list, making domination pruning effective from the start.
func (e *Engine) RollUp(prev *Snapshot, removeDims []int, ctr *stats.Counters) ([]Result, *Snapshot, error) {
	q := prev.RollQuery(removeDims)
	// Degraded snapshots carry no reusable seeds worth trusting; restart.
	if prev.degraded {
		return e.Skyline(q, ctr)
	}
	endTester := ctr.StartSpan("tester")
	tester, any, err := e.cube.TesterFor(q.Cond, ctr)
	endTester()
	if err != nil {
		return nil, nil, err
	}
	snap := &Snapshot{query: q}
	if !any {
		return nil, snap, nil
	}
	rt := e.cube.Tree()
	h := heap.New[entry](lessEntry)
	rootCorner := q.lowerCorner(rt.NodeBox(rt.Root()), nil)
	h.Push(entry{mindist: sum(rootCorner), node: rt.Root(), corner: rootCorner})
	// Seeding: the previous skyline members all satisfy the relaxed
	// predicate, so they are legitimate pruners from the first pop — the
	// payoff of heap/skyline reuse. They may themselves be dominated by
	// newly admitted tuples, so the result is cleaned afterwards.
	seeds := append([]Result(nil), prev.skyline...)
	sky := e.run(q, tester, h, seeds, snap, ctr)
	snap.skyline = cleanDominated(dedupe(sky))
	return snap.skyline, snap, nil
}

// cleanDominated removes members strictly dominated by another member —
// provisional roll-up seeds can be overtaken by newly admitted tuples.
func cleanDominated(sky []Result) []Result {
	out := sky[:0]
	for i := range sky {
		dominated := false
		for j := range sky {
			if i != j && dominates(sky[j].Coord, sky[i].Coord) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, sky[i])
		}
	}
	return out
}

func dedupe(sky []Result) []Result {
	seen := make(map[table.TID]bool, len(sky))
	out := sky[:0]
	for _, r := range sky {
		if seen[r.TID] {
			continue
		}
		seen[r.TID] = true
		out = append(out, r)
	}
	return out
}

func (e *Engine) validate(q Query) error {
	r := e.cube.Table().Schema().R()
	if len(q.Dims) == 0 {
		return fmt.Errorf("skyline: no preference dimensions")
	}
	for _, d := range q.Dims {
		if d < 0 || d >= r {
			return fmt.Errorf("skyline: preference dimension %d out of range", d)
		}
	}
	if q.Target != nil && len(q.Target) != len(q.Dims) {
		return fmt.Errorf("skyline: target arity %d != dims %d", len(q.Target), len(q.Dims))
	}
	return nil
}

func sum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

func childPath(parent []int, slot int) []int {
	out := make([]int, len(parent)+1)
	copy(out, parent)
	out[len(parent)] = slot + 1
	return out
}
