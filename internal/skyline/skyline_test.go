package skyline

import (
	"math/rand"
	"sort"
	"testing"

	"rankcube/internal/core"
	"rankcube/internal/rtree"
	"rankcube/internal/sigcube"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// bruteSkyline computes the reference answer by pairwise domination over
// the matching tuples.
func bruteSkyline(t *table.Table, q Query) map[table.TID]bool {
	type pt struct {
		tid   table.TID
		coord []float64
	}
	var pts []pt
	buf := make([]float64, t.Schema().R())
	for i := 0; i < t.Len(); i++ {
		tid := table.TID(i)
		if !t.Matches(tid, q.Cond) {
			continue
		}
		row := t.RankRow(tid, buf)
		coord := q.point(row, nil)
		pts = append(pts, pt{tid, append([]float64(nil), coord...)})
	}
	out := make(map[table.TID]bool)
	for i := range pts {
		dominated := false
		for j := range pts {
			if i != j && dominates(pts[j].coord, pts[i].coord) {
				dominated = true
				break
			}
		}
		if !dominated {
			out[pts[i].tid] = true
		}
	}
	return out
}

func sameSkyline(t *testing.T, got []Result, want map[table.TID]bool) {
	t.Helper()
	if len(got) != len(want) {
		gotIDs := make([]int, 0, len(got))
		for _, r := range got {
			gotIDs = append(gotIDs, int(r.TID))
		}
		sort.Ints(gotIDs)
		t.Fatalf("got %d skyline points, want %d (got %v)", len(got), len(want), gotIDs)
	}
	for _, r := range got {
		if !want[r.TID] {
			t.Fatalf("tuple %d not in reference skyline", r.TID)
		}
	}
}

func buildEngine(n int, s, card int, dist table.Distribution, seed int64) (*table.Table, *Engine) {
	tb := table.Generate(table.GenSpec{T: n, S: s, R: 3, Card: card, Dist: dist, Seed: seed})
	cube := sigcube.Build(tb, sigcube.Config{RTree: rtree.Config{Fanout: 16}})
	return tb, NewEngine(cube)
}

func TestStaticSkylineMatchesBrute(t *testing.T) {
	tb, e := buildEngine(4000, 2, 4, table.Uniform, 111)
	for _, cond := range []core.Cond{{}, {0: 1}, {0: 2, 1: 3}} {
		q := Query{Cond: cond, Dims: []int{0, 1}}
		got, _, err := e.Skyline(q, stats.New())
		if err != nil {
			t.Fatal(err)
		}
		sameSkyline(t, got, bruteSkyline(tb, q))
	}
}

func TestSkylineThreeDims(t *testing.T) {
	tb, e := buildEngine(2000, 2, 3, table.AntiCorrelated, 112)
	q := Query{Cond: core.Cond{1: 1}, Dims: []int{0, 1, 2}}
	got, _, err := e.Skyline(q, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	sameSkyline(t, got, bruteSkyline(tb, q))
}

func TestDynamicSkylineMatchesBrute(t *testing.T) {
	tb, e := buildEngine(3000, 2, 4, table.Uniform, 113)
	rng := rand.New(rand.NewSource(114))
	for trial := 0; trial < 5; trial++ {
		q := Query{
			Cond:   core.Cond{0: int32(rng.Intn(4))},
			Dims:   []int{0, 1},
			Target: []float64{rng.Float64(), rng.Float64()},
		}
		got, _, err := e.Skyline(q, stats.New())
		if err != nil {
			t.Fatal(err)
		}
		sameSkyline(t, got, bruteSkyline(tb, q))
	}
}

func TestDrillDownMatchesFresh(t *testing.T) {
	tb, e := buildEngine(4000, 3, 4, table.Uniform, 115)
	base := Query{Cond: core.Cond{0: 1}, Dims: []int{0, 1}}
	_, snap, err := e.Skyline(base, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := e.DrillDown(snap, core.Cond{1: 2}, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	want := bruteSkyline(tb, Query{Cond: core.Cond{0: 1, 1: 2}, Dims: []int{0, 1}})
	sameSkyline(t, got, want)
}

func TestDrillDownCheaperThanFresh(t *testing.T) {
	_, e := buildEngine(20000, 3, 5, table.Uniform, 116)
	base := Query{Cond: core.Cond{0: 1}, Dims: []int{0, 1}}
	_, snap, err := e.Skyline(base, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	drill := stats.New()
	if _, _, err := e.DrillDown(snap, core.Cond{1: 2}, drill); err != nil {
		t.Fatal(err)
	}
	fresh := stats.New()
	if _, _, err := e.Skyline(Query{Cond: core.Cond{0: 1, 1: 2}, Dims: []int{0, 1}}, fresh); err != nil {
		t.Fatal(err)
	}
	if drill.Reads(stats.StructRTree) > fresh.Reads(stats.StructRTree) {
		t.Fatalf("drill-down read %d R-tree blocks, fresh query %d",
			drill.Reads(stats.StructRTree), fresh.Reads(stats.StructRTree))
	}
}

func TestRollUpMatchesFresh(t *testing.T) {
	tb, e := buildEngine(4000, 3, 4, table.Uniform, 117)
	base := Query{Cond: core.Cond{0: 1, 1: 2}, Dims: []int{0, 1}}
	_, snap, err := e.Skyline(base, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := e.RollUp(snap, []int{1}, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	want := bruteSkyline(tb, Query{Cond: core.Cond{0: 1}, Dims: []int{0, 1}})
	sameSkyline(t, got, want)
}

func TestDrillDownContradictionRejected(t *testing.T) {
	_, e := buildEngine(500, 2, 3, table.Uniform, 118)
	_, snap, err := e.Skyline(Query{Cond: core.Cond{0: 1}, Dims: []int{0, 1}}, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.DrillDown(snap, core.Cond{0: 2}, stats.New()); err == nil {
		t.Fatal("contradictory drill-down accepted")
	}
}

func TestEmptyPredicateCell(t *testing.T) {
	tb := table.MustNew(table.Schema{SelNames: []string{"a"}, SelCard: []int{5}, RankNames: []string{"x", "y"}})
	for i := 0; i < 200; i++ {
		tb.Append([]int32{int32(i % 2)}, []float64{float64(i%17) / 17, float64(i%13) / 13})
	}
	cube := sigcube.Build(tb, sigcube.Config{RTree: rtree.Config{Fanout: 8}})
	e := NewEngine(cube)
	got, _, err := e.Skyline(Query{Cond: core.Cond{0: 4}, Dims: []int{0, 1}}, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty cell produced %d skyline points", len(got))
	}
}

func TestValidation(t *testing.T) {
	_, e := buildEngine(100, 1, 2, table.Uniform, 119)
	if _, _, err := e.Skyline(Query{Dims: nil}, stats.New()); err == nil {
		t.Fatal("accepted empty dims")
	}
	if _, _, err := e.Skyline(Query{Dims: []int{9}}, stats.New()); err == nil {
		t.Fatal("accepted out-of-range dim")
	}
	if _, _, err := e.Skyline(Query{Dims: []int{0, 1}, Target: []float64{0.5}}, stats.New()); err == nil {
		t.Fatal("accepted mismatched target")
	}
}

func TestBooleanPruningReducesWork(t *testing.T) {
	_, e := buildEngine(20000, 1, 50, table.Uniform, 120)
	sel := stats.New()
	if _, _, err := e.Skyline(Query{Cond: core.Cond{0: 7}, Dims: []int{0, 1}}, sel); err != nil {
		t.Fatal(err)
	}
	all := stats.New()
	if _, _, err := e.Skyline(Query{Dims: []int{0, 1}}, all); err != nil {
		t.Fatal(err)
	}
	if sel.Pruned == 0 {
		t.Fatal("no boolean pruning recorded for selective predicate")
	}
}
