package dataset

import (
	"testing"

	"rankcube/internal/table"
)

func TestForestCoverProfile(t *testing.T) {
	tb := ForestCover(3000, 1)
	s := tb.Schema()
	if s.S() != 12 {
		t.Fatalf("S = %d", s.S())
	}
	for i, c := range ForestCoverCards {
		if s.SelCard[i] != c {
			t.Fatalf("card[%d] = %d, want %d", i, s.SelCard[i], c)
		}
	}
	if s.R() != 3 {
		t.Fatalf("R = %d", s.R())
	}
	// Values in range; binary dims mostly 0 (sparse flags).
	ones := 0
	for i := 0; i < tb.Len(); i++ {
		tid := table.TID(i)
		for d := 0; d < 12; d++ {
			v := tb.Sel(tid, d)
			if v < 0 || int(v) >= s.SelCard[d] {
				t.Fatalf("sel value %d out of range on dim %d", v, d)
			}
		}
		if tb.Sel(tid, 5) == 1 {
			ones++
		}
	}
	if frac := float64(ones) / float64(tb.Len()); frac > 0.3 {
		t.Fatalf("binary flag density %.2f, expected sparse", frac)
	}
}

func TestForestCoverDeterministic(t *testing.T) {
	a := ForestCover(500, 7)
	b := ForestCover(500, 7)
	for i := 0; i < 500; i++ {
		if a.Rank(table.TID(i), 0) != b.Rank(table.TID(i), 0) {
			t.Fatal("not deterministic")
		}
	}
}

func TestForestCoverCorrelated(t *testing.T) {
	tb := ForestCover(20000, 2)
	// The latent factor should induce positive correlation between the
	// quantitative columns.
	var sx, sy, sxy, sxx, syy float64
	n := float64(tb.Len())
	for i := 0; i < tb.Len(); i++ {
		x := tb.Rank(table.TID(i), 0)
		y := tb.Rank(table.TID(i), 1)
		sx += x
		sy += y
		sxy += x * y
		sxx += x * x
		syy += y * y
	}
	cov := sxy/n - sx/n*sy/n
	if cov <= 0 {
		t.Fatalf("covariance %v not positive", cov)
	}
}

func TestForestCoverWide(t *testing.T) {
	tb := ForestCoverWide(1000, 3)
	if tb.Schema().R() != 6 {
		t.Fatalf("R = %d", tb.Schema().R())
	}
	if tb.Len() != 1000 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestJoinPair(t *testing.T) {
	r1, r2, k1, k2 := JoinPair(1000, 2, 2, 5, 50, 9)
	if r1.Len() != 1000 || r2.Len() != 1000 {
		t.Fatal("wrong sizes")
	}
	if len(k1) != 1000 || len(k2) != 1000 {
		t.Fatal("wrong key lengths")
	}
	for _, k := range k1 {
		if k < 0 || k >= 50 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestSynthetic(t *testing.T) {
	tb := Synthetic(2000, 3, 2, 10, table.AntiCorrelated, 4)
	if tb.Len() != 2000 || tb.Schema().S() != 3 || tb.Schema().R() != 2 {
		t.Fatal("wrong shape")
	}
}
