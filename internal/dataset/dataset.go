// Package dataset builds the evaluation datasets of the thesis: the
// parameterized synthetic families of Tables 3.8/§4.4.1/§5.4.1 and a
// deterministic clone of the UCI Forest CoverType data with the same shape
// the thesis uses (§3.5.1): 12 selection dimensions with cardinalities
// 255, 207, 185, 67, 7, 2, 2, 2, 2, 2, 2, 2 and 3 quantitative ranking
// dimensions with cardinalities near 2k-6k, duplicated 5× to ~3.5M rows
// (scaled down by default for in-memory benchmarking).
package dataset

import (
	"math/rand"

	"rankcube/internal/table"
)

// ForestCoverCards are the selection-dimension cardinalities of the
// thesis' Forest CoverType configuration.
var ForestCoverCards = []int{255, 207, 185, 67, 7, 2, 2, 2, 2, 2, 2, 2}

// forestRankCards are the value counts of the three quantitative ranking
// attributes (thesis: 1989, 5787, 5827).
var forestRankCards = []int{1989, 5787, 5827}

// ForestCover synthesizes a CoverType-shaped relation with n tuples.
//
// The real data is unavailable offline; this clone reproduces the
// properties the experiments exploit — the cardinality profile of the
// selection dimensions (including the many binary soil-type columns, which
// drive boolean selectivity) and quantized, mildly correlated ranking
// attributes (terrain variables correlate in the original). Substitution
// documented in DESIGN.md.
func ForestCover(n int, seed int64) *table.Table {
	schema := table.Schema{
		SelNames: []string{
			"wilderness", "soil_group", "climate_zone", "geo_zone",
			"cover_class", "b1", "b2", "b3", "b4", "b5", "b6", "b7",
		},
		SelCard:   append([]int(nil), ForestCoverCards...),
		RankNames: []string{"elevation", "h_dist_road", "h_dist_fire"},
	}
	t := table.MustNew(schema)
	rng := rand.New(rand.NewSource(seed))
	sel := make([]int32, len(schema.SelCard))
	rank := make([]float64, 3)
	for i := 0; i < n; i++ {
		// Terrain latent factor correlates the quantitative columns, as in
		// the real data (distance measures grow with remoteness).
		latent := rng.Float64()
		for d, card := range schema.SelCard {
			if card == 2 {
				// Binary soil flags are sparse in the original: mostly 0.
				if rng.Float64() < 0.15 {
					sel[d] = 1
				} else {
					sel[d] = 0
				}
				continue
			}
			// Larger-cardinality columns skew toward low codes.
			v := int(rng.ExpFloat64() * float64(card) / 4)
			if v >= card {
				v = card - 1
			}
			sel[d] = int32(v)
		}
		for d := 0; d < 3; d++ {
			v := 0.55*latent + 0.45*rng.Float64()
			// Quantize to the attribute's cardinality as in the source data.
			steps := float64(forestRankCards[d])
			rank[d] = float64(int(v*steps)) / steps
		}
		t.Append(sel, rank)
	}
	return t
}

// ForestCoverWide is the 6-quantitative-attribute CoverType variation the
// thesis uses for index-merge experiments (§5.4.1: "1,162,024 data points
// with 6 selected attributes"). Selection dimensions are dropped; the six
// ranking dimensions keep the quantized, correlated character.
func ForestCoverWide(n int, seed int64) *table.Table {
	cards := []int{255, 207, 185, 1989, 5787, 5827}
	schema := table.Schema{
		SelNames:  []string{"dummy"},
		SelCard:   []int{2},
		RankNames: []string{"a1", "a2", "a3", "a4", "a5", "a6"},
	}
	t := table.MustNew(schema)
	rng := rand.New(rand.NewSource(seed))
	rank := make([]float64, 6)
	for i := 0; i < n; i++ {
		latent := rng.Float64()
		for d := 0; d < 6; d++ {
			v := 0.5*latent + 0.5*rng.Float64()
			steps := float64(cards[d])
			rank[d] = float64(int(v*steps)) / steps
		}
		t.Append([]int32{int32(i % 2)}, rank)
	}
	return t
}

// Synthetic is a convenience wrapper over table.Generate matching the
// thesis' default synthetic configuration (Table 3.8): T tuples, S
// selection dimensions of cardinality C, R ranking dimensions, uniform
// unless a distribution is given.
func Synthetic(T, S, R, C int, dist table.Distribution, seed int64) *table.Table {
	return table.Generate(table.GenSpec{T: T, S: S, R: R, Card: C, Dist: dist, Seed: seed})
}

// JoinPair builds two relations with a shared join-key domain for SPJR
// experiments (§6.4): each relation has S selection dims of cardinality C
// and R ranking dims; join keys are uniform over keyCard values.
func JoinPair(T, S, R, C, keyCard int, seed int64) (r1, r2 *table.Table, k1, k2 []int32) {
	r1 = table.Generate(table.GenSpec{T: T, S: S, R: R, Card: C, Seed: seed})
	r2 = table.Generate(table.GenSpec{T: T, S: S, R: R, Card: C, Seed: seed + 1})
	rng := rand.New(rand.NewSource(seed + 2))
	k1 = make([]int32, T)
	k2 = make([]int32, T)
	for i := 0; i < T; i++ {
		k1[i] = int32(rng.Intn(keyCard))
		k2[i] = int32(rng.Intn(keyCard))
	}
	return r1, r2, k1, k2
}
