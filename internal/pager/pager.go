// Package pager simulates block-oriented secondary storage.
//
// The thesis evaluates every structure (cuboids, base-block tables, B+-trees,
// R-trees, signatures) in terms of block-level access with a 4 KB page size.
// This package provides an in-memory page store whose reads are counted
// through stats.Counters, plus an optional LRU buffer pool so that repeated
// access to a hot page within one query is not double counted — matching the
// buffering behaviour the thesis assumes ("we buffered the bid and tid lists
// retrieved so far", §3.3.2).
//
// Pages carry payload checksums, verified on every read: a corrupt page
// aborts the query with a typed errs.ErrPageCorrupt and quarantines its
// store. A quarantined store fails fast with errs.ErrStructureUnavailable
// until it is repaired: VerifyPages re-checks every checksum, Reset lets the
// owning structure re-materialize its content, EnterHalfOpen re-admits reads
// tentatively, and CloseCircuit returns the store to full service once a
// probe query has succeeded (the half-open circuit-breaker lifecycle). A
// pluggable FaultInjector makes corruption, transient read errors (retried
// with exponential backoff), and added latency deterministically testable.
//
// A Store is safe for concurrent readers; page-table growth (Append,
// Overwrite, Resize, Reset) and the mutable configuration (SetFaultInjector,
// SetRetryPolicy) are serialized internally, so configuration may change
// while queries run. Structure-level consistency between a store's pages and
// the in-memory maps that index them is the owning engine's responsibility
// (the cubes hold a reader/writer lock across whole operations).
package pager

import (
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"rankcube/internal/errs"
	"rankcube/internal/obs"
	"rankcube/internal/stats"
)

// PageSize is the default page size in bytes used throughout the repository,
// matching the thesis experimental setting (§4.4.1).
const PageSize = 4096

// PageID identifies a page within one Store.
type PageID int32

// Invalid is the zero-value "no page" sentinel.
const Invalid PageID = -1

// State is a store's position in the quarantine lifecycle.
type State int32

// Quarantine lifecycle states.
const (
	// StateHealthy: the store serves reads normally.
	StateHealthy State = iota
	// StateQuarantined: a checksum failure took the store out of service;
	// every access fails fast with errs.ErrStructureUnavailable until a
	// repair moves it to half-open.
	StateQuarantined
	// StateHalfOpen: the store was repaired and tentatively serves reads
	// again, but has not yet proven itself: a successful probe query moves
	// it to healthy (CloseCircuit), another checksum failure trips it
	// straight back to quarantined.
	StateHalfOpen
)

// String names the state for health reports.
func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateQuarantined:
		return "quarantined"
	case StateHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Store is an append-only collection of pages belonging to one storage
// structure. Page payloads are opaque to the pager; structures typically
// store encoded bytes or, for structures whose size experiments do not need
// byte-exact encoding, record only a logical payload size.
type Store struct {
	kind     stats.Structure
	pageSize int

	// mu guards the page tables: concurrent queries read pages while
	// maintenance appends, overwrites, or resets them.
	mu    sync.RWMutex
	pages [][]byte
	sizes []int
	// sums holds the crc32c checksum of each payload page (0 for
	// payload-free logical pages, which have nothing to verify).
	sums []uint32

	// cfgMu guards the mutable read-path configuration so injectors and
	// retry schedules may be swapped while queries run (the chaos harness
	// does exactly that).
	cfgMu       sync.RWMutex
	injector    FaultInjector
	retryLimit  int
	backoffBase time.Duration

	// state is the quarantine lifecycle position; atomic because every
	// read consults it on its fail-fast path.
	state atomic.Int32
}

// Retry/backoff defaults for transient read faults. The backoff is tiny:
// the pager simulates storage, so the schedule's shape (bounded attempts,
// exponential spacing) matters more than its absolute duration.
const (
	DefaultRetryLimit  = 3
	DefaultBackoffBase = 50 * time.Microsecond
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// NewStore returns an empty store labelled with the structure kind used for
// read accounting.
func NewStore(kind stats.Structure, pageSize int) *Store {
	if pageSize <= 0 {
		pageSize = PageSize
	}
	return &Store{kind: kind, pageSize: pageSize,
		retryLimit: DefaultRetryLimit, backoffBase: DefaultBackoffBase}
}

// SetFaultInjector attaches (or, with nil, removes) a fault injector. Safe
// to call while queries run; in-flight page accesses finish under the
// injector they started with.
func (s *Store) SetFaultInjector(inj FaultInjector) {
	s.cfgMu.Lock()
	s.injector = inj
	s.cfgMu.Unlock()
}

// SetRetryPolicy overrides the transient-fault retry schedule: up to limit
// retries, sleeping backoff<<attempt between them. A zero backoff disables
// sleeping (deterministic tests); a negative limit disables retrying. Safe
// to call while queries run.
func (s *Store) SetRetryPolicy(limit int, backoff time.Duration) {
	s.cfgMu.Lock()
	s.retryLimit = limit
	s.backoffBase = backoff
	s.cfgMu.Unlock()
}

// readConfig snapshots the mutable read-path configuration.
func (s *Store) readConfig() (FaultInjector, int, time.Duration) {
	s.cfgMu.RLock()
	inj, limit, backoff := s.injector, s.retryLimit, s.backoffBase
	s.cfgMu.RUnlock()
	return inj, limit, backoff
}

// State reports the store's position in the quarantine lifecycle.
func (s *Store) State() State { return State(s.state.Load()) }

// Quarantined reports whether the store has been taken out of service
// after a checksum failure (half-open stores serve reads and report false).
func (s *Store) Quarantined() bool { return s.State() == StateQuarantined }

// trip moves the store to quarantined from any state, recording the event
// once per transition (re-tripping an already-quarantined store is a no-op,
// so the quarantine counter counts outages, not corrupt reads).
func (s *Store) trip() {
	for {
		old := s.state.Load()
		if State(old) == StateQuarantined {
			return
		}
		if s.state.CompareAndSwap(old, int32(StateQuarantined)) {
			obs.Default().RecordQuarantine(s.kind)
			return
		}
	}
}

// EnterHalfOpen moves a quarantined store to half-open after repair: reads
// are admitted again, but full service awaits a successful probe
// (CloseCircuit). It reports whether the transition happened (false when
// the store was not quarantined).
func (s *Store) EnterHalfOpen() bool {
	return s.state.CompareAndSwap(int32(StateQuarantined), int32(StateHalfOpen))
}

// CloseCircuit returns a half-open store to full service after a probe
// query succeeded, recording the recovery in the metrics registry. It
// reports whether the transition happened.
func (s *Store) CloseCircuit() bool {
	if !s.state.CompareAndSwap(int32(StateHalfOpen), int32(StateHealthy)) {
		return false
	}
	obs.Default().RecordQuarantineClear(s.kind)
	return true
}

// Requarantine trips the store back to quarantined from any state — the
// repair path calls it when a half-open store fails its probe query.
func (s *Store) Requarantine() { s.trip() }

// ClearQuarantine forces a store back to full service from any state,
// bypassing the half-open probation — the big hammer for operators who have
// repaired storage out of band. Repair/EnterHalfOpen/CloseCircuit is the
// governed path. The recovery is recorded so quarantine and clear counts
// reconcile.
func (s *Store) ClearQuarantine() {
	old := State(s.state.Swap(int32(StateHealthy)))
	if old != StateHealthy {
		obs.Default().RecordQuarantineClear(s.kind)
	}
}

// Kind reports the structure label of this store.
func (s *Store) Kind() stats.Structure { return s.kind }

// PageSize reports the configured page size in bytes.
func (s *Store) PageSize() int { return s.pageSize }

// Append writes data as a new page and returns its id. Payloads larger than
// the page size are permitted; they count as multiple blocks on read
// (ceil(len/pageSize)), modelling multi-page overflow records.
func (s *Store) Append(data []byte) PageID {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := PageID(len(s.pages))
	s.pages = append(s.pages, data)
	s.sizes = append(s.sizes, len(data))
	s.sums = append(s.sums, crc32.Checksum(data, crcTable))
	return id
}

// AppendLogical records a page holding size logical bytes without storing a
// payload. Used by structures whose contents live in native Go form but whose
// block I/O and footprint must still be accounted.
func (s *Store) AppendLogical(size int) PageID {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := PageID(len(s.pages))
	s.pages = append(s.pages, nil)
	s.sizes = append(s.sizes, size)
	s.sums = append(s.sums, 0)
	return id
}

// Overwrite replaces the payload of an existing page (incremental
// maintenance rewrites signature pages in place).
func (s *Store) Overwrite(id PageID, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pages[id] = data
	s.sizes[id] = len(data)
	s.sums[id] = crc32.Checksum(data, crcTable)
}

// Resize updates the logical size of a payload-free page (cells grow under
// incremental maintenance).
func (s *Store) Resize(id PageID, size int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sizes[id] = size
}

// Reset truncates the store to zero pages while keeping its identity —
// kind, page size, fault injector, retry policy, and quarantine state all
// survive. The repair path uses it: the owning structure resets the store
// and re-materializes its content from the base data, so every reference to
// the store (fault injection attachments, health monitors) stays valid.
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pages = s.pages[:0]
	s.sizes = s.sizes[:0]
	s.sums = s.sums[:0]
}

// VerifyPages re-verifies every payload page's checksum — the first step of
// quarantine repair — and returns the ids that fail. The attached fault
// injector participates (persistent corruption stays visible to
// verification); transient read faults do not (verification models a
// maintenance pass with unbounded patience, not a query). No reads are
// charged and the quarantine fail-fast does not apply: this is exactly the
// path that runs while the store is out of service.
func (s *Store) VerifyPages() []PageID {
	inj, _, _ := s.readConfig()
	s.mu.RLock()
	defer s.mu.RUnlock()
	var bad []PageID
	for i, data := range s.pages {
		if data == nil {
			continue
		}
		id := PageID(i)
		if inj != nil {
			data = inj.MutatePayload(id, data)
		}
		if crc32.Checksum(data, crcTable) != s.sums[i] {
			bad = append(bad, id)
		}
	}
	return bad
}

// Read fetches the payload of page id, charging the read to c. The
// payload's checksum is verified; a mismatch (bit rot, or an injected
// corruption) quarantines the store and aborts the query with a typed
// errs.ErrPageCorrupt.
func (s *Store) Read(id PageID, c *stats.Counters) []byte {
	inj := s.access(id, c)
	s.mu.RLock()
	data, sum := s.pages[id], s.sums[id]
	s.mu.RUnlock()
	if inj != nil && data != nil {
		data = inj.MutatePayload(id, data)
	}
	if data != nil && crc32.Checksum(data, crcTable) != sum {
		s.trip()
		errs.Abortf(errs.ErrPageCorrupt, "pager: %s page %d checksum mismatch", s.kind, id)
	}
	return data
}

// Touch charges a read of page id without returning a payload (for
// logical-size pages). Fault injection and quarantine apply; checksum
// verification does not (there is no payload to verify).
func (s *Store) Touch(id PageID, c *stats.Counters) {
	s.access(id, c)
}

// access runs the physical read protocol for one page: fail fast when the
// store is quarantined, ride out injected transient faults with bounded
// exponential backoff, then charge the blocks to c (which consults the
// query governor — the block-access granularity at which cancellation and
// budgets are enforced). It returns the injector snapshot so the caller's
// payload mutation sees the same injector the access rode out.
func (s *Store) access(id PageID, c *stats.Counters) FaultInjector {
	if s.Quarantined() {
		errs.Abortf(errs.ErrStructureUnavailable, "pager: %s store quarantined", s.kind)
	}
	inj, retryLimit, backoffBase := s.readConfig()
	if inj != nil {
		for attempt := 0; ; attempt++ {
			err := inj.ReadAttempt(id, attempt)
			if err == nil {
				break
			}
			if attempt >= retryLimit {
				errs.Abortf(errs.ErrReadFailed, "pager: %s page %d failed after %d attempts: %v",
					s.kind, id, attempt+1, err)
			}
			c.AddRetry()
			if backoffBase > 0 {
				time.Sleep(backoffBase << uint(attempt))
			}
		}
	}
	c.Read(s.kind, s.blocksOf(id))
	return inj
}

// ReadRaw returns a page payload without charging any read — for size
// accounting and maintenance bookkeeping, not query paths.
func (s *Store) ReadRaw(id PageID) []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pages[id]
}

// NumPages reports how many pages have been appended.
func (s *Store) NumPages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pages)
}

// Bytes reports the total logical bytes stored.
func (s *Store) Bytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var t int64
	for _, sz := range s.sizes {
		t += int64(sz)
	}
	return t
}

// Blocks reports the total number of disk blocks the store occupies.
func (s *Store) Blocks() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var t int64
	for id := range s.pages {
		t += s.blocksOfLocked(PageID(id))
	}
	return t
}

func (s *Store) blocksOf(id PageID) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.blocksOfLocked(id)
}

// blocksOfLocked computes the block span of page id; the caller holds mu.
func (s *Store) blocksOfLocked(id PageID) int64 {
	sz := s.sizes[id]
	if sz <= 0 {
		return 1
	}
	return int64((sz + s.pageSize - 1) / s.pageSize)
}

// Buffer is a per-query buffer pool: the first access to a page is charged,
// repeats are free. The thesis' query algorithms buffer retrieved blocks for
// the duration of one query. A Buffer belongs to one query on one goroutine,
// like the stats.Counters it charges.
type Buffer struct {
	store *Store
	seen  map[PageID][]byte
}

// NewBuffer wraps store with a fresh (empty) per-query buffer.
func NewBuffer(store *Store) *Buffer {
	return &Buffer{store: store, seen: make(map[PageID][]byte)}
}

// Read fetches a page, charging only the first access to c. Repeat reads
// serve the buffered payload, so a page the query already verified cannot
// change under it mid-query even if maintenance overwrites the store.
func (b *Buffer) Read(id PageID, c *stats.Counters) []byte {
	if data, ok := b.seen[id]; ok {
		return data
	}
	data := b.store.Read(id, c)
	b.seen[id] = data
	return data
}

// Touch charges the first access of page id to c.
func (b *Buffer) Touch(id PageID, c *stats.Counters) {
	if _, ok := b.seen[id]; !ok {
		b.seen[id] = nil
		b.store.Touch(id, c)
	}
}

// Hits reports how many distinct pages have been accessed through the buffer.
func (b *Buffer) Hits() int { return len(b.seen) }

// Seen reports whether page id has already been accessed through the buffer.
func (b *Buffer) Seen(id PageID) bool {
	_, ok := b.seen[id]
	return ok
}
