// Package pager simulates block-oriented secondary storage.
//
// The thesis evaluates every structure (cuboids, base-block tables, B+-trees,
// R-trees, signatures) in terms of block-level access with a 4 KB page size.
// This package provides an in-memory page store whose reads are counted
// through stats.Counters, plus an optional LRU buffer pool so that repeated
// access to a hot page within one query is not double counted — matching the
// buffering behaviour the thesis assumes ("we buffered the bid and tid lists
// retrieved so far", §3.3.2).
// Pages carry payload checksums, verified on every read: a corrupt page
// aborts the query with a typed errs.ErrPageCorrupt and quarantines its
// store (subsequent access fails fast with errs.ErrStructureUnavailable
// until ClearQuarantine). A pluggable FaultInjector makes corruption,
// transient read errors (retried with exponential backoff), and added
// latency deterministically testable.
package pager

import (
	"hash/crc32"
	"sync/atomic"
	"time"

	"rankcube/internal/errs"
	"rankcube/internal/obs"
	"rankcube/internal/stats"
)

// PageSize is the default page size in bytes used throughout the repository,
// matching the thesis experimental setting (§4.4.1).
const PageSize = 4096

// PageID identifies a page within one Store.
type PageID int32

// Invalid is the zero-value "no page" sentinel.
const Invalid PageID = -1

// Store is an append-only collection of pages belonging to one storage
// structure. Page payloads are opaque to the pager; structures typically
// store encoded bytes or, for structures whose size experiments do not need
// byte-exact encoding, record only a logical payload size.
type Store struct {
	kind     stats.Structure
	pageSize int
	pages    [][]byte
	sizes    []int
	// sums holds the crc32c checksum of each payload page (0 for
	// payload-free logical pages, which have nothing to verify).
	sums []uint32

	// injector, when set, is consulted on every read (faults are opt-in;
	// attach before serving queries — the field itself is not synchronized).
	injector FaultInjector
	// retryLimit bounds retries of transient read faults; backoffBase is
	// the first retry's sleep, doubled per subsequent attempt.
	retryLimit  int
	backoffBase time.Duration
	// quarantined is set on the first checksum failure; all later access
	// fails fast with errs.ErrStructureUnavailable. Atomic because queries
	// on the same store may run on concurrent goroutines.
	quarantined atomic.Bool
}

// Retry/backoff defaults for transient read faults. The backoff is tiny:
// the pager simulates storage, so the schedule's shape (bounded attempts,
// exponential spacing) matters more than its absolute duration.
const (
	DefaultRetryLimit  = 3
	DefaultBackoffBase = 50 * time.Microsecond
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// NewStore returns an empty store labelled with the structure kind used for
// read accounting.
func NewStore(kind stats.Structure, pageSize int) *Store {
	if pageSize <= 0 {
		pageSize = PageSize
	}
	return &Store{kind: kind, pageSize: pageSize,
		retryLimit: DefaultRetryLimit, backoffBase: DefaultBackoffBase}
}

// SetFaultInjector attaches (or, with nil, removes) a fault injector.
// Attach before the store serves queries; the read path assumes the field
// is stable while queries run.
func (s *Store) SetFaultInjector(inj FaultInjector) { s.injector = inj }

// SetRetryPolicy overrides the transient-fault retry schedule: up to limit
// retries, sleeping backoff<<attempt between them. A zero backoff disables
// sleeping (deterministic tests); a negative limit disables retrying.
func (s *Store) SetRetryPolicy(limit int, backoff time.Duration) {
	s.retryLimit = limit
	s.backoffBase = backoff
}

// Quarantined reports whether the store has been taken out of service
// after a checksum failure.
func (s *Store) Quarantined() bool { return s.quarantined.Load() }

// ClearQuarantine returns a quarantined store to service (after repair or
// rebuild).
func (s *Store) ClearQuarantine() { s.quarantined.Store(false) }

// Kind reports the structure label of this store.
func (s *Store) Kind() stats.Structure { return s.kind }

// PageSize reports the configured page size in bytes.
func (s *Store) PageSize() int { return s.pageSize }

// Append writes data as a new page and returns its id. Payloads larger than
// the page size are permitted; they count as multiple blocks on read
// (ceil(len/pageSize)), modelling multi-page overflow records.
func (s *Store) Append(data []byte) PageID {
	id := PageID(len(s.pages))
	s.pages = append(s.pages, data)
	s.sizes = append(s.sizes, len(data))
	s.sums = append(s.sums, crc32.Checksum(data, crcTable))
	return id
}

// AppendLogical records a page holding size logical bytes without storing a
// payload. Used by structures whose contents live in native Go form but whose
// block I/O and footprint must still be accounted.
func (s *Store) AppendLogical(size int) PageID {
	id := PageID(len(s.pages))
	s.pages = append(s.pages, nil)
	s.sizes = append(s.sizes, size)
	s.sums = append(s.sums, 0)
	return id
}

// Overwrite replaces the payload of an existing page (incremental
// maintenance rewrites signature pages in place).
func (s *Store) Overwrite(id PageID, data []byte) {
	s.pages[id] = data
	s.sizes[id] = len(data)
	s.sums[id] = crc32.Checksum(data, crcTable)
}

// Resize updates the logical size of a payload-free page (cells grow under
// incremental maintenance).
func (s *Store) Resize(id PageID, size int) {
	s.sizes[id] = size
}

// Read fetches the payload of page id, charging the read to c. The
// payload's checksum is verified; a mismatch (bit rot, or an injected
// corruption) quarantines the store and aborts the query with a typed
// errs.ErrPageCorrupt.
func (s *Store) Read(id PageID, c *stats.Counters) []byte {
	s.access(id, c)
	data := s.pages[id]
	if inj := s.injector; inj != nil && data != nil {
		data = inj.MutatePayload(id, data)
	}
	if data != nil && crc32.Checksum(data, crcTable) != s.sums[id] {
		s.quarantined.Store(true)
		obs.Default().RecordQuarantine(s.kind)
		errs.Abortf(errs.ErrPageCorrupt, "pager: %s page %d checksum mismatch", s.kind, id)
	}
	return data
}

// Touch charges a read of page id without returning a payload (for
// logical-size pages). Fault injection and quarantine apply; checksum
// verification does not (there is no payload to verify).
func (s *Store) Touch(id PageID, c *stats.Counters) {
	s.access(id, c)
}

// access runs the physical read protocol for one page: fail fast when the
// store is quarantined, ride out injected transient faults with bounded
// exponential backoff, then charge the blocks to c (which consults the
// query governor — the block-access granularity at which cancellation and
// budgets are enforced).
func (s *Store) access(id PageID, c *stats.Counters) {
	if s.quarantined.Load() {
		errs.Abortf(errs.ErrStructureUnavailable, "pager: %s store quarantined", s.kind)
	}
	if inj := s.injector; inj != nil {
		for attempt := 0; ; attempt++ {
			err := inj.ReadAttempt(id, attempt)
			if err == nil {
				break
			}
			if attempt >= s.retryLimit {
				errs.Abortf(errs.ErrReadFailed, "pager: %s page %d failed after %d attempts: %v",
					s.kind, id, attempt+1, err)
			}
			c.AddRetry()
			if s.backoffBase > 0 {
				time.Sleep(s.backoffBase << uint(attempt))
			}
		}
	}
	c.Read(s.kind, s.blocksOf(id))
}

// ReadRaw returns a page payload without charging any read — for size
// accounting and maintenance bookkeeping, not query paths.
func (s *Store) ReadRaw(id PageID) []byte { return s.pages[id] }

// NumPages reports how many pages have been appended.
func (s *Store) NumPages() int { return len(s.pages) }

// Bytes reports the total logical bytes stored.
func (s *Store) Bytes() int64 {
	var t int64
	for _, sz := range s.sizes {
		t += int64(sz)
	}
	return t
}

// Blocks reports the total number of disk blocks the store occupies.
func (s *Store) Blocks() int64 {
	var t int64
	for id := range s.pages {
		t += s.blocksOf(PageID(id))
	}
	return t
}

func (s *Store) blocksOf(id PageID) int64 {
	sz := s.sizes[id]
	if sz <= 0 {
		return 1
	}
	return int64((sz + s.pageSize - 1) / s.pageSize)
}

// Buffer is a per-query buffer pool: the first access to a page is charged,
// repeats are free. The thesis' query algorithms buffer retrieved blocks for
// the duration of one query.
type Buffer struct {
	store *Store
	seen  map[PageID]struct{}
}

// NewBuffer wraps store with a fresh (empty) per-query buffer.
func NewBuffer(store *Store) *Buffer {
	return &Buffer{store: store, seen: make(map[PageID]struct{})}
}

// Read fetches a page, charging only the first access to c.
func (b *Buffer) Read(id PageID, c *stats.Counters) []byte {
	if _, ok := b.seen[id]; !ok {
		b.seen[id] = struct{}{}
		return b.store.Read(id, c)
	}
	return b.store.pages[id]
}

// Touch charges the first access of page id to c.
func (b *Buffer) Touch(id PageID, c *stats.Counters) {
	if _, ok := b.seen[id]; !ok {
		b.seen[id] = struct{}{}
		b.store.Touch(id, c)
	}
}

// Hits reports how many distinct pages have been accessed through the buffer.
func (b *Buffer) Hits() int { return len(b.seen) }

// Seen reports whether page id has already been accessed through the buffer.
func (b *Buffer) Seen(id PageID) bool {
	_, ok := b.seen[id]
	return ok
}
