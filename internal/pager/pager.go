// Package pager simulates block-oriented secondary storage.
//
// The thesis evaluates every structure (cuboids, base-block tables, B+-trees,
// R-trees, signatures) in terms of block-level access with a 4 KB page size.
// This package provides an in-memory page store whose reads are counted
// through stats.Counters, plus an optional LRU buffer pool so that repeated
// access to a hot page within one query is not double counted — matching the
// buffering behaviour the thesis assumes ("we buffered the bid and tid lists
// retrieved so far", §3.3.2).
package pager

import "rankcube/internal/stats"

// PageSize is the default page size in bytes used throughout the repository,
// matching the thesis experimental setting (§4.4.1).
const PageSize = 4096

// PageID identifies a page within one Store.
type PageID int32

// Invalid is the zero-value "no page" sentinel.
const Invalid PageID = -1

// Store is an append-only collection of pages belonging to one storage
// structure. Page payloads are opaque to the pager; structures typically
// store encoded bytes or, for structures whose size experiments do not need
// byte-exact encoding, record only a logical payload size.
type Store struct {
	kind     stats.Structure
	pageSize int
	pages    [][]byte
	sizes    []int
}

// NewStore returns an empty store labelled with the structure kind used for
// read accounting.
func NewStore(kind stats.Structure, pageSize int) *Store {
	if pageSize <= 0 {
		pageSize = PageSize
	}
	return &Store{kind: kind, pageSize: pageSize}
}

// Kind reports the structure label of this store.
func (s *Store) Kind() stats.Structure { return s.kind }

// PageSize reports the configured page size in bytes.
func (s *Store) PageSize() int { return s.pageSize }

// Append writes data as a new page and returns its id. Payloads larger than
// the page size are permitted; they count as multiple blocks on read
// (ceil(len/pageSize)), modelling multi-page overflow records.
func (s *Store) Append(data []byte) PageID {
	id := PageID(len(s.pages))
	s.pages = append(s.pages, data)
	s.sizes = append(s.sizes, len(data))
	return id
}

// AppendLogical records a page holding size logical bytes without storing a
// payload. Used by structures whose contents live in native Go form but whose
// block I/O and footprint must still be accounted.
func (s *Store) AppendLogical(size int) PageID {
	id := PageID(len(s.pages))
	s.pages = append(s.pages, nil)
	s.sizes = append(s.sizes, size)
	return id
}

// Overwrite replaces the payload of an existing page (incremental
// maintenance rewrites signature pages in place).
func (s *Store) Overwrite(id PageID, data []byte) {
	s.pages[id] = data
	s.sizes[id] = len(data)
}

// Resize updates the logical size of a payload-free page (cells grow under
// incremental maintenance).
func (s *Store) Resize(id PageID, size int) {
	s.sizes[id] = size
}

// Read fetches the payload of page id, charging the read to c.
func (s *Store) Read(id PageID, c *stats.Counters) []byte {
	c.Read(s.kind, s.blocksOf(id))
	return s.pages[id]
}

// Touch charges a read of page id without returning a payload (for
// logical-size pages).
func (s *Store) Touch(id PageID, c *stats.Counters) {
	c.Read(s.kind, s.blocksOf(id))
}

// ReadRaw returns a page payload without charging any read — for size
// accounting and maintenance bookkeeping, not query paths.
func (s *Store) ReadRaw(id PageID) []byte { return s.pages[id] }

// NumPages reports how many pages have been appended.
func (s *Store) NumPages() int { return len(s.pages) }

// Bytes reports the total logical bytes stored.
func (s *Store) Bytes() int64 {
	var t int64
	for _, sz := range s.sizes {
		t += int64(sz)
	}
	return t
}

// Blocks reports the total number of disk blocks the store occupies.
func (s *Store) Blocks() int64 {
	var t int64
	for id := range s.pages {
		t += s.blocksOf(PageID(id))
	}
	return t
}

func (s *Store) blocksOf(id PageID) int64 {
	sz := s.sizes[id]
	if sz <= 0 {
		return 1
	}
	return int64((sz + s.pageSize - 1) / s.pageSize)
}

// Buffer is a per-query buffer pool: the first access to a page is charged,
// repeats are free. The thesis' query algorithms buffer retrieved blocks for
// the duration of one query.
type Buffer struct {
	store *Store
	seen  map[PageID]struct{}
}

// NewBuffer wraps store with a fresh (empty) per-query buffer.
func NewBuffer(store *Store) *Buffer {
	return &Buffer{store: store, seen: make(map[PageID]struct{})}
}

// Read fetches a page, charging only the first access to c.
func (b *Buffer) Read(id PageID, c *stats.Counters) []byte {
	if _, ok := b.seen[id]; !ok {
		b.seen[id] = struct{}{}
		return b.store.Read(id, c)
	}
	return b.store.pages[id]
}

// Touch charges the first access of page id to c.
func (b *Buffer) Touch(id PageID, c *stats.Counters) {
	if _, ok := b.seen[id]; !ok {
		b.seen[id] = struct{}{}
		b.store.Touch(id, c)
	}
}

// Hits reports how many distinct pages have been accessed through the buffer.
func (b *Buffer) Hits() int { return len(b.seen) }

// Seen reports whether page id has already been accessed through the buffer.
func (b *Buffer) Seen(id PageID) bool {
	_, ok := b.seen[id]
	return ok
}
