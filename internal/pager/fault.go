package pager

import "time"

// FaultInjector injects deterministic storage faults into a Store's read
// path so the robustness layer is testable without real disk failures.
// Implementations must be safe for concurrent calls when queries run on
// multiple goroutines; the stock ScriptedFaults qualifies as long as its
// configuration is not mutated while attached.
type FaultInjector interface {
	// ReadAttempt is consulted before each physical read attempt of a page
	// (attempt starts at 0 and increments across retries of one access). A
	// non-nil error fails the attempt; the store retries with exponential
	// backoff up to its retry limit, then aborts the query with
	// errs.ErrReadFailed.
	ReadAttempt(id PageID, attempt int) error
	// MutatePayload may return a corrupted variant of a page payload to
	// deliver in place of the stored bytes (it must not modify data in
	// place). Checksum verification decides whether the mutation is caught
	// — which is exactly what corruption tests assert.
	MutatePayload(id PageID, data []byte) []byte
}

// ScriptedFaults is a deterministic FaultInjector driven by per-page
// scripts. The zero value injects nothing.
type ScriptedFaults struct {
	// FailFirst[id] fails the first n attempts of every access to page id
	// with a transient error; an access recovers on attempt n. Values
	// above the store's retry limit make the page permanently unreadable.
	FailFirst map[PageID]int
	// Corrupt marks pages whose payloads are delivered with a flipped
	// byte, so checksum verification rejects them.
	Corrupt map[PageID]bool
	// CorruptAll corrupts every payload page (whole-structure rot).
	CorruptAll bool
	// Latency is added to every read attempt, modelling a slow device.
	Latency time.Duration
	// OnRead, when set, observes every attempt before any scripted fault
	// applies. Tests use it to trigger external events (e.g. canceling a
	// context) at an exact read count.
	OnRead func(id PageID, attempt int)
}

// transientError is the error scripted transient faults fail with.
type transientError struct{}

func (transientError) Error() string { return "injected transient read fault" }

// ReadAttempt implements FaultInjector.
func (f *ScriptedFaults) ReadAttempt(id PageID, attempt int) error {
	if f.OnRead != nil {
		f.OnRead(id, attempt)
	}
	if f.Latency > 0 {
		time.Sleep(f.Latency)
	}
	if attempt < f.FailFirst[id] {
		return transientError{}
	}
	return nil
}

// MutatePayload implements FaultInjector.
func (f *ScriptedFaults) MutatePayload(id PageID, data []byte) []byte {
	if len(data) == 0 || (!f.CorruptAll && !f.Corrupt[id]) {
		return data
	}
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0xFF
	return bad
}
