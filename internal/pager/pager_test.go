package pager

import (
	"testing"

	"rankcube/internal/stats"
)

func TestStoreAppendRead(t *testing.T) {
	s := NewStore(stats.StructCube, 64)
	id := s.Append([]byte("hello"))
	ctr := stats.New()
	if got := string(s.Read(id, ctr)); got != "hello" {
		t.Fatalf("Read = %q", got)
	}
	if ctr.Reads(stats.StructCube) != 1 {
		t.Fatalf("reads = %d", ctr.Reads(stats.StructCube))
	}
	if s.NumPages() != 1 || s.Bytes() != 5 {
		t.Fatalf("NumPages=%d Bytes=%d", s.NumPages(), s.Bytes())
	}
}

func TestMultiBlockCharge(t *testing.T) {
	s := NewStore(stats.StructCube, 64)
	id := s.AppendLogical(200) // 200 bytes over 64-byte pages = 4 blocks
	ctr := stats.New()
	s.Touch(id, ctr)
	if got := ctr.Reads(stats.StructCube); got != 4 {
		t.Fatalf("blocks charged = %d, want 4", got)
	}
	if s.Blocks() != 4 {
		t.Fatalf("Blocks = %d", s.Blocks())
	}
}

func TestZeroSizePageChargesOne(t *testing.T) {
	s := NewStore(stats.StructCube, 64)
	id := s.AppendLogical(0)
	ctr := stats.New()
	s.Touch(id, ctr)
	if ctr.Reads(stats.StructCube) != 1 {
		t.Fatalf("zero-size page charged %d", ctr.Reads(stats.StructCube))
	}
}

func TestBufferDeduplicates(t *testing.T) {
	s := NewStore(stats.StructRTree, 64)
	a := s.Append([]byte{1})
	b := s.Append([]byte{2})
	buf := NewBuffer(s)
	ctr := stats.New()
	buf.Read(a, ctr)
	buf.Read(a, ctr)
	buf.Touch(b, ctr)
	buf.Touch(b, ctr)
	if got := ctr.Reads(stats.StructRTree); got != 2 {
		t.Fatalf("reads = %d, want 2 (one per distinct page)", got)
	}
	if buf.Hits() != 2 {
		t.Fatalf("Hits = %d", buf.Hits())
	}
	if !buf.Seen(a) || buf.Seen(PageID(99)) {
		t.Fatal("Seen mismatch")
	}
}

func TestOverwrite(t *testing.T) {
	s := NewStore(stats.StructSignature, 64)
	id := s.Append([]byte("old"))
	s.Overwrite(id, []byte("newer"))
	if got := string(s.ReadRaw(id)); got != "newer" {
		t.Fatalf("ReadRaw = %q", got)
	}
	if s.Bytes() != 5 {
		t.Fatalf("Bytes = %d after overwrite", s.Bytes())
	}
}

func TestNilCountersSafe(t *testing.T) {
	s := NewStore(stats.StructTable, 64)
	id := s.Append([]byte("x"))
	s.Read(id, nil) // must not panic
	s.Touch(id, nil)
}
