package pager

import (
	"bytes"
	"errors"
	"testing"

	"rankcube/internal/errs"
	"rankcube/internal/stats"
)

func abortOf(t *testing.T, fn func()) error {
	t.Helper()
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				var ok bool
				if err, ok = errs.IsAbort(r); !ok {
					panic(r)
				}
			}
		}()
		fn()
	}()
	return err
}

func TestChecksumRoundTrip(t *testing.T) {
	s := NewStore(stats.StructSignature, 0)
	payload := []byte("signature bytes")
	id := s.Append(payload)
	ctr := stats.New()
	if got := s.Read(id, ctr); !bytes.Equal(got, payload) {
		t.Fatalf("read back %q, want %q", got, payload)
	}
	// Overwrite refreshes the checksum.
	s.Overwrite(id, []byte("rewritten"))
	if got := s.Read(id, ctr); !bytes.Equal(got, []byte("rewritten")) {
		t.Fatalf("read back %q after overwrite", got)
	}
}

func TestCorruptionDetectedAndQuarantines(t *testing.T) {
	s := NewStore(stats.StructSignature, 0)
	good := s.Append([]byte("healthy page"))
	bad := s.Append([]byte("doomed page"))
	s.SetFaultInjector(&ScriptedFaults{Corrupt: map[PageID]bool{bad: true}})
	ctr := stats.New()

	if err := abortOf(t, func() { s.Read(good, ctr) }); err != nil {
		t.Fatalf("healthy page aborted: %v", err)
	}
	err := abortOf(t, func() { s.Read(bad, ctr) })
	if !errors.Is(err, errs.ErrPageCorrupt) {
		t.Fatalf("err = %v, want ErrPageCorrupt", err)
	}
	if !s.Quarantined() {
		t.Fatal("store not quarantined after corruption")
	}
	// Even healthy pages now fail fast.
	err = abortOf(t, func() { s.Read(good, ctr) })
	if !errors.Is(err, errs.ErrStructureUnavailable) {
		t.Fatalf("err = %v, want ErrStructureUnavailable", err)
	}
	// Touch of a logical page fails fast too.
	lid := s.AppendLogical(64)
	err = abortOf(t, func() { s.Touch(lid, ctr) })
	if !errors.Is(err, errs.ErrStructureUnavailable) {
		t.Fatalf("touch err = %v, want ErrStructureUnavailable", err)
	}

	s.ClearQuarantine()
	s.SetFaultInjector(nil)
	if err := abortOf(t, func() { s.Read(bad, ctr) }); err != nil {
		t.Fatalf("repaired store still failing: %v", err)
	}
}

func TestTransientFaultRetriesThenSucceeds(t *testing.T) {
	s := NewStore(stats.StructRTree, 0)
	id := s.Append([]byte("flaky page"))
	s.SetRetryPolicy(DefaultRetryLimit, 0) // no sleeping in tests
	s.SetFaultInjector(&ScriptedFaults{FailFirst: map[PageID]int{id: 2}})
	ctr := stats.New()
	if err := abortOf(t, func() { s.Read(id, ctr) }); err != nil {
		t.Fatalf("recoverable fault aborted: %v", err)
	}
	if ctr.Retries != 2 {
		t.Fatalf("retries = %d, want 2", ctr.Retries)
	}
	if got := ctr.Reads(stats.StructRTree); got != 1 {
		t.Fatalf("reads = %d, want 1 (retries are not extra block reads)", got)
	}
}

func TestTransientFaultExhaustsRetries(t *testing.T) {
	s := NewStore(stats.StructRTree, 0)
	id := s.Append([]byte("dead page"))
	s.SetRetryPolicy(2, 0)
	s.SetFaultInjector(&ScriptedFaults{FailFirst: map[PageID]int{id: 100}})
	ctr := stats.New()
	err := abortOf(t, func() { s.Read(id, ctr) })
	if !errors.Is(err, errs.ErrReadFailed) {
		t.Fatalf("err = %v, want ErrReadFailed", err)
	}
	if ctr.Retries != 2 {
		t.Fatalf("retries = %d, want 2 (the retry limit)", ctr.Retries)
	}
	if ctr.TotalReads() != 0 {
		t.Fatalf("reads = %d, want 0 for a read that never succeeded", ctr.TotalReads())
	}
	if s.Quarantined() {
		t.Fatal("transient-fault exhaustion must not quarantine (no corruption evidence)")
	}
}

func TestOnReadHookObservesAttempts(t *testing.T) {
	s := NewStore(stats.StructBTree, 0)
	id := s.Append([]byte("watched page"))
	var seen []int
	s.SetRetryPolicy(3, 0)
	s.SetFaultInjector(&ScriptedFaults{
		FailFirst: map[PageID]int{id: 1},
		OnRead:    func(_ PageID, attempt int) { seen = append(seen, attempt) },
	})
	if err := abortOf(t, func() { s.Read(id, stats.New()) }); err != nil {
		t.Fatalf("unexpected abort: %v", err)
	}
	if len(seen) != 2 || seen[0] != 0 || seen[1] != 1 {
		t.Fatalf("observed attempts %v, want [0 1]", seen)
	}
}

func TestLogicalPagesHaveNoChecksum(t *testing.T) {
	s := NewStore(stats.StructBlockTab, 0)
	id := s.AppendLogical(4096 * 3)
	s.SetFaultInjector(&ScriptedFaults{CorruptAll: true})
	ctr := stats.New()
	if err := abortOf(t, func() { s.Touch(id, ctr) }); err != nil {
		t.Fatalf("logical page access aborted: %v", err)
	}
	if got := ctr.Reads(stats.StructBlockTab); got != 3 {
		t.Fatalf("reads = %d, want 3 blocks for a 3-page logical record", got)
	}
}
