package gridcube

import (
	"encoding/binary"

	"rankcube/internal/table"
)

// Cell-list compression (thesis §3.6.3): tids within a cell are stored
// ascending, so the list compresses well as varint-encoded deltas ("store a
// list of tid difference instead of the actual numbers... it may be
// possible to store them using less than the standard 32 bits"). Bids ride
// along as varints of their delta from the cell's pseudo-block base, which
// is small because a cell only contains blocks of one pseudo block.
//
// Compression changes the pages a cell occupies (fewer blocks to read per
// ranked query) at the price of decode work; the ext.idlist experiment
// quantifies the trade-off.

// encodeEntries delta-encodes a cell's entry list.
func encodeEntries(entries []Entry) []byte {
	buf := make([]byte, 0, len(entries)*3)
	var tmp [binary.MaxVarintLen64]byte
	prevTID := int64(0)
	for _, e := range entries {
		n := binary.PutUvarint(tmp[:], uint64(int64(e.TID)-prevTID))
		buf = append(buf, tmp[:n]...)
		prevTID = int64(e.TID)
		n = binary.PutUvarint(tmp[:], uint64(e.BID))
		buf = append(buf, tmp[:n]...)
	}
	return buf
}

// decodeEntries reverses encodeEntries into dst (reused when capacity
// allows).
func decodeEntries(buf []byte, n int, dst []Entry) []Entry {
	if cap(dst) < n {
		dst = make([]Entry, n)
	}
	dst = dst[:n]
	prevTID := int64(0)
	pos := 0
	for i := 0; i < n; i++ {
		d, w := binary.Uvarint(buf[pos:])
		pos += w
		prevTID += int64(d)
		dst[i].TID = table.TID(prevTID)
		b, w := binary.Uvarint(buf[pos:])
		pos += w
		dst[i].BID = BID(b)
	}
	return dst
}
