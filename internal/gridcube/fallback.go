package gridcube

import (
	"math"

	"rankcube/internal/core"
	"rankcube/internal/heap"
	"rankcube/internal/pager"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// ScanTopK answers q with a full sequential scan of the base relation —
// the exact-answer fallback the degradation policy switches to when the
// cube's materialized structures fault mid-search. It bypasses cuboids and
// the base block table entirely (their pages may be quarantined), respects
// tombstones, and charges one sequential pass over the relation's pages.
func (c *Cube) ScanTopK(q Query, ctr *stats.Counters) []Result {
	if q.K <= 0 {
		return nil
	}
	defer ctr.StartSpan("scan")()
	rowBytes := c.t.RowBytes()
	pageSize := c.cfg.pageSize()
	if pageSize <= 0 {
		pageSize = pager.PageSize
	}
	pages := (c.t.Len()*rowBytes + pageSize - 1) / pageSize
	ctr.Read(stats.StructTable, int64(pages))

	topk := heap.NewBounded[Result](q.K, core.WorseResult)
	buf := make([]float64, c.t.Schema().R())
	for i := 0; i < c.t.Len(); i++ {
		tid := table.TID(i)
		if c.tombstones[tid] || !c.t.Matches(tid, core.Cond(q.Cond)) {
			continue
		}
		score := q.F.Eval(c.t.RankRow(tid, buf))
		if math.IsInf(score, 1) {
			continue
		}
		topk.Offer(Result{TID: tid, Score: score})
	}
	return topk.Sorted()
}
