// Package gridcube implements the ranking cube of thesis chapter 3: an
// equi-depth grid partition of the ranking dimensions (base blocks), a
// rank-aware data cube over the selection dimensions whose measure is a
// ⟨pseudo-block, tid/bid list⟩ layout, the four-step progressive query
// algorithm (pre-process / search / retrieve / evaluate), and the ranking
// fragments extension for high-dimensional selection spaces (§3.4).
package gridcube

import (
	"fmt"
	"math"
	"sort"

	"rankcube/internal/pager"
	"rankcube/internal/ranking"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// BID is a base-block id: the row-major index of the block's bin coordinates
// over the ranking dimensions.
type BID int32

// Meta is the partitioning meta information the cube stores alongside the
// cuboids (§3.2.2): the equi-depth bin boundaries of every ranking dimension
// plus derived geometry.
type Meta struct {
	// Bounds[d] holds bins+1 ascending boundary values of ranking
	// dimension d; bin i spans [Bounds[d][i], Bounds[d][i+1]].
	Bounds [][]float64
	// Bins is the number of bins per dimension (uniform across dimensions).
	Bins int
	// R is the number of ranking dimensions.
	R int
}

// NewMeta computes equi-depth bin boundaries over t's ranking dimensions so
// that base blocks hold about blockSize tuples: bins = ceil((T/P)^(1/R))
// (§3.2.2).
func NewMeta(t *table.Table, blockSize int) Meta {
	r := t.Schema().R()
	n := t.Len()
	if blockSize < 1 {
		blockSize = 1
	}
	bins := int(math.Ceil(math.Pow(float64(n)/float64(blockSize), 1/float64(r))))
	if bins < 1 {
		bins = 1
	}
	m := Meta{Bounds: make([][]float64, r), Bins: bins, R: r}
	for d := 0; d < r; d++ {
		col := append([]float64(nil), t.RankColumn(d)...)
		sort.Float64s(col)
		bounds := make([]float64, bins+1)
		for i := 0; i <= bins; i++ {
			pos := i * (n - 1) / bins
			if i == bins {
				pos = n - 1
			}
			bounds[i] = col[pos]
		}
		// Equi-depth boundaries can repeat under heavy value duplication;
		// force strict monotonicity so every bin has positive extent.
		for i := 1; i <= bins; i++ {
			if bounds[i] <= bounds[i-1] {
				bounds[i] = math.Nextafter(bounds[i-1], math.Inf(1))
			}
		}
		m.Bounds[d] = bounds
	}
	return m
}

// NumBlocks reports the total number of base blocks (bins^R).
func (m Meta) NumBlocks() int {
	n := 1
	for i := 0; i < m.R; i++ {
		n *= m.Bins
	}
	return n
}

// BinOf locates the bin of value v on dimension d.
func (m Meta) BinOf(d int, v float64) int {
	bounds := m.Bounds[d]
	// Upper bound: first boundary strictly greater than v.
	i := sort.SearchFloat64s(bounds, v)
	if i < len(bounds) && bounds[i] == v {
		i++
	}
	bin := i - 1
	if bin < 0 {
		bin = 0
	}
	if bin >= m.Bins {
		bin = m.Bins - 1
	}
	return bin
}

// BlockOf computes the base-block id of a full-width ranking vector.
func (m Meta) BlockOf(rank []float64) BID {
	bid := 0
	for d := 0; d < m.R; d++ {
		bid = bid*m.Bins + m.BinOf(d, rank[d])
	}
	return BID(bid)
}

// Coords decomposes a bid into per-dimension bin coordinates.
func (m Meta) Coords(bid BID, buf []int) []int {
	if cap(buf) < m.R {
		buf = make([]int, m.R)
	}
	buf = buf[:m.R]
	v := int(bid)
	for d := m.R - 1; d >= 0; d-- {
		buf[d] = v % m.Bins
		v /= m.Bins
	}
	return buf
}

// BlockOfCoords composes a bid from bin coordinates.
func (m Meta) BlockOfCoords(coords []int) BID {
	bid := 0
	for _, c := range coords {
		bid = bid*m.Bins + c
	}
	return BID(bid)
}

// BlockBox returns the full-width box covered by block bid.
func (m Meta) BlockBox(bid BID) ranking.Box {
	coords := m.Coords(bid, nil)
	lo := make([]float64, m.R)
	hi := make([]float64, m.R)
	for d, c := range coords {
		lo[d] = m.Bounds[d][c]
		hi[d] = m.Bounds[d][c+1]
	}
	return ranking.NewBox(lo, hi)
}

// Domain returns the full data domain box.
func (m Meta) Domain() ranking.Box {
	lo := make([]float64, m.R)
	hi := make([]float64, m.R)
	for d := 0; d < m.R; d++ {
		lo[d] = m.Bounds[d][0]
		hi[d] = m.Bounds[d][m.Bins]
	}
	return ranking.NewBox(lo, hi)
}

// Neighbors appends the Moore neighborhood of bid (all blocks differing by
// at most one bin per dimension) to dst. The thesis' Lemma 1 drives the
// neighborhood search over these.
func (m Meta) Neighbors(bid BID, dst []BID) []BID {
	coords := m.Coords(bid, nil)
	work := make([]int, m.R)
	var rec func(d int, moved bool)
	rec = func(d int, moved bool) {
		if d == m.R {
			if moved {
				dst = append(dst, m.BlockOfCoords(work))
			}
			return
		}
		for delta := -1; delta <= 1; delta++ {
			c := coords[d] + delta
			if c < 0 || c >= m.Bins {
				continue
			}
			work[d] = c
			rec(d+1, moved || delta != 0)
		}
	}
	rec(0, false)
	return dst
}

// blockEntry is one tuple in the base block table: tid plus its full
// ranking vector (§3.2.2 Table 3.2's right-hand decomposition).
type blockEntry struct {
	tid  table.TID
	rank []float64
}

// BlockTable is the base block table T of the ranking cube triple ⟨T, C, M⟩.
type BlockTable struct {
	meta   Meta
	blocks map[BID][]blockEntry
	pages  map[BID]pager.PageID
	store  *pager.Store
}

// NewBlockTable partitions t's tuples into base blocks.
func NewBlockTable(t *table.Table, meta Meta, pageSize int) *BlockTable {
	bt := &BlockTable{
		meta:   meta,
		blocks: make(map[BID][]blockEntry),
		pages:  make(map[BID]pager.PageID),
		store:  pager.NewStore(stats.StructBlockTab, pageSize),
	}
	r := t.Schema().R()
	for i := 0; i < t.Len(); i++ {
		tid := table.TID(i)
		rank := t.RankRow(tid, make([]float64, r))
		bid := meta.BlockOf(rank)
		bt.blocks[bid] = append(bt.blocks[bid], blockEntry{tid: tid, rank: rank})
	}
	// One page run per base block: tid (4) + R values (8 each).
	rowBytes := 4 + 8*r
	for bid, entries := range bt.blocks {
		bt.pages[bid] = bt.store.AppendLogical(len(entries) * rowBytes)
	}
	return bt
}

// Get implements the get_base_block access method (§3.3.1), charging block
// reads through the per-query buffer.
func (bt *BlockTable) Get(bid BID, buf *pager.Buffer, c *stats.Counters) []blockEntry {
	entries, ok := bt.blocks[bid]
	if !ok {
		return nil
	}
	buf.Touch(bt.pages[bid], c)
	return entries
}

// NewBuffer returns a per-query buffer over the block table's store.
func (bt *BlockTable) NewBuffer() *pager.Buffer { return pager.NewBuffer(bt.store) }

// Store exposes the backing store (for space accounting).
func (bt *BlockTable) Store() *pager.Store { return bt.store }

// Meta returns the partition meta information.
func (bt *BlockTable) Meta() Meta { return bt.meta }

// NumOccupied reports how many base blocks hold at least one tuple.
func (bt *BlockTable) NumOccupied() int { return len(bt.blocks) }

func (bt *BlockTable) String() string {
	return fmt.Sprintf("BlockTable{bins=%d occupied=%d}", bt.meta.Bins, len(bt.blocks))
}
