package gridcube

import (
	"rankcube/internal/table"
)

// Incremental maintenance for the grid ranking cube (thesis §1.3.1): "for
// grid partition, one can temporally allocate new data according to
// pre-computed blocks, and re-partition the data periodically". Inserts
// place tuples into the existing equi-depth blocks (boundaries unchanged)
// and append to the affected cuboid cells; Repartition rebuilds the cube
// from scratch when drift accumulates. Deletions tombstone tuples until the
// next repartition.

// Insert appends a tuple to the relation and registers it in the base block
// table and every cuboid, using the pre-computed partition boundaries.
func (c *Cube) Insert(sel []int32, rank []float64) table.TID {
	tid := c.t.Append(sel, rank)
	rankCopy := append([]float64(nil), rank...)
	bid := c.meta.BlockOf(rankCopy)

	// Base block table: append and grow the block's page run.
	bt := c.blocks
	bt.blocks[bid] = append(bt.blocks[bid], blockEntry{tid: tid, rank: rankCopy})
	rowBytes := 4 + 8*c.meta.R
	if page, ok := bt.pages[bid]; ok {
		bt.store.Resize(page, len(bt.blocks[bid])*rowBytes)
	} else {
		bt.pages[bid] = bt.store.AppendLogical(rowBytes)
	}

	// Cuboids: append to the overflow list of the affected cell.
	for _, cb := range c.cuboids {
		vals := make([]int32, len(cb.dims))
		for j, d := range cb.dims {
			vals[j] = sel[d]
		}
		key := cb.cellKey(vals, cb.PseudoOf(bid))
		if cb.extra == nil {
			cb.extra = make(map[uint64][]Entry)
		}
		cb.extra[key] = append(cb.extra[key], Entry{TID: tid, BID: bid})
		if ref, ok := cb.cells[key]; ok {
			cb.store.Resize(ref.page, int(ref.n)*8+len(cb.extra[key])*8)
		} else {
			cb.cells[key] = cellRef{off: 0, n: 0, page: cb.store.AppendLogical(8)}
		}
	}
	c.inserted++
	return tid
}

// Delete tombstones a tuple: it stops appearing in query results
// immediately and is physically removed at the next Repartition. It reports
// whether the tuple existed and was not already deleted.
func (c *Cube) Delete(tid table.TID) bool {
	if tid < 0 || int(tid) >= c.t.Len() || c.tombstones[tid] {
		return false
	}
	if c.tombstones == nil {
		c.tombstones = make(map[table.TID]bool)
	}
	c.tombstones[tid] = true
	return true
}

// Deleted reports whether a tuple is tombstoned.
func (c *Cube) Deleted(tid table.TID) bool { return c.tombstones[tid] }

// PendingMaintenance reports how much drift has accumulated: tuples
// inserted since the last repartition plus tombstones. Callers repartition
// when this grows past their threshold (the thesis' "periodically").
func (c *Cube) PendingMaintenance() int {
	return c.inserted + len(c.tombstones)
}

// Repartition rebuilds the cube in place over the surviving tuples:
// boundaries are recomputed (restoring equi-depth balance), overflow lists
// fold into the cells, and tombstoned tuples vanish. Tuple ids change when
// deletions occurred; the mapping from old to new ids is returned (nil when
// no tuple moved).
func (c *Cube) Repartition() map[table.TID]table.TID {
	var remap map[table.TID]table.TID
	source := c.t
	if len(c.tombstones) > 0 {
		remap = make(map[table.TID]table.TID)
		compact := table.MustNew(source.Schema())
		selBuf := make([]int32, source.Schema().S())
		rankBuf := make([]float64, source.Schema().R())
		for i := 0; i < source.Len(); i++ {
			old := table.TID(i)
			if c.tombstones[old] {
				continue
			}
			newID := compact.Append(source.SelRow(old, selBuf), source.RankRow(old, rankBuf))
			remap[old] = newID
		}
		source = compact
	}
	rebuilt := Build(source, c.cfg)
	// Adopt the rebuilt state field by field, deliberately NOT touching
	// c.ctl: the serving control outlives every rebuild (callers hold it
	// exclusively right now, the API boundary reads the pointer without
	// synchronization, and long-lived references to it must stay valid).
	c.t = rebuilt.t
	c.meta = rebuilt.meta
	c.blocks = rebuilt.blocks
	c.cuboids = rebuilt.cuboids
	c.groups = rebuilt.groups
	c.tombstones = rebuilt.tombstones
	c.inserted = rebuilt.inserted
	c.cfg = rebuilt.cfg
	return remap
}
