package gridcube

import (
	"sort"

	"rankcube/internal/table"
)

// Fragment grouping strategies (thesis §3.6.2). The default grouping slices
// dimensions into consecutive runs; when a query history is available,
// grouping dimensions that are frequently queried together lets more
// queries be covered by a single fragment, and dimensions with very large
// cardinalities are better kept alone because combining them leaves cells
// too small to be useful.

// GroupsFromWorkload derives a fragment grouping of the S selection
// dimensions from a query history ("if the workload is available, one can
// compute the combination of dimensions that are frequently used in queries
// and materialize ranking fragments on those combinations"). Each history
// entry lists the selection dimensions one query constrained. Groups have
// at most f dimensions; pairs that co-occur most often are merged first
// (greedy agglomeration).
func GroupsFromWorkload(history [][]int, s, f int) [][]int {
	if f < 1 {
		f = 1
	}
	// Pairwise co-occurrence counts.
	co := make(map[[2]int]int)
	for _, q := range history {
		for i := 0; i < len(q); i++ {
			for j := i + 1; j < len(q); j++ {
				a, b := q[i], q[j]
				if a > b {
					a, b = b, a
				}
				if a >= 0 && b < s {
					co[[2]int{a, b}]++
				}
			}
		}
	}
	type pair struct {
		a, b int
		n    int
	}
	pairs := make([]pair, 0, len(co))
	for k, n := range co {
		pairs = append(pairs, pair{k[0], k[1], n})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].n != pairs[j].n {
			return pairs[i].n > pairs[j].n
		}
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})

	// Union-find with size caps.
	parent := make([]int, s)
	size := make([]int, s)
	for d := range parent {
		parent[d] = d
		size[d] = 1
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, p := range pairs {
		ra, rb := find(p.a), find(p.b)
		if ra == rb || size[ra]+size[rb] > f {
			continue
		}
		parent[rb] = ra
		size[ra] += size[rb]
	}

	// Emit groups; singletons merge into consecutive fill groups up to f.
	members := make(map[int][]int)
	for d := 0; d < s; d++ {
		r := find(d)
		members[r] = append(members[r], d)
	}
	var groups [][]int
	var loose []int
	roots := make([]int, 0, len(members))
	for r := range members {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	for _, r := range roots {
		g := members[r]
		if len(g) == 1 {
			loose = append(loose, g[0])
			continue
		}
		sort.Ints(g)
		groups = append(groups, g)
	}
	sort.Ints(loose)
	for i := 0; i < len(loose); i += f {
		j := i + f
		if j > len(loose) {
			j = len(loose)
		}
		groups = append(groups, append([]int(nil), loose[i:j]...))
	}
	return groups
}

// GroupsByCardinality derives a grouping that isolates high-cardinality
// dimensions ("if a dimension has large cardinality, further combining this
// dimension with other dimensions may not be useful, since the number of
// tuples in each cell will be too small"). Dimensions whose cardinality is
// at least threshold become singleton fragments; the rest group
// consecutively up to f per fragment.
func GroupsByCardinality(schema table.Schema, f, threshold int) [][]int {
	if f < 1 {
		f = 1
	}
	var groups [][]int
	var low []int
	for d := 0; d < schema.S(); d++ {
		if schema.SelCard[d] >= threshold {
			groups = append(groups, []int{d})
		} else {
			low = append(low, d)
		}
	}
	for i := 0; i < len(low); i += f {
		j := i + f
		if j > len(low) {
			j = len(low)
		}
		groups = append(groups, append([]int(nil), low[i:j]...))
	}
	return groups
}
