package gridcube

import (
	"testing"

	"rankcube/internal/ranking"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

func TestGroupsFromWorkloadMergesCooccurring(t *testing.T) {
	// Dimensions 0 and 3 always queried together; 1 and 2 together.
	history := [][]int{
		{0, 3}, {0, 3}, {0, 3}, {1, 2}, {1, 2}, {0, 3, 1},
	}
	groups := GroupsFromWorkload(history, 5, 2)
	if !hasGroup(groups, []int{0, 3}) {
		t.Fatalf("groups %v missing {0,3}", groups)
	}
	if !hasGroup(groups, []int{1, 2}) {
		t.Fatalf("groups %v missing {1,2}", groups)
	}
	// Every dimension appears exactly once.
	seen := map[int]int{}
	for _, g := range groups {
		for _, d := range g {
			seen[d]++
		}
	}
	for d := 0; d < 5; d++ {
		if seen[d] != 1 {
			t.Fatalf("dimension %d appears %d times in %v", d, seen[d], groups)
		}
	}
}

func TestGroupsFromWorkloadRespectsCap(t *testing.T) {
	history := [][]int{{0, 1, 2, 3, 4, 5}}
	for _, g := range GroupsFromWorkload(history, 6, 2) {
		if len(g) > 2 {
			t.Fatalf("group %v exceeds cap 2", g)
		}
	}
}

func TestGroupsFromWorkloadEmptyHistory(t *testing.T) {
	groups := GroupsFromWorkload(nil, 4, 2)
	seen := map[int]bool{}
	for _, g := range groups {
		for _, d := range g {
			seen[d] = true
		}
	}
	if len(seen) != 4 {
		t.Fatalf("empty-history grouping covers %d of 4 dims: %v", len(seen), groups)
	}
}

func TestGroupsByCardinality(t *testing.T) {
	schema := table.Schema{
		SelNames: []string{"a", "b", "c", "d", "e"},
		SelCard:  []int{5000, 4, 4, 9000, 4},
	}
	groups := GroupsByCardinality(schema, 2, 1000)
	if !hasGroup(groups, []int{0}) || !hasGroup(groups, []int{3}) {
		t.Fatalf("high-cardinality dims not isolated: %v", groups)
	}
	if !hasGroup(groups, []int{1, 2}) || !hasGroup(groups, []int{4}) {
		t.Fatalf("low-cardinality grouping wrong: %v", groups)
	}
}

func TestWorkloadGroupingAnswersWorkloadWithOneFragment(t *testing.T) {
	tb := testTable(8000, 6, 2, 5, 56)
	history := [][]int{{1, 4}, {1, 4}, {2, 5}, {2, 5}}
	groups := GroupsFromWorkload(history, 6, 2)
	cube := Build(tb, Config{BlockSize: 100, Groups: groups})
	// The workload's queries must now be covered by exactly one cuboid.
	for _, dims := range [][]int{{1, 4}, {2, 5}} {
		cover, err := cube.CoveringCuboids(dims)
		if err != nil {
			t.Fatal(err)
		}
		if len(cover) != 1 {
			t.Fatalf("query %v needs %d covering cuboids under workload grouping", dims, len(cover))
		}
	}
	// And queries still answer correctly.
	q := Query{Cond: map[int]int32{1: 2, 4: 3}, F: ranking.Sum(0, 1), K: 10}
	got, err := cube.TopK(q, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, got, bruteTopK(tb, q))
}

func hasGroup(groups [][]int, want []int) bool {
	for _, g := range groups {
		if len(g) != len(want) {
			continue
		}
		same := true
		for i := range g {
			if g[i] != want[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}
