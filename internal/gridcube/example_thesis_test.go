package gridcube

import (
	"testing"

	"rankcube/internal/ranking"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// TestThesisRunningExample reproduces the demonstrative example of thesis
// §3.3.3 (Tables 3.1-3.7): the sample database's top-2 query
//
//	select top 2 * from R where A1 = 1 and A2 = 1 sort by N1 + N2
//
// returns t1 (score 0.1) and t3 (score 0.3).
func TestThesisRunningExample(t *testing.T) {
	tb := table.MustNew(table.Schema{
		SelNames:  []string{"A1", "A2"},
		SelCard:   []int{3, 3},
		RankNames: []string{"N1", "N2"},
	})
	// Table 3.1's visible rows (tids shift down by one to 0-based).
	tb.Append([]int32{1, 1}, []float64{0.05, 0.05}) // t1
	tb.Append([]int32{1, 2}, []float64{0.65, 0.70}) // t2
	tb.Append([]int32{1, 1}, []float64{0.05, 0.25}) // t3
	tb.Append([]int32{1, 1}, []float64{0.35, 0.15}) // t4
	// Filler tuples in other cells so the partition has volume.
	tb.Append([]int32{2, 1}, []float64{0.50, 0.90})
	tb.Append([]int32{0, 2}, []float64{0.95, 0.40})
	tb.Append([]int32{2, 2}, []float64{0.20, 0.60})
	tb.Append([]int32{0, 0}, []float64{0.80, 0.10})

	cube := Build(tb, Config{BlockSize: 2})
	res, err := cube.TopK(Query{
		Cond: map[int]int32{0: 1, 1: 1},
		F:    ranking.Sum(0, 1),
		K:    2,
	}, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("top-2 returned %d results", len(res))
	}
	if res[0].TID != 0 || !approx(res[0].Score, 0.10) {
		t.Fatalf("first = t%d score %v, want t1 (tid 0) score 0.1", res[0].TID+1, res[0].Score)
	}
	if res[1].TID != 2 || !approx(res[1].Score, 0.30) {
		t.Fatalf("second = t%d score %v, want t3 (tid 2) score 0.3", res[1].TID+1, res[1].Score)
	}
}

func approx(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
