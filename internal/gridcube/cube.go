package gridcube

import (
	"fmt"
	"math"
	"sort"

	"rankcube/internal/guard"
	"rankcube/internal/pager"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// Entry is one measure element of a cuboid cell: a tuple id together with
// its base-block id (thesis Table 3.4: "tid (bid) List").
type Entry struct {
	TID table.TID
	BID BID
}

// Cuboid is one rank-aware cuboid: cells keyed by the values of its
// selection dimensions plus the pseudo-block id, each holding a tid/bid
// list.
type Cuboid struct {
	dims  []int // selection-dimension positions, ascending
	cards []int // cardinalities of dims
	sf    int   // pseudo-block scale factor (§3.2.3)
	pbins int   // pseudo bins per ranking dimension
	meta  Meta
	cells map[uint64]cellRef
	// data holds uncompressed cell payloads, contiguous, grouped by cell;
	// nil when lists are delta-compressed (cell bytes live in the store).
	data       []Entry
	compressed bool
	// extra holds per-cell overflow entries appended by incremental
	// maintenance since the last repartition, tid-ascending.
	extra  map[uint64][]Entry
	store  *pager.Store
	tuples int
}

type cellRef struct {
	off, n int32
	page   pager.PageID
}

// Dims reports the cuboid's selection dimensions.
func (cb *Cuboid) Dims() []int { return cb.dims }

// ScaleFactor reports the pseudo-block scale factor.
func (cb *Cuboid) ScaleFactor() int { return cb.sf }

// PseudoOf maps a base block to its pseudo block id.
func (cb *Cuboid) PseudoOf(bid BID) int {
	coords := cb.meta.Coords(bid, nil)
	pid := 0
	for _, c := range coords {
		pid = pid*cb.pbins + c/cb.sf
	}
	return pid
}

// cellKey packs selection values (aligned with cb.dims) and a pid into a
// mixed-radix uint64.
func (cb *Cuboid) cellKey(vals []int32, pid int) uint64 {
	key := uint64(0)
	for i, v := range vals {
		key = key*uint64(cb.cards[i]) + uint64(v)
	}
	numP := 1
	for d := 0; d < cb.meta.R; d++ {
		numP *= cb.pbins
	}
	return key*uint64(numP) + uint64(pid)
}

// GetPseudoBlock implements the get_pseudo_block access method (§3.3.1):
// given the cuboid cell identified by selection values and pid, it returns
// the cell's tid/bid list, charging reads through buf.
func (cb *Cuboid) GetPseudoBlock(vals []int32, pid int, buf *pager.Buffer, c *stats.Counters) []Entry {
	key := cb.cellKey(vals, pid)
	ref, ok := cb.cells[key]
	if !ok {
		return nil
	}
	var base []Entry
	if cb.compressed {
		base = decodeEntries(buf.Read(ref.page, c), int(ref.n), nil)
	} else {
		buf.Touch(ref.page, c)
		base = cb.data[ref.off : ref.off+ref.n]
	}
	overflow := cb.extra[key]
	if len(overflow) == 0 {
		return base
	}
	// Fresh tids are always larger than materialized ones, so the merged
	// list stays tid-ascending (the intersection step relies on it).
	merged := make([]Entry, 0, len(base)+len(overflow))
	merged = append(merged, base...)
	return append(merged, overflow...)
}

// Store exposes the cuboid's page store for space accounting.
func (cb *Cuboid) Store() *pager.Store { return cb.store }

// Cube is the full ranking cube ⟨T, C, M⟩ of chapter 3, generalized to
// fragment grouping (§3.4): with one group holding all selection dimensions
// it is the fully materialized ranking cube; with groups of size F it is the
// ranking-fragments materialization whose footprint grows linearly in the
// number of selection dimensions (Lemma 2).
type Cube struct {
	t      *table.Table
	meta   Meta
	blocks *BlockTable
	// cuboids maps a dimension-set key to its cuboid.
	cuboids map[string]*Cuboid
	groups  [][]int
	// tombstones marks deleted tuples awaiting the next repartition;
	// inserted counts Insert calls since the last repartition.
	tombstones map[table.TID]bool
	inserted   int
	cfg        Config
	// ctl is the serving control block: queries hold it shared, maintenance
	// and repair exclusive. It survives Repartition so references held by
	// the API boundary stay valid.
	ctl *guard.RW
}

// Config controls cube construction.
type Config struct {
	// BlockSize is the expected tuples per base block (P); default 300
	// (§3.5.1).
	BlockSize int
	// PageSize in bytes; default pager.PageSize.
	PageSize int
	// FragmentSize F groups the selection dimensions into ⌈S/F⌉ fragments;
	// 0 materializes the full cube (a single group of all dimensions).
	FragmentSize int
	// Groups, when non-nil, gives explicit fragment grouping and overrides
	// FragmentSize.
	Groups [][]int
	// CompressLists stores cell tid/bid lists varint-delta compressed
	// (§3.6.3), shrinking the cube at the cost of decode work per access.
	CompressLists bool
}

func (c Config) blockSize() int {
	if c.BlockSize > 0 {
		return c.BlockSize
	}
	return 300
}

func (c Config) pageSize() int {
	if c.PageSize > 0 {
		return c.PageSize
	}
	return pager.PageSize
}

// Build materializes a ranking cube (or ranking fragments) over t.
func Build(t *table.Table, cfg Config) *Cube {
	meta := NewMeta(t, cfg.blockSize())
	cube := &Cube{
		t:       t,
		meta:    meta,
		blocks:  NewBlockTable(t, meta, cfg.pageSize()),
		cuboids: make(map[string]*Cuboid),
		cfg:     cfg,
		ctl:     guard.New(),
	}
	cube.groups = cfg.Groups
	if cube.groups == nil {
		s := t.Schema().S()
		f := cfg.FragmentSize
		if f <= 0 || f > s {
			f = s
		}
		for lo := 0; lo < s; lo += f {
			hi := lo + f
			if hi > s {
				hi = s
			}
			group := make([]int, 0, f)
			for d := lo; d < hi; d++ {
				group = append(group, d)
			}
			cube.groups = append(cube.groups, group)
		}
	}
	for _, group := range cube.groups {
		for _, dims := range subsets(group) {
			cube.buildCuboid(dims)
		}
	}
	return cube
}

// subsets enumerates the non-empty subsets of dims (the 2^F − 1 cuboids per
// fragment).
func subsets(dims []int) [][]int {
	var out [][]int
	n := len(dims)
	for mask := 1; mask < 1<<uint(n); mask++ {
		var sub []int
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				sub = append(sub, dims[i])
			}
		}
		out = append(out, sub)
	}
	return out
}

func dimsKey(dims []int) string {
	b := make([]byte, 0, len(dims)*2)
	for _, d := range dims {
		b = append(b, byte(d>>8), byte(d))
	}
	return string(b)
}

func (c *Cube) buildCuboid(dims []int) {
	sorted := append([]int(nil), dims...)
	sort.Ints(sorted)
	key := dimsKey(sorted)
	if _, ok := c.cuboids[key]; ok {
		return
	}
	c.cuboids[key] = c.materializeCuboid(sorted, pager.NewStore(stats.StructCube, c.cfg.pageSize()))
}

// materializeCuboid assembles the cuboid over the (sorted) selection
// dimensions from the current relation into store, which must be empty.
// Build passes a fresh store; quarantine repair passes the corrupt
// cuboid's store after Reset, preserving its identity.
func (c *Cube) materializeCuboid(sorted []int, store *pager.Store) *Cuboid {
	schema := c.t.Schema()
	cards := make([]int, len(sorted))
	prod := 1
	for i, d := range sorted {
		cards[i] = schema.SelCard[d]
		prod *= cards[i]
	}
	// Scale factor sf = ⌊(∏ c_j)^(1/R)⌋ (§3.2.3), at least 1, at most bins.
	sf := int(math.Floor(math.Pow(float64(prod), 1/float64(c.meta.R))))
	if sf < 1 {
		sf = 1
	}
	if sf > c.meta.Bins {
		sf = c.meta.Bins
	}
	cb := &Cuboid{
		dims:       sorted,
		cards:      cards,
		sf:         sf,
		pbins:      (c.meta.Bins + sf - 1) / sf,
		meta:       c.meta,
		compressed: c.cfg.CompressLists,
		store:      store,
	}

	// Assemble entries sorted by cell key so each cell is one contiguous run.
	n := c.t.Len()
	type keyed struct {
		key uint64
		e   Entry
	}
	rows := make([]keyed, n)
	vals := make([]int32, len(sorted))
	rank := make([]float64, c.meta.R)
	for i := 0; i < n; i++ {
		tid := table.TID(i)
		for j, d := range sorted {
			vals[j] = c.t.Sel(tid, d)
		}
		rank = c.t.RankRow(tid, rank)
		bid := c.meta.BlockOf(rank)
		rows[i] = keyed{key: cb.cellKey(vals, cb.PseudoOf(bid)), e: Entry{TID: tid, BID: bid}}
	}
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].key != rows[b].key {
			return rows[a].key < rows[b].key
		}
		return rows[a].e.TID < rows[b].e.TID
	})
	cb.cells = make(map[uint64]cellRef)
	if !cb.compressed {
		cb.data = make([]Entry, n)
	}
	var scratch []Entry
	for i := 0; i < n; {
		j := i
		for j < n && rows[j].key == rows[i].key {
			if !cb.compressed {
				cb.data[j] = rows[j].e
			}
			j++
		}
		var page pager.PageID
		if cb.compressed {
			scratch = scratch[:0]
			for k := i; k < j; k++ {
				scratch = append(scratch, rows[k].e)
			}
			page = cb.store.Append(encodeEntries(scratch))
		} else {
			// Each cell occupies its own page run: 8 bytes per entry.
			page = cb.store.AppendLogical((j - i) * 8)
		}
		cb.cells[rows[i].key] = cellRef{off: int32(i), n: int32(j - i), page: page}
		i = j
	}
	cb.tuples = n
	return cb
}

// RebuildCuboid re-materializes one cuboid from the current relation into
// its reset store — the quarantine repair path for a cuboid whose pages
// failed checksum verification. The store object is kept (Reset truncates
// in place) so fault-injection attachments and health monitors stay valid.
// Overflow entries fold into the rebuilt cells; tombstones remain filtered
// at query time as usual. The caller must hold the cube's control
// exclusively. It returns the number of pages the rebuild materialized.
func (c *Cube) RebuildCuboid(cb *Cuboid) int {
	cb.store.Reset()
	rebuilt := c.materializeCuboid(cb.dims, cb.store)
	c.cuboids[dimsKey(cb.dims)] = rebuilt
	return cb.store.NumPages()
}

// Ctl returns the cube's serving control block.
func (c *Cube) Ctl() *guard.RW { return c.ctl }

// Cuboid returns the materialized cuboid over exactly dims, or nil.
func (c *Cube) Cuboid(dims []int) *Cuboid {
	sorted := append([]int(nil), dims...)
	sort.Ints(sorted)
	return c.cuboids[dimsKey(sorted)]
}

// Cuboids lists all materialized cuboids.
func (c *Cube) Cuboids() []*Cuboid {
	out := make([]*Cuboid, 0, len(c.cuboids))
	for _, cb := range c.cuboids {
		out = append(out, cb)
	}
	sort.Slice(out, func(a, b int) bool {
		return fmt.Sprint(out[a].dims) < fmt.Sprint(out[b].dims)
	})
	return out
}

// Meta returns the partition meta information M.
func (c *Cube) Meta() Meta { return c.meta }

// Blocks returns the base block table T.
func (c *Cube) Blocks() *BlockTable { return c.blocks }

// Table returns the underlying relation.
func (c *Cube) Table() *table.Table { return c.t }

// Groups returns the fragment grouping in effect.
func (c *Cube) Groups() [][]int { return c.groups }

// SizeBytes reports the materialized footprint: all cuboid cells plus the
// base block table (meta information is negligible, §3.4.1).
func (c *Cube) SizeBytes() int64 {
	var total int64
	for _, cb := range c.cuboids {
		total += cb.store.Bytes()
	}
	total += c.blocks.store.Bytes()
	return total
}
