package gridcube

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"rankcube/internal/ranking"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// bruteTopK computes the reference answer by scanning.
func bruteTopK(t *table.Table, q Query) []Result {
	var all []Result
	buf := make([]float64, t.Schema().R())
	for i := 0; i < t.Len(); i++ {
		tid := table.TID(i)
		if !t.Matches(tid, q.Cond) {
			continue
		}
		score := q.F.Eval(t.RankRow(tid, buf))
		if math.IsInf(score, 1) {
			continue
		}
		all = append(all, Result{TID: tid, Score: score})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Score != all[b].Score {
			return all[a].Score < all[b].Score
		}
		return all[a].TID < all[b].TID
	})
	if len(all) > q.K {
		all = all[:q.K]
	}
	return all
}

func sameResults(t *testing.T, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range want {
		// Scores must match; tids may differ only on exact ties.
		if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			t.Fatalf("result %d: score %v, want %v", i, got[i].Score, want[i].Score)
		}
	}
}

func testTable(n int, s, r, card int, seed int64) *table.Table {
	return table.Generate(table.GenSpec{T: n, S: s, R: r, Card: card, Seed: seed})
}

func TestMetaPartition(t *testing.T) {
	tb := testTable(10000, 2, 2, 5, 31)
	m := NewMeta(tb, 100)
	if m.Bins != 10 {
		t.Fatalf("Bins = %d, want 10", m.Bins)
	}
	// Every tuple lands in a valid block whose box contains it.
	buf := make([]float64, 2)
	for i := 0; i < tb.Len(); i++ {
		rank := tb.RankRow(table.TID(i), buf)
		bid := m.BlockOf(rank)
		box := m.BlockBox(bid)
		for d := 0; d < 2; d++ {
			if rank[d] < box.Lo[d]-1e-12 || rank[d] > box.Hi[d]+1e-12 {
				t.Fatalf("tuple %d dim %d value %v outside block box [%v,%v]",
					i, d, rank[d], box.Lo[d], box.Hi[d])
			}
		}
	}
}

func TestMetaEquiDepth(t *testing.T) {
	tb := testTable(20000, 1, 2, 2, 32)
	m := NewMeta(tb, 200)
	bt := NewBlockTable(tb, m, 4096)
	// Equi-depth: block occupancies should be within a few x of the target.
	max := 0
	for _, entries := range bt.blocks {
		if len(entries) > max {
			max = len(entries)
		}
	}
	if max > 4*200 {
		t.Fatalf("max block occupancy %d far above target 200", max)
	}
}

func TestNeighbors(t *testing.T) {
	tb := testTable(1000, 1, 2, 2, 33)
	m := NewMeta(tb, 10) // 10 bins per dim
	if m.Bins != 10 {
		t.Fatalf("Bins = %d", m.Bins)
	}
	corner := m.BlockOfCoords([]int{0, 0})
	nbs := m.Neighbors(corner, nil)
	if len(nbs) != 3 {
		t.Fatalf("corner neighbors = %d, want 3", len(nbs))
	}
	center := m.BlockOfCoords([]int{5, 5})
	nbs = m.Neighbors(center, nil)
	if len(nbs) != 8 {
		t.Fatalf("center neighbors = %d, want 8", len(nbs))
	}
}

func TestCoordsRoundtrip(t *testing.T) {
	tb := testTable(1000, 1, 3, 2, 34)
	m := NewMeta(tb, 30)
	for bid := BID(0); int(bid) < m.NumBlocks(); bid += 7 {
		coords := m.Coords(bid, nil)
		if got := m.BlockOfCoords(coords); got != bid {
			t.Fatalf("roundtrip %d -> %v -> %d", bid, coords, got)
		}
	}
}

func TestTopKMatchesBruteForce(t *testing.T) {
	tb := testTable(20000, 3, 2, 8, 35)
	cube := Build(tb, Config{BlockSize: 200})
	rng := rand.New(rand.NewSource(99))
	funcs := []ranking.Func{
		ranking.Sum(0, 1),
		ranking.Linear([]int{0, 1}, []float64{1, 3}),
		ranking.Linear([]int{0, 1}, []float64{2, -1}),
		ranking.SqDist([]int{0, 1}, []float64{0.4, 0.7}),
	}
	for trial := 0; trial < 30; trial++ {
		q := Query{
			Cond: map[int]int32{
				0: int32(rng.Intn(8)),
				1: int32(rng.Intn(8)),
			},
			F: funcs[trial%len(funcs)],
			K: 1 + rng.Intn(20),
		}
		ctr := stats.New()
		got, err := cube.TopK(q, ctr)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, got, bruteTopK(tb, q))
	}
}

func TestTopKSingleCondition(t *testing.T) {
	tb := testTable(10000, 3, 2, 5, 36)
	cube := Build(tb, Config{BlockSize: 150})
	q := Query{Cond: map[int]int32{2: 3}, F: ranking.Sum(0, 1), K: 15}
	got, err := cube.TopK(q, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, got, bruteTopK(tb, q))
}

func TestTopKNonConvexFunction(t *testing.T) {
	tb := testTable(8000, 2, 2, 4, 37)
	cube := Build(tb, Config{BlockSize: 100})
	// fg-style general function: no convexity declared → exhaustive path.
	f := ranking.General(ranking.Sqr(ranking.Sub(ranking.Var(0), ranking.Sqr(ranking.Var(1)))))
	q := Query{Cond: map[int]int32{0: 1}, F: f, K: 10}
	got, err := cube.TopK(q, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, got, bruteTopK(tb, q))
}

func TestTopKConstrainedFunction(t *testing.T) {
	tb := testTable(8000, 2, 2, 4, 41)
	cube := Build(tb, Config{BlockSize: 100})
	f := ranking.Constrained(ranking.Sum(0, 1), 1, 0.2, 0.4)
	q := Query{Cond: map[int]int32{1: 2}, F: f, K: 10}
	got, err := cube.TopK(q, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, got, bruteTopK(tb, q))
}

func TestFragmentsMatchBruteForce(t *testing.T) {
	tb := testTable(15000, 6, 2, 6, 38)
	cube := Build(tb, Config{BlockSize: 150, FragmentSize: 2})
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 20; trial++ {
		// Conditions spanning multiple fragments.
		nd := 1 + rng.Intn(3)
		cond := map[int]int32{}
		for len(cond) < nd {
			cond[rng.Intn(6)] = int32(rng.Intn(6))
		}
		q := Query{Cond: cond, F: ranking.Sum(0, 1), K: 10}
		got, err := cube.TopK(q, stats.New())
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, got, bruteTopK(tb, q))
	}
}

func TestCoveringCuboids(t *testing.T) {
	tb := testTable(2000, 4, 2, 4, 39)
	cube := Build(tb, Config{BlockSize: 100, FragmentSize: 2})
	// Dims {0,1} are one fragment: single covering cuboid.
	cover, err := cube.CoveringCuboids([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 1 {
		t.Fatalf("cover size = %d, want 1", len(cover))
	}
	// Dims {0,3} straddle fragments: two covering cuboids.
	cover, err = cube.CoveringCuboids([]int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 2 {
		t.Fatalf("cover size = %d, want 2", len(cover))
	}
}

func TestFullCubeMaterializesAllCuboids(t *testing.T) {
	tb := testTable(500, 3, 2, 3, 40)
	cube := Build(tb, Config{BlockSize: 50})
	if got := len(cube.Cuboids()); got != 7 { // 2^3 - 1
		t.Fatalf("cuboids = %d, want 7", got)
	}
	if cube.Cuboid([]int{1, 2}) == nil {
		t.Fatal("missing cuboid {1,2}")
	}
}

func TestFragmentSpaceGrowsLinearly(t *testing.T) {
	// Lemma 2: with fixed F, fragment space grows linearly in S.
	sizes := make([]int64, 0, 3)
	for _, s := range []int{4, 8, 12} {
		tb := testTable(5000, s, 2, 5, 42)
		cube := Build(tb, Config{BlockSize: 100, FragmentSize: 2})
		sizes = append(sizes, cube.SizeBytes())
	}
	// Doubling S from 4 to 8 should roughly double cuboid space (within 2x
	// slack for block-table constancy).
	growth := float64(sizes[2]-sizes[1]) / float64(sizes[1]-sizes[0])
	if growth < 0.5 || growth > 2 {
		t.Fatalf("non-linear growth: sizes %v (ratio %v)", sizes, growth)
	}
}

func TestQueryChargesIO(t *testing.T) {
	tb := testTable(10000, 2, 2, 5, 43)
	cube := Build(tb, Config{BlockSize: 100})
	ctr := stats.New()
	q := Query{Cond: map[int]int32{0: 1, 1: 2}, F: ranking.Sum(0, 1), K: 5}
	if _, err := cube.TopK(q, ctr); err != nil {
		t.Fatal(err)
	}
	if ctr.Reads(stats.StructCube) == 0 {
		t.Fatal("no cuboid reads recorded")
	}
	if ctr.Reads(stats.StructBlockTab) == 0 {
		t.Fatal("no block-table reads recorded")
	}
}

func TestUncoverableQueryFails(t *testing.T) {
	tb := testTable(500, 4, 2, 3, 44)
	cube := Build(tb, Config{BlockSize: 50, Groups: [][]int{{0, 1}}})
	_, err := cube.TopK(Query{Cond: map[int]int32{3: 1}, F: ranking.Sum(0, 1), K: 3}, stats.New())
	if err == nil {
		t.Fatal("query over unmaterialized dimension succeeded")
	}
}

func TestKZero(t *testing.T) {
	tb := testTable(100, 1, 2, 2, 45)
	cube := Build(tb, Config{BlockSize: 50})
	res, err := cube.TopK(Query{Cond: map[int]int32{0: 0}, F: ranking.Sum(0, 1), K: 0}, stats.New())
	if err != nil || len(res) != 0 {
		t.Fatalf("K=0: res=%v err=%v", res, err)
	}
}

func TestCompressedListsMatchAndShrink(t *testing.T) {
	tb := testTable(15000, 3, 2, 6, 46)
	plain := Build(tb, Config{BlockSize: 150})
	packed := Build(tb, Config{BlockSize: 150, CompressLists: true})
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 15; trial++ {
		q := Query{
			Cond: map[int]int32{rng.Intn(3): int32(rng.Intn(6))},
			F:    ranking.Sum(0, 1),
			K:    1 + rng.Intn(15),
		}
		a, err := plain.TopK(q, stats.New())
		if err != nil {
			t.Fatal(err)
		}
		b, err := packed.TopK(q, stats.New())
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, b, a)
	}
	if packed.SizeBytes() >= plain.SizeBytes() {
		t.Fatalf("compressed cube %d bytes >= plain %d bytes", packed.SizeBytes(), plain.SizeBytes())
	}
}

func TestEncodeDecodeEntriesRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(200)
		entries := make([]Entry, n)
		tid := int32(0)
		for i := range entries {
			tid += int32(rng.Intn(1000))
			entries[i] = Entry{TID: table.TID(tid), BID: BID(rng.Intn(1 << 20))}
		}
		got := decodeEntries(encodeEntries(entries), n, nil)
		if len(got) != n {
			t.Fatalf("decoded %d entries, want %d", len(got), n)
		}
		for i := range entries {
			if got[i] != entries[i] {
				t.Fatalf("entry %d: %v != %v", i, got[i], entries[i])
			}
		}
	}
}

func TestIncrementalInsertMatchesBrute(t *testing.T) {
	tb := testTable(5000, 2, 2, 5, 49)
	cube := Build(tb, Config{BlockSize: 100})
	rng := rand.New(rand.NewSource(50))
	for i := 0; i < 800; i++ {
		sel := []int32{int32(rng.Intn(5)), int32(rng.Intn(5))}
		rank := []float64{rng.Float64(), rng.Float64()}
		cube.Insert(sel, rank)
	}
	for trial := 0; trial < 10; trial++ {
		q := Query{
			Cond: map[int]int32{trial % 2: int32(rng.Intn(5))},
			F:    ranking.Sum(0, 1),
			K:    12,
		}
		got, err := cube.TopK(q, stats.New())
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, got, bruteTopK(cube.Table(), q))
	}
	if cube.PendingMaintenance() != 800 {
		t.Fatalf("PendingMaintenance = %d, want 800", cube.PendingMaintenance())
	}
}

func TestDeleteTombstones(t *testing.T) {
	tb := testTable(3000, 2, 2, 4, 51)
	cube := Build(tb, Config{BlockSize: 100})
	q := Query{Cond: map[int]int32{0: 1}, F: ranking.Sum(0, 1), K: 5}
	before, err := cube.TopK(q, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	if len(before) == 0 {
		t.Fatal("no results before delete")
	}
	if !cube.Delete(before[0].TID) {
		t.Fatal("delete failed")
	}
	if cube.Delete(before[0].TID) {
		t.Fatal("double delete succeeded")
	}
	after, err := cube.TopK(q, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range after {
		if r.TID == before[0].TID {
			t.Fatal("tombstoned tuple still returned")
		}
	}
}

func TestRepartitionFoldsMaintenance(t *testing.T) {
	tb := testTable(4000, 2, 2, 4, 52)
	cube := Build(tb, Config{BlockSize: 100})
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 500; i++ {
		cube.Insert([]int32{int32(rng.Intn(4)), int32(rng.Intn(4))},
			[]float64{rng.Float64(), rng.Float64()})
	}
	deleted := map[table.TID]bool{}
	for i := 0; i < 300; i++ {
		tid := table.TID(rng.Intn(4000))
		if cube.Delete(tid) {
			deleted[tid] = true
		}
	}
	q := Query{Cond: map[int]int32{0: 2}, F: ranking.Sum(0, 1), K: 10}
	before, err := cube.TopK(q, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	remap := cube.Repartition()
	if cube.PendingMaintenance() != 0 {
		t.Fatalf("PendingMaintenance = %d after repartition", cube.PendingMaintenance())
	}
	if remap == nil {
		t.Fatal("expected a remap after deletions")
	}
	after, err := cube.TopK(q, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, after, before) // same scores, fresh layout
	// Surviving tuple count must match.
	if cube.Table().Len() != 4500-len(deleted) {
		t.Fatalf("repartitioned table has %d tuples, want %d", cube.Table().Len(), 4500-len(deleted))
	}
}

func TestInsertIntoCompressedCube(t *testing.T) {
	tb := testTable(3000, 2, 2, 4, 54)
	cube := Build(tb, Config{BlockSize: 100, CompressLists: true})
	rng := rand.New(rand.NewSource(55))
	for i := 0; i < 300; i++ {
		cube.Insert([]int32{int32(rng.Intn(4)), int32(rng.Intn(4))},
			[]float64{rng.Float64(), rng.Float64()})
	}
	q := Query{Cond: map[int]int32{1: 1}, F: ranking.Sum(0, 1), K: 10}
	got, err := cube.TopK(q, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, got, bruteTopK(cube.Table(), q))
}

func TestTopKEmptyCondition(t *testing.T) {
	tb := testTable(8000, 2, 2, 4, 57)
	cube := Build(tb, Config{BlockSize: 100})
	q := Query{Cond: map[int]int32{}, F: ranking.Sum(0, 1), K: 12}
	got, err := cube.TopK(q, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, got, bruteTopK(tb, q))
	if len(got) != 12 {
		t.Fatalf("unconditioned query returned %d results", len(got))
	}
}
