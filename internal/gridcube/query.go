package gridcube

import (
	"fmt"
	"math"
	"sort"

	"rankcube/internal/core"
	"rankcube/internal/errs"
	"rankcube/internal/heap"
	"rankcube/internal/pager"
	"rankcube/internal/ranking"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// Query is a multi-dimensional top-k query (thesis §1.2.1): equality
// selections over selection dimensions plus an ad hoc ranking function over
// ranking dimensions, ascending scores preferred.
type Query struct {
	// Cond maps selection-dimension positions to required values.
	Cond map[int]int32
	// F is the ranking function.
	F ranking.Func
	// K is the number of results requested.
	K int
}

// Result is one scored tuple (shared with the other engines).
type Result = core.Result

// CoveringCuboids selects the cuboids answering a query over the given
// selection dimensions with the minmax criterion of §3.4.2: candidate
// cuboids contained in the query dimensions, maximal among those, then a
// minimal covering subset (greedy set cover). It returns an error when the
// materialized fragments cannot cover the query.
func (c *Cube) CoveringCuboids(dims []int) ([]*Cuboid, error) {
	need := make(map[int]bool, len(dims))
	for _, d := range dims {
		need[d] = true
	}
	var candidates []*Cuboid
	for _, cb := range c.cuboids {
		inside := true
		for _, d := range cb.dims {
			if !need[d] {
				inside = false
				break
			}
		}
		if inside {
			candidates = append(candidates, cb)
		}
	}
	// Maximum step: drop cuboids strictly contained in another candidate.
	maximal := candidates[:0]
	for _, cb := range candidates {
		dominated := false
		for _, other := range candidates {
			if other != cb && len(other.dims) > len(cb.dims) && contains(other.dims, cb.dims) {
				dominated = true
				break
			}
		}
		if !dominated {
			maximal = append(maximal, cb)
		}
	}
	// Minimum step: greedy set cover over the query dimensions.
	sort.Slice(maximal, func(a, b int) bool {
		if len(maximal[a].dims) != len(maximal[b].dims) {
			return len(maximal[a].dims) > len(maximal[b].dims)
		}
		return fmt.Sprint(maximal[a].dims) < fmt.Sprint(maximal[b].dims)
	})
	uncovered := make(map[int]bool, len(dims))
	for _, d := range dims {
		uncovered[d] = true
	}
	var cover []*Cuboid
	for len(uncovered) > 0 {
		best, gain := -1, 0
		for i, cb := range maximal {
			g := 0
			for _, d := range cb.dims {
				if uncovered[d] {
					g++
				}
			}
			if g > gain {
				best, gain = i, g
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("gridcube: dimensions %v not covered by materialized fragments: %w", remaining(uncovered), errs.ErrInvalidArgument)
		}
		cover = append(cover, maximal[best])
		for _, d := range maximal[best].dims {
			delete(uncovered, d)
		}
	}
	return cover, nil
}

func contains(sup, sub []int) bool {
	set := make(map[int]bool, len(sup))
	for _, d := range sup {
		set[d] = true
	}
	for _, d := range sub {
		if !set[d] {
			return false
		}
	}
	return true
}

func remaining(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for d := range m {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// TopK answers q with the progressive algorithm of §3.3 (and §3.4.2 when
// the query spans multiple fragments): locate the most promising base block,
// retrieve its cell lists (intersecting across covering cuboids), fetch and
// evaluate candidate tuples, and expand to neighboring blocks until the kth
// score is no worse than the best unseen block's bound.
func (c *Cube) TopK(q Query, ctr *stats.Counters) ([]Result, error) {
	if q.K <= 0 {
		return nil, nil
	}
	endPlan := ctr.StartSpan("plan")
	condDims := make([]int, 0, len(q.Cond))
	for d := range q.Cond {
		condDims = append(condDims, d)
	}
	sort.Ints(condDims)
	cover, err := c.CoveringCuboids(condDims)
	if err != nil {
		endPlan()
		return nil, err
	}
	// Per-cuboid selection value vectors, aligned with each cuboid's dims.
	condVals := make([][]int32, len(cover))
	for i, cb := range cover {
		vals := make([]int32, len(cb.dims))
		for j, d := range cb.dims {
			vals[j] = q.Cond[d]
		}
		condVals[i] = vals
	}

	exec := &gridExec{
		cube:     c,
		cover:    cover,
		condVals: condVals,
		f:        q.F,
		k:        q.K,
		ctr:      ctr,
		blockBuf: c.blocks.NewBuffer(),
		topk:     heap.NewBounded[Result](q.K, core.WorseResult),
	}
	exec.cubeBufs = make([]*pager.Buffer, len(cover))
	for i, cb := range cover {
		exec.cubeBufs[i] = pager.NewBuffer(cb.store)
	}
	endPlan()

	defer ctr.StartSpan("search")()
	if ranking.IsConvexFunc(q.F) {
		if min, ok := q.F.(ranking.Minimizer); ok {
			exec.neighborhoodSearch(min)
			return exec.topk.Sorted(), nil
		}
	}
	exec.exhaustiveSearch()
	return exec.topk.Sorted(), nil
}

type gridExec struct {
	cube     *Cube
	cover    []*Cuboid
	condVals [][]int32
	f        ranking.Func
	k        int
	ctr      *stats.Counters

	blockBuf *pager.Buffer
	cubeBufs []*pager.Buffer
	topk     *heap.Bounded[Result]
}

type scoredBlock struct {
	bid   BID
	bound float64
}

func lessBlock(a, b scoredBlock) bool {
	if a.bound != b.bound {
		return a.bound < b.bound
	}
	return a.bid < b.bid
}

// done reports whether the stop condition Sk ≤ Sunseen holds.
func (e *gridExec) done(unseen float64) bool {
	return e.topk.Full() && e.topk.Worst().Score <= unseen
}

// neighborhoodSearch implements the convex-function search of §3.3.2: start
// at the block containing the function minimum and expand through the
// neighbor list H ordered by block lower bounds (Lemma 1).
func (e *gridExec) neighborhoodSearch(min ranking.Minimizer) {
	meta := e.cube.meta
	domain := meta.Domain()
	start := meta.BlockOf(min.ArgMin(domain))

	h := heap.New[scoredBlock](lessBlock)
	inserted := map[BID]bool{start: true}
	h.Push(scoredBlock{bid: start, bound: e.f.LowerBound(meta.BlockBox(start))})

	var neighbors []BID
	for h.Len() > 0 {
		e.ctr.ObserveHeap(h.Len())
		top := h.Pop()
		if e.done(top.bound) {
			return
		}
		e.processBlock(top.bid)
		neighbors = meta.Neighbors(top.bid, neighbors[:0])
		for _, nb := range neighbors {
			if inserted[nb] {
				continue
			}
			inserted[nb] = true
			h.Push(scoredBlock{bid: nb, bound: e.f.LowerBound(meta.BlockBox(nb))})
		}
	}
}

// exhaustiveSearch is the fallback for functions without a declared convex
// structure: every occupied base block is ranked by its lower bound and
// processed best-first. Correct for any lower-boundable function (§3.6.1's
// ad hoc case with one convex sub-domain).
func (e *gridExec) exhaustiveSearch() {
	meta := e.cube.meta
	h := heap.New[scoredBlock](lessBlock)
	for bid := range e.cube.blocks.blocks {
		bound := e.f.LowerBound(meta.BlockBox(bid))
		if !math.IsInf(bound, 1) {
			h.Push(scoredBlock{bid: bid, bound: bound})
		}
	}
	for h.Len() > 0 {
		e.ctr.ObserveHeap(h.Len())
		top := h.Pop()
		if e.done(top.bound) {
			return
		}
		e.processBlock(top.bid)
	}
}

// processBlock runs the retrieve and evaluate steps of §3.3.2 for one base
// block: fetch the covering cells' tid lists, intersect, then fetch the base
// block and score the surviving tuples.
func (e *gridExec) processBlock(bid BID) {
	// An unconditioned query (no covering cuboids) evaluates every tuple of
	// the block straight from the base block table.
	if len(e.cover) == 0 {
		for _, be := range e.cube.blocks.Get(bid, e.blockBuf, e.ctr) {
			if e.cube.tombstones[be.tid] {
				continue
			}
			e.topk.Offer(Result{TID: be.tid, Score: e.f.Eval(be.rank)})
		}
		return
	}
	// Retrieve: intersect cell lists across covering cuboids, filtered to
	// this bid. Lists are tid-ascending, so a k-way merge intersection works.
	var candidates []table.TID
	for i, cb := range e.cover {
		entries := cb.GetPseudoBlock(e.condVals[i], cb.PseudoOf(bid), e.cubeBufs[i], e.ctr)
		var tids []table.TID
		for _, en := range entries {
			if en.BID == bid {
				tids = append(tids, en.TID)
			}
		}
		if i == 0 {
			candidates = tids
		} else {
			candidates = intersectSorted(candidates, tids)
		}
		if len(candidates) == 0 {
			return
		}
	}

	// Evaluate: fetch real values from the base block table and score.
	want := make(map[table.TID]bool, len(candidates))
	for _, tid := range candidates {
		want[tid] = true
	}
	for _, be := range e.cube.blocks.Get(bid, e.blockBuf, e.ctr) {
		if !want[be.tid] || e.cube.tombstones[be.tid] {
			continue
		}
		e.topk.Offer(Result{TID: be.tid, Score: e.f.Eval(be.rank)})
	}
}

func intersectSorted(a, b []table.TID) []table.TID {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
