// Package guard provides the serving control block shared engine
// structures carry: a reader/writer lock over the structure, a
// process-unique ordering ID so multi-structure operations can acquire
// several locks without deadlocking, and the slot for the structure's
// optional admission gate.
//
// Concurrent queries hold the lock shared; maintenance (insert, delete,
// repartition, repair) holds it exclusive. A query spanning several
// structures (the rank join) acquires every control in ascending ID order —
// with a single global order, no cycle of waiters can form, even though
// Go's RWMutex blocks new readers while a writer waits.
package guard

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"rankcube/internal/admission"
)

// nextID issues process-unique ordering IDs.
var nextID atomic.Uint64

// RW is one structure's serving control block. It must only be shared by
// pointer; New is the only constructor. All methods are nil-safe so callers
// can thread an optional control without branching.
type RW struct {
	id   uint64
	mu   sync.RWMutex
	gate atomic.Pointer[admission.Gate]
}

// New returns a fresh control with the next ordering ID.
func New() *RW { return &RW{id: nextID.Add(1)} }

// ID reports the control's position in the global acquisition order.
func (g *RW) ID() uint64 {
	if g == nil {
		return 0
	}
	return g.id
}

// Lock acquires the control exclusively (maintenance).
func (g *RW) Lock() {
	if g != nil {
		g.mu.Lock()
	}
}

// Unlock releases an exclusive hold.
func (g *RW) Unlock() {
	if g != nil {
		g.mu.Unlock()
	}
}

// RLock acquires the control shared (queries).
func (g *RW) RLock() {
	if g != nil {
		g.mu.RLock()
	}
}

// RUnlock releases a shared hold.
func (g *RW) RUnlock() {
	if g != nil {
		g.mu.RUnlock()
	}
}

// SetGate attaches (or with nil detaches) the structure's admission gate.
// Safe to call while queries run; queries already admitted by the old gate
// release against it.
func (g *RW) SetGate(gt *admission.Gate) {
	if g != nil {
		g.gate.Store(gt)
	}
}

// Gate returns the attached admission gate, possibly nil (a nil *Gate
// admits everything).
func (g *RW) Gate() *admission.Gate {
	if g == nil {
		return nil
	}
	return g.gate.Load()
}

// Order returns the given controls deduplicated and sorted ascending by ID
// — the canonical multi-structure acquisition order. Nils are dropped.
func Order(gs ...*RW) []*RW {
	out := make([]*RW, 0, len(gs))
	seen := make(map[*RW]bool, len(gs))
	for _, g := range gs {
		if g == nil || seen[g] {
			continue
		}
		seen[g] = true
		out = append(out, g)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out
}

// AcquireShared admits the calling query through every control's gate and
// read-locks every control, in Order. On gate rejection it undoes what it
// acquired and returns the gate's typed error. The returned release undoes
// everything in reverse and must be called exactly once.
func AcquireShared(ctx context.Context, gs []*RW) (release func(), err error) {
	gs = Order(gs...)
	releases := make([]func(), 0, len(gs))
	for _, g := range gs {
		r, err := g.Gate().Acquire(ctx)
		if err != nil {
			for i := len(releases) - 1; i >= 0; i-- {
				releases[i]()
			}
			return nil, err
		}
		releases = append(releases, r)
	}
	for _, g := range gs {
		g.RLock()
	}
	return func() {
		for i := len(gs) - 1; i >= 0; i-- {
			gs[i].RUnlock()
		}
		for i := len(releases) - 1; i >= 0; i-- {
			releases[i]()
		}
	}, nil
}

// LockExclusive write-locks every control in Order, returning the unlock.
// Maintenance is not admission-gated: the exclusive lock already serializes
// it, and shedding maintenance would lose data rather than load.
func LockExclusive(gs []*RW) (release func()) {
	gs = Order(gs...)
	for _, g := range gs {
		g.Lock()
	}
	return func() {
		for i := len(gs) - 1; i >= 0; i-- {
			gs[i].Unlock()
		}
	}
}
