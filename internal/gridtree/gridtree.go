// Package gridtree implements the grid-based hierarchical partition of
// thesis §4.2.1 (fig. 4.2): ranking dimensions are cut into equi-depth bins
// forming base grid cells, and hierarchy is created by "iteratively merging
// neighboring grid cells" — every ⌊M^(1/n)⌋ consecutive bins per dimension
// collapse into one parent cell, recursively, until a single root remains.
// Empty cells are removed from the tree.
//
// The tree implements hindex.PartitionTree, so the signature ranking cube
// accepts it interchangeably with the R-tree — the two implementations the
// thesis casts into its unified framework (§4.1.2). Grid partitions are not
// incrementally maintainable; they re-partition periodically instead
// (§1.3.1).
package gridtree

import (
	"fmt"
	"math"
	"sort"

	"rankcube/internal/gridcube"
	"rankcube/internal/hindex"
	"rankcube/internal/pager"
	"rankcube/internal/ranking"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// Config controls construction.
type Config struct {
	// PageSize in bytes; defaults to pager.PageSize.
	PageSize int
	// Fanout overrides the page-derived maximum node fanout M.
	Fanout int
	// BlockSize is the expected tuples per base grid cell; defaults to the
	// grid cube's 300.
	BlockSize int
}

func (c Config) pageSize() int {
	if c.PageSize > 0 {
		return c.PageSize
	}
	return pager.PageSize
}

func (c Config) fanoutFor(d int) int {
	if c.Fanout > 0 {
		return c.Fanout
	}
	f := c.pageSize() / (8*d + 4)
	if f < 4 {
		f = 4
	}
	return f
}

type node struct {
	leaf        bool
	parent      hindex.NodeID
	posInParent int
	// coords of the cell in its level's grid, and the level's bins count.
	box  ranking.Box
	kids []hindex.NodeID
	tids []table.TID
	pts  [][]float64
	page pager.PageID
}

// Tree is the merged-grid hierarchy.
type Tree struct {
	dims   []int
	rdims  int
	domain ranking.Box
	fanout int
	group  int // bins merged per dimension per level: ⌊M^(1/n)⌋

	nodes  []*node
	root   hindex.NodeID
	height int
	store  *pager.Store
	leafOf map[table.TID]hindex.NodeID
}

// Build partitions t's tuples over the given ranking dimensions.
func Build(t *table.Table, dims []int, domain ranking.Box, cfg Config) *Tree {
	d := len(dims)
	if d == 0 {
		//lint:invariant cuboid construction never requests a 0-dimensional grid
		panic("gridtree: no dimensions")
	}
	fanout := cfg.fanoutFor(d)
	group := int(math.Floor(math.Pow(float64(fanout), 1/float64(d))))
	if group < 2 {
		group = 2
	}
	tr := &Tree{
		dims:   append([]int(nil), dims...),
		rdims:  t.Schema().R(),
		domain: domain,
		fanout: fanout,
		group:  group,
		root:   hindex.InvalidNode,
		store:  pager.NewStore(stats.StructRTree, cfg.pageSize()),
		leafOf: make(map[table.TID]hindex.NodeID, t.Len()),
	}
	if t.Len() == 0 {
		return tr
	}

	// Equi-depth bins over the covered dimensions (reusing the grid cube's
	// partitioner on a projected view).
	blockSize := cfg.BlockSize
	if blockSize <= 0 {
		blockSize = 300
	}
	proj := projectTable(t, dims)
	meta := gridcube.NewMeta(proj, blockSize)

	// Base cells: bucket tuples by block id.
	cells := make(map[gridcube.BID][]table.TID)
	buf := make([]float64, d)
	for i := 0; i < t.Len(); i++ {
		tid := table.TID(i)
		for j, dim := range dims {
			buf[j] = t.Rank(tid, dim)
		}
		cells[meta.BlockOf(buf)] = append(cells[meta.BlockOf(buf)], tid)
	}

	// Build leaf nodes per non-empty cell, tracked by cell coordinates.
	var level []levelCell
	for bid, tids := range cells {
		nd := &node{leaf: true, parent: hindex.InvalidNode, box: cellBox(tr, meta, bid)}
		for _, tid := range tids {
			nd.tids = append(nd.tids, tid)
			pt := make([]float64, d)
			for j, dim := range dims {
				pt[j] = t.Rank(tid, dim)
			}
			nd.pts = append(nd.pts, pt)
		}
		id := tr.addNode(nd)
		level = append(level, levelCell{coords: meta.Coords(bid, nil), id: id})
	}
	sortLevel(level)
	tr.height = 1

	// Merge upward: every `group` bins per dimension collapse into one
	// parent cell; empty parents never materialize because children come
	// only from non-empty cells.
	for len(level) > 1 {
		sortLevel(level)
		parents := make(map[string]*node)
		coordsOf := make(map[string][]int)
		for _, lc := range level {
			up := make([]int, d)
			for j := range up {
				up[j] = lc.coords[j] / tr.group
			}
			key := fmt.Sprint(up)
			p, ok := parents[key]
			if !ok {
				p = &node{parent: hindex.InvalidNode, box: tr.emptyBox()}
				parents[key] = p
				coordsOf[key] = up
			}
			p.kids = append(p.kids, lc.id)
			growBox(&p.box, tr.nodes[lc.id].box)
		}
		keys := make([]string, 0, len(parents))
		for key := range parents {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		next := make([]levelCell, 0, len(parents))
		for _, key := range keys {
			id := tr.addNode(parents[key])
			next = append(next, levelCell{coords: coordsOf[key], id: id})
		}
		level = next
		tr.height++
	}
	tr.root = level[0].id
	tr.wireParents()
	// Signature codecs size node bit-arrays by MaxFanout; leaf occupancy
	// under equi-depth partitioning can exceed the page-derived fanout, so
	// report the widest node.
	for id := range tr.nodes {
		if w := tr.NumChildren(hindex.NodeID(id)); w > tr.fanout {
			tr.fanout = w
		}
	}
	return tr
}

// projectTable exposes only the covered ranking dimensions to the grid
// partitioner.
func projectTable(t *table.Table, dims []int) *table.Table {
	names := make([]string, len(dims))
	for i, d := range dims {
		names[i] = t.Schema().RankNames[d]
	}
	out := table.MustNew(table.Schema{
		SelNames: []string{"x"}, SelCard: []int{1}, RankNames: names,
	})
	row := make([]float64, len(dims))
	for i := 0; i < t.Len(); i++ {
		for j, d := range dims {
			row[j] = t.Rank(table.TID(i), d)
		}
		out.Append([]int32{0}, row)
	}
	return out
}

func cellBox(tr *Tree, meta gridcube.Meta, bid gridcube.BID) ranking.Box {
	low := meta.BlockBox(bid) // box over projected dims (positions 0..d-1)
	box := tr.domain.Clone()
	for j, dim := range tr.dims {
		box.Lo[dim] = low.Lo[j]
		box.Hi[dim] = low.Hi[j]
	}
	return box
}

func (tr *Tree) emptyBox() ranking.Box {
	box := tr.domain.Clone()
	for _, dim := range tr.dims {
		box.Lo[dim] = math.Inf(1)
		box.Hi[dim] = math.Inf(-1)
	}
	return box
}

func growBox(dst *ranking.Box, src ranking.Box) {
	for i := range dst.Lo {
		if src.Lo[i] < dst.Lo[i] {
			dst.Lo[i] = src.Lo[i]
		}
		if src.Hi[i] > dst.Hi[i] {
			dst.Hi[i] = src.Hi[i]
		}
	}
}

func (tr *Tree) addNode(nd *node) hindex.NodeID {
	nd.page = tr.store.AppendLogical(tr.store.PageSize())
	tr.nodes = append(tr.nodes, nd)
	return hindex.NodeID(len(tr.nodes) - 1)
}

func (tr *Tree) wireParents() {
	for id, nd := range tr.nodes {
		if nd.leaf {
			for _, tid := range nd.tids {
				tr.leafOf[tid] = hindex.NodeID(id)
			}
			continue
		}
		for pos, kid := range nd.kids {
			tr.nodes[kid].parent = hindex.NodeID(id)
			tr.nodes[kid].posInParent = pos
		}
	}
}

// --- hindex.PartitionTree -------------------------------------------------

// Dims implements hindex.Index.
func (tr *Tree) Dims() []int { return tr.dims }

// Domain implements hindex.Index.
func (tr *Tree) Domain() ranking.Box { return tr.domain }

// Root implements hindex.Index.
func (tr *Tree) Root() hindex.NodeID { return tr.root }

// Height implements hindex.Index.
func (tr *Tree) Height() int { return tr.height }

// MaxFanout implements hindex.Index.
func (tr *Tree) MaxFanout() int { return tr.fanout }

// IsLeaf implements hindex.Index.
func (tr *Tree) IsLeaf(id hindex.NodeID) bool { return tr.nodes[id].leaf }

// NumChildren implements hindex.Index.
func (tr *Tree) NumChildren(id hindex.NodeID) int {
	nd := tr.nodes[id]
	if nd.leaf {
		return len(nd.tids)
	}
	return len(nd.kids)
}

// Children implements hindex.Index.
func (tr *Tree) Children(id hindex.NodeID) []hindex.ChildRef {
	nd := tr.nodes[id]
	out := make([]hindex.ChildRef, len(nd.kids))
	for i, kid := range nd.kids {
		out[i] = hindex.ChildRef{ID: kid, Box: tr.nodes[kid].box.Clone()}
	}
	return out
}

// ChildAt implements hindex.Index.
func (tr *Tree) ChildAt(id hindex.NodeID, slot int) hindex.NodeID {
	return tr.nodes[id].kids[slot]
}

// LeafEntries implements hindex.Index.
func (tr *Tree) LeafEntries(id hindex.NodeID) []hindex.LeafEntry {
	nd := tr.nodes[id]
	out := make([]hindex.LeafEntry, len(nd.tids))
	for i, tid := range nd.tids {
		pt := tr.domain.Center()
		for j, dim := range tr.dims {
			pt[dim] = nd.pts[i][j]
		}
		out[i] = hindex.LeafEntry{TID: tid, Point: pt}
	}
	return out
}

// NodeBox implements hindex.Index.
func (tr *Tree) NodeBox(id hindex.NodeID) ranking.Box { return tr.nodes[id].box.Clone() }

// Page implements hindex.Index.
func (tr *Tree) Page(id hindex.NodeID) pager.PageID { return tr.nodes[id].page }

// Store implements hindex.Index.
func (tr *Tree) Store() *pager.Store { return tr.store }

// Path implements hindex.Index.
func (tr *Tree) Path(id hindex.NodeID) []int {
	var rev []int
	for id != tr.root {
		nd := tr.nodes[id]
		rev = append(rev, nd.posInParent+1)
		id = nd.parent
	}
	out := make([]int, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// LeafPath implements hindex.TupleLocator.
func (tr *Tree) LeafPath(tid table.TID) []int {
	id, ok := tr.leafOf[tid]
	if !ok {
		return nil
	}
	return tr.Path(id)
}

// TuplePath implements hindex.PartitionTree.
func (tr *Tree) TuplePath(tid table.TID) []int {
	leaf, ok := tr.leafOf[tid]
	if !ok {
		return nil
	}
	nd := tr.nodes[leaf]
	for slot, t := range nd.tids {
		if t == tid {
			return append(tr.Path(leaf), slot+1)
		}
	}
	return nil
}

// TIDAt implements hindex.PartitionTree.
func (tr *Tree) TIDAt(path []int) (table.TID, bool) {
	if tr.root == hindex.InvalidNode || len(path) == 0 {
		return 0, false
	}
	id := tr.root
	for _, p := range path[:len(path)-1] {
		nd := tr.nodes[id]
		if nd.leaf || p < 1 || p > len(nd.kids) {
			return 0, false
		}
		id = nd.kids[p-1]
	}
	nd := tr.nodes[id]
	slot := path[len(path)-1] - 1
	if !nd.leaf || slot < 0 || slot >= len(nd.tids) {
		return 0, false
	}
	return nd.tids[slot], true
}

// ValueOrdered implements hindex.ValueOrdered.
func (tr *Tree) ValueOrdered() bool { return false }

// NumNodes reports the node count.
func (tr *Tree) NumNodes() int { return len(tr.nodes) }

var _ hindex.PartitionTree = (*Tree)(nil)

// levelCell pairs a node with its cell coordinates at some merge level.
type levelCell struct {
	coords []int
	id     hindex.NodeID
}

// sortLevel orders cells lexicographically by coordinates so construction
// (and therefore node paths) is deterministic.
func sortLevel(level []levelCell) {
	sort.Slice(level, func(a, b int) bool {
		ca, cb := level[a].coords, level[b].coords
		for i := range ca {
			if ca[i] != cb[i] {
				return ca[i] < cb[i]
			}
		}
		return level[a].id < level[b].id
	})
}
