package gridtree

import (
	"math/rand"
	"testing"

	"rankcube/internal/core"
	"rankcube/internal/hindex"
	"rankcube/internal/ranking"
	"rankcube/internal/sigcube"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

func build(t *testing.T, n int, seed int64, fanout int) (*table.Table, *Tree) {
	t.Helper()
	tb := table.Generate(table.GenSpec{T: n, S: 2, R: 2, Card: 5, Seed: seed})
	tr := Build(tb, []int{0, 1}, ranking.UnitBox(2), Config{Fanout: fanout, BlockSize: 50})
	return tb, tr
}

func TestBuildCoversAllTuples(t *testing.T) {
	tb, tr := build(t, 5000, 161, 16)
	seen := map[table.TID]bool{}
	var walk func(id hindex.NodeID, box ranking.Box)
	walk = func(id hindex.NodeID, box ranking.Box) {
		nb := tr.NodeBox(id)
		for d := 0; d < 2; d++ {
			if nb.Lo[d] < box.Lo[d]-1e-9 || nb.Hi[d] > box.Hi[d]+1e-9 {
				t.Fatalf("node %d escapes parent box", id)
			}
		}
		if tr.IsLeaf(id) {
			for _, le := range tr.LeafEntries(id) {
				if seen[le.TID] {
					t.Fatalf("tuple %d duplicated", le.TID)
				}
				seen[le.TID] = true
				for d := 0; d < 2; d++ {
					if le.Point[d] < nb.Lo[d]-1e-9 || le.Point[d] > nb.Hi[d]+1e-9 {
						t.Fatalf("tuple %d outside its leaf box", le.TID)
					}
				}
			}
			return
		}
		for _, ch := range tr.Children(id) {
			walk(ch.ID, ch.Box)
		}
	}
	walk(tr.Root(), tr.NodeBox(tr.Root()))
	if len(seen) != tb.Len() {
		t.Fatalf("covered %d tuples, want %d", len(seen), tb.Len())
	}
}

func TestNodeWidthsWithinFanout(t *testing.T) {
	_, tr := build(t, 8000, 162, 16)
	for id := range tr.nodes {
		if w := tr.NumChildren(hindex.NodeID(id)); w > tr.MaxFanout() {
			t.Fatalf("node %d width %d exceeds reported fanout %d", id, w, tr.MaxFanout())
		}
	}
	if tr.Height() < 2 {
		t.Fatalf("height = %d", tr.Height())
	}
}

func TestTuplePathRoundtrip(t *testing.T) {
	tb, tr := build(t, 3000, 163, 16)
	for i := 0; i < tb.Len(); i += 71 {
		tid := table.TID(i)
		path := tr.TuplePath(tid)
		if len(path) != tr.Height() {
			t.Fatalf("path length %d, want height %d", len(path), tr.Height())
		}
		got, ok := tr.TIDAt(path)
		if !ok || got != tid {
			t.Fatalf("TIDAt(%v) = %d/%v, want %d", path, got, ok, tid)
		}
		if hindex.PathKey(tr.LeafPath(tid)) != hindex.PathKey(path[:len(path)-1]) {
			t.Fatal("LeafPath disagrees with TuplePath prefix")
		}
	}
}

func TestDeterministicConstruction(t *testing.T) {
	_, a := build(t, 2000, 164, 16)
	_, b := build(t, 2000, 164, 16)
	for i := 0; i < 2000; i += 13 {
		tid := table.TID(i)
		if hindex.PathKey(a.TuplePath(tid)) != hindex.PathKey(b.TuplePath(tid)) {
			t.Fatalf("construction not deterministic at tuple %d", tid)
		}
	}
}

// TestSignatureCubeOverGridPartition is the §4.1.2 interchangeability
// claim: the signature ranking cube gives identical answers over the grid
// hierarchy and the R-tree.
func TestSignatureCubeOverGridPartition(t *testing.T) {
	tb := table.Generate(table.GenSpec{T: 8000, S: 3, R: 2, Card: 6, Seed: 165})
	grid := Build(tb, []int{0, 1}, ranking.UnitBox(2), Config{Fanout: 32, BlockSize: 100})
	cubeGrid := sigcube.BuildOnTree(tb, grid, sigcube.Config{})
	cubeRTree := sigcube.Build(tb, sigcube.Config{})

	rng := rand.New(rand.NewSource(166))
	for trial := 0; trial < 15; trial++ {
		cond := core.Cond{rng.Intn(3): int32(rng.Intn(6))}
		f := ranking.SqDist([]int{0, 1}, []float64{rng.Float64(), rng.Float64()})
		k := 1 + rng.Intn(15)
		a, err := cubeGrid.TopK(cond, f, k, stats.New())
		if err != nil {
			t.Fatal(err)
		}
		b, err := cubeRTree.TopK(cond, f, k, stats.New())
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("grid partition returned %d results, R-tree %d", len(a), len(b))
		}
		for i := range a {
			if diff := a[i].Score - b[i].Score; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("result %d: grid %v vs rtree %v", i, a[i].Score, b[i].Score)
			}
		}
	}
}

func TestEmptyTree(t *testing.T) {
	tb := table.MustNew(table.Schema{SelNames: []string{"a"}, SelCard: []int{2}, RankNames: []string{"x", "y"}})
	tr := Build(tb, []int{0, 1}, ranking.UnitBox(2), Config{})
	if tr.Root() != hindex.InvalidNode || tr.Height() != 0 {
		t.Fatal("empty build produced structure")
	}
}
