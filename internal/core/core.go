// Package core holds the pieces of the ranking-cube framework shared by its
// two implementations (thesis §4.1.1): the grid partition with neighborhood
// search (internal/gridcube) and the hierarchical partition with top-down
// search (internal/sigcube), plus the baselines and extensions built around
// them. The unified framework is: (1) a rank-aware data partition P, (2) a
// per-predicate measure M(P|B) telling which partitions contain satisfying
// tuples, and (3) a progressive search S that retrieves a partition only
// when it may beat the current top-k and M marks it non-empty.
package core

import "rankcube/internal/table"

// Result is one scored tuple of a top-k answer, ascending scores preferred.
type Result struct {
	TID   table.TID
	Score float64
}

// WorseResult orders results for bounded top-k heaps: higher score is worse;
// ties break toward higher tid so results are deterministic.
func WorseResult(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.TID > b.TID
}

// Cond is a conjunctive multi-dimensional selection: selection-dimension
// position → required value. It is the boolean predicate B of the thesis'
// query model (§1.2.1).
type Cond map[int]int32

// Dims lists the constrained dimensions in ascending order.
func (c Cond) Dims() []int {
	out := make([]int, 0, len(c))
	for d := range c {
		out = append(out, d)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
