package core

import (
	"sort"
	"testing"
	"testing/quick"

	"rankcube/internal/table"
)

func TestWorseResultOrdering(t *testing.T) {
	a := Result{TID: 1, Score: 2}
	b := Result{TID: 2, Score: 1}
	if !WorseResult(a, b) || WorseResult(b, a) {
		t.Fatal("score ordering wrong")
	}
	// Ties break on tid.
	c := Result{TID: 3, Score: 1}
	if !WorseResult(c, b) || WorseResult(b, c) {
		t.Fatal("tie-break ordering wrong")
	}
	if WorseResult(b, b) {
		t.Fatal("element worse than itself")
	}
}

func TestWorseResultTotalOrderProperty(t *testing.T) {
	// Antisymmetry: for distinct results exactly one of worse(a,b),
	// worse(b,a) holds.
	f := func(t1, t2 int32, s1, s2 uint8) bool {
		a := Result{TID: table.TID(t1), Score: float64(s1)}
		b := Result{TID: table.TID(t2), Score: float64(s2)}
		if a == b {
			return !WorseResult(a, b) && !WorseResult(b, a)
		}
		return WorseResult(a, b) != WorseResult(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCondDims(t *testing.T) {
	c := Cond{5: 1, 0: 2, 3: 3}
	got := c.Dims()
	if !sort.IntsAreSorted(got) || len(got) != 3 {
		t.Fatalf("Dims = %v", got)
	}
	if got[0] != 0 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("Dims = %v", got)
	}
	if len((Cond{}).Dims()) != 0 {
		t.Fatal("empty cond has dims")
	}
}
