package ranking

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalArithmetic(t *testing.T) {
	a := Interval{-1, 2}
	b := Interval{3, 5}
	if got := a.Add(b); got != (Interval{2, 7}) {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Interval{-6, -1}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Mul(b); got != (Interval{-5, 10}) {
		t.Fatalf("Mul = %v", got)
	}
	if got := a.Sqr(); got != (Interval{0, 4}) {
		t.Fatalf("Sqr = %v", got)
	}
	if got := a.Abs(); got != (Interval{0, 2}) {
		t.Fatalf("Abs = %v", got)
	}
	if got := (Interval{-3, -1}).Sqr(); got != (Interval{1, 9}) {
		t.Fatalf("negative Sqr = %v", got)
	}
	if got := (Interval{-3, -1}).Abs(); got != (Interval{1, 3}) {
		t.Fatalf("negative Abs = %v", got)
	}
}

func TestIntervalIntersect(t *testing.T) {
	a := Interval{0, 5}
	if got := a.Intersect(Interval{3, 8}); got != (Interval{3, 5}) {
		t.Fatalf("Intersect = %v", got)
	}
	if !a.Intersect(Interval{6, 7}).Empty() {
		t.Fatal("disjoint Intersect not empty")
	}
}

// randBoxAndPoint draws a random box in [-2, 2]^r and a random point inside.
func randBoxAndPoint(rng *rand.Rand, r int) (Box, []float64) {
	lo := make([]float64, r)
	hi := make([]float64, r)
	pt := make([]float64, r)
	for i := 0; i < r; i++ {
		a := rng.Float64()*4 - 2
		b := rng.Float64()*4 - 2
		if a > b {
			a, b = b, a
		}
		lo[i], hi[i] = a, b
		pt[i] = a + rng.Float64()*(b-a)
	}
	return NewBox(lo, hi), pt
}

// checkSound verifies f.LowerBound(box) ≤ f.Eval(pt) for points inside box.
func checkSound(t *testing.T, f Func, trials int) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	r := maxAttr(f.Attrs()) + 1
	if r < 3 {
		r = 3
	}
	for i := 0; i < trials; i++ {
		box, pt := randBoxAndPoint(rng, r)
		lb := f.LowerBound(box)
		v := f.Eval(pt)
		if lb > v+1e-9 {
			t.Fatalf("%s: LowerBound(%v..%v) = %v > Eval(%v) = %v",
				f, box.Lo, box.Hi, lb, pt, v)
		}
	}
}

func TestLinearBoundSound(t *testing.T) {
	checkSound(t, Linear([]int{0, 1}, []float64{1, 2}), 500)
	checkSound(t, Linear([]int{0, 2}, []float64{-1, 3}), 500)
}

func TestLinearBoundExact(t *testing.T) {
	f := Linear([]int{0, 1}, []float64{2, -3})
	box := NewBox([]float64{0, 0, 0}, []float64{1, 1, 1})
	// min = 2·0 + (−3)·1 = −3 at (0, 1).
	if got := f.LowerBound(box); got != -3 {
		t.Fatalf("LowerBound = %v, want -3", got)
	}
	am := f.ArgMin(box)
	if f.Eval(am) != -3 {
		t.Fatalf("Eval(ArgMin) = %v, want -3", f.Eval(am))
	}
}

func TestLinearSkewness(t *testing.T) {
	f := Linear([]int{0, 1}, []float64{1, 5})
	if got := f.Skewness(); got != 5 {
		t.Fatalf("Skewness = %v, want 5", got)
	}
}

func TestSqDistBoundExact(t *testing.T) {
	f := SqDist([]int{0, 1}, []float64{0.5, 0.5})
	box := NewBox([]float64{0.6, 0.7, 0}, []float64{0.9, 0.8, 1})
	want := 0.1*0.1 + 0.2*0.2
	if got := f.LowerBound(box); math.Abs(got-want) > 1e-12 {
		t.Fatalf("LowerBound = %v, want %v", got, want)
	}
	am := f.ArgMin(box)
	if math.Abs(f.Eval(am)-want) > 1e-12 {
		t.Fatalf("Eval(ArgMin) = %v, want %v", f.Eval(am), want)
	}
	// Target inside the box bounds to zero.
	inside := NewBox([]float64{0, 0, 0}, []float64{1, 1, 1})
	if got := f.LowerBound(inside); got != 0 {
		t.Fatalf("LowerBound(inside) = %v, want 0", got)
	}
}

func TestDistSound(t *testing.T) {
	checkSound(t, SqDist([]int{0, 1, 2}, []float64{0.1, -0.5, 1}), 500)
	checkSound(t, L1Dist([]int{0, 2}, []float64{0.3, 0.7}), 500)
}

func TestGeneralExprSound(t *testing.T) {
	// fg = (A − B²)² over dims 0, 1 (thesis §5.4.2).
	fg := General(Sqr(Sub(Var(0), Sqr(Var(1)))))
	checkSound(t, fg, 1000)
	// (2X − Y − Z)² (thesis §4.4.2 general query).
	f2 := General(Sqr(Sub(Scale(2, Var(0)), Add(Var(1), Var(2)))))
	checkSound(t, f2, 1000)
}

func TestGeneralAttrs(t *testing.T) {
	f := General(Sqr(Sub(Var(2), Sqr(Var(0)))))
	got := f.Attrs()
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Attrs = %v, want [0 2]", got)
	}
}

func TestExprEval(t *testing.T) {
	// (2·x0 − x1 − x2)² at (1, 0.5, 0.5) = 1.
	e := Sqr(Sub(Scale(2, Var(0)), Add(Var(1), Var(2))))
	if got := e.Eval([]float64{1, 0.5, 0.5}); got != 1 {
		t.Fatalf("Eval = %v, want 1", got)
	}
	if got := Abs(Const(-3)).Eval(nil); got != 3 {
		t.Fatalf("Abs = %v", got)
	}
	if got := Neg(Const(2)).Eval(nil); got != -2 {
		t.Fatalf("Neg = %v", got)
	}
}

func TestConstrainedBound(t *testing.T) {
	inner := Sum(0, 1)
	f := Constrained(inner, 1, 0.4, 0.6)
	// Point outside the band scores +Inf.
	if !math.IsInf(f.Eval([]float64{0.1, 0.9, 0}), 1) {
		t.Fatal("Eval outside band not +Inf")
	}
	if f.Eval([]float64{0.1, 0.5, 0}) != 0.6 {
		t.Fatalf("Eval inside band = %v", f.Eval([]float64{0.1, 0.5, 0}))
	}
	// Box disjoint from the band bounds to +Inf.
	boxOut := NewBox([]float64{0, 0.7, 0}, []float64{1, 1, 1})
	if !math.IsInf(f.LowerBound(boxOut), 1) {
		t.Fatal("LowerBound of disjoint box not +Inf")
	}
	// Box overlapping the band clips: min = 0 + 0.4.
	boxIn := NewBox([]float64{0, 0, 0}, []float64{1, 1, 1})
	if got := f.LowerBound(boxIn); got != 0.4 {
		t.Fatalf("LowerBound = %v, want 0.4", got)
	}
	if len(f.Attrs()) != 2 {
		t.Fatalf("Attrs = %v", f.Attrs())
	}
}

func TestMonotoneDirections(t *testing.T) {
	f := Linear([]int{0, 1}, []float64{2, -1})
	d := f.Directions()
	if d[0] != 1 || d[1] != -1 {
		t.Fatalf("Directions = %v", d)
	}
	if !IsConvexFunc(f) {
		t.Fatal("linear not convex")
	}
	var m Monotone = f
	_ = m
	var sm SemiMonotone = SqDist([]int{0}, []float64{0.5})
	if sm.Extreme()[0] != 0.5 {
		t.Fatalf("Extreme = %v", sm.Extreme())
	}
}

func TestQuickBoundProperty(t *testing.T) {
	// Property: for random linear functions, LowerBound equals the minimum
	// over the box corners.
	f := func(w0, w1 float64, seed int64) bool {
		if math.IsNaN(w0) || math.IsNaN(w1) || math.IsInf(w0, 0) || math.IsInf(w1, 0) {
			return true
		}
		// Fold arbitrary quick-generated magnitudes into a numerically sane
		// range; the property under test is geometric, not about overflow.
		w0 = math.Remainder(w0, 100)
		w1 = math.Remainder(w1, 100)
		rng := rand.New(rand.NewSource(seed))
		fn := Linear([]int{0, 1}, []float64{w0, w1})
		box, _ := randBoxAndPoint(rng, 2)
		lb := fn.LowerBound(box)
		best := math.Inf(1)
		for _, x := range []float64{box.Lo[0], box.Hi[0]} {
			for _, y := range []float64{box.Lo[1], box.Hi[1]} {
				if v := fn.Eval([]float64{x, y}); v < best {
					best = v
				}
			}
		}
		return math.Abs(lb-best) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBoxBasics(t *testing.T) {
	b := UnitBox(3)
	if b.Dims() != 3 {
		t.Fatalf("Dims = %d", b.Dims())
	}
	if !b.Contains([]float64{0.5, 0, 1}) {
		t.Fatal("Contains failed")
	}
	if b.Contains([]float64{1.5, 0, 0}) {
		t.Fatal("Contains accepted outside point")
	}
	c := b.Clone()
	c.Lo[0] = 0.5
	if b.Lo[0] != 0 {
		t.Fatal("Clone aliases")
	}
	ctr := b.Center()
	if ctr[0] != 0.5 || ctr[2] != 0.5 {
		t.Fatalf("Center = %v", ctr)
	}
}
