package ranking

import (
	"math"
	"sort"
)

// Func is the query-time ranking function contract. All engines in this
// repository assume score-ascending top-k ("users prefer minimal values",
// thesis §1.2.1) — higher-is-better queries are expressed by negating.
type Func interface {
	// Eval scores a full-width ranking vector (indexed by ranking-dimension
	// position).
	Eval(x []float64) float64
	// LowerBound returns a sound lower bound of the function over box — the
	// f(bid)/f(S) quantity driving every progressive search in the thesis.
	LowerBound(box Box) float64
	// Attrs lists the ranking-dimension positions the function references,
	// sorted ascending.
	Attrs() []int
	// String renders the function.
	String() string
}

// Convex is implemented by functions guaranteeing convexity over their
// domain, enabling the grid cube's neighborhood search (thesis Lemma 1).
type Convex interface {
	IsConvex() bool
}

// Minimizer is implemented by functions that can name a point attaining
// their lower bound within a box; the grid cube uses it to locate the first
// candidate block (§3.3.2 "Search").
type Minimizer interface {
	ArgMin(box Box) []float64
}

// Monotone is implemented by functions monotone in each referenced attribute
// over the whole domain; Directions reports +1 (non-decreasing) or −1
// (non-increasing) per referenced attribute, aligned with Attrs order.
// Index-merge neighborhood expansion (§5.2.2) requires it.
type Monotone interface {
	Directions() []int
}

// SemiMonotone is implemented by functions that decrease toward and increase
// away from a single extreme point o per dimension (thesis §5.2.2:
// f(x) ≤ f(x') whenever |xi−oi| ≤ |x'i−oi| for every i).
type SemiMonotone interface {
	Extreme() []float64
}

// IsConvexFunc reports whether f declares convexity.
func IsConvexFunc(f Func) bool {
	c, ok := f.(Convex)
	return ok && c.IsConvex()
}

// ---------------------------------------------------------------------------
// Linear functions: f = b + Σ w_i · N_{a_i}
// ---------------------------------------------------------------------------

// LinearFunc is a weighted linear combination of ranking attributes. Weights
// may be negative (thesis Def. 1 note: linear functions are convex with no
// sign restriction on weights).
type LinearFunc struct {
	attrs   []int
	weights []float64
	bias    float64
}

// Linear builds f = Σ weights[i]·N_{attrs[i]}. attrs must be distinct;
// entries are sorted (with weights permuted to match).
func Linear(attrs []int, weights []float64) *LinearFunc {
	if len(attrs) != len(weights) {
		//lint:invariant documented precondition: one weight per attribute
		panic("ranking: Linear attrs/weights length mismatch")
	}
	idx := make([]int, len(attrs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return attrs[idx[a]] < attrs[idx[b]] })
	f := &LinearFunc{
		attrs:   make([]int, len(attrs)),
		weights: make([]float64, len(weights)),
	}
	for i, j := range idx {
		f.attrs[i] = attrs[j]
		f.weights[i] = weights[j]
	}
	return f
}

// Sum builds the unweighted sum over the given attributes (e.g. N1+N2).
func Sum(attrs ...int) *LinearFunc {
	w := make([]float64, len(attrs))
	for i := range w {
		w[i] = 1
	}
	return Linear(attrs, w)
}

// Eval implements Func.
func (f *LinearFunc) Eval(x []float64) float64 {
	s := f.bias
	for i, a := range f.attrs {
		s += f.weights[i] * x[a]
	}
	return s
}

// LowerBound implements Func with the exact box minimum.
func (f *LinearFunc) LowerBound(box Box) float64 {
	s := f.bias
	for i, a := range f.attrs {
		w := f.weights[i]
		if w >= 0 {
			s += w * box.Lo[a]
		} else {
			s += w * box.Hi[a]
		}
	}
	return s
}

// Attrs implements Func.
func (f *LinearFunc) Attrs() []int { return f.attrs }

// IsConvex implements Convex.
func (f *LinearFunc) IsConvex() bool { return true }

// Directions implements Monotone.
func (f *LinearFunc) Directions() []int {
	d := make([]int, len(f.weights))
	for i, w := range f.weights {
		if w >= 0 {
			d[i] = 1
		} else {
			d[i] = -1
		}
	}
	return d
}

// ArgMin implements Minimizer.
func (f *LinearFunc) ArgMin(box Box) []float64 {
	p := box.Center()
	for i, a := range f.attrs {
		if f.weights[i] >= 0 {
			p[a] = box.Lo[a]
		} else {
			p[a] = box.Hi[a]
		}
	}
	return p
}

// Weights returns the weight vector aligned with Attrs.
func (f *LinearFunc) Weights() []float64 { return f.weights }

func (f *LinearFunc) String() string {
	e := Expr(Const(f.bias))
	terms := []Expr{}
	if f.bias != 0 {
		terms = append(terms, e)
	}
	for i, a := range f.attrs {
		terms = append(terms, Scale(f.weights[i], Var(a)))
	}
	return exprString(Add(terms...))
}

// Skewness reports max|w|/min|w|, the query-skewness measure u of thesis
// Table 3.9.
func (f *LinearFunc) Skewness() float64 {
	lo, hi := math.Inf(1), 0.0
	for _, w := range f.weights {
		a := math.Abs(w)
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	if lo == 0 {
		return math.Inf(1)
	}
	return hi / lo
}

// ---------------------------------------------------------------------------
// Distance functions: Σ (N_a − t_a)^p for p ∈ {1, 2}
// ---------------------------------------------------------------------------

// DistFunc scores points by distance to a target (the "expected price 20k,
// expected mileage 10k" queries of thesis Example 1).
type DistFunc struct {
	attrs  []int
	target []float64
	l1     bool
}

// SqDist builds Σ (N_{attrs[i]} − target[i])².
func SqDist(attrs []int, target []float64) *DistFunc {
	return newDist(attrs, target, false)
}

// L1Dist builds Σ |N_{attrs[i]} − target[i]|.
func L1Dist(attrs []int, target []float64) *DistFunc {
	return newDist(attrs, target, true)
}

func newDist(attrs []int, target []float64, l1 bool) *DistFunc {
	if len(attrs) != len(target) {
		//lint:invariant documented precondition: one coordinate per attribute
		panic("ranking: distance attrs/target length mismatch")
	}
	idx := make([]int, len(attrs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return attrs[idx[a]] < attrs[idx[b]] })
	f := &DistFunc{
		attrs:  make([]int, len(attrs)),
		target: make([]float64, len(target)),
		l1:     l1,
	}
	for i, j := range idx {
		f.attrs[i] = attrs[j]
		f.target[i] = target[j]
	}
	return f
}

// Eval implements Func.
func (f *DistFunc) Eval(x []float64) float64 {
	var s float64
	for i, a := range f.attrs {
		d := x[a] - f.target[i]
		if f.l1 {
			s += math.Abs(d)
		} else {
			s += d * d
		}
	}
	return s
}

// LowerBound implements Func with the exact box minimum (per-dimension clamp
// of the target into the box).
func (f *DistFunc) LowerBound(box Box) float64 {
	var s float64
	for i, a := range f.attrs {
		t := f.target[i]
		var d float64
		if t < box.Lo[a] {
			d = box.Lo[a] - t
		} else if t > box.Hi[a] {
			d = t - box.Hi[a]
		}
		if f.l1 {
			s += d
		} else {
			s += d * d
		}
	}
	return s
}

// Attrs implements Func.
func (f *DistFunc) Attrs() []int { return f.attrs }

// IsConvex implements Convex.
func (f *DistFunc) IsConvex() bool { return true }

// Extreme implements SemiMonotone: the function is minimal at the target and
// grows with per-dimension distance from it.
func (f *DistFunc) Extreme() []float64 {
	e := make([]float64, maxAttr(f.attrs)+1)
	for i, a := range f.attrs {
		e[a] = f.target[i]
	}
	return e
}

// ArgMin implements Minimizer.
func (f *DistFunc) ArgMin(box Box) []float64 {
	p := box.Center()
	for i, a := range f.attrs {
		t := f.target[i]
		if t < box.Lo[a] {
			t = box.Lo[a]
		} else if t > box.Hi[a] {
			t = box.Hi[a]
		}
		p[a] = t
	}
	return p
}

func (f *DistFunc) String() string {
	terms := make([]Expr, len(f.attrs))
	for i, a := range f.attrs {
		d := Sub(Var(a), Const(f.target[i]))
		if f.l1 {
			terms[i] = Abs(d)
		} else {
			terms[i] = Sqr(d)
		}
	}
	return exprString(Add(terms...))
}

func maxAttr(attrs []int) int {
	m := 0
	for _, a := range attrs {
		if a > m {
			m = a
		}
	}
	return m
}

// ---------------------------------------------------------------------------
// General expression functions with interval-arithmetic bounds
// ---------------------------------------------------------------------------

// ExprFunc wraps an arbitrary expression tree; lower bounds come from
// interval arithmetic (sound, possibly loose). It models the thesis' "general
// query" class, e.g. fg = (A − B²)² (§5.4.2).
type ExprFunc struct {
	expr  Expr
	attrs []int
}

// General wraps expr as a ranking function.
func General(expr Expr) *ExprFunc {
	set := make(map[int]struct{})
	vars(expr, set)
	attrs := make([]int, 0, len(set))
	for a := range set {
		attrs = append(attrs, a)
	}
	sort.Ints(attrs)
	return &ExprFunc{expr: expr, attrs: attrs}
}

// Eval implements Func.
func (f *ExprFunc) Eval(x []float64) float64 { return f.expr.Eval(x) }

// LowerBound implements Func.
func (f *ExprFunc) LowerBound(box Box) float64 { return f.expr.Bound(box).Lo }

// Attrs implements Func.
func (f *ExprFunc) Attrs() []int { return f.attrs }

func (f *ExprFunc) String() string { return f.expr.String() }

// ---------------------------------------------------------------------------
// Constrained functions: f = inner / η(N_a), η = 1 inside [lo,hi] else 0
// ---------------------------------------------------------------------------

// ConstrainedFunc is the thesis' fc query class (§5.4.2): the inner score
// where attribute attr lies within [lo, hi], +Inf outside.
type ConstrainedFunc struct {
	inner  Func
	attr   int
	lo, hi float64
	attrs  []int
}

// Constrained restricts inner to boxes intersecting attr ∈ [lo, hi].
func Constrained(inner Func, attr int, lo, hi float64) *ConstrainedFunc {
	attrs := append([]int(nil), inner.Attrs()...)
	found := false
	for _, a := range attrs {
		if a == attr {
			found = true
			break
		}
	}
	if !found {
		attrs = append(attrs, attr)
		sort.Ints(attrs)
	}
	return &ConstrainedFunc{inner: inner, attr: attr, lo: lo, hi: hi, attrs: attrs}
}

// Eval implements Func.
func (f *ConstrainedFunc) Eval(x []float64) float64 {
	if x[f.attr] < f.lo || x[f.attr] > f.hi {
		return math.Inf(1)
	}
	return f.inner.Eval(x)
}

// LowerBound implements Func: the box is clipped to the constraint band; a
// box entirely outside the band bounds to +Inf and is pruned.
func (f *ConstrainedFunc) LowerBound(box Box) float64 {
	if box.Hi[f.attr] < f.lo || box.Lo[f.attr] > f.hi {
		return math.Inf(1)
	}
	clipped := box.Clone()
	if clipped.Lo[f.attr] < f.lo {
		clipped.Lo[f.attr] = f.lo
	}
	if clipped.Hi[f.attr] > f.hi {
		clipped.Hi[f.attr] = f.hi
	}
	return f.inner.LowerBound(clipped)
}

// Attrs implements Func.
func (f *ConstrainedFunc) Attrs() []int { return f.attrs }

func (f *ConstrainedFunc) String() string {
	return "(" + f.inner.String() + ") / eta(N" + itoa(f.attr) + ")"
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
