// Package ranking implements the ranking-function model of the thesis:
// user-supplied ad hoc scoring functions over the ranking dimensions, with
// the single structural requirement the thesis imposes (§1.2.1, §4.1.3):
// given a function f and a domain region Ω, a lower bound of f over Ω can be
// derived.
//
// Lower bounds are provided in two ways. The common query functions of the
// evaluation chapters (linear combinations, squared/absolute distance,
// boolean-constrained variants) have closed-form exact bounds. Arbitrary
// functions are expressed as expression trees and bounded with interval
// arithmetic, which is conservative but always sound.
//
// Several search strategies exploit extra structure when a function declares
// it: convexity (grid-cube neighborhood search, thesis Lemma 1), monotone and
// semi-monotone shape (index-merge neighborhood expansion, §5.2.2).
package ranking

import "math"

// Interval is a closed real interval [Lo, Hi].
type Interval struct {
	Lo, Hi float64
}

// Point returns the degenerate interval [v, v].
func Point(v float64) Interval { return Interval{v, v} }

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v float64) bool { return iv.Lo <= v && v <= iv.Hi }

// Empty reports whether the interval is empty (Lo > Hi).
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Intersect returns the intersection of two intervals (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	return Interval{math.Max(iv.Lo, o.Lo), math.Min(iv.Hi, o.Hi)}
}

// Add returns iv + o under interval arithmetic.
func (iv Interval) Add(o Interval) Interval { return Interval{iv.Lo + o.Lo, iv.Hi + o.Hi} }

// Sub returns iv − o under interval arithmetic.
func (iv Interval) Sub(o Interval) Interval { return Interval{iv.Lo - o.Hi, iv.Hi - o.Lo} }

// Neg returns −iv.
func (iv Interval) Neg() Interval { return Interval{-iv.Hi, -iv.Lo} }

// Mul returns iv × o under interval arithmetic.
func (iv Interval) Mul(o Interval) Interval {
	p1, p2 := iv.Lo*o.Lo, iv.Lo*o.Hi
	p3, p4 := iv.Hi*o.Lo, iv.Hi*o.Hi
	return Interval{
		math.Min(math.Min(p1, p2), math.Min(p3, p4)),
		math.Max(math.Max(p1, p2), math.Max(p3, p4)),
	}
}

// Sqr returns iv² (tighter than iv.Mul(iv) when the interval straddles 0).
func (iv Interval) Sqr() Interval {
	lo2, hi2 := iv.Lo*iv.Lo, iv.Hi*iv.Hi
	hi := math.Max(lo2, hi2)
	if iv.Contains(0) {
		return Interval{0, hi}
	}
	return Interval{math.Min(lo2, hi2), hi}
}

// Abs returns |iv|.
func (iv Interval) Abs() Interval {
	if iv.Contains(0) {
		return Interval{0, math.Max(-iv.Lo, iv.Hi)}
	}
	if iv.Hi < 0 {
		return Interval{-iv.Hi, -iv.Lo}
	}
	return iv
}

// Box is an axis-aligned hyperrectangle over the ranking dimensions of a
// relation. Lo and Hi are indexed by ranking-dimension position (0..R-1);
// they always have equal length.
type Box struct {
	Lo, Hi []float64
}

// NewBox returns a box spanning [lo[i], hi[i]] on each dimension. The slices
// are retained, not copied.
func NewBox(lo, hi []float64) Box { return Box{Lo: lo, Hi: hi} }

// UnitBox returns the box [0,1]^r.
func UnitBox(r int) Box {
	lo := make([]float64, r)
	hi := make([]float64, r)
	for i := range hi {
		hi[i] = 1
	}
	return Box{lo, hi}
}

// Dims reports the dimensionality of the box.
func (b Box) Dims() int { return len(b.Lo) }

// Dim returns the interval of dimension i.
func (b Box) Dim(i int) Interval { return Interval{b.Lo[i], b.Hi[i]} }

// Contains reports whether point x (full-width vector) lies inside the box.
func (b Box) Contains(x []float64) bool {
	for i := range b.Lo {
		if x[i] < b.Lo[i] || x[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the box.
func (b Box) Clone() Box {
	lo := make([]float64, len(b.Lo))
	hi := make([]float64, len(b.Hi))
	copy(lo, b.Lo)
	copy(hi, b.Hi)
	return Box{lo, hi}
}

// Center returns the box midpoint.
func (b Box) Center() []float64 {
	c := make([]float64, len(b.Lo))
	for i := range c {
		c[i] = (b.Lo[i] + b.Hi[i]) / 2
	}
	return c
}
