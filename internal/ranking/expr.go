package ranking

import (
	"fmt"
	"strings"
)

// Expr is a scoring expression over ranking attributes. Var indices refer to
// ranking-dimension positions, matching Box dimensions.
type Expr interface {
	// Eval computes the expression at point x.
	Eval(x []float64) float64
	// Bound computes a sound enclosure of the expression's range over box.
	Bound(box Box) Interval
	// String renders the expression for diagnostics.
	String() string
}

// Var references ranking dimension int(v).
type Var int

// Eval implements Expr.
func (v Var) Eval(x []float64) float64 { return x[v] }

// Bound implements Expr.
func (v Var) Bound(box Box) Interval { return box.Dim(int(v)) }

func (v Var) String() string { return fmt.Sprintf("N%d", int(v)) }

// Const is a constant expression.
type Const float64

// Eval implements Expr.
func (c Const) Eval([]float64) float64 { return float64(c) }

// Bound implements Expr.
func (c Const) Bound(Box) Interval { return Point(float64(c)) }

func (c Const) String() string { return fmt.Sprintf("%g", float64(c)) }

type binary struct {
	op   byte // '+', '-', '*'
	l, r Expr
}

func (b binary) Eval(x []float64) float64 {
	lv, rv := b.l.Eval(x), b.r.Eval(x)
	switch b.op {
	case '+':
		return lv + rv
	case '-':
		return lv - rv
	default:
		return lv * rv
	}
}

func (b binary) Bound(box Box) Interval {
	lv, rv := b.l.Bound(box), b.r.Bound(box)
	switch b.op {
	case '+':
		return lv.Add(rv)
	case '-':
		return lv.Sub(rv)
	default:
		return lv.Mul(rv)
	}
}

func (b binary) String() string {
	return fmt.Sprintf("(%s %c %s)", b.l, b.op, b.r)
}

type unary struct {
	op byte // 's' sqr, 'a' abs, 'n' neg
	e  Expr
}

func (u unary) Eval(x []float64) float64 {
	v := u.e.Eval(x)
	switch u.op {
	case 's':
		return v * v
	case 'a':
		if v < 0 {
			return -v
		}
		return v
	default:
		return -v
	}
}

func (u unary) Bound(box Box) Interval {
	v := u.e.Bound(box)
	switch u.op {
	case 's':
		return v.Sqr()
	case 'a':
		return v.Abs()
	default:
		return v.Neg()
	}
}

func (u unary) String() string {
	switch u.op {
	case 's':
		return fmt.Sprintf("(%s)^2", u.e)
	case 'a':
		return fmt.Sprintf("|%s|", u.e)
	default:
		return fmt.Sprintf("-(%s)", u.e)
	}
}

// Add returns l + r (variadic sums fold left).
func Add(terms ...Expr) Expr {
	if len(terms) == 0 {
		return Const(0)
	}
	e := terms[0]
	for _, t := range terms[1:] {
		e = binary{'+', e, t}
	}
	return e
}

// Sub returns l − r.
func Sub(l, r Expr) Expr { return binary{'-', l, r} }

// Mul returns l × r.
func Mul(l, r Expr) Expr { return binary{'*', l, r} }

// Sqr returns e².
func Sqr(e Expr) Expr { return unary{'s', e} }

// Abs returns |e|.
func Abs(e Expr) Expr { return unary{'a', e} }

// Neg returns −e.
func Neg(e Expr) Expr { return unary{'n', e} }

// Scale returns c × e.
func Scale(c float64, e Expr) Expr { return binary{'*', Const(c), e} }

// vars collects the set of dimensions referenced by e into set.
func vars(e Expr, set map[int]struct{}) {
	switch t := e.(type) {
	case Var:
		set[int(t)] = struct{}{}
	case binary:
		vars(t.l, set)
		vars(t.r, set)
	case unary:
		vars(t.e, set)
	}
}

func exprString(e Expr) string {
	var b strings.Builder
	b.WriteString(e.String())
	return b.String()
}
