package bloom

import (
	"math/rand"
	"testing"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1024, 3)
	rng := rand.New(rand.NewSource(11))
	keys := make([]uint64, 100)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Add(keys[i])
	}
	for _, k := range keys {
		if !f.MayContain(k) {
			t.Fatalf("false negative for key %d", k)
		}
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	n := 1000
	f := New(10*n, 7) // 10 bits/key, k=7 → fp ≈ 0.8%
	rng := rand.New(rand.NewSource(12))
	seen := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		k := rng.Uint64()
		seen[k] = true
		f.Add(k)
	}
	fp := 0
	trials := 20000
	for i := 0; i < trials; i++ {
		k := rng.Uint64()
		if seen[k] {
			continue
		}
		if f.MayContain(k) {
			fp++
		}
	}
	rate := float64(fp) / float64(trials)
	if rate > 0.05 {
		t.Fatalf("false positive rate %.3f too high", rate)
	}
	if est := f.FalsePositiveRate(n); est > 0.05 {
		t.Fatalf("estimated fp rate %.3f unexpectedly high", est)
	}
}

func TestNewOptimalRespectsCap(t *testing.T) {
	f := NewOptimal(1_000_000, 4096*8, 10)
	if f.Bits() > 4096*8 {
		t.Fatalf("Bits = %d exceeds cap", f.Bits())
	}
	if f.K() < 1 || f.K() > 10 {
		t.Fatalf("K = %d out of range", f.K())
	}
	small := NewOptimal(3, 4096*8, 10)
	if small.Bits() > 4096*8 {
		t.Fatalf("small Bits = %d", small.Bits())
	}
	if !small.MayContain(99) {
		small.Add(99)
		if !small.MayContain(99) {
			t.Fatal("added key missing")
		}
	}
}

func TestEmptyFilterContainsNothingMostly(t *testing.T) {
	f := New(4096, 4)
	hits := 0
	for k := uint64(0); k < 1000; k++ {
		if f.MayContain(k) {
			hits++
		}
	}
	if hits != 0 {
		t.Fatalf("empty filter reported %d hits", hits)
	}
}
