// Package bloom implements the bloom filter used to compress large
// state-signatures in the join-signature materialization (thesis §5.3.1):
// k hash functions map an entry to k positions in a bit array of b bits;
// membership tests have no false negatives and a tunable false-positive rate.
package bloom

import (
	"encoding/binary"
	"math"

	"rankcube/internal/bitvec"
)

// Filter is a bloom filter over uint64 keys.
type Filter struct {
	bits *bitvec.Bits
	k    int
}

// New returns a filter with b bits and k hash functions (both forced to at
// least 1).
func New(b, k int) *Filter {
	if b < 1 {
		b = 1
	}
	if k < 1 {
		k = 1
	}
	return &Filter{bits: bitvec.NewBits(b), k: k}
}

// NewOptimal sizes a filter for n expected entries within at most maxBits
// bits, using the optimal hash count k = (b/n)·ln2 capped at maxK (thesis
// §5.3.1: b = min(P, k̄·n/ln2)).
func NewOptimal(n, maxBits, maxK int) *Filter {
	if n < 1 {
		n = 1
	}
	b := int(math.Ceil(float64(maxK) * float64(n) / math.Ln2))
	if b > maxBits {
		b = maxBits
	}
	if b < 8 {
		b = 8
	}
	k := int(math.Round(float64(b) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > maxK {
		k = maxK
	}
	return &Filter{bits: bitvec.NewBits(b), k: k}
}

// Add inserts key.
func (f *Filter) Add(key uint64) {
	h1, h2 := hash2(key)
	b := uint64(f.bits.Len())
	for i := 0; i < f.k; i++ {
		f.bits.Set(int((h1+uint64(i)*h2)%b), true)
	}
}

// MayContain reports whether key may have been inserted (false positives
// possible, false negatives impossible).
func (f *Filter) MayContain(key uint64) bool {
	h1, h2 := hash2(key)
	b := uint64(f.bits.Len())
	for i := 0; i < f.k; i++ {
		if !f.bits.Get(int((h1 + uint64(i)*h2) % b)) {
			return false
		}
	}
	return true
}

// Bits reports the filter size in bits.
func (f *Filter) Bits() int { return f.bits.Len() }

// K reports the number of hash functions.
func (f *Filter) K() int { return f.k }

// FalsePositiveRate estimates the expected false-positive probability after
// n insertions: (1 − e^(−kn/b))^k.
func (f *Filter) FalsePositiveRate(n int) float64 {
	b := float64(f.bits.Len())
	k := float64(f.k)
	return math.Pow(1-math.Exp(-k*float64(n)/b), k)
}

// hash2 derives two independent 64-bit hashes of key via FNV-1a over its
// bytes with two different bases (double hashing: position_i = h1 + i·h2).
func hash2(key uint64) (uint64, uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], key)
	const (
		offset1 = 14695981039346656037
		offset2 = 0x9e3779b97f4a7c15
		prime   = 1099511628211
	)
	h1 := uint64(offset1)
	h2 := uint64(offset2)
	for _, c := range buf {
		h1 = (h1 ^ uint64(c)) * prime
		h2 = (h2 ^ uint64(c^0xa5)) * prime
	}
	if h2 == 0 {
		h2 = 1
	}
	// Force h2 odd so it is coprime with power-of-two table sizes.
	h2 |= 1
	return h1, h2
}
