package table

import (
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := GenSpec{T: 1000, S: 3, R: 2, Card: 10, Seed: 5}
	a := Generate(spec)
	b := Generate(spec)
	if a.Len() != 1000 || b.Len() != 1000 {
		t.Fatalf("Len = %d/%d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		tid := TID(i)
		for d := 0; d < 3; d++ {
			if a.Sel(tid, d) != b.Sel(tid, d) {
				t.Fatalf("sel mismatch at %d/%d", i, d)
			}
		}
		for d := 0; d < 2; d++ {
			if a.Rank(tid, d) != b.Rank(tid, d) {
				t.Fatalf("rank mismatch at %d/%d", i, d)
			}
		}
	}
}

func TestGenerateRanges(t *testing.T) {
	for _, dist := range []Distribution{Uniform, Correlated, AntiCorrelated} {
		tb := Generate(GenSpec{T: 5000, S: 2, R: 3, Card: 7, Dist: dist, Seed: 9})
		for d := 0; d < 2; d++ {
			for i := 0; i < tb.Len(); i++ {
				v := tb.Sel(TID(i), d)
				if v < 0 || v >= 7 {
					t.Fatalf("%v: sel value %d out of [0,7)", dist, v)
				}
			}
		}
		for d := 0; d < 3; d++ {
			lo, hi := tb.RankDomain(d)
			if lo < 0 || hi > 1 {
				t.Fatalf("%v: rank domain [%v,%v] outside [0,1]", dist, lo, hi)
			}
		}
	}
}

func TestCorrelatedIsCorrelated(t *testing.T) {
	tb := Generate(GenSpec{T: 20000, S: 1, R: 2, Card: 2, Dist: Correlated, Seed: 3})
	if corr(tb, 0, 1) < 0.8 {
		t.Fatalf("correlated data has correlation %v", corr(tb, 0, 1))
	}
	ta := Generate(GenSpec{T: 20000, S: 1, R: 2, Card: 2, Dist: AntiCorrelated, Seed: 3})
	if corr(ta, 0, 1) > -0.2 {
		t.Fatalf("anti-correlated data has correlation %v", corr(ta, 0, 1))
	}
}

func corr(tb *Table, d1, d2 int) float64 {
	n := float64(tb.Len())
	var sx, sy, sxx, syy, sxy float64
	for i := 0; i < tb.Len(); i++ {
		x := tb.Rank(TID(i), d1)
		y := tb.Rank(TID(i), d2)
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	cov := sxy/n - sx/n*sy/n
	vx := sxx/n - sx/n*sx/n
	vy := syy/n - sy/n*sy/n
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / (sqrt(vx) * sqrt(vy))
}

func sqrt(v float64) float64 {
	x := v
	for i := 0; i < 40; i++ {
		x = (x + v/x) / 2
	}
	return x
}

func TestAppendAndAccessors(t *testing.T) {
	tb := MustNew(Schema{
		SelNames:  []string{"type", "color"},
		SelCard:   []int{3, 4},
		RankNames: []string{"price", "mileage"},
	})
	tid := tb.Append([]int32{1, 2}, []float64{0.5, 0.25})
	if tid != 0 {
		t.Fatalf("first tid = %d", tid)
	}
	tb.Append([]int32{0, 3}, []float64{0.1, 0.9})
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
	if tb.Sel(0, 1) != 2 || tb.Rank(1, 1) != 0.9 {
		t.Fatal("accessor mismatch")
	}
	row := tb.RankRow(0, nil)
	if row[0] != 0.5 || row[1] != 0.25 {
		t.Fatalf("RankRow = %v", row)
	}
	srow := tb.SelRow(1, nil)
	if srow[0] != 0 || srow[1] != 3 {
		t.Fatalf("SelRow = %v", srow)
	}
	if !tb.Matches(0, map[int]int32{0: 1, 1: 2}) {
		t.Fatal("Matches failed")
	}
	if tb.Matches(0, map[int]int32{0: 1, 1: 3}) {
		t.Fatal("Matches accepted wrong value")
	}
	if tb.RowBytes() != 4*2+8*2+4 {
		t.Fatalf("RowBytes = %d", tb.RowBytes())
	}
}

func TestAppendPanicsOnBadValue(t *testing.T) {
	tb := MustNew(Schema{SelNames: []string{"a"}, SelCard: []int{2}, RankNames: []string{"n"}})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range selection value")
		}
	}()
	tb.Append([]int32{5}, []float64{0})
}

func TestSchemaValidate(t *testing.T) {
	bad := Schema{SelNames: []string{"a"}, SelCard: []int{1, 2}}
	if bad.Validate() == nil {
		t.Fatal("mismatched schema validated")
	}
	bad2 := Schema{SelNames: []string{"a"}, SelCard: []int{0}}
	if bad2.Validate() == nil {
		t.Fatal("zero-cardinality schema validated")
	}
}

func TestZipfSkew(t *testing.T) {
	tb := Generate(GenSpec{T: 10000, S: 1, R: 1, Card: 10, SelZipf: 1.5, Seed: 4})
	counts := make([]int, 10)
	for i := 0; i < tb.Len(); i++ {
		counts[tb.Sel(TID(i), 0)]++
	}
	if counts[0] < counts[9] {
		t.Fatalf("zipf head %d not heavier than tail %d", counts[0], counts[9])
	}
}
