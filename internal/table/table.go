// Package table implements the base relation model of the thesis (§1.2.1):
// a relation R with categorical selection (boolean) dimensions A1..AS and
// real-valued ranking dimensions N1..NR. Columns are stored column-major;
// tuples are addressed by tuple id (tid), the unit every ranking-cube
// measure stores.
package table

import (
	"fmt"
	"math"

	"rankcube/internal/errs"
)

// TID is a tuple identifier: the position of the tuple in the relation.
type TID int32

// Schema describes a relation's dimensions.
type Schema struct {
	// SelNames names the selection dimensions A1..AS.
	SelNames []string
	// SelCard gives the cardinality of each selection dimension; values on
	// dimension d lie in [0, SelCard[d]).
	SelCard []int
	// RankNames names the ranking dimensions N1..NR.
	RankNames []string
}

// S reports the number of selection dimensions.
func (s Schema) S() int { return len(s.SelCard) }

// R reports the number of ranking dimensions.
func (s Schema) R() int { return len(s.RankNames) }

// Validate checks internal consistency.
func (s Schema) Validate() error {
	if len(s.SelNames) != len(s.SelCard) {
		return fmt.Errorf("table: %d selection names but %d cardinalities: %w",
			len(s.SelNames), len(s.SelCard), errs.ErrInvalidArgument)
	}
	for d, c := range s.SelCard {
		if c <= 0 {
			return fmt.Errorf("table: selection dimension %s has cardinality %d: %w",
				s.SelNames[d], c, errs.ErrInvalidArgument)
		}
	}
	return nil
}

// Table is an in-memory relation. The zero value is empty; construct with
// New and fill with Append, or use the generators in this package.
type Table struct {
	schema Schema
	sel    [][]int32   // sel[d][tid]
	rank   [][]float64 // rank[d][tid]
	n      int
}

// New returns an empty relation with the given schema, or the schema's
// validation error.
func New(schema Schema) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		schema: schema,
		sel:    make([][]int32, schema.S()),
		rank:   make([][]float64, schema.R()),
	}
	return t, nil
}

// MustNew is New for schemas that are valid by construction (derived from
// an existing relation, or built by this repository's generators). An
// invalid schema here is a programming error, reported as a typed abort so
// governed callers still receive an error rather than a crash.
func MustNew(schema Schema) *Table {
	t, err := New(schema)
	if err != nil {
		errs.Abortf(errs.ErrInvalidArgument, "table: %v", err)
	}
	return t
}

// Schema returns the relation's schema.
func (t *Table) Schema() Schema { return t.schema }

// Len reports the number of tuples.
func (t *Table) Len() int { return t.n }

// Append adds one tuple and returns its tid. sel and rank are copied.
func (t *Table) Append(sel []int32, rank []float64) TID {
	if len(sel) != t.schema.S() || len(rank) != t.schema.R() {
		//lint:invariant documented precondition: rows must match the schema arity
		panic(fmt.Sprintf("table: Append arity mismatch: got %d/%d want %d/%d",
			len(sel), len(rank), t.schema.S(), t.schema.R()))
	}
	for d, v := range sel {
		if v < 0 || int(v) >= t.schema.SelCard[d] {
			//lint:invariant documented precondition: values lie in [0, SelCard[d])
			panic(fmt.Sprintf("table: selection value %d out of range for dimension %d (card %d)",
				v, d, t.schema.SelCard[d]))
		}
		t.sel[d] = append(t.sel[d], v)
	}
	for d, v := range rank {
		t.rank[d] = append(t.rank[d], v)
	}
	t.n++
	return TID(t.n - 1)
}

// Sel returns the value of selection dimension d for tuple tid.
func (t *Table) Sel(tid TID, d int) int32 { return t.sel[d][tid] }

// Rank returns the value of ranking dimension d for tuple tid.
func (t *Table) Rank(tid TID, d int) float64 { return t.rank[d][tid] }

// RankRow fills buf (grown as needed) with tuple tid's full ranking vector
// and returns it.
func (t *Table) RankRow(tid TID, buf []float64) []float64 {
	r := t.schema.R()
	if cap(buf) < r {
		buf = make([]float64, r)
	}
	buf = buf[:r]
	for d := 0; d < r; d++ {
		buf[d] = t.rank[d][tid]
	}
	return buf
}

// SelRow fills buf with tuple tid's selection vector and returns it.
func (t *Table) SelRow(tid TID, buf []int32) []int32 {
	s := t.schema.S()
	if cap(buf) < s {
		buf = make([]int32, s)
	}
	buf = buf[:s]
	for d := 0; d < s; d++ {
		buf[d] = t.sel[d][tid]
	}
	return buf
}

// RankColumn exposes the column slice of ranking dimension d (read-only by
// convention; bulk loaders sort copies, never the column itself).
func (t *Table) RankColumn(d int) []float64 { return t.rank[d] }

// SelColumn exposes the column slice of selection dimension d.
func (t *Table) SelColumn(d int) []int32 { return t.sel[d] }

// RankDomain reports the observed [min, max] of ranking dimension d
// (degenerate [0,0] for an empty relation).
func (t *Table) RankDomain(d int) (lo, hi float64) {
	col := t.rank[d]
	if len(col) == 0 {
		return 0, 0
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range col {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// RowBytes estimates the stored width of one tuple: 4 bytes per selection
// dimension, 8 per ranking dimension, plus a 4-byte tid. Table-scan block
// costs in the baselines derive from this.
func (t *Table) RowBytes() int {
	return 4*t.schema.S() + 8*t.schema.R() + 4
}

// Matches reports whether tuple tid satisfies every equality predicate in
// cond (a map from selection-dimension index to required value).
func (t *Table) Matches(tid TID, cond map[int]int32) bool {
	for d, v := range cond {
		if t.sel[d][tid] != v {
			return false
		}
	}
	return true
}
