package table

import (
	"math"
	"math/rand"
)

// Distribution selects the joint distribution of the ranking dimensions in
// synthetic data, matching the thesis' S = {E, C, A} setting (§4.4.1):
// uniform (independent), correlated, and anti-correlated.
type Distribution int

// Supported ranking-dimension distributions.
const (
	Uniform Distribution = iota
	Correlated
	AntiCorrelated
)

func (d Distribution) String() string {
	switch d {
	case Correlated:
		return "correlated"
	case AntiCorrelated:
		return "anti-correlated"
	default:
		return "uniform"
	}
}

// GenSpec parameterizes synthetic relation generation, mirroring thesis
// Table 3.8.
type GenSpec struct {
	// T is the number of tuples.
	T int
	// S is the number of selection dimensions.
	S int
	// R is the number of ranking dimensions.
	R int
	// Card is the cardinality of every selection dimension. Cards, when
	// non-nil, overrides Card with per-dimension cardinalities.
	Card  int
	Cards []int
	// Dist is the joint distribution of ranking values in [0,1].
	Dist Distribution
	// SelZipf, when > 0, draws selection values Zipf-skewed with the given
	// exponent instead of uniformly.
	SelZipf float64
	// Seed drives the deterministic generator.
	Seed int64
}

// Generate builds a synthetic relation per spec.
func Generate(spec GenSpec) *Table {
	cards := spec.Cards
	if cards == nil {
		cards = make([]int, spec.S)
		for i := range cards {
			cards[i] = spec.Card
		}
	}
	schema := Schema{
		SelNames:  defaultNames("A", len(cards)),
		SelCard:   cards,
		RankNames: defaultNames("N", spec.R),
	}
	t := MustNew(schema)
	rng := rand.New(rand.NewSource(spec.Seed))

	var zipf *rand.Zipf
	if spec.SelZipf > 0 {
		// rand.Zipf requires s > 1; clamp from below.
		s := spec.SelZipf
		if s <= 1 {
			s = 1.001
		}
		zipf = rand.NewZipf(rng, s, 1, uint64(maxCard(cards)-1))
	}

	sel := make([]int32, len(cards))
	rank := make([]float64, spec.R)
	for i := 0; i < spec.T; i++ {
		for d, c := range cards {
			if zipf != nil {
				sel[d] = int32(zipf.Uint64()) % int32(c)
			} else {
				sel[d] = int32(rng.Intn(c))
			}
		}
		drawRank(rng, spec.Dist, rank)
		t.Append(sel, rank)
	}
	return t
}

// drawRank fills rank with one sample of the requested joint distribution,
// each coordinate in [0,1].
func drawRank(rng *rand.Rand, dist Distribution, rank []float64) {
	switch dist {
	case Correlated:
		// A shared latent value plus small independent jitter, the standard
		// correlated-skyline generator shape.
		base := rng.Float64()
		for d := range rank {
			v := base + rng.NormFloat64()*0.05
			rank[d] = clamp01(v)
		}
	case AntiCorrelated:
		// Points scattered around the anti-diagonal plane Σx = len/2.
		base := 0.5 + rng.NormFloat64()*0.12
		remaining := base * float64(len(rank))
		for d := 0; d < len(rank)-1; d++ {
			share := rng.Float64() * math.Min(1, remaining)
			rank[d] = clamp01(share)
			remaining -= share
		}
		rank[len(rank)-1] = clamp01(remaining)
		// Shuffle coordinates so no dimension is systematically last.
		rng.Shuffle(len(rank), func(i, j int) { rank[i], rank[j] = rank[j], rank[i] })
	default:
		for d := range rank {
			rank[d] = rng.Float64()
		}
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func defaultNames(prefix string, n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = prefix + itoa(i+1)
	}
	return names
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

func maxCard(cards []int) int {
	m := 2
	for _, c := range cards {
		if c > m {
			m = c
		}
	}
	return m
}
