package btree

import (
	"sort"
	"testing"

	"rankcube/internal/hindex"
	"rankcube/internal/ranking"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

func buildTree(t *testing.T, n int, cfg Config) (*table.Table, *Tree) {
	t.Helper()
	tb := table.Generate(table.GenSpec{T: n, S: 1, R: 2, Card: 4, Seed: 17})
	tr := Build(tb, 0, ranking.UnitBox(2), cfg)
	return tb, tr
}

// collect gathers every tid reachable from the root, verifying containment
// invariants along the way.
func collect(t *testing.T, tr *Tree, id hindex.NodeID, box ranking.Box, out map[table.TID]bool) {
	t.Helper()
	nb := tr.NodeBox(id)
	for d := range nb.Lo {
		if nb.Lo[d] < box.Lo[d]-1e-12 || nb.Hi[d] > box.Hi[d]+1e-12 {
			t.Fatalf("node %d box %v..%v escapes parent %v..%v", id, nb.Lo, nb.Hi, box.Lo, box.Hi)
		}
	}
	if tr.IsLeaf(id) {
		for _, e := range tr.LeafEntries(id) {
			if out[e.TID] {
				t.Fatalf("tid %d appears twice", e.TID)
			}
			out[e.TID] = true
			if e.Point[tr.Dim()] < nb.Lo[tr.Dim()] || e.Point[tr.Dim()] > nb.Hi[tr.Dim()] {
				t.Fatalf("leaf entry %v outside node box", e.Point)
			}
		}
		return
	}
	for _, ch := range tr.Children(id) {
		collect(t, tr, ch.ID, ch.Box, out)
	}
}

func TestBuildInvariants(t *testing.T) {
	tb, tr := buildTree(t, 5000, Config{Fanout: 16})
	if tr.Root() == hindex.InvalidNode {
		t.Fatal("no root")
	}
	seen := make(map[table.TID]bool)
	collect(t, tr, tr.Root(), tr.NodeBox(tr.Root()), seen)
	if len(seen) != tb.Len() {
		t.Fatalf("collected %d tids, want %d", len(seen), tb.Len())
	}
}

func TestLeavesSortedByValue(t *testing.T) {
	tb, tr := buildTree(t, 3000, Config{Fanout: 32})
	var vals []float64
	var walk func(id hindex.NodeID)
	walk = func(id hindex.NodeID) {
		if tr.IsLeaf(id) {
			for _, e := range tr.LeafEntries(id) {
				vals = append(vals, e.Point[0])
			}
			return
		}
		for _, ch := range tr.Children(id) {
			walk(ch.ID)
		}
	}
	walk(tr.Root())
	if len(vals) != tb.Len() {
		t.Fatalf("walked %d values", len(vals))
	}
	if !sort.Float64sAreSorted(vals) {
		t.Fatal("leaf values not globally sorted")
	}
}

func TestPaths(t *testing.T) {
	_, tr := buildTree(t, 2000, Config{Fanout: 8})
	var walk func(id hindex.NodeID, path []int)
	walk = func(id hindex.NodeID, path []int) {
		got := tr.Path(id)
		if len(got) != len(path) {
			t.Fatalf("path len %d want %d", len(got), len(path))
		}
		for i := range path {
			if got[i] != path[i] {
				t.Fatalf("path %v want %v", got, path)
			}
		}
		if tr.IsLeaf(id) {
			return
		}
		for i, ch := range tr.Children(id) {
			walk(ch.ID, append(append([]int(nil), path...), i+1))
		}
	}
	walk(tr.Root(), nil)
	if got := hindex.SID(nil, tr.MaxFanout()); got != 0 {
		t.Fatalf("root SID = %d", got)
	}
	if a, b := hindex.SID([]int{1, 2}, 8), hindex.SID([]int{2, 1}, 8); a == b {
		t.Fatal("SID collision between distinct paths")
	}
}

func TestFanoutFromPageSize(t *testing.T) {
	_, tr := buildTree(t, 100, Config{PageSize: 4096})
	if tr.MaxFanout() != 204 {
		t.Fatalf("fanout = %d, want 204 (thesis B-tree fanout)", tr.MaxFanout())
	}
}

func TestAccessorChargesReads(t *testing.T) {
	_, tr := buildTree(t, 2000, Config{Fanout: 8})
	ctr := stats.New()
	acc := hindex.NewAccessor(tr, ctr)
	kids := acc.Children(tr.Root())
	if ctr.Reads(stats.StructBTree) != 1 {
		t.Fatalf("reads = %d after one access", ctr.Reads(stats.StructBTree))
	}
	acc.Children(tr.Root()) // buffered: no extra charge
	if ctr.Reads(stats.StructBTree) != 1 {
		t.Fatalf("reads = %d after repeat access", ctr.Reads(stats.StructBTree))
	}
	if !acc.Retrieved(tr.Root()) {
		t.Fatal("Retrieved(root) = false after access")
	}
	if acc.Retrieved(kids[0].ID) {
		t.Fatal("Retrieved(child) = true before access")
	}
}

func TestEmptyTree(t *testing.T) {
	tb := table.MustNew(table.Schema{SelNames: []string{"a"}, SelCard: []int{2}, RankNames: []string{"n", "m"}})
	tr := Build(tb, 0, ranking.UnitBox(2), Config{})
	if tr.Root() != hindex.InvalidNode {
		t.Fatal("empty tree has a root")
	}
	if tr.Height() != 0 {
		t.Fatalf("Height = %d", tr.Height())
	}
}

func TestChildBoxesCoverSubtrees(t *testing.T) {
	_, tr := buildTree(t, 4000, Config{Fanout: 10})
	var walk func(id hindex.NodeID)
	walk = func(id hindex.NodeID) {
		if tr.IsLeaf(id) {
			return
		}
		for _, ch := range tr.Children(id) {
			sub := tr.NodeBox(ch.ID)
			if sub.Lo[0] < ch.Box.Lo[0]-1e-12 || sub.Hi[0] > ch.Box.Hi[0]+1e-12 {
				t.Fatalf("child box %v..%v does not cover subtree %v..%v",
					ch.Box.Lo, ch.Box.Hi, sub.Lo, sub.Hi)
			}
			walk(ch.ID)
		}
	}
	walk(tr.Root())
}
