// Package btree implements a bulk-loaded B+-tree over a single ranking
// attribute, exposed through the hindex hierarchical-index contract so the
// index-merge framework (thesis ch. 5) can merge it with other B+-trees and
// R-trees.
//
// Each entry of a node stores the [lo, hi] value range of its subtree (two
// float64s) plus a child pointer — 20 bytes — which with the thesis' 4 KB
// pages yields the fanout of 204 the thesis quotes for B-trees (§5.1.3).
package btree

import (
	"fmt"
	"sort"

	"rankcube/internal/hindex"
	"rankcube/internal/pager"
	"rankcube/internal/ranking"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

const entryBytes = 20

// Tree is a B+-tree over one ranking dimension of a relation.
type Tree struct {
	dim    int // covered ranking-dimension position
	rdims  int // total ranking dimensions of the relation
	fanout int
	domain ranking.Box // full-width domain

	nodes  []*node
	root   hindex.NodeID
	height int
	store  *pager.Store
	leafOf map[table.TID]hindex.NodeID
}

type node struct {
	leaf bool
	lo   []float64 // per-entry subtree min (leaf: the value itself)
	hi   []float64 // per-entry subtree max
	kids []hindex.NodeID
	tids []table.TID
	page pager.PageID
	path []int
}

// Config controls tree construction.
type Config struct {
	// PageSize in bytes; defaults to pager.PageSize.
	PageSize int
	// Fanout overrides the page-derived fanout when > 0 (node-size
	// experiments, thesis fig. 5.19).
	Fanout int
	// FillFactor is the bulk-load node occupancy in (0, 1]; defaults to 1.
	FillFactor float64
}

func (c Config) fanout() int {
	if c.Fanout > 0 {
		return c.Fanout
	}
	ps := c.PageSize
	if ps <= 0 {
		ps = pager.PageSize
	}
	f := ps / entryBytes
	if f < 2 {
		f = 2
	}
	return f
}

// Build bulk-loads a B+-tree over ranking dimension dim of t. The domain box
// must be the relation-wide full-width domain so cross-index joint boxes
// compose correctly.
func Build(t *table.Table, dim int, domain ranking.Box, cfg Config) *Tree {
	fanout := cfg.fanout()
	fill := cfg.FillFactor
	if fill <= 0 || fill > 1 {
		fill = 1
	}
	perNode := int(float64(fanout) * fill)
	if perNode < 2 {
		perNode = 2
	}
	ps := cfg.PageSize
	if ps <= 0 {
		ps = pager.PageSize
	}

	tr := &Tree{
		dim:    dim,
		rdims:  t.Schema().R(),
		fanout: fanout,
		domain: domain,
		store:  pager.NewStore(stats.StructBTree, ps),
		root:   hindex.InvalidNode,
	}
	n := t.Len()
	if n == 0 {
		return tr
	}

	// Sort tids by attribute value.
	order := make([]table.TID, n)
	for i := range order {
		order[i] = table.TID(i)
	}
	col := t.RankColumn(dim)
	sort.Slice(order, func(a, b int) bool {
		va, vb := col[order[a]], col[order[b]]
		if va != vb {
			return va < vb
		}
		return order[a] < order[b]
	})

	// Build leaf level.
	var level []*node
	for i := 0; i < n; i += perNode {
		j := i + perNode
		if j > n {
			j = n
		}
		nd := &node{leaf: true}
		for _, tid := range order[i:j] {
			v := col[tid]
			nd.lo = append(nd.lo, v)
			nd.hi = append(nd.hi, v)
			nd.tids = append(nd.tids, tid)
		}
		tr.addNode(nd)
		level = append(level, nd)
	}
	tr.height = 1

	// Build internal levels bottom-up.
	for len(level) > 1 {
		var next []*node
		for i := 0; i < len(level); i += perNode {
			j := i + perNode
			if j > len(level) {
				j = len(level)
			}
			nd := &node{}
			for _, child := range level[i:j] {
				nd.lo = append(nd.lo, child.lo[0])
				nd.hi = append(nd.hi, child.hi[len(child.hi)-1])
				nd.kids = append(nd.kids, tr.idOf(child))
			}
			tr.addNode(nd)
			next = append(next, nd)
		}
		level = next
		tr.height++
	}
	tr.root = tr.idOf(level[0])
	tr.assignPaths(level[0], nil)
	tr.leafOf = make(map[table.TID]hindex.NodeID, n)
	for id, nd := range tr.nodes {
		if !nd.leaf {
			continue
		}
		for _, tid := range nd.tids {
			tr.leafOf[tid] = hindex.NodeID(id)
		}
	}
	return tr
}

// LeafPath implements hindex.TupleLocator.
func (tr *Tree) LeafPath(tid table.TID) []int {
	id, ok := tr.leafOf[tid]
	if !ok {
		return nil
	}
	return tr.nodes[id].path
}

// ValueOrdered implements hindex.ValueOrdered: B+-tree entries are sorted
// by attribute value at every level.
func (tr *Tree) ValueOrdered() bool { return true }

func (tr *Tree) addNode(nd *node) {
	nd.page = tr.store.AppendLogical(len(nd.lo) * entryBytes)
	tr.nodes = append(tr.nodes, nd)
}

// idOf finds a node's id; nodes are registered exactly once in addNode.
func (tr *Tree) idOf(nd *node) hindex.NodeID {
	// page ids are assigned in node order, so page == index.
	return hindex.NodeID(nd.page)
}

func (tr *Tree) assignPaths(nd *node, path []int) {
	nd.path = append([]int(nil), path...)
	if nd.leaf {
		return
	}
	for i, kid := range nd.kids {
		tr.assignPaths(tr.nodes[kid], append(path, i+1))
	}
}

// Dim reports the covered ranking-dimension position.
func (tr *Tree) Dim() int { return tr.dim }

// Dims implements hindex.Index.
func (tr *Tree) Dims() []int { return []int{tr.dim} }

// Domain implements hindex.Index.
func (tr *Tree) Domain() ranking.Box { return tr.domain }

// Root implements hindex.Index.
func (tr *Tree) Root() hindex.NodeID { return tr.root }

// Height implements hindex.Index.
func (tr *Tree) Height() int { return tr.height }

// MaxFanout implements hindex.Index.
func (tr *Tree) MaxFanout() int { return tr.fanout }

// IsLeaf implements hindex.Index.
func (tr *Tree) IsLeaf(id hindex.NodeID) bool { return tr.nodes[id].leaf }

// NumChildren implements hindex.Index.
func (tr *Tree) NumChildren(id hindex.NodeID) int { return len(tr.nodes[id].lo) }

// Children implements hindex.Index.
func (tr *Tree) Children(id hindex.NodeID) []hindex.ChildRef {
	nd := tr.nodes[id]
	if nd.leaf {
		//lint:invariant hindex contract: Children is only defined on internal nodes
		panic(fmt.Sprintf("btree: Children on leaf node %d", id))
	}
	out := make([]hindex.ChildRef, len(nd.kids))
	for i, kid := range nd.kids {
		out[i] = hindex.ChildRef{ID: kid, Box: tr.entryBox(nd, i)}
	}
	return out
}

// ChildAt implements hindex.Index.
func (tr *Tree) ChildAt(id hindex.NodeID, slot int) hindex.NodeID {
	return tr.nodes[id].kids[slot]
}

// LeafEntries implements hindex.Index.
func (tr *Tree) LeafEntries(id hindex.NodeID) []hindex.LeafEntry {
	nd := tr.nodes[id]
	if !nd.leaf {
		//lint:invariant hindex contract: LeafEntries is only defined on leaves
		panic(fmt.Sprintf("btree: LeafEntries on internal node %d", id))
	}
	out := make([]hindex.LeafEntry, len(nd.tids))
	for i, tid := range nd.tids {
		pt := tr.domain.Center()
		pt[tr.dim] = nd.lo[i]
		out[i] = hindex.LeafEntry{TID: tid, Point: pt}
	}
	return out
}

// NodeBox implements hindex.Index.
func (tr *Tree) NodeBox(id hindex.NodeID) ranking.Box {
	nd := tr.nodes[id]
	box := tr.domain.Clone()
	if len(nd.lo) > 0 {
		box.Lo[tr.dim] = nd.lo[0]
		box.Hi[tr.dim] = nd.hi[len(nd.hi)-1]
	}
	return box
}

func (tr *Tree) entryBox(nd *node, i int) ranking.Box {
	box := tr.domain.Clone()
	box.Lo[tr.dim] = nd.lo[i]
	box.Hi[tr.dim] = nd.hi[i]
	return box
}

// Page implements hindex.Index.
func (tr *Tree) Page(id hindex.NodeID) pager.PageID { return tr.nodes[id].page }

// Store implements hindex.Index.
func (tr *Tree) Store() *pager.Store { return tr.store }

// Path implements hindex.Index.
func (tr *Tree) Path(id hindex.NodeID) []int { return tr.nodes[id].path }

// NumNodes reports the total node count.
func (tr *Tree) NumNodes() int { return len(tr.nodes) }

// NumLeaves reports the leaf count.
func (tr *Tree) NumLeaves() int {
	c := 0
	for _, nd := range tr.nodes {
		if nd.leaf {
			c++
		}
	}
	return c
}

var _ hindex.Index = (*Tree)(nil)
