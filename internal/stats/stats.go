// Package stats collects the execution metrics the thesis reports in its
// evaluation chapters: block reads per storage structure, joint states
// generated and examined, peak heap sizes, and wall-clock phase timings.
//
// A Counters value is threaded through query execution; all structures that
// simulate disk access report into it. Counters are not safe for concurrent
// use — each query runs on one goroutine, and benchmarks aggregate across
// runs themselves.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Structure identifies which storage structure a block read touched.
// The thesis distinguishes these when reporting I/O (e.g. fig. 5.10 plots
// index-node reads and signature reads separately).
type Structure string

// Storage structures instrumented by the engines in this repository.
const (
	StructTable     Structure = "table"     // base relation blocks
	StructCube      Structure = "cube"      // ranking-cube cuboid cells
	StructBlockTab  Structure = "blocktab"  // grid-cube base block table
	StructBTree     Structure = "btree"     // B+-tree nodes
	StructRTree     Structure = "rtree"     // R-tree nodes
	StructSignature Structure = "signature" // partial signatures
	StructJoinSig   Structure = "joinsig"   // join-signature state signatures
)

// Governor is an optional per-query execution governor consulted as
// metrics are recorded. The concrete implementation (internal/governor)
// enforces context cancellation and block-read/candidate budgets by
// panicking with a typed abort (internal/errs) that the public API
// boundary recovers into an error. Counters record each event before the
// governor runs, so partial statistics survive an abort intact.
type Governor interface {
	// OnRead observes n block reads against structure s.
	OnRead(s Structure, n int64)
	// OnHeap observes the current combined candidate-heap occupancy.
	OnHeap(size int)
	// OnCheckpoint marks a loop iteration that neither read blocks nor
	// grew a heap — a pure cancellation poll point.
	OnCheckpoint()
}

// Observer receives the fine-grained execution events the governor's
// enforcement view does not need: span boundaries and per-event
// attribution of reads, retries, heap growth, and downgrades. The
// concrete implementation (internal/obs.Trace) builds a per-query span
// tree from them. Observers see each event after the counters record it
// and before the governor runs, so an abort mid-span still leaves the
// event attributed. Span events follow strict stack discipline: SpanEnd
// closes the most recently started open span.
type Observer interface {
	// SpanStart opens a child span of the current span.
	SpanStart(name string)
	// SpanEnd closes the current span, crediting it d of wall time.
	SpanEnd(d time.Duration)
	// ObserveRead attributes n block reads against s to the current span.
	ObserveRead(s Structure, n int64)
	// ObserveRetry attributes one transient-fault retry.
	ObserveRetry()
	// ObserveHeapHW folds a heap occupancy into the span's high-water mark.
	ObserveHeapHW(size int)
	// ObserveDowngrade attributes one baseline-fallback downgrade.
	ObserveDowngrade()
}

// Counters accumulates metrics during one query or one build.
type Counters struct {
	reads  map[Structure]int64
	phases map[string]time.Duration
	gov    Governor
	obs    Observer

	// StatesGenerated counts joint states inserted into any search heap
	// (thesis fig. 5.11).
	StatesGenerated int64
	// StatesExamined counts joint states popped for processing.
	StatesExamined int64
	// PeakHeap records the maximum combined heap occupancy observed
	// (thesis figs. 5.12, 7.5).
	PeakHeap int
	// Pruned counts candidates discarded by boolean (signature) pruning.
	Pruned int64
	// DominationPruned counts candidates discarded by domination checks
	// in skyline processing.
	DominationPruned int64
	// Retries counts transient page-read failures the pager retried.
	Retries int64
	// Downgrades counts queries the degradation policy transparently
	// re-answered from a baseline scan after a cube-side fault.
	Downgrades int64
}

// New returns an empty metrics collector.
func New() *Counters {
	return &Counters{
		reads:  make(map[Structure]int64),
		phases: make(map[string]time.Duration),
	}
}

// SetGovernor attaches (or, with nil, detaches) a query governor. The
// governor sees every read and heap observation recorded afterwards.
func (c *Counters) SetGovernor(g Governor) {
	if c == nil {
		return
	}
	c.gov = g
}

// DetachGovernor detaches g, but only if g is the governor currently
// attached — so the owner of a stale attachment (a closed scanner whose
// Metrics was since reattached elsewhere) cannot strip a successor's
// governor. It reports whether a detach happened.
func (c *Counters) DetachGovernor(g Governor) bool {
	if c == nil || c.gov == nil || c.gov != g {
		return false
	}
	c.gov = nil
	return true
}

// SetObserver attaches (or, with nil, detaches) an execution observer.
func (c *Counters) SetObserver(o Observer) {
	if c == nil {
		return
	}
	c.obs = o
}

// DetachObserver detaches o under the same ownership guard as
// DetachGovernor.
func (c *Counters) DetachObserver(o Observer) bool {
	if c == nil || c.obs == nil || c.obs != o {
		return false
	}
	c.obs = nil
	return true
}

// Read records n block reads against the given structure. A nil receiver is
// permitted so that callers can run without instrumentation.
func (c *Counters) Read(s Structure, n int64) {
	if c == nil {
		return
	}
	c.reads[s] += n
	if c.obs != nil {
		c.obs.ObserveRead(s, n)
	}
	if c.gov != nil {
		c.gov.OnRead(s, n)
	}
}

// AddRetry records one transient read retry (nil-safe for the pager's
// uninstrumented callers).
func (c *Counters) AddRetry() {
	if c == nil {
		return
	}
	c.Retries++
	if c.obs != nil {
		c.obs.ObserveRetry()
	}
}

// AddDowngrade records one baseline-fallback downgrade.
func (c *Counters) AddDowngrade() {
	if c == nil {
		return
	}
	c.Downgrades++
	if c.obs != nil {
		c.obs.ObserveDowngrade()
	}
}

// Checkpoint gives the attached governor an abort opportunity between
// block reads; engines call it once per search-loop iteration so
// cancellation latency stays bounded even when every page hit is buffered.
func (c *Counters) Checkpoint() {
	if c == nil || c.gov == nil {
		return
	}
	c.gov.OnCheckpoint()
}

// Reads reports the number of block reads recorded for s.
func (c *Counters) Reads(s Structure) int64 {
	if c == nil {
		return 0
	}
	return c.reads[s]
}

// TotalReads reports block reads across all structures.
func (c *Counters) TotalReads() int64 {
	if c == nil {
		return 0
	}
	var t int64
	for _, v := range c.reads {
		t += v
	}
	return t
}

// ReadsSnapshot copies the per-structure read counts, so a boundary can
// diff the state before and after a query that reuses a shared collector.
func (c *Counters) ReadsSnapshot() map[Structure]int64 {
	if c == nil || len(c.reads) == 0 {
		return nil
	}
	out := make(map[Structure]int64, len(c.reads))
	for s, v := range c.reads {
		out[s] = v
	}
	return out
}

// ObserveHeap folds a current combined heap size into the peak tracker.
func (c *Counters) ObserveHeap(size int) {
	if c == nil {
		return
	}
	if size > c.PeakHeap {
		c.PeakHeap = size
	}
	if c.obs != nil {
		c.obs.ObserveHeapHW(size)
	}
	if c.gov != nil {
		c.gov.OnHeap(size)
	}
}

// AddPhase accumulates wall-clock time attributed to a named phase (e.g.
// "signature-load" vs "search" for thesis fig. 7.12). StartSpan is the
// structured form: it additionally opens a span in the attached observer's
// trace, so prefer it for phases with clear enter/exit boundaries.
func (c *Counters) AddPhase(name string, d time.Duration) {
	if c == nil {
		return
	}
	c.phases[name] += d
}

// StartSpan opens a named execution span and returns its closer. The span
// accumulates into the phase table (so Phase(name) keeps reporting) and,
// when an observer is attached, into its span tree. Use with defer:
//
//	defer ctr.StartSpan("search")()
//
// Spans nest by call order; the closer must run in LIFO order (defer
// guarantees this even when a governed abort unwinds the stack).
func (c *Counters) StartSpan(name string) func() {
	if c == nil {
		return func() {}
	}
	if c.obs != nil {
		c.obs.SpanStart(name)
	}
	obs := c.obs
	start := time.Now()
	return func() {
		d := time.Since(start)
		c.phases[name] += d
		// End against the observer that opened the span: a boundary may
		// detach the trace before a deferred closer runs.
		if obs != nil {
			obs.SpanEnd(d)
		}
	}
}

// Phase reports accumulated time for the named phase.
func (c *Counters) Phase(name string) time.Duration {
	if c == nil {
		return 0
	}
	return c.phases[name]
}

// Merge adds other's metrics into c.
func (c *Counters) Merge(other *Counters) {
	if c == nil || other == nil {
		return
	}
	for s, v := range other.reads {
		c.reads[s] += v
	}
	for p, d := range other.phases {
		c.phases[p] += d
	}
	c.StatesGenerated += other.StatesGenerated
	c.StatesExamined += other.StatesExamined
	c.Pruned += other.Pruned
	c.DominationPruned += other.DominationPruned
	c.Retries += other.Retries
	c.Downgrades += other.Downgrades
	if other.PeakHeap > c.PeakHeap {
		c.PeakHeap = other.PeakHeap
	}
}

// String renders a stable, human-readable summary.
func (c *Counters) String() string {
	if c == nil {
		return "<nil counters>"
	}
	var b strings.Builder
	keys := make([]string, 0, len(c.reads))
	for s := range c.reads {
		keys = append(keys, string(s))
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d ", k, c.reads[Structure(k)])
	}
	fmt.Fprintf(&b, "states=%d/%d peakHeap=%d pruned=%d",
		c.StatesExamined, c.StatesGenerated, c.PeakHeap, c.Pruned)
	if c.Retries > 0 {
		fmt.Fprintf(&b, " retries=%d", c.Retries)
	}
	if c.Downgrades > 0 {
		fmt.Fprintf(&b, " downgrades=%d", c.Downgrades)
	}
	return b.String()
}
