package stats

import (
	"strings"
	"testing"
	"time"
)

func TestReadsAccumulate(t *testing.T) {
	c := New()
	c.Read(StructRTree, 3)
	c.Read(StructRTree, 2)
	c.Read(StructCube, 1)
	if c.Reads(StructRTree) != 5 || c.Reads(StructCube) != 1 {
		t.Fatalf("reads: rtree=%d cube=%d", c.Reads(StructRTree), c.Reads(StructCube))
	}
	if c.TotalReads() != 6 {
		t.Fatalf("TotalReads = %d", c.TotalReads())
	}
}

func TestNilReceiverSafe(t *testing.T) {
	var c *Counters
	c.Read(StructRTree, 1)
	c.ObserveHeap(10)
	c.AddPhase("x", time.Second)
	if c.Reads(StructRTree) != 0 || c.TotalReads() != 0 || c.Phase("x") != 0 {
		t.Fatal("nil counters returned non-zero")
	}
	if c.String() == "" {
		t.Fatal("nil String empty")
	}
}

func TestObserveHeapKeepsMax(t *testing.T) {
	c := New()
	c.ObserveHeap(5)
	c.ObserveHeap(3)
	c.ObserveHeap(9)
	c.ObserveHeap(2)
	if c.PeakHeap != 9 {
		t.Fatalf("PeakHeap = %d", c.PeakHeap)
	}
}

func TestMerge(t *testing.T) {
	a := New()
	a.Read(StructBTree, 2)
	a.StatesGenerated = 5
	a.PeakHeap = 3
	a.AddPhase("p", time.Millisecond)
	b := New()
	b.Read(StructBTree, 3)
	b.StatesGenerated = 7
	b.PeakHeap = 10
	b.AddPhase("p", time.Millisecond)
	a.Merge(b)
	if a.Reads(StructBTree) != 5 || a.StatesGenerated != 12 || a.PeakHeap != 10 {
		t.Fatalf("merge: %s", a)
	}
	if a.Phase("p") != 2*time.Millisecond {
		t.Fatalf("phase = %v", a.Phase("p"))
	}
	a.Merge(nil) // no-op
}

func TestStringStable(t *testing.T) {
	c := New()
	c.Read(StructRTree, 1)
	c.Read(StructCube, 2)
	s1, s2 := c.String(), c.String()
	if s1 != s2 {
		t.Fatal("String not deterministic")
	}
	if !strings.Contains(s1, "rtree=1") || !strings.Contains(s1, "cube=2") {
		t.Fatalf("String = %q", s1)
	}
}
