package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestReadsAccumulate(t *testing.T) {
	c := New()
	c.Read(StructRTree, 3)
	c.Read(StructRTree, 2)
	c.Read(StructCube, 1)
	if c.Reads(StructRTree) != 5 || c.Reads(StructCube) != 1 {
		t.Fatalf("reads: rtree=%d cube=%d", c.Reads(StructRTree), c.Reads(StructCube))
	}
	if c.TotalReads() != 6 {
		t.Fatalf("TotalReads = %d", c.TotalReads())
	}
}

func TestNilReceiverSafe(t *testing.T) {
	var c *Counters
	c.Read(StructRTree, 1)
	c.ObserveHeap(10)
	c.AddPhase("x", time.Second)
	if c.Reads(StructRTree) != 0 || c.TotalReads() != 0 || c.Phase("x") != 0 {
		t.Fatal("nil counters returned non-zero")
	}
	if c.String() == "" {
		t.Fatal("nil String empty")
	}
}

func TestObserveHeapKeepsMax(t *testing.T) {
	c := New()
	c.ObserveHeap(5)
	c.ObserveHeap(3)
	c.ObserveHeap(9)
	c.ObserveHeap(2)
	if c.PeakHeap != 9 {
		t.Fatalf("PeakHeap = %d", c.PeakHeap)
	}
}

func TestMerge(t *testing.T) {
	a := New()
	a.Read(StructBTree, 2)
	a.StatesGenerated = 5
	a.PeakHeap = 3
	a.AddPhase("p", time.Millisecond)
	b := New()
	b.Read(StructBTree, 3)
	b.StatesGenerated = 7
	b.PeakHeap = 10
	b.AddPhase("p", time.Millisecond)
	a.Merge(b)
	if a.Reads(StructBTree) != 5 || a.StatesGenerated != 12 || a.PeakHeap != 10 {
		t.Fatalf("merge: %s", a)
	}
	if a.Phase("p") != 2*time.Millisecond {
		t.Fatalf("phase = %v", a.Phase("p"))
	}
	a.Merge(nil) // no-op
}

// TestMergeConcurrentWriters exercises the documented concurrency contract
// under the race detector: one Counters per goroutine (writes need no
// locking), aggregated afterwards with Merge on a single goroutine.
func TestMergeConcurrentWriters(t *testing.T) {
	const workers = 8
	const perWorker = 1000
	results := make(chan *Counters, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := New()
			for i := 0; i < perWorker; i++ {
				c.Read(StructRTree, 1)
				c.Read(StructSignature, 2)
				c.AddPhase("search", time.Microsecond)
				c.ObserveHeap(w*perWorker + i)
				c.StatesExamined++
			}
			end := c.StartSpan("tail")
			end()
			results <- c
		}(w)
	}
	wg.Wait()
	close(results)
	agg := New()
	for c := range results {
		agg.Merge(c)
	}
	if got := agg.Reads(StructRTree); got != workers*perWorker {
		t.Fatalf("rtree reads = %d, want %d", got, workers*perWorker)
	}
	if got := agg.Reads(StructSignature); got != 2*workers*perWorker {
		t.Fatalf("signature reads = %d, want %d", got, 2*workers*perWorker)
	}
	if got := agg.Phase("search"); got != workers*perWorker*time.Microsecond {
		t.Fatalf("search phase = %v, want %v", got, workers*perWorker*time.Microsecond)
	}
	if agg.StatesExamined != workers*perWorker {
		t.Fatalf("StatesExamined = %d", agg.StatesExamined)
	}
	if agg.PeakHeap != workers*perWorker-1 {
		t.Fatalf("PeakHeap = %d, want %d", agg.PeakHeap, workers*perWorker-1)
	}
	if agg.Phase("tail") <= 0 {
		t.Fatalf("tail span did not accumulate: %v", agg.Phase("tail"))
	}
}

// TestMergeUnderLockConcurrently covers the other legal aggregation shape:
// goroutines merging their private Counters into one shared aggregate, with
// the callers providing the mutual exclusion.
func TestMergeUnderLockConcurrently(t *testing.T) {
	const workers = 8
	agg := New()
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := New()
			c.Read(StructCube, 10)
			c.AddPhase("plan", time.Millisecond)
			c.Retries++
			mu.Lock()
			agg.Merge(c)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if got := agg.Reads(StructCube); got != 10*workers {
		t.Fatalf("cube reads = %d, want %d", got, 10*workers)
	}
	if got := agg.Phase("plan"); got != workers*time.Millisecond {
		t.Fatalf("plan phase = %v", got)
	}
	if agg.Retries != workers {
		t.Fatalf("retries = %d", agg.Retries)
	}
}

func TestStringStable(t *testing.T) {
	c := New()
	c.Read(StructRTree, 1)
	c.Read(StructCube, 2)
	s1, s2 := c.String(), c.String()
	if s1 != s2 {
		t.Fatal("String not deterministic")
	}
	if !strings.Contains(s1, "rtree=1") || !strings.Contains(s1, "cube=2") {
		t.Fatalf("String = %q", s1)
	}
}
