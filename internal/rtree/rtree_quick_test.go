package rtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rankcube/internal/hindex"
	"rankcube/internal/ranking"
	"rankcube/internal/table"
)

// TestQuickMixedOperations drives random interleaved insert/delete
// sequences and checks the full invariant set afterwards: structure, tuple
// coverage, and box containment.
func TestQuickMixedOperations(t *testing.T) {
	prop := func(seed int64, fanoutRaw uint8, opsRaw uint16) bool {
		fanout := 4 + int(fanoutRaw)%12
		ops := 50 + int(opsRaw)%400
		rng := rand.New(rand.NewSource(seed))

		tb := table.MustNew(table.Schema{
			SelNames: []string{"a"}, SelCard: []int{2},
			RankNames: []string{"x", "y"},
		})
		tr := New([]int{0, 1}, 2, ranking.UnitBox(2), Config{Fanout: fanout})
		alive := map[table.TID]bool{}

		for i := 0; i < ops; i++ {
			if rng.Float64() < 0.7 || len(alive) == 0 {
				tid := tb.Append([]int32{0}, []float64{rng.Float64(), rng.Float64()})
				tr.Insert(tid, tb.RankRow(tid, nil))
				alive[tid] = true
			} else {
				// Delete a random live tuple.
				var victim table.TID
				n := rng.Intn(len(alive))
				for tid := range alive {
					if n == 0 {
						victim = tid
						break
					}
					n--
				}
				if _, ok := tr.Delete(victim); !ok {
					return false
				}
				delete(alive, victim)
			}
		}

		// Invariants: every live tuple reachable exactly once, inside boxes.
		seen := map[table.TID]bool{}
		ok := true
		var walk func(id int32)
		walk = func(id int32) {
			nd := tr.nodes[id]
			if nd.leaf {
				for i, tid := range nd.tids {
					if seen[tid] || !alive[tid] {
						ok = false
						return
					}
					seen[tid] = true
					for d := 0; d < 2; d++ {
						v := tb.Rank(tid, d)
						if v < nd.rects[i].lo[d]-1e-12 || v > nd.rects[i].hi[d]+1e-12 {
							ok = false
							return
						}
					}
				}
				return
			}
			for pos, kid := range nd.kids {
				child := tr.nodes[kid]
				if child.parent != hindex.NodeID(id) || child.posInParent != pos {
					ok = false
					return
				}
				cm := child.mbr()
				for d := 0; d < 2; d++ {
					if cm.lo[d] < nd.rects[pos].lo[d]-1e-12 || cm.hi[d] > nd.rects[pos].hi[d]+1e-12 {
						ok = false
						return
					}
				}
				walk(int32(kid))
			}
		}
		if tr.Root() >= 0 {
			walk(int32(tr.Root()))
		}
		return ok && len(seen) == len(alive)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
