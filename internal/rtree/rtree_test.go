package rtree

import (
	"math/rand"
	"testing"

	"rankcube/internal/hindex"
	"rankcube/internal/ranking"
	"rankcube/internal/table"
)

func genTable(n int, seed int64) *table.Table {
	return table.Generate(table.GenSpec{T: n, S: 1, R: 3, Card: 4, Seed: seed})
}

// checkInvariants walks the tree verifying MBR containment, parent links,
// and that exactly the expected tids are present.
func checkInvariants(t *testing.T, tr *Tree, want int) {
	t.Helper()
	if tr.Root() == hindex.InvalidNode {
		if want != 0 {
			t.Fatalf("empty tree, want %d tuples", want)
		}
		return
	}
	seen := make(map[table.TID]bool)
	var walk func(id hindex.NodeID, depth int)
	walk = func(id hindex.NodeID, depth int) {
		nd := tr.nodes[id]
		if tr.IsLeaf(id) {
			if depth != tr.Height() {
				t.Fatalf("leaf %d at depth %d, height %d", id, depth, tr.Height())
			}
			for _, tid := range nd.tids {
				if seen[tid] {
					t.Fatalf("tid %d duplicated", tid)
				}
				seen[tid] = true
				if tr.leafOf[tid] != id {
					t.Fatalf("leafOf[%d] = %d, want %d", tid, tr.leafOf[tid], id)
				}
			}
			return
		}
		for pos, kid := range nd.kids {
			child := tr.nodes[kid]
			if child.parent != id || child.posInParent != pos {
				t.Fatalf("back-link broken: node %d pos %d", kid, pos)
			}
			// Parent entry rect must cover the child's MBR.
			cm := child.mbr()
			pr := nd.rects[pos]
			for d := 0; d < tr.d; d++ {
				if cm.lo[d] < pr.lo[d]-1e-12 || cm.hi[d] > pr.hi[d]+1e-12 {
					t.Fatalf("entry rect does not cover child %d", kid)
				}
			}
			walk(kid, depth+1)
		}
	}
	walk(tr.Root(), 1)
	if len(seen) != want {
		t.Fatalf("found %d tuples, want %d", len(seen), want)
	}
}

func TestBulkInvariants(t *testing.T) {
	tb := genTable(5000, 21)
	tr := Bulk(tb, []int{0, 1, 2}, ranking.UnitBox(3), Config{Fanout: 16})
	checkInvariants(t, tr, 5000)
	if tr.Height() < 2 {
		t.Fatalf("Height = %d for 5000 tuples, fanout 16", tr.Height())
	}
}

func TestBulkFanoutFromPage(t *testing.T) {
	tb := genTable(100, 1)
	tr := Bulk(tb, []int{0, 1}, ranking.UnitBox(3), Config{})
	if tr.MaxFanout() != 204 {
		t.Fatalf("2-d fanout = %d, want 204", tr.MaxFanout())
	}
	tb5 := table.Generate(table.GenSpec{T: 100, S: 1, R: 5, Card: 4, Seed: 1})
	tr5 := Bulk(tb5, []int{0, 1, 2, 3, 4}, ranking.UnitBox(5), Config{})
	if tr5.MaxFanout() != 93 {
		t.Fatalf("5-d fanout = %d, want 93", tr5.MaxFanout())
	}
}

func TestInsertInvariants(t *testing.T) {
	tb := genTable(2000, 22)
	tr := New([]int{0, 1}, 3, ranking.UnitBox(3), Config{Fanout: 8})
	for i := 0; i < tb.Len(); i++ {
		pt := tb.RankRow(table.TID(i), nil)
		tr.Insert(table.TID(i), pt)
	}
	checkInvariants(t, tr, 2000)
}

func TestInsertAffectedSetSound(t *testing.T) {
	// Paths of tuples NOT in the affected set must be unchanged by the
	// insert — the property signature maintenance depends on (§4.2.5).
	tb := genTable(600, 23)
	tr := New([]int{0, 1, 2}, 3, ranking.UnitBox(3), Config{Fanout: 6})
	paths := make(map[table.TID]string)
	for i := 0; i < tb.Len(); i++ {
		tid := table.TID(i)
		affected := tr.Insert(tid, tb.RankRow(tid, nil))
		aset := make(map[table.TID]bool, len(affected))
		for _, a := range affected {
			aset[a] = true
		}
		if !aset[tid] {
			t.Fatalf("inserted tid %d not in affected set", tid)
		}
		for old, p := range paths {
			if !aset[old] {
				if got := hindex.PathKey(tr.TuplePath(old)); got != p {
					t.Fatalf("insert %d silently moved tuple %d", tid, old)
				}
			}
		}
		for _, a := range affected {
			paths[a] = hindex.PathKey(tr.TuplePath(a))
		}
	}
}

func TestDelete(t *testing.T) {
	tb := genTable(800, 24)
	tr := New([]int{0, 1}, 3, ranking.UnitBox(3), Config{Fanout: 8})
	for i := 0; i < tb.Len(); i++ {
		tr.Insert(table.TID(i), tb.RankRow(table.TID(i), nil))
	}
	rng := rand.New(rand.NewSource(4))
	alive := make(map[table.TID]bool, tb.Len())
	for i := 0; i < tb.Len(); i++ {
		alive[table.TID(i)] = true
	}
	for i := 0; i < 400; i++ {
		tid := table.TID(rng.Intn(tb.Len()))
		_, ok := tr.Delete(tid)
		if ok != alive[tid] {
			t.Fatalf("Delete(%d) ok=%v want %v", tid, ok, alive[tid])
		}
		delete(alive, tid)
	}
	checkInvariants(t, tr, len(alive))
	if _, ok := tr.Delete(table.TID(tb.Len() + 5)); ok {
		t.Fatal("deleted nonexistent tuple")
	}
}

func TestDeleteAffectedSetSound(t *testing.T) {
	tb := genTable(300, 25)
	tr := New([]int{0, 1}, 3, ranking.UnitBox(3), Config{Fanout: 5})
	for i := 0; i < tb.Len(); i++ {
		tr.Insert(table.TID(i), tb.RankRow(table.TID(i), nil))
	}
	paths := make(map[table.TID]string)
	for i := 0; i < tb.Len(); i++ {
		paths[table.TID(i)] = hindex.PathKey(tr.TuplePath(table.TID(i)))
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		tid := table.TID(rng.Intn(tb.Len()))
		affected, ok := tr.Delete(tid)
		if !ok {
			continue
		}
		aset := map[table.TID]bool{tid: true}
		for _, a := range affected {
			aset[a] = true
		}
		for old, p := range paths {
			if aset[old] {
				continue
			}
			if got := hindex.PathKey(tr.TuplePath(old)); got != p {
				t.Fatalf("delete %d silently moved tuple %d", tid, old)
			}
		}
		delete(paths, tid)
		for _, a := range affected {
			if a != tid {
				paths[a] = hindex.PathKey(tr.TuplePath(a))
			}
		}
	}
}

func TestTuplePathResolves(t *testing.T) {
	tb := genTable(1000, 26)
	tr := Bulk(tb, []int{0, 1}, ranking.UnitBox(3), Config{Fanout: 8})
	for i := 0; i < tb.Len(); i += 37 {
		tid := table.TID(i)
		path := tr.TuplePath(tid)
		// A leaf's node path has Height−1 positions; the tuple adds its
		// leaf slot, giving Height positions total (thesis fig. 4.1:
		// 3-level tree, tuple paths ⟨p0,p1,p2⟩).
		if len(path) != tr.Height() {
			t.Fatalf("tuple path len %d, want height = %d", len(path), tr.Height())
		}
		// Follow the path down to the leaf slot and verify the tid.
		id := tr.Root()
		for _, p := range path[:len(path)-1] {
			id = tr.nodes[id].kids[p-1]
		}
		slot := path[len(path)-1] - 1
		if tr.nodes[id].tids[slot] != tid {
			t.Fatalf("path %v resolves to tid %d, want %d", path, tr.nodes[id].tids[slot], tid)
		}
	}
}

func TestNodeBoxContainsPoints(t *testing.T) {
	tb := genTable(2000, 27)
	tr := Bulk(tb, []int{0, 2}, ranking.UnitBox(3), Config{Fanout: 12})
	var walk func(id hindex.NodeID)
	walk = func(id hindex.NodeID) {
		box := tr.NodeBox(id)
		if tr.IsLeaf(id) {
			for _, e := range tr.LeafEntries(id) {
				for _, dim := range tr.Dims() {
					if e.Point[dim] < box.Lo[dim]-1e-12 || e.Point[dim] > box.Hi[dim]+1e-12 {
						t.Fatalf("point outside leaf box on dim %d", dim)
					}
				}
			}
			return
		}
		for _, ch := range tr.Children(id) {
			walk(ch.ID)
		}
	}
	walk(tr.Root())
}

func TestUncoveredDimsSpanDomain(t *testing.T) {
	tb := genTable(500, 28)
	tr := Bulk(tb, []int{1}, ranking.UnitBox(3), Config{Fanout: 8})
	box := tr.NodeBox(tr.Root())
	if box.Lo[0] != 0 || box.Hi[0] != 1 || box.Lo[2] != 0 || box.Hi[2] != 1 {
		t.Fatalf("uncovered dims don't span domain: %v..%v", box.Lo, box.Hi)
	}
}
