package rtree

import (
	"fmt"

	"rankcube/internal/hindex"
	"rankcube/internal/table"
)

// Insert adds tuple tid at the full-width point and returns the set of
// tuples whose paths changed (the thesis' update set U, §4.2.5): the
// inserted tuple plus, when node splitting occurred, every tuple under the
// split nodes. Signature maintenance consumes this set.
func (tr *Tree) Insert(tid table.TID, point []float64) []table.TID {
	pt := make([]float64, tr.d)
	for j, dim := range tr.dims {
		pt[j] = point[dim]
	}
	r := rect{lo: pt, hi: append([]float64(nil), pt...)}

	affected := map[table.TID]struct{}{tid: {}}

	if tr.root == hindex.InvalidNode {
		nd := &node{leaf: true, parent: hindex.InvalidNode}
		nd.rects = append(nd.rects, r)
		nd.tids = append(nd.tids, tid)
		tr.root = tr.addNode(nd)
		tr.height = 1
		tr.leafOf[tid] = tr.root
		return keys(affected)
	}

	leaf := tr.chooseLeaf(tr.root, r)
	nd := tr.nodes[leaf]
	nd.rects = append(nd.rects, r)
	nd.tids = append(nd.tids, tid)
	tr.leafOf[tid] = leaf

	tr.handleOverflow(leaf, affected)
	tr.adjustUp(leaf)
	return keys(affected)
}

// chooseLeaf descends from id picking the entry whose MBR needs least
// enlargement to include r (ties by smaller area), Guttman's ChooseLeaf.
func (tr *Tree) chooseLeaf(id hindex.NodeID, r rect) hindex.NodeID {
	for {
		nd := tr.nodes[id]
		if nd.leaf {
			return id
		}
		best := -1
		bestEnl, bestArea := 0.0, 0.0
		for i := range nd.rects {
			tmp := nd.rects[i].clone()
			enl := tmp.enlarge(r)
			area := nd.rects[i].area()
			if best == -1 || enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		id = nd.kids[best]
	}
}

// handleOverflow splits id if it exceeds the fanout, propagating upward.
func (tr *Tree) handleOverflow(id hindex.NodeID, affected map[table.TID]struct{}) {
	for id != hindex.InvalidNode {
		nd := tr.nodes[id]
		if nd.numEntries() <= tr.fanout {
			return
		}
		newID := tr.splitNode(id)
		tr.collectSubtree(id, affected)
		tr.collectSubtree(newID, affected)

		parent := tr.nodes[id].parent
		if parent == hindex.InvalidNode {
			// Root split: grow a new root.
			root := &node{parent: hindex.InvalidNode}
			root.rects = append(root.rects, tr.nodes[id].mbr(), tr.nodes[newID].mbr())
			root.kids = append(root.kids, id, newID)
			rootID := tr.addNode(root)
			tr.nodes[id].parent = rootID
			tr.nodes[id].posInParent = 0
			tr.nodes[newID].parent = rootID
			tr.nodes[newID].posInParent = 1
			tr.root = rootID
			tr.height++
			return
		}
		p := tr.nodes[parent]
		p.rects[tr.nodes[id].posInParent] = tr.nodes[id].mbr()
		p.rects = append(p.rects, tr.nodes[newID].mbr())
		p.kids = append(p.kids, newID)
		tr.nodes[newID].parent = parent
		tr.nodes[newID].posInParent = len(p.kids) - 1
		id = parent
	}
}

// splitNode performs Guttman's quadratic split of id, returning the new
// sibling's id. The original node retains one group (so its slot in the
// parent is unchanged); the sibling must be linked by the caller.
func (tr *Tree) splitNode(id hindex.NodeID) hindex.NodeID {
	nd := tr.nodes[id]
	n := nd.numEntries()

	// PickSeeds: the pair wasting the most area.
	s1, s2 := 0, 1
	worst := -1.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			u := union(nd.rects[i], nd.rects[j])
			d := u.area() - nd.rects[i].area() - nd.rects[j].area()
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}

	groupA := []int{s1}
	groupB := []int{s2}
	boxA := nd.rects[s1].clone()
	boxB := nd.rects[s2].clone()
	rest := make([]int, 0, n-2)
	for i := 0; i < n; i++ {
		if i != s1 && i != s2 {
			rest = append(rest, i)
		}
	}

	// PickNext: assign by maximal preference difference, honoring minFill.
	for len(rest) > 0 {
		if len(groupA)+len(rest) == tr.minFill {
			groupA = append(groupA, rest...)
			rest = nil
			break
		}
		if len(groupB)+len(rest) == tr.minFill {
			groupB = append(groupB, rest...)
			rest = nil
			break
		}
		bestIdx, bestDiff := 0, -1.0
		var bestToA bool
		for k, i := range rest {
			ta := boxA.clone()
			tb := boxB.clone()
			dA := ta.enlarge(nd.rects[i])
			dB := tb.enlarge(nd.rects[i])
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff = diff
				bestIdx = k
				bestToA = dA < dB || (dA == dB && len(groupA) < len(groupB))
			}
		}
		i := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		if bestToA {
			groupA = append(groupA, i)
			boxA.enlarge(nd.rects[i])
		} else {
			groupB = append(groupB, i)
			boxB.enlarge(nd.rects[i])
		}
	}

	sib := &node{leaf: nd.leaf, parent: hindex.InvalidNode}
	newID := tr.addNode(sib)
	sib = tr.nodes[newID]

	take := func(idxs []int, dst *node) {
		for _, i := range idxs {
			dst.rects = append(dst.rects, nd.rects[i])
			if nd.leaf {
				dst.tids = append(dst.tids, nd.tids[i])
			} else {
				dst.kids = append(dst.kids, nd.kids[i])
			}
		}
	}
	keep := &node{leaf: nd.leaf}
	take(groupA, keep)
	take(groupB, sib)

	nd.rects = keep.rects
	nd.tids = keep.tids
	nd.kids = keep.kids

	tr.rewire(id)
	tr.rewire(newID)
	return newID
}

// rewire refreshes child back-links (or leafOf entries) after entries of id
// were reordered.
func (tr *Tree) rewire(id hindex.NodeID) {
	nd := tr.nodes[id]
	if nd.leaf {
		for _, tid := range nd.tids {
			tr.leafOf[tid] = id
		}
		return
	}
	for pos, kid := range nd.kids {
		tr.nodes[kid].parent = id
		tr.nodes[kid].posInParent = pos
	}
}

// adjustUp refreshes ancestor MBR entries from id to the root.
func (tr *Tree) adjustUp(id hindex.NodeID) {
	for {
		nd := tr.nodes[id]
		if nd.parent == hindex.InvalidNode {
			return
		}
		p := tr.nodes[nd.parent]
		p.rects[nd.posInParent] = nd.mbr()
		id = nd.parent
	}
}

// collectSubtree adds every tuple under id to set.
func (tr *Tree) collectSubtree(id hindex.NodeID, set map[table.TID]struct{}) {
	nd := tr.nodes[id]
	if nd.leaf {
		for _, tid := range nd.tids {
			set[tid] = struct{}{}
		}
		return
	}
	for _, kid := range nd.kids {
		tr.collectSubtree(kid, set)
	}
}

// Delete removes tuple tid, returning the set of tuples whose paths changed
// (swap-removal relocates the last entry of the leaf; emptied nodes are
// unlinked, relocating their parent's last entry). The second result is
// false when tid is not present. Underflowed (but non-empty) nodes are left
// in place — a simplification relative to Guttman's CondenseTree that never
// affects correctness, only packing.
func (tr *Tree) Delete(tid table.TID) ([]table.TID, bool) {
	leaf, ok := tr.leafOf[tid]
	if !ok {
		return nil, false
	}
	nd := tr.nodes[leaf]
	slot := -1
	for i, t := range nd.tids {
		if t == tid {
			slot = i
			break
		}
	}
	if slot < 0 {
		//lint:invariant leafOf and leaf contents are updated together; a miss is tree corruption
		panic(fmt.Sprintf("rtree: leafOf inconsistent for tid %d", tid))
	}
	affected := map[table.TID]struct{}{}
	last := len(nd.tids) - 1
	if slot != last {
		nd.tids[slot] = nd.tids[last]
		nd.rects[slot] = nd.rects[last]
		affected[nd.tids[slot]] = struct{}{}
	}
	nd.tids = nd.tids[:last]
	nd.rects = nd.rects[:last]
	delete(tr.leafOf, tid)

	if len(nd.tids) == 0 {
		tr.unlink(leaf, affected)
	} else {
		tr.adjustUp(leaf)
	}
	return keys(affected), true
}

// unlink removes the now-empty node id from its parent, cascading.
func (tr *Tree) unlink(id hindex.NodeID, affected map[table.TID]struct{}) {
	nd := tr.nodes[id]
	parent := nd.parent
	if parent == hindex.InvalidNode {
		tr.root = hindex.InvalidNode
		tr.height = 0
		return
	}
	p := tr.nodes[parent]
	pos := nd.posInParent
	last := len(p.kids) - 1
	if pos != last {
		p.kids[pos] = p.kids[last]
		p.rects[pos] = p.rects[last]
		moved := tr.nodes[p.kids[pos]]
		moved.posInParent = pos
		tr.collectSubtree(p.kids[pos], affected)
	}
	p.kids = p.kids[:last]
	p.rects = p.rects[:last]
	if len(p.kids) == 0 {
		tr.unlink(parent, affected)
		return
	}
	// Collapse a root with a single child to keep height tight.
	if parent == tr.root && len(p.kids) == 1 {
		tr.root = p.kids[0]
		tr.nodes[tr.root].parent = hindex.InvalidNode
		tr.nodes[tr.root].posInParent = 0
		tr.height--
		return
	}
	tr.adjustUp(parent)
}

func keys(set map[table.TID]struct{}) []table.TID {
	out := make([]table.TID, 0, len(set))
	for tid := range set {
		out = append(out, tid)
	}
	return out
}
