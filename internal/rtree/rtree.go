// Package rtree implements an R-tree over one or more ranking dimensions:
// STR bulk loading for cube construction, Guttman quadratic-split insertion
// and deletion for incremental maintenance (thesis §4.2.5), and the hindex
// contract consumed by signatures, index-merge, and skyline processing.
//
// Entry layout follows the thesis' sizing (§4.2.2): 8 bytes of MBR per
// dimension (float32 lo/hi) plus a 4-byte pointer, so 4 KB pages give
// M = 204 at two dimensions and M = 93–94 at five.
package rtree

import (
	"fmt"
	"sort"

	"rankcube/internal/hindex"
	"rankcube/internal/pager"
	"rankcube/internal/ranking"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// rect is a low-width (covered-dimensions-only) bounding box.
type rect struct {
	lo, hi []float64
}

func (r rect) clone() rect {
	lo := append([]float64(nil), r.lo...)
	hi := append([]float64(nil), r.hi...)
	return rect{lo, hi}
}

func (r rect) area() float64 {
	a := 1.0
	for i := range r.lo {
		a *= r.hi[i] - r.lo[i]
	}
	return a
}

// enlarge grows r to include o and returns the area increase.
func (r *rect) enlarge(o rect) float64 {
	before := r.area()
	for i := range r.lo {
		if o.lo[i] < r.lo[i] {
			r.lo[i] = o.lo[i]
		}
		if o.hi[i] > r.hi[i] {
			r.hi[i] = o.hi[i]
		}
	}
	return r.area() - before
}

func union(a, b rect) rect {
	u := a.clone()
	u.enlarge(b)
	return u
}

func pointRect(p []float64) rect {
	return rect{lo: append([]float64(nil), p...), hi: append([]float64(nil), p...)}
}

type node struct {
	leaf        bool
	parent      hindex.NodeID
	posInParent int // 0-based slot in parent
	rects       []rect
	kids        []hindex.NodeID // internal nodes
	tids        []table.TID     // leaves
	page        pager.PageID
}

func (n *node) numEntries() int { return len(n.rects) }

func (n *node) mbr() rect {
	if len(n.rects) == 0 {
		return rect{}
	}
	m := n.rects[0].clone()
	for _, r := range n.rects[1:] {
		m.enlarge(r)
	}
	return m
}

// Tree is an R-tree over a subset of a relation's ranking dimensions.
type Tree struct {
	dims   []int // covered global ranking-dimension positions, ascending
	d      int
	rdims  int
	domain ranking.Box

	fanout  int
	minFill int

	nodes  []*node
	root   hindex.NodeID
	height int
	store  *pager.Store
	leafOf map[table.TID]hindex.NodeID
}

// Config controls construction.
type Config struct {
	// PageSize in bytes; defaults to pager.PageSize.
	PageSize int
	// Fanout overrides the page-derived fanout when > 0.
	Fanout int
	// MinFillRatio is m/M in (0, 0.5]; defaults to 0.4.
	MinFillRatio float64
	// FillFactor is the bulk-load occupancy in (0, 1]; defaults to 0.85.
	FillFactor float64
}

func (c Config) pageSize() int {
	if c.PageSize > 0 {
		return c.PageSize
	}
	return pager.PageSize
}

func (c Config) fanoutFor(d int) int {
	if c.Fanout > 0 {
		return c.Fanout
	}
	f := c.pageSize() / (8*d + 4)
	if f < 4 {
		f = 4
	}
	return f
}

// New returns an empty tree over the given global ranking dimensions.
func New(dims []int, rdims int, domain ranking.Box, cfg Config) *Tree {
	d := len(dims)
	if d == 0 {
		//lint:invariant cuboid construction never requests a 0-dimensional tree
		panic("rtree: no dimensions")
	}
	fanout := cfg.fanoutFor(d)
	ratio := cfg.MinFillRatio
	if ratio <= 0 || ratio > 0.5 {
		ratio = 0.4
	}
	minFill := int(float64(fanout) * ratio)
	if minFill < 1 {
		minFill = 1
	}
	return &Tree{
		dims:    append([]int(nil), dims...),
		d:       d,
		rdims:   rdims,
		domain:  domain,
		fanout:  fanout,
		minFill: minFill,
		root:    hindex.InvalidNode,
		store:   pager.NewStore(stats.StructRTree, cfg.pageSize()),
		leafOf:  make(map[table.TID]hindex.NodeID),
	}
}

// Bulk bulk-loads the tree from relation t with Sort-Tile-Recursive packing.
func Bulk(t *table.Table, dims []int, domain ranking.Box, cfg Config) *Tree {
	tr := New(dims, t.Schema().R(), domain, cfg)
	n := t.Len()
	if n == 0 {
		return tr
	}
	fill := cfg.FillFactor
	if fill <= 0 || fill > 1 {
		fill = 0.85
	}
	perNode := int(float64(tr.fanout) * fill)
	if perNode < 2 {
		perNode = 2
	}

	type item struct {
		tid table.TID
		pt  []float64
	}
	items := make([]item, n)
	for i := 0; i < n; i++ {
		pt := make([]float64, tr.d)
		for j, dim := range tr.dims {
			pt[j] = t.Rank(table.TID(i), dim)
		}
		items[i] = item{tid: table.TID(i), pt: pt}
	}

	// Recursive STR: slice along successive dimensions into tiles holding
	// whole numbers of leaves.
	var leaves []*node
	var pack func(its []item, dim int)
	pack = func(its []item, dim int) {
		if dim == tr.d-1 || len(its) <= perNode {
			sort.Slice(its, func(a, b int) bool { return its[a].pt[dim] < its[b].pt[dim] })
			for i := 0; i < len(its); i += perNode {
				j := i + perNode
				if j > len(its) {
					j = len(its)
				}
				nd := &node{leaf: true, parent: hindex.InvalidNode}
				for _, it := range its[i:j] {
					nd.rects = append(nd.rects, pointRect(it.pt))
					nd.tids = append(nd.tids, it.tid)
				}
				tr.addNode(nd)
				leaves = append(leaves, nd)
			}
			return
		}
		sort.Slice(its, func(a, b int) bool { return its[a].pt[dim] < its[b].pt[dim] })
		numLeaves := (len(its) + perNode - 1) / perNode
		slabs := ceilRoot(numLeaves, tr.d-dim)
		slabSize := ((numLeaves+slabs-1)/slabs)*perNode + 0
		if slabSize <= 0 {
			slabSize = perNode
		}
		for i := 0; i < len(its); i += slabSize {
			j := i + slabSize
			if j > len(its) {
				j = len(its)
			}
			pack(its[i:j], dim+1)
		}
	}
	pack(items, 0)
	tr.height = 1

	// Pack upper levels by center-sorted STR over node MBRs.
	level := leaves
	for len(level) > 1 {
		var next []*node
		type nitem struct {
			nd  *node
			ctr []float64
		}
		nits := make([]nitem, len(level))
		for i, nd := range level {
			m := nd.mbr()
			ctr := make([]float64, tr.d)
			for j := range ctr {
				ctr[j] = (m.lo[j] + m.hi[j]) / 2
			}
			nits[i] = nitem{nd, ctr}
		}
		var packN func(its []nitem, dim int)
		packN = func(its []nitem, dim int) {
			if dim == tr.d-1 || len(its) <= perNode {
				sort.Slice(its, func(a, b int) bool { return its[a].ctr[dim] < its[b].ctr[dim] })
				for i := 0; i < len(its); i += perNode {
					j := i + perNode
					if j > len(its) {
						j = len(its)
					}
					nd := &node{parent: hindex.InvalidNode}
					for _, it := range its[i:j] {
						nd.rects = append(nd.rects, it.nd.mbr())
						nd.kids = append(nd.kids, tr.idOf(it.nd))
					}
					tr.addNode(nd)
					next = append(next, nd)
				}
				return
			}
			sort.Slice(its, func(a, b int) bool { return its[a].ctr[dim] < its[b].ctr[dim] })
			numNodes := (len(its) + perNode - 1) / perNode
			slabs := ceilRoot(numNodes, tr.d-dim)
			slabSize := (numNodes + slabs - 1) / slabs * perNode
			if slabSize <= 0 {
				slabSize = perNode
			}
			for i := 0; i < len(its); i += slabSize {
				j := i + slabSize
				if j > len(its) {
					j = len(its)
				}
				packN(its[i:j], dim+1)
			}
		}
		packN(nits, 0)
		level = next
		tr.height++
	}
	tr.root = tr.idOf(level[0])
	tr.wireParents()
	tr.indexLeaves()
	return tr
}

// ceilRoot returns ceil(n^(1/k)).
func ceilRoot(n, k int) int {
	if n <= 1 || k <= 1 {
		return n
	}
	// Integer search; n is at most a few million.
	lo, hi := 1, n
	for lo < hi {
		mid := (lo + hi) / 2
		p := 1
		overflow := false
		for i := 0; i < k; i++ {
			p *= mid
			if p >= n {
				overflow = true
				break
			}
		}
		if overflow || p >= n {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func (tr *Tree) addNode(nd *node) hindex.NodeID {
	nd.page = tr.store.AppendLogical(tr.store.PageSize())
	tr.nodes = append(tr.nodes, nd)
	return hindex.NodeID(len(tr.nodes) - 1)
}

func (tr *Tree) idOf(nd *node) hindex.NodeID {
	return hindex.NodeID(nd.page)
}

// wireParents sets parent/posInParent links below the root.
func (tr *Tree) wireParents() {
	for id, nd := range tr.nodes {
		if nd.leaf {
			continue
		}
		for pos, kid := range nd.kids {
			tr.nodes[kid].parent = hindex.NodeID(id)
			tr.nodes[kid].posInParent = pos
		}
	}
}

func (tr *Tree) indexLeaves() {
	for id, nd := range tr.nodes {
		if !nd.leaf {
			continue
		}
		for _, tid := range nd.tids {
			tr.leafOf[tid] = hindex.NodeID(id)
		}
	}
}

// Dims implements hindex.Index.
func (tr *Tree) Dims() []int { return tr.dims }

// Domain implements hindex.Index.
func (tr *Tree) Domain() ranking.Box { return tr.domain }

// Root implements hindex.Index.
func (tr *Tree) Root() hindex.NodeID { return tr.root }

// Height implements hindex.Index.
func (tr *Tree) Height() int { return tr.height }

// MaxFanout implements hindex.Index.
func (tr *Tree) MaxFanout() int { return tr.fanout }

// IsLeaf implements hindex.Index.
func (tr *Tree) IsLeaf(id hindex.NodeID) bool { return tr.nodes[id].leaf }

// NumChildren implements hindex.Index.
func (tr *Tree) NumChildren(id hindex.NodeID) int { return tr.nodes[id].numEntries() }

// Children implements hindex.Index.
func (tr *Tree) Children(id hindex.NodeID) []hindex.ChildRef {
	nd := tr.nodes[id]
	if nd.leaf {
		//lint:invariant hindex contract: Children is only defined on internal nodes
		panic(fmt.Sprintf("rtree: Children on leaf node %d", id))
	}
	out := make([]hindex.ChildRef, len(nd.kids))
	for i, kid := range nd.kids {
		out[i] = hindex.ChildRef{ID: kid, Box: tr.widen(nd.rects[i])}
	}
	return out
}

// ChildAt implements hindex.Index.
func (tr *Tree) ChildAt(id hindex.NodeID, slot int) hindex.NodeID {
	return tr.nodes[id].kids[slot]
}

// LeafEntries implements hindex.Index.
func (tr *Tree) LeafEntries(id hindex.NodeID) []hindex.LeafEntry {
	nd := tr.nodes[id]
	if !nd.leaf {
		//lint:invariant hindex contract: LeafEntries is only defined on leaves
		panic(fmt.Sprintf("rtree: LeafEntries on internal node %d", id))
	}
	out := make([]hindex.LeafEntry, len(nd.tids))
	for i, tid := range nd.tids {
		pt := tr.domain.Center()
		for j, dim := range tr.dims {
			pt[dim] = nd.rects[i].lo[j]
		}
		out[i] = hindex.LeafEntry{TID: tid, Point: pt}
	}
	return out
}

// NodeBox implements hindex.Index.
func (tr *Tree) NodeBox(id hindex.NodeID) ranking.Box {
	return tr.widen(tr.nodes[id].mbr())
}

// widen lifts a low-width rect to a full-width box (uncovered dimensions
// span the domain).
func (tr *Tree) widen(r rect) ranking.Box {
	box := tr.domain.Clone()
	if r.lo == nil {
		return box
	}
	for j, dim := range tr.dims {
		box.Lo[dim] = r.lo[j]
		box.Hi[dim] = r.hi[j]
	}
	return box
}

// Page implements hindex.Index.
func (tr *Tree) Page(id hindex.NodeID) pager.PageID { return tr.nodes[id].page }

// Store implements hindex.Index.
func (tr *Tree) Store() *pager.Store { return tr.store }

// Path implements hindex.Index by walking parent links (1-based positions).
func (tr *Tree) Path(id hindex.NodeID) []int {
	var rev []int
	for id != tr.root {
		nd := tr.nodes[id]
		rev = append(rev, nd.posInParent+1)
		id = nd.parent
	}
	out := make([]int, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// LeafOf reports the leaf currently holding tid (InvalidNode if absent).
func (tr *Tree) LeafOf(tid table.TID) hindex.NodeID {
	if id, ok := tr.leafOf[tid]; ok {
		return id
	}
	return hindex.InvalidNode
}

// LeafPath implements hindex.TupleLocator: the path of the leaf node
// holding tid (join-signatures drop the leaf slot, §5.3.2).
func (tr *Tree) LeafPath(tid table.TID) []int {
	leaf := tr.LeafOf(tid)
	if leaf == hindex.InvalidNode {
		return nil
	}
	return tr.Path(leaf)
}

// ValueOrdered implements hindex.ValueOrdered: R-tree entries carry no
// total order.
func (tr *Tree) ValueOrdered() bool { return false }

// TuplePath returns tid's full path including its slot within the leaf
// (thesis §4.2.1: level-d corresponds to a leaf entry).
func (tr *Tree) TuplePath(tid table.TID) []int {
	leaf := tr.LeafOf(tid)
	if leaf == hindex.InvalidNode {
		return nil
	}
	nd := tr.nodes[leaf]
	for slot, t := range nd.tids {
		if t == tid {
			return append(tr.Path(leaf), slot+1)
		}
	}
	return nil
}

// TIDAt resolves a full tuple path (node positions plus leaf slot, as
// produced by TuplePath) back to the tuple it addresses.
func (tr *Tree) TIDAt(path []int) (table.TID, bool) {
	if tr.root == hindex.InvalidNode || len(path) == 0 {
		return 0, false
	}
	id := tr.root
	for _, p := range path[:len(path)-1] {
		nd := tr.nodes[id]
		if nd.leaf || p < 1 || p > len(nd.kids) {
			return 0, false
		}
		id = nd.kids[p-1]
	}
	nd := tr.nodes[id]
	slot := path[len(path)-1] - 1
	if !nd.leaf || slot < 0 || slot >= len(nd.tids) {
		return 0, false
	}
	return nd.tids[slot], true
}

// NumNodes reports the total node count.
func (tr *Tree) NumNodes() int { return len(tr.nodes) }

// NumLeaves reports the leaf count.
func (tr *Tree) NumLeaves() int {
	c := 0
	for _, nd := range tr.nodes {
		if nd.leaf {
			c++
		}
	}
	return c
}

var _ hindex.Index = (*Tree)(nil)
