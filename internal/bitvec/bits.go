// Package bitvec provides bit arrays, a bit-granular reader/writer, and the
// node-level signature codecs of thesis §4.2.2: baseline (BL), run-length
// (RL), position-index (PI) and prefix-compression (PC) coding, each with
// dense and sparse variants, selected adaptively per node.
package bitvec

import "math/bits"

// Bits is a growable bit array.
type Bits struct {
	words []uint64
	n     int
}

// NewBits returns a zeroed bit array of length n.
func NewBits(n int) *Bits {
	return &Bits{words: make([]uint64, (n+63)/64), n: n}
}

// Len reports the number of bits.
func (b *Bits) Len() int { return b.n }

// Get reports bit i.
func (b *Bits) Get(i int) bool {
	return b.words[i/64]&(1<<(uint(i)%64)) != 0
}

// Set sets bit i to v.
func (b *Bits) Set(i int, v bool) {
	if v {
		b.words[i/64] |= 1 << (uint(i) % 64)
	} else {
		b.words[i/64] &^= 1 << (uint(i) % 64)
	}
}

// Ones reports the number of set bits.
func (b *Bits) Ones() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// OnesPositions returns the indices of all set bits, ascending.
func (b *Bits) OnesPositions() []int {
	out := make([]int, 0, b.Ones())
	for i := 0; i < b.n; i++ {
		if b.Get(i) {
			out = append(out, i)
		}
	}
	return out
}

// LastOne returns the index of the highest set bit, or -1 when none.
func (b *Bits) LastOne() int {
	for i := b.n - 1; i >= 0; i-- {
		if b.Get(i) {
			return i
		}
	}
	return -1
}

// LastZero returns the index of the highest clear bit, or -1 when none.
func (b *Bits) LastZero() int {
	for i := b.n - 1; i >= 0; i-- {
		if !b.Get(i) {
			return i
		}
	}
	return -1
}

// Or sets b to b | o. Lengths must match.
func (b *Bits) Or(o *Bits) {
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
}

// And sets b to b & o. Lengths must match.
func (b *Bits) And(o *Bits) {
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

// Any reports whether any bit is set.
func (b *Bits) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Clone returns a deep copy.
func (b *Bits) Clone() *Bits {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bits{words: w, n: b.n}
}

// Equal reports whether two bit arrays have identical length and contents.
func (b *Bits) Equal(o *Bits) bool {
	if b.n != o.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// String renders the bits as a 0/1 string, low index first.
func (b *Bits) String() string {
	out := make([]byte, b.n)
	for i := 0; i < b.n; i++ {
		if b.Get(i) {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}

// Writer appends bit fields to a byte buffer, LSB-first within each field.
type Writer struct {
	buf  []byte
	nbit int
}

// WriteBits appends the low width bits of v.
func (w *Writer) WriteBits(v uint64, width int) {
	for i := 0; i < width; i++ {
		if w.nbit%8 == 0 {
			w.buf = append(w.buf, 0)
		}
		if v&(1<<uint(i)) != 0 {
			w.buf[w.nbit/8] |= 1 << (uint(w.nbit) % 8)
		}
		w.nbit++
	}
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(v bool) {
	if v {
		w.WriteBits(1, 1)
	} else {
		w.WriteBits(0, 1)
	}
}

// Len reports the number of bits written.
func (w *Writer) Len() int { return w.nbit }

// Bytes returns the encoded buffer (the final byte may be partially used).
func (w *Writer) Bytes() []byte { return w.buf }

// Reader consumes bit fields from a byte buffer written by Writer.
type Reader struct {
	buf []byte
	pos int
}

// NewReader reads from buf starting at bit offset 0.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// ReadBits consumes width bits and returns them as an integer (LSB-first).
func (r *Reader) ReadBits(width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		if r.buf[r.pos/8]&(1<<(uint(r.pos)%8)) != 0 {
			v |= 1 << uint(i)
		}
		r.pos++
	}
	return v
}

// ReadBit consumes one bit.
func (r *Reader) ReadBit() bool { return r.ReadBits(1) == 1 }

// Pos reports the current bit offset.
func (r *Reader) Pos() int { return r.pos }

// Seek sets the bit offset.
func (r *Reader) Seek(pos int) { r.pos = pos }

// Remaining reports how many bits remain.
func (r *Reader) Remaining() int { return len(r.buf)*8 - r.pos }

// BitsFor returns the number of bits needed to represent values in [0, n)
// (at least 1).
func BitsFor(n int) int {
	if n <= 2 {
		return 1
	}
	return bits.Len(uint(n - 1))
}
