package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsBasics(t *testing.T) {
	b := NewBits(130)
	b.Set(0, true)
	b.Set(64, true)
	b.Set(129, true)
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Fatal("Get/Set mismatch")
	}
	if b.Ones() != 3 {
		t.Fatalf("Ones = %d", b.Ones())
	}
	if b.LastOne() != 129 {
		t.Fatalf("LastOne = %d", b.LastOne())
	}
	pos := b.OnesPositions()
	if len(pos) != 3 || pos[0] != 0 || pos[1] != 64 || pos[2] != 129 {
		t.Fatalf("OnesPositions = %v", pos)
	}
	b.Set(64, false)
	if b.Ones() != 2 {
		t.Fatalf("Ones after clear = %d", b.Ones())
	}
}

func TestBitsOrAndClone(t *testing.T) {
	a := NewBits(10)
	b := NewBits(10)
	a.Set(1, true)
	a.Set(3, true)
	b.Set(3, true)
	b.Set(5, true)
	c := a.Clone()
	c.Or(b)
	if c.String() != "0101010000" {
		t.Fatalf("Or = %s", c.String())
	}
	d := a.Clone()
	d.And(b)
	if d.String() != "0001000000" {
		t.Fatalf("And = %s", d.String())
	}
	if !a.Any() || NewBits(4).Any() {
		t.Fatal("Any mismatch")
	}
	if !a.Equal(a.Clone()) || a.Equal(b) {
		t.Fatal("Equal mismatch")
	}
}

func TestWriterReaderRoundtrip(t *testing.T) {
	var w Writer
	w.WriteBits(0b1011, 4)
	w.WriteBit(true)
	w.WriteBits(1023, 10)
	w.WriteBits(0, 3)
	w.WriteBits(0xDEADBEEF, 32)
	r := NewReader(w.Bytes())
	if r.ReadBits(4) != 0b1011 {
		t.Fatal("4-bit field mismatch")
	}
	if !r.ReadBit() {
		t.Fatal("bit mismatch")
	}
	if r.ReadBits(10) != 1023 {
		t.Fatal("10-bit field mismatch")
	}
	if r.ReadBits(3) != 0 {
		t.Fatal("3-bit field mismatch")
	}
	if r.ReadBits(32) != 0xDEADBEEF {
		t.Fatal("32-bit field mismatch")
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]int{2: 1, 3: 2, 4: 2, 5: 3, 204: 8, 256: 8, 257: 9}
	for n, want := range cases {
		if got := BitsFor(n); got != want {
			t.Fatalf("BitsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

// roundtrip encodes b under every scheme that fits and checks decoding
// restores it exactly.
func roundtrip(t *testing.T, c *Codec, b *Bits) {
	t.Helper()
	for _, scheme := range allSchemes {
		if _, ok := c.regionBits(b, scheme); !ok {
			continue
		}
		var w Writer
		c.EncodeWith(&w, b, scheme)
		got := c.Decode(NewReader(w.Bytes()))
		if !got.Equal(b) {
			t.Fatalf("%s roundtrip: got %s want %s", SchemeName(scheme), got, b)
		}
	}
	// Adaptive path.
	var w Writer
	c.Encode(&w, b)
	got := c.Decode(NewReader(w.Bytes()))
	if !got.Equal(b) {
		t.Fatalf("adaptive roundtrip: got %s want %s", got, b)
	}
}

func TestCodecRoundtripHandPicked(t *testing.T) {
	c := NewCodec(32)
	patterns := []string{
		"1",
		"0",
		"10",
		"01",
		"11111111",
		"00000000",
		"10000000000000000000000000000001",
		"01101011",
		"11111111111111110000000000000000",
		"00000000000000001111111111111111",
		"10101010101010101010101010101010",
	}
	for _, p := range patterns {
		b := NewBits(len(p))
		for i, ch := range p {
			b.Set(i, ch == '1')
		}
		roundtrip(t, c, b)
	}
}

func TestCodecRoundtripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, m := range []int{8, 32, 204} {
		c := NewCodec(m)
		for trial := 0; trial < 200; trial++ {
			n := 1 + rng.Intn(m)
			b := NewBits(n)
			density := rng.Float64()
			for i := 0; i < n; i++ {
				b.Set(i, rng.Float64() < density)
			}
			roundtrip(t, c, b)
		}
	}
}

func TestCodecQuickProperty(t *testing.T) {
	c := NewCodec(64)
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		n := len(raw)
		if n > 64 {
			n = 64
		}
		b := NewBits(n)
		for i := 0; i < n; i++ {
			b.Set(i, raw[i]&1 == 1)
		}
		var w Writer
		c.Encode(&w, b)
		return c.Decode(NewReader(w.Bytes())).Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecMultipleNodesInStream(t *testing.T) {
	c := NewCodec(16)
	arrays := []*Bits{NewBits(5), NewBits(16), NewBits(1)}
	arrays[0].Set(2, true)
	for i := 0; i < 16; i += 2 {
		arrays[1].Set(i, true)
	}
	arrays[2].Set(0, true)
	var w Writer
	for _, b := range arrays {
		c.Encode(&w, b)
	}
	r := NewReader(w.Bytes())
	for i, b := range arrays {
		got := c.Decode(r)
		if !got.Equal(b) {
			t.Fatalf("node %d: got %s want %s", i, got, b)
		}
	}
}

func TestAdaptiveBeatsBaselineOnSparse(t *testing.T) {
	// A very sparse wide array should compress below the BL size.
	c := NewCodec(204)
	b := NewBits(204)
	b.Set(3, true)
	adaptive := c.EncodedBits(b)
	var w Writer
	c.EncodeBaseline(&w, b)
	baseline := w.Len()
	if adaptive >= baseline {
		t.Fatalf("adaptive %d bits, baseline %d bits: no gain on sparse array", adaptive, baseline)
	}
}

func TestGammaRoundtrip(t *testing.T) {
	c := NewCodec(16)
	for i := 0; i <= 300; i++ {
		var w Writer
		c.writeGamma(&w, i)
		if got := w.Len(); got != gammaBits(i) {
			t.Fatalf("gammaBits(%d) = %d, wrote %d", i, gammaBits(i), got)
		}
		r := NewReader(w.Bytes())
		if got := c.readGamma(r); got != i {
			t.Fatalf("gamma roundtrip %d -> %d", i, got)
		}
	}
}
