package bitvec

import (
	"fmt"
	"math"
	"math/bits"

	"rankcube/internal/errs"
)

// Coding schemes for signature nodes (thesis Table 4.2 / §4.2.2). The 3-bit
// CS header uses 000 for the baseline coding; otherwise the first two bits
// select the method (01 PI, 10 RL, 11 PC) and the last bit selects sparse
// (0, encode the 1s) or dense (1, encode the 0s).
const (
	SchemeBL       = 0b000
	SchemePISparse = 0b010
	SchemePIDense  = 0b011
	SchemeRLSparse = 0b100
	SchemeRLDense  = 0b101
	SchemePCSparse = 0b110
	SchemePCDense  = 0b111
)

// SchemeName renders a scheme id for diagnostics.
func SchemeName(s int) string {
	switch s {
	case SchemeBL:
		return "BL"
	case SchemePISparse:
		return "PI/sparse"
	case SchemePIDense:
		return "PI/dense"
	case SchemeRLSparse:
		return "RL/sparse"
	case SchemeRLDense:
		return "RL/dense"
	case SchemePCSparse:
		return "PC/sparse"
	case SchemePCDense:
		return "PC/dense"
	default:
		return fmt.Sprintf("scheme(%d)", s)
	}
}

var allSchemes = []int{
	SchemeBL,
	SchemePISparse, SchemePIDense,
	SchemeRLSparse, SchemeRLDense,
	SchemePCSparse, SchemePCDense,
}

// Codec encodes and decodes signature-node bit arrays whose length is at
// most M (the maximum node fanout). A node encoding is
//
//	[CS: 3 bits][Len: lenBits][coding region: Len+1 bits]
//
// following the unified coding structure of thesis fig. 4.4 (Len uses
// one-less coding). Every coding region begins with the array length b−1 in
// ceil(log2 M) bits so decoders can restore truncated trailing bits.
//
// Deviation from the thesis' run-length description: run values i are coded
// as Elias-γ of i+1 (unary length prefix in 1s, 0 terminator, then the
// remaining low bits) because the thesis' ⌈log2(i+1)⌉-bit scheme cannot
// represent a zero-length run unambiguously.
type Codec struct {
	m       int
	nbits   int // position width: bits to address [0, M)
	lenBits int // width of the Len field
}

// NewCodec returns a codec for node arrays of length at most m (m ≥ 2).
func NewCodec(m int) *Codec {
	if m < 2 {
		//lint:invariant fanout is fixed at build time by the partition config
		panic("bitvec: codec fanout must be >= 2")
	}
	nbits := BitsFor(m)
	// Coding regions are capped at nbits + 2m bits; BL (nbits + b ≤ nbits+m)
	// always fits, so adaptive selection can always fall back.
	regionCap := nbits + 2*m
	return &Codec{m: m, nbits: nbits, lenBits: BitsFor(regionCap + 1)}
}

// M reports the maximum array length.
func (c *Codec) M() int { return c.m }

// HeaderBits reports the fixed per-node overhead (CS + Len fields).
func (c *Codec) HeaderBits() int { return 3 + c.lenBits }

func (c *Codec) regionCap() int { return c.nbits + 2*c.m }

// Encode writes b with the scheme yielding the smallest region ("adaptively
// choose the best coding scheme", §4.2.2) and returns the scheme used.
func (c *Codec) Encode(w *Writer, b *Bits) int {
	best, bestBits := SchemeBL, math.MaxInt
	for _, s := range allSchemes {
		if n, ok := c.regionBits(b, s); ok && n < bestBits {
			best, bestBits = s, n
		}
	}
	c.EncodeWith(w, b, best)
	return best
}

// EncodeBaseline writes b with the baseline scheme only (the "Baseline"
// series of thesis fig. 4.10).
func (c *Codec) EncodeBaseline(w *Writer, b *Bits) { c.EncodeWith(w, b, SchemeBL) }

// EncodedBits reports the total encoded size in bits (header + region) of b
// under adaptive selection, without writing.
func (c *Codec) EncodedBits(b *Bits) int {
	bestBits := math.MaxInt
	for _, s := range allSchemes {
		if n, ok := c.regionBits(b, s); ok && n < bestBits {
			bestBits = n
		}
	}
	return c.HeaderBits() + bestBits
}

// EncodeWith writes b under an explicit scheme. It panics if the region
// exceeds the codec's cap (callers select schemes via Encode).
func (c *Codec) EncodeWith(w *Writer, b *Bits, scheme int) {
	n, ok := c.regionBits(b, scheme)
	if !ok {
		//lint:invariant Encode pre-selects a scheme that fits; a miss is a codec bug
		panic(fmt.Sprintf("bitvec: %s region for %d-bit array exceeds cap", SchemeName(scheme), b.Len()))
	}
	w.WriteBits(uint64(scheme), 3)
	w.WriteBits(uint64(n-1), c.lenBits)
	start := w.Len()
	c.writeRegion(w, b, scheme)
	if w.Len()-start != n {
		//lint:invariant writer must emit exactly the region size it computed
		panic(fmt.Sprintf("bitvec: %s region size mismatch: wrote %d want %d", SchemeName(scheme), w.Len()-start, n))
	}
}

// Decode reads one node array.
func (c *Codec) Decode(r *Reader) *Bits {
	scheme := int(r.ReadBits(3))
	region := int(r.ReadBits(c.lenBits)) + 1
	end := r.Pos() + region
	blen := int(r.ReadBits(c.nbits)) + 1
	out := NewBits(blen)
	dense := scheme&1 == 1
	switch scheme {
	case SchemeBL:
		for i := 0; i < blen; i++ {
			out.Set(i, r.ReadBit())
		}
	case SchemePISparse, SchemePIDense:
		for r.Pos() < end {
			pos := int(r.ReadBits(c.nbits))
			out.Set(pos, true)
		}
		if dense {
			c.complement(out)
		}
	case SchemeRLSparse, SchemeRLDense:
		i := 0
		for r.Pos() < end {
			run := c.readGamma(r)
			i += run
			out.Set(i, true)
			i++
		}
		if dense {
			c.complement(out)
		}
	case SchemePCSparse, SchemePCDense:
		p := c.prefixBits()
		sbits := c.nbits - p
		for r.Pos() < end {
			prefix := int(r.ReadBits(p))
			count := int(r.ReadBits(sbits)) + 1
			for j := 0; j < count; j++ {
				suffix := int(r.ReadBits(sbits))
				out.Set(prefix<<uint(sbits)|suffix, true)
			}
		}
		if dense {
			c.complement(out)
		}
	default:
		// The scheme header came off a stored page: an unknown value means
		// the page bytes are corrupt, not that the caller erred.
		errs.Abortf(errs.ErrPageCorrupt, "bitvec: unknown scheme %d", scheme)
	}
	if r.Pos() != end {
		r.Seek(end)
	}
	return out
}

// complement flips every bit in place (dense decodings mark 0 positions).
func (c *Codec) complement(b *Bits) {
	for i := 0; i < b.Len(); i++ {
		b.Set(i, !b.Get(i))
	}
}

// regionBits computes the coding-region size of b under scheme, and whether
// it fits the cap.
func (c *Codec) regionBits(b *Bits, scheme int) (int, bool) {
	if b.Len() > c.m || b.Len() == 0 {
		return 0, false
	}
	n := c.nbits // every region carries b-1
	dense := scheme&1 == 1
	switch scheme {
	case SchemeBL:
		n += b.Len()
	case SchemePISparse, SchemePIDense:
		n += c.count(b, dense) * c.nbits
	case SchemeRLSparse, SchemeRLDense:
		n += c.runBits(b, dense)
	case SchemePCSparse, SchemePCDense:
		n += c.pcBits(b, dense)
	}
	if n > c.regionCap() {
		return 0, false
	}
	return n, true
}

func (c *Codec) writeRegion(w *Writer, b *Bits, scheme int) {
	w.WriteBits(uint64(b.Len()-1), c.nbits)
	dense := scheme&1 == 1
	switch scheme {
	case SchemeBL:
		for i := 0; i < b.Len(); i++ {
			w.WriteBit(b.Get(i))
		}
	case SchemePISparse, SchemePIDense:
		for _, pos := range c.positions(b, dense) {
			w.WriteBits(uint64(pos), c.nbits)
		}
	case SchemeRLSparse, SchemeRLDense:
		prev := -1
		for _, pos := range c.positions(b, dense) {
			c.writeGamma(w, pos-prev-1)
			prev = pos
		}
	case SchemePCSparse, SchemePCDense:
		p := c.prefixBits()
		sbits := c.nbits - p
		positions := c.positions(b, dense)
		for i := 0; i < len(positions); {
			prefix := positions[i] >> uint(sbits)
			j := i
			for j < len(positions) && positions[j]>>uint(sbits) == prefix {
				j++
			}
			w.WriteBits(uint64(prefix), p)
			w.WriteBits(uint64(j-i-1), sbits)
			for ; i < j; i++ {
				w.WriteBits(uint64(positions[i]&(1<<uint(sbits)-1)), sbits)
			}
		}
	}
}

// positions lists marked positions: the 1s (sparse) or the 0s (dense).
func (c *Codec) positions(b *Bits, dense bool) []int {
	out := make([]int, 0, b.Len())
	for i := 0; i < b.Len(); i++ {
		if b.Get(i) != dense {
			out = append(out, i)
		}
	}
	return out
}

func (c *Codec) count(b *Bits, dense bool) int {
	if dense {
		return b.Len() - b.Ones()
	}
	return b.Ones()
}

// runBits sizes the RL payload: Elias-γ of (gap+1) per marked position.
func (c *Codec) runBits(b *Bits, dense bool) int {
	total := 0
	prev := -1
	for _, pos := range c.positions(b, dense) {
		total += gammaBits(pos - prev - 1)
		prev = pos
	}
	return total
}

// pcBits sizes the PC payload.
func (c *Codec) pcBits(b *Bits, dense bool) int {
	p := c.prefixBits()
	sbits := c.nbits - p
	positions := c.positions(b, dense)
	total := 0
	for i := 0; i < len(positions); {
		prefix := positions[i] >> uint(sbits)
		j := i
		for j < len(positions) && positions[j]>>uint(sbits) == prefix {
			j++
		}
		total += p + sbits + (j-i)*sbits
		i = j
	}
	return total
}

// prefixBits computes the PC prefix length p = log2(2^n / (n ln 2)) (thesis
// §4.2.2, from [31]), clamped to keep both prefix and suffix non-empty.
func (c *Codec) prefixBits() int {
	n := float64(c.nbits)
	p := int(math.Round(math.Log2(math.Exp2(n) / (n * math.Ln2))))
	if p < 1 {
		p = 1
	}
	if p > c.nbits-1 {
		p = c.nbits - 1
	}
	return p
}

// writeGamma emits run value i ≥ 0 as Elias-γ of g = i+1: (len(g)−1) 1s, a
// 0 terminator, then the low len(g)−1 bits of g.
func (c *Codec) writeGamma(w *Writer, i int) {
	g := uint(i + 1)
	l := bits.Len(g)
	for k := 0; k < l-1; k++ {
		w.WriteBit(true)
	}
	w.WriteBit(false)
	w.WriteBits(uint64(g)&(1<<uint(l-1)-1), l-1)
}

// readGamma reads one run value.
func (c *Codec) readGamma(r *Reader) int {
	l := 1
	for r.ReadBit() {
		l++
	}
	low := r.ReadBits(l - 1)
	g := uint64(1)<<uint(l-1) | low
	return int(g) - 1
}

// gammaBits sizes writeGamma's output.
func gammaBits(i int) int {
	g := uint(i + 1)
	l := bits.Len(g)
	return 2*l - 1
}
