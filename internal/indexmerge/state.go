// Package indexmerge implements the index-merge paradigm of thesis
// chapter 5: top-k search over the space of joint states composed of nodes
// from multiple hierarchical indices, supporting ad hoc (non-monotone)
// ranking functions. It provides the baseline full-expansion merge (Alg. 4),
// the double-heap progressive merge with neighborhood and threshold
// expansion (Alg. 5/6), and join-signature pruning of empty states (§5.3).
package indexmerge

import (
	"math"

	"rankcube/internal/heap"
	"rankcube/internal/hindex"
	"rankcube/internal/ranking"
)

// childRef is one expansion candidate of a state member: either a child of
// a non-leaf member node or the member itself when it is already a leaf
// ("If Ii.ni is a leaf node, Ii.ni itself is used in the Cartesian
// products", §5.1.1).
type childRef struct {
	id       hindex.NodeID
	slot     int // 0-based slot in the member node (0 for leaf-self)
	leafSelf bool
	box      ranking.Box // composed with the state box
	bound    float64     // f'(e): lower bound with other members at state box
}

// state is one joint state (n1, …, nm).
type state struct {
	nodes []hindex.NodeID
	box   ranking.Box
	bound float64
	leaf  bool // all members are leaves
	exp   *expansion
}

// expansion holds a state's progressive get_next machinery (§5.2).
type expansion struct {
	members  [][]childRef
	lheap    *heap.Heap[pending]
	strategy expandKind
	// threshold positions, one per member (next list index to introduce).
	ts []int
	// pruner combo tester for this state (nil = no pruning).
	combos ComboTester
	// dead marks a state whose signature lookup failed: a bloom false
	// positive being corrected (§5.3.3).
	dead bool
}

type expandKind int

const (
	expandThreshold expandKind = iota
	expandNeighborhood
)

// pending is one generated-but-not-returned child combo in a local heap.
type pending struct {
	combo []int
	bound float64
	empty bool // known-empty (kept for neighborhood traversal only)
}

func lessPending(a, b pending) bool {
	if a.bound != b.bound {
		return a.bound < b.bound
	}
	// Deterministic tie-break on combo lexicographic order.
	for i := range a.combo {
		if a.combo[i] != b.combo[i] {
			return a.combo[i] < b.combo[i]
		}
	}
	return false
}

// composeBox intersects the state box with a child's box (per dimension).
func composeBox(stateBox, childBox ranking.Box) ranking.Box {
	out := stateBox.Clone()
	for d := range out.Lo {
		if childBox.Lo[d] > out.Lo[d] {
			out.Lo[d] = childBox.Lo[d]
		}
		if childBox.Hi[d] < out.Hi[d] {
			out.Hi[d] = childBox.Hi[d]
		}
	}
	return out
}

// init prepares a state for progressive expansion: member child lists with
// f' bounds, the expansion strategy, and the state's signature tester.
func (m *Merger) initExpansion(s *state) {
	exp := &expansion{lheap: heap.New[pending](lessPending)}
	s.exp = exp

	if m.pruner != nil {
		paths := make([][]int, len(m.indices))
		for i, idx := range m.indices {
			paths[i] = idx.Path(s.nodes[i])
		}
		tester, known := m.pruner.Load(paths, m.ctr)
		if !known {
			// The state was reached through a bloom false positive; it is
			// empty (§5.3.3) and produces no children.
			exp.dead = true
			return
		}
		exp.combos = tester
	}

	exp.members = make([][]childRef, len(m.indices))
	for i, idx := range m.indices {
		nid := s.nodes[i]
		if idx.IsLeaf(nid) {
			exp.members[i] = []childRef{{
				id: nid, slot: 0, leafSelf: true, box: s.box,
				bound: s.bound,
			}}
			continue
		}
		children := m.acc[i].Children(nid)
		refs := make([]childRef, len(children))
		for slot, ch := range children {
			box := composeBox(s.box, ch.Box)
			refs[slot] = childRef{
				id:    ch.ID,
				slot:  slot,
				box:   box,
				bound: m.f.LowerBound(box),
			}
		}
		exp.members[i] = refs
	}

	if m.useNeighborhood(s) {
		exp.strategy = expandNeighborhood
		m.orderForNeighborhood(exp)
		exp.seedNeighborhood(m)
	} else {
		exp.strategy = expandThreshold
		m.orderByBound(exp)
		exp.ts = make([]int, len(exp.members))
		for i := range exp.ts {
			exp.ts[i] = 1
		}
		exp.push(m, make([]int, len(exp.members)))
	}
}

// useNeighborhood decides whether neighborhood expansion applies: the
// function must be monotone or semi-monotone and every non-leaf member must
// come from a value-ordered (B+-tree) index (§5.2.2).
func (m *Merger) useNeighborhood(s *state) bool {
	if m.opts.DisableNeighborhood {
		return false
	}
	_, mono := m.f.(ranking.Monotone)
	_, semi := m.f.(ranking.SemiMonotone)
	if !mono && !semi {
		return false
	}
	for i, idx := range m.indices {
		if idx.IsLeaf(s.nodes[i]) {
			continue
		}
		vo, ok := idx.(hindex.ValueOrdered)
		if !ok || !vo.ValueOrdered() {
			return false
		}
	}
	return true
}

// orderByBound sorts each member's children ascending by f' (threshold
// expansion's sorted lists, §5.2.3).
func (m *Merger) orderByBound(exp *expansion) {
	for i := range exp.members {
		refs := exp.members[i]
		insertionSortBy(refs, func(a, b childRef) bool {
			if a.bound != b.bound {
				return a.bound < b.bound
			}
			return a.slot < b.slot
		})
	}
}

// orderForNeighborhood sorts each member's children so that f' is
// non-decreasing along the sequence: ascending or descending attribute order
// for monotone functions, distance-from-extreme order for semi-monotone
// ones. Since f' itself is computed from box lower bounds, sorting by f'
// (ties by value order) realizes both cases.
func (m *Merger) orderForNeighborhood(exp *expansion) {
	m.orderByBound(exp)
}

// seedNeighborhood pushes the initial state (all members at sequence
// position 0).
func (exp *expansion) seedNeighborhood(m *Merger) {
	exp.push(m, make([]int, len(exp.members)))
}

// push creates a pending child combo, consulting the pruner. Empty combos
// are dropped under threshold expansion and kept (marked) under
// neighborhood expansion, where they are still needed to reach their
// neighbors (§5.3.3).
func (exp *expansion) push(m *Merger, combo []int) {
	empty := false
	if exp.combos != nil {
		slots := make([]int, len(combo))
		for i, pos := range combo {
			slots[i] = exp.members[i][pos].slot
		}
		if !exp.combos.MayContain(slots) {
			if exp.strategy == expandThreshold {
				m.ctr.Pruned++
				return
			}
			empty = true
			m.ctr.Pruned++
		}
	}
	bound := exp.comboBound(m, combo)
	if math.IsInf(bound, 1) {
		return
	}
	c := append([]int(nil), combo...)
	exp.lheap.Push(pending{combo: c, bound: bound, empty: empty})
	m.ctr.StatesGenerated++
	m.ctr.ObserveHeap(m.heapSize())
}

// comboBound computes f over the joint box of a child combo.
func (exp *expansion) comboBound(m *Merger, combo []int) float64 {
	box := exp.members[0][combo[0]].box
	if len(combo) > 1 {
		box = box.Clone()
		for i := 1; i < len(combo); i++ {
			box = composeBox(box, exp.members[i][combo[i]].box)
		}
	}
	return m.f.LowerBound(box)
}

// getNext produces the state's next best child, or nil when exhausted
// (§5.2.1's S.get_next interface).
func (m *Merger) getNext(s *state) *state {
	exp := s.exp
	if exp.dead {
		return nil
	}
	switch exp.strategy {
	case expandNeighborhood:
		return m.nextNeighborhood(s)
	default:
		return m.nextThreshold(s)
	}
}

// nextNeighborhood pops the best pending combo and pushes its staircase
// neighbors: coordinate c may advance only when all later coordinates are
// at their start, which enumerates every combo exactly once without a
// duplicate hash table.
func (m *Merger) nextNeighborhood(s *state) *state {
	exp := s.exp
	for exp.lheap.Len() > 0 {
		p := exp.lheap.Pop()
		for c := 0; c < len(p.combo); c++ {
			if p.combo[c]+1 >= len(exp.members[c]) {
				continue
			}
			ok := true
			for j := c + 1; j < len(p.combo); j++ {
				if p.combo[j] != 0 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			p.combo[c]++
			exp.push(m, p.combo)
			p.combo[c]--
		}
		if p.empty {
			continue
		}
		return m.buildChild(s, p)
	}
	return nil
}

// nextThreshold runs the sort-merge search of §5.2.3: it returns the local
// heap root once no future combo can beat it, advancing the member with the
// best threshold bound otherwise.
func (m *Merger) nextThreshold(s *state) *state {
	exp := s.exp
	for {
		thr := math.Inf(1)
		best := -1
		for i, t := range exp.ts {
			if t >= len(exp.members[i]) {
				continue
			}
			if b := exp.members[i][t].bound; b < thr {
				thr, best = b, i
			}
		}
		if exp.lheap.Len() > 0 && exp.lheap.Min().bound <= thr {
			p := exp.lheap.Pop()
			return m.buildChild(s, p)
		}
		if best < 0 {
			if exp.lheap.Len() == 0 {
				return nil
			}
			p := exp.lheap.Pop()
			return m.buildChild(s, p)
		}
		// Advance member best: generate the Cartesian band
		// [0..t_j−1] × … × [t_best] × … (§5.2.3).
		m.generateBand(exp, best)
		exp.ts[best]++
	}
}

// generateBand pushes all combos whose coordinate at member s equals
// ts[s] and whose other coordinates are below their thresholds.
func (m *Merger) generateBand(exp *expansion, s int) {
	combo := make([]int, len(exp.members))
	var rec func(i int)
	rec = func(i int) {
		if i == len(exp.members) {
			exp.push(m, combo)
			return
		}
		if i == s {
			combo[i] = exp.ts[s]
			rec(i + 1)
			return
		}
		limit := exp.ts[i]
		if limit > len(exp.members[i]) {
			limit = len(exp.members[i])
		}
		for p := 0; p < limit; p++ {
			combo[i] = p
			rec(i + 1)
		}
	}
	rec(0)
}

// peekBound reports the bound of the state's next child (+Inf when
// exhausted for neighborhood; threshold states may still surface future
// combos bounded by the threshold value).
func (exp *expansion) peekBound() float64 {
	bound := math.Inf(1)
	if exp.dead {
		return bound
	}
	if exp.lheap.Len() > 0 {
		bound = exp.lheap.Min().bound
	}
	if exp.strategy == expandThreshold {
		for i, t := range exp.ts {
			if t < len(exp.members[i]) {
				if b := exp.members[i][t].bound; b < bound {
					bound = b
				}
			}
		}
	}
	return bound
}

// buildChild materializes a state from a pending combo.
func (m *Merger) buildChild(parent *state, p pending) *state {
	exp := parent.exp
	nodes := make([]hindex.NodeID, len(p.combo))
	box := exp.members[0][p.combo[0]].box
	if len(p.combo) > 1 {
		box = box.Clone()
	}
	leaf := true
	for i, pos := range p.combo {
		ref := exp.members[i][pos]
		nodes[i] = ref.id
		if i > 0 {
			box = composeBox(box, ref.box)
		}
		if !m.indices[i].IsLeaf(ref.id) {
			leaf = false
		}
	}
	return &state{nodes: nodes, box: box, bound: p.bound, leaf: leaf}
}

// insertionSortBy sorts small slices in place (member lists are at most the
// fanout; avoids sort.Slice's interface allocations on the hot path).
func insertionSortBy(refs []childRef, less func(a, b childRef) bool) {
	for i := 1; i < len(refs); i++ {
		for j := i; j > 0 && less(refs[j], refs[j-1]); j-- {
			refs[j], refs[j-1] = refs[j-1], refs[j]
		}
	}
}
