package indexmerge

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"rankcube/internal/btree"
	"rankcube/internal/core"
	"rankcube/internal/hindex"
	"rankcube/internal/ranking"
	"rankcube/internal/rtree"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

func fixture(t *testing.T, n int, seed int64, fanout int) (*table.Table, []hindex.Index) {
	t.Helper()
	tb := table.Generate(table.GenSpec{T: n, S: 1, R: 2, Card: 4, Seed: seed})
	dom := ranking.UnitBox(2)
	a := btree.Build(tb, 0, dom, btree.Config{Fanout: fanout})
	b := btree.Build(tb, 1, dom, btree.Config{Fanout: fanout})
	return tb, []hindex.Index{a, b}
}

func brute(t *table.Table, f ranking.Func, k int) []core.Result {
	var all []core.Result
	buf := make([]float64, t.Schema().R())
	for i := 0; i < t.Len(); i++ {
		score := f.Eval(t.RankRow(table.TID(i), buf))
		if math.IsInf(score, 1) {
			continue
		}
		all = append(all, core.Result{TID: table.TID(i), Score: score})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Score != all[b].Score {
			return all[a].Score < all[b].Score
		}
		return all[a].TID < all[b].TID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func sameScores(t *testing.T, got, want []core.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			t.Fatalf("result %d: score %v, want %v", i, got[i].Score, want[i].Score)
		}
	}
}

// queryFuncs returns the three controlled functions of §5.4.2: fs (semi-
// monotone nearest neighbor), fg (general), fc (constrained).
func queryFuncs(rng *rand.Rand) []ranking.Func {
	fs := ranking.SqDist([]int{0, 1}, []float64{rng.Float64(), rng.Float64()})
	fg := ranking.General(ranking.Sqr(ranking.Sub(ranking.Var(0), ranking.Sqr(ranking.Var(1)))))
	lo := rng.Float64() * 0.5
	fc := ranking.Constrained(ranking.Sum(0, 1), 1, lo, lo+0.3)
	return []ranking.Func{fs, fg, fc}
}

func TestBaselineMergeMatchesBrute(t *testing.T) {
	tb, idx := fixture(t, 3000, 81, 8)
	rng := rand.New(rand.NewSource(82))
	for _, f := range queryFuncs(rng) {
		got, err := TopK(idx, f, 10, Options{Strategy: StrategyBL}, stats.New())
		if err != nil {
			t.Fatal(err)
		}
		sameScores(t, got, brute(tb, f, 10))
	}
}

func TestProgressiveMergeMatchesBrute(t *testing.T) {
	tb, idx := fixture(t, 5000, 83, 8)
	rng := rand.New(rand.NewSource(84))
	for trial := 0; trial < 3; trial++ {
		for _, f := range queryFuncs(rng) {
			k := 1 + rng.Intn(50)
			got, err := TopK(idx, f, k, Options{Strategy: StrategyPE}, stats.New())
			if err != nil {
				t.Fatal(err)
			}
			sameScores(t, got, brute(tb, f, k))
		}
	}
}

func TestMonotoneLinear(t *testing.T) {
	tb, idx := fixture(t, 4000, 85, 16)
	f := ranking.Linear([]int{0, 1}, []float64{1, 2})
	got, err := TopK(idx, f, 20, Options{}, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	sameScores(t, got, brute(tb, f, 20))
	// Negative weights exercise descending direction ordering.
	f2 := ranking.Linear([]int{0, 1}, []float64{1, -1})
	got2, err := TopK(idx, f2, 20, Options{}, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	sameScores(t, got2, brute(tb, f2, 20))
}

func TestNeighborhoodVsThresholdAgree(t *testing.T) {
	tb, idx := fixture(t, 4000, 86, 8)
	f := ranking.SqDist([]int{0, 1}, []float64{0.31, 0.77})
	a, err := TopK(idx, f, 25, Options{}, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	b, err := TopK(idx, f, 25, Options{DisableNeighborhood: true}, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	sameScores(t, a, b)
	sameScores(t, a, brute(tb, f, 25))
}

func TestRTreeMerge(t *testing.T) {
	tb := table.Generate(table.GenSpec{T: 4000, S: 1, R: 4, Card: 4, Seed: 87})
	dom := ranking.UnitBox(4)
	a := rtree.Bulk(tb, []int{0, 1}, dom, rtree.Config{Fanout: 16})
	b := rtree.Bulk(tb, []int{2, 3}, dom, rtree.Config{Fanout: 16})
	f := ranking.SqDist([]int{0, 1, 2, 3}, []float64{0.2, 0.4, 0.6, 0.8})
	got, err := TopK([]hindex.Index{a, b}, f, 15, Options{}, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	sameScores(t, got, brute(tb, f, 15))
}

func TestThreeWayMerge(t *testing.T) {
	tb := table.Generate(table.GenSpec{T: 3000, S: 1, R: 3, Card: 4, Seed: 88})
	dom := ranking.UnitBox(3)
	var idx []hindex.Index
	for d := 0; d < 3; d++ {
		idx = append(idx, btree.Build(tb, d, dom, btree.Config{Fanout: 8}))
	}
	f := ranking.SqDist([]int{0, 1, 2}, []float64{0.5, 0.1, 0.9})
	got, err := TopK(idx, f, 10, Options{}, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	sameScores(t, got, brute(tb, f, 10))
}

func TestJoinSignatureBuild(t *testing.T) {
	tb, idx := fixture(t, 2000, 89, 8)
	js, err := BuildJoinSignature(idx, tb.Len(), JoinSigConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if js.NumStates() == 0 {
		t.Fatal("no state-signatures built")
	}
	// Root state must exist and accept every tuple's own combo.
	rootPaths := [][]int{{}, {}}
	tester, ok := js.Load(rootPaths, stats.New())
	if !ok {
		t.Fatal("root state missing")
	}
	for i := 0; i < 50; i++ {
		tid := table.TID(i)
		s0 := idx[0].(*btree.Tree).LeafPath(tid)
		s1 := idx[1].(*btree.Tree).LeafPath(tid)
		if !tester.MayContain([]int{s0[0] - 1, s1[0] - 1}) {
			t.Fatalf("root signature rejects occupied combo of tuple %d", tid)
		}
	}
}

func TestJoinSignaturePruningCorrect(t *testing.T) {
	tb, idx := fixture(t, 5000, 90, 8)
	js, err := BuildJoinSignature(idx, tb.Len(), JoinSigConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 3; trial++ {
		for _, f := range queryFuncs(rng) {
			k := 1 + rng.Intn(40)
			got, err := TopK(idx, f, k, Options{Pruner: js}, stats.New())
			if err != nil {
				t.Fatal(err)
			}
			sameScores(t, got, brute(tb, f, k))
		}
	}
}

func TestJoinSignatureReducesStates(t *testing.T) {
	tb, idx := fixture(t, 20000, 92, 32)
	js, err := BuildJoinSignature(idx, tb.Len(), JoinSigConfig{})
	if err != nil {
		t.Fatal(err)
	}
	f := ranking.General(ranking.Sqr(ranking.Sub(ranking.Var(0), ranking.Sqr(ranking.Var(1)))))
	plain := stats.New()
	if _, err := TopK(idx, f, 50, Options{}, plain); err != nil {
		t.Fatal(err)
	}
	pruned := stats.New()
	if _, err := TopK(idx, f, 50, Options{Pruner: js}, pruned); err != nil {
		t.Fatal(err)
	}
	if pruned.Reads(stats.StructBTree) > plain.Reads(stats.StructBTree) {
		t.Fatalf("PE+SIG read more index blocks (%d) than PE (%d)",
			pruned.Reads(stats.StructBTree), plain.Reads(stats.StructBTree))
	}
}

func TestPairwisePrunerThreeWay(t *testing.T) {
	tb := table.Generate(table.GenSpec{T: 4000, S: 1, R: 3, Card: 4, Seed: 93})
	dom := ranking.UnitBox(3)
	var idx []hindex.Index
	for d := 0; d < 3; d++ {
		idx = append(idx, btree.Build(tb, d, dom, btree.Config{Fanout: 8}))
	}
	pairs := map[[2]int]*JoinSignature{}
	for _, pr := range [][2]int{{0, 1}, {0, 2}, {1, 2}} {
		js, err := BuildJoinSignature([]hindex.Index{idx[pr[0]], idx[pr[1]]}, tb.Len(), JoinSigConfig{})
		if err != nil {
			t.Fatal(err)
		}
		pairs[pr] = js
	}
	f := ranking.SqDist([]int{0, 1, 2}, []float64{0.8, 0.2, 0.5})
	got, err := TopK(idx, f, 20, Options{Pruner: &PairwisePruner{Pairs: pairs}}, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	sameScores(t, got, brute(tb, f, 20))
}

func TestPEGeneratesFewerStatesThanBL(t *testing.T) {
	// Table 5.1's qualitative claim: the improved merge generates far
	// fewer states and issues fewer disk accesses.
	tb, idx := fixture(t, 10000, 94, 32)
	f := ranking.General(ranking.Sqr(ranking.Sub(ranking.Var(0), ranking.Sqr(ranking.Var(1)))))
	bl := stats.New()
	a, err := TopK(idx, f, 100, Options{Strategy: StrategyBL}, bl)
	if err != nil {
		t.Fatal(err)
	}
	pe := stats.New()
	b, err := TopK(idx, f, 100, Options{Strategy: StrategyPE}, pe)
	if err != nil {
		t.Fatal(err)
	}
	sameScores(t, a, b)
	sameScores(t, a, brute(tb, f, 100))
	if pe.StatesGenerated >= bl.StatesGenerated {
		t.Fatalf("PE generated %d states, BL %d", pe.StatesGenerated, bl.StatesGenerated)
	}
}

func TestUncoveredDimensionRejected(t *testing.T) {
	_, idx := fixture(t, 100, 95, 8)
	f := ranking.Sum(0, 1, 2) // dim 2 not indexed
	if _, err := TopK(idx, f, 5, Options{}, stats.New()); err == nil {
		t.Fatal("uncovered ranking dimension accepted")
	}
}

func TestPartialAttributesInRanking(t *testing.T) {
	// Fig. 5.18's scenario: the function references a subset of the indexed
	// dimensions.
	tb := table.Generate(table.GenSpec{T: 3000, S: 1, R: 4, Card: 4, Seed: 96})
	dom := ranking.UnitBox(4)
	a := rtree.Bulk(tb, []int{0, 1}, dom, rtree.Config{Fanout: 16})
	b := rtree.Bulk(tb, []int{2, 3}, dom, rtree.Config{Fanout: 16})
	f := ranking.SqDist([]int{0, 2}, []float64{0.3, 0.6}) // one dim per index
	got, err := TopK([]hindex.Index{a, b}, f, 10, Options{}, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	sameScores(t, got, brute(tb, f, 10))
}

func TestNeighborhoodExpansionEngages(t *testing.T) {
	// For a monotone linear function over value-ordered B-trees, the
	// neighborhood expansion should generate no more states than the
	// general threshold expansion (§5.2.2's purpose).
	tb, idx := fixture(t, 20000, 97, 32)
	f := ranking.Linear([]int{0, 1}, []float64{1, 2})
	nb := stats.New()
	a, err := TopK(idx, f, 50, Options{}, nb)
	if err != nil {
		t.Fatal(err)
	}
	th := stats.New()
	b, err := TopK(idx, f, 50, Options{DisableNeighborhood: true}, th)
	if err != nil {
		t.Fatal(err)
	}
	sameScores(t, a, b)
	sameScores(t, a, brute(tb, f, 50))
	if nb.StatesGenerated > th.StatesGenerated {
		t.Fatalf("neighborhood generated %d states, threshold %d",
			nb.StatesGenerated, th.StatesGenerated)
	}
}

func TestMergeEmptyIndexReturnsNil(t *testing.T) {
	tb := table.MustNew(table.Schema{SelNames: []string{"a"}, SelCard: []int{2}, RankNames: []string{"x", "y"}})
	dom := ranking.UnitBox(2)
	idx := []hindex.Index{
		btree.Build(tb, 0, dom, btree.Config{}),
		btree.Build(tb, 1, dom, btree.Config{}),
	}
	got, err := TopK(idx, ranking.Sum(0, 1), 5, Options{}, stats.New())
	if err != nil || got != nil {
		t.Fatalf("empty merge: %v %v", got, err)
	}
}

func TestMergeKLargerThanData(t *testing.T) {
	tb, idx := fixture(t, 200, 98, 8)
	got, err := TopK(idx, ranking.Sum(0, 1), 500, Options{}, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != tb.Len() {
		t.Fatalf("k>n returned %d of %d tuples", len(got), tb.Len())
	}
}
