package indexmerge

import (
	"fmt"
	"math"

	"rankcube/internal/core"
	"rankcube/internal/errs"
	"rankcube/internal/heap"
	"rankcube/internal/hindex"
	"rankcube/internal/ranking"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// Strategy selects the merge algorithm.
type Strategy int

// Merge strategies of the thesis' chapter-5 evaluation.
const (
	// StrategyPE is the double-heap progressive expansion (Alg. 5) —
	// the default.
	StrategyPE Strategy = iota
	// StrategyBL is the baseline full-expansion merge (Alg. 4).
	StrategyBL
)

// Options configures a merge run.
type Options struct {
	Strategy Strategy
	// Pruner prunes empty states by join-signature (PE+SIG); nil disables.
	Pruner Pruner
	// DisableNeighborhood forces threshold expansion even for (semi-)
	// monotone functions (ablation).
	DisableNeighborhood bool
}

// Merger executes one top-k query over m merged indices.
type Merger struct {
	indices []hindex.Index
	acc     []*hindex.Accessor
	f       ranking.Func
	k       int
	opts    Options
	pruner  Pruner
	ctr     *stats.Counters

	gheap *heap.Heap[*state]
	topk  *heap.Bounded[core.Result]
	// partial holds partially merged tuples (the sort-merge hashtable h of
	// §5.1.2).
	partial map[table.TID]*partialTuple
}

type partialTuple struct {
	point []float64
	got   int // bitmask of contributing indices
}

// TopK merges the indices and returns the k lowest-scoring tuples. The
// ranking function may reference any dimension covered by some index;
// dimensions covered by no index hold the domain midpoint, so f should only
// reference indexed dimensions (thesis data model, §5.1.1).
func TopK(indices []hindex.Index, f ranking.Func, k int, opts Options, ctr *stats.Counters) ([]core.Result, error) {
	if len(indices) == 0 {
		return nil, fmt.Errorf("indexmerge: no indices: %w", errs.ErrInvalidArgument)
	}
	covered := make(map[int]bool)
	for _, idx := range indices {
		for _, d := range idx.Dims() {
			covered[d] = true
		}
	}
	for _, a := range f.Attrs() {
		if !covered[a] {
			return nil, fmt.Errorf("indexmerge: ranking dimension %d not covered by any index: %w", a, errs.ErrInvalidArgument)
		}
	}
	m := &Merger{
		indices: indices,
		acc:     make([]*hindex.Accessor, len(indices)),
		f:       f,
		k:       k,
		opts:    opts,
		ctr:     ctr,
		pruner:  opts.Pruner,
		gheap:   heap.New[*state](lessState),
		topk:    heap.NewBounded[core.Result](k, core.WorseResult),
		partial: make(map[table.TID]*partialTuple),
	}
	for i, idx := range indices {
		if idx.Root() == hindex.InvalidNode {
			return nil, nil
		}
		m.acc[i] = hindex.NewAccessor(idx, ctr)
	}
	defer ctr.StartSpan("merge")()
	m.run()
	return m.topk.Sorted(), nil
}

func lessState(a, b *state) bool {
	if a.bound != b.bound {
		return a.bound < b.bound
	}
	// Leaf states first so exact scores settle the stop condition sooner.
	return a.leaf && !b.leaf
}

// heapSize reports combined global + local heap occupancy (the peak heap
// metric of figs. 5.12/5.16).
func (m *Merger) heapSize() int {
	n := m.gheap.Len()
	for _, it := range m.gheap.Items() {
		if it.exp != nil {
			n += it.exp.lheap.Len()
		}
	}
	return n
}

// rootState builds the joint root (I1.root, …, Im.root).
func (m *Merger) rootState() *state {
	nodes := make([]hindex.NodeID, len(m.indices))
	box := m.indices[0].NodeBox(m.indices[0].Root())
	leaf := true
	for i, idx := range m.indices {
		nodes[i] = idx.Root()
		if i > 0 {
			box = composeBox(box, idx.NodeBox(idx.Root()))
		}
		if !idx.IsLeaf(idx.Root()) {
			leaf = false
		}
	}
	return &state{nodes: nodes, box: box, bound: m.f.LowerBound(box), leaf: leaf}
}

// run is the query-processing loop: Alg. 4 for StrategyBL (each popped state
// fully expands), Alg. 5 for StrategyPE (each popped state yields its next
// best child and re-enters the heap).
func (m *Merger) run() {
	m.gheap.Push(m.rootState())
	m.ctr.StatesGenerated++
	for m.gheap.Len() > 0 {
		m.ctr.ObserveHeap(m.heapSize())
		s := m.gheap.Pop()
		m.ctr.StatesExamined++
		if m.topk.Full() && m.topk.Worst().Score <= s.bound {
			return
		}
		if s.leaf {
			m.processLeafState(s)
			continue
		}
		if m.opts.Strategy == StrategyBL {
			m.expandFully(s)
			continue
		}
		if s.exp == nil {
			m.initExpansion(s)
		}
		if child := m.getNext(s); child != nil {
			m.gheap.Push(child)
		}
		if next := s.exp.peekBound(); !math.IsInf(next, 1) {
			s.bound = next
			m.gheap.Push(s)
		}
	}
}

// expandFully is Alg. 4's full Cartesian expansion.
func (m *Merger) expandFully(s *state) {
	if s.exp == nil {
		m.initExpansion(s)
	}
	if s.exp.dead {
		return
	}
	combo := make([]int, len(s.exp.members))
	var rec func(i int)
	rec = func(i int) {
		if i == len(combo) {
			bound := s.exp.comboBound(m, combo)
			if math.IsInf(bound, 1) {
				return
			}
			if s.exp.combos != nil {
				slots := make([]int, len(combo))
				for j, pos := range combo {
					slots[j] = s.exp.members[j][pos].slot
				}
				if !s.exp.combos.MayContain(slots) {
					m.ctr.Pruned++
					return
				}
			}
			m.gheap.Push(m.buildChild(s, pending{combo: combo, bound: bound}))
			m.ctr.StatesGenerated++
			return
		}
		for p := range s.exp.members[i] {
			combo[i] = p
			rec(i + 1)
		}
	}
	rec(0)
	m.ctr.ObserveHeap(m.heapSize())
}

// processLeafState retrieves the member leaves of a leaf state and merges
// their tuples through the partial-tuple hashtable. Members already
// retrieved are skipped — redundant states (§5.1.3) thereby cost nothing.
func (m *Merger) processLeafState(s *state) {
	for i, idx := range m.indices {
		if m.acc[i].Retrieved(s.nodes[i]) {
			continue
		}
		dims := idx.Dims()
		for _, le := range m.acc[i].LeafEntries(s.nodes[i]) {
			pt, ok := m.partial[le.TID]
			if !ok {
				pt = &partialTuple{point: m.indices[0].Domain().Center()}
				m.partial[le.TID] = pt
			}
			for _, d := range dims {
				pt.point[d] = le.Point[d]
			}
			pt.got |= 1 << uint(i)
			if pt.got == 1<<uint(len(m.indices))-1 {
				m.topk.Offer(core.Result{TID: le.TID, Score: m.f.Eval(pt.point)})
				delete(m.partial, le.TID)
			}
		}
	}
}
