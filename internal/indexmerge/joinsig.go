package indexmerge

import (
	"fmt"
	"strings"

	"rankcube/internal/bitvec"
	"rankcube/internal/bloom"
	"rankcube/internal/errs"
	"rankcube/internal/hindex"
	"rankcube/internal/pager"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// ComboTester answers whether a child-slot combination of the state being
// expanded may contain tuples. Combos use 0-based slots; leaf-self members
// pass slot 0.
type ComboTester interface {
	MayContain(slots []int) bool
}

// Pruner supplies empty-state pruning for a merge run (§5.3.3). Load is
// called once per expanded state with the member node paths; it returns the
// state's combo tester and whether the state is known to the signature at
// all (false ⇒ the state is empty: a bloom false positive being corrected).
type Pruner interface {
	Load(paths [][]int, ctr *stats.Counters) (ComboTester, bool)
}

// allowAll passes every combo (used when a member set has no signature).
type allowAll struct{}

func (allowAll) MayContain([]int) bool { return true }

// stateSig is one state-signature: a bit array over child combos when the
// combo space fits a page, a bloom filter otherwise (§5.3.1).
type stateSig struct {
	widths []int
	bitmap *bitvec.Bits
	filter *bloom.Filter
	page   pager.PageID
	n      int // occupied combos
}

func (ss *stateSig) comboKey(slots []int) (uint64, bool) {
	key := uint64(0)
	for i, s := range slots {
		if s < 0 || s >= ss.widths[i] {
			return 0, false
		}
		key = key*uint64(ss.widths[i]) + uint64(s)
	}
	return key, true
}

func (ss *stateSig) mayContain(slots []int) bool {
	key, ok := ss.comboKey(slots)
	if !ok {
		return false
	}
	if ss.bitmap != nil {
		return ss.bitmap.Get(int(key))
	}
	return ss.filter.MayContain(key)
}

// JoinSignature is the materialized join-signature of an ordered set of
// indices: state-signatures for every non-leaf, non-empty joint state,
// keyed by the member node paths (§5.3.1-5.3.2).
type JoinSignature struct {
	indices []hindex.Index
	states  map[string]*stateSig
	store   *pager.Store
	// maxK bounds the bloom hash count (the thesis' k̄).
	maxK int
}

// JoinSigConfig controls join-signature construction.
type JoinSigConfig struct {
	// PageSize bounds each state-signature (bits ≤ 8×PageSize); defaults to
	// pager.PageSize.
	PageSize int
	// MaxHash is the maximum bloom hash count k̄; defaults to 8.
	MaxHash int
}

// BuildJoinSignature computes the join-signature of the given indices over
// all tuples [0, numTuples). Every index must implement
// hindex.TupleLocator. Construction is tuple-oriented recursive bucketing,
// the analogue of sorting-based cubing (§5.3.2).
func BuildJoinSignature(indices []hindex.Index, numTuples int, cfg JoinSigConfig) (*JoinSignature, error) {
	pageSize := cfg.PageSize
	if pageSize <= 0 {
		pageSize = pager.PageSize
	}
	maxK := cfg.MaxHash
	if maxK <= 0 {
		maxK = 8
	}
	js := &JoinSignature{
		indices: indices,
		states:  make(map[string]*stateSig),
		store:   pager.NewStore(stats.StructJoinSig, pageSize),
		maxK:    maxK,
	}
	locators := make([]hindex.TupleLocator, len(indices))
	for i, idx := range indices {
		loc, ok := idx.(hindex.TupleLocator)
		if !ok {
			return nil, fmt.Errorf("indexmerge: index %d cannot locate tuples: %w", i, errs.ErrInvalidArgument)
		}
		locators[i] = loc
	}

	// Per-tuple leaf-node paths on every index.
	paths := make([][][]int, len(indices))
	for i := range indices {
		paths[i] = make([][]int, numTuples)
		for t := 0; t < numTuples; t++ {
			paths[i][t] = locators[i].LeafPath(table.TID(t))
		}
	}

	tids := make([]int, numTuples)
	for t := range tids {
		tids[t] = t
	}
	nodes := make([]hindex.NodeID, len(indices))
	for i, idx := range indices {
		nodes[i] = idx.Root()
	}
	js.build(nodes, paths, tids, make([]int, len(indices)), pageSize*8)
	return js, nil
}

// build registers the state-signature for the state identified by nodes
// (member depths in depth[i]) and recurses into occupied child combos.
func (js *JoinSignature) build(nodes []hindex.NodeID, paths [][][]int, tids []int, depth []int, pageBits int) {
	if len(tids) == 0 {
		return
	}
	// A state whose members are all leaves is a leaf state: no signature.
	allLeaf := true
	widths := make([]int, len(js.indices))
	for i, idx := range js.indices {
		if idx.IsLeaf(nodes[i]) {
			widths[i] = 1
		} else {
			widths[i] = idx.NumChildren(nodes[i])
			allLeaf = false
		}
	}
	if allLeaf {
		return
	}

	// Bucket tuples by child combo.
	combos := make(map[uint64][]int)
	for _, t := range tids {
		key := uint64(0)
		ok := true
		for i := range js.indices {
			slot := 0
			if widths[i] > 1 {
				p := paths[i][t]
				if depth[i] >= len(p) {
					ok = false
					break
				}
				slot = p[depth[i]] - 1
			}
			key = key*uint64(widths[i]) + uint64(slot)
		}
		if ok {
			combos[key] = append(combos[key], t)
		}
	}

	// Materialize the state-signature.
	card := 1
	overflow := false
	for _, w := range widths {
		card *= w
		if card > pageBits {
			overflow = true
			break
		}
	}
	ss := &stateSig{widths: widths, n: len(combos)}
	if !overflow {
		ss.bitmap = bitvec.NewBits(card)
		for key := range combos {
			ss.bitmap.Set(int(key), true)
		}
		ss.page = js.store.AppendLogical((card + 7) / 8)
	} else {
		ss.filter = bloom.NewOptimal(len(combos), pageBits, js.maxK)
		for key := range combos {
			ss.filter.Add(key)
		}
		ss.page = js.store.AppendLogical((ss.filter.Bits() + 7) / 8)
	}
	js.states[js.stateKey(nodes)] = ss

	// Recurse into each occupied combo.
	for key, bucket := range combos {
		childNodes := make([]hindex.NodeID, len(nodes))
		childDepth := make([]int, len(depth))
		rem := key
		// Decode the mixed-radix key back into slots (reverse order).
		slots := make([]int, len(widths))
		for i := len(widths) - 1; i >= 0; i-- {
			slots[i] = int(rem % uint64(widths[i]))
			rem /= uint64(widths[i])
		}
		for i, idx := range js.indices {
			if widths[i] == 1 && idx.IsLeaf(nodes[i]) {
				childNodes[i] = nodes[i]
				childDepth[i] = depth[i]
			} else {
				childNodes[i] = idx.ChildAt(nodes[i], slots[i])
				childDepth[i] = depth[i] + 1
			}
		}
		js.build(childNodes, paths, bucket, childDepth, pageBits)
	}
}

// stateKey derives the lookup key of a state from its member node paths.
func (js *JoinSignature) stateKey(nodes []hindex.NodeID) string {
	var b strings.Builder
	for i, idx := range js.indices {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(hindex.PathKey(idx.Path(nodes[i])))
	}
	return b.String()
}

func pathsKey(paths [][]int) string {
	var b strings.Builder
	for i, p := range paths {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(hindex.PathKey(p))
	}
	return b.String()
}

// Load implements Pruner for the full m-way signature.
func (js *JoinSignature) Load(paths [][]int, ctr *stats.Counters) (ComboTester, bool) {
	ss, ok := js.states[pathsKey(paths)]
	if !ok {
		return nil, false
	}
	js.store.Touch(ss.page, ctr)
	return ss, true
}

func (ss *stateSig) MayContain(slots []int) bool { return ss.mayContain(slots) }

// SizeBytes reports the total signature footprint.
func (js *JoinSignature) SizeBytes() int64 { return js.store.Bytes() }

// NumStates reports the number of materialized state-signatures.
func (js *JoinSignature) NumStates() int { return len(js.states) }

// PairwisePruner prunes an m-way merge with 2-way join-signatures
// (§5.3.3): a child combo is empty if any pair's signature rejects it.
type PairwisePruner struct {
	// Pairs maps member-index pairs (i, j) of the merge to their 2-way
	// signature, which must have been built over (indices[i], indices[j])
	// in that order.
	Pairs map[[2]int]*JoinSignature
}

// pairTester tests each pair's signature.
type pairTester struct {
	members []pairMember
}

type pairMember struct {
	i, j int
	ss   *stateSig
}

// Load implements Pruner.
func (pp *PairwisePruner) Load(paths [][]int, ctr *stats.Counters) (ComboTester, bool) {
	var t pairTester
	for pair, js := range pp.Pairs {
		ss, ok := js.states[pathsKey([][]int{paths[pair[0]], paths[pair[1]]})]
		if !ok {
			// The pair state is absent: with exact bitmaps the 2-way state
			// is genuinely empty, so the m-way state is too.
			return nil, false
		}
		js.store.Touch(ss.page, ctr)
		t.members = append(t.members, pairMember{i: pair[0], j: pair[1], ss: ss})
	}
	if len(t.members) == 0 {
		return allowAll{}, true
	}
	return t, true
}

// MayContain implements ComboTester.
func (t pairTester) MayContain(slots []int) bool {
	for _, m := range t.members {
		if !m.ss.mayContain([]int{slots[m.i], slots[m.j]}) {
			return false
		}
	}
	return true
}
