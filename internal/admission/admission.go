// Package admission implements per-cube serving gates: bounded concurrent
// query admission with a deadline-aware wait queue and graceful drain.
//
// The ranking-cube's promise is bounded-cost answers over shared
// materialized structures. Under heavy concurrent traffic that promise dies
// without load shedding: every admitted query costs block reads and heap
// space, and a pile-up of waiters serves nobody. A Gate caps the number of
// in-flight queries, queues a bounded number of waiters, and rejects the
// rest immediately with a typed errs.ErrOverloaded — the same taxonomy the
// rest of the robustness layer speaks, recovered at the public API boundary
// like every other abort.
//
// The queue is deadline-aware: a waiter whose context deadline would expire
// before the gate could plausibly run it (estimated from an exponentially
// weighted moving average of recent service times and its position in the
// queue) is rejected immediately rather than parked to time out — its
// caller learns now, while retrying elsewhere is still useful.
//
// Drain shuts a gate down gracefully: new arrivals are refused with
// ErrOverloaded, waiters are flushed, and Drain blocks until the last
// admitted query releases its slot (or the drain context expires).
//
// Every outcome is recorded in the process metrics registry
// (internal/obs): admitted, queued, rejected (per reason), drained, plus
// in-flight and waiting gauges, keyed by the gate's name.
package admission

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rankcube/internal/errs"
	"rankcube/internal/obs"
)

// Config bounds a gate.
type Config struct {
	// MaxInFlight is the number of queries allowed to execute
	// concurrently. Zero or negative disables gating entirely (NewGate
	// returns nil, and a nil *Gate admits everything).
	MaxInFlight int
	// MaxWaiting bounds the wait queue; arrivals beyond it are rejected
	// immediately with ErrOverloaded. Zero means no queue: when every slot
	// is busy, arrivals are rejected at once.
	MaxWaiting int
}

// Gate is one cube's serving gate. A nil *Gate admits everything, so
// callers thread an optional gate without branching.
type Gate struct {
	name string
	cfg  Config
	reg  *obs.Registry

	// slots is a token semaphore with MaxInFlight capacity.
	slots chan struct{}

	mu       sync.Mutex
	waiting  int
	draining bool
	// drained is closed when draining begins, waking every parked waiter.
	drained chan struct{}

	// ewmaServiceUS is an exponentially weighted moving average of
	// observed service times in microseconds, the basis of the queue's
	// deadline estimate. Atomic: releases update it concurrently.
	ewmaServiceUS atomic.Int64

	inflight atomic.Int64
}

// ewmaWeight is the EWMA update weight in 1/16ths: new = old + (obs-old)/16.
const ewmaWeight = 16

// NewGate returns a gate named name (the metrics key) enforcing cfg, or nil
// when cfg.MaxInFlight disables gating. reg may be nil for the process
// default registry.
func NewGate(name string, cfg Config, reg *obs.Registry) *Gate {
	if cfg.MaxInFlight <= 0 {
		return nil
	}
	if cfg.MaxWaiting < 0 {
		cfg.MaxWaiting = 0
	}
	if reg == nil {
		reg = obs.Default()
	}
	return &Gate{
		name:    name,
		cfg:     cfg,
		reg:     reg,
		slots:   make(chan struct{}, cfg.MaxInFlight),
		drained: make(chan struct{}),
	}
}

// counter returns the gate's metric counter for the given event suffix.
func (g *Gate) counter(event string) *obs.Counter {
	return g.reg.Counter("admission." + g.name + "." + event)
}

// InFlight reports the number of currently admitted queries.
func (g *Gate) InFlight() int {
	if g == nil {
		return 0
	}
	return int(g.inflight.Load())
}

// Waiting reports the number of parked waiters.
func (g *Gate) Waiting() int {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waiting
}

// EstimatedService reports the gate's moving average of service time (zero
// until the first release).
func (g *Gate) EstimatedService() time.Duration {
	if g == nil {
		return 0
	}
	return time.Duration(g.ewmaServiceUS.Load()) * time.Microsecond
}

// Acquire admits the calling query or rejects it with a typed error:
// errs.ErrOverloaded when capacity and queue are exhausted, the gate is
// draining, or the caller's deadline would expire before a slot could
// plausibly free; errs.ErrCanceled when ctx ends while waiting. On success
// the returned release function must be called exactly once when the query
// finishes — it frees the slot and feeds the service-time estimate.
func (g *Gate) Acquire(ctx context.Context) (release func(), err error) {
	if g == nil {
		return func() {}, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}

	// Fast path: a slot is free right now.
	select {
	case g.slots <- struct{}{}:
		return g.admit(), nil
	default:
	}

	// Slow path: decide whether to park.
	g.mu.Lock()
	if g.draining {
		g.mu.Unlock()
		return nil, g.reject("rejected_draining", "gate %q is draining", g.name)
	}
	if g.waiting >= g.cfg.MaxWaiting {
		g.mu.Unlock()
		return nil, g.reject("rejected_queue_full",
			"gate %q saturated: %d in flight, %d waiting", g.name, g.cfg.MaxInFlight, g.cfg.MaxWaiting)
	}
	if deadline, ok := ctx.Deadline(); ok {
		// Position in line: everyone already waiting plus this query, over
		// MaxInFlight servers, each busy for about one EWMA service time.
		est := g.EstimatedService()
		rounds := (g.waiting + g.cfg.MaxInFlight) / g.cfg.MaxInFlight // ≥ 1
		if est > 0 && time.Until(deadline) < time.Duration(rounds)*est {
			g.mu.Unlock()
			return nil, g.reject("rejected_deadline",
				"gate %q: deadline %s away, estimated wait %s", g.name,
				time.Until(deadline).Round(time.Microsecond), (time.Duration(rounds) * est).Round(time.Microsecond))
		}
	}
	g.waiting++
	g.reg.Gauge("admission." + g.name + ".waiting").Set(int64(g.waiting))
	drained := g.drained
	g.mu.Unlock()
	g.counter("queued").Add(1)

	defer func() {
		g.mu.Lock()
		g.waiting--
		g.reg.Gauge("admission." + g.name + ".waiting").Set(int64(g.waiting))
		g.mu.Unlock()
	}()

	select {
	case g.slots <- struct{}{}:
		return g.admit(), nil
	case <-drained:
		return nil, g.reject("rejected_draining", "gate %q is draining", g.name)
	case <-ctx.Done():
		g.counter("canceled_waiting").Add(1)
		return nil, fmt.Errorf("admission: gate %q wait: %v: %w", g.name, ctx.Err(), errs.ErrCanceled)
	}
}

// admit finalizes a successful acquisition and builds its release closure.
func (g *Gate) admit() func() {
	n := g.inflight.Add(1)
	g.reg.Gauge("admission." + g.name + ".inflight").Set(n)
	g.counter("admitted").Add(1)
	start := time.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			us := time.Since(start).Microseconds()
			for {
				old := g.ewmaServiceUS.Load()
				upd := old + (us-old)/ewmaWeight
				if old == 0 {
					upd = us
				}
				if g.ewmaServiceUS.CompareAndSwap(old, upd) {
					break
				}
			}
			g.reg.Gauge("admission." + g.name + ".inflight").Set(g.inflight.Add(-1))
			<-g.slots
		})
	}
}

// reject counts a load-shedding rejection and builds its typed error.
func (g *Gate) reject(event, format string, args ...any) error {
	g.counter(event).Add(1)
	g.counter("rejected").Add(1)
	return fmt.Errorf("admission: "+fmt.Sprintf(format, args...)+": %w", errs.ErrOverloaded)
}

// Drain shuts the gate down gracefully: new arrivals and parked waiters are
// rejected with ErrOverloaded, and Drain blocks until every admitted query
// has released its slot or ctx expires (returning ctx's error wrapped in
// ErrCanceled). Drain is idempotent; after it returns nil the gate is
// permanently closed.
func (g *Gate) Drain(ctx context.Context) error {
	if g == nil {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	g.mu.Lock()
	if !g.draining {
		g.draining = true
		close(g.drained)
		g.counter("drains").Add(1)
	}
	g.mu.Unlock()

	// Take every slot: once all MaxInFlight tokens are held here, no query
	// is in flight.
	for i := 0; i < g.cfg.MaxInFlight; i++ {
		select {
		case g.slots <- struct{}{}:
		case <-ctx.Done():
			return fmt.Errorf("admission: drain of gate %q: %v: %w", g.name, ctx.Err(), errs.ErrCanceled)
		}
	}
	return nil
}

// Draining reports whether Drain has begun.
func (g *Gate) Draining() bool {
	if g == nil {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}
