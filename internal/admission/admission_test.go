package admission

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"rankcube/internal/errs"
	"rankcube/internal/obs"
)

func TestNilGateAdmitsEverything(t *testing.T) {
	var g *Gate
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("nil gate Acquire: %v", err)
	}
	release()
	if g.InFlight() != 0 || g.Waiting() != 0 || g.Draining() {
		t.Fatalf("nil gate reported state: inflight=%d waiting=%d draining=%v",
			g.InFlight(), g.Waiting(), g.Draining())
	}
	if err := g.Drain(context.Background()); err != nil {
		t.Fatalf("nil gate Drain: %v", err)
	}
}

func TestDisabledConfigReturnsNil(t *testing.T) {
	if g := NewGate("x", Config{MaxInFlight: 0}, nil); g != nil {
		t.Fatalf("MaxInFlight=0 should disable gating, got %v", g)
	}
}

func TestAdmitsUpToCapacityThenRejects(t *testing.T) {
	reg := obs.NewRegistry()
	g := NewGate("t", Config{MaxInFlight: 2, MaxWaiting: 0}, reg)

	r1, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	r2, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("second Acquire: %v", err)
	}
	if got := g.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}

	// Queue size 0: the third arrival is shed immediately.
	if _, err := g.Acquire(context.Background()); !errors.Is(err, errs.ErrOverloaded) {
		t.Fatalf("third Acquire err = %v, want ErrOverloaded", err)
	}
	if n := reg.Counter("admission.t.rejected_queue_full").Value(); n != 1 {
		t.Fatalf("rejected_queue_full = %d, want 1", n)
	}

	r1()
	r1() // release is idempotent
	r2()
	if got := g.InFlight(); got != 0 {
		t.Fatalf("InFlight after release = %d, want 0", got)
	}
	if n := reg.Counter("admission.t.admitted").Value(); n != 2 {
		t.Fatalf("admitted = %d, want 2", n)
	}
}

func TestWaiterAdmittedWhenSlotFrees(t *testing.T) {
	g := NewGate("t", Config{MaxInFlight: 1, MaxWaiting: 4}, obs.NewRegistry())
	r1, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}

	got := make(chan error, 1)
	go func() {
		release, err := g.Acquire(context.Background())
		if err == nil {
			release()
		}
		got <- err
	}()

	// Wait until the second query is parked, then free the slot.
	for g.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	r1()
	if err := <-got; err != nil {
		t.Fatalf("parked Acquire: %v", err)
	}
	if g.Waiting() != 0 {
		t.Fatalf("Waiting = %d after completion, want 0", g.Waiting())
	}
}

func TestWaiterCanceledWhileParked(t *testing.T) {
	g := NewGate("t", Config{MaxInFlight: 1, MaxWaiting: 4}, obs.NewRegistry())
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctx)
		got <- err
	}()
	for g.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-got; !errors.Is(err, errs.ErrCanceled) {
		t.Fatalf("canceled waiter err = %v, want ErrCanceled", err)
	}
}

func TestDeadlineAwareRejection(t *testing.T) {
	reg := obs.NewRegistry()
	g := NewGate("t", Config{MaxInFlight: 1, MaxWaiting: 8}, reg)

	// Seed the EWMA with a long service time: one admit/release pair.
	g.ewmaServiceUS.Store((50 * time.Millisecond).Microseconds())

	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer release()

	// Deadline far shorter than the estimated 50ms wait: reject now.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := g.Acquire(ctx); !errors.Is(err, errs.ErrOverloaded) {
		t.Fatalf("doomed waiter err = %v, want ErrOverloaded", err)
	}
	if n := reg.Counter("admission.t.rejected_deadline").Value(); n != 1 {
		t.Fatalf("rejected_deadline = %d, want 1", n)
	}

	// A deadline comfortably beyond the estimate parks instead.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	got := make(chan error, 1)
	go func() {
		r, err := g.Acquire(ctx2)
		if err == nil {
			r()
		}
		got <- err
	}()
	for g.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	release()
	if err := <-got; err != nil {
		t.Fatalf("viable waiter err = %v, want nil", err)
	}
}

func TestDrainRejectsAndWaitsForInflight(t *testing.T) {
	reg := obs.NewRegistry()
	g := NewGate("t", Config{MaxInFlight: 2, MaxWaiting: 4}, reg)

	r1, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}

	// A parked waiter must be flushed with ErrOverloaded when drain begins.
	r2, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	parked := make(chan error, 1)
	go func() {
		_, err := g.Acquire(context.Background())
		parked <- err
	}()
	for g.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}

	drainDone := make(chan error, 1)
	go func() { drainDone <- g.Drain(context.Background()) }()

	if err := <-parked; !errors.Is(err, errs.ErrOverloaded) {
		t.Fatalf("flushed waiter err = %v, want ErrOverloaded", err)
	}

	// Drain must not complete while queries are in flight.
	select {
	case err := <-drainDone:
		t.Fatalf("Drain returned %v with %d in flight", err, g.InFlight())
	case <-time.After(20 * time.Millisecond):
	}

	r1()
	r2()
	if err := <-drainDone; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !g.Draining() {
		t.Fatal("Draining() = false after Drain")
	}

	// New arrivals are refused after drain.
	if _, err := g.Acquire(context.Background()); !errors.Is(err, errs.ErrOverloaded) {
		t.Fatalf("post-drain Acquire err = %v, want ErrOverloaded", err)
	}
	if n := reg.Counter("admission.t.drains").Value(); n != 1 {
		t.Fatalf("drains = %d, want 1", n)
	}
}

func TestDrainDeadline(t *testing.T) {
	g := NewGate("t", Config{MaxInFlight: 1, MaxWaiting: 0}, obs.NewRegistry())
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer release()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := g.Drain(ctx); !errors.Is(err, errs.ErrCanceled) {
		t.Fatalf("Drain with stuck query err = %v, want ErrCanceled", err)
	}
}

func TestEWMAUpdatesOnRelease(t *testing.T) {
	g := NewGate("t", Config{MaxInFlight: 1, MaxWaiting: 0}, obs.NewRegistry())
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	time.Sleep(2 * time.Millisecond)
	release()
	if g.EstimatedService() <= 0 {
		t.Fatalf("EstimatedService = %v after a timed release, want > 0", g.EstimatedService())
	}
}

func TestConcurrentStorm(t *testing.T) {
	g := NewGate("t", Config{MaxInFlight: 4, MaxWaiting: 8}, obs.NewRegistry())
	var wg sync.WaitGroup
	var mu sync.Mutex
	var admitted, overloaded, other int
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := g.Acquire(context.Background())
			mu.Lock()
			switch {
			case err == nil:
				admitted++
			case errors.Is(err, errs.ErrOverloaded):
				overloaded++
			default:
				other++
			}
			mu.Unlock()
			if err == nil {
				time.Sleep(time.Millisecond)
				release()
			}
		}()
	}
	wg.Wait()
	if other != 0 {
		t.Fatalf("untyped outcomes: %d (admitted=%d overloaded=%d)", other, admitted, overloaded)
	}
	if admitted == 0 || overloaded == 0 {
		t.Fatalf("storm should both admit and shed: admitted=%d overloaded=%d", admitted, overloaded)
	}
	if g.InFlight() != 0 {
		t.Fatalf("InFlight = %d after storm, want 0", g.InFlight())
	}
}
