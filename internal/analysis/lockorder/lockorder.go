// Package lockorder enforces the concurrent-serving lock discipline around
// internal/guard — the deadlock-freedom and liveness argument of PR 9,
// checked instead of asserted.
//
// Three rules, each matching one way the argument breaks:
//
//  1. A direct (*guard.RW).Lock or RLock must be released by an
//     immediately following defer of the matching Unlock/RUnlock on the
//     same control expression. Guard critical sections run engine code
//     that faults via typed aborts (panics), so a non-deferred release is
//     one storage fault away from wedging the cube: the lock is never
//     released, maintenance blocks forever, and Drain starves.
//  2. One function may lock at most one control directly. Multi-structure
//     operations (the rank join) must go through guard.AcquireShared /
//     guard.LockExclusive, which sort by the global ordering ID — two
//     direct acquisitions in one frame are exactly the cycle the global
//     order exists to prevent.
//  3. The release closure returned by guard.AcquireShared /
//     guard.LockExclusive must be consumed: deferred, invoked, stored, or
//     passed along. A dropped release keeps the serving slots and shared
//     locks held for the life of the process.
//
// Justified exceptions carry a `//lint:lockorder <reason>` marker.
package lockorder

import (
	"go/ast"
	"go/types"

	"rankcube/internal/analysis/framework"
)

const guardPath = "rankcube/internal/guard"

// Marker is the justification marker accepted on exempted acquisitions.
const Marker = "lockorder"

// Analyzer enforces guard acquisition/release discipline.
var Analyzer = &framework.Analyzer{
	Name: "lockorder",
	Doc: "guard.RW acquisitions must defer their release immediately (panic-safe), " +
		"multi-control locking must go through guard.AcquireShared/LockExclusive " +
		"(global ID order), and returned release closures must be consumed",
	Run: run,
}

func run(pass *framework.Pass) error {
	if pass.Pkg.Path() == guardPath {
		return nil
	}
	for _, file := range pass.Files {
		for _, body := range functionBodies(file) {
			checkBody(pass, body)
		}
	}
	return nil
}

// functionBodies collects every function body in file — declarations and
// literals alike. Each body is analyzed as its own frame: a deferred
// release inside a closure runs when the closure returns, so acquisitions
// must balance per frame, not per declaration.
func functionBodies(file *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				bodies = append(bodies, fn.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, fn.Body)
		}
		return true
	})
	return bodies
}

// inspectFrame walks body, skipping nested function literals (they are
// separate frames; functionBodies collects them independently).
func inspectFrame(body *ast.BlockStmt, f func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		return f(n)
	})
}

func checkBody(pass *framework.Pass, body *ast.BlockStmt) {
	checkDirectAcquires(pass, body)
	checkReleaseClosures(pass, body)
}

// guardCall resolves call to a (*guard.RW) method, returning the method
// name and the rendered control expression ("" when call is not one).
func guardCall(pass *framework.Pass, call *ast.CallExpr) (method, ctl string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal || !framework.IsNamed(selection.Recv(), guardPath, "RW") {
		return "", ""
	}
	return sel.Sel.Name, types.ExprString(sel.X)
}

var releaseOf = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

// checkDirectAcquires applies rules 1 and 2 to Lock/RLock calls appearing
// as statements of this frame.
func checkDirectAcquires(pass *framework.Pass, body *ast.BlockStmt) {
	type acquire struct {
		call *ast.CallExpr
		ctl  string
	}
	var acquires []acquire
	inspectFrame(body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			expr, ok := stmt.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := expr.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			method, ctl := guardCall(pass, call)
			release, isAcquire := releaseOf[method]
			if !isAcquire {
				continue
			}
			if pass.Marked(call, Marker) {
				continue
			}
			acquires = append(acquires, acquire{call, ctl})
			if !deferredReleaseFollows(pass, block.List[i+1:], release, ctl) {
				pass.Reportf(call.Pos(),
					"guard %s of %s is not released by an immediately following defer: an abort inside the critical section wedges the cube (use `defer %s.%s()`, or mark //lint:lockorder <reason>)",
					method, ctl, ctl, release)
			}
		}
		return true
	})
	// Rule 2: two direct acquisitions in one frame bypass the global order.
	for i := 1; i < len(acquires); i++ {
		if acquires[i].ctl != acquires[0].ctl {
			pass.Reportf(acquires[i].call.Pos(),
				"direct lock of a second guard control (%s after %s) in one function: acquire multiple controls through guard.AcquireShared/LockExclusive so the global ID order holds, or mark //lint:lockorder <reason>",
				acquires[i].ctl, acquires[0].ctl)
		}
	}
}

// deferredReleaseFollows reports whether the next statement defers
// release on the same control expression.
func deferredReleaseFollows(pass *framework.Pass, rest []ast.Stmt, release, ctl string) bool {
	if len(rest) == 0 {
		return false
	}
	def, ok := rest[0].(*ast.DeferStmt)
	if !ok {
		return false
	}
	method, gotCtl := guardCall(pass, def.Call)
	return method == release && gotCtl == ctl
}

// checkReleaseClosures applies rule 3 to guard.AcquireShared and
// guard.LockExclusive calls.
func checkReleaseClosures(pass *framework.Pass, body *ast.BlockStmt) {
	inspectFrame(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := guardHelper(pass, call)
		if name == "" || pass.Marked(call, Marker) {
			return true
		}
		if releaseConsumed(pass, body, call) {
			return true
		}
		pass.Reportf(call.Pos(),
			"the release closure returned by guard.%s is never consumed: every acquisition must be released on all paths (defer it), or mark //lint:lockorder <reason>", name)
		return true
	})
}

// guardHelper resolves call to guard.AcquireShared or guard.LockExclusive.
func guardHelper(pass *framework.Pass, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != guardPath {
		return ""
	}
	if fn.Name() == "AcquireShared" || fn.Name() == "LockExclusive" {
		return fn.Name()
	}
	return ""
}

// releaseConsumed reports whether the release closure produced by call is
// used: invoked in place (`defer guard.LockExclusive(x)()` or an immediate
// call), or bound to a variable that is referenced again anywhere in the
// frame (deferred, invoked, returned, stored, or passed along — any later
// reference transfers responsibility, matching how OpenScan hands its
// release to the scanner it returns).
func releaseConsumed(pass *framework.Pass, body *ast.BlockStmt, call *ast.CallExpr) bool {
	consumed := false
	inspectFrame(body, func(n ast.Node) bool {
		if consumed {
			return false
		}
		switch parent := n.(type) {
		case *ast.CallExpr:
			// guard.LockExclusive(x)() — the helper call is itself invoked —
			// or the release is passed straight to another function.
			if ast.Unparen(parent.Fun) == call {
				consumed = true
			}
			for _, arg := range parent.Args {
				if ast.Unparen(arg) == call {
					consumed = true
				}
			}
		case *ast.KeyValueExpr:
			// Stored directly into a struct literal (the OpenScan shape).
			if ast.Unparen(parent.Value) == call {
				consumed = true
			}
		case *ast.AssignStmt:
			for i, rhs := range parent.Rhs {
				if ast.Unparen(rhs) != call {
					continue
				}
				// Single call, possibly multi-value: the release is the
				// first LHS. A blank identifier drops it.
				if i < len(parent.Lhs) {
					if obj := lhsObject(pass, parent.Lhs[i]); obj != nil {
						consumed = referencedAgain(pass, body, obj, parent)
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range parent.Results {
				if ast.Unparen(res) == call {
					consumed = true
				}
			}
		}
		return true
	})
	return consumed
}

// lhsObject resolves an assignment target identifier to its object.
func lhsObject(pass *framework.Pass, lhs ast.Expr) types.Object {
	ident, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || ident.Name == "_" {
		return nil
	}
	if obj := pass.TypesInfo.Defs[ident]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[ident]
}

// referencedAgain reports whether obj is referenced anywhere in the frame
// other than its binding assignment.
func referencedAgain(pass *framework.Pass, body *ast.BlockStmt, obj types.Object, binding *ast.AssignStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == binding {
			return !found && n != binding
		}
		if ident, ok := n.(*ast.Ident); ok && (pass.TypesInfo.Uses[ident] == obj) {
			found = true
		}
		return !found
	})
	return found
}
