// Package guard stubs the repository's serving control block under its
// real import path: just enough surface for the lockorder fixtures. The
// analyzer is silent inside this package (it implements the discipline,
// it does not consume it).
package guard

import "context"

// RW is one structure's serving control block.
type RW struct{ id uint64 }

// Lock acquires the control exclusively.
func (g *RW) Lock() {}

// Unlock releases an exclusive hold.
func (g *RW) Unlock() {}

// RLock acquires the control shared.
func (g *RW) RLock() {}

// RUnlock releases a shared hold.
func (g *RW) RUnlock() {}

// AcquireShared read-locks every control in global ID order.
func AcquireShared(ctx context.Context, gs []*RW) (release func(), err error) {
	return func() {}, nil
}

// LockExclusive write-locks every control in global ID order.
func LockExclusive(gs []*RW) (release func()) {
	return func() {}
}
