// Package locka exercises the lockorder analyzer: direct guard
// acquisitions must defer their release immediately, one frame may lock
// one control directly, and the release closures returned by the guard
// helpers must be consumed.
package locka

import (
	"context"

	"rankcube/internal/guard"
)

func work() int { return 1 }

// Deferred is the blessed direct exclusive shape.
func Deferred(ctl *guard.RW) int {
	ctl.Lock()
	defer ctl.Unlock()
	return work()
}

// DeferredShared is the blessed direct shared shape.
func DeferredShared(ctl *guard.RW) int {
	ctl.RLock()
	defer ctl.RUnlock()
	return work()
}

// Manual releases by hand: an abort inside work never reaches the Unlock.
func Manual(ctl *guard.RW) int {
	ctl.Lock() // want `guard Lock of ctl is not released by an immediately following defer`
	n := work()
	ctl.Unlock()
	return n
}

// Mismatched defers the wrong release for the acquisition.
func Mismatched(ctl *guard.RW) {
	ctl.RLock() // want `guard RLock of ctl is not released by an immediately following defer`
	defer ctl.Unlock()
}

// TwoControls locks a second control directly: the global ID order cannot
// be enforced frame-locally, so multi-control locking must go through the
// helpers.
func TwoControls(a, b *guard.RW) {
	a.Lock()
	defer a.Unlock()
	b.Lock() // want `direct lock of a second guard control`
	defer b.Unlock()
}

// SameControlTwice relocks the one control it already holds — not a rule-2
// ordering violation (single control), though each acquisition still needs
// its defer.
func SameControlTwice(ctl *guard.RW) {
	ctl.RLock()
	defer ctl.RUnlock()
	ctl.RLock()
	defer ctl.RUnlock()
}

// Marked carries a justification and is exempt from both direct-acquire
// rules.
func Marked(ctl *guard.RW) {
	//lint:lockorder fixture: released by the paired helper on every path
	ctl.Lock()
}

// ClosureFrames hold their own discipline: the literal's acquisition
// balances inside the literal.
func ClosureFrames(ctl *guard.RW) {
	func() {
		ctl.Lock()
		defer ctl.Unlock()
		work()
	}()
}

// HelperDeferred consumes the release closure through a binding and a
// defer — the canonical runQuery shape.
func HelperDeferred(ctx context.Context, gs []*guard.RW) (int, error) {
	release, err := guard.AcquireShared(ctx, gs)
	if err != nil {
		return 0, err
	}
	defer release()
	return work(), nil
}

// HelperInPlace invokes the helper's release via an immediate defer.
func HelperInPlace(gs []*guard.RW) int {
	defer guard.LockExclusive(gs)()
	return work()
}

// HelperDropped discards the release closure: the locks are held forever.
func HelperDropped(gs []*guard.RW) {
	guard.LockExclusive(gs) // want `release closure returned by guard.LockExclusive is never consumed`
}

// HelperBlanked drops the release through the blank identifier.
func HelperBlanked(ctx context.Context, gs []*guard.RW) {
	_, _ = guard.AcquireShared(ctx, gs) // want `release closure returned by guard.AcquireShared is never consumed`
}

// HelperReturned transfers the obligation to the caller.
func HelperReturned(gs []*guard.RW) func() {
	return guard.LockExclusive(gs)
}

// scan mimics the GovernedScanner shape: the release rides inside the
// returned value, whose Close is responsible for it.
type scan struct{ unlock func() }

// HelperStored stores the release closure in a literal: consumed.
func HelperStored(gs []*guard.RW) *scan {
	return &scan{unlock: guard.LockExclusive(gs)}
}

// HelperBoundStored binds the release first, then hands it to the scan.
func HelperBoundStored(ctx context.Context, gs []*guard.RW) (*scan, error) {
	release, err := guard.AcquireShared(ctx, gs)
	if err != nil {
		return nil, err
	}
	return &scan{unlock: release}, nil
}

// HelperMarked is exempt by marker.
func HelperMarked(gs []*guard.RW) {
	//lint:lockorder fixture: leak is intentional here
	guard.LockExclusive(gs)
}
