package lockorder_test

import (
	"testing"

	"rankcube/internal/analysis/analysistest"
	"rankcube/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer,
		"rankcube/internal/guard",
		"rankcube/internal/locka",
	)
}
