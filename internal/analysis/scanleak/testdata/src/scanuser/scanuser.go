// Package scanuser exercises the scanleak analyzer: every open
// GovernedScanner must reach Close on all paths, escape to a party that
// will close it, or carry a justification marker.
package scanuser

import (
	"context"

	"rankcube"
)

func consume(sc *rankcube.GovernedScanner) {}

// DeferClose is the canonical safe shape.
func DeferClose(ctx context.Context, c *rankcube.Cube) error {
	sc, err := c.OpenScan(ctx)
	if err != nil {
		return err
	}
	defer sc.Close()
	for sc.Next() {
	}
	return sc.Err()
}

// DirectClose closes on the only path out: fine without a defer.
func DirectClose(ctx context.Context, c *rankcube.Cube) {
	sc, _ := c.OpenScan(ctx)
	for sc.Next() {
	}
	sc.Close()
}

// ErrGuardReturn returns inside the binding's error check — the scanner is
// nil exactly there, so the direct Close below stays sufficient.
func ErrGuardReturn(ctx context.Context, c *rankcube.Cube) error {
	sc, err := c.OpenScan(ctx)
	if err != nil {
		return err
	}
	n := 0
	for sc.Next() {
		n++
	}
	return sc.Close()
}

// LeakOnReturn has a live-scanner return path between open and Close.
func LeakOnReturn(ctx context.Context, c *rankcube.Cube, skip bool) error {
	sc, err := c.OpenScan(ctx) // want `open scan "sc" may leak: a return path between OpenScan and Close`
	if err != nil {
		return err
	}
	if skip {
		return nil
	}
	return sc.Close()
}

// NeverClosed uses the scanner and drops it.
func NeverClosed(ctx context.Context, c *rankcube.Cube) int {
	sc, _ := c.OpenScan(ctx) // want `open scan "sc" never reaches Close`
	n := 0
	for sc.Next() {
		n++
	}
	return n
}

// Discarded drops the open scan on the floor.
func Discarded(ctx context.Context, c *rankcube.Cube) {
	c.OpenScan(ctx) // want `open scan is discarded without Close`
}

// Blanked binds the scanner to the blank identifier.
func Blanked(ctx context.Context, c *rankcube.Cube) {
	_, _ = c.OpenScan(ctx) // want `open scan is assigned to the blank identifier`
}

// EscapesReturn transfers the Close obligation to the caller.
func EscapesReturn(ctx context.Context, c *rankcube.Cube) (*rankcube.GovernedScanner, error) {
	sc, err := c.OpenScan(ctx)
	if err != nil {
		return nil, err
	}
	return sc, nil
}

// EscapesClosure hands the scanner to a cleanup closure.
func EscapesClosure(ctx context.Context, c *rankcube.Cube) func() {
	sc, _ := c.OpenScan(ctx)
	return func() { sc.Close() }
}

// EscapesArg passes the scanner along.
func EscapesArg(ctx context.Context, c *rankcube.Cube) {
	sc, _ := c.OpenScan(ctx)
	consume(sc)
}

// Marked carries a justification.
func Marked(ctx context.Context, c *rankcube.Cube) {
	//lint:scanleak fixture: the process exits right after this call
	c.OpenScan(ctx)
}
