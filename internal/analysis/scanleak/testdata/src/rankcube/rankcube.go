// Package rankcube stubs the repository root under its real import path:
// just enough surface for the scanleak fixtures.
package rankcube

import "context"

// GovernedScanner is the governed scan handle: it holds a serving slot
// from OpenScan until Close.
type GovernedScanner struct{}

// Next advances the scan.
func (s *GovernedScanner) Next() bool { return false }

// Err reports a scan failure.
func (s *GovernedScanner) Err() error { return nil }

// Close releases the scan's serving slot.
func (s *GovernedScanner) Close() error { return nil }

// Cube opens scans.
type Cube struct{}

// OpenScan admits the caller and returns an open scan.
func (c *Cube) OpenScan(ctx context.Context) (*GovernedScanner, error) {
	return &GovernedScanner{}, nil
}
