package scanleak_test

import (
	"testing"

	"rankcube/internal/analysis/analysistest"
	"rankcube/internal/analysis/scanleak"
)

func TestScanLeak(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), scanleak.Analyzer,
		"rankcube",
		"scanuser",
	)
}
