// Package scanleak makes sure every open scan reaches Close.
//
// A GovernedScanner holds the cube's shared serving lock and an admission
// slot from OpenScan until Close — that is the contract that lets
// maintenance wait for open scans instead of racing them. A scanner that
// never reaches Close therefore pins a serving slot for the life of the
// process: Drain blocks forever, the admission gate leaks capacity, and
// exclusive maintenance starves.
//
// The analyzer tracks every value of type *rankcube.GovernedScanner
// produced by a call (OpenScan, ScanCtx, or any future constructor) and
// requires, within the creating function, one of:
//
//   - a deferred Close (safe on every return and panic path);
//   - a direct Close with no return statement between creation and the
//     close — early returns inside the error-check branch of the creating
//     call (`if err != nil { return … }`) are exempt, since the scanner is
//     nil exactly there;
//   - an escape: returning the scanner, storing it, or passing it along
//     transfers the Close obligation to the receiver.
//
// Discarding the scanner outright is always flagged. Justified exceptions
// carry a `//lint:scanleak <reason>` marker.
package scanleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"rankcube/internal/analysis/framework"
)

const rootPath = "rankcube"

// Marker is the justification marker accepted on exempted scans.
const Marker = "scanleak"

// Analyzer flags open scans that cannot reach Close.
var Analyzer = &framework.Analyzer{
	Name: "scanleak",
	Doc: "every *rankcube.GovernedScanner must reach Close on all paths: an open " +
		"scan holds a serving slot and an unclosed one starves Drain and maintenance",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, body := range functionBodies(file) {
			checkFrame(pass, body)
		}
	}
	return nil
}

// functionBodies collects every function body in file, declarations and
// literals alike; each is checked as its own frame.
func functionBodies(file *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				bodies = append(bodies, fn.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, fn.Body)
		}
		return true
	})
	return bodies
}

// inspectFrame walks body, skipping nested function literals.
func inspectFrame(body *ast.BlockStmt, f func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		return f(n)
	})
}

// isScannerType reports whether t is *rankcube.GovernedScanner (or the
// bare named type).
func isScannerType(t types.Type) bool {
	return t != nil && framework.IsNamed(t, rootPath, "GovernedScanner")
}

// scannerResult returns the index of call's *GovernedScanner result, or -1.
func scannerResult(pass *framework.Pass, call *ast.CallExpr) int {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return -1
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isScannerType(t.At(i).Type()) {
				return i
			}
		}
	default:
		if isScannerType(t) {
			return 0
		}
	}
	return -1
}

func checkFrame(pass *framework.Pass, body *ast.BlockStmt) {
	inspectFrame(body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			// A scanner-producing call whose results are dropped on the
			// floor can never be closed.
			if call, ok := stmt.X.(*ast.CallExpr); ok && scannerResult(pass, call) >= 0 {
				if !pass.Marked(call, Marker) {
					pass.Reportf(call.Pos(),
						"open scan is discarded without Close: it holds a serving slot until Close and will starve Drain (assign it and close it, or mark //lint:scanleak <reason>)")
				}
			}
		case *ast.AssignStmt:
			checkBinding(pass, body, stmt)
		}
		return true
	})
}

// checkBinding inspects one `sc, err := …OpenScan(…)`-shaped assignment.
func checkBinding(pass *framework.Pass, body *ast.BlockStmt, assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	idx := scannerResult(pass, call)
	if idx < 0 || pass.Marked(call, Marker) {
		return
	}
	if idx >= len(assign.Lhs) {
		return
	}
	scIdent, ok := ast.Unparen(assign.Lhs[idx]).(*ast.Ident)
	if !ok || scIdent.Name == "_" {
		pass.Reportf(call.Pos(),
			"open scan is assigned to the blank identifier: it holds a serving slot until Close and will starve Drain (close it, or mark //lint:scanleak <reason>)")
		return
	}
	sc := bindingObject(pass, scIdent)
	if sc == nil {
		return
	}
	errObj := errBinding(pass, assign, idx)

	uses := collectUses(pass, body, sc, assign)
	switch disposition(pass, body, assign, errObj, uses) {
	case closed, escaped:
		return
	case leakOnReturn:
		pass.Reportf(call.Pos(),
			"open scan %q may leak: a return path between OpenScan and Close skips the release of its serving slot (defer %s.Close(), or mark //lint:scanleak <reason>)",
			scIdent.Name, scIdent.Name)
	case neverClosed:
		pass.Reportf(call.Pos(),
			"open scan %q never reaches Close: it holds a serving slot until Close and will starve Drain (defer %s.Close(), or mark //lint:scanleak <reason>)",
			scIdent.Name, scIdent.Name)
	}
}

// bindingObject resolves the scanner identifier to its object.
func bindingObject(pass *framework.Pass, ident *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[ident]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[ident]
}

// errBinding returns the error variable bound alongside the scanner, if
// any — returns inside its `if err != nil` check are nil-scanner paths.
func errBinding(pass *framework.Pass, assign *ast.AssignStmt, scannerIdx int) types.Object {
	for i, lhs := range assign.Lhs {
		if i == scannerIdx {
			continue
		}
		ident, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || ident.Name == "_" {
			continue
		}
		obj := pass.TypesInfo.Defs[ident]
		if obj == nil {
			obj = pass.TypesInfo.Uses[ident]
		}
		if obj != nil && types.Identical(obj.Type(), types.Universe.Lookup("error").Type()) {
			return obj
		}
	}
	return nil
}

// use is one reference to the scanner after its binding.
type use struct {
	ident    *ast.Ident
	closes   bool // sc.Close() — receiver of a Close call
	deferred bool // inside a DeferStmt (any depth within this frame)
	escapes  bool // returned, stored, or passed along
}

// collectUses gathers every reference to sc in the frame after binding.
func collectUses(pass *framework.Pass, body *ast.BlockStmt, sc types.Object, binding *ast.AssignStmt) []use {
	var uses []use
	var deferDepth int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == binding {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			// A closure over the scanner (e.g. a cleanup func) counts as an
			// escape: the obligation moved into the closure.
			escapesInto(pass, n, sc, &uses)
			return false
		}
		if def, ok := n.(*ast.DeferStmt); ok {
			deferDepth++
			ast.Inspect(def.Call, walk)
			deferDepth--
			return false
		}
		ident, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[ident] != sc {
			return true
		}
		u := use{ident: ident, deferred: deferDepth > 0}
		uses = append(uses, u)
		return true
	}
	ast.Inspect(body, walk)

	// Classify each reference by its syntactic context.
	for i := range uses {
		classifyUse(pass, body, &uses[i])
	}
	return uses
}

// escapesInto records an escape-shaped use when the closure references sc.
func escapesInto(pass *framework.Pass, lit ast.Node, sc types.Object, uses *[]use) {
	ast.Inspect(lit, func(n ast.Node) bool {
		if ident, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[ident] == sc {
			*uses = append(*uses, use{ident: ident, escapes: true})
			return false
		}
		return true
	})
}

// classifyUse decides whether u closes the scanner or lets it escape, by
// locating the reference's immediate syntactic context.
func classifyUse(pass *framework.Pass, body *ast.BlockStmt, u *use) {
	path := pathTo(body, u.ident)
	for i := len(path) - 2; i >= 0; i-- {
		switch parent := path[i].(type) {
		case *ast.SelectorExpr:
			// sc.Close() — only when the selector is actually called.
			if parent.Sel.Name == "Close" && i > 0 {
				if call, ok := path[i-1].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == parent {
					u.closes = true
					return
				}
			}
			// sc.Next(), sc.Err(), field reads: plain uses.
			return
		case *ast.CallExpr:
			// Passed as an argument (the Fun case was handled above).
			u.escapes = true
			return
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt, *ast.IndexExpr:
			u.escapes = true
			return
		case *ast.AssignStmt:
			// Reassigned somewhere else (field, map entry, other variable):
			// the obligation moves with it.
			for _, rhs := range parent.Rhs {
				if containsNode(rhs, u.ident) {
					u.escapes = true
					return
				}
			}
			return
		case *ast.UnaryExpr:
			if parent.Op == token.AND {
				u.escapes = true
				return
			}
		}
	}
}

// disposition classifies the scanner's fate in this frame.
type fate int

const (
	neverClosed fate = iota
	leakOnReturn
	closed
	escaped
)

func disposition(pass *framework.Pass, body *ast.BlockStmt, binding *ast.AssignStmt, errObj types.Object, uses []use) fate {
	var firstClose *use
	for i := range uses {
		u := &uses[i]
		if u.escapes {
			return escaped
		}
		if u.closes && u.deferred {
			return closed
		}
		if u.closes && firstClose == nil {
			firstClose = u
		}
	}
	if firstClose == nil {
		return neverClosed
	}
	// A direct (non-deferred) Close: any return statement lexically between
	// the binding and the close leaks the slot — except returns on the
	// binding's own error path, where the scanner is nil.
	if leaky := returnBetween(pass, body, binding.End(), firstClose.ident.Pos(), errObj); leaky {
		return leakOnReturn
	}
	return closed
}

// returnBetween reports whether a return statement between lo and hi can
// see a live scanner: returns inside an `if` whose condition consults the
// binding's error variable are exempt.
func returnBetween(pass *framework.Pass, body *ast.BlockStmt, lo, hi token.Pos, errObj types.Object) bool {
	leaky := false
	var errGuardDepth int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if leaky {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if ifStmt, ok := n.(*ast.IfStmt); ok && errObj != nil && usesObject(pass, ifStmt.Cond, errObj) {
			if ifStmt.Init != nil {
				ast.Inspect(ifStmt.Init, walk)
			}
			errGuardDepth++
			ast.Inspect(ifStmt.Body, walk)
			errGuardDepth--
			if ifStmt.Else != nil {
				ast.Inspect(ifStmt.Else, walk)
			}
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		// ret.End() < hi: a return whose own expression performs the close
		// (`return sc.Close()`) spans hi and is the close, not a leak.
		if ret.Pos() > lo && ret.End() < hi && errGuardDepth == 0 {
			leaky = true
		}
		return true
	}
	ast.Inspect(body, walk)
	return leaky
}

// usesObject reports whether any identifier under node resolves to obj.
func usesObject(pass *framework.Pass, node ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if ident, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[ident] == obj {
			found = true
		}
		return !found
	})
	return found
}

// pathTo returns the chain of nodes from root down to target (inclusive),
// or nil when target is not under root.
func pathTo(root ast.Node, target ast.Node) []ast.Node {
	var path []ast.Node
	var found bool
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if found {
			return false
		}
		if n == nil {
			path = path[:len(path)-1]
			return true
		}
		path = append(path, n)
		if n == target {
			found = true
			return false
		}
		return true
	}
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		return walk(n)
	})
	if !found {
		return nil
	}
	return path
}

// containsNode reports whether target appears under root.
func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}
