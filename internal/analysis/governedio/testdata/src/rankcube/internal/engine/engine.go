// Package engine exercises the governedio analyzer from the perspective of
// an engine package reading pages.
package engine

import (
	"rankcube/internal/hindex"
	"rankcube/internal/pager"
	"rankcube/internal/stats"
)

// Query reads through the governed accessor with real counters: clean.
func Query(s *pager.Store, c *stats.Counters) []byte {
	return s.Read(0, c)
}

// Bypass dodges read accounting entirely.
func Bypass(s *pager.Store) []byte {
	return s.ReadRaw(0) // want `Store.ReadRaw bypasses governed read accounting`
}

// SizeOf is the blessed ReadRaw shape: maintenance bookkeeping under an
// explicit marker.
func SizeOf(s *pager.Store) int {
	//lint:ungoverned size accounting, not a query path
	return len(s.ReadRaw(0))
}

// Uncharged passes nil counters, charging the read to nobody.
func Uncharged(s *pager.Store) []byte {
	return s.Read(0, nil) // want `Store.Read with nil Counters charges the read to nobody`
}

// BufferedUncharged shows the same hazard through the buffer wrapper.
func BufferedUncharged(b *pager.Buffer) {
	b.Touch(0, nil) // want `Buffer.Touch with nil Counters charges the read to nobody`
}

// Rebuild is a marked maintenance path: the builder charges reads itself.
func Rebuild(s *pager.Store) {
	//lint:ungoverned rebuild path, charged in bulk by the builder
	s.Touch(0, nil)
}

// Traverse builds a governed hindex accessor with real counters: clean.
func Traverse(idx hindex.Index, c *stats.Counters) *hindex.Accessor {
	return hindex.NewAccessor(idx, c)
}

// TraverseUncharged builds an accessor whose whole traversal is uncharged.
func TraverseUncharged(idx hindex.Index) *hindex.Accessor {
	return hindex.NewAccessor(idx, nil) // want `hindex.NewAccessor with nil Counters charges every node visit to nobody`
}

// Inspect is the blessed nil-counters shape: structural bookkeeping under
// an explicit marker.
func Inspect(idx hindex.Index) *hindex.Accessor {
	//lint:ungoverned structure inspection, not a query path
	return hindex.NewAccessor(idx, nil)
}
