// Package pager stubs the repository's page store under its real import
// path. Inside this package the analyzer is silent: the pager implements
// the governed accessors, it does not bypass them.
package pager

import "rankcube/internal/stats"

// PageID identifies a page within one Store.
type PageID int32

// Store is a page store with governed (Read, Touch) and ungoverned
// (ReadRaw) accessors.
type Store struct{ pages [][]byte }

// Read fetches a page, charging the read to c.
func (s *Store) Read(id PageID, c *stats.Counters) []byte {
	c.Read("store", 1)
	return s.pages[id]
}

// Touch charges a read without returning a payload.
func (s *Store) Touch(id PageID, c *stats.Counters) {
	c.Read("store", 1)
}

// ReadRaw returns a payload without charging any read.
func (s *Store) ReadRaw(id PageID) []byte { return s.pages[id] }

// Buffer is a per-query buffer pool over a Store.
type Buffer struct{ store *Store }

// NewBuffer wraps store.
func NewBuffer(store *Store) *Buffer { return &Buffer{store: store} }

// Read fetches a page through the buffer.
func (b *Buffer) Read(id PageID, c *stats.Counters) []byte { return b.store.Read(id, c) }

// Touch charges the first access of a page.
func (b *Buffer) Touch(id PageID, c *stats.Counters) { b.store.Touch(id, c) }
