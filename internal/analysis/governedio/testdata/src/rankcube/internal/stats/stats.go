// Package stats stubs the repository's metrics collector under its real
// import path, just enough to type-check the governedio fixtures.
package stats

// Structure identifies a storage structure for read accounting.
type Structure string

// Counters accumulates per-query metrics. Methods are nil-safe, which is
// exactly why passing nil must be justified: it silently disables the
// governor.
type Counters struct{ reads map[Structure]int64 }

// Read records n block reads against s.
func (c *Counters) Read(s Structure, n int64) {
	if c == nil {
		return
	}
	if c.reads == nil {
		c.reads = make(map[Structure]int64)
	}
	c.reads[s] += n
}
