// Package hindex stubs the repository's hierarchical-index accessor under
// its real import path. NewAccessor captures the Counters every subsequent
// node visit is charged to, so a nil argument here silently disables the
// governor for the whole traversal. Inside this package the analyzer is
// silent.
package hindex

import "rankcube/internal/stats"

// NodeID identifies a node within one index.
type NodeID int32

// Index is a partition tree whose nodes are read through an Accessor.
type Index interface {
	Children(id NodeID) []NodeID
}

// Accessor mediates node access during one query.
type Accessor struct {
	Idx Index
	c   *stats.Counters
}

// NewAccessor returns an accessor charging idx reads to c.
func NewAccessor(idx Index, c *stats.Counters) *Accessor {
	return &Accessor{Idx: idx, c: c}
}

// Children fetches internal node entries, charging the node's page.
func (a *Accessor) Children(id NodeID) []NodeID {
	a.c.Read("rtree", 1)
	return a.Idx.Children(id)
}
