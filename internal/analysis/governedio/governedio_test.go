package governedio_test

import (
	"testing"

	"rankcube/internal/analysis/analysistest"
	"rankcube/internal/analysis/governedio"
)

func TestGovernedIO(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), governedio.Analyzer,
		"rankcube/internal/engine",
		"rankcube/internal/hindex",
		"rankcube/internal/pager",
	)
}
