// Package governedio keeps every block access on the governed pager path.
//
// Budget and cancellation enforcement live in the pager: Store.Read /
// Store.Touch (and the Buffer wrappers) charge each access to the query's
// stats.Counters, whose attached governor aborts on a tripped budget or a
// canceled context. Two shapes silently erode that enforcement:
//
//   - Store.ReadRaw, which returns a payload without charging any read —
//     legitimate only for size accounting and maintenance bookkeeping; and
//   - passing a nil *stats.Counters into a governed accessor, which charges
//     the read to nobody (Counters methods are nil-safe by design for
//     uninstrumented build paths). This covers both the pager accessors and
//     hindex.NewAccessor, whose Accessor routes every subsequent node visit
//     through the counters it was constructed with.
//
// Outside internal/pager and internal/hindex themselves, these require a
// `//lint:ungoverned <reason>` marker on or directly above the call, so
// every ungoverned access is individually justified and reviewable.
package governedio

import (
	"go/ast"
	"go/types"

	"rankcube/internal/analysis/framework"
)

const (
	pagerPath  = "rankcube/internal/pager"
	hindexPath = "rankcube/internal/hindex"
)

// Marker is the justification marker accepted on ungoverned accesses.
const Marker = "ungoverned"

// Analyzer flags pager accesses that bypass governor accounting.
var Analyzer = &framework.Analyzer{
	Name: "governedio",
	Doc: "flags Store.ReadRaw calls, nil-Counters reads, and nil-Counters " +
		"hindex accessors outside internal/pager and internal/hindex: block " +
		"accesses must be charged through the governed accessors unless marked " +
		"//lint:ungoverned",
	Run: run,
}

// governed names the accessor methods that charge reads, per receiver type.
var governed = map[string]map[string]bool{
	"Store":  {"Read": true, "Touch": true},
	"Buffer": {"Read": true, "Touch": true},
}

func run(pass *framework.Pass) error {
	if pass.Pkg.Path() == pagerPath || pass.Pkg.Path() == hindexPath {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isHindexNewAccessor(pass, call) {
				if len(call.Args) == 2 && isNil(pass, call.Args[1]) && !pass.Marked(call, Marker) {
					pass.Reportf(call.Pos(),
						"hindex.NewAccessor with nil Counters charges every node visit to nobody: pass the query's metrics, or mark //lint:ungoverned <reason>")
				}
				return true
			}
			recv, method := pagerMethod(pass, call)
			if recv == "" {
				return true
			}
			switch {
			case recv == "Store" && method == "ReadRaw":
				if !pass.Marked(call, Marker) {
					pass.Reportf(call.Pos(),
						"Store.ReadRaw bypasses governed read accounting: use Store.Read, or mark //lint:ungoverned <reason> for maintenance bookkeeping")
				}
			case governed[recv][method]:
				if len(call.Args) > 0 && isNil(pass, call.Args[len(call.Args)-1]) && !pass.Marked(call, Marker) {
					pass.Reportf(call.Pos(),
						"%s.%s with nil Counters charges the read to nobody: pass the query's metrics, or mark //lint:ungoverned <reason>", recv, method)
				}
			}
			return true
		})
	}
	return nil
}

// pagerMethod resolves call to a method on a pager type, returning the
// receiver type name and method name ("" when call is something else).
func pagerMethod(pass *framework.Pass, call *ast.CallExpr) (recv, method string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return "", ""
	}
	for name := range governed {
		if framework.IsNamed(selection.Recv(), pagerPath, name) {
			return name, sel.Sel.Name
		}
	}
	return "", ""
}

// isHindexNewAccessor reports whether call invokes the package function
// rankcube/internal/hindex.NewAccessor (resolved through the type
// checker's uses, so aliasing the import does not hide the call).
func isHindexNewAccessor(pass *framework.Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	return ok && fn.Name() == "NewAccessor" &&
		fn.Pkg() != nil && fn.Pkg().Path() == hindexPath
}

// isNil reports whether expr is the predeclared nil.
func isNil(pass *framework.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(expr)]
	return ok && tv.IsNil()
}
