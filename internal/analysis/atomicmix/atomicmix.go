// Package atomicmix forbids mixing sync/atomic and plain accesses to one
// struct field.
//
// The serving path counts in-flight queries, admission waiters, and chaos
// outcomes in counters that concurrent goroutines update through
// sync/atomic. A single plain read or write of such a field elsewhere is a
// data race the race detector only catches if a test happens to schedule
// the two accesses together under load — exactly the class of bug that
// should be caught structurally. The analyzer therefore records every
// field whose address is taken by a sync/atomic call and flags every plain
// read, write, or escaped address of that field anywhere else.
//
// "Anywhere else" crosses package boundaries: the atomic access and the
// plain access are usually in different files, often in different
// packages. The field's atomic use is exported as an object fact when the
// defining side is analyzed, and every later package (the driver runs in
// dependency order) checks its accesses against the imported facts.
//
// Composite-literal initialization is exempt — a value that has not been
// published yet cannot race. Post-join reads and other justified accesses
// carry a `//lint:atomicmix <reason>` marker; converting the field to one
// of the typed atomics (atomic.Int64 and friends), which cannot be
// accessed non-atomically at all, is the better fix.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rankcube/internal/analysis/framework"
)

// Marker is the justification marker accepted on mixed accesses.
const Marker = "atomicmix"

// atomicField is the object fact recorded on every struct field some
// package accesses through sync/atomic.
type atomicField struct{}

func (*atomicField) AFact() {}

// Analyzer flags plain accesses to atomically-updated struct fields.
var Analyzer = &framework.Analyzer{
	Name: "atomicmix",
	Doc: "a struct field updated via sync/atomic anywhere may not be read or " +
		"written non-atomically elsewhere (cross-package, via facts): use the " +
		"typed atomics, or mark //lint:atomicmix <reason>",
	Run: run,
}

func run(pass *framework.Pass) error {
	// First pass: find every &x.f handed to a sync/atomic call; record the
	// field and remember the operand so the second pass skips it.
	local := make(map[*types.Var]bool)
	operands := make(map[ast.Expr]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || unary.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if field := fieldOf(pass, sel); field != nil {
					local[field] = true
					operands[sel] = true
					pass.ExportObjectFact(field, &atomicField{})
				}
			}
			return true
		})
	}

	// Second pass: every other selector touching an atomic field — locally
	// recorded or imported as a fact from a dependency — is a race.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || operands[sel] {
				return true
			}
			field := fieldOf(pass, sel)
			if field == nil || !isAtomic(pass, local, field) {
				return true
			}
			if pass.Marked(sel, Marker) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"field %s.%s is updated via sync/atomic elsewhere; this plain access races with it: "+
					"use sync/atomic here too, make the field a typed atomic, or mark //lint:atomicmix <reason>",
				fieldOwner(field), field.Name())
			return true
		})
	}
	return nil
}

// isAtomic reports whether field is atomically accessed: in this package
// (local) or per a fact exported by an already-analyzed package.
func isAtomic(pass *framework.Pass, local map[*types.Var]bool, field *types.Var) bool {
	if local[field] {
		return true
	}
	var fact atomicField
	return pass.ImportObjectFact(field, &fact)
}

// isAtomicCall reports whether call invokes a sync/atomic package-level
// function (AddInt64, LoadUint32, StorePointer, CompareAndSwapInt32, …).
func isAtomicCall(pass *framework.Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" &&
		fn.Type().(*types.Signature).Recv() == nil
}

// fieldOf resolves sel to the struct field it selects, or nil. Composite
// literal keys are idents, not selectors, so initialization never lands
// here.
func fieldOf(pass *framework.Pass, sel *ast.SelectorExpr) *types.Var {
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil
	}
	v, ok := selection.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// fieldOwner renders the defining struct's name for diagnostics, falling
// back to the package path.
func fieldOwner(field *types.Var) string {
	if field.Pkg() == nil {
		return "?"
	}
	// The owner type is not directly reachable from a field var; the
	// package-qualified field name is unambiguous enough for a diagnostic.
	path := field.Pkg().Path()
	if i := strings.LastIndex(path, "/"); i >= 0 {
		path = path[i+1:]
	}
	return path
}
