package atomicmix_test

import (
	"testing"

	"rankcube/internal/analysis/analysistest"
	"rankcube/internal/analysis/atomicmix"
)

// TestAtomicMix lists atoma before atomb on purpose: the harness shares
// one fact store across the listed paths, so atomb's findings prove the
// field's atomic use propagated across the package boundary as a fact.
func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), atomicmix.Analyzer,
		"atoma",
		"atomb",
	)
}
