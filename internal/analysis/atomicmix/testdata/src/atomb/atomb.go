// Package atomb accesses atoma's counter plainly. No sync/atomic call
// appears in this package at all: the findings exist only because the
// analyzer imported the field's atomic-use fact exported while analyzing
// atoma.
package atomb

import "atoma"

// CrossRead races with atoma.Inc.
func CrossRead(s *atoma.S) int64 {
	return s.N // want `field atoma.N is updated via sync/atomic elsewhere`
}

// CrossWrite races too.
func CrossWrite(s *atoma.S) {
	s.N = 1 // want `field atoma.N is updated via sync/atomic elsewhere`
}

// CrossPlain touches the never-atomic field: clean.
func CrossPlain(s *atoma.S) int64 { return s.Plain }

// CrossMarked is a justified access.
func CrossMarked(s *atoma.S) int64 {
	//lint:atomicmix fixture: single-threaded test helper
	return s.N
}
