// Package atoma defines a counter updated via sync/atomic. Plain accesses
// to it — here and in the dependent package atomb — must be flagged; the
// cross-package case travels as an object fact on the field.
package atoma

import "sync/atomic"

// S carries one atomically-updated counter, one plain field, and one typed
// atomic (safe by construction).
type S struct {
	N     int64
	Plain int64
	Typed atomic.Int64
}

// New initializes via a composite literal: the value is unpublished, so
// this is not an access and never flagged.
func New() *S { return &S{N: 0, Plain: 0} }

// Inc is the atomic update that forbids plain access everywhere.
func Inc(s *S) { atomic.AddInt64(&s.N, 1) }

// Get reads atomically: fine.
func Get(s *S) int64 { return atomic.LoadInt64(&s.N) }

// TypedInc uses the typed atomic: no address-of, nothing to track.
func TypedInc(s *S) { s.Typed.Add(1) }

// MixedRead reads the counter plainly in the defining package.
func MixedRead(s *S) int64 {
	return s.N // want `field atoma.N is updated via sync/atomic elsewhere`
}

// MixedWrite resets it plainly.
func MixedWrite(s *S) {
	s.N = 0 // want `field atoma.N is updated via sync/atomic elsewhere`
}

// PlainOK touches the never-atomic field.
func PlainOK(s *S) int64 { return s.Plain }

// MarkedRead is a justified post-join read.
func MarkedRead(s *S) int64 {
	//lint:atomicmix fixture: every writer has joined before this read
	return s.N
}
