package errwrap_test

import (
	"testing"

	"rankcube/internal/analysis/analysistest"
	"rankcube/internal/analysis/errwrap"
)

func TestErrWrap(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errwrap.Analyzer,
		"pub",
		"rankcube/internal/lib",
		"cmdfix",
	)
}
