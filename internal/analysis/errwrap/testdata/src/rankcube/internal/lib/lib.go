// Package lib shows the internal-package rules: internal packages define
// sentinels and locally-consumed messages freely, but an exported function
// that directly returns a kindless construction is a custom error
// constructor whose chain escapes to the public boundary unclassifiable.
package lib

import (
	"errors"
	"fmt"
)

// ErrThing is an internal sentinel: allowed.
var ErrThing = errors.New("lib: thing unavailable")

// Fail is an exported constructor originating a kindless chain: flagged.
func Fail() error {
	return errors.New("lib: failed") // want `exported Fail returns a kindless errors.New chain`
}

// Describe is an exported constructor formatting without %w: flagged.
func Describe(name string) error {
	return fmt.Errorf("lib: %s unusable", name) // want `exported Describe returns fmt.Errorf without %w`
}

// FailTyped wraps the internal sentinel: clean.
func FailTyped(name string) error {
	return fmt.Errorf("lib: %s: %w", name, ErrThing)
}

// helper is unexported: its callers own classification, so it stays free.
func helper() error {
	return errors.New("lib: helper detail")
}

// Consume uses a kindless error locally without returning it: clean.
func Consume() string {
	if err := helper(); err != nil {
		return err.Error()
	}
	return ""
}

// Thing shows methods are held to the same rule as functions.
type Thing struct{}

// Check is an exported method originating a kindless chain: flagged.
func (Thing) Check() error {
	return errors.New("lib: check failed") // want `exported Check returns a kindless errors.New chain`
}
