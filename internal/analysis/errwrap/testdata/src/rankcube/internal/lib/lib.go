// Package lib shows the internal exemption: internal packages define
// sentinels and messages freely; typing is enforced where they cross the
// public boundary.
package lib

import "errors"

// ErrThing is an internal sentinel: allowed.
var ErrThing = errors.New("lib: thing unavailable")

// Fail originates an internal error: allowed.
func Fail() error {
	return errors.New("lib: failed")
}
