// Command cmdfix shows the package-main exemption: command errors
// terminate in a log line, not in a caller's errors.Is.
package main

import (
	"errors"
	"fmt"
)

func main() {
	if err := run(); err != nil {
		fmt.Println(err)
	}
}

func run() error {
	return errors.New("cmdfix: flag misuse")
}
