// Package pub exercises the errwrap analyzer in a public (non-internal,
// non-main) package, where originated errors must carry a wrapped cause or
// sentinel.
package pub

import (
	"errors"
	"fmt"
)

// A parallel sentinel taxonomy in a public package is itself a finding:
// kinds belong in internal/errs.
var errLocal = errors.New("pub: local sentinel") // want `errors.New at the public boundary`

// Bare starts a kindless error chain.
func Bare() error {
	return errors.New("pub: something failed") // want `errors.New at the public boundary`
}

// Unwrapped formats a message with no %w: callers cannot classify it.
func Unwrapped(name string) error {
	return fmt.Errorf("pub: %s not found", name) // want `fmt.Errorf without %w at the public boundary`
}

// Wrapped carries its cause: clean.
func Wrapped(name string, cause error) error {
	return fmt.Errorf("pub: %s: %w", name, cause)
}

// Message is not an error constructor: clean.
func Message(name string) string {
	return fmt.Sprintf("pub: %s", name)
}

// use keeps the sentinel referenced.
func use() error { return errLocal }
