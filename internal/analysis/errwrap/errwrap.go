// Package errwrap polices error construction at the public API boundary.
//
// Every error the public packages return must be classifiable by callers
// switching on errors.Is against the internal/errs taxonomy. Errors that
// merely propagate out of internal packages already carry a kind (PR 6
// typed them); the remaining hazard is errors *originated* in a public
// package: a bare errors.New or a fmt.Errorf without %w starts a fresh,
// kindless error chain that matches no sentinel. The analyzer flags both
// shapes in packages outside internal/ (commands are exempt: package main
// errors terminate in a log line, not in a caller's errors.Is).
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"rankcube/internal/analysis/framework"
)

// Analyzer flags kindless error construction at the public boundary.
var Analyzer = &framework.Analyzer{
	Name: "errwrap",
	Doc: "errors originated in public (non-internal, non-main) packages must wrap a cause " +
		"or an errs sentinel with %w so callers can classify them with errors.Is",
	Run: run,
}

func run(pass *framework.Pass) error {
	path := pass.Pkg.Path()
	if strings.HasPrefix(path, "rankcube/internal/") || path == "rankcube/internal" || pass.Pkg.Name() == "main" {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case isPkgFunc(pass, call, "errors", "New"):
				pass.Reportf(call.Pos(),
					"errors.New at the public boundary starts a kindless error chain: wrap an errs sentinel with fmt.Errorf(..., %%w)")
			case isPkgFunc(pass, call, "fmt", "Errorf"):
				if format, known := constFormat(pass, call); known && !strings.Contains(format, "%w") {
					pass.Reportf(call.Pos(),
						"fmt.Errorf without %%w at the public boundary: wrap the cause or an errs sentinel so errors.Is can classify it")
				}
			}
			return true
		})
	}
	return nil
}

// isPkgFunc reports whether call invokes pkg.name, resolved through the
// type info (import aliases included).
func isPkgFunc(pass *framework.Pass, call *ast.CallExpr, pkg, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == pkg
}

// constFormat extracts the constant format string of a fmt.Errorf call.
func constFormat(pass *framework.Pass, call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
