// Package errwrap polices error construction at the public API boundary.
//
// Every error the public packages return must be classifiable by callers
// switching on errors.Is against the internal/errs taxonomy. Errors that
// merely propagate out of internal packages already carry a kind (PR 6
// typed them); the remaining hazard is errors *originated* in a public
// package: a bare errors.New or a fmt.Errorf without %w starts a fresh,
// kindless error chain that matches no sentinel. The analyzer flags both
// shapes in packages outside internal/ (commands are exempt: package main
// errors terminate in a log line, not in a caller's errors.Is).
//
// A second rule reaches into internal packages: an *exported* internal
// function or method that directly returns errors.New(...) or a
// fmt.Errorf(...) without %w is a custom error constructor whose kindless
// chain escapes through the engine to the public boundary — callers there
// cannot classify it either. Internal sentinel definitions (package-level
// vars) and unexported helpers stay free; the internal/errs package itself
// (where the taxonomy lives) and the analysis tooling (whose errors
// terminate in test logs, not in a caller's errors.Is) are exempt.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"rankcube/internal/analysis/framework"
)

// Analyzer flags kindless error construction at the public boundary.
var Analyzer = &framework.Analyzer{
	Name: "errwrap",
	Doc: "errors originated in public (non-internal, non-main) packages must wrap a cause " +
		"or an errs sentinel with %w so callers can classify them with errors.Is",
	Run: run,
}

func run(pass *framework.Pass) error {
	path := pass.Pkg.Path()
	if pass.Pkg.Name() == "main" {
		return nil
	}
	if strings.HasPrefix(path, "rankcube/internal/") || path == "rankcube/internal" {
		if path != "rankcube/internal/errs" && !strings.HasPrefix(path, "rankcube/internal/analysis") {
			runConstructors(pass)
		}
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case isPkgFunc(pass, call, "errors", "New"):
				pass.Reportf(call.Pos(),
					"errors.New at the public boundary starts a kindless error chain: wrap an errs sentinel with fmt.Errorf(..., %%w)")
			case isPkgFunc(pass, call, "fmt", "Errorf"):
				if format, known := constFormat(pass, call); known && !strings.Contains(format, "%w") {
					pass.Reportf(call.Pos(),
						"fmt.Errorf without %%w at the public boundary: wrap the cause or an errs sentinel so errors.Is can classify it")
				}
			}
			return true
		})
	}
	return nil
}

// runConstructors applies the internal-package rule: exported functions and
// methods must not directly return a kindless error construction. Only
// direct `return errors.New(...)` / `return fmt.Errorf(no %w)(...)` shapes
// are flagged — sentinel definitions and locally-consumed errors stay free.
func runConstructors(pass *framework.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				// Skip function literals: errors they return flow wherever
				// the closure goes, which this syntactic rule cannot track.
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false
				}
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, res := range ret.Results {
					call, ok := ast.Unparen(res).(*ast.CallExpr)
					if !ok {
						continue
					}
					switch {
					case isPkgFunc(pass, call, "errors", "New"):
						pass.Reportf(call.Pos(),
							"exported %s returns a kindless errors.New chain: wrap an errs sentinel with fmt.Errorf(..., %%w) so the public boundary can classify it", fd.Name.Name)
					case isPkgFunc(pass, call, "fmt", "Errorf"):
						if format, known := constFormat(pass, call); known && !strings.Contains(format, "%w") {
							pass.Reportf(call.Pos(),
								"exported %s returns fmt.Errorf without %%w: wrap the cause or an errs sentinel so the public boundary can classify it", fd.Name.Name)
						}
					}
				}
				return true
			})
		}
	}
}

// isPkgFunc reports whether call invokes pkg.name, resolved through the
// type info (import aliases included).
func isPkgFunc(pass *framework.Pass, call *ast.CallExpr, pkg, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == pkg
}

// constFormat extracts the constant format string of a fmt.Errorf call.
func constFormat(pass *framework.Pass, call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
