// Package ctxpub exercises ctxflow outside the library prefix: the public
// package may run legacy wrappers on a background context (the documented
// bridge), but still may not discard an in-scope caller context.
package ctxpub

import "context"

// Run is the context-aware entry point.
func Run(ctx context.Context, n int) error {
	return ctx.Err()
}

// Legacy delegates with a background context; no caller ctx is in scope
// and this is not a library package, so it is allowed.
func Legacy(n int) error {
	return Run(context.Background(), n)
}

// Shadowing discards the caller's context even here.
func Shadowing(ctx context.Context, n int) error {
	_ = ctx.Err()
	return Run(context.Background(), n) // want `context.Background\(\) discards the in-scope ctx parameter "ctx"`
}
