// Package ctxa exercises the ctxflow analyzer inside a library package
// (import path under rankcube/internal/), where minting fresh contexts is
// forbidden outside the nil-fallback shape.
package ctxa

import (
	"context"
	"time"
)

type config struct {
	ctx context.Context // want `context.Context stored in a struct field`
}

// blessed carries a context with a documented lifetime argument: the
// //lint:ctxfield marker suppresses the field-stash finding.
type blessed struct {
	//lint:ctxfield fixture: per-call carrier
	ctx context.Context
}

// StashParam stores the caller's ctx in a field — a write, which is the
// field's purpose and must stay clean (the declaration already carries the
// finding).
func StashParam(ctx context.Context) *blessed {
	b := &blessed{}
	b.ctx = ctx
	return b
}

// StaleRead reads the stashed context while a live caller ctx is in scope.
func StaleRead(ctx context.Context, b *blessed) error {
	_ = ctx.Err()
	return Threaded(b.ctx) // want `reading stashed context field b.ctx while a caller ctx parameter is in scope`
}

// StashRead reads the stash with no caller ctx in scope: that is what the
// stash is for.
func StashRead(b *blessed) error {
	return Threaded(b.ctx)
}

// Threaded consults its ctx: no findings.
func Threaded(ctx context.Context) error {
	return ctx.Err()
}

// Dropped accepts a ctx it never consults.
func Dropped(ctx context.Context, n int) int { // want `ctx parameter "ctx" is accepted but never consulted`
	return n + 1
}

// Blank explicitly discards its context: allowed.
func Blank(_ context.Context, n int) int {
	return n + 1
}

// Mint discards the caller's context for a fresh one.
func Mint(ctx context.Context) error {
	_ = ctx.Err()
	return Threaded(context.Background()) // want `context.Background\(\) discards the in-scope ctx parameter "ctx"`
}

// MintTODO is the same hazard spelled TODO, inside a closure whose
// enclosing function owns the ctx.
func MintTODO(ctx context.Context) func() error {
	_ = ctx.Err()
	return func() error {
		return Threaded(context.TODO()) // want `context.TODO\(\) discards the in-scope ctx parameter "ctx"`
	}
}

// NilFallback is the one blessed Background shape: replacing a context the
// caller declined to provide.
func NilFallback(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return Threaded(ctx)
}

// ConfigFallback defaults a config-carried context through a local: also
// the fallback shape (plain assignment to an existing context variable).
func ConfigFallback(c config) error {
	ctx := c.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	return Threaded(ctx)
}

// LibraryMint mints a context with no caller context anywhere in scope —
// forbidden in library packages.
func LibraryMint() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second) // want `context.Background\(\) in a library package`
	defer cancel()
	return Threaded(ctx)
}

// LitDropped exercises the dropped-parameter check on function literals.
func LitDropped() int {
	f := func(ctx context.Context, n int) int { // want `ctx parameter "ctx" is accepted but never consulted`
		return n * 2
	}
	return f(nil, 3)
}
