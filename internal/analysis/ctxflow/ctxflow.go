// Package ctxflow enforces context discipline in the query engines.
//
// The governor (internal/governor) is the engines' only cancellation and
// budget mechanism, and it sees exactly the context the caller passed in.
// Two bug shapes silently disconnect a query from its caller:
//
//   - minting a fresh context (context.Background / context.TODO) while a
//     caller-supplied ctx is in scope, so downstream work ignores the
//     caller's deadline; and
//   - accepting a ctx parameter and never consulting it, so the signature
//     promises cancellation the implementation does not deliver.
//
// The analyzer flags both. The one blessed Background() shape is the
// documented nil-fallback, a plain assignment to an existing context
// variable (`if ctx == nil { ctx = context.Background() }`): it replaces a
// context the caller declined to provide rather than discarding one.
// Library packages (rankcube/internal/...) may not mint fresh contexts at
// all outside that shape; the public root package's legacy wrappers (TopK
// delegating to TopKCtx) are the documented bridge and remain allowed.
//
// A third bug shape hides a context in a struct: a context.Context struct
// field outlives the call that stored it, so cancellation silently follows
// the stale stashed context instead of the live caller. Library packages
// may not declare such fields without a `//lint:ctxfield <reason>` marker
// naming why the stash is scoped correctly (the query governor's
// per-query carrier is the exemplar). Reading a stashed context while a
// caller's ctx parameter is in scope is flagged unconditionally — that is
// the stale-context bug in the act, and the fix is to use the parameter.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rankcube/internal/analysis/framework"
)

// Analyzer enforces context threading in *Ctx entry points and library
// packages.
var Analyzer = &framework.Analyzer{
	Name: "ctxflow",
	Doc: "forbids context.Background()/context.TODO() where a caller context is in scope " +
		"(or anywhere in library packages, nil-fallback assignments excepted), flags " +
		"ctx parameters that are accepted but never consulted, and flags contexts " +
		"stashed in struct fields (mark //lint:ctxfield <reason>) or read from a field " +
		"while a caller ctx is in scope",
	Run: run,
}

// FieldMarker is the justification marker for a context.Context struct
// field whose lifetime is argued sound (e.g. a strictly per-query carrier).
const FieldMarker = "ctxfield"

const libraryPrefix = "rankcube/internal/"

func run(pass *framework.Pass) error {
	library := strings.HasPrefix(pass.Pkg.Path(), libraryPrefix)
	for _, file := range pass.Files {
		checkMints(pass, file, library)
		checkDroppedParams(pass, file)
		if library {
			checkCtxFields(pass, file)
		}
		checkFieldReads(pass, file)
	}
	return nil
}

// checkCtxFields flags context.Context struct fields in library packages:
// a stashed context outlives the call that stored it. The //lint:ctxfield
// marker on the field documents the cases whose lifetime is sound.
func checkCtxFields(pass *framework.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		for _, field := range st.Fields.List {
			tv, ok := pass.TypesInfo.Types[field.Type]
			if !ok || !framework.IsNamed(tv.Type, "context", "Context") {
				continue
			}
			if pass.Marked(field, FieldMarker) {
				continue
			}
			pass.Reportf(field.Pos(),
				"context.Context stored in a struct field outlives the call that stored it: pass ctx as a parameter, or mark //lint:ctxfield <reason>")
		}
		return true
	})
}

// checkFieldReads flags reads of a stashed context field inside a function
// that has its own ctx parameter: the live caller context must win over
// whatever was stored earlier. Writes (stashing the parameter) are the
// field's purpose and stay allowed.
func checkFieldReads(pass *framework.Pass, file *ast.File) {
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal ||
			!framework.IsNamed(selection.Obj().Type(), "context", "Context") {
			return true
		}
		if isAssignTarget(stack, sel) || enclosingCtxParam(pass, stack) == nil {
			return true
		}
		if pass.Marked(sel, FieldMarker) {
			return true
		}
		pass.Reportf(sel.Pos(),
			"reading stashed context field %s while a caller ctx parameter is in scope: use the parameter (the stash may be stale), or mark //lint:ctxfield <reason>",
			types.ExprString(sel))
		return true
	})
}

// isAssignTarget reports whether sel is a left-hand side of its enclosing
// assignment (a write to the field, not a read of the stash).
func isAssignTarget(stack []ast.Node, sel *ast.SelectorExpr) bool {
	if len(stack) < 2 {
		return false
	}
	assign, ok := stack[len(stack)-2].(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range assign.Lhs {
		if ast.Unparen(lhs) == sel {
			return true
		}
	}
	return false
}

// checkMints walks file tracking the enclosing-node stack and reports
// context.Background/TODO calls that discard an in-scope caller context
// (or, in library packages, mint one outside the nil-fallback shape).
func checkMints(pass *framework.Pass, file *ast.File, library bool) {
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok || !isContextMint(pass, call) {
			return true
		}
		name := ast.Unparen(call.Fun).(*ast.SelectorExpr).Sel.Name
		if ctxParam := enclosingCtxParam(pass, stack); ctxParam != nil {
			if !isNilFallback(pass, stack, call, func(obj types.Object) bool { return obj == ctxParam }) {
				pass.Reportf(call.Pos(),
					"context.%s() discards the in-scope ctx parameter %q: thread the caller's context through", name, ctxParam.Name())
			}
			return true
		}
		if library && !isNilFallback(pass, stack, call, func(obj types.Object) bool { return isContextVar(obj) }) {
			pass.Reportf(call.Pos(),
				"context.%s() in a library package: accept a ctx from the caller instead of minting one", name)
		}
		return true
	})
}

// isContextMint reports whether call is context.Background() or
// context.TODO(), resolved through the type info (aliases included).
func isContextMint(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "context"
}

// enclosingCtxParam returns the context.Context parameter of the innermost
// enclosing function that declares one, or nil.
func enclosingCtxParam(pass *framework.Pass, stack []ast.Node) *types.Var {
	for i := len(stack) - 1; i >= 0; i-- {
		var ft *ast.FuncType
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			ft = fn.Type
		case *ast.FuncLit:
			ft = fn.Type
		default:
			continue
		}
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				if obj, ok := pass.TypesInfo.Defs[name].(*types.Var); ok && isContextVar(obj) {
					return obj
				}
			}
		}
	}
	return nil
}

// isNilFallback reports whether call is the right-hand side of a plain
// assignment (`=`, not `:=`) to a variable accepted by ok — the
// conventional `if ctx == nil { ctx = context.Background() }` shape.
func isNilFallback(pass *framework.Pass, stack []ast.Node, call *ast.CallExpr, ok func(types.Object) bool) bool {
	if len(stack) < 2 {
		return false
	}
	assign, isAssign := stack[len(stack)-2].(*ast.AssignStmt)
	if !isAssign || assign.Tok != token.ASSIGN {
		return false
	}
	for i, rhs := range assign.Rhs {
		if ast.Unparen(rhs) != call || i >= len(assign.Lhs) {
			continue
		}
		if ident, isIdent := assign.Lhs[i].(*ast.Ident); isIdent && ok(pass.TypesInfo.Uses[ident]) {
			return true
		}
	}
	return false
}

// isContextVar reports whether obj is a variable of type context.Context.
func isContextVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && framework.IsNamed(v.Type(), "context", "Context")
}

// checkDroppedParams flags named context parameters that the function body
// never consults.
func checkDroppedParams(pass *framework.Pass, file *ast.File) {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		for _, field := range fn.Type.Params.List {
			for _, name := range field.Names {
				if name.Name == "_" {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
				if !ok || !isContextVar(obj) {
					continue
				}
				if !usesObject(pass, fn.Body, obj) {
					pass.Reportf(name.Pos(),
						"ctx parameter %q is accepted but never consulted: thread it into governed calls or rename it _", name.Name)
				}
			}
		}
	}
	// Function literals assigned to variables share the same hazard.
	ast.Inspect(file, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				if name.Name == "_" {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
				if !ok || !isContextVar(obj) {
					continue
				}
				if !usesObject(pass, lit.Body, obj) {
					pass.Reportf(name.Pos(),
						"ctx parameter %q is accepted but never consulted: thread it into governed calls or rename it _", name.Name)
				}
			}
		}
		return true
	})
}

// usesObject reports whether any identifier under node resolves to obj.
func usesObject(pass *framework.Pass, node ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if ident, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[ident] == obj {
			found = true
		}
		return !found
	})
	return found
}
