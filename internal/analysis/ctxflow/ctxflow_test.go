package ctxflow_test

import (
	"testing"

	"rankcube/internal/analysis/analysistest"
	"rankcube/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxflow.Analyzer,
		"rankcube/internal/ctxa",
		"ctxpub",
	)
}
