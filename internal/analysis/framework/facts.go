package framework

// Facts, in the go/analysis sense: durable observations one package's
// analysis exports so the analysis of downstream packages can consult them.
// The canonical use is atomicmix — "this struct field is accessed via
// sync/atomic" is established where the atomic call lives and must be
// visible from every package that touches the field.
//
// Unlike the upstream framework, facts are never serialized: the loader
// type-checks every analyzed package in one process against one shared
// types universe, so a fact can be keyed directly on the types.Object
// identity and looked up from any later package. The driver runs packages
// in dependency order (go list -deps order), which means facts flow
// strictly forward: a package sees facts exported by its dependencies, not
// by its dependents — the same visibility rule the upstream modular
// drivers guarantee.

import (
	"go/types"
	"reflect"
)

// A Fact is an analyzer-defined datum attached to an object or package.
// Concrete fact types must be pointers, and implement AFact as a marker.
// Each analyzer sees only its own facts: the driver gives every analyzer a
// private FactStore.
type Fact interface{ AFact() }

type objFactKey struct {
	obj types.Object
	typ reflect.Type
}

type pkgFactKey struct {
	pkg *types.Package
	typ reflect.Type
}

// A FactStore carries one analyzer's facts across the packages of a run.
// It is not safe for concurrent use; the driver runs packages serially (in
// dependency order) per analyzer.
type FactStore struct {
	obj map[objFactKey]Fact
	pkg map[pkgFactKey]Fact
}

// NewFactStore returns an empty fact store.
func NewFactStore() *FactStore {
	return &FactStore{
		obj: make(map[objFactKey]Fact),
		pkg: make(map[pkgFactKey]Fact),
	}
}

// factType validates a fact's dynamic type (a non-nil pointer) and returns
// its reflect key.
func factType(fact Fact) reflect.Type {
	t := reflect.TypeOf(fact)
	if t == nil || t.Kind() != reflect.Pointer {
		//lint:invariant analyzer bug, not input-dependent: fact types are fixed at compile time
		panic("framework: facts must be pointers")
	}
	return t
}

// ExportObjectFact associates fact with obj for the rest of the analyzer's
// run. Overwrites any previous fact of the same type on the same object.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil || p.Facts == nil {
		return
	}
	p.Facts.obj[objFactKey{obj, factType(fact)}] = fact
}

// ImportObjectFact copies the fact of fact's type previously exported for
// obj (by this package or any already-analyzed dependency) into fact and
// reports whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil || p.Facts == nil {
		return false
	}
	stored, ok := p.Facts.obj[objFactKey{obj, factType(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// ExportPackageFact associates fact with the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.Pkg == nil || p.Facts == nil {
		return
	}
	p.Facts.pkg[pkgFactKey{p.Pkg, factType(fact)}] = fact
}

// ImportPackageFact copies the fact of fact's type previously exported for
// pkg into fact and reports whether one existed.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	if pkg == nil || p.Facts == nil {
		return false
	}
	stored, ok := p.Facts.pkg[pkgFactKey{pkg, factType(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}
