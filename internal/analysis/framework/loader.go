package framework

// Package loading without golang.org/x/tools/go/packages: file discovery
// is delegated to `go list -deps -export -json` (which resolves build
// constraints, import maps, and GOROOT vendoring, emits packages in
// dependency order, and — with -export — materializes each dependency's
// compiler export data in the go build cache), and only the packages
// under analysis are parsed and type-checked from source. Dependencies,
// in particular the entire standard-library closure, are imported from
// their export data via the standard gc importer.
//
// The go build cache keys export data by toolchain version and build
// inputs, so it doubles as rankvet's per-toolchain type-information
// cache: the first run after a toolchain change compiles export data
// once, and every later run reads it back in microseconds per package
// instead of re-type-checking the stdlib from source (~1.4s per
// invocation before this scheme). Source type-checking remains as the
// fallback for any package the go tool cannot produce export data for,
// so cold-run correctness is unchanged.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string // export data file in the build cache, via -export
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// LoadStats describes where one loader's type information came from — the
// driver surfaces it so loader regressions (export cache misses turning
// into stdlib re-type-checks) are visible in CI logs.
type LoadStats struct {
	// ListTime is the wall clock spent in `go list -deps -export` calls
	// (where the build cache is consulted or populated).
	ListTime time.Duration
	// CheckTime is the wall clock spent parsing and type-checking source.
	CheckTime time.Duration
	// FromExport counts packages whose types were imported from cached
	// compiler export data (cache hits — no source involved).
	FromExport int
	// FromSource counts packages parsed and type-checked from source: the
	// packages under analysis, fixture overlays, and any dependency the go
	// tool produced no export data for (cache misses).
	FromSource int
}

// Loader type-checks the packages under analysis from source and imports
// everything else from compiler export data, caching results so every
// package is materialized at most once per process.
type Loader struct {
	fset  *token.FileSet
	dir   string // working directory for `go list`
	sizes types.Sizes
	typed map[string]*types.Package
	meta  map[string]*listedPkg
	exp   map[string]string // import path → export data file
	pkgs  map[string]*Package
	gcimp types.Importer // lazily-built gc export data importer
	stats LoadStats
}

// NewLoader returns a loader that runs `go list` in dir ("" = process cwd).
func NewLoader(dir string) *Loader {
	return &Loader{
		fset:  token.NewFileSet(),
		dir:   dir,
		sizes: types.SizesFor("gc", runtime.GOARCH),
		typed: map[string]*types.Package{"unsafe": types.Unsafe},
		meta:  make(map[string]*listedPkg),
		exp:   make(map[string]string),
		pkgs:  make(map[string]*Package),
	}
}

// Fset exposes the loader's shared file set for position rendering.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Stats reports where this loader's type information came from so far.
func (l *Loader) Stats() LoadStats { return l.stats }

// Load lists patterns with the go tool and returns the matched
// (non-dependency-only) packages with full syntax and type information, in
// dependency order — a package always follows its matched dependencies, so
// a driver iterating in order sees facts flow forward. Dependencies
// outside the match are imported from export data on demand and never
// parsed.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, err := l.goList(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly {
			continue // imported lazily, from export data when available
		}
		tp, err := l.check(lp)
		if err != nil {
			return nil, err
		}
		out = append(out, tp)
	}
	return out, nil
}

// goList runs `go list -deps -export -json` (cgo disabled, so pure-Go
// fallback files are selected and everything type-checks from source when
// the fallback path is taken) and returns the packages in the tool's
// dependency-first order.
func (l *Loader) goList(patterns []string) ([]*listedPkg, error) {
	start := time.Now()
	defer func() { l.stats.ListTime += time.Since(start) }()
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("go list: %v", err)
	}
	dec := json.NewDecoder(outPipe)
	var listed []*listedPkg
	for {
		lp := new(listedPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		listed = append(listed, lp)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	for _, lp := range listed {
		l.meta[lp.ImportPath] = lp
		if lp.Export != "" {
			l.exp[lp.ImportPath] = lp.Export
		}
	}
	return listed, nil
}

// gcImporter returns the shared gc export-data importer, resolving export
// files through the loader's `go list -export` results. One importer
// instance serves the whole process so every export-imported package has a
// single identity.
func (l *Loader) gcImporter() types.Importer {
	if l.gcimp == nil {
		l.gcimp = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
			file, ok := l.exp[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			rc, err := os.Open(file)
			if err == nil {
				l.stats.FromExport++
			}
			return rc, err
		})
	}
	return l.gcimp
}

// importPkg materializes the types of one dependency: previously loaded
// packages first, then compiler export data, then — as the cold-path
// fallback — source type-checking from the go list metadata.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if tp, ok := l.typed[path]; ok {
		return tp, nil
	}
	if _, ok := l.exp[path]; ok {
		tp, err := l.gcImporter().Import(path)
		if err == nil {
			l.typed[path] = tp
			return tp, nil
		}
		// Unreadable export data (pruned build cache): fall through to the
		// source path below rather than failing the run.
	}
	lp, ok := l.meta[path]
	if !ok {
		return nil, fmt.Errorf("package %s not listed", path)
	}
	pkg, err := l.check(lp)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

// check parses and type-checks one listed package from source, resolving
// its imports through importPkg.
func (l *Loader) check(lp *listedPkg) (*Package, error) {
	if lp.Error != nil {
		return nil, fmt.Errorf("go list %s: %s", lp.ImportPath, lp.Error.Err)
	}
	if pkg, ok := l.pkgs[lp.ImportPath]; ok {
		return pkg, nil
	}
	start := time.Now()
	defer func() { l.stats.CheckTime += time.Since(start) }()
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if mapped, ok := lp.ImportMap[path]; ok {
				path = mapped
			}
			return l.importPkg(path)
		}),
		Sizes: l.sizes,
	}
	tpkg, err := conf.Check(lp.ImportPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	l.stats.FromSource++
	l.typed[lp.ImportPath] = tpkg
	pkg := &Package{Path: lp.ImportPath, Name: tpkg.Name(), Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[lp.ImportPath] = pkg
	return pkg, nil
}

// LoadOverlay type-checks the package rooted at srcRoot/path, resolving
// imports first against srcRoot (GOPATH-style fixture trees: the directory
// srcRoot/<import path> holds the package) and otherwise against the real
// standard library (export data first, source as fallback). It is the
// loading mode of the analysistest harness. Results are cached: loading
// the same fixture path twice returns the same *Package.
func (l *Loader) LoadOverlay(srcRoot, path string) (*Package, error) {
	return l.loadOverlay(srcRoot, path, make(map[string]bool))
}

func (l *Loader) loadOverlay(srcRoot, path string, loading map[string]bool) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(srcRoot, filepath.FromSlash(path))
	names, err := overlayFiles(dir)
	if err != nil {
		return nil, err
	}
	if loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	loading[path] = true
	defer delete(loading, path)

	start := time.Now()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: importerFunc(func(imp string) (*types.Package, error) {
			return l.resolve(srcRoot, imp, loading)
		}),
		Sizes: l.sizes,
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	l.stats.CheckTime += time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %v", path, err)
	}
	l.stats.FromSource++
	l.typed[path] = tpkg
	pkg := &Package{Path: path, Name: tpkg.Name(), Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// resolve satisfies an import from a fixture: overlay directories win, then
// previously loaded packages, then export data (listed on demand through
// the go tool), then source as the fallback of importPkg.
func (l *Loader) resolve(srcRoot, path string, loading map[string]bool) (*types.Package, error) {
	if tp, ok := l.typed[path]; ok {
		return tp, nil
	}
	if names, err := overlayFiles(filepath.Join(srcRoot, filepath.FromSlash(path))); err == nil && len(names) > 0 {
		pkg, err := l.loadOverlay(srcRoot, path, loading)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if _, ok := l.meta[path]; !ok {
		if _, err := l.goList([]string{path}); err != nil {
			return nil, fmt.Errorf("import %q: not in fixture tree and %v", path, err)
		}
	}
	return l.importPkg(path)
}

// overlayFiles lists the non-test .go files of a fixture directory.
func overlayFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return names, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
