package framework

// Package loading without golang.org/x/tools/go/packages: file discovery is
// delegated to `go list -deps -json` (which resolves build constraints,
// import maps, and GOROOT vendoring, and emits packages in dependency
// order), and type checking is done from source with go/types. Export data
// is never consulted, so the loader works in a hermetic build environment
// with an empty module cache.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Loader type-checks packages from source, caching results so shared
// dependencies (in particular the standard library closure) are checked
// once per process.
type Loader struct {
	fset  *token.FileSet
	dir   string // working directory for `go list`
	sizes types.Sizes
	typed map[string]*types.Package
	meta  map[string]*listedPkg
}

// NewLoader returns a loader that runs `go list` in dir ("" = process cwd).
func NewLoader(dir string) *Loader {
	return &Loader{
		fset:  token.NewFileSet(),
		dir:   dir,
		sizes: types.SizesFor("gc", runtime.GOARCH),
		typed: make(map[string]*types.Package),
		meta:  make(map[string]*listedPkg),
	}
}

// Fset exposes the loader's shared file set for position rendering.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load lists patterns with the go tool and type-checks the matched packages
// and their dependency closure, returning the matched (non-dependency-only)
// packages with full syntax and type information, sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, err := l.goList(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, lp := range listed {
		tp, err := l.check(lp, !lp.DepOnly)
		if err != nil {
			return nil, err
		}
		if tp != nil {
			out = append(out, tp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// goList runs `go list -deps -json` (cgo disabled, so pure-Go fallback
// files are selected and everything type-checks from source) and returns
// the packages in the tool's dependency-first order.
func (l *Loader) goList(patterns []string) ([]*listedPkg, error) {
	args := append([]string{"list", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("go list: %v", err)
	}
	dec := json.NewDecoder(outPipe)
	var listed []*listedPkg
	for {
		lp := new(listedPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		listed = append(listed, lp)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	for _, lp := range listed {
		l.meta[lp.ImportPath] = lp
	}
	return listed, nil
}

// check type-checks one listed package (dependencies must already be in the
// cache — guaranteed by go list's output order). It returns a *Package only
// when keep is set; dependency-only packages cache their types and drop
// their syntax.
func (l *Loader) check(lp *listedPkg, keep bool) (*Package, error) {
	if lp.Error != nil {
		return nil, fmt.Errorf("go list %s: %s", lp.ImportPath, lp.Error.Err)
	}
	if _, done := l.typed[lp.ImportPath]; done && !keep {
		return nil, nil
	}
	if lp.ImportPath == "unsafe" {
		l.typed["unsafe"] = types.Unsafe
		return nil, nil
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if mapped, ok := lp.ImportMap[path]; ok {
				path = mapped
			}
			dep, ok := l.typed[path]
			if !ok {
				return nil, fmt.Errorf("package %s not loaded (wanted by %s)", path, lp.ImportPath)
			}
			return dep, nil
		}),
		Sizes: l.sizes,
	}
	tpkg, err := conf.Check(lp.ImportPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	l.typed[lp.ImportPath] = tpkg
	if !keep {
		return nil, nil
	}
	return &Package{Path: lp.ImportPath, Name: tpkg.Name(), Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// LoadOverlay type-checks the package rooted at srcRoot/path, resolving
// imports first against srcRoot (GOPATH-style fixture trees: the directory
// srcRoot/<import path> holds the package) and otherwise against the real
// standard library. It is the loading mode of the analysistest harness.
func (l *Loader) LoadOverlay(srcRoot, path string) (*Package, error) {
	return l.loadOverlay(srcRoot, path, make(map[string]bool))
}

func (l *Loader) loadOverlay(srcRoot, path string, loading map[string]bool) (*Package, error) {
	dir := filepath.Join(srcRoot, filepath.FromSlash(path))
	names, err := overlayFiles(dir)
	if err != nil {
		return nil, err
	}
	if loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	loading[path] = true
	defer delete(loading, path)

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: importerFunc(func(imp string) (*types.Package, error) {
			return l.resolve(srcRoot, imp, loading)
		}),
		Sizes: l.sizes,
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %v", path, err)
	}
	l.typed[path] = tpkg
	return &Package{Path: path, Name: tpkg.Name(), Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// resolve satisfies an import from a fixture: overlay directories win, then
// the cache, then the standard library (loaded on demand through go list).
func (l *Loader) resolve(srcRoot, path string, loading map[string]bool) (*types.Package, error) {
	if tp, ok := l.typed[path]; ok {
		return tp, nil
	}
	if names, err := overlayFiles(filepath.Join(srcRoot, filepath.FromSlash(path))); err == nil && len(names) > 0 {
		pkg, err := l.loadOverlay(srcRoot, path, loading)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	listed, err := l.goList([]string{path})
	if err != nil {
		return nil, fmt.Errorf("import %q: not in fixture tree and %v", path, err)
	}
	for _, lp := range listed {
		if _, err := l.check(lp, false); err != nil {
			return nil, err
		}
	}
	tp, ok := l.typed[path]
	if !ok {
		return nil, fmt.Errorf("import %q: not resolved", path)
	}
	return tp, nil
}

// overlayFiles lists the non-test .go files of a fixture directory.
func overlayFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return names, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
