// Package framework is a minimal, dependency-free implementation of the
// golang.org/x/tools/go/analysis model: an Analyzer holds a Run function
// that inspects one type-checked package (a Pass) and reports Diagnostics.
//
// The build environment of this repository is hermetic — no module proxy —
// so x/tools cannot be vendored; this package mirrors its API shape
// (Analyzer, Pass, Reportf) closely enough that the analyzers in the
// sibling packages can be ported to the real framework mechanically if the
// dependency ever becomes available. Only the subset the rankvet suite
// needs is implemented: no facts, no modular analysis, no SSA.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant check. Name appears in diagnostics;
// Doc is the one-paragraph rationale shown by `rankvet help`.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass presents one type-checked package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver fills in the Analyzer
	// field and aggregates across packages.
	Report func(Diagnostic)

	// markers caches per-file //lint: markers, built on first use.
	markers map[*ast.File]map[int]string
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// MarkerPrefix introduces a suppression/justification marker comment:
// `//lint:<name> <reason>`. Markers are deliberately per-line — a marker
// blesses exactly one statement, never a region.
const MarkerPrefix = "lint:"

// Marked reports whether node carries the given //lint:<name> marker: a
// marker comment on the node's line, or one whose comment group ends on
// the line immediately above (the conventional placement).
func (p *Pass) Marked(node ast.Node, name string) bool {
	file := p.FileOf(node)
	if file == nil {
		return false
	}
	if p.markers == nil {
		p.markers = make(map[*ast.File]map[int]string)
	}
	byLine, ok := p.markers[file]
	if !ok {
		byLine = make(map[int]string)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, MarkerPrefix) {
					continue
				}
				marker := strings.TrimPrefix(text, MarkerPrefix)
				if i := strings.IndexAny(marker, " \t"); i >= 0 {
					marker = marker[:i]
				}
				byLine[p.Fset.Position(c.Pos()).Line] = marker
			}
		}
		p.markers[file] = byLine
	}
	line := p.Fset.Position(node.Pos()).Line
	return byLine[line] == name || byLine[line-1] == name
}

// FileOf returns the *ast.File of the pass containing node, or nil.
func (p *Pass) FileOf(node ast.Node) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= node.Pos() && node.Pos() < f.FileEnd {
			return f
		}
	}
	return nil
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// IsNamed reports whether t (after pointer indirection) is the named type
// pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
