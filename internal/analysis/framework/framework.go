// Package framework is a minimal, dependency-free implementation of the
// golang.org/x/tools/go/analysis model: an Analyzer holds a Run function
// that inspects one type-checked package (a Pass) and reports Diagnostics.
//
// The build environment of this repository is hermetic — no module proxy —
// so x/tools cannot be vendored; this package mirrors its API shape
// (Analyzer, Pass, Reportf, object/package facts) closely enough that the
// analyzers in the sibling packages can be ported to the real framework
// mechanically if the dependency ever becomes available. Beyond the
// original subset, the framework now carries in-memory facts (facts.go)
// for cross-package propagation and loads dependency type information
// from compiler export data (loader.go) instead of re-type-checking the
// standard library from source on every run.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant check. Name appears in diagnostics;
// Doc is the one-paragraph rationale shown by `rankvet help`.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass presents one type-checked package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is the analyzer's private cross-package fact store, shared by
	// every pass of the same analyzer within one driver run. Nil disables
	// fact propagation (the Import/Export methods become no-ops).
	Facts *FactStore

	// Report delivers one diagnostic. The driver fills in the Analyzer
	// field and aggregates across packages.
	Report func(Diagnostic)

	// markers caches the per-file marker index, built on first use.
	markers map[*ast.File][]markedNode
}

// NewPass assembles a pass over pkg for a. The driver and the analysistest
// harness both construct passes through here so the fact store and report
// sink are wired uniformly.
func NewPass(a *Analyzer, pkg *Package, facts *FactStore, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Facts:     facts,
		Report:    report,
	}
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// MarkerPrefix introduces a suppression/justification marker comment:
// `//lint:<name> <reason>`. A marker blesses exactly one statement (or
// struct field / declaration spec), never a region.
const MarkerPrefix = "lint:"

// markedNode is one marker attachment: the AST node a //lint: comment is
// bound to, and the marker's name.
type markedNode struct {
	node ast.Node
	name string
}

// Marked reports whether node carries the given //lint:<name> marker.
//
// Markers are attached to AST nodes, not source lines: each //lint:
// comment is bound — via ast.NewCommentMap, i.e. the standard trailing- or
// doc-comment association — to the statement (or struct field, or
// declaration spec) it documents, and a node is Marked when an attached
// statement spans it. Reformatting that moves a statement across lines
// therefore cannot detach its marker: the comment travels with the
// statement in the AST, wherever the statement's text lands. The flagged
// call deep inside a multi-line statement is still blessed by the marker
// on the statement itself.
func (p *Pass) Marked(node ast.Node, name string) bool {
	file := p.FileOf(node)
	if file == nil {
		return false
	}
	for _, m := range p.markerIndex(file) {
		if m.name != name {
			continue
		}
		if m.node.Pos() <= node.Pos() && node.Pos() < m.node.End() {
			return true
		}
	}
	return false
}

// markerIndex builds (once per file) the list of marker attachments:
// every //lint: comment in the file, bound to its associated statement,
// field, or spec.
func (p *Pass) markerIndex(file *ast.File) []markedNode {
	if p.markers == nil {
		p.markers = make(map[*ast.File][]markedNode)
	}
	if idx, ok := p.markers[file]; ok {
		return idx
	}
	idx := []markedNode{}
	cmap := ast.NewCommentMap(p.Fset, file, file.Comments)
	for node, groups := range cmap {
		if !markerAttachable(node) {
			continue
		}
		for _, cg := range groups {
			for _, c := range cg.List {
				if name, ok := markerName(c.Text); ok {
					idx = append(idx, markedNode{node: node, name: name})
				}
			}
		}
	}
	p.markers[file] = idx
	return idx
}

// markerAttachable reports whether a marker may bind to node: statements,
// struct fields, and declaration specs (a `var x = …` group). Broader
// nodes — whole functions, whole files — are deliberately excluded so a
// marker can never bless a region.
func markerAttachable(node ast.Node) bool {
	switch node.(type) {
	case ast.Stmt, *ast.Field, ast.Spec, *ast.GenDecl:
		return true
	}
	return false
}

// markerName extracts the marker name of a `//lint:<name> <reason>`
// comment, reporting ok=false for non-marker comments.
func markerName(comment string) (string, bool) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	if !strings.HasPrefix(text, MarkerPrefix) {
		return "", false
	}
	name := strings.TrimPrefix(text, MarkerPrefix)
	if i := strings.IndexAny(name, " \t"); i >= 0 {
		name = name[:i]
	}
	return name, name != ""
}

// FileOf returns the *ast.File of the pass containing node, or nil.
func (p *Pass) FileOf(node ast.Node) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= node.Pos() && node.Pos() < f.FileEnd {
			return f
		}
	}
	return nil
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// IsNamed reports whether t (after pointer indirection) is the named type
// pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
