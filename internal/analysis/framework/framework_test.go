package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parsePass builds a types-free Pass over src — Marked consults only the
// file set and syntax, so no type checking is needed.
func parsePass(t *testing.T, src string) *Pass {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "marked.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return &Pass{Analyzer: &Analyzer{Name: "test"}, Fset: fset, Files: []*ast.File{file}}
}

// callNamed finds the call whose single argument is the integer literal
// arg — a stable way to address specific calls in fixture source.
func callNamed(t *testing.T, p *Pass, arg string) *ast.CallExpr {
	t.Helper()
	var found *ast.CallExpr
	ast.Inspect(p.Files[0], func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Value == arg {
			found = call
		}
		return true
	})
	if found == nil {
		t.Fatalf("no call with argument %s", arg)
	}
	return found
}

// TestMarkerSurvivesReformat is the regression for the line-based marker
// scheme this framework replaced: the marked statement is spread over
// several lines, so the flagged call sits two lines below the marker
// comment. A marker matched by line number would miss it; the AST-attached
// marker travels with the statement regardless of how gofmt lays it out.
func TestMarkerSurvivesReformat(t *testing.T) {
	p := parsePass(t, `package p

func f() int {
	//lint:demo the whole statement is blessed
	x :=
		g(1) +
			g(2)
	y := g(3)
	return x + y
}

func g(n int) int { return n }
`)
	blessed := callNamed(t, p, "1")
	if line := p.Fset.Position(blessed.Pos()).Line; line != 6 {
		t.Fatalf("fixture drifted: g(1) on line %d, want 6 (two below the marker)", line)
	}
	if !p.Marked(blessed, "demo") {
		t.Errorf("g(1) two lines below its statement's marker is not Marked — marker did not travel with the statement")
	}
	if !p.Marked(callNamed(t, p, "2"), "demo") {
		t.Errorf("g(2) inside the marked statement is not Marked")
	}
	if p.Marked(callNamed(t, p, "3"), "demo") {
		t.Errorf("g(3) in the next statement is Marked — marker leaked past its statement")
	}
}

// TestMarkerDoesNotBlessRegion: a //lint: comment sitting as a function's
// doc comment attaches to the declaration, which is not an attachable
// marker node — it must not bless every statement in the body.
func TestMarkerDoesNotBlessRegion(t *testing.T) {
	p := parsePass(t, `package p

//lint:demo this must not bless the whole function
func f() int {
	return g(1)
}

func g(n int) int { return n }
`)
	if p.Marked(callNamed(t, p, "1"), "demo") {
		t.Errorf("call inside a function whose doc comment carries a marker is Marked — markers must not bless regions")
	}
}

// TestMarkerNameScoping: a marker only answers for its own name, and
// malformed markers (bare prefix) attach to nothing.
func TestMarkerNameScoping(t *testing.T) {
	p := parsePass(t, `package p

func f() int {
	//lint:other justified for a different analyzer
	a := g(1)
	//lint:
	b := g(2)
	return a + b
}

func g(n int) int { return n }
`)
	if p.Marked(callNamed(t, p, "1"), "demo") {
		t.Errorf("marker name %q answered for %q", "other", "demo")
	}
	if !p.Marked(callNamed(t, p, "1"), "other") {
		t.Errorf("marker does not answer for its own name")
	}
	if p.Marked(callNamed(t, p, "2"), "") {
		t.Errorf("nameless marker comment attached")
	}
}
