// Package analysis hosts rankvet, the repository's custom static-analysis
// suite. It mechanically enforces the safety invariants the robustness
// layer depends on, so they hold by construction rather than by review:
//
//   - rawpanic: no raw panic outside internal/errs. Recoverable faults
//     travel as typed aborts (errs.Abort/Abortf) so the public API boundary
//     can convert them to errors; programmer-error assertions that should
//     crash carry a //lint:invariant <reason> marker.
//   - ctxflow: context flows down from the caller. Library packages
//     (rankcube/internal/...) must not mint context.Background() or
//     context.TODO(), and neither may any function that already has a
//     context in scope — except the blessed nil-fallback assignment
//     `ctx = context.Background()`. A named context parameter that the
//     body never consults is also flagged (rename it _ if truly unused).
//   - governedio: every page read is charged to the query governor.
//     Store.ReadRaw, and governed accessors called with a nil counter,
//     bypass budget/cancellation enforcement and are flagged unless marked
//     //lint:ungoverned <reason> (legitimate for size accounting and
//     rebuild bookkeeping).
//   - errwrap: errors created in the public root package must %w-wrap a
//     typed sentinel so callers can errors.Is them against the exported
//     taxonomy; bare errors.New / unwrapped fmt.Errorf are flagged.
//
// Markers are ordinary comments placed on the flagged line or the line
// directly above it, spelled //lint:<name> <reason>. The reason is
// mandatory in spirit: it is the reviewable justification for the
// exemption.
//
// The suite is self-hosted: subpackage framework reimplements the minimal
// Analyzer/Pass/Diagnostic surface of golang.org/x/tools/go/analysis
// (unvendorable in this environment) and loads packages via
// `go list -deps -json` plus go/types. Subpackage analysistest runs an
// analyzer over GOPATH-style fixture trees under testdata/src and checks
// diagnostics against `// want "regexp"` comments, mirroring the upstream
// analysistest contract — including failing on unmatched want comments, so
// every fixture proves its analyzer actually fires.
//
// cmd/rankvet is the driver; `make lint` (folded into `make check`) runs
// it over ./... and fails the build on any finding.
package analysis
