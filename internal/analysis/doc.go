// Package analysis hosts rankvet, the repository's custom static-analysis
// suite. It mechanically enforces the safety invariants the robustness and
// concurrent-serving layers depend on, so they hold by construction rather
// than by review:
//
//   - rawpanic: no raw panic outside internal/errs. Recoverable faults
//     travel as typed aborts (errs.Abort/Abortf) so the public API boundary
//     can convert them to errors; programmer-error assertions that should
//     crash carry a //lint:invariant <reason> marker.
//   - ctxflow: context flows down from the caller. Library packages
//     (rankcube/internal/...) must not mint context.Background() or
//     context.TODO(), and neither may any function that already has a
//     context in scope — except the blessed nil-fallback assignment
//     `ctx = context.Background()`. A named context parameter that the
//     body never consults is flagged (rename it _ if truly unused), as is
//     a context stashed in a struct field without a //lint:ctxfield
//     <reason> marker, or read back from a field while a live caller ctx
//     is in scope.
//   - governedio: every page read is charged to the query governor.
//     Store.ReadRaw, and governed accessors called with a nil counter,
//     bypass budget/cancellation enforcement and are flagged unless marked
//     //lint:ungoverned <reason> (legitimate for size accounting and
//     rebuild bookkeeping).
//   - errwrap: errors created in the public root package must %w-wrap a
//     typed sentinel so callers can errors.Is them against the exported
//     taxonomy; bare errors.New / unwrapped fmt.Errorf are flagged.
//   - lockorder: direct (*guard.RW).Lock/RLock must be released by an
//     immediately following defer (engine faults travel as panics — a
//     non-deferred release is one storage fault from wedging the cube),
//     a frame may lock at most one control directly (multi-control
//     operations go through guard.AcquireShared/LockExclusive, which
//     enforce the global ID order), and the release closures those
//     helpers return must be consumed. Marker: //lint:lockorder.
//   - scanleak: every *rankcube.GovernedScanner must reach Close on all
//     paths, or escape to a party that will close it — an open scan holds
//     a serving slot, and a leaked one starves Drain and maintenance.
//     Marker: //lint:scanleak.
//   - atomicmix: a struct field accessed via sync/atomic anywhere may not
//     be read or written plainly anywhere else. The atomic use is recorded
//     as a fact on the field's object, so the plain access is caught even
//     in a different package. Marker: //lint:atomicmix (typed atomics are
//     the better fix).
//
// Markers are ordinary //lint:<name> <reason> comments attached to the
// statement (or struct field, or declaration spec) they document, via the
// standard doc/trailing comment association. Attachment is by AST node,
// not source line: reformatting a statement across lines moves the marker
// with it, and a marker can never bless a region broader than one
// statement. The reason is mandatory in spirit: it is the reviewable
// justification for the exemption.
//
// The suite is self-hosted: subpackage framework reimplements the minimal
// Analyzer/Pass/Diagnostic/facts surface of golang.org/x/tools/go/analysis
// (unvendorable in this environment). Packages under analysis are
// type-checked from source in dependency order — so each analyzer's
// in-memory object facts flow strictly forward, dependency to dependent —
// while the dependency cone (the stdlib closure above all) is imported
// from compiler export data materialized by `go list -deps -export` in the
// go build cache. That cache is keyed per toolchain, which makes it
// rankvet's type-information cache too: a warm run skips stdlib
// type-checking entirely (`rankvet -stats` shows the hit/miss split).
// Subpackage analysistest runs an analyzer over GOPATH-style fixture trees
// under testdata/src and checks diagnostics against `// want "regexp"`
// comments, mirroring the upstream analysistest contract — including
// failing on unmatched want comments, so every fixture proves its analyzer
// actually fires; one fact store spans the listed fixture packages so
// cross-package propagation is testable.
//
// cmd/rankvet is the driver; `make lint` (folded into `make check`) runs
// it over ./... with -stats and fails the build on any finding, and
// `make lint-json` emits one JSON object per finding for tooling.
package analysis
