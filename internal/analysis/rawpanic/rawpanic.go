// Package rawpanic flags calls to the builtin panic outside internal/errs.
//
// PR 6 made "no panic escapes the public API" a hard invariant: engine
// faults travel as typed aborts (errs.Abortf) that the API boundary
// recovers into errors the taxonomy can classify. A raw panic defeats that
// classification — it surfaces as a generic ErrInternal at best, and as a
// process crash from any un-governed entry point. The only legitimate raw
// panics are programmer-error assertions (corrupted in-memory state,
// violated preconditions that no input can trigger); those must carry a
// `//lint:invariant <reason>` marker on or directly above the call so the
// justification is reviewable.
package rawpanic

import (
	"go/ast"
	"go/types"

	"rankcube/internal/analysis/framework"
)

// errsPath is the one package whose panics ARE the abort mechanism.
const errsPath = "rankcube/internal/errs"

// Marker is the justification marker accepted on assertion panics.
const Marker = "invariant"

// Analyzer flags raw panic calls outside internal/errs.
var Analyzer = &framework.Analyzer{
	Name: "rawpanic",
	Doc: "flags panic(...) outside internal/errs: recoverable fault paths must use " +
		"errs.Abortf so the API boundary can classify them; programmer-error assertions " +
		"must carry a //lint:invariant marker",
	Run: run,
}

func run(pass *framework.Pass) error {
	if pass.Pkg.Path() == errsPath {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			ident, ok := call.Fun.(*ast.Ident)
			if !ok || ident.Name != "panic" {
				return true
			}
			// A local declaration may shadow the builtin; only the real
			// builtin is a fault-path hazard.
			if obj, ok := pass.TypesInfo.Uses[ident].(*types.Builtin); !ok || obj.Name() != "panic" {
				return true
			}
			if pass.Marked(call, Marker) {
				return true
			}
			pass.Reportf(call.Pos(),
				"raw panic outside internal/errs: use errs.Abortf for recoverable faults, or mark the assertion //lint:invariant <reason>")
			return true
		})
	}
	return nil
}
