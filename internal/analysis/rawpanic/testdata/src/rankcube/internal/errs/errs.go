// Package errs stubs the abort machinery: its panics ARE the typed-abort
// mechanism and are exempt from the rawpanic analyzer.
package errs

type abort struct{ err error }

// Abort unwinds the current query with a typed panic.
func Abort(err error) {
	panic(abort{err: err})
}
