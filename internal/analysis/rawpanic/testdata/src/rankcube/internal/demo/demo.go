// Package demo exercises the rawpanic analyzer: unmarked panics fire,
// marked assertions and shadowed identifiers do not.
package demo

import "fmt"

// explode is the recoverable-fault shape the analyzer exists to catch.
func Explode(err error) {
	if err != nil {
		panic(err) // want `raw panic outside internal/errs`
	}
}

// Formatted panics are equally flagged.
func Unsupported(op string) {
	panic(fmt.Sprintf("demo: unsupported op %q", op)) // want `raw panic outside internal/errs`
}

// AssertPositive is a programmer-error assertion: the marker above the call
// suppresses the finding.
func AssertPositive(n int) {
	if n < 0 {
		//lint:invariant n is validated by every public constructor
		panic(fmt.Sprintf("demo: negative %d", n))
	}
}

// InlineMarker shows the trailing-comment marker placement.
func InlineMarker() {
	panic("demo: unreachable") //lint:invariant documented to be unreachable
}

// WrongMarker carries an unrelated marker and still fires.
func WrongMarker() {
	//lint:ungoverned not the right marker for panics
	panic("demo: wrong marker") // want `raw panic outside internal/errs`
}

// Shadowed calls a local function named panic, not the builtin.
func Shadowed() {
	panic := func(v any) { _ = v }
	panic("not the builtin")
}
