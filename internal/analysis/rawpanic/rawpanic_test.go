package rawpanic_test

import (
	"testing"

	"rankcube/internal/analysis/analysistest"
	"rankcube/internal/analysis/rawpanic"
)

func TestRawPanic(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), rawpanic.Analyzer,
		"rankcube/internal/demo",
		"rankcube/internal/errs",
	)
}
