// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against `// want "regexp"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live in a GOPATH-style tree: <testdata>/src/<import path>/*.go.
// Imports resolve first against that tree (so fixtures can stub repository
// packages such as rankcube/internal/pager under their real import paths)
// and then against the actual standard library, type-checked from source.
//
// A `// want "re"` comment asserts that the analyzer reports a diagnostic
// on that line matching the regexp; multiple quoted regexps assert multiple
// diagnostics. Diagnostics without a matching want, and wants without a
// matching diagnostic, both fail the test.
package analysistest

import (
	"fmt"
	"go/scanner"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"rankcube/internal/analysis/framework"
)

// shared caches standard-library type checking across Run calls within one
// test binary. Fixture trees are per-analyzer-package, and each analyzer's
// tests run in their own binary, so cross-tree collisions cannot occur.
var (
	mu     sync.Mutex
	shared = framework.NewLoader("")
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		//lint:invariant test harness setup: Abs fails only if the process cwd is gone
		panic(err)
	}
	return dir
}

// Run loads each fixture package from <testdata>/src/<path>, applies the
// analyzer, and checks its diagnostics against the fixtures' want
// comments.
//
// One fact store spans all listed paths, mirroring the driver: list a
// fixture's dependency before its dependent and facts the analyzer exports
// on the dependency are visible when the dependent is analyzed.
func Run(t *testing.T, testdata string, a *framework.Analyzer, paths ...string) {
	t.Helper()
	srcRoot := filepath.Join(testdata, "src")
	mu.Lock()
	defer mu.Unlock()
	facts := framework.NewFactStore()
	for _, path := range paths {
		pkg, err := shared.LoadOverlay(srcRoot, path)
		if err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			continue
		}
		diags, err := runOne(pkg, a, facts)
		if err != nil {
			t.Errorf("%s on %s: %v", a.Name, path, err)
			continue
		}
		checkWants(t, pkg, diags)
	}
}

func runOne(pkg *framework.Package, a *framework.Analyzer, facts *framework.FactStore) ([]framework.Diagnostic, error) {
	var diags []framework.Diagnostic
	pass := framework.NewPass(a, pkg, facts, func(d framework.Diagnostic) { diags = append(diags, d) })
	return diags, a.Run(pass)
}

// want is one expectation: a regexp on a file line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// checkWants cross-checks diagnostics against the fixture's expectations.
func checkWants(t *testing.T, pkg *framework.Package, diags []framework.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, file := range pkg.Files {
		name := pkg.Fset.Position(file.Pos()).Filename
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				for _, expr := range splitQuoted(strings.TrimPrefix(text, "want ")) {
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", name, line, expr, err)
						continue
					}
					wants = append(wants, &want{file: name, line: line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d:%d: unexpected diagnostic: %s%s",
				pos.Filename, pos.Line, pos.Column, d.Message, nearestWant(wants, pos))
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// nearestWant describes the unmatched expectation closest to pos in the
// same file, so an off-by-one-line or regexp-mismatch failure points
// straight at the expectation it was probably meant to satisfy.
func nearestWant(wants []*want, pos token.Position) string {
	var best *want
	bestDist := -1
	for _, w := range wants {
		if w.matched || w.file != pos.Filename {
			continue
		}
		dist := w.line - pos.Line
		if dist < 0 {
			dist = -dist
		}
		if best == nil || dist < bestDist {
			best, bestDist = w, dist
		}
	}
	if best == nil {
		return ""
	}
	return fmt.Sprintf(" (nearest unmatched want at line %d: %q)", best.line, best.re)
}

// splitQuoted extracts the double-quoted regexp literals of a want comment.
func splitQuoted(s string) []string {
	var out []string
	var sc scanner.Scanner
	fset := token.NewFileSet()
	f := fset.AddFile("want", fset.Base(), len(s))
	sc.Init(f, []byte(s), nil, 0)
	for {
		_, tok, lit := sc.Scan()
		if tok == token.EOF {
			break
		}
		if tok == token.STRING {
			if unq, err := strconv.Unquote(lit); err == nil {
				out = append(out, unq)
			}
		}
	}
	if len(out) == 0 {
		// A bare unquoted pattern is accepted for convenience.
		if trimmed := strings.TrimSpace(s); trimmed != "" {
			out = append(out, trimmed)
		}
	}
	return out
}
