package analysis

import (
	"sort"
	"time"

	"rankcube/internal/analysis/atomicmix"
	"rankcube/internal/analysis/ctxflow"
	"rankcube/internal/analysis/errwrap"
	"rankcube/internal/analysis/framework"
	"rankcube/internal/analysis/governedio"
	"rankcube/internal/analysis/lockorder"
	"rankcube/internal/analysis/rawpanic"
	"rankcube/internal/analysis/scanleak"
)

// Suite returns the rankvet analyzers in reporting order.
func Suite() []*framework.Analyzer {
	return []*framework.Analyzer{
		rawpanic.Analyzer,
		ctxflow.Analyzer,
		governedio.Analyzer,
		errwrap.Analyzer,
		lockorder.Analyzer,
		scanleak.Analyzer,
		atomicmix.Analyzer,
	}
}

// Timing is one analyzer's share of a Run, for the driver's -stats output.
type Timing struct {
	Analyzer string
	Duration time.Duration
	Findings int
}

// Run applies every analyzer in the suite to each package and returns the
// aggregated diagnostics sorted by source position, plus per-analyzer
// timings. pkgs must be in dependency order (as Loader.Load returns them):
// each analyzer gets a private fact store and visits the packages in that
// order, so facts it exports while analyzing a dependency are visible when
// it reaches the dependents.
func Run(pkgs []*framework.Package, analyzers []*framework.Analyzer) ([]framework.Diagnostic, []Timing, error) {
	var diags []framework.Diagnostic
	timings := make([]Timing, len(analyzers))
	for i, a := range analyzers {
		timings[i].Analyzer = a.Name
		facts := framework.NewFactStore()
		start := time.Now()
		for _, pkg := range pkgs {
			n := len(diags)
			pass := framework.NewPass(a, pkg, facts, func(d framework.Diagnostic) { diags = append(diags, d) })
			if err := a.Run(pass); err != nil {
				return nil, nil, err
			}
			timings[i].Findings += len(diags) - n
		}
		timings[i].Duration = time.Since(start)
	}
	if len(pkgs) > 0 {
		fset := pkgs[0].Fset
		sort.SliceStable(diags, func(i, j int) bool {
			pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			return pi.Column < pj.Column
		})
	}
	return diags, timings, nil
}
