package analysis

import (
	"sort"

	"rankcube/internal/analysis/ctxflow"
	"rankcube/internal/analysis/errwrap"
	"rankcube/internal/analysis/framework"
	"rankcube/internal/analysis/governedio"
	"rankcube/internal/analysis/rawpanic"
)

// Suite returns the rankvet analyzers in reporting order.
func Suite() []*framework.Analyzer {
	return []*framework.Analyzer{
		rawpanic.Analyzer,
		ctxflow.Analyzer,
		governedio.Analyzer,
		errwrap.Analyzer,
	}
}

// Run applies every analyzer in the suite to each package and returns the
// aggregated diagnostics sorted by source position.
func Run(pkgs []*framework.Package, analyzers []*framework.Analyzer) ([]framework.Diagnostic, error) {
	var diags []framework.Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &framework.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d framework.Diagnostic) { diags = append(diags, d) }
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	}
	if len(pkgs) > 0 {
		fset := pkgs[0].Fset
		sort.SliceStable(diags, func(i, j int) bool {
			pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			return pi.Column < pj.Column
		})
	}
	return diags, nil
}
