package heap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHeapPopsInOrder(t *testing.T) {
	h := New[int](func(a, b int) bool { return a < b })
	vals := []int{5, 3, 8, 1, 9, 2, 7, 4, 6, 0}
	for _, v := range vals {
		h.Push(v)
	}
	if h.Peak() != len(vals) {
		t.Fatalf("Peak = %d, want %d", h.Peak(), len(vals))
	}
	for want := 0; want < len(vals); want++ {
		if got := h.Pop(); got != want {
			t.Fatalf("Pop = %d, want %d", got, want)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d after draining", h.Len())
	}
}

func TestHeapMinMatchesPop(t *testing.T) {
	h := New[float64](func(a, b float64) bool { return a < b })
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		h.Push(rng.Float64())
	}
	for h.Len() > 0 {
		min := h.Min()
		if got := h.Pop(); got != min {
			t.Fatalf("Min = %v but Pop = %v", min, got)
		}
	}
}

func TestHeapPropertySorted(t *testing.T) {
	f := func(vals []int16) bool {
		h := New[int16](func(a, b int16) bool { return a < b })
		for _, v := range vals {
			h.Push(v)
		}
		var out []int16
		for h.Len() > 0 {
			out = append(out, h.Pop())
		}
		if len(out) != len(vals) {
			return false
		}
		return sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeapReset(t *testing.T) {
	h := New[int](func(a, b int) bool { return a < b })
	h.Push(3)
	h.Push(1)
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len = %d after Reset", h.Len())
	}
	if h.Peak() != 2 {
		t.Fatalf("Peak = %d after Reset, want preserved 2", h.Peak())
	}
	h.Push(5)
	if h.Min() != 5 {
		t.Fatalf("Min = %d after Reset+Push", h.Min())
	}
}

func TestBoundedKeepsKSmallest(t *testing.T) {
	b := NewBounded[int](3, func(a, x int) bool { return a > x })
	for _, v := range []int{9, 1, 8, 2, 7, 3, 6, 4, 5} {
		b.Offer(v)
	}
	got := b.Sorted()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Sorted len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted = %v, want %v", got, want)
		}
	}
}

func TestBoundedPropertyMatchesSort(t *testing.T) {
	f := func(vals []int32, kraw uint8) bool {
		k := int(kraw%10) + 1
		b := NewBounded[int32](k, func(a, x int32) bool { return a > x })
		for _, v := range vals {
			b.Offer(v)
		}
		got := b.Sorted()
		sorted := append([]int32(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		if k > len(sorted) {
			k = len(sorted)
		}
		if len(got) != k {
			return false
		}
		for i := 0; i < k; i++ {
			if got[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedZeroK(t *testing.T) {
	b := NewBounded[int](0, func(a, x int) bool { return a > x })
	if b.Offer(1) {
		t.Fatal("Offer accepted into k=0 heap")
	}
	if b.Full() {
		// A k=0 heap is trivially full; either convention is fine as long
		// as it never retains elements.
		t.Log("k=0 heap reports full")
	}
	if b.Len() != 0 {
		t.Fatalf("Len = %d for k=0 heap", b.Len())
	}
}

func TestBoundedWorstIsKthBest(t *testing.T) {
	b := NewBounded[int](4, func(a, x int) bool { return a > x })
	for v := 100; v > 0; v-- {
		b.Offer(v)
		if b.Full() {
			all := append([]int(nil), b.Items()...)
			sort.Ints(all)
			if b.Worst() != all[len(all)-1] {
				t.Fatalf("Worst = %d, want %d", b.Worst(), all[len(all)-1])
			}
		}
	}
	if b.Worst() != 4 {
		t.Fatalf("final Worst = %d, want 4", b.Worst())
	}
}
