// Package heap provides a small generic binary min-heap used by the query
// processors (top-k heaps, candidate heaps, local expansion heaps).
//
// The standard library container/heap forces an interface-based API with
// per-element boxing; the query algorithms in this repository maintain many
// short-lived heaps on hot paths, so a concrete generic implementation is
// used instead.
package heap

// Heap is a binary min-heap ordered by the provided less function.
// The zero value is not usable; construct with New.
type Heap[T any] struct {
	items []T
	less  func(a, b T) bool
	peak  int
}

// New returns an empty heap ordered by less (a min-heap when less reports
// strict "a orders before b").
func New[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// Len reports the number of elements currently in the heap.
func (h *Heap[T]) Len() int { return len(h.items) }

// Peak reports the maximum size the heap has reached over its lifetime.
// The thesis reports "peak candidate heap size" for several figures.
func (h *Heap[T]) Peak() int { return h.peak }

// Push adds v to the heap.
func (h *Heap[T]) Push(v T) {
	h.items = append(h.items, v)
	h.up(len(h.items) - 1)
	if len(h.items) > h.peak {
		h.peak = len(h.items)
	}
}

// Pop removes and returns the minimum element. It panics if the heap is
// empty; callers guard with Len.
func (h *Heap[T]) Pop() T {
	n := len(h.items)
	top := h.items[0]
	h.items[0] = h.items[n-1]
	var zero T
	h.items[n-1] = zero
	h.items = h.items[:n-1]
	if len(h.items) > 0 {
		h.down(0)
	}
	return top
}

// Min returns the minimum element without removing it. It panics if the heap
// is empty.
func (h *Heap[T]) Min() T { return h.items[0] }

// Reset empties the heap, retaining allocated capacity. The peak counter is
// preserved so that reuse across query phases still reports a lifetime peak.
func (h *Heap[T]) Reset() {
	var zero T
	for i := range h.items {
		h.items[i] = zero
	}
	h.items = h.items[:0]
}

// Items returns the underlying slice in heap order (not sorted). The slice
// is owned by the heap; callers must not modify it. It is exposed for
// candidate-heap reuse in drill-down/roll-up query processing (thesis §7.2.4).
func (h *Heap[T]) Items() []T { return h.items }

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(h.items[l], h.items[small]) {
			small = l
		}
		if r < n && h.less(h.items[r], h.items[small]) {
			small = r
		}
		if small == i {
			return
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
}

// Bounded is a fixed-capacity max-heap used to maintain "current best k"
// result sets: it keeps the k smallest scores seen, with the worst of them
// at the root so it can be evicted in O(log k).
type Bounded[T any] struct {
	items []T
	k     int
	worse func(a, b T) bool // true when a is worse (orders after) b
}

// NewBounded returns a result heap retaining the k best elements under the
// given "worse" ordering (worse(a,b) == true means a should be evicted
// before b).
func NewBounded[T any](k int, worse func(a, b T) bool) *Bounded[T] {
	if k < 0 {
		k = 0
	}
	return &Bounded[T]{k: k, worse: worse}
}

// Len reports how many elements are retained.
func (b *Bounded[T]) Len() int { return len(b.items) }

// Full reports whether k elements are retained.
func (b *Bounded[T]) Full() bool { return len(b.items) >= b.k }

// Worst returns the current worst retained element (the kth best so far).
// It panics when empty.
func (b *Bounded[T]) Worst() T { return b.items[0] }

// Offer considers v for membership. It returns true when v was retained
// (possibly evicting the previous worst).
func (b *Bounded[T]) Offer(v T) bool {
	if b.k == 0 {
		return false
	}
	if len(b.items) < b.k {
		b.items = append(b.items, v)
		b.up(len(b.items) - 1)
		return true
	}
	if b.worse(v, b.items[0]) {
		return false
	}
	b.items[0] = v
	b.down(0)
	return true
}

// Sorted drains the heap and returns the retained elements ordered best
// first. The heap is empty afterwards.
func (b *Bounded[T]) Sorted() []T {
	out := make([]T, len(b.items))
	for i := len(b.items) - 1; i >= 0; i-- {
		out[i] = b.popWorst()
	}
	return out
}

// Items returns the retained elements in internal heap order. The slice is
// owned by the heap; callers must not modify it.
func (b *Bounded[T]) Items() []T { return b.items }

func (b *Bounded[T]) popWorst() T {
	n := len(b.items)
	top := b.items[0]
	b.items[0] = b.items[n-1]
	var zero T
	b.items[n-1] = zero
	b.items = b.items[:n-1]
	if len(b.items) > 0 {
		b.down(0)
	}
	return top
}

func (b *Bounded[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !b.worse(b.items[i], b.items[parent]) {
			return
		}
		b.items[i], b.items[parent] = b.items[parent], b.items[i]
		i = parent
	}
}

func (b *Bounded[T]) down(i int) {
	n := len(b.items)
	for {
		l, r := 2*i+1, 2*i+2
		w := i
		if l < n && b.worse(b.items[l], b.items[w]) {
			w = l
		}
		if r < n && b.worse(b.items[r], b.items[w]) {
			w = r
		}
		if w == i {
			return
		}
		b.items[i], b.items[w] = b.items[w], b.items[i]
		i = w
	}
}
