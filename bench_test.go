// Benchmarks: one testing.B target per table/figure of the thesis'
// evaluation (DESIGN.md §3 maps ids to figures). Each benchmark exercises
// the figure's query configuration against shared fixtures of moderate
// size; the full parameter sweeps with all competitor series are produced
// by cmd/rankbench (see EXPERIMENTS.md).
package rankcube_test

import (
	"sync"
	"testing"

	"rankcube"

	"rankcube/internal/baselines"
	"rankcube/internal/bench"
	"rankcube/internal/btree"
	"rankcube/internal/core"
	"rankcube/internal/dataset"
	"rankcube/internal/gridcube"
	"rankcube/internal/hindex"
	"rankcube/internal/indexmerge"
	"rankcube/internal/joinquery"
	"rankcube/internal/ranking"
	"rankcube/internal/rtree"
	"rankcube/internal/sigcube"
	"rankcube/internal/skyline"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

const benchRows = 100_000

// ---------------------------------------------------------------------------
// Shared fixtures (built once)
// ---------------------------------------------------------------------------

var (
	gridOnce sync.Once
	gridTb   *table.Table
	gridCube *gridcube.Cube
	gridFrag *gridcube.Cube
	gridBL   *baselines.BooleanFirst
	gridRM   *baselines.RankMapping
)

func gridFixture() {
	gridOnce.Do(func() {
		gridTb = dataset.Synthetic(benchRows, 3, 2, 20, table.Uniform, 1)
		gridCube = gridcube.Build(gridTb, gridcube.Config{})
		h := baselines.NewHeapFile(gridTb, 0)
		gridBL = baselines.NewBooleanFirst(h)
		gridRM = baselines.NewRankMapping(gridTb, 0)
		fragTb := dataset.Synthetic(benchRows, 12, 2, 20, table.Uniform, 1)
		gridFrag = gridcube.Build(fragTb, gridcube.Config{FragmentSize: 2})
	})
}

var (
	sigOnce  sync.Once
	sigTb    *table.Table
	sigCube  *sigcube.Cube
	sigRF    *baselines.RankingFirst
	sigBool  *baselines.BooleanFirst
	sigHeap  *baselines.HeapFile
	skylEng  *skyline.Engine
	sigCond  core.Cond
	sigFuncs map[string]ranking.Func
)

func sigFixture() {
	sigOnce.Do(func() {
		sigTb = dataset.Synthetic(benchRows, 3, 3, 100, table.Uniform, 2)
		sigCube = sigcube.Build(sigTb, sigcube.Config{})
		sigHeap = baselines.NewHeapFile(sigTb, 0)
		sigBool = baselines.NewBooleanFirst(sigHeap)
		sigRF = baselines.NewRankingFirst(sigHeap, sigCube.Tree().(*rtree.Tree))
		skylEng = skyline.NewEngine(sigCube)
		sigCond = core.Cond{0: 7}
		sigFuncs = map[string]ranking.Func{
			"linear":   ranking.Linear([]int{0, 1, 2}, []float64{1, 2, 0.5}),
			"distance": ranking.SqDist([]int{0, 1, 2}, []float64{0.3, 0.6, 0.9}),
			"general": ranking.General(ranking.Sqr(ranking.Sub(
				ranking.Scale(2, ranking.Var(0)),
				ranking.Add(ranking.Var(1), ranking.Var(2))))),
		}
	})
}

var (
	mergeOnce sync.Once
	mergeTb   *table.Table
	mergeIdx  []hindex.Index
	mergeJS   *indexmerge.JoinSignature
	merge3Idx []hindex.Index
	merge3JS  *indexmerge.JoinSignature
	merge3Pp  *indexmerge.PairwisePruner
)

func mergeFixture() {
	mergeOnce.Do(func() {
		mergeTb = dataset.Synthetic(benchRows, 1, 3, 2, table.Uniform, 3)
		dom := ranking.UnitBox(3)
		mergeIdx = []hindex.Index{
			btree.Build(mergeTb, 0, dom, btree.Config{}),
			btree.Build(mergeTb, 1, dom, btree.Config{}),
		}
		var err error
		mergeJS, err = indexmerge.BuildJoinSignature(mergeIdx, mergeTb.Len(), indexmerge.JoinSigConfig{})
		if err != nil {
			panic(err)
		}
		merge3Idx = []hindex.Index{
			mergeIdx[0], mergeIdx[1],
			btree.Build(mergeTb, 2, dom, btree.Config{}),
		}
		merge3JS, err = indexmerge.BuildJoinSignature(merge3Idx, mergeTb.Len(), indexmerge.JoinSigConfig{})
		if err != nil {
			panic(err)
		}
		pairs := map[[2]int]*indexmerge.JoinSignature{}
		for _, pr := range [][2]int{{0, 1}, {0, 2}, {1, 2}} {
			js, err := indexmerge.BuildJoinSignature(
				[]hindex.Index{merge3Idx[pr[0]], merge3Idx[pr[1]]}, mergeTb.Len(), indexmerge.JoinSigConfig{})
			if err != nil {
				panic(err)
			}
			pairs[pr] = js
		}
		merge3Pp = &indexmerge.PairwisePruner{Pairs: pairs}
	})
}

var (
	joinOnce sync.Once
	joinR1   *joinquery.Relation
	joinR2   *joinquery.Relation
)

func joinFixture() {
	joinOnce.Do(func() {
		t1, t2, k1, k2 := dataset.JoinPair(benchRows/2, 2, 2, 10, 1000, 4)
		c1 := sigcube.Build(t1, sigcube.Config{})
		c2 := sigcube.Build(t2, sigcube.Config{})
		joinR1 = joinquery.NewRelation("R1", t1, c1, k1, 1000)
		joinR2 = joinquery.NewRelation("R2", t2, c2, k2, 1000)
	})
}

// mergeFs is the fs query of §5.4.2 over the two-index fixture.
func mergeFs(i int) ranking.Func {
	t := float64(i%10) / 10
	return ranking.SqDist([]int{0, 1}, []float64{t, 1 - t})
}

func mergeFg() ranking.Func {
	return ranking.General(ranking.Sqr(ranking.Sub(ranking.Var(0), ranking.Sqr(ranking.Var(1)))))
}

func mergeFc(i int) ranking.Func {
	lo := float64(i%7) / 10
	return ranking.Constrained(ranking.Sum(0, 1), 1, lo, lo+0.2)
}

// ---------------------------------------------------------------------------
// Chapter 3 — grid ranking cube
// ---------------------------------------------------------------------------

func gridQuery(b *testing.B, cube *gridcube.Cube, cond core.Cond, f ranking.Func, k int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := cube.TopK(gridcube.Query{Cond: cond, F: f, K: k}, stats.New()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3_04_RankingCube_K10(b *testing.B) {
	gridFixture()
	b.ResetTimer()
	gridQuery(b, gridCube, core.Cond{0: 1, 1: 2}, ranking.Sum(0, 1), 10)
}

func BenchmarkFig3_04_RankMapping_K10(b *testing.B) {
	gridFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gridRM.TopK(core.Cond{0: 1, 1: 2}, ranking.Sum(0, 1), 10, stats.New())
	}
}

func BenchmarkFig3_04_Baseline_K10(b *testing.B) {
	gridFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gridBL.TopK(core.Cond{0: 1, 1: 2}, ranking.Sum(0, 1), 10, stats.New())
	}
}

func BenchmarkFig3_05_Skewness(b *testing.B) {
	gridFixture()
	b.ResetTimer()
	gridQuery(b, gridCube, core.Cond{0: 1, 1: 2}, ranking.Linear([]int{0, 1}, []float64{1, 5}), 10)
}

func BenchmarkFig3_06_PartialRankingDims(b *testing.B) {
	gridFixture()
	b.ResetTimer()
	gridQuery(b, gridCube, core.Cond{0: 1}, ranking.Sum(0), 10)
}

func BenchmarkFig3_07_DatabaseSize(b *testing.B) {
	gridFixture()
	b.ResetTimer()
	gridQuery(b, gridCube, core.Cond{0: 3, 2: 4}, ranking.Sum(0, 1), 10)
}

func BenchmarkFig3_08_Cardinality(b *testing.B) {
	gridFixture()
	b.ResetTimer()
	gridQuery(b, gridCube, core.Cond{1: 19}, ranking.Sum(0, 1), 10)
}

func BenchmarkFig3_09_SelectionConditions(b *testing.B) {
	gridFixture()
	b.ResetTimer()
	gridQuery(b, gridCube, core.Cond{0: 1, 1: 2, 2: 3}, ranking.Sum(0, 1), 10)
}

func BenchmarkFig3_10_BlockSize(b *testing.B) {
	gridFixture()
	b.ResetTimer()
	gridQuery(b, gridCube, core.Cond{0: 5}, ranking.Sum(0, 1), 10)
}

func BenchmarkFig3_11_FragmentSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := dataset.Synthetic(20_000, 6, 2, 20, table.Uniform, 1)
		cube := gridcube.Build(tb, gridcube.Config{FragmentSize: 2})
		if cube.SizeBytes() == 0 {
			b.Fatal("empty cube")
		}
	}
}

func BenchmarkFig3_12_CoveringFragments(b *testing.B) {
	gridFixture()
	b.ResetTimer()
	// Conditions spanning three 2-dim fragments.
	gridQuery(b, gridFrag, core.Cond{0: 1, 2: 2, 4: 3}, ranking.Sum(0, 1), 10)
}

func BenchmarkFig3_13_FragmentSize(b *testing.B) {
	gridFixture()
	b.ResetTimer()
	gridQuery(b, gridFrag, core.Cond{0: 1, 1: 2, 2: 3}, ranking.Sum(0, 1), 10)
}

func BenchmarkFig3_14_HighDimensions(b *testing.B) {
	gridFixture()
	b.ResetTimer()
	gridQuery(b, gridFrag, core.Cond{3: 1, 7: 2, 11: 3}, ranking.Sum(0, 1), 10)
}

func BenchmarkFig3_15_ForestCover(b *testing.B) {
	var once sync.Once
	var cube *gridcube.Cube
	once.Do(func() {
		tb := dataset.ForestCover(50_000, 1)
		cube = gridcube.Build(tb, gridcube.Config{FragmentSize: 3})
	})
	b.ResetTimer()
	gridQuery(b, cube, core.Cond{4: 1, 5: 1, 6: 0}, ranking.Sum(0, 1, 2), 10)
}

// ---------------------------------------------------------------------------
// Chapter 4 — signature ranking cube
// ---------------------------------------------------------------------------

func BenchmarkFig4_08_Construction(b *testing.B) {
	tb := dataset.Synthetic(20_000, 3, 3, 100, table.Uniform, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sigcube.Build(tb, sigcube.Config{})
	}
}

func BenchmarkFig4_09_MaterializedSize(b *testing.B) {
	sigFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sigCube.SizeBytes() == 0 {
			b.Fatal("empty cube")
		}
	}
}

func BenchmarkFig4_10_Compression(b *testing.B) {
	tb := dataset.Synthetic(20_000, 3, 3, 100, table.Uniform, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sigcube.Build(tb, sigcube.Config{BaselineCoding: i%2 == 1})
	}
}

func BenchmarkFig4_11_IncrementalInsert(b *testing.B) {
	tb := dataset.Synthetic(20_000, 3, 3, 100, table.Uniform, 2)
	cube := sigcube.Build(tb, sigcube.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cube.Insert([]int32{int32(i % 3), int32(i % 5), int32(i % 7)},
			[]float64{float64(i%97) / 97, float64(i%89) / 89, float64(i%83) / 83}, stats.New())
	}
}

func BenchmarkFig4_12_Signature_K10(b *testing.B) {
	sigFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sigCube.TopK(sigCond, sigFuncs["linear"], 10, stats.New()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4_12_Ranking_K10(b *testing.B) {
	sigFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sigRF.TopK(sigCond, sigFuncs["linear"], 10, stats.New())
	}
}

func BenchmarkFig4_12_Boolean_K10(b *testing.B) {
	sigFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sigBool.TopK(sigCond, sigFuncs["linear"], 10, stats.New())
	}
}

func BenchmarkFig4_13_GeneralFunction(b *testing.B) {
	sigFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sigCube.TopK(sigCond, sigFuncs["general"], 100, stats.New()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Chapter 5 — index merge
// ---------------------------------------------------------------------------

func benchMerge(b *testing.B, idx []hindex.Index, f func(int) ranking.Func, k int, opts indexmerge.Options) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := indexmerge.TopK(idx, f(i), k, opts, stats.New()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5_1_Basic(b *testing.B) {
	mergeFixture()
	b.ResetTimer()
	benchMerge(b, mergeIdx, func(int) ranking.Func { return mergeFg() }, 100,
		indexmerge.Options{Strategy: indexmerge.StrategyBL})
}

func BenchmarkTable5_1_Improved(b *testing.B) {
	mergeFixture()
	b.ResetTimer()
	benchMerge(b, mergeIdx, func(int) ranking.Func { return mergeFg() }, 100,
		indexmerge.Options{Pruner: mergeJS})
}

func BenchmarkFig5_07_Fs_PE(b *testing.B) {
	mergeFixture()
	b.ResetTimer()
	benchMerge(b, mergeIdx, mergeFs, 100, indexmerge.Options{})
}

func BenchmarkFig5_07_Fs_PESIG(b *testing.B) {
	mergeFixture()
	b.ResetTimer()
	benchMerge(b, mergeIdx, mergeFs, 100, indexmerge.Options{Pruner: mergeJS})
}

func BenchmarkFig5_08_Fg_PE(b *testing.B) {
	mergeFixture()
	b.ResetTimer()
	benchMerge(b, mergeIdx, func(int) ranking.Func { return mergeFg() }, 100, indexmerge.Options{})
}

func BenchmarkFig5_08_Fg_PESIG(b *testing.B) {
	mergeFixture()
	b.ResetTimer()
	benchMerge(b, mergeIdx, func(int) ranking.Func { return mergeFg() }, 100,
		indexmerge.Options{Pruner: mergeJS})
}

func BenchmarkFig5_09_Fc_PE(b *testing.B) {
	mergeFixture()
	b.ResetTimer()
	benchMerge(b, mergeIdx, mergeFc, 100, indexmerge.Options{})
}

func BenchmarkFig5_10_DiskAccess(b *testing.B) {
	mergeFixture()
	b.ResetTimer()
	benchMerge(b, mergeIdx, mergeFs, 100, indexmerge.Options{Pruner: mergeJS})
}

func BenchmarkFig5_11_StatesGenerated(b *testing.B) {
	mergeFixture()
	b.ResetTimer()
	benchMerge(b, mergeIdx, func(int) ranking.Func { return mergeFg() }, 100, indexmerge.Options{})
}

func BenchmarkFig5_12_PeakHeap(b *testing.B) {
	mergeFixture()
	b.ResetTimer()
	benchMerge(b, mergeIdx, mergeFc, 100, indexmerge.Options{})
}

func BenchmarkFig5_13_RealData(b *testing.B) {
	var once sync.Once
	var idx []hindex.Index
	once.Do(func() {
		tb := dataset.ForestCoverWide(50_000, 1)
		lo := make([]float64, 6)
		hi := make([]float64, 6)
		for d := 0; d < 6; d++ {
			lo[d], hi[d] = tb.RankDomain(d)
		}
		dom := ranking.NewBox(lo, hi)
		idx = []hindex.Index{
			rtree.Bulk(tb, []int{0, 1, 2}, dom, rtree.Config{}),
			rtree.Bulk(tb, []int{3, 4, 5}, dom, rtree.Config{}),
		}
	})
	f := ranking.SqDist([]int{0, 1, 2, 3, 4, 5}, []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5})
	b.ResetTimer()
	benchMerge(b, idx, func(int) ranking.Func { return f }, 100, indexmerge.Options{})
}

func BenchmarkFig5_14_RTreeMerge(b *testing.B) {
	var once sync.Once
	var idx []hindex.Index
	once.Do(func() {
		tb := dataset.Synthetic(50_000, 1, 4, 2, table.Uniform, 3)
		dom := ranking.UnitBox(4)
		idx = []hindex.Index{
			rtree.Bulk(tb, []int{0, 1}, dom, rtree.Config{}),
			rtree.Bulk(tb, []int{2, 3}, dom, rtree.Config{}),
		}
	})
	f := ranking.SqDist([]int{0, 1, 2, 3}, []float64{0.2, 0.4, 0.6, 0.8})
	b.ResetTimer()
	benchMerge(b, idx, func(int) ranking.Func { return f }, 100, indexmerge.Options{})
}

func BenchmarkFig5_15_ThreeWay_PE(b *testing.B) {
	mergeFixture()
	b.ResetTimer()
	f := ranking.SqDist([]int{0, 1, 2}, []float64{0.3, 0.5, 0.7})
	benchMerge(b, merge3Idx, func(int) ranking.Func { return f }, 50, indexmerge.Options{})
}

func BenchmarkFig5_16_ThreeWay_2dSIG(b *testing.B) {
	mergeFixture()
	b.ResetTimer()
	f := ranking.SqDist([]int{0, 1, 2}, []float64{0.3, 0.5, 0.7})
	benchMerge(b, merge3Idx, func(int) ranking.Func { return f }, 50, indexmerge.Options{Pruner: merge3Pp})
}

func BenchmarkFig5_17_ThreeWay_3dSIG(b *testing.B) {
	mergeFixture()
	b.ResetTimer()
	f := ranking.SqDist([]int{0, 1, 2}, []float64{0.3, 0.5, 0.7})
	benchMerge(b, merge3Idx, func(int) ranking.Func { return f }, 50, indexmerge.Options{Pruner: merge3JS})
}

func BenchmarkFig5_18_PartialAttrs(b *testing.B) {
	mergeFixture()
	b.ResetTimer()
	f := ranking.SqDist([]int{0}, []float64{0.4})
	benchMerge(b, mergeIdx, func(int) ranking.Func { return f }, 100, indexmerge.Options{})
}

func BenchmarkFig5_19_NodeSize(b *testing.B) {
	tb := dataset.Synthetic(50_000, 1, 2, 2, table.Uniform, 3)
	dom := ranking.UnitBox(2)
	idx := []hindex.Index{
		btree.Build(tb, 0, dom, btree.Config{PageSize: 1024}),
		btree.Build(tb, 1, dom, btree.Config{PageSize: 1024}),
	}
	b.ResetTimer()
	benchMerge(b, idx, mergeFs, 100, indexmerge.Options{})
}

func BenchmarkFig5_20_DatabaseSize(b *testing.B) {
	mergeFixture()
	b.ResetTimer()
	benchMerge(b, mergeIdx, mergeFs, 100, indexmerge.Options{Pruner: mergeJS})
}

func BenchmarkFig5_21_JoinSigConstruction(b *testing.B) {
	mergeFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := indexmerge.BuildJoinSignature(mergeIdx, mergeTb.Len(), indexmerge.JoinSigConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5_22_JoinSigSize(b *testing.B) {
	mergeFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if mergeJS.SizeBytes() == 0 {
			b.Fatal("empty join signature")
		}
	}
}

// ---------------------------------------------------------------------------
// Chapter 6 — SPJR rank joins
// ---------------------------------------------------------------------------

func benchJoin(b *testing.B, k int) {
	b.Helper()
	joinFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := joinquery.Query{
			Parts: []joinquery.Part{
				{Rel: joinR1, Cond: core.Cond{0: int32(i % 10)}, F: ranking.Sum(0, 1)},
				{Rel: joinR2, Cond: core.Cond{1: int32(i % 10)}, F: ranking.Sum(0, 1)},
			},
			K: k,
		}
		if _, err := joinquery.Execute(q, joinquery.Options{}, stats.New()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6_03_JoinCardinality(b *testing.B) { benchJoin(b, 10) }
func BenchmarkFig6_04_JoinDatabaseSize(b *testing.B) {
	benchJoin(b, 20)
}

// ---------------------------------------------------------------------------
// Chapter 7 — skylines
// ---------------------------------------------------------------------------

func benchSkyline(b *testing.B, q skyline.Query) {
	b.Helper()
	sigFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := skylEng.Skyline(q, stats.New()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7_03_SkylineTime(b *testing.B) {
	benchSkyline(b, skyline.Query{Cond: core.Cond{0: 7}, Dims: []int{0, 1}})
}

func BenchmarkFig7_04_SkylineDisk(b *testing.B) {
	benchSkyline(b, skyline.Query{Cond: core.Cond{1: 3}, Dims: []int{0, 1}})
}

func BenchmarkFig7_05_SkylineHeap(b *testing.B) {
	benchSkyline(b, skyline.Query{Cond: core.Cond{2: 5}, Dims: []int{0, 1}})
}

func BenchmarkFig7_06_Cardinality(b *testing.B) {
	benchSkyline(b, skyline.Query{Cond: core.Cond{0: 99}, Dims: []int{0, 1}})
}

func BenchmarkFig7_07_Distribution(b *testing.B) {
	var once sync.Once
	var eng *skyline.Engine
	once.Do(func() {
		tb := dataset.Synthetic(50_000, 3, 3, 100, table.AntiCorrelated, 5)
		eng = skyline.NewEngine(sigcube.Build(tb, sigcube.Config{}))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Skyline(skyline.Query{Cond: core.Cond{0: 7}, Dims: []int{0, 1}}, stats.New()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7_08_PreferenceDims(b *testing.B) {
	benchSkyline(b, skyline.Query{Cond: core.Cond{0: 7}, Dims: []int{0, 1, 2}})
}

func BenchmarkFig7_09_Fanout(b *testing.B) {
	var once sync.Once
	var eng *skyline.Engine
	once.Do(func() {
		tb := dataset.Synthetic(50_000, 3, 3, 100, table.Uniform, 6)
		eng = skyline.NewEngine(sigcube.Build(tb, sigcube.Config{RTree: rtree.Config{Fanout: 64}}))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Skyline(skyline.Query{Cond: core.Cond{0: 7}, Dims: []int{0, 1}}, stats.New()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7_10_Hardness(b *testing.B) {
	BenchmarkFig7_07_Distribution(b)
}

func BenchmarkFig7_11_BooleanPredicates(b *testing.B) {
	benchSkyline(b, skyline.Query{Cond: core.Cond{0: 7, 1: 3, 2: 9}, Dims: []int{0, 1}})
}

func BenchmarkFig7_12_SignatureLoading(b *testing.B) {
	sigFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctr := stats.New()
		tester, any, err := sigCube.TesterFor(core.Cond{0: 7, 1: 3}, ctr)
		if err != nil {
			b.Fatal(err)
		}
		if !any {
			continue
		}
		tester.Test([]int{1, 1, 1})
	}
}

func BenchmarkFig7_13_DrillDown(b *testing.B) {
	sigFixture()
	b.ResetTimer()
	_, snap, err := skylEng.Skyline(skyline.Query{Cond: core.Cond{0: 7}, Dims: []int{0, 1}}, stats.New())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := skylEng.DrillDown(snap, core.Cond{1: int32(i % 100)}, stats.New()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7_14_RollUp(b *testing.B) {
	sigFixture()
	b.ResetTimer()
	_, snap, err := skylEng.Skyline(skyline.Query{Cond: core.Cond{0: 7, 1: 3}, Dims: []int{0, 1}}, stats.New())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := skylEng.RollUp(snap, []int{1}, stats.New()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Public API smoke benchmark + harness self-check
// ---------------------------------------------------------------------------

func BenchmarkPublicAPI_SignatureTopK(b *testing.B) {
	rel := rankcube.GenerateRelation(20_000, 3, 2, 10, rankcube.Uniform, 9)
	cube := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cube.TopK(rankcube.Cond{0: 1}, rankcube.Sum(0, 1), 10, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// TestHarnessRegistryComplete pins the experiment inventory: every thesis
// table/figure id must be registered.
func TestHarnessRegistryComplete(t *testing.T) {
	want := []string{"tbl5.1", "ext.idlist", "ext.bloom", "ext.onion", "ext.gridpart"}
	for _, f := range []string{"3.4", "3.5", "3.6", "3.7", "3.8", "3.9", "3.10",
		"3.11", "3.12", "3.13", "3.14", "3.15",
		"4.8", "4.9", "4.10", "4.11", "4.12", "4.13",
		"5.7", "5.8", "5.9", "5.10", "5.11", "5.12", "5.13", "5.14", "5.15",
		"5.16", "5.17", "5.18", "5.19", "5.20", "5.21", "5.22",
		"6.3", "6.4",
		"7.3", "7.4", "7.5", "7.6", "7.7", "7.8", "7.9", "7.10", "7.11",
		"7.12", "7.13", "7.14"} {
		want = append(want, "fig"+f)
	}
	for _, id := range want {
		if _, ok := bench.Registry[id]; !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(bench.Registry) != len(want) {
		t.Errorf("registry has %d experiments, inventory lists %d", len(bench.Registry), len(want))
	}
}
