module rankcube

go 1.24
