// Skyline hotel search with boolean predicates (thesis chapter 7): find the
// hotels not dominated on (price, distance-to-beach) among those matching
// amenity filters, then drill down and roll up like an OLAP session.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"rankcube"
)

func main() {
	districts := []string{"downtown", "beachfront", "airport", "old-town"}
	rel, err := rankcube.NewRelation(
		[]string{"district", "stars", "breakfast", "wifi"},
		[]int{len(districts), 5, 2, 2},
		[]string{"price", "beach_dist"},
	)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40000; i++ {
		district := rng.Intn(len(districts))
		stars := rng.Intn(5)
		// Beachfront hotels are close to the beach but pricey.
		var price, dist float64
		if district == 1 {
			price = 0.5 + 0.5*rng.Float64()
			dist = 0.2 * rng.Float64()
		} else {
			price = rng.Float64() * (0.4 + 0.15*float64(stars))
			dist = 0.2 + 0.8*rng.Float64()
		}
		rel.Append(
			[]int32{int32(district), int32(stars), int32(rng.Intn(2)), int32(rng.Intn(2))},
			[]float64{price, dist},
		)
	}

	cube := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{})
	eng := rankcube.NewSkylineEngine(cube)
	ctx := context.Background()

	// Skyline of hotels with breakfast: minimize price and beach distance
	// simultaneously.
	metrics := rankcube.NewMetrics()
	sky, snap, err := eng.Query(ctx, rankcube.Cond{2: 1}, []int{0, 1}, nil,
		rankcube.WithMetrics(metrics))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("skyline with breakfast: %d non-dominated hotels [%s]\n", len(sky), metrics)
	show(rel, districts, sky, 8)

	// Drill down: additionally require wifi — answered from the previous
	// query's candidate basis, not from scratch.
	metrics = rankcube.NewMetrics()
	sky2, snap2, err := eng.DrillDownQuery(ctx, snap, rankcube.Cond{3: 1},
		rankcube.WithMetrics(metrics))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndrill-down (+wifi): %d hotels [%s]\n", len(sky2), metrics)
	show(rel, districts, sky2, 5)

	// Roll up: drop the wifi requirement again, seeded by the previous
	// skyline.
	sky3, _, err := eng.RollUpQuery(ctx, snap2, []int{3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nroll-up (−wifi): %d hotels\n", len(sky3))

	// Dynamic skyline: closest to a $120/night, 500 m-from-beach ideal
	// (preference space |price−0.3|, |dist−0.1|).
	dyn, _, err := eng.Query(ctx, rankcube.Cond{2: 1}, []int{0, 1},
		[]float64{0.3, 0.1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndynamic skyline around the ideal: %d hotels\n", len(dyn))
	show(rel, districts, dyn, 5)
}

func show(rel *rankcube.Relation, districts []string, sky []rankcube.SkylineResult, limit int) {
	for i, r := range sky {
		if i == limit {
			fmt.Printf("  … and %d more\n", len(sky)-limit)
			break
		}
		fmt.Printf("  hotel #%-6d %-10s %d★ price=%.2f beach=%.2f\n",
			r.TID, districts[rel.Sel(r.TID, 0)], rel.Sel(r.TID, 1)+1,
			rel.Rank(r.TID, 0), rel.Rank(r.TID, 1))
	}
}
