// Multi-dimensional data exploration (thesis Example 1) on the grid
// ranking cube: a used-car database with many selection criteria, explored
// through successive top-k queries that tighten and relax the selection —
// the slice/dice navigation the ranking cube is built for.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"rankcube"
)

var (
	types  = []string{"sedan", "convertible", "suv", "truck"}
	makers = []string{"ford", "toyota", "honda", "hyundai", "bmw"}
	colors = []string{"red", "silver", "black", "white", "blue"}
	trans  = []string{"auto", "manual"}
)

func main() {
	rel, err := rankcube.NewRelation(
		[]string{"type", "maker", "color", "transmission"},
		[]int{len(types), len(makers), len(colors), len(trans)},
		[]string{"price", "mileage"}, // price in $10k units, mileage in 100k miles
	)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 100000; i++ {
		maker := rng.Intn(len(makers))
		price := 0.3 + rng.Float64()*4
		if maker == 4 { // bmw costs more
			price += 1.5
		}
		rel.Append(
			[]int32{int32(rng.Intn(len(types))), int32(maker),
				int32(rng.Intn(len(colors))), int32(rng.Intn(len(trans)))},
			[]float64{price, rng.Float64() * 2},
		)
	}

	// The grid ranking cube materializes all 2^4−1 cuboids over the four
	// selection dimensions.
	cube := rankcube.BuildGridCube(rel, rankcube.GridOptions{BlockSize: 300})
	fmt.Printf("grid cube: %.1f MB materialized\n\n", float64(cube.SizeBytes())/(1<<20))

	ctx := context.Background()
	show := func(label string, cond rankcube.Cond, f rankcube.Func, k int) {
		m := rankcube.NewMetrics()
		res, err := cube.Query(ctx, cond, f, k, rankcube.WithMetrics(m))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", label)
		for i, r := range res {
			fmt.Printf("  %d. #%-6d %-11s %-7s %-6s price=$%.1fk mileage=%.0fk score=%.3f\n",
				i+1, r.TID,
				types[rel.Sel(r.TID, 0)], makers[rel.Sel(r.TID, 1)], colors[rel.Sel(r.TID, 2)],
				rel.Rank(r.TID, 0)*10, rel.Rank(r.TID, 1)*100, r.Score)
		}
		fmt.Printf("  [%s]\n\n", m)
	}

	// Q1 (thesis): top red sedans by price + mileage.
	show("Q1: top-5 red sedans by price+mileage",
		rankcube.Cond{0: 0, 2: 0}, rankcube.Sum(0, 1), 5)

	// Q2 (thesis): ford convertibles near $20k / 10k miles.
	show("Q2: top-5 ford convertibles near $20k/10k miles",
		rankcube.Cond{0: 1, 1: 0},
		rankcube.SqDist([]int{0, 1}, []float64{2.0, 0.1}), 5)

	// Dice: add transmission; the cube answers from the 3-dim cuboid.
	show("Q3: …restricted to automatics",
		rankcube.Cond{0: 1, 1: 0, 3: 0},
		rankcube.SqDist([]int{0, 1}, []float64{2.0, 0.1}), 5)

	// Roll up: drop all conditions but maker.
	show("Q4: top-5 fords overall (roll-up)",
		rankcube.Cond{1: 0}, rankcube.Sum(0, 1), 5)
}
