// High-dimensional apartment search (thesis §1.2.2): many boolean amenity
// dimensions — handled with ranking fragments — and many ranking criteria —
// handled with index-merge over per-attribute B+-trees.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"rankcube"
)

// Selection dimensions: 12 amenity flags.
var amenities = []string{
	"in_unit_laundry", "hookups", "laundry_room", "air_conditioning",
	"walk_in_closet", "hardwood", "parking", "fitness_center", "pool",
	"pets_allowed", "balcony", "dishwasher",
}

// Ranking dimensions: 6 numeric criteria, all normalized to [0,1] where
// lower is better (rent, sqft deficit, distances, fees).
var criteria = []string{
	"rent", "sqft_deficit", "dist_shopping", "dist_park", "move_in_gap", "fees",
}

func main() {
	sel := make([]int, len(amenities))
	for i := range sel {
		sel[i] = 2
	}
	rel, err := rankcube.NewRelation(amenities, sel, criteria)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30000; i++ {
		flags := make([]int32, len(amenities))
		for d := range flags {
			if rng.Float64() < 0.4 {
				flags[d] = 1
			}
		}
		vals := make([]float64, len(criteria))
		for d := range vals {
			vals[d] = rng.Float64()
		}
		rel.Append(flags, vals)
	}

	// --- Many boolean dimensions: ranking fragments (F=3). --------------
	// A full cube over 12 dimensions would need 2^12−1 cuboids; fragments
	// keep the footprint linear in the dimension count.
	frag := rankcube.BuildGridCube(rel, rankcube.GridOptions{FragmentSize: 3})
	fmt.Printf("fragment materialization: %.1f MB for %d amenity dimensions\n",
		float64(frag.SizeBytes())/(1<<20), len(amenities))

	// Wants in-unit laundry, parking, pets allowed — three amenities that
	// span two fragments; the cube intersects their tid lists online.
	cond := rankcube.Cond{0: 1, 6: 1, 9: 1}
	f := rankcube.Linear([]int{0, 2}, []float64{0.7, 0.3}) // rent + shopping distance
	metrics := rankcube.NewMetrics()
	ctx := context.Background()
	res, err := frag.Query(ctx, cond, f, 5, rankcube.WithMetrics(metrics))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop-5 pet-friendly apartments with laundry and parking:")
	for i, r := range res {
		fmt.Printf("  %d. apt #%-6d rent=%.2f dist=%.2f score=%.3f\n",
			i+1, r.TID, rel.Rank(r.TID, 0), rel.Rank(r.TID, 2), r.Score)
	}
	fmt.Printf("  [%s]\n", metrics)

	// --- Many ranking dimensions: index merge. --------------------------
	// One B+-tree per criterion; an ad hoc function over four of them is
	// answered by progressively merging the four indexes (double-heap with
	// threshold expansion), never scanning the relation.
	indices := []rankcube.Index{
		rankcube.BuildBTree(rel, 0), // rent
		rankcube.BuildBTree(rel, 1), // sqft deficit
		rankcube.BuildBTree(rel, 4), // move-in gap
		rankcube.BuildBTree(rel, 5), // fees
	}
	target := rankcube.SqDist([]int{0, 1, 4, 5}, []float64{0.2, 0.1, 0.0, 0.05})
	metrics = rankcube.NewMetrics()
	res, err = rankcube.MergeQuery(ctx, rel, indices, target, 5,
		rankcube.MergeOptions{JoinSignature: true}, rankcube.WithMetrics(metrics))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop-5 apartments near the target profile (4-way index merge):")
	for i, r := range res {
		fmt.Printf("  %d. apt #%-6d rent=%.2f deficit=%.2f gap=%.2f fees=%.2f score=%.4f\n",
			i+1, r.TID, rel.Rank(r.TID, 0), rel.Rank(r.TID, 1),
			rel.Rank(r.TID, 4), rel.Rank(r.TID, 5), r.Score)
	}
	fmt.Printf("  [%s]\n", metrics)
}
