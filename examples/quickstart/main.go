// Quickstart: build a ranking cube over a small product catalog and answer
// top-k queries with multi-dimensional selections and ad hoc ranking
// functions — the thesis' Example 1 in miniature.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"rankcube"
)

func main() {
	// A used-car relation: two selection dimensions (type, color) and two
	// ranking dimensions (price in $10k units, mileage in 100k-mile units).
	types := []string{"sedan", "convertible", "suv"}
	colors := []string{"red", "silver", "black", "white"}
	rel, err := rankcube.NewRelation(
		[]string{"type", "color"},
		[]int{len(types), len(colors)},
		[]string{"price", "mileage"},
	)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		rel.Append(
			[]int32{int32(rng.Intn(len(types))), int32(rng.Intn(len(colors)))},
			[]float64{rng.Float64() * 5, rng.Float64() * 2},
		)
	}

	// Materialize the signature ranking cube (chapter 4 engine).
	cube := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{})
	ctx := context.Background()

	// Q1: top-10 red sedans by price + mileage (ascending).
	metrics := rankcube.NewMetrics()
	res, err := cube.Query(ctx,
		rankcube.Cond{0: 0 /* sedan */, 1: 0 /* red */},
		rankcube.Sum(0, 1),
		10, rankcube.WithMetrics(metrics),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q1: top-10 red sedans by price + mileage")
	printResults(rel, res)
	fmt.Printf("   [%s]\n\n", metrics)

	// Q2: top-5 convertibles closest to ($20k, 10k miles) — a quadratic
	// target-distance function — traced: the span tree shows where the
	// blocks and the time went.
	tr := rankcube.NewTrace()
	res, err = cube.Query(ctx,
		rankcube.Cond{0: 1 /* convertible */},
		rankcube.SqDist([]int{0, 1}, []float64{2.0, 0.1}),
		5, rankcube.WithTrace(tr),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q2: top-5 convertibles near $20k / 10k miles")
	printResults(rel, res)
	fmt.Print(tr.Render())

	// Q3: an ad hoc, non-convex function via the expression API:
	// (price − mileage²)² — answered through the same cube.
	f := rankcube.General(rankcube.Sqr(rankcube.Sub(rankcube.Var(0), rankcube.Sqr(rankcube.Var(1)))))
	res, err = cube.Query(ctx, rankcube.Cond{1: 2 /* black */}, f, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nQ3: top-5 black cars by (price − mileage²)²")
	printResults(rel, res)
}

func printResults(rel *rankcube.Relation, res []rankcube.Result) {
	for i, r := range res {
		fmt.Printf("  %2d. car #%-6d price=$%.0fk mileage=%.0fk score=%.4f\n",
			i+1, r.TID, rel.Rank(r.TID, 0)*10, rel.Rank(r.TID, 1)*100, r.Score)
	}
}
