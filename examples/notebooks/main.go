// Multi-dimensional data analysis (thesis Example 2): a notebook-comparison
// catalog where an analyst evaluates market potential with a scoring
// function, drills into a segment, then rolls up to compare against the
// whole market — OLAP navigation over ranked results.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"rankcube"
)

var brands = []string{"dell", "lenovo", "apple", "asus", "hp"}
var priceBands = []string{"<$800", "$800-1200", "$1200-2000", ">$2000"}

func main() {
	// Schema (brand, price_band | cpu, memory, disk): the analyst's scoring
	// function f is formulated on cpu/memory/disk; brand and price band are
	// selection dimensions.
	rel, err := rankcube.NewRelation(
		[]string{"brand", "price_band"},
		[]int{len(brands), len(priceBands)},
		[]string{"cpu", "memory", "disk"},
	)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50000; i++ {
		brand := rng.Intn(len(brands))
		band := rng.Intn(len(priceBands))
		// Better specs correlate with higher price bands.
		quality := (float64(band) + rng.Float64()) / float64(len(priceBands))
		rel.Append(
			[]int32{int32(brand), int32(band)},
			[]float64{
				clamp(quality + 0.1*rng.NormFloat64()),
				clamp(quality + 0.15*rng.NormFloat64()),
				clamp(quality + 0.2*rng.NormFloat64()),
			},
		)
	}
	cube := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{
		// Materialize the atomic cuboids plus the (brand, price_band)
		// cuboid the analysis drills through.
		Cuboids: [][]int{{0}, {1}, {0, 1}},
	})

	// "Market potential" is minimized — negate spec quality so better
	// notebooks rank first.
	potential := rankcube.Linear([]int{0, 1, 2}, []float64{-0.5, -0.3, -0.2})

	ctx := context.Background()

	// Step 1: top-5 dell low-end notebooks.
	res, err := cube.Query(ctx, rankcube.Cond{0: 0, 1: 0}, potential, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-5 dell notebooks under $800 by market potential:")
	show(rel, res)

	// Step 2: roll up on brand — the same segment across all makers.
	res, err = cube.Query(ctx, rankcube.Cond{1: 0}, potential, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop-5 under-$800 notebooks across all brands:")
	show(rel, res)

	// Count how many of the overall winners are dell: the analyst's
	// "position of dell in the low-end market".
	dell := 0
	for _, r := range res {
		if rel.Sel(r.TID, 0) == 0 {
			dell++
		}
	}
	fmt.Printf("\ndell holds %d of the top 5 low-end slots\n", dell)
}

func show(rel *rankcube.Relation, res []rankcube.Result) {
	for i, r := range res {
		fmt.Printf("  %d. #%-6d brand=%-7s cpu=%.2f mem=%.2f disk=%.2f (score %.3f)\n",
			i+1, r.TID, brands[rel.Sel(r.TID, 0)],
			rel.Rank(r.TID, 0), rel.Rank(r.TID, 1), rel.Rank(r.TID, 2), r.Score)
	}
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
