// SPJR rank join (thesis chapter 6): a two-relation top-k query — flights
// joined with hotels on destination city, ranked by combined cost — executed
// with rank-aware selections pulled through a threshold rank join instead of
// materializing the full join.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"rankcube"
)

const numCities = 200

func main() {
	// Relation 1: flights(airline, stops | price, duration) keyed by
	// destination city.
	flights, err := rankcube.NewRelation(
		[]string{"airline", "stops"},
		[]int{8, 3},
		[]string{"price", "duration"},
	)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	flightCity := make([]int32, 0, 60000)
	for i := 0; i < 60000; i++ {
		flights.Append(
			[]int32{int32(rng.Intn(8)), int32(rng.Intn(3))},
			[]float64{rng.Float64(), rng.Float64()},
		)
		flightCity = append(flightCity, int32(rng.Intn(numCities)))
	}

	// Relation 2: hotels(stars, breakfast | rate, center_dist) keyed by city.
	hotels, err := rankcube.NewRelation(
		[]string{"stars", "breakfast"},
		[]int{5, 2},
		[]string{"rate", "center_dist"},
	)
	if err != nil {
		log.Fatal(err)
	}
	hotelCity := make([]int32, 0, 40000)
	for i := 0; i < 40000; i++ {
		hotels.Append(
			[]int32{int32(rng.Intn(5)), int32(rng.Intn(2))},
			[]float64{rng.Float64(), rng.Float64()},
		)
		hotelCity = append(hotelCity, int32(rng.Intn(numCities)))
	}

	// Each relation carries its own ranking cube.
	fCube := rankcube.BuildSignatureCube(flights, rankcube.SigOptions{})
	hCube := rankcube.BuildSignatureCube(hotels, rankcube.SigOptions{})
	rf := rankcube.NewJoinRelation("flights", flights, fCube, flightCity, numCities)
	rh := rankcube.NewJoinRelation("hotels", hotels, hCube, hotelCity, numCities)

	// Top-10 (flight, hotel) pairs to the same city: nonstop flights and
	// 4★+ hotels with breakfast, minimizing flight price + duration plus
	// hotel rate + distance to center.
	metrics := rankcube.NewMetrics()
	res, err := rankcube.JoinQuery(context.Background(), []rankcube.JoinPart{
		{Rel: rf, Cond: rankcube.Cond{1: 0 /* nonstop */}, F: rankcube.Sum(0, 1)},
		{Rel: rh, Cond: rankcube.Cond{0: 3 /* 4-star */, 1: 1 /* breakfast */}, F: rankcube.Sum(0, 1)},
	}, 10, rankcube.WithMetrics(metrics))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("top-10 nonstop-flight + 4-star-hotel packages:")
	for i, r := range res {
		fl, ho := r.TIDs[0], r.TIDs[1]
		fmt.Printf("  %2d. city=%-3d flight #%-6d ($%.2f, %.2fh)  hotel #%-6d ($%.2f, %.2fkm)  total=%.3f\n",
			i+1, flightCity[fl], fl,
			flights.Rank(fl, 0), flights.Rank(fl, 1),
			ho, hotels.Rank(ho, 0), hotels.Rank(ho, 1), r.Score)
	}
	fmt.Printf("\n[%s]\n", metrics)
	fmt.Println("note: the rank join stopped after pulling only the cheap prefixes of both relations")
}
