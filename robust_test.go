package rankcube_test

// Fault-injection tests of the robustness layer: corruption, transient read
// faults, cancellation, budgets, and panic containment, all exercised
// through the public API. The driving invariants: no panic ever escapes the
// context-aware API, degraded answers are exactly the baseline answers, and
// partial statistics survive aborts.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rankcube"
	"rankcube/internal/pager"
)

func corruptAll(stores []*rankcube.PageStore) {
	for _, s := range stores {
		s.SetFaultInjector(&pager.ScriptedFaults{CorruptAll: true})
	}
}

func TestSignatureCorruptionDegradesToExactScan(t *testing.T) {
	rel := buildDemo(t, 4000)
	cube := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{})
	cond := rankcube.Cond{0: 1}
	f := rankcube.Sum(0, 1)
	want := apiBrute(rel, cond, f, 10)

	corruptAll(cube.Stores())
	m := rankcube.NewMetrics()
	got, err := cube.TopKCtx(context.Background(), cond, f, 10, rankcube.Budget{}, m)
	if err != nil {
		t.Fatalf("degraded query failed: %v", err)
	}
	checkScores(t, got, want)
	if m.Downgrades != 1 {
		t.Fatalf("downgrades = %d, want 1", m.Downgrades)
	}

	// The store is now quarantined; the next query fails fast on
	// ErrStructureUnavailable and degrades again.
	if !cube.Stores()[0].Quarantined() {
		t.Fatal("signature store not quarantined after corruption")
	}
	m2 := rankcube.NewMetrics()
	got, err = cube.TopKCtx(context.Background(), cond, f, 10, rankcube.Budget{}, m2)
	if err != nil {
		t.Fatalf("post-quarantine query failed: %v", err)
	}
	checkScores(t, got, want)
	if m2.Downgrades != 1 {
		t.Fatalf("post-quarantine downgrades = %d, want 1", m2.Downgrades)
	}

	// The legacy non-context method inherits the same degradation.
	m3 := rankcube.NewMetrics()
	got, err = cube.TopK(cond, f, 10, m3)
	if err != nil || m3.Downgrades != 1 {
		t.Fatalf("legacy TopK: err=%v downgrades=%d, want nil/1", err, m3.Downgrades)
	}
	checkScores(t, got, want)
}

func TestDisableFallbackSurfacesTypedErrors(t *testing.T) {
	rel := buildDemo(t, 4000)
	cube := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{})
	corruptAll(cube.Stores())
	b := rankcube.Budget{DisableFallback: true}

	res, err := cube.TopKCtx(context.Background(), rankcube.Cond{0: 1}, rankcube.Sum(0, 1), 10, b, nil)
	if !errors.Is(err, rankcube.ErrPageCorrupt) {
		t.Fatalf("err = %v, want ErrPageCorrupt", err)
	}
	if res != nil {
		t.Fatalf("got %d results alongside the error", len(res))
	}
	_, err = cube.TopKCtx(context.Background(), rankcube.Cond{0: 1}, rankcube.Sum(0, 1), 10, b, nil)
	if !errors.Is(err, rankcube.ErrStructureUnavailable) {
		t.Fatalf("second query err = %v, want ErrStructureUnavailable", err)
	}

	// Repair restores service.
	cube.Stores()[0].ClearQuarantine()
	cube.Stores()[0].SetFaultInjector(nil)
	got, err := cube.TopKCtx(context.Background(), rankcube.Cond{0: 1}, rankcube.Sum(0, 1), 10, b, nil)
	if err != nil {
		t.Fatalf("repaired cube failed: %v", err)
	}
	checkScores(t, got, apiBrute(rel, rankcube.Cond{0: 1}, rankcube.Sum(0, 1), 10))
}

func TestGridCorruptionDegradesToExactScan(t *testing.T) {
	rel := buildDemo(t, 4000)
	// Compressed lists store real payloads in the cuboid pages, so checksum
	// verification has something to catch.
	cube := rankcube.BuildGridCube(rel, rankcube.GridOptions{CompressLists: true})
	cond := rankcube.Cond{1: 2}
	f := rankcube.SqDist([]int{0, 1}, []float64{0.3, 0.8})
	want := apiBrute(rel, cond, f, 8)

	corruptAll(cube.Stores())
	m := rankcube.NewMetrics()
	got, err := cube.TopKCtx(context.Background(), cond, f, 8, rankcube.Budget{}, m)
	if err != nil {
		t.Fatalf("degraded grid query failed: %v", err)
	}
	checkScores(t, got, want)
	if m.Downgrades != 1 {
		t.Fatalf("downgrades = %d, want 1", m.Downgrades)
	}
}

func TestTransientFaultsRetryWithoutDegrading(t *testing.T) {
	rel := buildDemo(t, 4000)
	cube := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{})
	// Every signature page fails once, then recovers: queries should ride
	// it out via retries with no degradation and exact answers.
	st := cube.Stores()[0]
	fails := make(map[pager.PageID]int, st.NumPages())
	for i := 0; i < st.NumPages(); i++ {
		fails[pager.PageID(i)] = 1
	}
	st.SetRetryPolicy(pager.DefaultRetryLimit, 0)
	st.SetFaultInjector(&pager.ScriptedFaults{FailFirst: fails})

	cond := rankcube.Cond{0: 1}
	f := rankcube.Sum(0, 1)
	m := rankcube.NewMetrics()
	got, err := cube.TopKCtx(context.Background(), cond, f, 10, rankcube.Budget{}, m)
	if err != nil {
		t.Fatalf("query failed despite recoverable faults: %v", err)
	}
	checkScores(t, got, apiBrute(rel, cond, f, 10))
	if m.Retries == 0 {
		t.Fatal("no retries recorded for transient faults")
	}
	if m.Downgrades != 0 {
		t.Fatalf("downgrades = %d, want 0 (faults were recoverable)", m.Downgrades)
	}
}

func TestPersistentReadFailure(t *testing.T) {
	rel := buildDemo(t, 4000)
	cube := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{})
	st := cube.Stores()[0]
	fails := make(map[pager.PageID]int, st.NumPages())
	for i := 0; i < st.NumPages(); i++ {
		fails[pager.PageID(i)] = 1 << 20 // beyond any retry limit
	}
	st.SetRetryPolicy(2, 0)
	st.SetFaultInjector(&pager.ScriptedFaults{FailFirst: fails})
	cond := rankcube.Cond{0: 1}
	f := rankcube.Sum(0, 1)

	_, err := cube.TopKCtx(context.Background(), cond, f, 10, rankcube.Budget{DisableFallback: true}, nil)
	if !errors.Is(err, rankcube.ErrReadFailed) {
		t.Fatalf("err = %v, want ErrReadFailed", err)
	}

	m := rankcube.NewMetrics()
	got, err := cube.TopKCtx(context.Background(), cond, f, 10, rankcube.Budget{}, m)
	if err != nil {
		t.Fatalf("degraded query failed: %v", err)
	}
	checkScores(t, got, apiBrute(rel, cond, f, 10))
	if m.Downgrades != 1 {
		t.Fatalf("downgrades = %d, want 1", m.Downgrades)
	}
}

func TestPreCanceledContext(t *testing.T) {
	rel := buildDemo(t, 2000)
	cube := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := rankcube.NewMetrics()
	res, err := cube.TopKCtx(ctx, rankcube.Cond{0: 1}, rankcube.Sum(0, 1), 10, rankcube.Budget{}, m)
	if !errors.Is(err, rankcube.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v should unwrap to context.Canceled", err)
	}
	if res != nil || m.TotalReads() != 0 {
		t.Fatalf("pre-canceled query did work: %d results, %d reads", len(res), m.TotalReads())
	}
	if m.Downgrades != 0 {
		t.Fatal("cancellation must never degrade")
	}
}

func TestCancellationBoundedInBlockReads(t *testing.T) {
	rel := buildDemo(t, 20000)
	cube := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{})
	cond := rankcube.Cond{0: 1}
	f := rankcube.Sum(0, 1)

	// Reference: how many blocks an unhindered query reads.
	clean := rankcube.NewMetrics()
	if _, err := cube.TopKCtx(context.Background(), cond, f, 10, rankcube.Budget{}, clean); err != nil {
		t.Fatalf("clean query failed: %v", err)
	}
	if clean.TotalReads() < 20 {
		t.Skipf("workload too small to demonstrate bounded cancellation (%d reads)", clean.TotalReads())
	}

	// Cancel mid-flight at the 5th signature-store access; the governor
	// must stop the query within a bounded number of further block charges.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var accesses atomic.Int64
	cube.Stores()[0].SetFaultInjector(&pager.ScriptedFaults{
		OnRead: func(pager.PageID, int) {
			if accesses.Add(1) == 5 {
				cancel()
			}
		},
	})
	m := rankcube.NewMetrics()
	_, err := cube.TopKCtx(ctx, cond, f, 10, rankcube.Budget{}, m)
	if !errors.Is(err, rankcube.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if m.Downgrades != 0 {
		t.Fatal("cancellation must never degrade")
	}
	if m.TotalReads() >= clean.TotalReads() {
		t.Fatalf("canceled query read %d blocks, clean query %d — cancellation not bounded",
			m.TotalReads(), clean.TotalReads())
	}
}

func TestBudgetExceededKeepsPartialStats(t *testing.T) {
	rel := buildDemo(t, 8000)
	cube := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{})
	cond := rankcube.Cond{0: 1}
	f := rankcube.Sum(0, 1)
	b := rankcube.Budget{MaxBlockReads: 2, DisableFallback: true}
	m := rankcube.NewMetrics()
	res, err := cube.TopKCtx(context.Background(), cond, f, 10, b, m)
	if !errors.Is(err, rankcube.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if res != nil {
		t.Fatalf("budget-tripped query returned %d results", len(res))
	}
	if m.TotalReads() <= 2 {
		t.Fatalf("partial stats lost: %d reads recorded, want > 2 (the read that tripped counts)", m.TotalReads())
	}
}

func TestFallbackOnBudget(t *testing.T) {
	rel := buildDemo(t, 8000)
	cube := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{})
	cond := rankcube.Cond{0: 1}
	f := rankcube.Sum(0, 1)
	b := rankcube.Budget{MaxBlockReads: 2, FallbackOnBudget: true}
	m := rankcube.NewMetrics()
	got, err := cube.TopKCtx(context.Background(), cond, f, 10, b, m)
	if err != nil {
		t.Fatalf("budget fallback failed: %v", err)
	}
	checkScores(t, got, apiBrute(rel, cond, f, 10))
	if m.Downgrades != 1 {
		t.Fatalf("downgrades = %d, want 1", m.Downgrades)
	}
}

func TestCandidateBudget(t *testing.T) {
	rel := buildDemo(t, 8000)
	cube := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{})
	b := rankcube.Budget{MaxCandidates: 2, DisableFallback: true}
	_, err := cube.TopKCtx(context.Background(), rankcube.Cond{0: 1}, rankcube.Sum(0, 1), 10, b, nil)
	if !errors.Is(err, rankcube.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

// panicFunc satisfies rankcube.Func but panics on evaluation — a stand-in
// for a buggy ad hoc ranking function.
type panicFunc struct{ rankcube.Func }

func (panicFunc) Eval([]float64) float64 { panic("buggy ranking function") }

func TestPanicContainedAsErrInternal(t *testing.T) {
	rel := buildDemo(t, 2000)
	cube := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{})
	f := panicFunc{rankcube.Sum(0, 1)}
	_, err := cube.TopKCtx(context.Background(), rankcube.Cond{0: 1}, f, 5,
		rankcube.Budget{DisableFallback: true}, nil)
	if !errors.Is(err, rankcube.ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	// With fallback enabled the scan re-evaluates the same broken function;
	// the second panic must be contained too (no escape), still ErrInternal.
	m := rankcube.NewMetrics()
	_, err = cube.TopKCtx(context.Background(), rankcube.Cond{0: 1}, f, 5, rankcube.Budget{}, m)
	if !errors.Is(err, rankcube.ErrInternal) {
		t.Fatalf("fallback err = %v, want ErrInternal", err)
	}
	if m.Downgrades != 1 {
		t.Fatalf("downgrades = %d, want 1 (degradation was attempted)", m.Downgrades)
	}
}

// panicInjector fails not with an error but with a raw panic, modelling a
// bug inside the storage layer itself rather than a scripted fault.
type panicInjector struct{}

func (panicInjector) ReadAttempt(pager.PageID, int) error {
	panic("injected storage-layer bug")
}

func (panicInjector) MutatePayload(_ pager.PageID, data []byte) []byte { return data }

// TestStoragePanicRecoveredAsError pins the deepest recovery path: a panic
// raised from inside a page read — several layers below the public API —
// must come back as an ErrInternal error, and with degradation enabled the
// fallback scan (which reads the relation, not the store) must still
// produce the exact answer.
func TestStoragePanicRecoveredAsError(t *testing.T) {
	rel := buildDemo(t, 3000)
	cube := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{})
	for _, st := range cube.Stores() {
		st.SetFaultInjector(panicInjector{})
	}
	cond := rankcube.Cond{0: 1}
	f := rankcube.Sum(0, 1)
	_, err := cube.TopKCtx(context.Background(), cond, f, 5,
		rankcube.Budget{DisableFallback: true}, nil)
	if !errors.Is(err, rankcube.ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	m := rankcube.NewMetrics()
	got, err := cube.TopKCtx(context.Background(), cond, f, 5, rankcube.Budget{}, m)
	if err != nil {
		t.Fatalf("degraded query failed: %v", err)
	}
	checkScores(t, got, apiBrute(rel, cond, f, 5))
	if m.Downgrades != 1 {
		t.Fatalf("downgrades = %d, want 1", m.Downgrades)
	}
}

func TestMergeFaultDegradesToTableScan(t *testing.T) {
	rel := buildDemo(t, 4000)
	indices := []rankcube.Index{
		rankcube.BuildBTree(rel, 0),
		rankcube.BuildBTree(rel, 1),
	}
	f := rankcube.Sum(0, 1)
	want := rankcube.TableScanTopK(rel, rankcube.Cond{}, f, 10, nil)

	// Every index page permanently unreadable.
	for _, idx := range indices {
		st := idx.Store()
		fails := make(map[pager.PageID]int, st.NumPages())
		for i := 0; i < st.NumPages(); i++ {
			fails[pager.PageID(i)] = 1 << 20
		}
		st.SetRetryPolicy(1, 0)
		st.SetFaultInjector(&pager.ScriptedFaults{FailFirst: fails})
	}

	_, err := rankcube.MergeTopKCtx(context.Background(), rel, indices, f, 10,
		rankcube.MergeOptions{}, rankcube.Budget{DisableFallback: true}, nil)
	if !errors.Is(err, rankcube.ErrReadFailed) {
		t.Fatalf("err = %v, want ErrReadFailed", err)
	}

	m := rankcube.NewMetrics()
	got, err := rankcube.MergeTopKCtx(context.Background(), rel, indices, f, 10,
		rankcube.MergeOptions{}, rankcube.Budget{}, m)
	if err != nil {
		t.Fatalf("degraded merge failed: %v", err)
	}
	checkScores(t, got, want)
	if m.Downgrades != 1 {
		t.Fatalf("downgrades = %d, want 1", m.Downgrades)
	}
}

// faultJoinFixture builds two joinable relations with signature cubes; faulty
// controls whether the first cube's signature store is corrupted.
func faultJoinFixture(t *testing.T, faulty bool) []rankcube.JoinPart {
	t.Helper()
	mk := func(seed int64) (*rankcube.Relation, *rankcube.SignatureCube, []int32) {
		rel := rankcube.GenerateRelation(2000, 2, 2, 5, rankcube.Uniform, seed)
		cube := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{})
		keys := make([]int32, rel.Len())
		for i := range keys {
			keys[i] = int32(i % 50)
		}
		return rel, cube, keys
	}
	relA, cubeA, keysA := mk(11)
	relB, cubeB, keysB := mk(22)
	if faulty {
		corruptAll(cubeA.Stores())
	}
	ja := rankcube.NewJoinRelation("A", relA, cubeA, keysA, 50)
	jb := rankcube.NewJoinRelation("B", relB, cubeB, keysB, 50)
	return []rankcube.JoinPart{
		{Rel: ja, Cond: rankcube.Cond{0: 1}, F: rankcube.Sum(0)},
		{Rel: jb, Cond: rankcube.Cond{1: 2}, F: rankcube.Sum(1)},
	}
}

func TestJoinFaultDegradesToBruteForce(t *testing.T) {
	want, err := rankcube.JoinCtx(context.Background(), faultJoinFixture(t, false), 8, rankcube.Budget{}, nil)
	if err != nil {
		t.Fatalf("clean join failed: %v", err)
	}
	if len(want) == 0 {
		t.Fatal("fixture produced no join results")
	}

	m := rankcube.NewMetrics()
	got, err := rankcube.JoinCtx(context.Background(), faultJoinFixture(t, true), 8, rankcube.Budget{}, m)
	if err != nil {
		t.Fatalf("degraded join failed: %v", err)
	}
	if m.Downgrades != 1 {
		t.Fatalf("downgrades = %d, want 1", m.Downgrades)
	}
	if len(got) != len(want) {
		t.Fatalf("degraded join: %d results, clean join: %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Score != want[i].Score {
			t.Fatalf("result %d: degraded score %v, clean score %v", i, got[i].Score, want[i].Score)
		}
	}
}

func TestSkylineFaultDegradesAndNavigationRestarts(t *testing.T) {
	rel := buildDemo(t, 4000)
	clean := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{})
	cleanEng := rankcube.NewSkylineEngine(clean)
	cond := rankcube.Cond{0: 1}
	want, _, err := cleanEng.Skyline(cond, []int{0, 1}, nil, nil)
	if err != nil {
		t.Fatalf("clean skyline failed: %v", err)
	}

	faulty := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{})
	eng := rankcube.NewSkylineEngine(faulty)
	corruptAll(faulty.Stores())
	m := rankcube.NewMetrics()
	got, snap, err := eng.SkylineCtx(context.Background(), cond, []int{0, 1}, nil, rankcube.Budget{}, m)
	if err != nil {
		t.Fatalf("degraded skyline failed: %v", err)
	}
	if m.Downgrades != 1 {
		t.Fatalf("downgrades = %d, want 1", m.Downgrades)
	}
	if !snap.Degraded() {
		t.Fatal("fallback snapshot not marked degraded")
	}
	if !sameTIDSet(got, want) {
		t.Fatalf("degraded skyline %v != clean skyline %v", tids(got), tids(want))
	}

	// Navigating from a degraded snapshot restarts from scratch; the store
	// is quarantined, so the restart itself degrades again — still exact.
	wantDrill, _, err := cleanEng.DrillDown(mustSnap(t, cleanEng, cond), rankcube.Cond{1: 3}, nil)
	if err != nil {
		t.Fatalf("clean drill-down failed: %v", err)
	}
	m2 := rankcube.NewMetrics()
	gotDrill, snap2, err := eng.DrillDownCtx(context.Background(), snap, rankcube.Cond{1: 3}, rankcube.Budget{}, m2)
	if err != nil {
		t.Fatalf("degraded drill-down failed: %v", err)
	}
	if m2.Downgrades != 1 || !snap2.Degraded() {
		t.Fatalf("drill-down: downgrades=%d degraded=%v, want 1/true", m2.Downgrades, snap2.Degraded())
	}
	if !sameTIDSet(gotDrill, wantDrill) {
		t.Fatalf("degraded drill-down %v != clean %v", tids(gotDrill), tids(wantDrill))
	}
}

func mustSnap(t *testing.T, eng *rankcube.SkylineEngine, cond rankcube.Cond) *rankcube.SkylineSnapshot {
	t.Helper()
	_, snap, err := eng.Skyline(cond, []int{0, 1}, nil, nil)
	if err != nil {
		t.Fatalf("snapshot query failed: %v", err)
	}
	return snap
}

func tids(rs []rankcube.SkylineResult) []rankcube.TID {
	out := make([]rankcube.TID, len(rs))
	for i, r := range rs {
		out[i] = r.TID
	}
	return out
}

func sameTIDSet(a, b []rankcube.SkylineResult) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[rankcube.TID]bool, len(a))
	for _, r := range a {
		set[r.TID] = true
	}
	for _, r := range b {
		if !set[r.TID] {
			return false
		}
	}
	return true
}

func TestGovernedScanner(t *testing.T) {
	rel := buildDemo(t, 4000)
	cube := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{})
	cond := rankcube.Cond{0: 1}
	f := rankcube.Sum(0, 1)

	// Clean streaming matches the baseline prefix.
	sc, err := cube.ScanCtx(context.Background(), cond, f, rankcube.Budget{}, nil)
	if err != nil {
		t.Fatalf("ScanCtx failed: %v", err)
	}
	var streamed []rankcube.Result
	for len(streamed) < 5 {
		r, ok, err := sc.Next()
		if err != nil {
			t.Fatalf("Next failed: %v", err)
		}
		if !ok {
			break
		}
		streamed = append(streamed, r)
	}
	sc.Close()
	checkScores(t, streamed, apiBrute(rel, cond, f, 5))

	// Mid-stream cancellation surfaces as a typed error, not a panic.
	ctx, cancel := context.WithCancel(context.Background())
	m := rankcube.NewMetrics()
	sc, err = cube.ScanCtx(ctx, cond, f, rankcube.Budget{}, m)
	if err != nil {
		t.Fatalf("ScanCtx failed: %v", err)
	}
	defer sc.Close()
	if _, ok, err := sc.Next(); err != nil || !ok {
		t.Fatalf("first Next: ok=%v err=%v", ok, err)
	}
	cancel()
	_, ok, err := sc.Next()
	if ok || !errors.Is(err, rankcube.ErrCanceled) {
		t.Fatalf("post-cancel Next: ok=%v err=%v, want canceled stream end", ok, err)
	}

	// A corrupt store fails the stream with a typed error.
	corruptAll(cube.Stores())
	sc2, err := cube.ScanCtx(context.Background(), cond, f, rankcube.Budget{}, nil)
	if err == nil {
		defer sc2.Close()
		for i := 0; i < rel.Len()+1; i++ {
			_, ok, nerr := sc2.Next()
			if nerr != nil {
				err = nerr
				break
			}
			if !ok {
				break
			}
		}
	}
	if !errors.Is(err, rankcube.ErrPageCorrupt) && !errors.Is(err, rankcube.ErrStructureUnavailable) {
		t.Fatalf("corrupt scan err = %v, want a storage fault", err)
	}
}

func TestConcurrentQueriesUnderCorruption(t *testing.T) {
	rel := buildDemo(t, 4000)
	cube := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{})
	cond := rankcube.Cond{0: 1}
	f := rankcube.Sum(0, 1)
	want := apiBrute(rel, cond, f, 10)
	corruptAll(cube.Stores())

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := rankcube.NewMetrics()
			got, err := cube.TopKCtx(context.Background(), cond, f, 10, rankcube.Budget{}, m)
			if err != nil {
				errCh <- err
				return
			}
			if len(got) != len(want) || m.Downgrades != 1 {
				errCh <- errors.New("degraded concurrent query returned wrong shape")
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("concurrent query: %v", err)
	}
}

func TestDeadlineExpiresAsCanceled(t *testing.T) {
	rel := buildDemo(t, 4000)
	cube := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := cube.TopKCtx(ctx, rankcube.Cond{0: 1}, rankcube.Sum(0, 1), 10, rankcube.Budget{}, nil)
	if !errors.Is(err, rankcube.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
}
