// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON snapshot, so successive commits leave a comparable
// perf trajectory in the repository ("make bench-json" writes
// BENCH_<short-hash>.json).
//
// Usage:
//
//	go test -run '^$' -bench 'Fig4_12|PublicAPI' -benchmem . | benchjson -commit abc1234 -out BENCH_abc1234.json
//
// Lines it understands: the goos/goarch/pkg/cpu header emitted by the test
// binary, and benchmark result lines of the shape
//
//	BenchmarkName-8   1298   878412 ns/op   1234 B/op   56 allocs/op
//
// Everything else (PASS, ok, logging) is ignored. With no -out the JSON
// goes to stdout.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark function name without the Benchmark prefix or
	// the -GOMAXPROCS suffix.
	Name string `json:"name"`
	// FullName is the raw first field, e.g. "BenchmarkFig4_12_Signature_K10-8".
	FullName string `json:"full_name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the primary time metric.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds the remaining value/unit pairs (B/op, allocs/op, MB/s,
	// custom ReportMetric units).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the file schema.
type Snapshot struct {
	Commit     string      `json:"commit,omitempty"`
	Generated  string      `json:"generated"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		commit = flag.String("commit", "", "commit hash recorded in the snapshot")
		out    = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	snap := Snapshot{
		Commit:    *commit,
		Generated: time.Now().UTC().Format(time.RFC3339),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			snap.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				snap.Benchmarks = append(snap.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d benchmarks)\n", *out, len(snap.Benchmarks))
}

// parseBench decodes one result line: name, iterations, then value/unit
// pairs. Returns ok=false for lines that merely start with "Benchmark"
// (e.g. a benchmark's own log output).
func parseBench(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		FullName:   fields[0],
		Name:       trimName(fields[0]),
		Iterations: iters,
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = make(map[string]float64)
		}
		b.Metrics[unit] = v
	}
	return b, true
}

// trimName strips the Benchmark prefix and the trailing -GOMAXPROCS.
func trimName(full string) string {
	name := strings.TrimPrefix(full, "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name
}
