// Command rankvet is the multichecker driver for the rankcube analysis
// suite (internal/analysis): it loads the requested packages from source,
// runs every analyzer, and prints findings as file:line:col: messages.
// A non-zero exit on any finding makes it a CI gate (`make lint`).
//
// Usage:
//
//	rankvet [-list] [-json] [-stats] [packages]
//
// Packages default to ./... relative to the working directory. With -json
// each finding is one JSON object per line on stdout (file, line, col,
// analyzer, message) for tooling to consume. With -stats the loader's
// export-data cache hit/miss counts and per-analyzer wall-clock land on
// stderr after the findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"rankcube/internal/analysis"
	"rankcube/internal/analysis/framework"
)

// finding is the -json line format. Field order is the reading order of a
// diagnostic: where, who, what.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	asJSON := flag.Bool("json", false, "emit one JSON object per finding on stdout")
	stats := flag.Bool("stats", false, "print loader cache and per-analyzer timing stats on stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rankvet [-list] [-json] [-stats] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.Suite() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range analysis.Suite() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := framework.NewLoader("")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rankvet: %v\n", err)
		os.Exit(2)
	}
	diags, timings, err := analysis.Run(pkgs, analysis.Suite())
	if err != nil {
		fmt.Fprintf(os.Stderr, "rankvet: %v\n", err)
		os.Exit(2)
	}

	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		pos := loader.Fset().Position(d.Pos)
		if *asJSON {
			enc.Encode(finding{
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
			continue
		}
		fmt.Printf("%s: %s (%s)\n", pos, d.Message, d.Analyzer)
	}

	if *stats {
		ls := loader.Stats()
		fmt.Fprintf(os.Stderr, "rankvet: loader: %d pkg(s) from export data (cache hit), %d type-checked from source; list %v, check %v\n",
			ls.FromExport, ls.FromSource, ls.ListTime.Round(timeUnit(ls.ListTime)), ls.CheckTime.Round(timeUnit(ls.CheckTime)))
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "rankvet: %-12s %8v  %d finding(s)\n", t.Analyzer, t.Duration.Round(timeUnit(t.Duration)), t.Findings)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rankvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

// timeUnit picks a rounding unit that keeps durations to 3-4 significant
// digits.
func timeUnit(d time.Duration) time.Duration {
	switch {
	case d > time.Second:
		return 10 * time.Millisecond
	case d > time.Millisecond:
		return 10 * time.Microsecond
	default:
		return 100 * time.Nanosecond
	}
}
