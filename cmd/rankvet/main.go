// Command rankvet is the multichecker driver for the rankcube analysis
// suite (internal/analysis): it loads the requested packages from source,
// runs every analyzer, and prints findings as file:line:col: messages.
// A non-zero exit on any finding makes it a CI gate (`make lint`).
//
// Usage:
//
//	rankvet [-list] [packages]
//
// Packages default to ./... relative to the working directory.
package main

import (
	"flag"
	"fmt"
	"os"

	"rankcube/internal/analysis"
	"rankcube/internal/analysis/framework"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rankvet [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.Suite() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range analysis.Suite() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := framework.NewLoader("")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rankvet: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analysis.Suite())
	if err != nil {
		fmt.Fprintf(os.Stderr, "rankvet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s (%s)\n", loader.Fset().Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rankvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
