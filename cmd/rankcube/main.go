// Command rankcube is a small interactive demo of the ranking-cube engines:
// it loads a relation from CSV (or generates one), materializes a signature
// ranking cube, and answers top-k and skyline queries typed at a prompt.
//
// Usage:
//
//	rankcube -gen 100000            # synthetic relation
//	rankcube -csv data.csv -sel 3   # first 3 columns selections, rest ranking
//
// Query language (one per line):
//
//	top K [dim=val ...] by SPEC     # SPEC: w1*N1+w2*N2…  or  dist:t1,t2,…
//	sky [dim=val ...] on d1,d2
//	trace <top …|sky …>             # run a query and print its span tree
//	slow                            # dump the slow-query log
//	stats                           # dump the process metrics registry
//	health                          # store lifecycle states and gate occupancy
//	repair                          # verify, rebuild, re-admit quarantined stores
//	help | quit
//
// With -max-inflight N (and optionally -max-queue M), an admission gate
// bounds concurrent serving; the process drains the gate before exiting.
//
// With -slowlog <dur>, queries at or above the threshold are kept in a ring
// buffer with their execution span trees; "slow" prints them.
//
// Example:
//
//	top 5 0=2 1=0 by 1.0*N1+2.5*N2
//	top 10 2=1 by dist:0.3,0.7
//	sky 0=1 on 0,1
package main

import (
	"bufio"
	"context"
	"encoding/csv"
	"flag"
	"fmt"

	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rankcube"
)

func main() {
	var (
		gen    = flag.Int("gen", 0, "generate a synthetic relation with this many rows")
		csvIn  = flag.String("csv", "", "load a relation from this CSV file (header row required)")
		selN   = flag.Int("sel", 2, "number of leading CSV columns treated as selection dimensions")
		seed   = flag.Int64("seed", 1, "generator seed")
		selDim  = flag.Int("seldims", 3, "selection dimensions for -gen")
		rnkDim  = flag.Int("rankdims", 2, "ranking dimensions for -gen")
		card    = flag.Int("card", 10, "selection cardinality for -gen")
		slowlog = flag.Duration("slowlog", 0, "record queries at or above this duration in the slow-query log (0 = off)")

		maxInflight = flag.Int("max-inflight", 0, "admission gate: max concurrently served queries (0 = ungated)")
		maxQueue    = flag.Int("max-queue", 0, "admission gate: max queries parked waiting for a slot")
	)
	flag.Parse()
	if *slowlog > 0 {
		rankcube.SetSlowQueryThreshold(*slowlog)
	}

	var rel *rankcube.Relation
	var err error
	switch {
	case *csvIn != "":
		rel, err = loadCSV(*csvIn, *selN)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rankcube: %v\n", err)
			os.Exit(1)
		}
	case *gen > 0:
		rel = rankcube.GenerateRelation(*gen, *selDim, *rnkDim, *card, rankcube.Uniform, *seed)
	default:
		rel = rankcube.GenerateRelation(50000, *selDim, *rnkDim, *card, rankcube.Uniform, *seed)
	}

	schema := rel.Schema()
	fmt.Printf("relation: %d tuples, selections %v (cards %v), rankings %v\n",
		rel.Len(), schema.SelNames, schema.SelCard, schema.RankNames)
	fmt.Print("building signature ranking cube… ")
	cube := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{})
	eng := rankcube.NewSkylineEngine(cube)
	fmt.Printf("done (%.1f MB of signatures)\n", float64(cube.SizeBytes())/(1<<20))
	if *maxInflight > 0 {
		cube.SetAdmission(rankcube.AdmissionConfig{MaxInFlight: *maxInflight, MaxWaiting: *maxQueue})
		fmt.Printf("admission gate: %d in flight, %d waiting\n", *maxInflight, *maxQueue)
	}
	// Drain on exit: refuse new queries and wait (briefly) for in-flight
	// ones so the process never dies mid-answer.
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := cube.Drain(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "rankcube: drain: %v\n", err)
		}
	}()
	fmt.Println(`type "help" for the query syntax`)

	sc := bufio.NewScanner(os.Stdin)
	for fmt.Print("> "); sc.Scan(); fmt.Print("> ") {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
		case line == "quit" || line == "exit":
			return
		case line == "help":
			fmt.Println("  top K [dim=val ...] by w1*N1+w2*N2  — weighted top-k")
			fmt.Println("  top K [dim=val ...] by dist:t1,t2   — nearest to target")
			fmt.Println("  sky [dim=val ...] on d1,d2          — skyline over dims")
			fmt.Println("  trace <query>                       — run a query, print its span tree")
			fmt.Println("  slow                                — dump the slow-query log")
			fmt.Println("  stats                               — dump the metrics registry")
			fmt.Println("  health                              — store lifecycle states and gate occupancy")
			fmt.Println("  repair                              — verify, rebuild, and re-admit quarantined stores")
		case line == "slow":
			rankcube.WriteSlowQueryLog(os.Stdout)
		case line == "stats":
			rankcube.DefaultRegistry().WriteText(os.Stdout)
		case line == "health":
			for _, h := range cube.Health() {
				fmt.Printf("  %-12v %-12s %d pages\n", h.Kind, h.State, h.Pages)
			}
			if st := cube.AdmissionStats(); st.Gated {
				fmt.Printf("  gate: %d in flight, %d waiting, draining=%v\n", st.InFlight, st.Waiting, st.Draining)
			} else {
				fmt.Println("  gate: none (ungated)")
			}
		case line == "repair":
			ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
			reports, err := cube.Repair(ctx)
			stop()
			for _, r := range reports {
				fmt.Printf("  %-12v corrupt=%d rebuilt=%v(%d pages) probed=%v readmitted=%v state=%s\n",
					r.Kind, r.CorruptPages, r.Rebuilt, r.RebuiltPages, r.Probed, r.Readmitted, r.State)
			}
			if err != nil {
				fmt.Printf("  error: %v\n", err)
			}
		default:
			// A per-query signal context: Ctrl-C cancels the running query
			// (the governor aborts it within a bounded number of block
			// reads) and returns to the prompt; at an idle prompt the
			// default signal disposition still exits the process.
			ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
			err := execute(ctx, line, rel, cube, eng)
			stop()
			if err != nil {
				fmt.Printf("  error: %v\n", err)
			}
		}
	}
}

func execute(ctx context.Context, line string, rel *rankcube.Relation, cube *rankcube.SignatureCube, eng *rankcube.SkylineEngine) error {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	var tr *rankcube.Trace
	if fields[0] == "trace" {
		if len(fields) == 1 {
			return fmt.Errorf(`usage: trace <top …|sky …>`)
		}
		tr = rankcube.NewTrace()
		defer func() {
			fmt.Print(indent(tr.Render()))
		}()
		fields = fields[1:]
	}
	opts := []rankcube.Option{rankcube.WithTrace(tr)}
	if tr == nil {
		opts = nil
	}
	switch fields[0] {
	case "top":
		if len(fields) < 4 {
			return fmt.Errorf(`usage: top K [dim=val ...] by SPEC`)
		}
		k, err := strconv.Atoi(fields[1])
		if err != nil {
			return fmt.Errorf("bad k %q", fields[1])
		}
		byIdx := indexOf(fields, "by")
		if byIdx < 0 || byIdx == len(fields)-1 {
			return fmt.Errorf(`missing "by SPEC"`)
		}
		cond, err := parseCond(fields[2:byIdx])
		if err != nil {
			return err
		}
		f, err := parseFunc(strings.Join(fields[byIdx+1:], ""))
		if err != nil {
			return err
		}
		m := rankcube.NewMetrics()
		res, err := cube.Query(ctx, cond, f, k, append(opts, rankcube.WithMetrics(m))...)
		if err != nil {
			return err
		}
		for i, r := range res {
			fmt.Printf("  %2d. tuple #%d score=%.4f\n", i+1, r.TID, r.Score)
		}
		fmt.Printf("  [%s]\n", m)
		return nil
	case "sky":
		onIdx := indexOf(fields, "on")
		if onIdx < 0 || onIdx == len(fields)-1 {
			return fmt.Errorf(`missing "on d1,d2"`)
		}
		cond, err := parseCond(fields[1:onIdx])
		if err != nil {
			return err
		}
		var dims []int
		for _, s := range strings.Split(fields[onIdx+1], ",") {
			d, err := strconv.Atoi(s)
			if err != nil {
				return fmt.Errorf("bad dim %q", s)
			}
			dims = append(dims, d)
		}
		m := rankcube.NewMetrics()
		sky, _, err := eng.Query(ctx, cond, dims, nil, append(opts, rankcube.WithMetrics(m))...)
		if err != nil {
			return err
		}
		for i, r := range sky {
			if i == 15 {
				fmt.Printf("  … %d more\n", len(sky)-15)
				break
			}
			fmt.Printf("  tuple #%d coord=%v\n", r.TID, r.Coord)
		}
		fmt.Printf("  %d skyline points [%s]\n", len(sky), m)
		return nil
	default:
		return fmt.Errorf("unknown command %q", fields[0])
	}
}

// indent prefixes every line of a rendered span tree for REPL output.
func indent(s string) string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		b.WriteString("  ")
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

func indexOf(fields []string, word string) int {
	for i, f := range fields {
		if f == word {
			return i
		}
	}
	return -1
}

func parseCond(fields []string) (rankcube.Cond, error) {
	cond := rankcube.Cond{}
	for _, f := range fields {
		parts := strings.SplitN(f, "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad condition %q (want dim=val)", f)
		}
		d, err1 := strconv.Atoi(parts[0])
		v, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad condition %q", f)
		}
		cond[d] = int32(v)
	}
	return cond, nil
}

// parseFunc understands "w1*N1+w2*N2..." and "dist:t1,t2,...".
func parseFunc(spec string) (rankcube.Func, error) {
	if target, ok := strings.CutPrefix(spec, "dist:"); ok {
		var attrs []int
		var vals []float64
		for i, s := range strings.Split(target, ",") {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("bad target %q", s)
			}
			attrs = append(attrs, i)
			vals = append(vals, v)
		}
		return rankcube.SqDist(attrs, vals), nil
	}
	var attrs []int
	var weights []float64
	for _, term := range strings.Split(spec, "+") {
		parts := strings.SplitN(term, "*", 2)
		if len(parts) != 2 || !strings.HasPrefix(parts[1], "N") {
			return nil, fmt.Errorf("bad term %q (want w*Ni)", term)
		}
		w, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return nil, fmt.Errorf("bad weight %q", parts[0])
		}
		// N1 refers to the first ranking dimension (position 0).
		idx, err := strconv.Atoi(parts[1][1:])
		if err != nil || idx < 1 {
			return nil, fmt.Errorf("bad attribute %q", parts[1])
		}
		attrs = append(attrs, idx-1)
		weights = append(weights, w)
	}
	return rankcube.Linear(attrs, weights), nil
}

// loadCSV reads a relation: the first selN columns become selection
// dimensions (categorical codes assigned by value), the rest ranking
// dimensions (parsed as floats).
func loadCSV(path string, selN int) (*rankcube.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rd := csv.NewReader(f)
	rows, err := rd.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("%s: need a header and at least one row", path)
	}
	header := rows[0]
	if selN < 0 || selN >= len(header) {
		return nil, fmt.Errorf("-sel %d out of range for %d columns", selN, len(header))
	}
	// First pass: dictionary-encode selection columns.
	dicts := make([]map[string]int32, selN)
	for d := range dicts {
		dicts[d] = make(map[string]int32)
	}
	for _, row := range rows[1:] {
		for d := 0; d < selN; d++ {
			if _, ok := dicts[d][row[d]]; !ok {
				dicts[d][row[d]] = int32(len(dicts[d]))
			}
		}
	}
	cards := make([]int, selN)
	for d := range cards {
		cards[d] = len(dicts[d])
		if cards[d] == 0 {
			cards[d] = 1
		}
	}
	rel, err := rankcube.NewRelation(header[:selN], cards, header[selN:])
	if err != nil {
		return nil, err
	}
	sel := make([]int32, selN)
	rank := make([]float64, len(header)-selN)
	for i, row := range rows[1:] {
		for d := 0; d < selN; d++ {
			sel[d] = dicts[d][row[d]]
		}
		for d := selN; d < len(header); d++ {
			v, err := strconv.ParseFloat(strings.TrimSpace(row[d]), 64)
			if err != nil {
				return nil, fmt.Errorf("row %d column %s: %v", i+2, header[d], err)
			}
			rank[d-selN] = v
		}
		rel.Append(sel, rank)
	}
	return rel, nil
}
