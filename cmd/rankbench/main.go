// Command rankbench regenerates the tables and figures of the thesis'
// evaluation chapters.
//
// Usage:
//
//	rankbench -list                 # enumerate experiments
//	rankbench -exp fig3.4           # run one experiment
//	rankbench -exp fig3.4,fig4.12   # run several
//	rankbench -all                  # run everything
//	rankbench -all -scale 0.05      # smaller datasets (default 0.1× thesis)
//	rankbench -all -queries 20      # queries averaged per point (default 10)
//	rankbench -all -http :8080      # live observability while running
//	rankbench -chaos 5s             # seeded serving-chaos run (invariant check)
//
// With -http, the process serves /metrics (the rankcube registry as plain
// text), /debug/vars (expvar JSON, registry included), and /debug/pprof/*
// for CPU and heap profiling while experiments run.
//
// Output is one aligned table per experiment, with the same series the
// thesis plots. Absolute numbers depend on hardware and scale; the shapes
// are the reproduction target (see EXPERIMENTS.md).
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rankcube"
	"rankcube/internal/bench"
	"rankcube/internal/chaos"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiment ids and exit")
		exp     = flag.String("exp", "", "comma-separated experiment ids to run")
		all     = flag.Bool("all", false, "run every experiment")
		scale   = flag.Float64("scale", 0.1, "dataset scale relative to the thesis row counts")
		queries = flag.Int("queries", 10, "random queries averaged per data point")
		seed    = flag.Int64("seed", 1, "workload seed")
		httpAdr = flag.String("http", "", "serve /metrics, /debug/vars, and /debug/pprof on this address while running")
		chaosFl = flag.Duration("chaos", 0, "run the seeded serving-chaos harness for this duration instead of experiments")
	)
	flag.Parse()

	if *chaosFl > 0 {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		rep, err := chaos.Run(ctx, chaos.Config{Seed: *seed, Duration: *chaosFl})
		if rep != nil {
			fmt.Println(rep)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rankbench: chaos interrupted: %v\n", err)
			os.Exit(130)
		}
		if err := rep.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "rankbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("chaos: all serving invariants held")
		return
	}

	if *httpAdr != "" {
		rankcube.PublishExpvar()
		mux := http.NewServeMux()
		mux.Handle("/metrics", rankcube.MetricsHandler())
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*httpAdr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "rankbench: http server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "rankbench: observability on http://%s/metrics (+ /debug/vars, /debug/pprof)\n", *httpAdr)
	}

	if *list {
		for _, id := range bench.IDs() {
			fmt.Println(id)
		}
		return
	}
	var ids []string
	switch {
	case *all:
		ids = bench.IDs()
	case *exp != "":
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	default:
		fmt.Fprintln(os.Stderr, "rankbench: pass -exp <id>[,<id>…], -all, or -list")
		os.Exit(2)
	}

	// SIGINT/SIGTERM propagate into every query's context: the governor
	// aborts in-flight searches at block-read granularity and the partial
	// report still prints. A second signal kills the process outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := bench.Config{Scale: *scale, Queries: *queries, Seed: *seed}
	for _, id := range ids {
		start := time.Now()
		rep, err := bench.RunCtx(ctx, id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rankbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rep)
		fmt.Printf("(experiment wall time %.1fs)\n\n", time.Since(start).Seconds())
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "rankbench: interrupted — results above are partial")
			os.Exit(130)
		}
	}
}
