package rankcube

// Serving lifecycle: per-cube admission gates with graceful drain, and the
// quarantine repair path that returns corrupted stores to service through a
// half-open circuit-breaker probation. Concurrency discipline (the serving
// control each cube carries) is documented in internal/guard; this file is
// the public surface over it.

import (
	"context"
	"errors"

	"rankcube/internal/admission"
	"rankcube/internal/errs"
	"rankcube/internal/obs"
	"rankcube/internal/pager"
	"rankcube/internal/stats"
)

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

// AdmissionConfig bounds a cube's concurrent serving. Queries beyond
// MaxInFlight wait in a bounded, deadline-aware queue; queries the gate
// cannot plausibly serve — queue full, deadline nearer than the estimated
// wait, cube draining — fail immediately with ErrOverloaded. Maintenance
// (inserts, deletes, repartition, repair) is not admission-gated: the
// single-writer lock already serializes it, and shedding maintenance would
// lose data rather than load.
type AdmissionConfig struct {
	// MaxInFlight caps concurrently executing queries; zero or negative
	// removes the gate (every query admitted).
	MaxInFlight int
	// MaxWaiting bounds the wait queue; zero rejects immediately when all
	// slots are busy.
	MaxWaiting int
	// Name keys the gate's metrics (admission.<name>.*); empty defaults to
	// the cube kind ("grid" or "sig").
	Name string
}

func (c AdmissionConfig) gate(defaultName string) *admission.Gate {
	name := c.Name
	if name == "" {
		name = defaultName
	}
	return admission.NewGate(name, admission.Config{
		MaxInFlight: c.MaxInFlight,
		MaxWaiting:  c.MaxWaiting,
	}, nil)
}

// AdmissionStats is a point-in-time view of a cube's serving gate.
type AdmissionStats struct {
	// Gated reports whether an admission gate is configured at all.
	Gated bool
	// InFlight is the number of currently executing admitted queries.
	InFlight int
	// Waiting is the number of queries parked in the wait queue.
	Waiting int
	// Draining reports whether Drain has begun (new queries are refused).
	Draining bool
}

func gateStats(g *admission.Gate) AdmissionStats {
	if g == nil {
		return AdmissionStats{}
	}
	return AdmissionStats{Gated: true, InFlight: g.InFlight(), Waiting: g.Waiting(), Draining: g.Draining()}
}

// SetAdmission installs (or with a zero MaxInFlight removes) the cube's
// serving gate. Safe to call while queries run: already-admitted queries
// release against the gate that admitted them.
func (g *GridCube) SetAdmission(cfg AdmissionConfig) {
	g.c.Ctl().SetGate(cfg.gate("grid"))
}

// SetAdmission installs (or with a zero MaxInFlight removes) the cube's
// serving gate, as GridCube.SetAdmission does.
func (s *SignatureCube) SetAdmission(cfg AdmissionConfig) {
	s.c.Ctl().SetGate(cfg.gate("sig"))
}

// AdmissionStats reports the gate's current occupancy.
func (g *GridCube) AdmissionStats() AdmissionStats { return gateStats(g.c.Ctl().Gate()) }

// AdmissionStats reports the gate's current occupancy.
func (s *SignatureCube) AdmissionStats() AdmissionStats { return gateStats(s.c.Ctl().Gate()) }

// Drain gracefully shuts down the cube's serving gate: new queries and
// parked waiters are refused with ErrOverloaded, and Drain blocks until
// every in-flight query finishes or ctx expires. A cube without a gate has
// nothing to drain and returns nil immediately.
func (g *GridCube) Drain(ctx context.Context) error { return g.c.Ctl().Gate().Drain(ctx) }

// Drain gracefully shuts down the cube's serving gate, as GridCube.Drain
// does.
func (s *SignatureCube) Drain(ctx context.Context) error { return s.c.Ctl().Gate().Drain(ctx) }

// ---------------------------------------------------------------------------
// Health & repair
// ---------------------------------------------------------------------------

// StoreHealth is one page store's position in the quarantine lifecycle.
type StoreHealth struct {
	Kind  Structure
	State string // "healthy", "quarantined", "half-open"
	Pages int
}

func healthOf(stores []*PageStore) []StoreHealth {
	out := make([]StoreHealth, 0, len(stores))
	for _, st := range stores {
		out = append(out, StoreHealth{Kind: st.Kind(), State: st.State().String(), Pages: st.NumPages()})
	}
	return out
}

// Health reports the lifecycle state of every store backing the cube.
func (g *GridCube) Health() []StoreHealth { return healthOf(g.Stores()) }

// Health reports the lifecycle state of every store backing the cube.
func (s *SignatureCube) Health() []StoreHealth { return healthOf(s.Stores()) }

// StoreRepair describes what one Repair pass did to one store.
type StoreRepair struct {
	Kind Structure
	// CorruptPages is how many pages failed checksum re-verification
	// before the rebuild.
	CorruptPages int
	// Rebuilt reports whether the store's content was re-materialized from
	// the base data; RebuiltPages is the rebuilt page count.
	Rebuilt      bool
	RebuiltPages int
	// Probed reports whether a half-open probe query ran; Readmitted
	// whether it succeeded and returned the store to full service.
	Probed     bool
	Readmitted bool
	// State is the store's lifecycle state after the pass.
	State string
}

// probeOutcome applies the circuit-breaker decision for one half-open
// store after its probe query: success closes the circuit, a storage fault
// trips it back to quarantined, anything else (cancellation, overload) is
// inconclusive and leaves the store half-open for a later Repair.
func probeOutcome(st *PageStore, err error) (readmitted bool) {
	switch {
	case err == nil:
		obs.Default().RecordProbe(st.Kind(), true)
		return st.CloseCircuit()
	case errs.Degradable(err):
		obs.Default().RecordProbe(st.Kind(), false)
		st.Requarantine()
		return false
	default:
		return false
	}
}

// probeBudget disables degradation: a probe must prove the repaired store
// itself serves reads, not that the baseline can stand in for it.
func probeBudget() Option { return WithBudget(Budget{DisableFallback: true}) }

// Repair runs the quarantine repair lifecycle over the signature store:
// page-by-page checksum re-verification, a rebuild of the store from the
// cube's maintained state when pages fail (or the store is already
// quarantined), half-open re-admission, and a probe query that must
// actually read signature pages before the circuit closes. The verification
// and rebuild hold the cube's control exclusively; the probe runs through
// the public query path (admission gate and shared lock included). The
// returned error is the probe's failure, if any; an error leaves the store
// quarantined (storage fault) or half-open (inconclusive probe).
func (s *SignatureCube) Repair(ctx context.Context) ([]StoreRepair, error) {
	st := s.c.Store()
	rep := StoreRepair{Kind: st.Kind()}

	// The verification/rebuild span runs in its own frame so the release is
	// deferred: VerifyPages and RebuildStore read through the pager and can
	// abort on a storage fault, and a panic escaping a held lock would wedge
	// the cube.
	ctl := s.c.Ctl()
	var needProbe bool
	func() {
		ctl.Lock()
		defer ctl.Unlock()
		bad := st.VerifyPages()
		rep.CorruptPages = len(bad)
		if len(bad) > 0 || st.Quarantined() {
			rep.Rebuilt = true
			rep.RebuiltPages = s.c.RebuildStore()
			obs.Default().RecordRepair(st.Kind(), rep.RebuiltPages)
		}
		if st.Quarantined() && len(st.VerifyPages()) == 0 {
			st.EnterHalfOpen()
		}
		needProbe = st.State() == pager.StateHalfOpen
	}()

	var probeErr error
	if needProbe {
		rep.Probed = true
		probeErr = s.probeSignatureStore(ctx)
		rep.Readmitted = probeOutcome(st, probeErr)
	}
	rep.State = st.State().String()
	return []StoreRepair{rep}, probeErr
}

// probeSignatureStore issues probe queries until one actually charges a
// signature-store read (an empty cuboid cell reads nothing and proves
// nothing), sweeping the first selection dimension's values. It returns the
// first query error, or nil when every probed cell was empty — a store no
// query can reach is trivially serviceable.
func (s *SignatureCube) probeSignatureStore(ctx context.Context) error {
	schema := s.c.Table().Schema()
	f := sumAllRanks(schema.R())
	for v := 0; v < schema.SelCard[0]; v++ {
		m := NewMetrics()
		if _, err := s.Query(ctx, Cond{0: int32(v)}, f, 1, WithMetrics(m), probeBudget()); err != nil {
			return err
		}
		if m.ReadsSnapshot()[stats.StructSignature] > 0 {
			return nil
		}
	}
	return nil
}

// Repair runs the quarantine repair lifecycle over every cuboid store:
// checksum re-verification, rebuild of failing cuboids from the base
// relation into their reset stores, half-open re-admission, and a probe
// query per repaired cuboid through the public query path. Uncompressed
// cuboids and the base block table store only logical page sizes (no
// payload to corrupt), so they verify trivially; the repair path matters
// for CompressLists cubes. The returned error is the last probe failure,
// if any.
func (g *GridCube) Repair(ctx context.Context) ([]StoreRepair, error) {
	type probe struct {
		st   *PageStore
		dims []int
		idx  int
	}
	var reports []StoreRepair
	var probes []probe

	// As in (*SignatureCube).Repair: the rebuild span gets its own frame so
	// the release is deferred against aborts inside VerifyPages/RebuildCuboid.
	ctl := g.c.Ctl()
	func() {
		ctl.Lock()
		defer ctl.Unlock()
		for _, cb := range g.c.Cuboids() {
			st := cb.Store()
			rep := StoreRepair{Kind: st.Kind()}
			bad := st.VerifyPages()
			rep.CorruptPages = len(bad)
			if len(bad) > 0 || st.Quarantined() {
				rep.Rebuilt = true
				rep.RebuiltPages = g.c.RebuildCuboid(cb)
				obs.Default().RecordRepair(st.Kind(), rep.RebuiltPages)
			}
			if st.Quarantined() && len(st.VerifyPages()) == 0 {
				st.EnterHalfOpen()
			}
			if st.State() == pager.StateHalfOpen {
				probes = append(probes, probe{st: st, dims: cb.Dims(), idx: len(reports)})
			}
			rep.State = st.State().String()
			reports = append(reports, rep)
		}
		bt := g.c.Blocks().Store()
		reports = append(reports, StoreRepair{Kind: bt.Kind(), State: bt.State().String()})
	}()

	var probeErr error
	f := sumAllRanks(g.c.Table().Schema().R())
	for _, p := range probes {
		// Target the repaired cuboid: a condition over exactly its
		// dimensions makes the planner read its cells. Sweep the first
		// dimension's values until a cube-store read is charged.
		card := g.c.Table().Schema().SelCard[p.dims[0]]
		var err error
		for v := 0; v < card; v++ {
			cond := Cond{}
			for _, d := range p.dims {
				cond[d] = 0
			}
			cond[p.dims[0]] = int32(v)
			m := NewMetrics()
			if _, err = g.Query(ctx, cond, f, 1, WithMetrics(m), probeBudget()); err != nil {
				break
			}
			if m.ReadsSnapshot()[stats.StructCube] > 0 {
				break
			}
		}
		reports[p.idx].Probed = true
		reports[p.idx].Readmitted = probeOutcome(p.st, err)
		reports[p.idx].State = p.st.State().String()
		if err != nil {
			probeErr = err
		}
	}
	return reports, probeErr
}

// sumAllRanks is the probe ranking function: the unweighted sum over every
// ranking dimension.
func sumAllRanks(r int) Func {
	dims := make([]int, r)
	for i := range dims {
		dims[i] = i
	}
	return Sum(dims...)
}

// RepairError reports whether err came out of a repair probe as a definite
// storage failure (the store went back to quarantine) rather than an
// inconclusive interruption (cancellation or overload, store left
// half-open).
func RepairError(err error) bool {
	return err != nil && !errors.Is(err, errs.ErrCanceled) && !errors.Is(err, errs.ErrOverloaded)
}
