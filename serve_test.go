package rankcube_test

import (
	"context"
	"errors"
	"testing"

	"rankcube"
	"rankcube/internal/pager"
)

// TestSignatureRepairLifecycle walks the full quarantine lifecycle:
// corruption trips the store, queries degrade, Repair rebuilds and probes
// half-open, the store returns to full service, and answers reconcile with
// the baseline again.
func TestSignatureRepairLifecycle(t *testing.T) {
	rel := rankcube.GenerateRelation(1500, 2, 2, 4, rankcube.Uniform, 9)
	cube := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{Fanout: 16})
	ctx := context.Background()
	f := rankcube.Sum(0, 1)
	cond := rankcube.Cond{0: 1}

	want, err := cube.BaselineQuery(ctx, cond, f, 10)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	// Mutate the cube first so the rebuild must reflect maintained state,
	// not the build-time snapshot.
	if _, err := cube.InsertTuple(ctx, []int32{1, 2}, []float64{0.001, 0.001}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if _, err := cube.DeleteTuple(ctx, rankcube.TID(3)); err != nil {
		t.Fatalf("delete: %v", err)
	}
	want, err = cube.BaselineQuery(ctx, cond, f, 10)
	if err != nil {
		t.Fatalf("baseline after maintenance: %v", err)
	}

	// Corrupt the whole signature store: the next cube query trips
	// quarantine and degrades to the scan.
	st := cube.Stores()[0]
	st.SetFaultInjector(&pager.ScriptedFaults{CorruptAll: true})
	got, err := cube.Query(ctx, cond, f, 10)
	if err != nil || !scoresEqual(got, want) {
		t.Fatalf("degraded query: err=%v got=%v want=%v", err, got, want)
	}
	if st.State() != pager.StateQuarantined {
		t.Fatalf("state after corruption = %v, want quarantined", st.State())
	}

	// Repair with the injector still corrupting everything: the rebuild
	// cannot verify, so the store must stay out of full service.
	if _, err := cube.Repair(ctx); err != nil && !rankcube.RepairError(err) {
		t.Fatalf("repair under persistent corruption: unexpected err class %v", err)
	}
	if st.State() == pager.StateHealthy {
		t.Fatal("store returned to service while the fault persists")
	}

	// Clear the fault (the rot was transient) and repair again: verify,
	// rebuild, half-open probe, re-admission.
	st.SetFaultInjector(nil)
	reports, err := cube.Repair(ctx)
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if len(reports) != 1 || !reports[0].Rebuilt || !reports[0].Probed || !reports[0].Readmitted {
		t.Fatalf("repair report = %+v, want rebuilt+probed+readmitted", reports)
	}
	if st.State() != pager.StateHealthy {
		t.Fatalf("state after repair = %v, want healthy", st.State())
	}

	// Full service: the cube path answers (no degradation) and reconciles.
	got, err = cube.Query(ctx, cond, f, 10, rankcube.WithBudget(rankcube.Budget{DisableFallback: true}))
	if err != nil {
		t.Fatalf("query after repair: %v", err)
	}
	if !scoresEqual(got, want) {
		t.Fatalf("post-repair mismatch: got %v want %v", got, want)
	}
}

// TestGridRepairLifecycle exercises repair on a compressed grid cube, the
// configuration whose cuboid stores hold real payloads.
func TestGridRepairLifecycle(t *testing.T) {
	rel := rankcube.GenerateRelation(1200, 2, 2, 4, rankcube.Uniform, 13)
	cube := rankcube.BuildGridCube(rel, rankcube.GridOptions{BlockSize: 100, CompressLists: true})
	ctx := context.Background()
	f := rankcube.Sum(0, 1)
	cond := rankcube.Cond{0: 2}

	want, err := cube.BaselineQuery(ctx, cond, f, 10)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	// Corrupt every cuboid store (the block table holds no payloads), so
	// whichever cuboid the planner reads trips its quarantine.
	for _, st := range cube.Stores() {
		st.SetFaultInjector(&pager.ScriptedFaults{CorruptAll: true})
	}
	if _, err := cube.Query(ctx, cond, f, 10); err != nil {
		t.Fatalf("degraded query: %v", err)
	}
	var st *rankcube.PageStore
	for _, cand := range cube.Stores() {
		if cand.State() == pager.StateQuarantined {
			st = cand
		}
	}
	if st == nil {
		t.Fatal("no store quarantined after corrupted query")
	}

	for _, cand := range cube.Stores() {
		cand.SetFaultInjector(nil)
	}
	reports, err := cube.Repair(ctx)
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	var repaired *rankcube.StoreRepair
	for i := range reports {
		if reports[i].Rebuilt {
			repaired = &reports[i]
		}
	}
	if repaired == nil || !repaired.Probed || !repaired.Readmitted {
		t.Fatalf("no store was rebuilt+readmitted: %+v", reports)
	}
	if st.State() != pager.StateHealthy {
		t.Fatalf("state after repair = %v, want healthy", st.State())
	}

	got, err := cube.Query(ctx, cond, f, 10, rankcube.WithBudget(rankcube.Budget{DisableFallback: true}))
	if err != nil || !scoresEqual(got, want) {
		t.Fatalf("post-repair query: err=%v got=%v want=%v", err, got, want)
	}
}

// TestHealthReportsLifecycle checks Health strings track the state machine.
func TestHealthReportsLifecycle(t *testing.T) {
	rel := rankcube.GenerateRelation(600, 2, 2, 4, rankcube.Uniform, 17)
	cube := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{Fanout: 16})
	ctx := context.Background()

	h := cube.Health()
	if len(h) != 1 || h[0].State != "healthy" {
		t.Fatalf("initial health = %+v", h)
	}

	st := cube.Stores()[0]
	st.SetFaultInjector(&pager.ScriptedFaults{CorruptAll: true})
	if _, err := cube.Query(ctx, rankcube.Cond{0: 1}, rankcube.Sum(0, 1), 5); err != nil {
		t.Fatalf("query: %v", err)
	}
	if h := cube.Health(); h[0].State != "quarantined" {
		t.Fatalf("health after corruption = %+v", h)
	}

	// ClearQuarantine (the operator hammer) must reconcile the metrics:
	// exercised indirectly here, asserted directly in internal/pager tests.
	st.SetFaultInjector(nil)
	st.ClearQuarantine()
	if h := cube.Health(); h[0].State != "healthy" {
		t.Fatalf("health after clear = %+v", h)
	}
	if _, err := cube.Query(ctx, rankcube.Cond{0: 1}, rankcube.Sum(0, 1), 5,
		rankcube.WithBudget(rankcube.Budget{DisableFallback: true})); err != nil {
		// The store content is intact (corruption was injected, not
		// written), so the cleared store serves immediately.
		t.Fatalf("query after clear: %v", err)
	}

	if err := errors.Join(); err != nil {
		t.Fatal(err)
	}
}
