package rankcube

// Robustness & degradation layer: context-aware query variants with
// per-query budgets, panic containment at the API boundary, and transparent
// fallback to exact baseline scans when cube structures fault. See the
// package documentation ("Robustness & degradation policy") for the rules.

import (
	"context"
	"errors"
	"fmt"

	"rankcube/internal/baselines"
	"rankcube/internal/errs"
	"rankcube/internal/governor"
	"rankcube/internal/gridcube"
	"rankcube/internal/indexmerge"
	"rankcube/internal/joinquery"
	"rankcube/internal/pager"
	"rankcube/internal/skyline"
)

// PageStore is a block-granular page store backing a cube structure. It is
// the attachment point for fault injection (SetFaultInjector, with e.g.
// pager.ScriptedFaults), retry-policy tuning, and quarantine inspection.
type PageStore = pager.Store

// Stores returns the cube's page stores (one per materialized cuboid, plus
// the base block table) for fault injection and quarantine management.
func (g *GridCube) Stores() []*PageStore {
	var out []*PageStore
	for _, cb := range g.c.Cuboids() {
		out = append(out, cb.Store())
	}
	return append(out, g.c.Blocks().Store())
}

// Stores returns the cube's page stores (the signature store) for fault
// injection and quarantine management.
func (s *SignatureCube) Stores() []*PageStore {
	return []*PageStore{s.c.Store()}
}

// Typed query errors. Every error returned by the context-aware query
// methods matches exactly one of these under errors.Is.
var (
	// ErrCanceled: the query's context was canceled or timed out.
	ErrCanceled = errs.ErrCanceled
	// ErrBudgetExceeded: a Budget limit tripped mid-search.
	ErrBudgetExceeded = errs.ErrBudgetExceeded
	// ErrPageCorrupt: a storage page failed checksum verification.
	ErrPageCorrupt = errs.ErrPageCorrupt
	// ErrReadFailed: a page read kept failing after retries.
	ErrReadFailed = errs.ErrReadFailed
	// ErrStructureUnavailable: a structure is quarantined after corruption.
	ErrStructureUnavailable = errs.ErrStructureUnavailable
	// ErrInternal: an engine panic was contained at the API boundary.
	ErrInternal = errs.ErrInternal
	// ErrInvalidArgument: the request itself was malformed (bad schema,
	// missing snapshot, unsupported operation). Never degrades.
	ErrInvalidArgument = errs.ErrInvalidArgument
)

// Budget bounds one query's resource consumption and configures its
// degradation policy. The zero value is unlimited with fallback enabled.
type Budget struct {
	// MaxBlockReads caps simulated block reads across every storage
	// structure the query touches (0 = unlimited). Enforcement happens in
	// the pager at block-access granularity, so cancellation latency and
	// budget overshoot are bounded in pages, not tuples.
	MaxBlockReads int64
	// MaxCandidates caps the combined candidate-buffer (search heap)
	// occupancy (0 = unlimited).
	MaxCandidates int
	// DisableFallback turns off degradation: faults surface as typed
	// errors instead of baseline-scan answers.
	DisableFallback bool
	// FallbackOnBudget extends degradation to ErrBudgetExceeded: when the
	// budget trips, answer with a baseline scan (which ignores MaxBlockReads
	// — a full scan is the floor cost of an exact answer) rather than fail.
	FallbackOnBudget bool
}

func (b Budget) limits() governor.Limits {
	return governor.Limits{MaxBlockReads: b.MaxBlockReads, MaxCandidates: b.MaxCandidates}
}

// shouldDegrade decides whether a failed cube-side attempt is re-answered
// by the matching baseline scan.
func (b Budget) shouldDegrade(err error) bool {
	if err == nil || b.DisableFallback {
		return false
	}
	if errors.Is(err, errs.ErrBudgetExceeded) {
		return b.FallbackOnBudget
	}
	return errs.Degradable(err)
}

// runGoverned executes fn with a query governor attached to m, converting
// typed aborts (cancellation, budget trips, storage faults) and any other
// panic into errors. No panic escapes it.
func runGoverned[T any](ctx context.Context, lim governor.Limits, m *Metrics, fn func() (T, error)) (out T, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	gov := governor.New(ctx, lim)
	m.SetGovernor(gov)
	defer m.SetGovernor(nil)
	defer func() {
		if r := recover(); r != nil {
			err = errs.FromPanic(r)
			var zero T
			out = zero
		}
	}()
	gov.OnCheckpoint() // fail fast on an already-canceled context
	return fn()
}

// degradeTo re-answers a failed query from its baseline fallback, recording
// the downgrade. The fallback runs under cancellation only: budgets do not
// apply (the scan is the floor cost of an exact answer), and it too is
// panic-contained.
func degradeTo[T any](ctx context.Context, m *Metrics, fn func() T) (T, error) {
	m.Downgrades++
	return runGoverned(ctx, governor.Limits{}, m, func() (T, error) { return fn(), nil })
}

// ---------------------------------------------------------------------------
// Context-aware engine entry points
// ---------------------------------------------------------------------------

// TopKCtx answers a top-k query under ctx and budget b. On storage faults
// (and, with b.FallbackOnBudget, budget trips) it transparently re-answers
// from a tombstone-aware sequential scan, recording the downgrade in the
// metrics' Downgrades counter.
func (g *GridCube) TopKCtx(ctx context.Context, cond Cond, f Func, k int, b Budget, m *Metrics) ([]Result, error) {
	m = ensureMetrics(m)
	q := gridcube.Query{Cond: cond, F: f, K: k}
	res, err := runGoverned(ctx, b.limits(), m, func() ([]Result, error) {
		return g.c.TopK(q, m)
	})
	if b.shouldDegrade(err) {
		return degradeTo(ctx, m, func() []Result { return g.c.ScanTopK(q, m) })
	}
	return res, err
}

// TopKCtx answers a top-k query under ctx and budget b, degrading to a
// delete-aware sequential scan on storage faults as GridCube.TopKCtx does.
func (s *SignatureCube) TopKCtx(ctx context.Context, cond Cond, f Func, k int, b Budget, m *Metrics) ([]Result, error) {
	m = ensureMetrics(m)
	res, err := runGoverned(ctx, b.limits(), m, func() ([]Result, error) {
		return s.c.TopK(cond, f, k, m)
	})
	if b.shouldDegrade(err) {
		return degradeTo(ctx, m, func() []Result { return s.c.ScanTopK(cond, f, k, m) })
	}
	return res, err
}

// MergeTopKCtx is MergeTopK under ctx and budget b. Configuration errors
// (no indices, uncovered ranking dimensions) surface directly; runtime
// storage faults degrade to a full table scan, which is exact because
// index-merge queries carry no boolean predicate.
func MergeTopKCtx(ctx context.Context, rel *Relation, indices []Index, f Func, k int, opts MergeOptions, b Budget, m *Metrics) ([]Result, error) {
	m = ensureMetrics(m)
	res, err := runGoverned(ctx, b.limits(), m, func() ([]Result, error) {
		var mo indexmerge.Options
		if opts.JoinSignature {
			js, jerr := indexmerge.BuildJoinSignature(indices, rel.Len(), indexmerge.JoinSigConfig{})
			if jerr != nil {
				return nil, jerr
			}
			mo.Pruner = js
		}
		return indexmerge.TopK(indices, f, k, mo, m)
	})
	if b.shouldDegrade(err) {
		return degradeTo(ctx, m, func() []Result {
			h := baselines.NewHeapFile(rel, 0)
			return baselines.NewTableScan(h).TopK(Cond{}, f, k, m)
		})
	}
	return res, err
}

// JoinCtx is Join under ctx and budget b. When a member relation's cube
// faults mid-join, the query degrades to an exact brute-force hash join
// over sequential scans of the participating relations.
func JoinCtx(ctx context.Context, parts []JoinPart, k int, b Budget, m *Metrics) ([]JoinResult, error) {
	m = ensureMetrics(m)
	q := joinquery.Query{Parts: parts, K: k}
	res, err := runGoverned(ctx, b.limits(), m, func() ([]JoinResult, error) {
		return joinquery.Execute(q, joinquery.Options{}, m)
	})
	if b.shouldDegrade(err) {
		return runGovernedDowngrade(ctx, m, func() ([]JoinResult, error) {
			return joinquery.BruteForce(q, m)
		})
	}
	return res, err
}

// runGovernedDowngrade is degradeTo for fallbacks that themselves return
// errors (the brute-force join validates its query).
func runGovernedDowngrade[T any](ctx context.Context, m *Metrics, fn func() (T, error)) (T, error) {
	m.Downgrades++
	return runGoverned(ctx, governor.Limits{}, m, fn)
}

// skyOut bundles the skyline result pair through the governed runner.
type skyOut struct {
	res  []SkylineResult
	snap *SkylineSnapshot
}

// SkylineCtx is Skyline under ctx and budget b. On storage faults it
// degrades to an exact sequential-scan skyline; the returned snapshot is
// then marked degraded and navigation (drill-down/roll-up) restarts from
// scratch instead of reusing the candidate basis.
func (s *SkylineEngine) SkylineCtx(ctx context.Context, cond Cond, dims []int, target []float64, b Budget, m *Metrics) ([]SkylineResult, *SkylineSnapshot, error) {
	m = ensureMetrics(m)
	q := skyline.Query{Cond: cond, Dims: dims, Target: target}
	out, err := runGoverned(ctx, b.limits(), m, func() (skyOut, error) {
		res, snap, err := s.e.Skyline(q, m)
		return skyOut{res, snap}, err
	})
	if b.shouldDegrade(err) {
		out, err = runGovernedDowngrade(ctx, m, func() (skyOut, error) {
			res, snap, serr := s.e.ScanSkyline(q, m)
			return skyOut{res, snap}, serr
		})
	}
	return out.res, out.snap, err
}

// DrillDownCtx is DrillDown under ctx and budget b, with the same
// degradation policy as SkylineCtx (the fallback answers the tightened
// query by sequential scan).
func (s *SkylineEngine) DrillDownCtx(ctx context.Context, prev *SkylineSnapshot, extra Cond, b Budget, m *Metrics) ([]SkylineResult, *SkylineSnapshot, error) {
	if prev == nil {
		return nil, nil, fmt.Errorf("rankcube: drill-down requires a previous snapshot: %w", errs.ErrInvalidArgument)
	}
	m = ensureMetrics(m)
	out, err := runGoverned(ctx, b.limits(), m, func() (skyOut, error) {
		res, snap, err := s.e.DrillDown(prev, extra, m)
		return skyOut{res, snap}, err
	})
	if b.shouldDegrade(err) {
		q, qerr := prev.DrillQuery(extra)
		if qerr != nil {
			return nil, nil, qerr
		}
		out, err = runGovernedDowngrade(ctx, m, func() (skyOut, error) {
			res, snap, serr := s.e.ScanSkyline(q, m)
			return skyOut{res, snap}, serr
		})
	}
	return out.res, out.snap, err
}

// RollUpCtx is RollUp under ctx and budget b, with the same degradation
// policy as SkylineCtx.
func (s *SkylineEngine) RollUpCtx(ctx context.Context, prev *SkylineSnapshot, removeDims []int, b Budget, m *Metrics) ([]SkylineResult, *SkylineSnapshot, error) {
	if prev == nil {
		return nil, nil, fmt.Errorf("rankcube: roll-up requires a previous snapshot: %w", errs.ErrInvalidArgument)
	}
	m = ensureMetrics(m)
	out, err := runGoverned(ctx, b.limits(), m, func() (skyOut, error) {
		res, snap, err := s.e.RollUp(prev, removeDims, m)
		return skyOut{res, snap}, err
	})
	if b.shouldDegrade(err) {
		out, err = runGovernedDowngrade(ctx, m, func() (skyOut, error) {
			res, snap, serr := s.e.ScanSkyline(prev.RollQuery(removeDims), m)
			return skyOut{res, snap}, serr
		})
	}
	return out.res, out.snap, err
}

// InsertCtx appends a tuple and incrementally maintains all signatures
// under ctx and budget b. Maintenance never degrades — there is no baseline
// that could maintain the cube — so faults surface as typed errors:
// ErrStructureUnavailable when the partition does not support incremental
// maintenance, storage errors when maintenance I/O faults.
func (s *SignatureCube) InsertCtx(ctx context.Context, sel []int32, rank []float64, b Budget, m *Metrics) (TID, error) {
	m = ensureMetrics(m)
	return runGoverned(ctx, b.limits(), m, func() (TID, error) {
		return s.c.Insert(sel, rank, m), nil
	})
}

// DeleteCtx removes a tuple from the partition and signatures under ctx
// and budget b, with the same no-degradation error contract as InsertCtx.
func (s *SignatureCube) DeleteCtx(ctx context.Context, tid TID, b Budget, m *Metrics) (bool, error) {
	m = ensureMetrics(m)
	return runGoverned(ctx, b.limits(), m, func() (bool, error) {
		return s.c.Delete(tid, m), nil
	})
}

// GovernedScanner is a panic-contained, budget-governed score-ascending
// iterator. Unlike the batch entry points it cannot transparently degrade —
// a stream cannot restart without re-emitting — so faults surface as typed
// errors from Next.
type GovernedScanner struct {
	s *Scanner
	m *Metrics
	g *governor.Governor
}

// ScanCtx opens a governed rank-aware scan over the cube. The governor
// stays attached to m for the lifetime of the scanner; open a fresh
// Metrics per scan when running scans concurrently.
func (s *SignatureCube) ScanCtx(ctx context.Context, cond Cond, f Func, b Budget, m *Metrics) (*GovernedScanner, error) {
	m = ensureMetrics(m)
	gov := governor.New(ctx, b.limits())
	m.SetGovernor(gov)
	sc, err := func() (sc *Scanner, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = errs.FromPanic(r)
				sc = nil
			}
		}()
		return s.c.Scan(cond, f, m)
	}()
	if err != nil {
		m.SetGovernor(nil)
		return nil, err
	}
	return &GovernedScanner{s: sc, m: m, g: gov}, nil
}

// Next returns the next matching tuple in ascending score order. ok is
// false when the stream ends — exhausted (err nil) or failed (typed err).
func (g *GovernedScanner) Next() (res Result, ok bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = errs.FromPanic(r)
			ok = false
		}
	}()
	res, ok = g.s.Next()
	return res, ok, nil
}

// Close detaches the scan's governor from its metrics collector.
func (g *GovernedScanner) Close() { g.m.SetGovernor(nil) }
