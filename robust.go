package rankcube

// Robustness & degradation layer: typed query errors, per-query budgets,
// panic containment at the API boundary, and transparent fallback to exact
// baseline scans when cube structures fault. See the package documentation
// ("Robustness & degradation policy") for the rules. The legacy *Ctx entry
// points here are thin wrappers over the canonical Option-based forms in
// query.go, which own the boundary logic.

import (
	"context"
	"errors"

	"rankcube/internal/errs"
	"rankcube/internal/governor"
	"rankcube/internal/obs"
	"rankcube/internal/pager"
)

// PageStore is a block-granular page store backing a cube structure. It is
// the attachment point for fault injection (SetFaultInjector, with e.g.
// pager.ScriptedFaults), retry-policy tuning, and quarantine inspection.
type PageStore = pager.Store

// Stores returns the cube's page stores (one per materialized cuboid, plus
// the base block table) for fault injection and quarantine management.
func (g *GridCube) Stores() []*PageStore {
	g.c.Ctl().RLock()
	defer g.c.Ctl().RUnlock()
	var out []*PageStore
	for _, cb := range g.c.Cuboids() {
		out = append(out, cb.Store())
	}
	return append(out, g.c.Blocks().Store())
}

// Stores returns the cube's page stores (the signature store) for fault
// injection and quarantine management.
func (s *SignatureCube) Stores() []*PageStore {
	return []*PageStore{s.c.Store()}
}

// Typed query errors. Every error returned by the context-aware query
// methods matches exactly one of these under errors.Is.
var (
	// ErrCanceled: the query's context was canceled or timed out.
	ErrCanceled = errs.ErrCanceled
	// ErrBudgetExceeded: a Budget limit tripped mid-search.
	ErrBudgetExceeded = errs.ErrBudgetExceeded
	// ErrPageCorrupt: a storage page failed checksum verification.
	ErrPageCorrupt = errs.ErrPageCorrupt
	// ErrReadFailed: a page read kept failing after retries.
	ErrReadFailed = errs.ErrReadFailed
	// ErrStructureUnavailable: a structure is quarantined after corruption.
	ErrStructureUnavailable = errs.ErrStructureUnavailable
	// ErrInternal: an engine panic was contained at the API boundary.
	ErrInternal = errs.ErrInternal
	// ErrInvalidArgument: the request itself was malformed (bad schema,
	// missing snapshot, unsupported operation). Never degrades.
	ErrInvalidArgument = errs.ErrInvalidArgument
	// ErrOverloaded: the cube's admission gate refused the query — serving
	// capacity saturated, wait queue full, the query's deadline would have
	// expired before a slot freed, or the cube is draining. Never degrades:
	// shedding load by running a full baseline scan would make the overload
	// worse. Retry later.
	ErrOverloaded = errs.ErrOverloaded
)

// Budget bounds one query's resource consumption and configures its
// degradation policy. The zero value is unlimited with fallback enabled.
type Budget struct {
	// MaxBlockReads caps simulated block reads across every storage
	// structure the query touches (0 = unlimited). Enforcement happens in
	// the pager at block-access granularity, so cancellation latency and
	// budget overshoot are bounded in pages, not tuples.
	MaxBlockReads int64
	// MaxCandidates caps the combined candidate-buffer (search heap)
	// occupancy (0 = unlimited).
	MaxCandidates int
	// DisableFallback turns off degradation: faults surface as typed
	// errors instead of baseline-scan answers.
	DisableFallback bool
	// FallbackOnBudget extends degradation to ErrBudgetExceeded: when the
	// budget trips, answer with a baseline scan (which ignores MaxBlockReads
	// — a full scan is the floor cost of an exact answer) rather than fail.
	FallbackOnBudget bool
}

func (b Budget) limits() governor.Limits {
	return governor.Limits{MaxBlockReads: b.MaxBlockReads, MaxCandidates: b.MaxCandidates}
}

// shouldDegrade decides whether a failed cube-side attempt is re-answered
// by the matching baseline scan.
func (b Budget) shouldDegrade(err error) bool {
	if err == nil || b.DisableFallback {
		return false
	}
	if errors.Is(err, errs.ErrBudgetExceeded) {
		return b.FallbackOnBudget
	}
	return errs.Degradable(err)
}

// runGoverned executes fn with a query governor attached to m, converting
// typed aborts (cancellation, budget trips, storage faults) and any other
// panic into errors. No panic escapes it. Detachment is ownership-guarded:
// only the governor this call attached is removed, so nested or stale
// runners cannot strip a successor's.
func runGoverned[T any](ctx context.Context, lim governor.Limits, m *Metrics, fn func() (T, error)) (out T, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	gov := governor.New(ctx, lim)
	m.SetGovernor(gov)
	defer m.DetachGovernor(gov)
	defer func() {
		if r := recover(); r != nil {
			err = errs.FromPanic(r)
			var zero T
			out = zero
		}
	}()
	gov.OnCheckpoint() // fail fast on an already-canceled context
	return fn()
}

// ---------------------------------------------------------------------------
// Legacy context-aware entry points (thin wrappers over query.go)
// ---------------------------------------------------------------------------

// TopKCtx is Query with an explicit Budget and Metrics.
//
// Deprecated: use GridCube.Query with WithBudget / WithMetrics.
func (g *GridCube) TopKCtx(ctx context.Context, cond Cond, f Func, k int, b Budget, m *Metrics) ([]Result, error) {
	return g.Query(ctx, cond, f, k, WithBudget(b), WithMetrics(m))
}

// TopKCtx is Query with an explicit Budget and Metrics.
//
// Deprecated: use SignatureCube.Query with WithBudget / WithMetrics.
func (s *SignatureCube) TopKCtx(ctx context.Context, cond Cond, f Func, k int, b Budget, m *Metrics) ([]Result, error) {
	return s.Query(ctx, cond, f, k, WithBudget(b), WithMetrics(m))
}

// MergeTopKCtx is MergeQuery with an explicit Budget and Metrics.
//
// Deprecated: use MergeQuery with WithBudget / WithMetrics.
func MergeTopKCtx(ctx context.Context, rel *Relation, indices []Index, f Func, k int, opts MergeOptions, b Budget, m *Metrics) ([]Result, error) {
	return MergeQuery(ctx, rel, indices, f, k, opts, WithBudget(b), WithMetrics(m))
}

// JoinCtx is JoinQuery with an explicit Budget and Metrics.
//
// Deprecated: use JoinQuery with WithBudget / WithMetrics.
func JoinCtx(ctx context.Context, parts []JoinPart, k int, b Budget, m *Metrics) ([]JoinResult, error) {
	return JoinQuery(ctx, parts, k, WithBudget(b), WithMetrics(m))
}

// skyOut bundles the skyline result pair through the governed runner.
type skyOut struct {
	res  []SkylineResult
	snap *SkylineSnapshot
}

// SkylineCtx is Query with an explicit Budget and Metrics.
//
// Deprecated: use SkylineEngine.Query with WithBudget / WithMetrics.
func (s *SkylineEngine) SkylineCtx(ctx context.Context, cond Cond, dims []int, target []float64, b Budget, m *Metrics) ([]SkylineResult, *SkylineSnapshot, error) {
	return s.Query(ctx, cond, dims, target, WithBudget(b), WithMetrics(m))
}

// DrillDownCtx is DrillDownQuery with an explicit Budget and Metrics.
//
// Deprecated: use SkylineEngine.DrillDownQuery with WithBudget /
// WithMetrics.
func (s *SkylineEngine) DrillDownCtx(ctx context.Context, prev *SkylineSnapshot, extra Cond, b Budget, m *Metrics) ([]SkylineResult, *SkylineSnapshot, error) {
	return s.DrillDownQuery(ctx, prev, extra, WithBudget(b), WithMetrics(m))
}

// RollUpCtx is RollUpQuery with an explicit Budget and Metrics.
//
// Deprecated: use SkylineEngine.RollUpQuery with WithBudget /
// WithMetrics.
func (s *SkylineEngine) RollUpCtx(ctx context.Context, prev *SkylineSnapshot, removeDims []int, b Budget, m *Metrics) ([]SkylineResult, *SkylineSnapshot, error) {
	return s.RollUpQuery(ctx, prev, removeDims, WithBudget(b), WithMetrics(m))
}

// InsertCtx is InsertTuple with an explicit Budget and Metrics.
//
// Deprecated: use SignatureCube.InsertTuple with WithBudget /
// WithMetrics.
func (s *SignatureCube) InsertCtx(ctx context.Context, sel []int32, rank []float64, b Budget, m *Metrics) (TID, error) {
	return s.InsertTuple(ctx, sel, rank, WithBudget(b), WithMetrics(m))
}

// DeleteCtx is DeleteTuple with an explicit Budget and Metrics.
//
// Deprecated: use SignatureCube.DeleteTuple with WithBudget /
// WithMetrics.
func (s *SignatureCube) DeleteCtx(ctx context.Context, tid TID, b Budget, m *Metrics) (bool, error) {
	return s.DeleteTuple(ctx, tid, WithBudget(b), WithMetrics(m))
}

// GovernedScanner is a panic-contained, budget-governed score-ascending
// iterator. Unlike the batch entry points it cannot transparently degrade —
// a stream cannot restart without re-emitting — so faults surface as typed
// errors from Next.
type GovernedScanner struct {
	s  *Scanner
	m  *Metrics
	g  *governor.Governor
	tr *obs.Trace
	// unlock releases the cube's shared serving lock and admission slot the
	// scanner has held since OpenScan; nil after Close has run once.
	unlock func()
}

// ScanCtx is OpenScan with an explicit Budget and Metrics.
//
// Deprecated: use SignatureCube.OpenScan with WithBudget / WithMetrics.
func (s *SignatureCube) ScanCtx(ctx context.Context, cond Cond, f Func, b Budget, m *Metrics) (*GovernedScanner, error) {
	return s.OpenScan(ctx, cond, f, WithBudget(b), WithMetrics(m))
}

// Next returns the next matching tuple in ascending score order. ok is
// false when the stream ends — exhausted (err nil) or failed (typed err).
func (g *GovernedScanner) Next() (res Result, ok bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = errs.FromPanic(r)
			ok = false
		}
	}()
	res, ok = g.s.Next()
	return res, ok, nil
}

// Close releases the scan's governor (and trace, if any) from its metrics
// collector, and releases the cube's shared serving lock and admission
// slot held since OpenScan — maintenance blocked behind the scan may then
// proceed. Close is idempotent, and detachment is ownership-guarded: if
// the shared Metrics has since been attached to another query or scanner,
// a late Close does not strip the successor's governor.
func (g *GovernedScanner) Close() {
	g.m.DetachGovernor(g.g)
	if g.tr != nil {
		g.m.DetachObserver(g.tr)
		g.tr.Finish()
	}
	if g.unlock != nil {
		g.unlock()
		g.unlock = nil
	}
}
