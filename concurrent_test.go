package rankcube_test

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"rankcube"
)

// These tests exist to run under -race (make race / make check): parallel
// queries against both cube engines while maintenance runs, asserting every
// outcome is typed and every answer reconciles exactly with a baseline scan
// taken under the same lock epoch.

// TestSignatureCubeConcurrentQueryMaintain storms a signature cube with
// concurrent queries while InsertTuple/DeleteTuple run. Queries that
// snapshot the cube under the harness lock must match the baseline scan
// exactly; unsynchronized queries merely must return typed results.
func TestSignatureCubeConcurrentQueryMaintain(t *testing.T) {
	const (
		n       = 1200
		s       = 2
		card    = 4
		workers = 8
		iters   = 40
	)
	rel := rankcube.GenerateRelation(n, s, 2, card, rankcube.Uniform, 7)
	cube := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{Fanout: 16})
	f := rankcube.Sum(0, 1)
	ctx := context.Background()

	// consistent serializes a query+baseline pair against mutators so the
	// crosscheck compares answers over the same cube state; raw queries run
	// without it, exercising the engine's own lock under -race.
	var consistent sync.RWMutex
	var wg sync.WaitGroup
	var inserted atomic.Int64

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < iters; i++ {
				cond := rankcube.Cond{rng.Intn(s): int32(rng.Intn(card))}
				k := 1 + rng.Intn(10)
				switch w % 4 {
				case 0: // mutator: insert
					consistent.Lock()
					sel := []int32{int32(rng.Intn(card)), int32(rng.Intn(card))}
					rank := []float64{rng.Float64(), rng.Float64()}
					if _, err := cube.InsertTuple(ctx, sel, rank); err != nil {
						t.Errorf("insert: %v", err)
					}
					inserted.Add(1)
					consistent.Unlock()
				case 1: // mutator: delete (may miss; that's fine)
					consistent.Lock()
					if _, err := cube.DeleteTuple(ctx, rankcube.TID(rng.Intn(n))); err != nil {
						t.Errorf("delete: %v", err)
					}
					consistent.Unlock()
				case 2: // checked query: must reconcile with the baseline
					consistent.RLock()
					got, err := cube.Query(ctx, cond, f, k)
					want, berr := cube.BaselineQuery(ctx, cond, f, k)
					consistent.RUnlock()
					if err != nil || berr != nil {
						t.Errorf("checked query: err=%v baseline=%v", err, berr)
					} else if !scoresEqual(got, want) {
						t.Errorf("torn result: cube %v vs baseline %v", got, want)
					}
				default: // raw query: typed outcome only
					if _, err := cube.Query(ctx, cond, f, k); err != nil {
						t.Errorf("raw query: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// After the storm the cube must still reconcile exactly.
	got, err := cube.Query(ctx, rankcube.Cond{0: 1}, f, 25)
	if err != nil {
		t.Fatalf("post-storm query: %v", err)
	}
	want, err := cube.BaselineQuery(ctx, rankcube.Cond{0: 1}, f, 25)
	if err != nil {
		t.Fatalf("post-storm baseline: %v", err)
	}
	if !scoresEqual(got, want) {
		t.Fatalf("post-storm mismatch: cube %v vs baseline %v", got, want)
	}
}

// TestGridCubeConcurrentQueryMaintain storms a grid cube with concurrent
// queries while Insert/Delete/Repartition run under the cube's
// single-writer discipline.
func TestGridCubeConcurrentQueryMaintain(t *testing.T) {
	const (
		n       = 1500
		s       = 2
		card    = 4
		workers = 8
		iters   = 30
	)
	rel := rankcube.GenerateRelation(n, s, 2, card, rankcube.Uniform, 11)
	cube := rankcube.BuildGridCube(rel, rankcube.GridOptions{BlockSize: 100})
	f := rankcube.Sum(0, 1)
	ctx := context.Background()

	var consistent sync.RWMutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + w)))
			for i := 0; i < iters; i++ {
				cond := rankcube.Cond{rng.Intn(s): int32(rng.Intn(card))}
				k := 1 + rng.Intn(10)
				switch w % 4 {
				case 0: // mutator: insert, with an occasional repartition
					consistent.Lock()
					sel := []int32{int32(rng.Intn(card)), int32(rng.Intn(card))}
					cube.Insert(sel, []float64{rng.Float64(), rng.Float64()})
					if i%10 == 9 {
						cube.Repartition()
					}
					consistent.Unlock()
				case 1: // mutator: tombstone
					consistent.Lock()
					cube.Delete(rankcube.TID(rng.Intn(n)))
					consistent.Unlock()
				case 2: // checked query
					consistent.RLock()
					got, err := cube.Query(ctx, cond, f, k)
					want, berr := cube.BaselineQuery(ctx, cond, f, k)
					consistent.RUnlock()
					if err != nil || berr != nil {
						t.Errorf("checked query: err=%v baseline=%v", err, berr)
					} else if !scoresEqual(got, want) {
						t.Errorf("torn result: cube %v vs baseline %v", got, want)
					}
				default: // raw query
					if _, err := cube.Query(ctx, cond, f, k); err != nil {
						t.Errorf("raw query: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentScanHoldsOffMaintenance verifies an open governed scan
// blocks maintenance until Close, and that results keep flowing while a
// writer waits.
func TestConcurrentScanHoldsOffMaintenance(t *testing.T) {
	rel := rankcube.GenerateRelation(800, 2, 2, 4, rankcube.Uniform, 3)
	cube := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{Fanout: 16})
	ctx := context.Background()

	sc, err := cube.OpenScan(ctx, rankcube.Cond{0: 1}, rankcube.Sum(0, 1))
	if err != nil {
		t.Fatalf("OpenScan: %v", err)
	}

	inserted := make(chan error, 1)
	go func() {
		_, err := cube.InsertTuple(ctx, []int32{1, 1}, []float64{0.5, 0.5})
		inserted <- err
	}()

	// Drain a few results while the writer is (or soon will be) parked on
	// the cube's exclusive lock.
	for i := 0; i < 5; i++ {
		if _, ok, err := sc.Next(); err != nil {
			t.Fatalf("Next: %v", err)
		} else if !ok {
			break
		}
	}
	sc.Close()
	if err := <-inserted; err != nil {
		t.Fatalf("insert after scan close: %v", err)
	}
}

// TestAdmissionOverloadTyped verifies gate rejections surface as
// ErrOverloaded from the public Query path and that Drain refuses new
// queries.
func TestAdmissionOverloadTyped(t *testing.T) {
	rel := rankcube.GenerateRelation(2000, 2, 2, 4, rankcube.Uniform, 5)
	cube := rankcube.BuildSignatureCube(rel, rankcube.SigOptions{Fanout: 16})
	cube.SetAdmission(rankcube.AdmissionConfig{MaxInFlight: 1, MaxWaiting: 0, Name: "sig-test"})
	ctx := context.Background()
	f := rankcube.Sum(0, 1)

	// An open scan holds the cube's only admission slot until Close, so a
	// concurrent query is deterministically shed.
	sc, err := cube.OpenScan(ctx, rankcube.Cond{0: 1}, f)
	if err != nil {
		t.Fatalf("OpenScan: %v", err)
	}
	if _, err := cube.Query(ctx, rankcube.Cond{0: 1}, f, 10); !errors.Is(err, rankcube.ErrOverloaded) {
		sc.Close()
		t.Fatalf("query against a full gate err = %v, want ErrOverloaded", err)
	}
	sc.Close()
	if _, err := cube.Query(ctx, rankcube.Cond{0: 1}, f, 10); err != nil {
		t.Fatalf("query after slot release: %v", err)
	}

	// A storm over the 1-slot gate must only ever produce typed outcomes.
	var overloaded, ok atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				_, err := cube.Query(ctx, rankcube.Cond{0: 1}, f, 10)
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, rankcube.ErrOverloaded):
					overloaded.Add(1)
				default:
					t.Errorf("untyped outcome: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if ok.Load() == 0 {
		t.Fatal("no query was admitted")
	}
	st := cube.AdmissionStats()
	if !st.Gated || st.InFlight != 0 {
		t.Fatalf("gate stats after storm: %+v", st)
	}
	_ = overloaded.Load() // sheds depend on scheduling; typedness is the assertion

	if err := cube.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if _, err := cube.Query(ctx, rankcube.Cond{0: 1}, f, 1); !errors.Is(err, rankcube.ErrOverloaded) {
		t.Fatalf("post-drain query err = %v, want ErrOverloaded", err)
	}
}
