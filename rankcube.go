// Package rankcube is a Go implementation of the Ranking-Cube methodology
// (Dong Xin, "Integrating OLAP and Ranking: The Ranking-Cube Methodology",
// UIUC 2007 / ICDE 2007): efficient top-k, skyline, and rank-join query
// processing under multi-dimensional boolean selections, built on semi
// off-line materialization and semi online computation.
//
// The package offers two ranking-cube engines:
//
//   - GridCube — chapter 3's equi-depth grid partition with pseudo-block
//     cuboids and neighborhood search; supports ranking fragments for
//     relations with many selection dimensions.
//   - SignatureCube — chapter 4's hierarchical (R-tree) partition with
//     compressed signature measures, top-down branch-and-bound search, and
//     incremental maintenance.
//
// plus the chapter 5-7 extensions: index-merge for many ranking dimensions
// (MergeTopK), SPJR rank joins over multiple relations (Join), and skyline
// queries with boolean predicates (SkylineEngine).
//
// All query engines score ascending: lower is better. Express
// higher-is-better preferences by negating the function.
//
// # Canonical query API
//
// Every engine's canonical entry point is ctx-first with variadic
// options:
//
//	res, err := cube.Query(ctx, cond, f, k,
//	    rankcube.WithBudget(rankcube.Budget{MaxBlockReads: 10_000}),
//	    rankcube.WithMetrics(m),
//	    rankcube.WithTrace(tr))
//
// (GridCube.Query, SignatureCube.Query, MergeQuery, JoinQuery,
// SkylineEngine.Query / DrillDownQuery / RollUpQuery, TableScanQuery,
// and for maintenance InsertTuple / DeleteTuple / OpenScan.) Options:
// WithBudget, WithMetrics, WithTrace, WithSlowLogThreshold. The legacy
// bare and *Ctx forms remain as thin wrappers. Every canonical query is
// also recorded — kind, outcome, latency histogram, block reads — into
// the process-wide registry (DefaultRegistry, MetricsHandler,
// PublishExpvar), and queries crossing SetSlowQueryThreshold land in the
// slow-query log with their span trees (WriteSlowQueryLog).
//
// # Robustness & degradation policy
//
// Every query entry point has a context-aware variant (TopKCtx, JoinCtx,
// SkylineCtx, …) taking a context.Context and a Budget. Queries run under a
// governor enforced in the pager at block-access granularity, so
// cancellation latency and budget overshoot are bounded in pages. Storage
// pages carry checksums; faults can be injected for testing via
// pager.FaultInjector. The degradation rules, in order:
//
//   - Cancellation (context canceled or deadline exceeded) always aborts
//     with ErrCanceled. It never degrades: the caller asked to stop.
//   - Storage faults (ErrPageCorrupt, ErrReadFailed,
//     ErrStructureUnavailable) and contained engine panics (ErrInternal)
//     degrade by default: the query is transparently re-answered by the
//     matching baseline scan — exact, cube-free — and the Metrics'
//     Downgrades counter records it. Budget.DisableFallback surfaces the
//     typed error instead.
//   - Budget trips (ErrBudgetExceeded) fail by default with partial
//     statistics intact; Budget.FallbackOnBudget opts into degrading them
//     like storage faults.
//
// The legacy non-context methods delegate to the context variants with a
// background context and a zero Budget, so they inherit panic containment
// and fault degradation. The one exception is the progressive Scan
// iterator: a stream cannot transparently restart, so only ScanCtx
// contains faults (as typed errors from Next) while the legacy Scan
// propagates engine panics as-is.
//
// No panic escapes the context-aware API: engine faults and bugs alike
// surface as errors matching ErrInternal at worst.
package rankcube

import (
	"context"
	"fmt"

	"rankcube/internal/baselines"
	"rankcube/internal/btree"
	"rankcube/internal/core"
	"rankcube/internal/dataset"
	"rankcube/internal/errs"
	"rankcube/internal/gridcube"
	"rankcube/internal/hindex"
	"rankcube/internal/joinquery"
	"rankcube/internal/ranking"
	"rankcube/internal/rtree"
	"rankcube/internal/sigcube"
	"rankcube/internal/skyline"
	"rankcube/internal/stats"
	"rankcube/internal/table"
)

// ---------------------------------------------------------------------------
// Relations
// ---------------------------------------------------------------------------

// Relation is a base table with categorical selection dimensions and
// real-valued ranking dimensions.
type Relation = table.Table

// Schema describes a relation's dimensions.
type Schema = table.Schema

// TID identifies a tuple within its relation.
type TID = table.TID

// NewRelation creates an empty relation, or returns the schema's
// validation error (wrapping ErrInvalidArgument). Selection values on
// dimension d must lie in [0, selCards[d]).
func NewRelation(selNames []string, selCards []int, rankNames []string) (*Relation, error) {
	rel, err := table.New(Schema{SelNames: selNames, SelCard: selCards, RankNames: rankNames})
	if err != nil {
		return nil, fmt.Errorf("%v: %w", err, errs.ErrInvalidArgument)
	}
	return rel, nil
}

// GenerateRelation builds a seeded synthetic relation: T tuples, S selection
// dimensions of cardinality C, R ranking dimensions in [0,1] under the given
// distribution.
func GenerateRelation(T, S, R, C int, dist Distribution, seed int64) *Relation {
	return table.Generate(table.GenSpec{T: T, S: S, R: R, Card: C, Dist: dist, Seed: seed})
}

// Distribution selects the joint distribution of synthetic ranking values.
type Distribution = table.Distribution

// Synthetic data distributions.
const (
	Uniform        = table.Uniform
	Correlated     = table.Correlated
	AntiCorrelated = table.AntiCorrelated
)

// ForestCover synthesizes a relation shaped like the UCI Forest CoverType
// dataset used in the paper's experiments (12 selection dimensions with its
// cardinality profile, 3 quantized ranking dimensions).
func ForestCover(n int, seed int64) *Relation { return dataset.ForestCover(n, seed) }

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

// Cond is a conjunctive selection: dimension position → required value.
type Cond = core.Cond

// Result is one scored answer tuple.
type Result = core.Result

// Metrics collects execution statistics (block reads per structure, states,
// heap peaks). Pass nil to skip instrumentation.
type Metrics = stats.Counters

// NewMetrics returns an empty metrics collector.
func NewMetrics() *Metrics { return stats.New() }

// ensureMetrics lets callers pass a nil *Metrics to skip instrumentation;
// the engines require a collector, so nil is replaced with a throwaway.
func ensureMetrics(m *Metrics) *Metrics {
	if m == nil {
		return stats.New()
	}
	return m
}

// ---------------------------------------------------------------------------
// Ranking functions
// ---------------------------------------------------------------------------

// Func is a ranking function: it scores full ranking vectors and lower-
// bounds itself over boxes, the one capability the methodology requires of
// ad hoc functions.
type Func = ranking.Func

// Expr is a scoring expression tree over ranking dimensions, used to define
// ad hoc functions with automatic interval-arithmetic lower bounds.
type Expr = ranking.Expr

// Linear builds f = Σ weights[i]·N(attrs[i]). Weights may be negative.
func Linear(attrs []int, weights []float64) Func { return ranking.Linear(attrs, weights) }

// Sum builds the unweighted sum of the given ranking dimensions.
func Sum(attrs ...int) Func { return ranking.Sum(attrs...) }

// SqDist builds Σ (N(attrs[i]) − target[i])², the nearest-neighbor score.
func SqDist(attrs []int, target []float64) Func { return ranking.SqDist(attrs, target) }

// L1Dist builds Σ |N(attrs[i]) − target[i]|.
func L1Dist(attrs []int, target []float64) Func { return ranking.L1Dist(attrs, target) }

// General wraps an expression tree as a ranking function with interval-
// arithmetic bounds (for ad hoc shapes such as (A − B²)²).
func General(e Expr) Func { return ranking.General(e) }

// Constrained restricts inner to tuples whose dimension attr lies in
// [lo, hi]; everything else scores +Inf (the thesis' fc query class).
func Constrained(inner Func, attr int, lo, hi float64) Func {
	return ranking.Constrained(inner, attr, lo, hi)
}

// Expression constructors.
var (
	// Var references ranking dimension i in an expression.
	Var = func(i int) Expr { return ranking.Var(i) }
	// Num embeds a constant.
	Num = func(v float64) Expr { return ranking.Const(v) }
)

// Add sums expressions.
func Add(terms ...Expr) Expr { return ranking.Add(terms...) }

// Sub subtracts r from l.
func Sub(l, r Expr) Expr { return ranking.Sub(l, r) }

// Mul multiplies two expressions.
func Mul(l, r Expr) Expr { return ranking.Mul(l, r) }

// Sqr squares an expression.
func Sqr(e Expr) Expr { return ranking.Sqr(e) }

// AbsE takes an absolute value.
func AbsE(e Expr) Expr { return ranking.Abs(e) }

// Scale multiplies an expression by a constant.
func Scale(c float64, e Expr) Expr { return ranking.Scale(c, e) }

// ---------------------------------------------------------------------------
// Grid ranking cube (chapter 3)
// ---------------------------------------------------------------------------

// GridOptions configures BuildGridCube.
type GridOptions struct {
	// BlockSize is the expected tuples per base block (default 300).
	BlockSize int
	// FragmentSize F > 0 materializes ranking fragments of F selection
	// dimensions each instead of the full cube — the high-dimensional
	// configuration whose footprint grows linearly in dimension count.
	FragmentSize int
	// Groups optionally fixes the fragment grouping explicitly.
	Groups [][]int
	// CompressLists stores cell tid lists varint-delta compressed
	// (thesis §3.6.3): smaller cube, slight decode cost per access.
	CompressLists bool
}

// GridCube is the chapter-3 engine.
type GridCube struct {
	c *gridcube.Cube
}

// BuildGridCube materializes a grid ranking cube (or ranking fragments)
// over rel.
func BuildGridCube(rel *Relation, opts GridOptions) *GridCube {
	return &GridCube{c: gridcube.Build(rel, gridcube.Config{
		BlockSize:     opts.BlockSize,
		FragmentSize:  opts.FragmentSize,
		Groups:        opts.Groups,
		CompressLists: opts.CompressLists,
	})}
}

// TopK answers a multi-dimensional top-k query. It is Query with a
// background context and no budget (faults still degrade to a scan).
//
// Deprecated: use GridCube.Query.
func (g *GridCube) TopK(cond Cond, f Func, k int, m *Metrics) ([]Result, error) {
	return g.Query(context.Background(), cond, f, k, WithMetrics(m))
}

// Insert adds a tuple into the cube using the pre-computed partition
// (thesis §1.3.1); call Repartition periodically to restore balance.
// Maintenance is single-writer: it holds the cube's serving control
// exclusively, waiting out in-flight queries and excluding new ones.
func (g *GridCube) Insert(sel []int32, rank []float64) TID {
	g.c.Ctl().Lock()
	defer g.c.Ctl().Unlock()
	return g.c.Insert(sel, rank)
}

// Delete tombstones a tuple until the next Repartition, with the same
// single-writer discipline as Insert.
func (g *GridCube) Delete(tid TID) bool {
	g.c.Ctl().Lock()
	defer g.c.Ctl().Unlock()
	return g.c.Delete(tid)
}

// PendingMaintenance reports accumulated inserts plus tombstones.
func (g *GridCube) PendingMaintenance() int {
	g.c.Ctl().RLock()
	defer g.c.Ctl().RUnlock()
	return g.c.PendingMaintenance()
}

// Repartition rebuilds the cube over the surviving tuples, returning the
// old-to-new tuple id mapping when deletions compacted the relation. It
// holds the serving control exclusively for the whole rebuild.
func (g *GridCube) Repartition() map[TID]TID {
	g.c.Ctl().Lock()
	defer g.c.Ctl().Unlock()
	return g.c.Repartition()
}

// GroupsFromWorkload derives a fragment grouping from a query history
// (thesis §3.6.2): dimensions frequently queried together share a fragment
// of at most f dimensions. Feed the result to GridOptions.Groups.
func GroupsFromWorkload(history [][]int, s, f int) [][]int {
	return gridcube.GroupsFromWorkload(history, s, f)
}

// GroupsByCardinality isolates selection dimensions with cardinality ≥
// threshold into singleton fragments (thesis §3.6.2).
func GroupsByCardinality(schema Schema, f, threshold int) [][]int {
	return gridcube.GroupsByCardinality(schema, f, threshold)
}

// SizeBytes reports the materialized footprint.
func (g *GridCube) SizeBytes() int64 {
	g.c.Ctl().RLock()
	defer g.c.Ctl().RUnlock()
	return g.c.SizeBytes()
}

// ---------------------------------------------------------------------------
// Signature ranking cube (chapter 4)
// ---------------------------------------------------------------------------

// SigOptions configures BuildSignatureCube.
type SigOptions struct {
	// Fanout overrides the page-derived R-tree fanout (0 = 4 KB pages).
	Fanout int
	// Cuboids selects materialized cuboids; nil materializes all atomic
	// (single-dimension) cuboids, from which any conjunction is assembled
	// online.
	Cuboids [][]int
	// LossySignatures swaps exact signatures for per-cell bloom filters
	// (thesis §4.5): smaller measure, tuple-level re-verification at query
	// time.
	LossySignatures bool
}

// SignatureCube is the chapter-4 engine. It additionally supports
// incremental maintenance and score-ordered scans.
type SignatureCube struct {
	c *sigcube.Cube
}

// BuildSignatureCube partitions rel with an R-tree and materializes
// signature cuboids.
func BuildSignatureCube(rel *Relation, opts SigOptions) *SignatureCube {
	return &SignatureCube{c: sigcube.Build(rel, sigcube.Config{
		RTree:           rtree.Config{Fanout: opts.Fanout},
		Cuboids:         opts.Cuboids,
		LossySignatures: opts.LossySignatures,
	})}
}

// TopK answers a multi-dimensional top-k query. It is Query with a
// background context and no budget (faults still degrade to a scan).
//
// Deprecated: use SignatureCube.Query.
func (s *SignatureCube) TopK(cond Cond, f Func, k int, m *Metrics) ([]Result, error) {
	return s.Query(context.Background(), cond, f, k, WithMetrics(m))
}

// Insert appends a tuple and incrementally maintains all signatures. It
// fails with ErrStructureUnavailable when the cube's partition does not
// support incremental maintenance (rebuild instead), and with storage
// errors when maintenance I/O faults. It is InsertTuple with a
// background context and no budget.
//
// Deprecated: use SignatureCube.InsertTuple.
func (s *SignatureCube) Insert(sel []int32, rank []float64, m *Metrics) (TID, error) {
	return s.InsertTuple(context.Background(), sel, rank, WithMetrics(m))
}

// Delete removes a tuple from the partition and signatures, with the same
// error contract as Insert. It is DeleteTuple with a background context
// and no budget.
//
// Deprecated: use SignatureCube.DeleteTuple.
func (s *SignatureCube) Delete(tid TID, m *Metrics) (bool, error) {
	return s.DeleteTuple(context.Background(), tid, WithMetrics(m))
}

// Scan opens a score-ascending iterator over tuples matching cond — the
// rank-aware selection operator rank joins pull from. Unlike OpenScan it
// is neither governed nor panic-contained: engine faults propagate as
// panics.
//
// Deprecated: use SignatureCube.OpenScan.
func (s *SignatureCube) Scan(cond Cond, f Func, m *Metrics) (*Scanner, error) {
	return s.c.Scan(cond, f, ensureMetrics(m))
}

// Scanner iterates matching tuples in ascending score order.
type Scanner = sigcube.Scanner

// SizeBytes reports the signature footprint.
func (s *SignatureCube) SizeBytes() int64 { return s.c.SizeBytes() }

// ---------------------------------------------------------------------------
// Index merge (chapter 5)
// ---------------------------------------------------------------------------

// Index is a hierarchical index over a subset of ranking dimensions,
// mergeable with others to answer queries spanning many dimensions.
type Index = hindex.Index

// BuildBTree bulk-loads a B+-tree over one ranking dimension of rel.
func BuildBTree(rel *Relation, dim int) Index {
	return btree.Build(rel, dim, relationDomain(rel), btree.Config{})
}

// BuildRTree bulk-loads an R-tree over the given ranking dimensions.
func BuildRTree(rel *Relation, dims []int) Index {
	return rtree.Bulk(rel, dims, relationDomain(rel), rtree.Config{})
}

// MergeOptions configures MergeTopK.
type MergeOptions struct {
	// JoinSignature enables empty-state pruning via an m-way join-signature
	// built over the indices (PE+SIG).
	JoinSignature bool
}

// MergeTopK answers a top-k query whose function spans several indices by
// progressive index-merge. rel provides the tuple count for signature
// construction when requested. It is MergeQuery with a background context
// and no budget (faults still degrade to a table scan).
//
// Deprecated: use MergeQuery.
func MergeTopK(rel *Relation, indices []Index, f Func, k int, opts MergeOptions, m *Metrics) ([]Result, error) {
	return MergeQuery(context.Background(), rel, indices, f, k, opts, WithMetrics(m))
}

// ---------------------------------------------------------------------------
// SPJR rank joins (chapter 6)
// ---------------------------------------------------------------------------

// JoinRelation is a relation participating in rank joins, carrying its
// ranking cube and join-key column.
type JoinRelation = joinquery.Relation

// NewJoinRelation wraps a relation and its signature cube with join keys
// (keys[tid] ∈ [0, keyCard)).
func NewJoinRelation(name string, rel *Relation, cube *SignatureCube, keys []int32, keyCard int) *JoinRelation {
	return joinquery.NewRelation(name, rel, cube.c, keys, keyCard)
}

// JoinPart is one relation's role in an SPJR query.
type JoinPart = joinquery.Part

// JoinResult is one joined, scored answer.
type JoinResult = joinquery.Result

// Join answers a multi-relational top-k query: equality join on the shared
// key domain, per-relation boolean conditions, combined score = sum of
// per-relation scores.
//
// Deprecated: use JoinQuery.
func Join(parts []JoinPart, k int, m *Metrics) ([]JoinResult, error) {
	return JoinQuery(context.Background(), parts, k, WithMetrics(m))
}

// ---------------------------------------------------------------------------
// Skylines (chapter 7)
// ---------------------------------------------------------------------------

// SkylineEngine answers skyline queries with boolean predicates over a
// signature cube.
type SkylineEngine struct {
	e *skyline.Engine
}

// SkylineResult is one skyline member with its preference-space
// coordinates.
type SkylineResult = skyline.Result

// SkylineSnapshot preserves a finished query for drill-down/roll-up reuse.
type SkylineSnapshot = skyline.Snapshot

// NewSkylineEngine wraps a signature cube.
func NewSkylineEngine(cube *SignatureCube) *SkylineEngine {
	return &SkylineEngine{e: skyline.NewEngine(cube.c)}
}

// Skyline computes the skyline of the tuples matching cond, minimizing the
// given ranking dimensions. A non-nil target asks for the dynamic skyline
// in |x−target| space.
//
// Deprecated: use SkylineEngine.Query.
func (s *SkylineEngine) Skyline(cond Cond, dims []int, target []float64, m *Metrics) ([]SkylineResult, *SkylineSnapshot, error) {
	return s.Query(context.Background(), cond, dims, target, WithMetrics(m))
}

// DrillDown tightens the previous query with extra predicates, reusing its
// candidate basis.
//
// Deprecated: use SkylineEngine.DrillDownQuery.
func (s *SkylineEngine) DrillDown(prev *SkylineSnapshot, extra Cond, m *Metrics) ([]SkylineResult, *SkylineSnapshot, error) {
	return s.DrillDownQuery(context.Background(), prev, extra, WithMetrics(m))
}

// RollUp relaxes the previous query by removing predicates on the given
// dimensions, seeding the search with the previous skyline.
//
// Deprecated: use SkylineEngine.RollUpQuery.
func (s *SkylineEngine) RollUp(prev *SkylineSnapshot, removeDims []int, m *Metrics) ([]SkylineResult, *SkylineSnapshot, error) {
	return s.RollUpQuery(context.Background(), prev, removeDims, WithMetrics(m))
}

// ---------------------------------------------------------------------------
// Baselines (for benchmarking and sanity checks)
// ---------------------------------------------------------------------------

// TableScanTopK answers a query by scanning rel (the thesis' baseline).
// It is ungoverned; TableScanQuery is the canonical governed form.
//
// Deprecated: use TableScanQuery.
func TableScanTopK(rel *Relation, cond Cond, f Func, k int, m *Metrics) []Result {
	h := baselines.NewHeapFile(rel, 0)
	return baselines.NewTableScan(h).TopK(cond, f, k, ensureMetrics(m))
}

// helpers

func relationDomain(rel *Relation) rankingBox {
	r := rel.Schema().R()
	lo := make([]float64, r)
	hi := make([]float64, r)
	for d := 0; d < r; d++ {
		lo[d], hi[d] = rel.RankDomain(d)
		if hi[d] <= lo[d] {
			hi[d] = lo[d] + 1
		}
	}
	return ranking.NewBox(lo, hi)
}

type rankingBox = ranking.Box
